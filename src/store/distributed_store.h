// Typed key→bucket storage co-located with DHT ownership.
//
// Over-DHT indexes store application buckets (label store + record store in
// m-LIGHT, trie nodes in PHT, tree nodes in DST) under DHT keys.  The
// DistributedStore keeps each bucket together with the peer currently
// responsible for its key, meters every routed access through the Network,
// ships serialized payload when buckets move between peers, and re-homes
// buckets when membership changes (churn).
//
// Replication (OpenDHT-style key salting): with replication factor R > 1,
// every bucket also lives at the owners of R-1 salted keys.  Graceful
// churn re-homes all copies; a *crash* loses exactly the copies the dead
// peer held — a bucket survives iff some copy-holder survives, in which
// case missing copies are re-created from a survivor (repair traffic,
// eager by default or deferred to the first read — see RepairPolicy).
// With R = 1 a crash loses the bucket outright; lostBuckets() reports it
// so upper layers can detect the damage, and reads of a mourned label
// fail (failedReads()) instead of answering NULL.
//
// Reads fail over: when the primary never answers (RPC dead letter under
// fault injection) or reports no copy after a crash, the request walks
// the copy-target list to the next holder; a successful failover
// read-repairs the bucket back to R copies on the current ring.
//
// Bucket requirements (checked by concept): byteSize() — serialized size
// used for data-movement accounting; recordCount() — number of records,
// used for load statistics and record-movement accounting.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/bitstring.h"
#include "common/check.h"
#include "common/digest.h"
#include "common/invariants.h"
#include "common/serde.h"
#include "dht/network.h"
#include "wal/wal.h"

namespace mlight::store {

template <typename B>
concept StorableBucket =
    requires(const B& b, mlight::common::Writer& w,
             mlight::common::Reader& r) {
      { b.byteSize() } -> std::convertible_to<std::size_t>;
      { b.recordCount() } -> std::convertible_to<std::size_t>;
      { b.serialize(w) };
      { B::deserialize(r) } -> std::same_as<B>;
    };

/// When crash repair happens.  kEager (default, the classic behavior)
/// re-replicates every degraded bucket synchronously inside the
/// membership-change callback, so repair traffic is metered at crash
/// time.  kOnRead defers crash repair: the membership callback only
/// prunes the dead copies, and the first read that fails over to a
/// surviving holder triggers read-repair for that bucket (restoring R
/// copies on the current ring).  Joins and graceful departures always
/// re-home eagerly — their data handoff is part of the protocol.
enum class RepairPolicy { kEager, kOnRead };

/// Query-load balancing: hot-leaf read replication (docs/COST_MODEL.md
/// "Query-load balancing").  The owner of every bucket counts the reads
/// it serves per label in a rolling window of simulated time; a label
/// whose in-window count reaches `promoteReads` is *promoted* — granted
/// `boostCopies` extra replicas through the regular copyTargets()
/// placement walk, shipped like any repair — and read traffic then
/// spreads over the enlarged copy set (least-loaded routing, ties broken
/// by lowest replica index).  A boosted label whose full window closes
/// below `demoteReads` is demoted back to the base replication factor.
/// Promotion/demotion side effects are deferred to quiescent points
/// (drainLoadBalance(), called from the index-operation tails) and
/// applied in sorted label order, so handler execution order never
/// shapes placement — the determinism contract of docs/THEORY.md.
/// Off by default: the disabled path must stay byte-identical to a
/// build without the subsystem.
struct LoadBalancePolicy {
  bool enabled = false;
  /// In-window reads at which a leaf is promoted (read-hot).
  std::uint32_t promoteReads = 16;
  /// Full-window reads below which a boosted leaf is demoted.
  std::uint32_t demoteReads = 2;
  /// Heat window length, simulated milliseconds.
  double windowMs = 5000.0;
  /// Extra copies granted to a hot leaf (total = replication + boost).
  std::size_t boostCopies = 7;
  /// Cap on simultaneously boosted leaves (bounds replica storage).
  std::size_t maxHotLeaves = 64;
};

template <StorableBucket Bucket>
class DistributedStore {
 public:
  using Label = mlight::common::BitString;
  using RingId = mlight::dht::RingId;

  /// One replica placement: the peer holding the copy and the key salt
  /// it was placed under.  Tracking the salt matters because salts that
  /// collide on an already-chosen peer are *skipped*, so holder index
  /// and salt index need not coincide — replica envelopes must target
  /// the salt, not the index, to actually reach the holder.
  struct CopyTarget {
    RingId holder;
    std::size_t salt = 0;
  };

  /// `ns` namespaces this index's keys inside the shared DHT key space
  /// (multiple indexes can share one overlay without colliding).
  /// `replication` >= 1 is the total number of copies per bucket.
  DistributedStore(mlight::dht::Network& net, std::string ns,
                   std::size_t replication = 1,
                   RepairPolicy repair = RepairPolicy::kEager)
      : net_(&net), ns_(std::move(ns)), replication_(replication),
        repair_(repair) {
    storeHandle_ = net_->registerStore(
        [this](const mlight::dht::Network::MembershipChange& change) {
          onMembershipChange(change);
        });
  }

  ~DistributedStore() { net_->unregisterStore(storeHandle_); }

  DistributedStore(const DistributedStore&) = delete;
  DistributedStore& operator=(const DistributedStore&) = delete;

  std::size_t replication() const noexcept { return replication_; }

  // --- Query-load balancing (hot-leaf read replication) -----------------

  /// Installs the balancing policy.  Call on a quiet store (before
  /// traffic) — the disabled default leaves every path byte-identical
  /// to a build without the subsystem.
  void setLoadBalance(const LoadBalancePolicy& policy) noexcept {
    loadBalance_ = policy;
  }
  const LoadBalancePolicy& loadBalance() const noexcept {
    return loadBalance_;
  }

  /// Applies the promotions/demotions the owner-side heat counters
  /// decided since the last drain.  Must be called at a quiescent point
  /// (no events in flight) — index operations call it from their tails —
  /// because promotion re-resolves copyTargets() and ships replica
  /// payload, which may not happen mid-operation (it would race the
  /// failover walk's captured target list under tie shuffling; see the
  /// determinism contract).  Labels are processed in sorted order after
  /// dedup, so the drain's effect is independent of the handler
  /// execution order that queued them.
  void drainLoadBalance() {
    if (!loadBalance_.enabled) return;
    if (pendingDemotions_.empty() && pendingPromotions_.empty()) return;
    std::sort(pendingDemotions_.begin(), pendingDemotions_.end());
    pendingDemotions_.erase(
        std::unique(pendingDemotions_.begin(), pendingDemotions_.end()),
        pendingDemotions_.end());
    for (const Label& label : pendingDemotions_) {
      if (boost_.erase(label) == 0) continue;
      frozenReadSalt_.erase(label);
      auto it = entries_.find(label);
      if (it == entries_.end()) continue;
      // Shedding copies is free: the enlarged set simply stops being
      // maintained, and the next installed copy set is the base one.
      it->second.copies = copyTargets(label);
      noteCopyHealth(label, it->second.copies);
      ++hotDemotions_;
    }
    pendingDemotions_.clear();
    std::sort(pendingPromotions_.begin(), pendingPromotions_.end());
    pendingPromotions_.erase(
        std::unique(pendingPromotions_.begin(), pendingPromotions_.end()),
        pendingPromotions_.end());
    for (const Label& label : pendingPromotions_) {
      if (boost_.size() >= loadBalance_.maxHotLeaves) break;
      if (boost_.find(label) != boost_.end()) continue;
      auto it = entries_.find(label);
      if (it == entries_.end()) continue;
      boost_.emplace(label, loadBalance_.boostCopies);
      // Ship the bucket to the new holders from the primary — the same
      // metered repair primitive crash recovery uses.
      ensureReplicated(label, it->second, it->second.copies[0].holder);
      ++hotPromotions_;
    }
    pendingPromotions_.clear();
  }

  /// Recomputes, at a quiescent point, the frozen read route of every
  /// boosted label: the copy with the least per-peer query load on the
  /// current meter, ties broken by lowest replica index (the order of
  /// the copy-target walk).  Handlers issuing reads mid-operation
  /// consult only this frozen table — never the live counters — so the
  /// routing decision is identical under any same-time delivery order.
  void refreshReadRouting() {
    if (!loadBalance_.enabled) return;
    frozenReadSalt_.clear();
    for (const auto& [label, extra] : boost_) {
      const auto it = entries_.find(label);
      if (it == entries_.end()) continue;
      frozenReadSalt_.emplace(label,
                              pickLeastLoadedSalt(it->second.copies));
    }
  }

  /// Read-replica routing info of `label` for hint piggybacking: the
  /// placement salt and a coarse load signal per copy-holder.  Empty
  /// unless the label is currently boosted — unboosted hints must stay
  /// byte-identical on the wire to the pre-balancing format.
  struct ReplicaReadInfo {
    std::vector<std::uint32_t> salts;
    std::vector<std::uint32_t> loads;
  };
  ReplicaReadInfo replicaReadInfo(const Label& label) const {
    ReplicaReadInfo out;
    if (!loadBalance_.enabled) return out;
    if (boost_.find(label) == boost_.end()) return out;
    const auto it = entries_.find(label);
    if (it == entries_.end()) return out;
    const auto& loads = net_->peerLoads();
    for (const CopyTarget& t : it->second.copies) {
      out.salts.push_back(static_cast<std::uint32_t>(t.salt));
      const std::uint64_t load = loads.countOf(net_->physicalOf(t.holder));
      out.loads.push_back(static_cast<std::uint32_t>(
          std::min<std::uint64_t>(load, 0xFFFFFFFFu)));
    }
    return out;
  }

  /// Leaves currently holding boosted (read-hot) copy sets.
  std::size_t boostedLeafCount() const noexcept { return boost_.size(); }
  bool isBoosted(const Label& label) const {
    return boost_.find(label) != boost_.end();
  }
  /// Monotone promotion/demotion event counters.
  std::uint64_t hotPromotions() const noexcept { return hotPromotions_; }
  std::uint64_t hotDemotions() const noexcept { return hotDemotions_; }

  /// Attaches a per-peer write-ahead log set (durable write path): from
  /// now on every bucket placement *applied* at a peer — the primary
  /// store of an asyncPut at delivery, and every placeLocal — appends a
  /// committed kPlace frame to that peer's log, keyed by the peer's
  /// stable name.  The WalSet is owned by the caller (it must outlive
  /// simulated crashes of the peers it logs, since it models their
  /// disks, not their memory).  Detach with nullptr.
  void attachWal(mlight::wal::WalSet* walSet) noexcept { wal_ = walSet; }
  mlight::wal::WalSet* wal() const noexcept { return wal_; }

  /// True when every copy of `label` died in a crash and nothing
  /// re-placed it since — reads of it fail; recovery layers use this to
  /// restore exactly what was lost and nothing else.
  bool isMourned(const Label& label) const {
    return mourned_.find(label) != mourned_.end();
  }

  /// Hard cap on distinct labels memoized by ringKey() below.  Workloads
  /// with mostly-unique labels (DST leaf cells under a deep static tree)
  /// would otherwise grow the memo without bound: the hash table's
  /// rehash and teardown costs come to dominate the run while the hit
  /// rate approaches zero.  Hot label sets (bucket labels, trie probe
  /// prefixes) are orders of magnitude smaller than this cap, so the
  /// workloads that benefit from the memo keep their hits.
  static constexpr std::size_t kRingKeyCacheCap = std::size_t{1} << 17;

  /// Ring position of a label's DHT key (salt 0 = primary key; higher
  /// salts are candidate replica keys).  Labels are immutable and the
  /// naming function is pure, so the label→id mapping is computed once
  /// per (label, salt) and cached (up to kRingKeyCacheCap labels) — the
  /// hot path of every locate probe and forwarding step no longer
  /// rebuilds strings and rehashes.  Ids for uncached labels are
  /// computed directly; caching is invisible to the simulation either
  /// way (the naming function is pure).
  RingId ringKey(const Label& label, std::size_t salt = 0) const {
    auto cached = ringKeyCache_.find(label);
    if (cached == ringKeyCache_.end()) {
      if (ringKeyCache_.size() >= kRingKeyCacheCap) {
        return computeRingKey(label, salt);
      }
      cached = ringKeyCache_.try_emplace(label).first;
    }
    std::vector<RingId>& salts = cached->second;
    while (salts.size() <= salt) {
      salts.push_back(computeRingKey(label, salts.size()));
    }
    return salts[salt];
  }

  /// Peer currently responsible for `label`'s primary key (no cost).
  RingId ownerOf(const Label& label) const {
    return net_->responsible(ringKey(label));
  }

  /// The copy placements of `label` on the current ring: targets[0] is
  /// the primary (salt 0); replicas land at successive salted keys,
  /// skipping salts whose owner was already chosen so copies are
  /// failure-independent (salts are probed in order, so the set is
  /// deterministic for a given ring).  This is the single
  /// holder-resolution point — placement, replica fan-out, crash repair
  /// and read failover all consume it, so no path can disagree about
  /// where the copies live.
  std::vector<CopyTarget> copyTargets(const Label& label) const {
    // Boosted labels (read-hot, see LoadBalancePolicy) want extra copies
    // on top of the durability replication factor; resolving the boost
    // here means placement, replica fan-out, crash repair, and read
    // failover all maintain the enlarged set without knowing about it.
    const std::size_t want = replication_ + boostOf(label);
    std::vector<CopyTarget> targets{CopyTarget{ownerOf(label), 0}};
    std::size_t salt = 1;
    // On tiny overlays there may be fewer peers than copies; stop after
    // a bounded number of attempts rather than spinning.
    std::size_t attempts = 0;
    while (targets.size() < want && attempts < 8 * want) {
      const RingId candidate = net_->responsible(ringKey(label, salt));
      const bool taken =
          std::find_if(targets.begin(), targets.end(),
                       [&](const CopyTarget& t) {
                         return t.holder == candidate;
                       }) != targets.end();
      if (!taken) targets.push_back(CopyTarget{candidate, salt});
      ++salt;
      ++attempts;
    }
    if (targets.size() < replication_) {
      // Degraded mode: the overlay has fewer distinct peers reachable
      // within the probe budget than the requested copies.  The bucket
      // is stored under-replicated (crash tolerance drops accordingly);
      // count it and warn once so small-overlay configurations are not
      // silently fragile.
      ++underReplicated_;
      if (!warnedUnderReplicated_ &&
          mlight::common::auditEnabled(
              mlight::common::AuditLevel::kBoundaries)) {
        warnedUnderReplicated_ = true;
        std::fprintf(stderr,
                     "mlight: WARNING: store '%s' placed only %zu of %zu "
                     "copies (probe budget %zu exhausted) — overlay too "
                     "small for the replication factor\n",
                     ns_.c_str(), targets.size(), replication_,
                     8 * want);
      }
    }
    if (mlight::common::auditEnabled(
            mlight::common::AuditLevel::kBoundaries)) {
      // Copies must land on pairwise-distinct peers (failure
      // independence) and never exceed the wanted copy count
      // (replication factor plus any hot-leaf boost).
      std::vector<std::uint64_t> positions;
      positions.reserve(targets.size());
      for (const CopyTarget& t : targets) positions.push_back(t.holder.value);
      mlight::common::auditReplicaHolders(positions, want);
    }
    return targets;
  }

  /// The peers holding the copies of `label` (holders[0] = primary) —
  /// the holder projection of copyTargets().
  std::vector<RingId> copyHolders(const Label& label) const {
    const std::vector<CopyTarget> targets = copyTargets(label);
    std::vector<RingId> holders;
    holders.reserve(targets.size());
    for (const CopyTarget& t : targets) holders.push_back(t.holder);
    return holders;
  }

  struct Found {
    RingId owner;
    std::size_t hops;
    double ms;       ///< simulated routing latency of this lookup
    Bucket* bucket;  ///< nullptr when no bucket is stored under the key.
    /// True when the read produced no answer at all — every candidate
    /// holder timed out or reported no copy (fault injection / crash
    /// loss).  Distinct from an authoritative NULL (`bucket == nullptr`
    /// with `failed == false`), which means the key is known empty.
    bool failed = false;
  };

  // --- Async RPC API ---------------------------------------------------
  //
  // The owner-side half of every store operation runs as an RPC handler
  // scheduled by the network: the initiator issues a typed envelope
  // (costing one DHT-lookup + one message at issue time, exactly where
  // the old synchronous code metered its lookup), and the continuation
  // executes "at" the owning peer when the message arrives, working from
  // the wire copy of the request.  The synchronous methods below are
  // thin drivers that issue the RPC and pump the event loop dry.

  /// Continuation invoked at the owner: the bucket stored under the
  /// requested label (nullptr if none) plus the delivery metadata
  /// (route, timestamps, round).
  using VisitFn =
      std::function<void(Bucket*, const mlight::dht::RpcDelivery&)>;

  /// Async DHT-get: routes a kGet envelope carrying `label` to its
  /// owner; `fn` runs at arrival with the bucket found there.  `round`
  /// is the RPC chain depth — handlers issuing follow-ups pass their
  /// delivery's round + 1.
  void asyncGet(RingId initiator, const Label& label, std::uint32_t round,
                VisitFn fn) {
    asyncAccess(mlight::dht::RpcKind::kGet, initiator, label, round,
                std::move(fn));
  }

  /// Async read-modify-write: like asyncGet but typed kVisit — the
  /// continuation may mutate the bucket or the store (split, append,
  /// re-place) on the owner's behalf.
  void asyncVisit(RingId initiator, const Label& label, std::uint32_t round,
                  VisitFn fn) {
    asyncAccess(mlight::dht::RpcKind::kVisit, initiator, label, round,
                std::move(fn));
  }

  /// Async DHT-put: serializes the bucket, ships it (and its replica
  /// copies) toward the owners, and stores the decoded copy when the
  /// primary envelope arrives.  Payload bytes are metered at issue, like
  /// the old synchronous put; replica envelopes are fire-and-forget.
  void asyncPut(RingId source, const Label& label, Bucket bucket,
                std::uint32_t round = 1) {
    // The bucket crosses the (simulated) wire: serialize for real, both
    // to keep the byte accounting exact and so the wire format is
    // exercised on every put; the owner stores what comes out of the
    // decoder at delivery.
    mlight::common::Writer bucketWire(net_->acquireBuffer());
    bucket.serialize(bucketWire);
    MLIGHT_CHECK(bucketWire.size() == bucket.byteSize(),
                 "byteSize() disagrees with the wire format");
    const std::vector<CopyTarget> targets = copyTargets(label);

    mlight::common::Writer body(net_->acquireBuffer());
    body.writeBitString(label);
    body.writeBytes(bucketWire.bytes());

    mlight::dht::RpcEnvelope env;
    env.kind = mlight::dht::RpcKind::kPut;
    env.from = source;
    env.round = round;
    env.payload = std::move(body).take();

    net_->sendRpc(
        ringKey(label), env,
        [this](const mlight::dht::RpcDelivery& d) {
          mlight::common::Reader r(d.env.payload);
          const Label wireLabel = r.readBitString();
          std::vector<std::uint8_t> bucketBytes = net_->acquireBuffer();
          r.readBytesInto(bucketBytes);
          mlight::common::Reader br(bucketBytes);
          Entry entry;
          // Resolve the holders on the ring as it is *now*: churn between
          // issue and delivery would otherwise record peers that no
          // longer own the salted keys, sending later replica updates to
          // the wrong peers.
          entry.copies = copyTargets(wireLabel);
          entry.bucket = Bucket::deserialize(br);
          MLIGHT_CHECK(br.atEnd(), "wire format left trailing bytes");
          mourned_.erase(wireLabel);
          noteCopyHealth(wireLabel, entry.copies);
          // Append-on-apply: the stored image is durably framed at the
          // peer that applied it (the wire bytes just decoded).
          walAppendPlace(d.route.owner, wireLabel, bucketBytes);
          entries_.insert_or_assign(wireLabel, std::move(entry));
          net_->releaseBuffer(std::move(bucketBytes));
        });
    net_->shipPayload(source, targets[0].holder, bucketWire.size(),
                      bucket.recordCount());
    for (std::size_t i = 1; i < targets.size(); ++i) {
      net_->sendRpc(ringKey(label, targets[i].salt), env,
                    [](const mlight::dht::RpcDelivery&) {});
      net_->shipPayload(source, targets[i].holder, bucketWire.size(),
                        bucket.recordCount());
    }
    net_->releaseBuffer(std::move(bucketWire).take());
  }

  /// Async hint probe (lookup-cache subsystem): a kHintProbe envelope
  /// carrying the label under test plus `extra` opaque bytes (the
  /// serialized hint — shipped so the owner-side verdict works from the
  /// wire copy like every other handler; re-read it from
  /// `d.env.payload` past the leading label).  Routes, meters, and fails
  /// over exactly like asyncGet; only the verb differs so traces and
  /// dead letters can tell hint traffic from search probes.
  ///
  /// `salt` targets a specific copy of a boosted leaf (the initiator's
  /// hint carries the replica set; least-loaded routing picks one).  The
  /// default 0 falls back to the store's frozen read route for the label
  /// (identity when balancing is off).  A salt that stopped being a copy
  /// (demotion, churn) is caught by the owner-side holdsCopy check and
  /// fails over — never a wrong answer.
  void asyncHintProbe(RingId initiator, const Label& label,
                      std::vector<std::uint8_t> extra, std::uint32_t round,
                      VisitFn fn, std::size_t salt = 0) {
    auto state = std::make_shared<AccessState>();
    state->kind = mlight::dht::RpcKind::kHintProbe;
    state->label = label;
    state->extra = std::move(extra);
    state->fn = std::move(fn);
    issueAccess(std::move(state), initiator, round,
                salt != 0 ? salt : frozenSaltFor(label));
  }

  /// Async batched put (durable write path): one kBatchPut envelope
  /// carrying the target label plus `recordsWire` — the serialized
  /// record group the client-side batcher assembled in a pooled buffer.
  /// Routes, retries, and fails over exactly like asyncGet (same
  /// AccessState machinery), so one envelope replaces N per-record
  /// round-trips.  The store does not apply the group itself: owner-side
  /// application (dedup, append, group split planning, WAL framing)
  /// belongs to the index layer, which runs it from the continuation —
  /// the wire copy of the group is re-read from `d.env.payload` past the
  /// leading label, like every other handler works from the wire.
  void asyncBatchPut(RingId initiator, const Label& label,
                     std::vector<std::uint8_t> recordsWire,
                     std::uint32_t round, VisitFn fn) {
    auto state = std::make_shared<AccessState>();
    state->kind = mlight::dht::RpcKind::kBatchPut;
    state->label = label;
    state->extra = std::move(recordsWire);
    state->fn = std::move(fn);
    issueAccess(std::move(state), initiator, round, /*salt=*/0);
  }

  /// One DHT-lookup: routes from `initiator` to the key's owner and
  /// returns the bucket stored there, if any.  Synchronous facade over
  /// asyncGet — issues the RPC and pumps the event loop to completion,
  /// so the simulated clock advances by the routing latency.
  Found routeAndFind(RingId initiator, const Label& label,
                     std::uint32_t round = 1) {
    Found out{};
    out.failed = true;  // cleared iff some holder actually answers
    asyncGet(initiator, label, round,
             [&out](Bucket* bucket, const mlight::dht::RpcDelivery& d) {
               out = Found{d.route.owner, d.route.hops, d.route.ms, bucket};
             });
    net_->run();
    return out;
  }

  /// Synchronous facade over asyncHintProbe, mirroring routeAndFind.
  Found hintProbeAndFind(RingId initiator, const Label& label,
                         std::vector<std::uint8_t> extra,
                         std::uint32_t round = 1, std::size_t salt = 0) {
    Found out{};
    out.failed = true;  // cleared iff some holder actually answers
    asyncHintProbe(
        initiator, label, std::move(extra), round,
        [&out](Bucket* bucket, const mlight::dht::RpcDelivery& d) {
          out = Found{d.route.owner, d.route.hops, d.route.ms, bucket};
        },
        salt);
    net_->run();
    return out;
  }

  /// Synchronous facade over asyncBatchPut, mirroring routeAndFind.
  Found batchPutAndFind(RingId initiator, const Label& label,
                        std::vector<std::uint8_t> recordsWire,
                        std::uint32_t round = 1) {
    Found out{};
    out.failed = true;  // cleared iff some holder actually answers
    asyncBatchPut(
        initiator, label, std::move(recordsWire), round,
        [&out](Bucket* bucket, const mlight::dht::RpcDelivery& d) {
          out = Found{d.route.owner, d.route.hops, d.route.ms, bucket};
        });
    net_->run();
    return out;
  }

  /// DHT-put: routes from `source`, ships the bucket payload to the owner
  /// of every copy (no bytes for copies the source itself owns), and
  /// stores/replaces it.  Returns the primary owner.
  RingId place(RingId source, const Label& label, Bucket bucket) {
    const RingId owner = ownerOf(label);
    asyncPut(source, label, std::move(bucket));
    net_->run();
    return owner;
  }

  /// Stores a bucket whose primary copy is created on the peer that
  /// already owns the key (e.g. the split child that keeps its parent's
  /// DHT key, Theorem 5) — no primary routing or shipping.  Replica
  /// copies, if configured, still cost a put each (from the primary,
  /// fire-and-forget).  The primary copy is stored immediately: this is
  /// a local operation at the owner, safe to call from RPC handlers.
  void placeLocal(const Label& label, Bucket bucket) {
    Entry entry;
    entry.copies = copyTargets(label);
    noteCopyHealth(label, entry.copies);
    if (wal_ != nullptr) {
      // Local application still crosses the durability boundary: frame
      // the image at the owning peer before it becomes the stored state.
      mlight::common::Writer w(net_->acquireBuffer());
      bucket.serialize(w);
      walAppendPlace(entry.copies[0].holder, label, w.bytes());
      net_->releaseBuffer(std::move(w).take());
    }
    for (std::size_t i = 1; i < entry.copies.size(); ++i) {
      mlight::common::Writer body(net_->acquireBuffer());
      body.writeBitString(label);
      mlight::dht::RpcEnvelope env;
      env.kind = mlight::dht::RpcKind::kPut;
      env.from = entry.copies[0].holder;
      env.payload = std::move(body).take();
      net_->sendRpc(ringKey(label, entry.copies[i].salt), std::move(env),
                    [](const mlight::dht::RpcDelivery&) {});
      net_->shipPayload(entry.copies[0].holder, entry.copies[i].holder,
                        bucket.byteSize(), bucket.recordCount());
    }
    entry.bucket = std::move(bucket);
    mourned_.erase(label);
    entries_.insert_or_assign(label, std::move(entry));
  }

  /// Accounts the cost of propagating an in-place bucket mutation (e.g.
  /// one appended record) to the replicas: one routed update envelope
  /// plus the payload per replica, fire-and-forget.  No-op when
  /// replication == 1.
  void shipToReplicas(RingId source, const Label& label, std::size_t bytes,
                      std::size_t records) {
    if (replication_ <= 1) return;
    const auto it = entries_.find(label);
    if (it == entries_.end()) return;
    // Resolve the replica set on the *current* ring (a cached holder
    // list can be stale across churn); any holder found missing gets
    // the full bucket first, then everyone receives the delta.
    ensureReplicated(label, it->second, source);
    const std::vector<CopyTarget>& copies = it->second.copies;
    for (std::size_t i = 1; i < copies.size(); ++i) {
      mlight::common::Writer body(net_->acquireBuffer());
      body.writeBitString(label);
      mlight::dht::RpcEnvelope env;
      env.kind = mlight::dht::RpcKind::kPut;
      env.from = source;
      env.payload = std::move(body).take();
      net_->sendRpc(ringKey(label, copies[i].salt), std::move(env),
                    [](const mlight::dht::RpcDelivery&) {});
      net_->shipPayload(source, copies[i].holder, bytes, records);
    }
  }

  /// Removes the bucket under `label`; returns true if one existed.
  bool erase(const Label& label) {
    underReplicatedLabels_.erase(label);
    return entries_.erase(label) > 0;
  }

  /// Local (unmetered) bucket access for assertions and statistics.
  Bucket* peek(const Label& label) {
    auto it = entries_.find(label);
    return it == entries_.end() ? nullptr : &it->second.bucket;
  }
  const Bucket* peek(const Label& label) const {
    auto it = entries_.find(label);
    return it == entries_.end() ? nullptr : &it->second.bucket;
  }

  std::size_t bucketCount() const noexcept { return entries_.size(); }

  /// Buckets irrecoverably lost to crashes (all copy-holders died).
  std::size_t lostBuckets() const noexcept { return lostBuckets_; }

  /// Buckets whose copies were re-created from a survivor after a crash
  /// (eager repair, metered inside the membership callback).
  std::size_t repairedBuckets() const noexcept { return repairedBuckets_; }

  /// Reads that produced no answer at all: every candidate holder either
  /// timed out (dead letter) or reported no copy, or the bucket was
  /// mourned (all copies crashed).  The continuation is *not* invoked
  /// for these — indexes surface the per-operation delta as
  /// QueryStats::failedProbes.
  std::size_t failedReads() const noexcept { return failedReads_; }

  /// Reads answered by a non-primary holder after the primary timed out
  /// or reported no copy.
  std::size_t failoverReads() const noexcept { return failoverReads_; }

  /// Successful failovers that re-replicated the bucket back to R copies
  /// (read-repair).
  std::size_t readRepairs() const noexcept { return readRepairs_; }

  /// placements that came up short of `replication` copies because the
  /// probe budget ran out (degraded mode — see copyTargets()).  A
  /// monotone event counter; for the *current* degradation level see
  /// underReplicatedBuckets().
  std::size_t underReplicatedPlacements() const noexcept {
    return underReplicated_;
  }

  /// Buckets currently stored with fewer than `replication` copies
  /// (level-triggered, unlike the monotone placement counter above):
  /// degradation inserts the label once, and any path that re-achieves R
  /// copies — eager crash repair, read-repair, or a replayed WAL batch
  /// re-placing the bucket — removes it.  Empty means fully replicated.
  std::size_t underReplicatedBuckets() const noexcept {
    return underReplicatedLabels_.size();
  }

  /// Labels with memoized ring keys (the ringKey() cache).  Bounded by
  /// the labels ever probed minus those mourned after a crash — the
  /// stats dump watches this for unbounded growth across churn epochs.
  std::size_t ringKeyCacheSize() const noexcept {
    return ringKeyCache_.size();
  }

  /// Current holder set recorded for `label` (empty if absent) — test
  /// and audit accessor.
  std::vector<RingId> holdersOf(const Label& label) const {
    std::vector<RingId> out;
    const auto it = entries_.find(label);
    if (it == entries_.end()) return out;
    out.reserve(it->second.copies.size());
    for (const CopyTarget& t : it->second.copies) out.push_back(t.holder);
    return out;
  }

  /// Visits every bucket in ascending label order (a sorted snapshot of
  /// the unordered map — see the determinism contract in docs/THEORY.md:
  /// consumers feed logs, stats dumps, and digests, so the visit order
  /// must not leak hash-table layout).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (const Label& label : mlight::common::sortedKeys(entries_)) {
      const Entry& entry = entries_.find(label)->second;
      fn(label, entry.bucket, entry.copies[0].holder);
    }
  }

  /// Records held by each peer via its *primary* copies (replicas are
  /// excluded so load figures stay comparable across replication
  /// factors; peers with no bucket are absent).
  std::map<RingId, std::size_t> perPeerRecords() const {
    std::map<RingId, std::size_t> load;
    forEach([&](const Label&, const Bucket& bucket, RingId owner) {
      load[owner] += bucket.recordCount();
    });
    return load;
  }

  /// Feeds every simulation-visible fact of this store into `d`: labels
  /// and serialized buckets in ascending label order, replica
  /// placements, mourned labels, and the loss/repair/failover counters.
  /// The ringKey memo is excluded — it is a pure function of its keys
  /// (host-side cache, never an answer source).
  void digestState(mlight::common::Digest& d) const {
    d.feed(std::string_view(ns_));
    d.feed(replication_);
    d.feed(entries_.size());
    for (const Label& label : mlight::common::sortedKeys(entries_)) {
      const Entry& entry = entries_.find(label)->second;
      mlight::common::Writer w;
      w.writeBitString(label);
      entry.bucket.serialize(w);
      d.feedBytes(w.bytes());
      d.feed(entry.copies.size());
      for (const CopyTarget& t : entry.copies) {
        d.feed(t.holder.value);
        d.feed(t.salt);
      }
    }
    d.feed(mourned_.size());
    for (const Label& label : mlight::common::sortedKeys(mourned_)) {
      d.feed(label);
    }
    d.feed(lostBuckets_);
    d.feed(repairedBuckets_);
    d.feed(failedReads_);
    d.feed(failoverReads_);
    d.feed(readRepairs_);
    d.feed(underReplicated_);
    d.feed(underReplicatedLabels_.size());
    for (const Label& label :
         mlight::common::sortedKeys(underReplicatedLabels_)) {
      d.feed(label);
    }
    // Query-load balancing state (all empty with balancing off, so the
    // disabled digest matches a build without the subsystem's state —
    // the counters still feed, as constants).  The ordered maps iterate
    // sorted; the pending vectors are queued in handler order, so they
    // feed through a sorted+deduped copy (exactly the view the drain
    // will consume).
    d.feed(boost_.size());
    for (const auto& [label, extra] : boost_) {
      d.feed(label);
      d.feed(extra);
    }
    d.feed(heat_.size());
    for (const auto& [label, h] : heat_) {
      d.feed(label);
      d.feed(h.startMs);
      d.feed(h.reads);
    }
    d.feed(frozenReadSalt_.size());
    for (const auto& [label, salt] : frozenReadSalt_) {
      d.feed(label);
      d.feed(salt);
    }
    const auto feedPendingSorted = [&d](std::vector<Label> pending) {
      std::sort(pending.begin(), pending.end());
      pending.erase(std::unique(pending.begin(), pending.end()),
                    pending.end());
      d.feed(pending.size());
      for (const Label& label : pending) d.feed(label);
    };
    feedPendingSorted(pendingPromotions_);
    feedPendingSorted(pendingDemotions_);
    d.feed(hotPromotions_);
    d.feed(hotDemotions_);
  }

 private:
  struct Entry {
    std::vector<CopyTarget> copies;  // copies[0] = primary placement
    Bucket bucket;
  };

  /// The naming function behind ringKey(): "<ns><label bits>" for the
  /// primary key, with "#r<salt>" appended for replica keys.  Built into
  /// a reusable scratch buffer — on cache-miss-heavy workloads this runs
  /// once per RPC, and the string temporaries of the naive
  /// concatenation were a measurable share of the run.
  RingId computeRingKey(const Label& label, std::size_t salt) const {
    std::string& key = keyScratch_;
    key.assign(ns_);
    for (std::size_t i = 0; i < label.size(); ++i) {
      key.push_back(label.bit(i) ? '1' : '0');
    }
    if (salt != 0) {
      key += "#r";
      key += std::to_string(salt);
    }
    return mlight::dht::keyId(key);
  }

  /// Extra copies currently granted to `label` (0 for cold leaves, and
  /// for everything when balancing is off — boost_ stays empty then).
  std::size_t boostOf(const Label& label) const {
    if (boost_.empty()) return 0;
    const auto it = boost_.find(label);
    return it == boost_.end() ? 0 : it->second;
  }

  /// The frozen read route for `label` (see refreshReadRouting): 0 —
  /// the primary — unless a refresh chose a less-loaded copy.  Safe to
  /// call from RPC handlers: the table is only written at quiescence.
  std::size_t frozenSaltFor(const Label& label) const {
    if (frozenReadSalt_.empty()) return 0;
    const auto it = frozenReadSalt_.find(label);
    return it == frozenReadSalt_.end() ? 0 : it->second;
  }

  /// Least-loaded copy by the peer-load meter; ties break toward the
  /// lowest replica index (strict < keeps the first minimum), which is
  /// the deterministic rule the shuffle/shard matrices rely on.
  std::size_t pickLeastLoadedSalt(
      const std::vector<CopyTarget>& copies) const {
    std::size_t bestSalt = 0;
    std::uint64_t bestLoad = ~std::uint64_t{0};
    const auto& loads = net_->peerLoads();
    for (const CopyTarget& t : copies) {
      const std::uint64_t load = loads.countOf(net_->physicalOf(t.holder));
      if (load < bestLoad) {
        bestLoad = load;
        bestSalt = t.salt;
      }
    }
    return bestSalt;
  }

  /// Owner-side heat accounting, called from the read-serving handler.
  /// Only counters and pending-decision sets are touched here — reads
  /// at equal simulated time commute (each adds one; whether a label
  /// crossed `promoteReads` within the window is a property of the
  /// count, not of the order), so this is handler-safe under tie
  /// shuffling.  The placement side effects happen in
  /// drainLoadBalance(), at quiescence, in sorted label order.
  void noteHeat(const Label& label) {
    if (!loadBalance_.enabled) return;
    HeatWindow& h = heat_[label];
    const double now = net_->now();
    const bool boosted = boost_.find(label) != boost_.end();
    if (now - h.startMs >= loadBalance_.windowMs) {
      if (boosted && h.reads < loadBalance_.demoteReads) {
        pendingDemotions_.push_back(label);
      }
      h.startMs = now;
      h.reads = 0;
    }
    ++h.reads;
    if (!boosted && h.reads == loadBalance_.promoteReads &&
        boost_.size() < loadBalance_.maxHotLeaves) {
      pendingPromotions_.push_back(label);
    }
  }

  static bool holdsCopy(const Entry& entry, RingId vnode) {
    return std::find_if(entry.copies.begin(), entry.copies.end(),
                        [&](const CopyTarget& t) {
                          return t.holder == vnode;
                        }) != entry.copies.end();
  }

  /// The shared repair/refresh primitive: recomputes the copy set on the
  /// current ring, ships the full bucket (from `source`) to every wanted
  /// holder that lacks a copy, and installs the fresh set on the entry.
  /// Returns true when at least one copy had to be shipped.
  bool ensureReplicated(const Label& label, Entry& entry, RingId source) {
    std::vector<CopyTarget> want = copyTargets(label);
    bool shipped = false;
    for (const CopyTarget& t : want) {
      if (!holdsCopy(entry, t.holder)) {
        net_->shipPayload(source, t.holder, entry.bucket.byteSize(),
                          entry.bucket.recordCount());
        shipped = true;
      }
    }
    entry.copies = std::move(want);
    noteCopyHealth(label, entry.copies);
    return shipped;
  }

  /// Level-triggered under-replication bookkeeping, updated at every
  /// point a copy set is installed on an entry: a short set inserts the
  /// label (idempotent — re-degrading never double-counts), a full set
  /// removes it, and when the last degraded label recovers the one-time
  /// warning latch resets so a *new* degradation epoch warns again.
  void noteCopyHealth(const Label& label,
                      const std::vector<CopyTarget>& copies) {
    if (copies.size() < replication_) {
      underReplicatedLabels_.insert(label);
      return;
    }
    if (underReplicatedLabels_.erase(label) > 0 &&
        underReplicatedLabels_.empty()) {
      warnedUnderReplicated_ = false;
    }
  }

  /// Frames a committed kPlace record in the applying peer's WAL (no-op
  /// without an attached WalSet).
  void walAppendPlace(RingId atVnode, const Label& label,
                      std::span<const std::uint8_t> bucketBytes) {
    if (wal_ == nullptr) return;
    wal_->forPeer(net_->physicalNameOf(atVnode))
        .appendCommitted(mlight::wal::FrameKind::kPlace, label, bucketBytes);
  }

  /// Failover bookkeeping shared by the attempts of one logical read:
  /// which holders already missed (or went dark), and the copy-target
  /// list (resolved lazily — the fault-free fast path never computes
  /// it).
  struct AccessState {
    mlight::dht::RpcKind kind;
    Label label;
    /// Opaque bytes appended after the label (hint-probe body); empty
    /// for plain get/visit.  Kept in the state so failover retransmits
    /// carry the same wire body as the original attempt.
    std::vector<std::uint8_t> extra;
    VisitFn fn;
    std::vector<RingId> tried;
    std::vector<CopyTarget> targets;
    bool failedOver = false;
  };

  /// Shared body of asyncGet/asyncVisit: the label travels in the
  /// envelope; the handler re-reads it from the wire and resolves the
  /// bucket in owner-side state at delivery time.
  ///
  /// Failover: a read is answered by the owner of the primary key when
  /// it holds a copy.  If that owner reports no copy after a crash
  /// (repair not yet caught up) or never answers (timeout dead letter
  /// under fault injection), the request is re-issued — one round
  /// deeper — to the next holder from the copy-target walk, until some
  /// holder answers or every candidate was tried (a failed read; the
  /// continuation never runs).  A successful failover read-repairs the
  /// bucket back to R copies on the current ring.
  void asyncAccess(mlight::dht::RpcKind kind, RingId initiator,
                   const Label& label, std::uint32_t round, VisitFn fn) {
    auto state = std::make_shared<AccessState>();
    state->kind = kind;
    state->label = label;
    state->fn = std::move(fn);
    // Pure reads of boosted leaves route to the frozen least-loaded
    // copy; visits may mutate and always start at the primary.
    const std::size_t salt =
        kind == mlight::dht::RpcKind::kGet ? frozenSaltFor(label) : 0;
    issueAccess(std::move(state), initiator, round, salt);
  }

  void issueAccess(std::shared_ptr<AccessState> state, RingId initiator,
                   std::uint32_t round, std::size_t salt) {
    mlight::common::Writer body(net_->acquireBuffer());
    body.writeBitString(state->label);
    if (!state->extra.empty()) body.writeBytes(state->extra);
    mlight::dht::RpcEnvelope env;
    env.kind = state->kind;
    env.from = initiator;
    env.round = round;
    env.payload = std::move(body).take();
    net_->sendRpc(
        ringKey(state->label, salt), std::move(env),
        [this, state](const mlight::dht::RpcDelivery& d) {
          mlight::common::Reader r(d.env.payload);
          const Label wireLabel = r.readBitString();
          auto it = entries_.find(wireLabel);
          if (it == entries_.end()) {
            if (mourned_.find(wireLabel) != mourned_.end()) {
              // Every copy died with its holders: nobody can answer.
              ++failedReads_;
              return;
            }
            // Authoritative NULL: the key was never stored.
            state->fn(nullptr, d);
            return;
          }
          Entry& entry = it->second;
          if (!holdsCopy(entry, d.route.owner)) {
            // The owner of this salted key holds no copy (a crash moved
            // ownership before repair caught up): fail over to the next
            // holder, forwarding from this peer one round deeper.
            state->tried.push_back(d.route.owner);
            failoverNext(state, d.route.owner, d.env.round + 1);
            return;
          }
          if (state->failedOver) {
            ++failoverReads_;
            if (ensureReplicated(wireLabel, entry, d.route.owner)) {
              ++readRepairs_;
            }
          }
          if (state->kind == mlight::dht::RpcKind::kGet ||
              state->kind == mlight::dht::RpcKind::kHintProbe) {
            noteHeat(wireLabel);
          }
          state->fn(&entry.bucket, d);
        },
        [this, state](const mlight::dht::RpcEnvelope& deadEnv,
                      std::size_t /*attempts*/) {
          // The target never answered despite retries (dead letter):
          // treat it as unreachable and fail over from the initiator.
          state->tried.push_back(deadEnv.to);
          failoverNext(state, deadEnv.from, deadEnv.round + 1);
        });
  }

  void failoverNext(const std::shared_ptr<AccessState>& state, RingId from,
                    std::uint32_t round) {
    state->failedOver = true;
    if (state->targets.empty()) state->targets = copyTargets(state->label);
    for (const CopyTarget& t : state->targets) {
      if (std::find(state->tried.begin(), state->tried.end(), t.holder) !=
          state->tried.end()) {
        continue;
      }
      issueAccess(state, from, round, t.salt);
      return;
    }
    ++failedReads_;  // every candidate holder missed or went dark
  }

  void onMembershipChange(
      const mlight::dht::Network::MembershipChange& change) {
    using Kind = mlight::dht::Network::MembershipChange::Kind;
    const auto isDead = [&](RingId id) {
      return std::find(change.removedVnodes.begin(),
                       change.removedVnodes.end(),
                       id) != change.removedVnodes.end();
    };

    // Walk a sorted snapshot, not the hash table: the loop feeds metered
    // repair traffic and (under kEager) replica fan-out, and the mourned
    // set below feeds failed-read accounting — none of which may depend
    // on unordered-map layout (determinism contract, docs/THEORY.md).
    std::vector<Label> lost;
    for (const Label& sortedLabel : mlight::common::sortedKeys(entries_)) {
      auto entryIt = entries_.find(sortedLabel);
      const Label& label = entryIt->first;
      Entry& entry = entryIt->second;
      RingId source = entry.copies[0].holder;
      if (change.kind == Kind::kCrash) {
        // A crash destroys the copies the dead peer held; the bucket
        // survives iff some holder is still alive and becomes the
        // repair source.
        bool survived = false;
        for (const CopyTarget& copy : entry.copies) {
          if (!isDead(copy.holder)) {
            survived = true;
            source = copy.holder;
            break;
          }
        }
        if (!survived) {
          lost.push_back(label);
          continue;
        }
        if (repair_ == RepairPolicy::kOnRead) {
          // Deferred repair: drop the dead copies and leave the bucket
          // degraded — the first read that misses at the new owner
          // fails over to a survivor and read-repairs it.
          std::erase_if(entry.copies, [&](const CopyTarget& copy) {
            return isDead(copy.holder);
          });
          noteCopyHealth(label, entry.copies);
          continue;
        }
        if (isDead(entry.copies[0].holder)) ++repairedBuckets_;
      }
      // Bring every copy to the peers now responsible on the new ring,
      // shipping from the (surviving) source.
      const std::vector<CopyTarget> want = copyTargets(label);
      for (const CopyTarget& t : want) {
        const bool alreadyHeld = holdsCopy(entry, t.holder) &&
                                 !isDead(t.holder);
        if (!alreadyHeld) {
          net_->shipPayload(source, t.holder, entry.bucket.byteSize(),
                            entry.bucket.recordCount());
        }
      }
      entry.copies = want;
      noteCopyHealth(label, entry.copies);
    }
    for (const Label& label : lost) {
      entries_.erase(label);
      underReplicatedLabels_.erase(label);  // nothing stored to be degraded
      mourned_.insert(label);
      // A mourned label will never be probed through the cache again
      // (reads fail fast); dropping its memoized ring keys keeps the
      // cache from growing without bound across churn epochs.
      ringKeyCache_.erase(label);
      ++lostBuckets_;
    }
  }

  mlight::dht::Network* net_;
  std::string ns_;
  std::size_t replication_ = 1;
  RepairPolicy repair_ = RepairPolicy::kEager;

  std::uint64_t storeHandle_ = 0;
  std::size_t lostBuckets_ = 0;
  std::size_t repairedBuckets_ = 0;
  std::size_t failedReads_ = 0;
  std::size_t failoverReads_ = 0;
  std::size_t readRepairs_ = 0;
  mutable std::size_t underReplicated_ = 0;
  mutable bool warnedUnderReplicated_ = false;
  mlight::wal::WalSet* wal_ = nullptr;
  // --- Query-load balancing state (all empty when disabled) -----------
  LoadBalancePolicy loadBalance_;
  /// Owner-side windowed read counters per label.
  struct HeatWindow {
    double startMs = 0.0;
    std::uint32_t reads = 0;
  };
  /// Ordered maps on purpose: digestState and drain/refresh walk them,
  /// and sorted iteration keeps those walks schedule-independent.
  std::map<Label, HeatWindow> heat_;
  /// label -> extra copies currently granted (promotion installs,
  /// demotion erases).
  std::map<Label, std::size_t> boost_;
  /// label -> salt of the least-loaded copy, frozen at the last
  /// refreshReadRouting() (read-only between quiescent points).
  std::map<Label, std::size_t> frozenReadSalt_;
  /// Decisions queued by noteHeat (handler context), applied by
  /// drainLoadBalance (quiescence) in sorted order.
  std::vector<Label> pendingPromotions_;
  std::vector<Label> pendingDemotions_;
  std::uint64_t hotPromotions_ = 0;
  std::uint64_t hotDemotions_ = 0;
  std::unordered_map<Label, Entry, mlight::common::BitStringHash> entries_;
  /// Labels currently stored with fewer than `replication` copies — see
  /// underReplicatedBuckets() / noteCopyHealth().
  std::unordered_set<Label, mlight::common::BitStringHash>
      underReplicatedLabels_;
  /// Labels whose every copy died in a crash: reads of these fail
  /// (counted) instead of answering an authoritative NULL.  A later
  /// re-place of the label clears the mourning.
  std::unordered_set<Label, mlight::common::BitStringHash> mourned_;
  mutable std::unordered_map<Label, std::vector<RingId>,
                             mlight::common::BitStringHash>
      ringKeyCache_;
  /// Scratch for computeRingKey() — reused so uncached key derivations
  /// allocate nothing in steady state.
  mutable std::string keyScratch_;
};

}  // namespace mlight::store
