// Typed key→bucket storage co-located with DHT ownership.
//
// Over-DHT indexes store application buckets (label store + record store in
// m-LIGHT, trie nodes in PHT, tree nodes in DST) under DHT keys.  The
// DistributedStore keeps each bucket together with the peer currently
// responsible for its key, meters every routed access through the Network,
// ships serialized payload when buckets move between peers, and re-homes
// buckets when membership changes (churn).
//
// Replication (OpenDHT-style key salting): with replication factor R > 1,
// every bucket also lives at the owners of R-1 salted keys.  Graceful
// churn re-homes all copies; a *crash* loses exactly the copies the dead
// peer held — a bucket survives iff some copy-holder survives, in which
// case missing copies are re-created from a survivor (repair traffic).
// With R = 1 a crash loses the bucket outright; lostBuckets() reports it
// so upper layers can detect the damage.
//
// Bucket requirements (checked by concept): byteSize() — serialized size
// used for data-movement accounting; recordCount() — number of records,
// used for load statistics and record-movement accounting.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bitstring.h"
#include "common/check.h"
#include "common/invariants.h"
#include "common/serde.h"
#include "dht/network.h"

namespace mlight::store {

template <typename B>
concept StorableBucket =
    requires(const B& b, mlight::common::Writer& w,
             mlight::common::Reader& r) {
      { b.byteSize() } -> std::convertible_to<std::size_t>;
      { b.recordCount() } -> std::convertible_to<std::size_t>;
      { b.serialize(w) };
      { B::deserialize(r) } -> std::same_as<B>;
    };

template <StorableBucket Bucket>
class DistributedStore {
 public:
  using Label = mlight::common::BitString;
  using RingId = mlight::dht::RingId;

  /// `ns` namespaces this index's keys inside the shared DHT key space
  /// (multiple indexes can share one overlay without colliding).
  /// `replication` >= 1 is the total number of copies per bucket.
  DistributedStore(mlight::dht::Network& net, std::string ns,
                   std::size_t replication = 1)
      : net_(&net), ns_(std::move(ns)), replication_(replication) {
    storeHandle_ = net_->registerStore(
        [this](const mlight::dht::Network::MembershipChange& change) {
          onMembershipChange(change);
        });
  }

  ~DistributedStore() { net_->unregisterStore(storeHandle_); }

  DistributedStore(const DistributedStore&) = delete;
  DistributedStore& operator=(const DistributedStore&) = delete;

  std::size_t replication() const noexcept { return replication_; }

  /// Ring position of a label's DHT key (salt 0 = primary key; higher
  /// salts are candidate replica keys).  Labels are immutable and the
  /// naming function is pure, so the label→id mapping is computed once
  /// per (label, salt) and cached forever — the hot path of every locate
  /// probe and forwarding step no longer rebuilds strings and rehashes.
  RingId ringKey(const Label& label, std::size_t salt = 0) const {
    std::vector<RingId>& salts = ringKeyCache_[label];
    while (salts.size() <= salt) {
      const std::size_t s = salts.size();
      if (s == 0) {
        salts.push_back(mlight::dht::keyId(ns_ + label.toString()));
      } else {
        salts.push_back(mlight::dht::keyId(ns_ + label.toString() + "#r" +
                                           std::to_string(s)));
      }
    }
    return salts[salt];
  }

  /// Peer currently responsible for `label`'s primary key (no cost).
  RingId ownerOf(const Label& label) const {
    return net_->responsible(ringKey(label));
  }

  /// The peers holding the copies of `label` on the current ring:
  /// holders[0] is the primary; replicas are placed at successive salted
  /// keys, skipping peers already chosen so copies are failure-
  /// independent (salts are probed in order, so the set is deterministic
  /// for a given ring).
  std::vector<RingId> copyHolders(const Label& label) const {
    std::vector<RingId> holders{ownerOf(label)};
    std::size_t salt = 1;
    // On tiny overlays there may be fewer peers than copies; stop after
    // a bounded number of attempts rather than spinning.
    std::size_t attempts = 0;
    while (holders.size() < replication_ && attempts < 8 * replication_) {
      const RingId candidate = net_->responsible(ringKey(label, salt));
      ++salt;
      ++attempts;
      if (std::find(holders.begin(), holders.end(), candidate) ==
          holders.end()) {
        holders.push_back(candidate);
      }
    }
    if (mlight::common::auditEnabled(
            mlight::common::AuditLevel::kBoundaries)) {
      // Copies must land on pairwise-distinct peers (failure
      // independence) and never exceed the replication factor.
      std::vector<std::uint64_t> positions;
      positions.reserve(holders.size());
      for (const RingId id : holders) positions.push_back(id.value);
      mlight::common::auditReplicaHolders(positions, replication_);
    }
    return holders;
  }

  struct Found {
    RingId owner;
    std::size_t hops;
    double ms;       ///< simulated routing latency of this lookup
    Bucket* bucket;  ///< nullptr when no bucket is stored under the key.
  };

  // --- Async RPC API ---------------------------------------------------
  //
  // The owner-side half of every store operation runs as an RPC handler
  // scheduled by the network: the initiator issues a typed envelope
  // (costing one DHT-lookup + one message at issue time, exactly where
  // the old synchronous code metered its lookup), and the continuation
  // executes "at" the owning peer when the message arrives, working from
  // the wire copy of the request.  The synchronous methods below are
  // thin drivers that issue the RPC and pump the event loop dry.

  /// Continuation invoked at the owner: the bucket stored under the
  /// requested label (nullptr if none) plus the delivery metadata
  /// (route, timestamps, round).
  using VisitFn =
      std::function<void(Bucket*, const mlight::dht::RpcDelivery&)>;

  /// Async DHT-get: routes a kGet envelope carrying `label` to its
  /// owner; `fn` runs at arrival with the bucket found there.  `round`
  /// is the RPC chain depth — handlers issuing follow-ups pass their
  /// delivery's round + 1.
  void asyncGet(RingId initiator, const Label& label, std::uint32_t round,
                VisitFn fn) {
    asyncAccess(mlight::dht::RpcKind::kGet, initiator, label, round,
                std::move(fn));
  }

  /// Async read-modify-write: like asyncGet but typed kVisit — the
  /// continuation may mutate the bucket or the store (split, append,
  /// re-place) on the owner's behalf.
  void asyncVisit(RingId initiator, const Label& label, std::uint32_t round,
                  VisitFn fn) {
    asyncAccess(mlight::dht::RpcKind::kVisit, initiator, label, round,
                std::move(fn));
  }

  /// Async DHT-put: serializes the bucket, ships it (and its replica
  /// copies) toward the owners, and stores the decoded copy when the
  /// primary envelope arrives.  Payload bytes are metered at issue, like
  /// the old synchronous put; replica envelopes are fire-and-forget.
  void asyncPut(RingId source, const Label& label, Bucket bucket,
                std::uint32_t round = 1) {
    // The bucket crosses the (simulated) wire: serialize for real, both
    // to keep the byte accounting exact and so the wire format is
    // exercised on every put; the owner stores what comes out of the
    // decoder at delivery.
    mlight::common::Writer bucketWire;
    bucket.serialize(bucketWire);
    MLIGHT_CHECK(bucketWire.size() == bucket.byteSize(),
                 "byteSize() disagrees with the wire format");
    const std::vector<RingId> holders = copyHolders(label);

    mlight::common::Writer body;
    body.writeBitString(label);
    body.writeBytes(bucketWire.bytes());

    mlight::dht::RpcEnvelope env;
    env.kind = mlight::dht::RpcKind::kPut;
    env.from = source;
    env.round = round;
    env.payload = std::move(body).take();

    net_->sendRpc(
        ringKey(label), env,
        [this, holders](const mlight::dht::RpcDelivery& d) {
          mlight::common::Reader r(d.env.payload);
          const Label wireLabel = r.readBitString();
          const std::vector<std::uint8_t> bucketBytes = r.readBytes();
          mlight::common::Reader br(bucketBytes);
          Entry entry;
          entry.holders = holders;
          entry.bucket = Bucket::deserialize(br);
          MLIGHT_CHECK(br.atEnd(), "wire format left trailing bytes");
          entries_.insert_or_assign(wireLabel, std::move(entry));
        });
    net_->shipPayload(source, holders[0], bucketWire.size(),
                      bucket.recordCount());
    for (std::size_t i = 1; i < holders.size(); ++i) {
      net_->sendRpc(ringKey(label, i), env,
                    [](const mlight::dht::RpcDelivery&) {});
      net_->shipPayload(source, holders[i], bucketWire.size(),
                        bucket.recordCount());
    }
  }

  /// One DHT-lookup: routes from `initiator` to the key's owner and
  /// returns the bucket stored there, if any.  Synchronous facade over
  /// asyncGet — issues the RPC and pumps the event loop to completion,
  /// so the simulated clock advances by the routing latency.
  Found routeAndFind(RingId initiator, const Label& label,
                     std::uint32_t round = 1) {
    Found out{};
    asyncGet(initiator, label, round,
             [&out](Bucket* bucket, const mlight::dht::RpcDelivery& d) {
               out = Found{d.route.owner, d.route.hops, d.route.ms, bucket};
             });
    net_->run();
    return out;
  }

  /// DHT-put: routes from `source`, ships the bucket payload to the owner
  /// of every copy (no bytes for copies the source itself owns), and
  /// stores/replaces it.  Returns the primary owner.
  RingId place(RingId source, const Label& label, Bucket bucket) {
    const RingId owner = ownerOf(label);
    asyncPut(source, label, std::move(bucket));
    net_->run();
    return owner;
  }

  /// Stores a bucket whose primary copy is created on the peer that
  /// already owns the key (e.g. the split child that keeps its parent's
  /// DHT key, Theorem 5) — no primary routing or shipping.  Replica
  /// copies, if configured, still cost a put each (from the primary,
  /// fire-and-forget).  The primary copy is stored immediately: this is
  /// a local operation at the owner, safe to call from RPC handlers.
  void placeLocal(const Label& label, Bucket bucket) {
    Entry entry;
    entry.holders = copyHolders(label);
    for (std::size_t i = 1; i < entry.holders.size(); ++i) {
      mlight::common::Writer body;
      body.writeBitString(label);
      mlight::dht::RpcEnvelope env;
      env.kind = mlight::dht::RpcKind::kPut;
      env.from = entry.holders[0];
      env.payload = std::move(body).take();
      net_->sendRpc(ringKey(label, i), std::move(env),
                    [](const mlight::dht::RpcDelivery&) {});
      net_->shipPayload(entry.holders[0], entry.holders[i],
                        bucket.byteSize(), bucket.recordCount());
    }
    entry.bucket = std::move(bucket);
    entries_.insert_or_assign(label, std::move(entry));
  }

  /// Accounts the cost of propagating an in-place bucket mutation (e.g.
  /// one appended record) to the replicas: one routed update envelope
  /// plus the payload per replica, fire-and-forget.  No-op when
  /// replication == 1.
  void shipToReplicas(RingId source, const Label& label, std::size_t bytes,
                      std::size_t records) {
    if (replication_ <= 1) return;
    const auto it = entries_.find(label);
    if (it == entries_.end()) return;
    for (std::size_t i = 1; i < it->second.holders.size(); ++i) {
      mlight::common::Writer body;
      body.writeBitString(label);
      mlight::dht::RpcEnvelope env;
      env.kind = mlight::dht::RpcKind::kPut;
      env.from = source;
      env.payload = std::move(body).take();
      net_->sendRpc(ringKey(label, i), std::move(env),
                    [](const mlight::dht::RpcDelivery&) {});
      net_->shipPayload(source, it->second.holders[i], bytes, records);
    }
  }

  /// Removes the bucket under `label`; returns true if one existed.
  bool erase(const Label& label) { return entries_.erase(label) > 0; }

  /// Local (unmetered) bucket access for assertions and statistics.
  Bucket* peek(const Label& label) {
    auto it = entries_.find(label);
    return it == entries_.end() ? nullptr : &it->second.bucket;
  }
  const Bucket* peek(const Label& label) const {
    auto it = entries_.find(label);
    return it == entries_.end() ? nullptr : &it->second.bucket;
  }

  std::size_t bucketCount() const noexcept { return entries_.size(); }

  /// Buckets irrecoverably lost to crashes (all copy-holders died).
  std::size_t lostBuckets() const noexcept { return lostBuckets_; }

  /// Buckets whose copies were re-created from a survivor after a crash.
  std::size_t repairedBuckets() const noexcept { return repairedBuckets_; }

  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (const auto& [label, entry] : entries_) {
      fn(label, entry.bucket, entry.holders[0]);
    }
  }

  /// Records held by each peer via its *primary* copies (replicas are
  /// excluded so load figures stay comparable across replication
  /// factors; peers with no bucket are absent).
  std::map<RingId, std::size_t> perPeerRecords() const {
    std::map<RingId, std::size_t> load;
    for (const auto& [label, entry] : entries_) {
      load[entry.holders[0]] += entry.bucket.recordCount();
    }
    return load;
  }

 private:
  struct Entry {
    std::vector<RingId> holders;  // holders[0] = primary copy
    Bucket bucket;
  };

  /// Shared body of asyncGet/asyncVisit: the label travels in the
  /// envelope; the handler re-reads it from the wire and resolves the
  /// bucket in owner-side state at delivery time.
  void asyncAccess(mlight::dht::RpcKind kind, RingId initiator,
                   const Label& label, std::uint32_t round, VisitFn fn) {
    mlight::common::Writer body;
    body.writeBitString(label);
    mlight::dht::RpcEnvelope env;
    env.kind = kind;
    env.from = initiator;
    env.round = round;
    env.payload = std::move(body).take();
    net_->sendRpc(ringKey(label), std::move(env),
                  [this, fn = std::move(fn)](
                      const mlight::dht::RpcDelivery& d) {
                    mlight::common::Reader r(d.env.payload);
                    const Label wireLabel = r.readBitString();
                    auto it = entries_.find(wireLabel);
                    Bucket* bucket =
                        (it == entries_.end()) ? nullptr : &it->second.bucket;
                    fn(bucket, d);
                  });
  }

  void onMembershipChange(
      const mlight::dht::Network::MembershipChange& change) {
    using Kind = mlight::dht::Network::MembershipChange::Kind;
    const auto isDead = [&](RingId id) {
      return std::find(change.removedVnodes.begin(),
                       change.removedVnodes.end(),
                       id) != change.removedVnodes.end();
    };

    std::vector<Label> lost;
    for (auto& [label, entry] : entries_) {
      RingId source = entry.holders[0];
      if (change.kind == Kind::kCrash) {
        // A crash destroys the copies the dead peer held; the bucket
        // survives iff some holder is still alive and becomes the
        // repair source.
        bool survived = false;
        for (const RingId holder : entry.holders) {
          if (!isDead(holder)) {
            survived = true;
            source = holder;
            break;
          }
        }
        if (!survived) {
          lost.push_back(label);
          continue;
        }
        if (isDead(entry.holders[0])) ++repairedBuckets_;
      }
      // Bring every copy to the peers now responsible on the new ring,
      // shipping from the (surviving) source.
      const std::vector<RingId> want = copyHolders(label);
      for (const RingId holder : want) {
        const bool alreadyHeld =
            std::find(entry.holders.begin(), entry.holders.end(),
                      holder) != entry.holders.end() &&
            !isDead(holder);
        if (!alreadyHeld) {
          net_->shipPayload(source, holder, entry.bucket.byteSize(),
                            entry.bucket.recordCount());
        }
      }
      entry.holders = want;
    }
    for (const Label& label : lost) {
      entries_.erase(label);
      ++lostBuckets_;
    }
  }

  mlight::dht::Network* net_;
  std::string ns_;
  std::size_t replication_ = 1;

  std::uint64_t storeHandle_ = 0;
  std::size_t lostBuckets_ = 0;
  std::size_t repairedBuckets_ = 0;
  std::unordered_map<Label, Entry, mlight::common::BitStringHash> entries_;
  mutable std::unordered_map<Label, std::vector<RingId>,
                             mlight::common::BitStringHash>
      ringKeyCache_;
};

}  // namespace mlight::store
