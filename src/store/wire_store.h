// Owner-side handler entry points for the wire transport.
//
// A physical peer serving real traffic holds one WireStore: a sorted
// record store (u64 key -> u64 value) plus the request dispatcher that
// turns an inbound RpcEnvelope into the kResponse envelope to ship
// back.  The same class serves both transport backends — the simulator
// invokes handle() from a Network delivery handler, a TcpPeerServer
// invokes it from its socket event loop — so "0 wrong answers" on the
// wire is checkable against the simulated world byte for byte.
//
// Supported verbs and payload formats (all little-endian serde):
//   kBatchPut  request:  u32 count, count x (u64 key, u64 value)
//              response: u32 stored
//   kGet       request:  u64 key
//              response: u8 found, u64 value (0 when absent)
//   kVisit     request:  u64 lo, u64 hi          — inclusive key range
//              response: u32 count, count x (u64 key, u64 value)
//                        (this peer's records in [lo, hi], ascending)
//
// Record keys are application-level u64s; their ring placement is
// wireRingKey() (a splitmix64 mix), shared by clients of both backends
// so ownership agrees everywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "common/serde.h"
#include "dht/id.h"
#include "dht/rpc.h"

namespace mlight::store {

/// Ring position of a wire record key: splitmix64 finalizer, a cheap
/// bijective mix giving the uniform placement consistent hashing needs.
/// Both transport backends MUST place through this one function.
inline dht::RingId wireRingKey(std::uint64_t recordKey) noexcept {
  std::uint64_t z = recordKey + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return dht::RingId{z ^ (z >> 31)};
}

class WireStore {
 public:
  using Record = std::pair<std::uint64_t, std::uint64_t>;

  /// Applies `req` against local state and returns the response
  /// envelope (kind kResponse, id echoed for client-side correlation,
  /// from/to swapped).  Throws common::SerdeError on a malformed or
  /// unsupported request — the transport drops the connection, exactly
  /// as it would for a corrupt frame.
  dht::RpcEnvelope handle(const dht::RpcEnvelope& req) {
    dht::RpcEnvelope resp;
    resp.id = req.id;
    resp.kind = dht::RpcKind::kResponse;
    resp.from = req.to;
    resp.to = req.from;
    resp.round = req.round;
    common::Reader r(req.payload);
    common::Writer w;
    switch (req.kind) {
      case dht::RpcKind::kBatchPut: {
        const std::uint32_t count = r.readCount(16);
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint64_t key = r.readU64();
          records_[key] = r.readU64();
        }
        w.writeU32(count);
        break;
      }
      case dht::RpcKind::kGet: {
        const std::uint64_t key = r.readU64();
        const auto it = records_.find(key);
        w.writeU8(it != records_.end() ? 1 : 0);
        w.writeU64(it != records_.end() ? it->second : 0);
        break;
      }
      case dht::RpcKind::kVisit: {
        const std::uint64_t lo = r.readU64();
        const std::uint64_t hi = r.readU64();
        if (lo > hi) throw common::SerdeError("wire: inverted range");
        // std::map iteration is ascending by key: the response order is
        // deterministic and mergeable by the client.
        std::uint32_t count = 0;
        for (auto it = records_.lower_bound(lo);
             it != records_.end() && it->first <= hi; ++it) {
          ++count;
        }
        w.writeU32(count);
        for (auto it = records_.lower_bound(lo);
             it != records_.end() && it->first <= hi; ++it) {
          w.writeU64(it->first);
          w.writeU64(it->second);
        }
        break;
      }
      default:
        throw common::SerdeError("wire: unsupported request kind");
    }
    if (!r.atEnd()) throw common::SerdeError("wire: trailing bytes");
    resp.payload = std::move(w).take();
    return resp;
  }

  std::size_t recordCount() const noexcept { return records_.size(); }

  // --- client-side payload builders / response decoders -----------------

  static std::vector<std::uint8_t> encodeBatchPut(
      std::span<const Record> records) {
    common::Writer w;
    w.writeU32(static_cast<std::uint32_t>(records.size()));
    for (const Record& rec : records) {
      w.writeU64(rec.first);
      w.writeU64(rec.second);
    }
    return std::move(w).take();
  }

  static std::vector<std::uint8_t> encodeGet(std::uint64_t key) {
    common::Writer w;
    w.writeU64(key);
    return std::move(w).take();
  }

  static std::vector<std::uint8_t> encodeRange(std::uint64_t lo,
                                               std::uint64_t hi) {
    common::Writer w;
    w.writeU64(lo);
    w.writeU64(hi);
    return std::move(w).take();
  }

  static std::uint32_t decodeBatchPutResponse(
      std::span<const std::uint8_t> payload) {
    common::Reader r(payload);
    const std::uint32_t stored = r.readU32();
    if (!r.atEnd()) throw common::SerdeError("wire: trailing bytes");
    return stored;
  }

  struct GetResult {
    bool found = false;
    std::uint64_t value = 0;
  };

  static GetResult decodeGetResponse(std::span<const std::uint8_t> payload) {
    common::Reader r(payload);
    GetResult out;
    out.found = r.readU8() != 0;
    out.value = r.readU64();
    if (!r.atEnd()) throw common::SerdeError("wire: trailing bytes");
    return out;
  }

  static std::vector<Record> decodeRangeResponse(
      std::span<const std::uint8_t> payload) {
    common::Reader r(payload);
    const std::uint32_t count = r.readCount(16);
    std::vector<Record> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t key = r.readU64();
      out.emplace_back(key, r.readU64());
    }
    if (!r.atEnd()) throw common::SerdeError("wire: trailing bytes");
    return out;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> records_;
};

}  // namespace mlight::store
