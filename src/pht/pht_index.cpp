#include "pht/pht_index.h"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/invariants.h"
#include "common/zorder.h"

namespace mlight::pht {

namespace {

using mlight::common::cellOfPath;
using mlight::common::interleave;
using mlight::common::lowestCoveringPath;

void collectInRange(const PhtNode& node, const mlight::common::Rect& range,
                    std::vector<mlight::index::Record>& out) {
  for (const auto& r : node.records) {
    if (range.contains(r.key)) out.push_back(r);
  }
}

}  // namespace

PhtIndex::PhtIndex(mlight::dht::Network& net, PhtConfig config)
    : net_(&net),
      config_(std::move(config)),
      store_(net, config_.dhtNamespace),
      rng_(config_.seed),
      hintCaches_(config_.dims, config_.cache) {
  if (config_.dims < 1 || config_.dims > mlight::common::kMaxDims) {
    throw std::invalid_argument("PhtIndex: dims out of range");
  }
  // Bootstrap: the root (empty prefix) as an empty leaf.
  const Label rootLabel;
  PhtNode root;
  store_.placeLocal(rootLabel, std::move(root));
}

mlight::dht::RingId PhtIndex::randomPeer() {
  const auto& peers = net_->peers();
  return peers[rng_.below(peers.size())];
}

PhtIndex::Located PhtIndex::locate(mlight::dht::RingId initiator,
                                   const Point& p, std::uint32_t roundBase) {
  const Label full = interleave(p, config_.maxDepth);
  std::size_t lo = 0;
  std::size_t hi = config_.maxDepth;
  Located result;
  for (;;) {
    const std::size_t t = lo + (hi - lo) / 2;
    const Label candidate = full.prefix(t);
    const auto found = store_.routeAndFind(
        initiator, candidate,
        roundBase + static_cast<std::uint32_t>(result.probes));
    if (found.failed) {
      // No holder answered (fault injection / crash loss): abort the
      // search; callers check `failed`.  The store counted the failed
      // read.
      result.failed = true;
      return result;
    }
    ++result.probes;
    result.ms += found.ms;
    if (found.bucket == nullptr) {
      // PHT probes learn only about the probed length: the prefix does
      // not exist, so the leaf is strictly shorter.
      mlight::common::auditLookupSearchBounds(1, t);  // trie root exists
      hi = t - 1;
    } else if (found.bucket->isLeaf) {
      result.leaf = candidate;
      result.owner = found.owner;
      return result;
    } else {
      lo = t + 1;
    }
    mlight::common::auditLookupSearchBounds(lo, hi);
  }
}

PhtIndex::Located PhtIndex::locateCached(mlight::dht::RingId initiator,
                                         const Point& p,
                                         std::uint32_t roundBase) {
  if (!config_.cache.enabled) return locate(initiator, p, roundBase);
  const Label full = interleave(p, config_.maxDepth);
  mlight::cache::LabelHintCache& cache = hintCaches_.forPeer(initiator.value);
  const mlight::cache::LabelHint* cached = cache.findCovering(full);
  if (cached == nullptr) {
    Located loc = locate(initiator, p, roundBase);
    if (!loc.failed) {
      cache.learn(loc.leaf, static_cast<std::uint32_t>(loc.leaf.size()));
    }
    return loc;
  }
  const mlight::cache::LabelHint used = *cached;  // copy: repair mutates
  std::size_t lo = 0;
  std::size_t hi = config_.maxDepth;
  const std::size_t t0 = std::min<std::size_t>(used.depth, hi);
  const Label probeLabel = full.prefix(t0);
  Located result;
  mlight::common::Writer hintWire(net_->acquireBuffer());
  used.serialize(hintWire);
  const auto probed = store_.hintProbeAndFind(
      initiator, probeLabel, std::move(hintWire).take(), roundBase);
  if (probed.failed) {
    result.failed = true;
    return result;
  }
  ++result.probes;
  result.ms += probed.ms;
  if (probed.bucket != nullptr && probed.bucket->isLeaf) {
    // Live hint: the prefix still exists and is still a leaf.
    net_->noteCacheHit();
    result.leaf = probeLabel;
    result.owner = probed.owner;
    cache.learn(result.leaf, static_cast<std::uint32_t>(result.leaf.size()));
    if (mlight::common::auditEnabled(mlight::common::AuditLevel::kParanoid)) {
      mlight::common::auditCacheCoherence(result.leaf,
                                          uncachedLeafOracle(full));
    }
    return result;
  }
  // Stale hint: the prefix vanished (merge pruned it) or turned into an
  // internal routing marker (split).  Repair with the prefix search
  // seeded from the hint's length.
  net_->noteStaleHint();
  cache.forget(used.leaf);
  bool gallop = false;
  std::size_t step = 1;
  if (probed.bucket == nullptr) {
    mlight::common::auditLookupSearchBounds(1, t0);  // trie root exists
    hi = t0 - 1;
  } else {
    lo = t0 + 1;
    gallop = true;  // splits deepen by a few levels: creep up from t0
  }
  mlight::common::auditLookupSearchBounds(lo, hi);
  for (;;) {
    std::size_t t;
    if (gallop) {
      t = std::min(lo + step - 1, hi);
      step *= 2;
      if (t == hi) gallop = false;
    } else {
      t = lo + (hi - lo) / 2;
    }
    const Label candidate = full.prefix(t);
    const auto found = store_.routeAndFind(
        initiator, candidate,
        roundBase + static_cast<std::uint32_t>(result.probes));
    if (found.failed) {
      result.failed = true;
      return result;
    }
    ++result.probes;
    result.ms += found.ms;
    if (found.bucket == nullptr) {
      mlight::common::auditLookupSearchBounds(1, t);
      hi = t - 1;
      gallop = false;
    } else if (found.bucket->isLeaf) {
      result.leaf = candidate;
      result.owner = found.owner;
      cache.learn(result.leaf,
                  static_cast<std::uint32_t>(result.leaf.size()));
      if (mlight::common::auditEnabled(
              mlight::common::AuditLevel::kParanoid)) {
        mlight::common::auditCacheCoherence(result.leaf,
                                            uncachedLeafOracle(full));
      }
      return result;
    } else {
      lo = t + 1;
    }
    mlight::common::auditLookupSearchBounds(lo, hi);
  }
}

PhtIndex::Label PhtIndex::uncachedLeafOracle(const Label& full) const {
  std::size_t lo = 0;
  std::size_t hi = config_.maxDepth;
  while (lo <= hi) {
    const std::size_t t = lo + (hi - lo) / 2;
    const Label candidate = full.prefix(t);
    const PhtNode* node = store_.peek(candidate);
    if (node == nullptr) {
      if (t == 0) break;
      hi = t - 1;
    } else if (node->isLeaf) {
      return candidate;
    } else {
      lo = t + 1;
    }
  }
  return Label{};
}

void PhtIndex::insert(const Record& record) {
  if (record.key.dims() != config_.dims) {
    throw std::invalid_argument("insert: wrong dimensionality");
  }
  const auto initiator = randomPeer();
  const Located loc = locateCached(initiator, record.key);
  if (loc.failed) {
    net_->run();  // leaf unreachable under faults: drop, don't corrupt
    return;
  }
  net_->shipPayload(initiator, loc.owner, record.byteSize(), 1);
  breakdown_.insertShipBytes += record.byteSize();
  PhtNode* leaf = store_.peek(loc.leaf);
  assert(leaf != nullptr && leaf->isLeaf);
  leaf->records.push_back(record);
  ++size_;
  splitLoop(loc.leaf);
}

void PhtIndex::splitLoop(Label leafLabel) {
  std::vector<Label> pending{std::move(leafLabel)};
  while (!pending.empty()) {
    const Label label = std::move(pending.back());
    pending.pop_back();
    PhtNode* node = store_.peek(label);
    if (node == nullptr || !node->isLeaf ||
        node->records.size() <= config_.thetaSplit ||
        label.size() >= config_.maxDepth) {
      continue;
    }
    // Partition records between the two children cells.
    const std::size_t dim =
        mlight::common::dimensionAtDepth(label.size(), config_.dims);
    const double mid = cellOfPath(label, config_.dims).mid(dim);
    PhtNode lo;
    lo.label = label.withBack(false);
    PhtNode hi;
    hi.label = label.withBack(true);
    for (const auto& r : node->records) {
      (r.key[dim] >= mid ? hi : lo).records.push_back(r);
    }
    const auto owner = store_.ownerOf(label);
    // The split node becomes a routing-only internal marker in place
    // (local flag update, no DHT traffic)...
    node->isLeaf = false;
    node->records.clear();
    node->records.shrink_to_fit();
    // ...but BOTH children are assigned fresh DHT keys: two DHT-puts and
    // the full bucket's worth of payload moves.  Compare m-LIGHT's
    // Theorem 5 where one child stays for free.
    const Label loLabel = lo.label;
    const Label hiLabel = hi.label;
    MLIGHT_CHECK(store_.peek(loLabel) == nullptr, "child already exists");
    MLIGHT_CHECK(store_.peek(hiLabel) == nullptr, "child already exists");
    breakdown_.splitShipBytes += lo.byteSize() + hi.byteSize();
    breakdown_.splitBucketMoves += 2;
    store_.place(owner, loLabel, std::move(lo));
    store_.place(owner, hiLabel, std::move(hi));
    pending.push_back(loLabel);
    pending.push_back(hiLabel);
  }
}

std::size_t PhtIndex::erase(const Point& key, std::uint64_t id) {
  const auto initiator = randomPeer();
  const Located loc = locateCached(initiator, key);
  if (loc.failed) {
    net_->run();
    return 0;
  }
  PhtNode* leaf = store_.peek(loc.leaf);
  assert(leaf != nullptr);
  const auto before = leaf->records.size();
  std::erase_if(leaf->records, [&](const Record& r) {
    return r.id == id && r.key == key;
  });
  const std::size_t removed = before - leaf->records.size();
  size_ -= removed;
  if (removed > 0) mergeLoop(loc.leaf);
  return removed;
}

void PhtIndex::mergeLoop(Label leafLabel) {
  while (!leafLabel.empty()) {
    PhtNode* leaf = store_.peek(leafLabel);
    if (leaf == nullptr || !leaf->isLeaf) return;
    const Label sibLabel = leafLabel.sibling();
    // Probe the sibling (one DHT-lookup).
    const auto found = store_.routeAndFind(store_.ownerOf(leafLabel),
                                           sibLabel);
    if (found.bucket == nullptr || !found.bucket->isLeaf) return;
    if (leaf->records.size() + found.bucket->records.size() >=
        config_.thetaMerge) {
      return;
    }
    Label parentLabel = leafLabel;
    parentLabel.popBack();
    // Both children's records move to the parent's peer (two transfers —
    // m-LIGHT's merge moves only one bucket).
    PhtNode merged;
    merged.label = parentLabel;
    merged.records = leaf->records;
    merged.records.insert(merged.records.end(),
                          found.bucket->records.begin(),
                          found.bucket->records.end());
    const auto parentOwner = store_.ownerOf(parentLabel);
    breakdown_.mergeShipBytes +=
        leaf->byteSize() + found.bucket->byteSize();
    net_->shipPayload(store_.ownerOf(leafLabel), parentOwner,
                      leaf->byteSize(), leaf->recordCount());
    net_->shipPayload(found.owner, parentOwner, found.bucket->byteSize(),
                      found.bucket->recordCount());
    store_.erase(leafLabel);
    store_.erase(sibLabel);
    // The parent marker exists (every prefix of a leaf is materialized);
    // flipping it back to a leaf is local to its peer.
    PhtNode* parent = store_.peek(parentLabel);
    MLIGHT_CHECK(parent != nullptr && !parent->isLeaf,
                 "trie prefix closure violated");
    *parent = std::move(merged);
    parent->isLeaf = true;
    leafLabel = parentLabel;
  }
}

mlight::index::PointResult PhtIndex::pointQuery(const Point& key) {
  const double t0 = net_->beginTimeline();
  const std::size_t failedBefore = store_.failedReads();
  mlight::dht::CostMeter meter;
  mlight::dht::MeterScope scope(*net_, meter);
  const Located loc = locateCached(randomPeer(), key);
  mlight::index::PointResult out;
  if (!loc.failed) {
    const PhtNode* leaf = store_.peek(loc.leaf);
    assert(leaf != nullptr);
    for (const auto& r : leaf->records) {
      if (r.key == key) out.records.push_back(r);
    }
  }
  out.stats.cost = meter;
  out.stats.rounds = net_->timelineMaxRound();
  out.stats.latencyMs = net_->now() - t0;
  out.stats.failedProbes = store_.failedReads() - failedBefore;
  return out;
}

mlight::index::RangeResult PhtIndex::rangeQuery(const Rect& range) {
  mlight::index::RangeResult out;
  if (range.dims() != config_.dims) {
    throw std::invalid_argument("rangeQuery: wrong dimensionality");
  }
  const Rect clipped =
      range.intersection(Rect::unit(config_.dims));
  if (clipped.empty()) return out;

  const double t0 = net_->beginTimeline();
  const std::size_t failedBefore = store_.failedReads();
  mlight::dht::CostMeter meter;
  mlight::dht::MeterScope scope(*net_, meter);
  const auto initiator = randomPeer();

  // Trie descent as RPC continuations: probing a child is an envelope
  // one round deeper than its parent's delivery; siblings that miss the
  // range are pruned locally before any traffic is issued.
  std::function<void(const Label&, mlight::dht::RingId, std::uint32_t)>
      descend = [&](const Label& label, mlight::dht::RingId source,
                    std::uint32_t round) {
        if (!cellOfPath(label, config_.dims).intersects(clipped)) {
          return;  // pruned locally, no DHT traffic
        }
        store_.asyncGet(
            source, label, round,
            [&, label](PhtNode* node, const mlight::dht::RpcDelivery& d) {
              MLIGHT_CHECK(node != nullptr, "trie prefix closure violated");
              if (node->isLeaf) {
                if (config_.cache.enabled) {
                  // Range traversals warm the cache for free: every leaf
                  // touched is a future point-lookup hint.
                  hintCaches_.forPeer(initiator.value)
                      .learn(node->label,
                             static_cast<std::uint32_t>(node->label.size()));
                }
                collectInRange(*node, clipped, out.records);
              } else {
                descend(label.withBack(false), d.route.owner,
                        d.env.round + 1);
                descend(label.withBack(true), d.route.owner,
                        d.env.round + 1);
              }
            });
      };

  const Label lca =
      lowestCoveringPath(clipped, config_.dims, config_.maxDepth);
  const auto first = store_.routeAndFind(initiator, lca);
  if (first.failed) {
    // The LCA probe went unanswered: the whole query is one failed probe;
    // return an empty partial result (stats record the failure below).
  } else if (first.bucket == nullptr) {
    // The LCA prefix is below the trie: a single leaf above it covers the
    // whole range; find it by point lookup of the range corner (the
    // sequential probes continue the chain at round 2).
    const Located loc =
        locateCached(first.owner, clipped.lo(), /*roundBase=*/2);
    if (!loc.failed) {
      const PhtNode* leaf = store_.peek(loc.leaf);
      assert(leaf != nullptr);
      collectInRange(*leaf, clipped, out.records);
    }
  } else if (first.bucket->isLeaf) {
    if (config_.cache.enabled) {
      hintCaches_.forPeer(initiator.value)
          .learn(first.bucket->label,
                 static_cast<std::uint32_t>(first.bucket->label.size()));
    }
    collectInRange(*first.bucket, clipped, out.records);
  } else {
    // Internal nodes hold no data: descend the trie, one round of
    // parallel child probes per level, all the way to leaves.
    descend(lca.withBack(false), first.owner, 2);
    descend(lca.withBack(true), first.owner, 2);
  }

  net_->run();
  out.stats.cost = meter;
  out.stats.rounds = net_->timelineMaxRound();
  out.stats.latencyMs = net_->now() - t0;
  out.stats.failedProbes = store_.failedReads() - failedBefore;
  return out;
}

std::size_t PhtIndex::leafCount() const {
  std::size_t count = 0;
  store_.forEach([&](const Label&, const PhtNode& n, mlight::dht::RingId) {
    if (n.isLeaf) ++count;
  });
  return count;
}

void PhtIndex::checkInvariants() const {
  // Shared audit layer (common/invariants.h): PHT leaves are plain trie
  // paths (root prefix 0 bits) and must tile the linearized key space;
  // records must sit inside their leaf cell.
  std::size_t totalRecords = 0;
  std::vector<Label> leaves;
  store_.forEach([&](const Label& key, const PhtNode& n,
                     mlight::dht::RingId) {
    MLIGHT_CHECK(key == n.label, "node stored under wrong key");
    if (n.isLeaf) {
      mlight::common::auditRecordPlacement(
          cellOfPath(n.label, config_.dims), n.records,
          [](const Record& r) -> const Point& { return r.key; });
      totalRecords += n.records.size();
      leaves.push_back(n.label);
    } else {
      MLIGHT_CHECK(n.records.empty(), "internal node holds data");
      MLIGHT_CHECK(store_.peek(n.label.withBack(false)) != nullptr &&
                       store_.peek(n.label.withBack(true)) != nullptr,
                   "internal node missing a child");
    }
  });
  MLIGHT_CHECK(totalRecords == size_, "record count drift");
  mlight::common::auditSpaceTiling(leaves, 0);
}

}  // namespace mlight::pht
