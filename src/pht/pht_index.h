// PHT: Prefix Hash Tree baseline (Chawathe et al., SIGCOMM'05; paper [4]).
//
// PHT is the first over-DHT index.  For multi-dimensional data it
// linearizes keys with a space-filling curve — the same bit interleaving
// m-LIGHT uses — and builds a binary trie over the resulting bit strings:
//
//  * every trie node (prefix) is materialized in the DHT under its own
//    label; *internal nodes hold no data* and serve as routing markers,
//    so range queries must always traverse down to the leaves;
//  * leaves hold up to θ_split records; a split re-assigns BOTH halves to
//    new DHT keys (the children's labels), which is the maintenance
//    overhead m-LIGHT's naming function avoids (Theorem 5);
//  * lookups binary-search the prefix length, probing whether the prefix
//    exists and is a leaf.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/hint_cache.h"
#include "common/bitstring.h"
#include "common/digest.h"
#include "common/serde.h"
#include "common/geometry.h"
#include "common/rng.h"
#include "dht/network.h"
#include "index/index_base.h"
#include "store/distributed_store.h"

namespace mlight::pht {

struct PhtConfig {
  std::size_t dims = 2;
  /// Maximum trie depth D in bits of the interleaved key (§7 uses 28).
  std::size_t maxDepth = 28;
  std::size_t thetaSplit = 100;
  std::size_t thetaMerge = 50;
  std::uint64_t seed = 43;
  std::string dhtNamespace = "pht/";
  /// The same per-peer label-hint cache m-LIGHT gets (src/cache), so the
  /// baseline comparison stays honest: the original PHT work caches
  /// resolved prefixes client-side too.
  mlight::cache::CachePolicy cache;
};

/// A trie node: internal nodes are pure routing markers, leaves carry the
/// record store.
struct PhtNode {
  mlight::common::BitString label;
  bool isLeaf = true;
  std::vector<mlight::index::Record> records;

  std::size_t recordCount() const noexcept { return records.size(); }
  std::size_t byteSize() const noexcept {
    std::size_t bytes = 4 + 8 * ((label.size() + 63) / 64) + 1 + 4;
    for (const auto& r : records) bytes += r.byteSize();
    return bytes;
  }

  void serialize(mlight::common::Writer& w) const {
    w.writeBitString(label);
    w.writeU8(isLeaf ? 1 : 0);
    w.writeU32(static_cast<std::uint32_t>(records.size()));
    for (const auto& r : records) r.serialize(w);
  }

  static PhtNode deserialize(mlight::common::Reader& r) {
    PhtNode n;
    n.label = r.readBitString();
    n.isLeaf = r.readU8() != 0;
    const std::uint32_t count = r.readCount(16);
    n.records.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      n.records.push_back(mlight::index::Record::deserialize(r));
    }
    return n;
  }
};

class PhtIndex final : public mlight::index::IndexBase {
 public:
  using Label = mlight::common::BitString;
  using Point = mlight::common::Point;
  using Rect = mlight::common::Rect;
  using Record = mlight::index::Record;

  PhtIndex(mlight::dht::Network& net, PhtConfig config);

  void insert(const Record& record) override;
  std::size_t erase(const Point& key, std::uint64_t id) override;
  mlight::index::RangeResult rangeQuery(const Rect& range) override;
  mlight::index::PointResult pointQuery(const Point& key) override;
  std::size_t size() const override { return size_; }

  /// Logical split/merge traffic (counted independently of hashing luck;
  /// both children of every PHT split are re-assigned to fresh keys).
  struct MaintenanceBreakdown {
    std::uint64_t insertShipBytes = 0;
    std::uint64_t splitShipBytes = 0;
    std::uint64_t splitBucketMoves = 0;
    std::uint64_t splitStayLocal = 0;  ///< always 0 for PHT
    std::uint64_t mergeShipBytes = 0;
  };
  const MaintenanceBreakdown& maintenanceBreakdown() const noexcept {
    return breakdown_;
  }

  std::size_t leafCount() const;
  std::size_t nodeCount() const noexcept { return store_.bucketCount(); }
  void checkInvariants() const;

  const mlight::store::DistributedStore<PhtNode>& store() const noexcept {
    return store_;
  }

  /// The per-peer hint caches (test/bench hook).
  mlight::cache::HintCacheSet& hintCaches() noexcept { return hintCaches_; }

  /// Digest of every simulation-visible fact of this index (see
  /// MLightIndex::stateDigest; same contract).
  std::uint64_t stateDigest() const {
    mlight::common::Digest d;
    d.feed(size_);
    d.feed(breakdown_.insertShipBytes);
    d.feed(breakdown_.splitShipBytes);
    d.feed(breakdown_.splitBucketMoves);
    d.feed(breakdown_.splitStayLocal);
    d.feed(breakdown_.mergeShipBytes);
    store_.digestState(d);
    hintCaches_.digestState(d);
    return d.value();
  }

 private:
  struct Located {
    Label leaf;
    mlight::dht::RingId owner;
    std::size_t probes = 0;
    double ms = 0.0;
    /// True when a probe went unanswered (fault injection): `leaf` is
    /// meaningless then — the empty label legitimately names the root.
    bool failed = false;
  };
  Located locate(mlight::dht::RingId initiator, const Point& p,
                 std::uint32_t roundBase = 1);

  /// Cache-aware locate (see MLightIndex::locateCached): one direct
  /// probe of the remembered leaf prefix on a live hint, stale hints
  /// repaired by a search seeded from the hint's prefix length.  With
  /// the cache disabled this is locate().
  Located locateCached(mlight::dht::RingId initiator, const Point& p,
                       std::uint32_t roundBase = 1);

  /// Unmetered peek() replica of the prefix binary search — the
  /// paranoid-audit oracle for cached lookups.
  Label uncachedLeafOracle(const Label& full) const;

  mlight::dht::RingId randomPeer();
  void splitLoop(Label leaf);
  void mergeLoop(Label leaf);

  mlight::dht::Network* net_;
  PhtConfig config_;
  mlight::store::DistributedStore<PhtNode> store_;
  mlight::common::Rng rng_;
  mlight::cache::HintCacheSet hintCaches_;
  MaintenanceBreakdown breakdown_;
  std::size_t size_ = 0;
};

}  // namespace mlight::pht
