// Typed multi-attribute tables over m-LIGHT.
//
// The paper's motivating query — "songs that are rated above 4 and
// published during 2007 and 2008" (§1) — is a range predicate over named
// attributes, while the index itself speaks normalized [0,1)^m points
// (§3.1).  This layer owns that translation: a Schema declares the
// attributes and their value ranges, a Table stores rows and compiles
// attribute predicates into index range queries.  Unconstrained
// attributes default to their full range.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dht/network.h"
#include "mlight/index.h"

namespace mlight::schema {

/// One named numeric attribute with its value domain [min, max).
/// Values are normalized linearly onto [0, 1).
struct Attribute {
  std::string name;
  double min = 0.0;
  double max = 1.0;
};

class Schema {
 public:
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {
    if (attributes_.empty() ||
        attributes_.size() > mlight::common::kMaxDims) {
      throw std::invalid_argument("Schema: 1..kMaxDims attributes");
    }
    for (std::size_t i = 0; i < attributes_.size(); ++i) {
      const Attribute& a = attributes_[i];
      if (!(a.min < a.max)) {
        throw std::invalid_argument("Schema: attribute '" + a.name +
                                    "' needs min < max");
      }
      if (!byName_.emplace(a.name, i).second) {
        throw std::invalid_argument("Schema: duplicate attribute '" +
                                    a.name + "'");
      }
    }
  }

  std::size_t dims() const noexcept { return attributes_.size(); }
  const Attribute& attribute(std::size_t i) const { return attributes_[i]; }

  std::size_t indexOf(std::string_view name) const {
    const auto it = byName_.find(std::string(name));
    if (it == byName_.end()) {
      throw std::invalid_argument("Schema: unknown attribute '" +
                                  std::string(name) + "'");
    }
    return it->second;
  }

  /// Normalizes one attribute value into [0, 1) (clamped at the domain
  /// edges so slightly-out-of-domain values stay indexable).
  double normalize(std::size_t i, double value) const {
    const Attribute& a = attributes_[i];
    const double unit = (value - a.min) / (a.max - a.min);
    return std::clamp(unit, 0.0, std::nextafter(1.0, 0.0));
  }

  double denormalize(std::size_t i, double unit) const {
    const Attribute& a = attributes_[i];
    return a.min + unit * (a.max - a.min);
  }

  mlight::common::Point encode(std::span<const double> values) const {
    if (values.size() != dims()) {
      throw std::invalid_argument("Schema: wrong number of values");
    }
    mlight::common::Point p(dims());
    for (std::size_t i = 0; i < dims(); ++i) p[i] = normalize(i, values[i]);
    return p;
  }

  std::vector<double> decode(const mlight::common::Point& p) const {
    std::vector<double> values(dims());
    for (std::size_t i = 0; i < dims(); ++i) {
      values[i] = denormalize(i, p[i]);
    }
    return values;
  }

 private:
  std::vector<Attribute> attributes_;
  std::map<std::string, std::size_t> byName_;
};

/// Conjunctive range predicate over named attributes; compiles to one
/// index range query.  Bounds follow the half-open [lo, hi) convention.
class Query {
 public:
  explicit Query(const Schema& schema) : schema_(&schema) {}

  /// attribute >= value
  Query& ge(std::string_view name, double value) {
    lo_[schema_->indexOf(name)] = value;
    return *this;
  }
  /// attribute < value
  Query& lt(std::string_view name, double value) {
    hi_[schema_->indexOf(name)] = value;
    return *this;
  }
  /// lo <= attribute < hi
  Query& between(std::string_view name, double lo, double hi) {
    const std::size_t i = schema_->indexOf(name);
    lo_[i] = lo;
    hi_[i] = hi;
    return *this;
  }

  mlight::common::Rect toRect() const {
    mlight::common::Point lo(schema_->dims());
    mlight::common::Point hi(schema_->dims());
    for (std::size_t i = 0; i < schema_->dims(); ++i) {
      const auto itLo = lo_.find(i);
      const auto itHi = hi_.find(i);
      lo[i] = itLo == lo_.end() ? 0.0 : schema_->normalize(i, itLo->second);
      // The exclusive upper bound 1.0 covers the whole normalized domain.
      hi[i] = itHi == hi_.end()
                  ? 1.0
                  : (itHi->second >=
                             schema_->attribute(i).max
                         ? 1.0
                         : schema_->normalize(i, itHi->second));
    }
    return mlight::common::Rect(lo, hi);
  }

 private:
  const Schema* schema_;
  std::map<std::size_t, double> lo_;
  std::map<std::size_t, double> hi_;
};

/// A row: attribute values (in schema order) plus an opaque payload.
struct Row {
  std::vector<double> values;
  std::string payload;
  std::uint64_t id = 0;
};

/// A named-attribute table stored in an m-LIGHT index over the DHT.
class Table {
 public:
  Table(mlight::dht::Network& net, Schema schema,
        mlight::core::MLightConfig config = {})
      : schema_(std::move(schema)),
        index_(net, [&] {
          config.dims = schema_.dims();
          return config;
        }()) {}

  const Schema& schema() const noexcept { return schema_; }

  void insert(const Row& row) {
    mlight::index::Record r;
    r.key = schema_.encode(row.values);
    r.payload = row.payload;
    r.id = row.id;
    index_.insert(r);
  }

  std::size_t erase(std::span<const double> values, std::uint64_t id) {
    return index_.erase(schema_.encode(values), id);
  }

  struct SelectResult {
    std::vector<Row> rows;
    mlight::index::QueryStats stats;
  };

  SelectResult select(const Query& query) {
    auto res = index_.rangeQuery(query.toRect());
    SelectResult out;
    out.stats = res.stats;
    out.rows.reserve(res.records.size());
    for (const auto& r : res.records) {
      out.rows.push_back(Row{schema_.decode(r.key), r.payload, r.id});
    }
    return out;
  }

  /// The k rows nearest to the given attribute values (normalized
  /// Euclidean distance).
  SelectResult nearest(std::span<const double> values, std::size_t k) {
    auto res = index_.knnQuery(schema_.encode(values), k);
    SelectResult out;
    out.stats = res.stats;
    for (const auto& r : res.records) {
      out.rows.push_back(Row{schema_.decode(r.key), r.payload, r.id});
    }
    return out;
  }

  std::size_t size() const { return index_.size(); }
  mlight::core::MLightIndex& index() noexcept { return index_; }

 private:
  Schema schema_;
  mlight::core::MLightIndex index_;
};

}  // namespace mlight::schema
