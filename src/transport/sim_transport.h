// Transport backend over the deterministic simulator.
//
// The existing dht::Network is used untouched: call() issues the request
// through Network::sendRpc (metered routing, latency, fault injection,
// retries), the owner-side delivery handler applies the envelope against
// that peer's WireStore, and the response travels back as its own
// kResponse envelope addressed to the client's home vnode.  Both legs
// are ordinary simulated RPCs, so every cost the simulator predicts for
// a wire workload — messages, hops, retries, dead letters, simulated
// milliseconds — comes out of the same machinery every golden pins.
//
// The client is co-located with physical peer 0 ("node:0"): its home
// vnode is that peer's first ring position, so responses route exactly
// one vnode hop-free step once they reach it, mirroring a loopback
// client process next to a local peer.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "dht/network.h"
#include "store/wire_store.h"
#include "transport/transport.h"

namespace mlight::transport {

class SimTransport : public Transport {
 public:
  explicit SimTransport(std::size_t peerCount, std::size_t vnodesPerPeer = 1,
                        dht::LatencyModel latency = {})
      : net_(peerCount, /*seed=*/1, vnodesPerPeer, latency),
        stores_(peerCount) {
    clientHome_ = net_.peers().empty() ? dht::RingId{} : firstVnodeOfPeer0();
  }

  void call(dht::RingId key, dht::RpcEnvelope env, ReplyFn onReply,
            FailFn onFail) override {
    env.from = clientHome_;
    net_.sendRpc(
        key, std::move(env),
        [this, onReply = std::move(onReply),
         onFail](const dht::RpcDelivery& d) {
          // Owner side: apply against the owning physical peer's store,
          // then ship the response back to the client's home vnode as a
          // simulated RPC of its own (addressing a vnode's exact ring id
          // routes precisely to it).
          store::WireStore& s = stores_[net_.physicalOf(d.route.owner)];
          dht::RpcEnvelope resp = s.handle(d.env);
          net_.sendRpc(
              clientHome_, std::move(resp),
              [onReply](const dht::RpcDelivery& back) {
                if (onReply) onReply(back.env);
              },
              onFail);
        },
        std::move(onFail));
  }

  void drain() override { net_.run(); }

  std::uint64_t deadLetterTotal() const override {
    return net_.deadLetterCount();
  }
  std::uint64_t deadLettersDropped() const override {
    return net_.deadLettersDropped();
  }
  std::size_t deadLetterLogSize() const override {
    return net_.deadLetterLogSize();
  }

  /// The underlying simulator, e.g. to install a FaultModel or read the
  /// predicted cost meters.
  dht::Network& network() noexcept { return net_; }
  const dht::Network& network() const noexcept { return net_; }

  store::WireStore& storeOf(std::size_t peer) { return stores_.at(peer); }

  dht::RingId clientHome() const noexcept { return clientHome_; }

 private:
  dht::RingId firstVnodeOfPeer0() const {
    // Network names bulk peers "node:<i>"; vnode 0 of peer 0 is at
    // keyId("peer-id:node:0#0") — the same anchor RingMap uses.
    return net_.responsible(dht::keyId("peer-id:node:0#0"));
  }

  dht::Network net_;
  std::vector<store::WireStore> stores_;
  dht::RingId clientHome_;
};

}  // namespace mlight::transport
