#include "transport/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
// DET-ALLOW(wall-clock timeouts are the measured quantity on the real wire; never reachable from simulated paths)
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/serde.h"

namespace mlight::transport {

namespace {

/// Monotonic wall milliseconds — the real-transport clock.  The retry
/// deadlines below mirror the simulator's formula exactly, just against
/// this clock instead of SimClock.
double wallMs() {
  // DET-ALLOW(real transport timeouts measure wall time by definition)
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  MLIGHT_CHECK(flags >= 0, "fcntl(F_GETFL) failed");
  MLIGHT_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "fcntl(F_SETFL, O_NONBLOCK) failed");
}

}  // namespace

TcpTransport::TcpTransport(const RingMap& map, std::vector<PeerAddr> peers,
                           TcpConfig cfg)
    : map_(map), cfg_(cfg) {
  MLIGHT_CHECK(peers.size() == map.peerCount(),
               "TcpTransport: address list does not match the ring");
  endpoints_.reserve(peers.size());
  for (PeerAddr& addr : peers) {
    Endpoint ep(cfg_.maxFrameBytes);
    ep.addr = std::move(addr);
    endpoints_.push_back(std::move(ep));
  }
}

TcpTransport::~TcpTransport() {
  for (Endpoint& ep : endpoints_) closeEndpoint(ep);
}

void TcpTransport::closeEndpoint(Endpoint& ep) {
  if (ep.fd >= 0) {
    ::close(ep.fd);
    ep.fd = -1;
  }
  ep.connecting = false;
  ep.reader = FrameReader(cfg_.maxFrameBytes);
  ep.out.clear();
  ep.outHead = 0;
}

bool TcpTransport::ensureConnected(std::size_t peer) {
  Endpoint& ep = endpoints_[peer];
  if (ep.fd >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  MLIGHT_CHECK(fd >= 0, "socket() failed");
  setNonBlocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.addr.port);
  if (::inet_pton(AF_INET, ep.addr.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    ep.fd = fd;
    ep.connecting = false;
    return true;
  }
  if (errno == EINPROGRESS) {
    ep.fd = fd;
    ep.connecting = true;  // completes on POLLOUT
    return true;
  }
  ::close(fd);
  return false;
}

void TcpTransport::transmit(Pending& p) {
  // Arm the attempt's timeout first: even a failed connect burns an
  // attempt on the same schedule the simulator would use.
  p.deadlineMs =
      wallMs() + dht::retryBackoffMs(cfg_.timeoutFloorMs, p.attempt);
  if (!ensureConnected(p.peer)) return;  // timeout drives the retry
  encodeFrame(p.env, endpoints_[p.peer].out);
}

void TcpTransport::call(dht::RingId key, dht::RpcEnvelope env, ReplyFn onReply,
                        FailFn onFail) {
  env.id = nextId_++;
  env.to = map_.responsible(key);
  Pending p;
  p.peer = map_.peerOf(env.to);
  p.env = std::move(env);
  p.onReply = std::move(onReply);
  p.onFail = std::move(onFail);
  auto [it, inserted] = pending_.emplace(p.env.id, std::move(p));
  MLIGHT_CHECK(inserted, "duplicate envelope id");
  transmit(it->second);
  pump(0);  // opportunistically move bytes without blocking
}

void TcpTransport::onReadable(Endpoint& ep) {
  std::uint8_t buf[4096];
  bool broken = false;
  for (;;) {
    const ssize_t n = ::recv(ep.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!ep.reader.feed(buf, static_cast<std::size_t>(n))) {
        broken = true;  // oversized server frame: drop the connection
        break;
      }
      continue;
    }
    if (n == 0) {
      broken = true;  // server closed (possibly mid-frame)
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    broken = true;
    break;
  }
  try {
    dht::RpcEnvelope resp;
    while (ep.reader.next(resp)) {
      const auto it = pending_.find(resp.id);
      if (it == pending_.end()) continue;  // late reply of a retried rpc
      ReplyFn onReply = std::move(it->second.onReply);
      pending_.erase(it);
      if (onReply) onReply(resp);
    }
  } catch (const common::SerdeError&) {
    broken = true;  // malformed reply: reconnect, timeouts recover
  }
  if (broken) {
    closeEndpoint(ep);
    ++reconnects_;
  }
}

void TcpTransport::fireExpired() {
  const double now = wallMs();
  // Collect first: onFail may issue new calls, mutating pending_.
  std::vector<std::uint64_t> expired;
  for (const auto& kv : pending_) {
    if (kv.second.deadlineMs <= now) expired.push_back(kv.first);
  }
  for (const std::uint64_t id : expired) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    Pending& p = it->second;
    if (p.attempt + 1 >= cfg_.maxAttempts) {
      deadLetters_.record(dht::DeadLetter{p.env.id, p.env.kind, p.env.from,
                                          p.env.to, p.attempt + 1, now});
      FailFn onFail = std::move(p.onFail);
      dht::RpcEnvelope env = std::move(p.env);
      const std::size_t attempts = p.attempt + 1;
      pending_.erase(it);
      if (onFail) onFail(env, attempts);
      continue;
    }
    // Retransmit: a broken pooled connection was already torn down, so
    // transmit() reconnects; the frame is re-queued verbatim (same id —
    // the server's map assignment is idempotent, and a late first reply
    // correlates fine).
    ++p.attempt;
    transmit(p);
  }
}

void TcpTransport::pump(int maxWaitMs) {
  // Deadline-aware wait bound: never sleep past the nearest retry.
  double nearest = -1.0;
  for (const auto& kv : pending_) {
    const double d = kv.second.deadlineMs;
    if (nearest < 0.0 || d < nearest) nearest = d;
  }
  int timeout = maxWaitMs;
  if (nearest >= 0.0) {
    const double untilMs = std::max(0.0, nearest - wallMs());
    timeout = std::min(timeout, static_cast<int>(std::ceil(untilMs)));
  }

  std::vector<pollfd> fds;
  std::vector<std::size_t> peerOfFd;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    const Endpoint& ep = endpoints_[i];
    if (ep.fd < 0) continue;
    short events = POLLIN;
    if (ep.connecting || ep.outHead < ep.out.size()) {
      events = static_cast<short>(events | POLLOUT);
    }
    fds.push_back(pollfd{ep.fd, events, 0});
    peerOfFd.push_back(i);
  }
  if (fds.empty()) {
    // Nothing connected (e.g. every connect failed): still honor the
    // wait bound so drain() paces retries instead of spinning.
    if (timeout > 0) ::poll(nullptr, 0, timeout);
  } else {
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready > 0) {
      for (std::size_t k = 0; k < fds.size(); ++k) {
        Endpoint& ep = endpoints_[peerOfFd[k]];
        if (ep.fd != fds[k].fd) continue;  // closed by an earlier event
        const short re = fds[k].revents;
        if ((re & (POLLERR | POLLNVAL)) != 0) {
          closeEndpoint(ep);
          ++reconnects_;
          continue;
        }
        if ((re & POLLOUT) != 0) {
          if (ep.connecting) {
            int err = 0;
            socklen_t len = sizeof(err);
            ::getsockopt(ep.fd, SOL_SOCKET, SO_ERROR, &err, &len);
            if (err != 0) {
              closeEndpoint(ep);
              ++reconnects_;
              continue;
            }
            ep.connecting = false;
          }
          while (ep.outHead < ep.out.size()) {
            const ssize_t n = ::send(ep.fd, ep.out.data() + ep.outHead,
                                     ep.out.size() - ep.outHead,
                                     MSG_NOSIGNAL);
            if (n > 0) {
              ep.outHead += static_cast<std::size_t>(n);
              continue;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            closeEndpoint(ep);
            ++reconnects_;
            break;
          }
          if (ep.fd >= 0 && ep.outHead == ep.out.size()) {
            ep.out.clear();
            ep.outHead = 0;
          }
        }
        if (ep.fd >= 0 && (re & (POLLIN | POLLHUP)) != 0) onReadable(ep);
      }
    }
  }
  fireExpired();
}

void TcpTransport::drain() {
  while (!pending_.empty()) pump(50);
}

}  // namespace mlight::transport
