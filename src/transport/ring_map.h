// Static replica of dht::Network's ring geometry for worlds without a
// Network instance (the TCP client, the peerd daemon).
//
// The TCP backend must place records on exactly the ring the simulator
// would build for the same peer count, or the two worlds answer queries
// from different owners and the simulated predictions stop describing
// the measured run.  RingMap reproduces Network's bulk construction
// bit-for-bit: physical peers named "node:<i>", vnode v of peer p at
// keyId("peer-id:node:<p>#<v>"), sorted ascending with the same
// deterministic collision bump, ownership by predecessor mapping
// (greatest vnode id <= key, wrapping).  Pinned against
// Network::responsible by tests/transport/wire_parity_test.cpp.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "dht/id.h"

namespace mlight::transport {

class RingMap {
 public:
  explicit RingMap(std::size_t peerCount, std::size_t vnodesPerPeer = 1);

  /// Vnode responsible for `h` (predecessor mapping, wrapping).
  dht::RingId responsible(dht::RingId h) const noexcept;

  /// Physical peer index owning `vnode` (must be a ring member).
  std::size_t peerOf(dht::RingId vnode) const;

  /// Physical peer index responsible for `key`.
  std::size_t ownerPeer(dht::RingId key) const {
    return peerOf(responsible(key));
  }

  /// First (v == 0) vnode of a physical peer.
  dht::RingId firstVnode(std::size_t peer) const {
    return firstVnode_.at(peer);
  }

  std::size_t peerCount() const noexcept { return firstVnode_.size(); }
  std::size_t vnodeCount() const noexcept { return ring_.size(); }

 private:
  std::vector<dht::RingId> ring_;  // sorted ascending
  std::map<dht::RingId, std::size_t> vnodeToPeer_;
  std::vector<dht::RingId> firstVnode_;  // by peer index
};

}  // namespace mlight::transport
