// Wire framing for RpcEnvelopes over a byte stream.
//
// A TCP connection carries a sequence of frames, each
//
//   [u32 little-endian length][`length` bytes of serialized RpcEnvelope]
//
// — the same serde image the simulator meters (RpcEnvelope::wireSize),
// prefixed with its length so a stream reader can find frame boundaries.
// TCP delivers arbitrary chunk boundaries, so FrameReader reassembles
// incrementally: feed() raw recv() bytes, next() yields complete
// envelopes.  A length field above the configured ceiling poisons the
// stream (the peer is broken or hostile; the connection must be
// dropped), which bounds per-connection buffering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dht/rpc.h"

namespace mlight::transport {

/// Ceiling on a single frame's envelope bytes.  Generous against the
/// largest legitimate payload (a client-side batch of records) while
/// keeping a malformed or hostile length field from driving an
/// arbitrarily large buffer allocation.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 20;

/// Bytes of the length prefix.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Appends one frame (header + serialized envelope) to `out`.
void encodeFrame(const dht::RpcEnvelope& env, std::vector<std::uint8_t>& out);

/// Incremental frame decoder over a TCP byte stream.
class FrameReader {
 public:
  explicit FrameReader(std::size_t maxFrameBytes = kMaxFrameBytes)
      : maxFrameBytes_(maxFrameBytes) {}

  /// Buffers `n` raw stream bytes.  Returns false once the stream is
  /// poisoned (a frame header announced more than maxFrameBytes) — the
  /// caller must drop the connection; no further frame can be trusted.
  bool feed(const std::uint8_t* data, std::size_t n);

  /// Extracts the next complete envelope, if one is fully buffered.
  /// Throws common::SerdeError when a complete frame's body is not
  /// exactly one well-formed envelope (the caller should drop the
  /// connection, like a poisoned stream).
  bool next(dht::RpcEnvelope& out);

  /// True once an oversized frame header was seen.
  bool poisoned() const noexcept { return poisoned_; }

  /// Stream bytes buffered but not yet consumed by next().
  std::size_t buffered() const noexcept { return buf_.size() - head_; }

  std::size_t maxFrameBytes() const noexcept { return maxFrameBytes_; }

 private:
  /// Length announced by the buffered header, if one is available.
  bool peekLength(std::uint32_t& len) const noexcept;

  std::size_t maxFrameBytes_;
  bool poisoned_ = false;
  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;  ///< Bytes of buf_ already consumed.
};

}  // namespace mlight::transport
