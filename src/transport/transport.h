// The transport seam: one request/response envelope-exchange interface
// with two worlds behind it.
//
// Everything above this interface — benches, tests, client drivers —
// issues a typed RpcEnvelope at a ring key and receives the owner's
// kResponse envelope asynchronously.  Below it:
//
//   * SimTransport   — the existing deterministic simulator (dht::Network
//                      + SimScheduler), unchanged.  Routing, latency,
//                      fault injection, retries, and dead letters all
//                      behave exactly as in every golden and replay test;
//                      this backend stays the default everywhere.
//   * TcpTransport   — real peers serving length-prefixed frames over
//                      nonblocking loopback TCP sockets (src/transport/
//                      tcp.h), with the same capped-exponential retry
//                      backoff (dht::retryBackoffMs) and the same
//                      dead-letter ring (dht::DeadLetterRing) as the
//                      simulated fault layer.
//
// The simulator predicts; the wire measures.  docs/COST_MODEL.md ("Real
// transport") spells out which quantities transfer between the two.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "dht/id.h"
#include "dht/rpc.h"

namespace mlight::transport {

/// Delivered with the owner's kResponse envelope.
using ReplyFn = std::function<void(const dht::RpcEnvelope& reply)>;

/// Invoked when a call exhausts its transmission attempts (the request
/// became a dead letter); mirrors dht::Network's RpcFailFn shape.
using FailFn =
    std::function<void(const dht::RpcEnvelope& env, std::size_t attempts)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Routes `env` to the peer responsible for `key` and invokes
  /// `onReply` with the owner's response, or `onFail` after the retry
  /// budget is spent.  Asynchronous: completions are delivered from
  /// drain() (and, for pipelined backends, from later call()s).
  virtual void call(dht::RingId key, dht::RpcEnvelope env, ReplyFn onReply,
                    FailFn onFail) = 0;

  /// Drives the backend until every outstanding call has completed or
  /// dead-lettered.
  virtual void drain() = 0;

  /// All-time dead letters (same semantics as Network::deadLetterCount).
  virtual std::uint64_t deadLetterTotal() const = 0;
  /// Ring evictions from the bounded dead-letter log.
  virtual std::uint64_t deadLettersDropped() const = 0;
  /// Entries currently retained in the log — the gauge.
  virtual std::size_t deadLetterLogSize() const = 0;
};

}  // namespace mlight::transport
