// Real TCP transport: physical peers as socket-serving threads (or
// processes via examples/mlight_peerd) and a pooled, retrying client.
//
// Server side (TcpPeerServer): one thread per physical peer runs a
// nonblocking poll(2) event loop over a listening socket, a self-pipe
// (shutdown wakeup), and its accepted connections.  Inbound bytes pass
// through FrameReader reassembly; each complete envelope is applied to
// the peer's WireStore and the response frame goes out through a
// per-connection write queue that tolerates partial writes (EAGAIN keeps
// the residue queued until POLLOUT).  Oversized or malformed frames drop
// the connection — the client's retry machinery recovers.
//
// Client side (TcpTransport): single-threaded (one instance per client
// thread), pooling one connection per peer with lazy connect and
// reconnect-on-failure.  Requests carry client-assigned envelope ids for
// correlation; timeouts use the same capped exponential backoff as the
// simulated fault layer (dht::retryBackoffMs) and exhausted envelopes
// land in the same dht::DeadLetterRing the simulator uses.  This is the
// one corner of src/ that legitimately reads wall clocks — the measured
// quantity IS wall time — so those lines carry DET-ALLOW annotations and
// nothing here is reachable from simulated code paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "dht/rpc.h"
#include "store/wire_store.h"
#include "transport/frame.h"
#include "transport/ring_map.h"
#include "transport/transport.h"

namespace mlight::transport {

/// Where a physical peer listens.  Loopback-only by design: this PR's
/// scope is a multi-process single-host deployment.
struct PeerAddr {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Client-side knobs, mirroring the simulator's FaultModel defaults so
/// the two worlds share one retry schedule.
struct TcpConfig {
  /// Backoff floor in wall milliseconds (FaultModel::timeoutBaseMs
  /// analogue; loopback RTT is negligible next to it).
  double timeoutFloorMs = 50.0;
  /// Total transmissions per envelope, including the first
  /// (FaultModel::maxAttempts analogue).
  std::size_t maxAttempts = 6;
  std::size_t maxFrameBytes = kMaxFrameBytes;
};

/// One physical peer: WireStore + serving thread.
class TcpPeerServer {
 public:
  explicit TcpPeerServer(std::size_t maxFrameBytes = kMaxFrameBytes);
  ~TcpPeerServer();

  TcpPeerServer(const TcpPeerServer&) = delete;
  TcpPeerServer& operator=(const TcpPeerServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral), starts the serving thread,
  /// and returns the bound port.  Throws common::CheckFailure on socket
  /// errors.
  std::uint16_t start(std::uint16_t port = 0);

  /// Graceful shutdown: wakes the loop via the self-pipe, flushes each
  /// connection's queued responses best-effort, closes every socket,
  /// joins the thread.  Idempotent.
  void stop();

  std::uint16_t port() const noexcept { return port_; }

  /// The peer's record store.  Only the serving thread touches it while
  /// the loop runs; callers may inspect it before start() or after
  /// stop().
  store::WireStore& store() noexcept { return store_; }

  /// Complete request frames served (atomic; readable while running).
  std::uint64_t framesServed() const noexcept {
    return framesServed_.load(std::memory_order_relaxed);
  }
  /// Connections dropped for protocol violations (oversized frame,
  /// malformed envelope).
  std::uint64_t connsDropped() const noexcept {
    return connsDropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    FrameReader reader;
    std::vector<std::uint8_t> out;  ///< Queued response bytes.
    std::size_t outHead = 0;        ///< Bytes of `out` already written.
    explicit Conn(std::size_t maxFrame) : reader(maxFrame) {}
  };

  void serveLoop();
  /// Drains readable bytes; returns false when the connection must close.
  bool onReadable(Conn& c);
  /// Flushes queued bytes; returns false when the connection must close.
  bool flushWrites(Conn& c);

  std::size_t maxFrameBytes_;
  store::WireStore store_;
  int listenFd_ = -1;
  int wakePipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::thread thread_;
  bool running_ = false;
  std::vector<Conn> conns_;
  std::atomic<std::uint64_t> framesServed_{0};
  std::atomic<std::uint64_t> connsDropped_{0};
};

/// Client transport over real sockets.  Single-threaded: construct one
/// per client thread; instances share nothing but the (immutable)
/// RingMap and the peer address list.
class TcpTransport : public Transport {
 public:
  TcpTransport(const RingMap& map, std::vector<PeerAddr> peers,
               TcpConfig cfg = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Queues the request toward the owner of `key`.  Completion (reply or
  /// dead letter) is delivered from pump()/drain().  The envelope id is
  /// assigned here (client correlation id).
  void call(dht::RingId key, dht::RpcEnvelope env, ReplyFn onReply,
            FailFn onFail) override;

  /// One poll(2) round: flush writes, read replies, fire timeouts.
  /// Waits at most `maxWaitMs` (clamped to the nearest retry deadline);
  /// pass 0 to only collect what is already pending.
  void pump(int maxWaitMs);

  void drain() override;

  std::size_t inFlight() const noexcept { return pending_.size(); }

  std::uint64_t deadLetterTotal() const override {
    return deadLetters_.total();
  }
  std::uint64_t deadLettersDropped() const override {
    return deadLetters_.dropped();
  }
  std::size_t deadLetterLogSize() const override {
    return deadLetters_.size();
  }
  const dht::DeadLetterRing& deadLetterRing() const noexcept {
    return deadLetters_;
  }

  /// Reconnect attempts that replaced a broken pooled connection.
  std::uint64_t reconnects() const noexcept { return reconnects_; }

 private:
  struct Endpoint {
    PeerAddr addr;
    int fd = -1;
    bool connecting = false;  ///< Nonblocking connect() in progress.
    FrameReader reader;
    std::vector<std::uint8_t> out;
    std::size_t outHead = 0;
    explicit Endpoint(std::size_t maxFrame) : reader(maxFrame) {}
  };

  struct Pending {
    dht::RpcEnvelope env;  ///< As sent (retransmits reuse it verbatim).
    std::size_t peer = 0;
    std::size_t attempt = 0;  ///< 0 = the original send.
    double deadlineMs = 0.0;  ///< Wall clock, monotonic epoch.
    ReplyFn onReply;
    FailFn onFail;
  };

  /// Ensures a (possibly in-progress) connection to `peer`; returns
  /// false when connect() failed outright this round.
  bool ensureConnected(std::size_t peer);
  void closeEndpoint(Endpoint& ep);
  /// Frames `p.env` onto its endpoint's write queue and arms the
  /// attempt's timeout.
  void transmit(Pending& p);
  void onReadable(Endpoint& ep);
  void fireExpired();

  const RingMap& map_;
  TcpConfig cfg_;
  std::vector<Endpoint> endpoints_;
  std::map<std::uint64_t, Pending> pending_;  ///< By envelope id.
  std::uint64_t nextId_ = 1;
  std::uint64_t reconnects_ = 0;
  dht::DeadLetterRing deadLetters_;
};

}  // namespace mlight::transport
