#include "transport/tcp.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"
#include "common/serde.h"

namespace mlight::transport {

namespace {

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  MLIGHT_CHECK(flags >= 0, "fcntl(F_GETFL) failed");
  MLIGHT_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "fcntl(F_SETFL, O_NONBLOCK) failed");
}

}  // namespace

TcpPeerServer::TcpPeerServer(std::size_t maxFrameBytes)
    : maxFrameBytes_(maxFrameBytes) {}

TcpPeerServer::~TcpPeerServer() { stop(); }

std::uint16_t TcpPeerServer::start(std::uint16_t port) {
  MLIGHT_CHECK(!running_, "TcpPeerServer already running");
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MLIGHT_CHECK(listenFd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  MLIGHT_CHECK(::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "bind(127.0.0.1) failed");
  MLIGHT_CHECK(::listen(listenFd_, 128) == 0, "listen() failed");
  socklen_t len = sizeof(addr);
  MLIGHT_CHECK(::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                             &len) == 0,
               "getsockname() failed");
  port_ = ntohs(addr.sin_port);
  setNonBlocking(listenFd_);
  MLIGHT_CHECK(::pipe(wakePipe_) == 0, "pipe() failed");
  setNonBlocking(wakePipe_[0]);
  running_ = true;
  thread_ = std::thread([this] { serveLoop(); });
  return port_;
}

void TcpPeerServer::stop() {
  if (!running_) return;
  // Self-pipe wakeup: poll() returns, the loop sees the byte and exits.
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wakePipe_[1], &byte, 1);
  thread_.join();
  running_ = false;
  for (Conn& c : conns_) {
    if (c.fd >= 0) {
      flushWrites(c);  // best-effort: ship queued responses if possible
      ::close(c.fd);
      c.fd = -1;
    }
  }
  conns_.clear();
  ::close(listenFd_);
  listenFd_ = -1;
  ::close(wakePipe_[0]);
  ::close(wakePipe_[1]);
  wakePipe_[0] = wakePipe_[1] = -1;
}

bool TcpPeerServer::onReadable(Conn& c) {
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!c.reader.feed(buf, static_cast<std::size_t>(n))) {
        // Oversized frame announcement: the stream is poisoned.
        connsDropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      continue;
    }
    if (n == 0) return false;  // peer closed (mid-frame residue dropped)
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // connection error
  }
  try {
    dht::RpcEnvelope req;
    while (c.reader.next(req)) {
      dht::RpcEnvelope resp = store_.handle(req);
      encodeFrame(resp, c.out);
      framesServed_.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const common::SerdeError&) {
    // Malformed envelope inside a well-framed length: protocol error,
    // same remedy as an oversized frame.
    connsDropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return flushWrites(c);
}

bool TcpPeerServer::flushWrites(Conn& c) {
  while (c.outHead < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.outHead,
                             c.out.size() - c.outHead, MSG_NOSIGNAL);
    if (n > 0) {
      c.outHead += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // POLLOUT
    if (errno == EINTR) continue;
    return false;
  }
  c.out.clear();
  c.outHead = 0;
  return true;
}

void TcpPeerServer::serveLoop() {
  std::vector<pollfd> fds;
  for (;;) {
    fds.clear();
    fds.push_back(pollfd{wakePipe_[0], POLLIN, 0});
    fds.push_back(pollfd{listenFd_, POLLIN, 0});
    for (const Conn& c : conns_) {
      short events = POLLIN;
      if (c.outHead < c.out.size()) {
        events = static_cast<short>(events | POLLOUT);
      }
      fds.push_back(pollfd{c.fd, events, 0});
    }
    // Connections accepted below this poll round have no pollfd yet;
    // only the first `polled` entries of conns_ line up with fds[2+i].
    const std::size_t polled = conns_.size();
    const int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;  // unrecoverable; stop() still reclaims the fds
    }
    if ((fds[0].revents & POLLIN) != 0) return;  // shutdown requested
    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) break;  // EAGAIN: accepted everything pending
        setNonBlocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        Conn c(maxFrameBytes_);
        c.fd = fd;
        conns_.push_back(std::move(c));
      }
    }
    // Walk connections back to front so erasing dead ones does not
    // disturb the pollfd indices still to visit.
    for (std::size_t i = polled; i-- > 0;) {
      const pollfd& p = fds[2 + i];
      Conn& c = conns_[i];
      bool alive = true;
      if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) alive = false;
      if (alive && (p.revents & POLLOUT) != 0) alive = flushWrites(c);
      if (alive && (p.revents & POLLIN) != 0) alive = onReadable(c);
      if (!alive) {
        ::close(c.fd);
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }
}

}  // namespace mlight::transport
