#include "transport/ring_map.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace mlight::transport {

RingMap::RingMap(std::size_t peerCount, std::size_t vnodesPerPeer) {
  MLIGHT_CHECK(peerCount >= 1, "RingMap needs at least one peer");
  MLIGHT_CHECK(vnodesPerPeer >= 1, "RingMap needs at least one vnode");
  // Mirror of Network's bulk constructor: same names, same hash, same
  // sort tie-break, same collision bump — any divergence here is an
  // ownership disagreement between the simulated and the wire world.
  struct Vnode {
    dht::RingId id;
    std::size_t physical;
  };
  std::vector<Vnode> vnodes;
  vnodes.reserve(peerCount * vnodesPerPeer);
  firstVnode_.reserve(peerCount);
  for (std::size_t i = 0; i < peerCount; ++i) {
    const std::string name = "node:" + std::to_string(i);
    for (std::size_t v = 0; v < vnodesPerPeer; ++v) {
      const dht::RingId id =
          dht::keyId("peer-id:" + name + "#" + std::to_string(v));
      vnodes.push_back(Vnode{id, i});
      if (v == 0) firstVnode_.push_back(id);
    }
  }
  std::sort(vnodes.begin(), vnodes.end(),
            [](const Vnode& a, const Vnode& b) {
              if (a.id != b.id) return a.id < b.id;
              return a.physical < b.physical;
            });
  for (std::size_t k = 1; k < vnodes.size(); ++k) {
    if (vnodes[k].id == vnodes[k - 1].id) vnodes[k].id.value += 1;
  }
  ring_.reserve(vnodes.size());
  for (const Vnode& v : vnodes) {
    ring_.push_back(v.id);
    vnodeToPeer_[v.id] = v.physical;
  }
}

dht::RingId RingMap::responsible(dht::RingId h) const noexcept {
  auto it = std::upper_bound(ring_.begin(), ring_.end(), h);
  if (it == ring_.begin()) return ring_.back();
  return *std::prev(it);
}

std::size_t RingMap::peerOf(dht::RingId vnode) const {
  const auto it = vnodeToPeer_.find(vnode);
  MLIGHT_CHECK(it != vnodeToPeer_.end(), "peerOf: unknown vnode");
  return it->second;
}

}  // namespace mlight::transport
