#include "transport/frame.h"

#include "common/serde.h"

namespace mlight::transport {

void encodeFrame(const dht::RpcEnvelope& env, std::vector<std::uint8_t>& out) {
  common::Writer w;
  env.serialize(w);
  const std::vector<std::uint8_t>& body = w.bytes();
  const auto len = static_cast<std::uint32_t>(body.size());
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  out.insert(out.end(), body.begin(), body.end());
}

bool FrameReader::peekLength(std::uint32_t& len) const noexcept {
  if (buffered() < kFrameHeaderBytes) return false;
  len = 0;
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    len |= static_cast<std::uint32_t>(buf_[head_ + i]) << (8 * i);
  }
  return true;
}

bool FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  if (poisoned_) return false;
  buf_.insert(buf_.end(), data, data + n);
  // Reject an oversized announcement as soon as its header is complete,
  // before buffering any of the body.
  std::uint32_t len = 0;
  if (peekLength(len) && len > maxFrameBytes_) {
    poisoned_ = true;
    return false;
  }
  return true;
}

bool FrameReader::next(dht::RpcEnvelope& out) {
  if (poisoned_) return false;
  std::uint32_t len = 0;
  if (!peekLength(len)) return false;
  if (len > maxFrameBytes_) {
    poisoned_ = true;
    return false;
  }
  if (buffered() < kFrameHeaderBytes + len) return false;
  common::Reader r({buf_.data() + head_ + kFrameHeaderBytes, len});
  out.deserializeFrom(r);
  if (!r.atEnd()) {
    throw common::SerdeError("frame: trailing bytes after envelope");
  }
  head_ += kFrameHeaderBytes + len;
  // Compact once the consumed prefix dominates, keeping feed() appends
  // amortized O(1) without unbounded retention of dead bytes.
  if (head_ > 4096 && head_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return true;
}

}  // namespace mlight::transport
