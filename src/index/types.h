// Shared result/statistics types for all over-DHT indexes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "dht/cost.h"
#include "dht/id.h"
#include "index/record.h"

namespace mlight::index {

/// Per-query cost report, in the paper's units:
///  * bandwidth  = number of DHT-lookups consumed (cost.lookups);
///  * latency    = rounds of DHT-lookups (depth of the parallel
///    forwarding waves, §6's worked example).
struct QueryStats {
  mlight::dht::CostMeter cost;
  std::size_t rounds = 0;
  /// Simulated wall latency: per round, the slowest parallel lookup of
  /// that wave; sequential probes accumulate.
  double latencyMs = 0.0;
};

/// Range query outcome: matching records plus the cost report.
struct RangeResult {
  std::vector<Record> records;
  QueryStats stats;
};

/// Point (exact-match) outcome.
struct PointResult {
  std::vector<Record> records;  ///< All records whose key equals the probe.
  QueryStats stats;
};

/// Accumulates the simulated latency of one parallel wave of lookups:
/// links run in parallel, but each *sender* serializes its own burst, so
/// the wave costs max(path ms) + (largest per-sender burst) x overhead.
/// This is the term that makes huge fan-outs latency-bound at the
/// issuing peer (see docs/COST_MODEL.md).
class WaveLatency {
 public:
  void add(mlight::dht::RingId sender, double pathMs) {
    maxPathMs_ = std::max(maxPathMs_, pathMs);
    maxBurst_ = std::max(maxBurst_, ++perSender_[sender]);
  }

  double totalMs(double sendOverheadMs) const {
    if (perSender_.empty()) return 0.0;
    return maxPathMs_ +
           static_cast<double>(maxBurst_ - 1) * sendOverheadMs;
  }

 private:
  std::map<mlight::dht::RingId, std::size_t> perSender_;
  std::size_t maxBurst_ = 0;
  double maxPathMs_ = 0.0;
};

}  // namespace mlight::index
