// Shared result/statistics types for all over-DHT indexes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dht/cost.h"
#include "index/record.h"

namespace mlight::index {

/// Per-query cost report, in the paper's units:
///  * bandwidth  = number of DHT-lookups consumed (cost.lookups);
///  * latency    = rounds of DHT-lookups (§6's worked example).
///
/// Both latency figures are read off the discrete-event timeline
/// (dht::SimScheduler): every probe travels as an RPC envelope stamped
/// with its chain depth, so `rounds` is the deepest round delivered
/// during the operation — parallel fan-out at one depth shares a round,
/// sequential dependency chains (binary-search probes, saturation
/// descents, speculation fallbacks) deepen it.  `latencyMs` is the
/// elapsed simulated time: link latencies of concurrent probes overlap,
/// while each sender serializes its own burst at sendOverheadMs per
/// message — the emergent replacement for the old analytic per-wave
/// formula (see docs/COST_MODEL.md).
struct QueryStats {
  mlight::dht::CostMeter cost;
  std::size_t rounds = 0;
  /// Simulated wall-clock latency (Network::now() at quiescence minus
  /// the operation's beginTimeline() start).
  double latencyMs = 0.0;
  /// Store reads during this operation that produced no answer at all —
  /// every candidate holder timed out or had lost its copy (fault
  /// injection / crash loss).  0 means the result is complete; > 0 means
  /// parts of the key space could not be reached and the result may be
  /// short.  Always 0 with faults disabled and R large enough to cover
  /// the crash pattern.
  std::size_t failedProbes = 0;

  /// True iff no probe of this operation failed (the result is the full
  /// answer, not a partial one).
  bool complete() const noexcept { return failedProbes == 0; }
};

/// Range query outcome: matching records plus the cost report.
struct RangeResult {
  std::vector<Record> records;
  QueryStats stats;
};

/// Point (exact-match) outcome.
struct PointResult {
  std::vector<Record> records;  ///< All records whose key equals the probe.
  QueryStats stats;
};

}  // namespace mlight::index
