// Data records indexed by the over-DHT schemes.
//
// A record couples an m-dimensional data key δ (paper §3.1: every δ_i in
// [0,1]) with an opaque payload (e.g. the postal address text in the
// paper's dataset).  Serialized size drives the data-movement accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/geometry.h"
#include "common/serde.h"

namespace mlight::index {

struct Record {
  mlight::common::Point key;
  std::string payload;
  /// Stable id assigned by the application; lets tests compare result
  /// sets without relying on floating-point ordering.
  std::uint64_t id = 0;

  /// Serialized size in bytes: id + dims + coords + payload header+body.
  std::size_t byteSize() const noexcept {
    return 8 + 4 + 8 * key.dims() + 4 + payload.size();
  }

  void serialize(mlight::common::Writer& w) const {
    w.writeU64(id);
    w.writeU32(static_cast<std::uint32_t>(key.dims()));
    for (std::size_t i = 0; i < key.dims(); ++i) w.writeDouble(key[i]);
    w.writeString(payload);
  }

  static Record deserialize(mlight::common::Reader& r) {
    Record rec;
    rec.id = r.readU64();
    const std::uint32_t dims = r.readU32();
    if (dims < 1 || dims > mlight::common::kMaxDims) {
      throw mlight::common::SerdeError("record: bad dimensionality");
    }
    rec.key = mlight::common::Point(dims);
    for (std::uint32_t i = 0; i < dims; ++i) rec.key[i] = r.readDouble();
    rec.payload = r.readString();
    return rec;
  }

  friend bool operator==(const Record& a, const Record& b) noexcept {
    return a.id == b.id && a.key == b.key && a.payload == b.payload;
  }
};

}  // namespace mlight::index
