// Common interface of the three over-DHT indexes (m-LIGHT, PHT, DST).
//
// The benchmark harness drives all schemes through this interface so every
// figure compares identical workloads.  Implementations meter all DHT
// traffic through the shared Network.
#pragma once

#include <cstdint>

#include "common/geometry.h"
#include "index/record.h"
#include "index/types.h"

namespace mlight::index {

class IndexBase {
 public:
  virtual ~IndexBase() = default;

  /// Inserts one record (lookup + put + any split/replication traffic).
  virtual void insert(const Record& record) = 0;

  /// Removes all records with the given key and id; returns the number
  /// removed.  May trigger merges.
  virtual std::size_t erase(const mlight::common::Point& key,
                            std::uint64_t id) = 0;

  /// All records whose key falls inside `range` (half-open box).
  virtual RangeResult rangeQuery(const mlight::common::Rect& range) = 0;

  /// All records whose key equals `key` exactly.
  virtual PointResult pointQuery(const mlight::common::Point& key) = 0;

  /// Total records currently stored.
  virtual std::size_t size() const = 0;
};

}  // namespace mlight::index
