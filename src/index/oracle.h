// Brute-force oracle: a flat in-memory index used as ground truth.
//
// Every distributed index in this repo is property-tested against this
// oracle: identical inserts must yield identical query answers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "index/record.h"

namespace mlight::index {

class Oracle {
 public:
  void insert(const Record& r) { records_.push_back(r); }

  std::size_t erase(const mlight::common::Point& key, std::uint64_t id) {
    const auto before = records_.size();
    std::erase_if(records_, [&](const Record& r) {
      return r.id == id && r.key == key;
    });
    return before - records_.size();
  }

  std::vector<Record> rangeQuery(const mlight::common::Rect& range) const {
    std::vector<Record> out;
    for (const Record& r : records_) {
      if (range.contains(r.key)) out.push_back(r);
    }
    sortById(out);
    return out;
  }

  std::vector<Record> pointQuery(const mlight::common::Point& key) const {
    std::vector<Record> out;
    for (const Record& r : records_) {
      if (r.key == key) out.push_back(r);
    }
    sortById(out);
    return out;
  }

  std::size_t size() const noexcept { return records_.size(); }

  /// Canonical ordering for comparing result sets.
  static void sortById(std::vector<Record>& v) {
    std::sort(v.begin(), v.end(), [](const Record& a, const Record& b) {
      return a.id < b.id;
    });
  }

 private:
  std::vector<Record> records_;
};

}  // namespace mlight::index
