// Arbitrary-shape query regions (paper §6: "the queried region can be
// of an arbitrary shape").
//
// A region answers three geometric questions against the kd-tree's
// rectangular cells — does it overlap a cell, does it fully cover a
// cell, does it contain a point — which is all the recursive-forwarding
// algorithm needs: forwarding prunes on overlap, scanning filters on
// containment, and the bounding box seeds the LCA.
#pragma once

#include <cmath>

#include "common/geometry.h"

namespace mlight::index {

class QueryRegion {
 public:
  virtual ~QueryRegion() = default;

  /// Tightest axis-aligned box around the region (used for the LCA).
  virtual mlight::common::Rect boundingBox() const = 0;

  /// True iff the region and the cell overlap (may be conservative —
  /// returning true for a near-miss only costs an extra forward).
  virtual bool intersects(const mlight::common::Rect& cell) const = 0;

  /// True iff the region fully covers the cell (must be exact or
  /// under-approximate: claiming coverage skips per-record filtering).
  virtual bool covers(const mlight::common::Rect& cell) const = 0;

  /// True iff the point is inside the region (exact; final filter).
  virtual bool contains(const mlight::common::Point& p) const = 0;
};

/// Axis-aligned box, the paper's evaluation shape.
class RectRegion final : public QueryRegion {
 public:
  explicit RectRegion(mlight::common::Rect rect) : rect_(rect) {}

  mlight::common::Rect boundingBox() const override { return rect_; }
  bool intersects(const mlight::common::Rect& cell) const override {
    return rect_.intersects(cell);
  }
  bool covers(const mlight::common::Rect& cell) const override {
    return rect_.containsRect(cell);
  }
  bool contains(const mlight::common::Point& p) const override {
    return rect_.contains(p);
  }

 private:
  mlight::common::Rect rect_;
};

/// Euclidean ball (circle in 2-D): "all restaurants within 5 km".
class BallRegion final : public QueryRegion {
 public:
  BallRegion(mlight::common::Point center, double radius)
      : center_(center), radius_(radius) {}

  mlight::common::Rect boundingBox() const override {
    mlight::common::Point lo(center_.dims());
    mlight::common::Point hi(center_.dims());
    for (std::size_t d = 0; d < center_.dims(); ++d) {
      lo[d] = center_[d] - radius_;
      hi[d] = center_[d] + radius_;
    }
    return mlight::common::Rect(lo, hi);
  }

  bool intersects(const mlight::common::Rect& cell) const override {
    // Distance from center to the cell (0 if inside) vs radius.
    double d2 = 0.0;
    for (std::size_t d = 0; d < center_.dims(); ++d) {
      const double v = center_[d];
      if (v < cell.lo()[d]) {
        const double delta = cell.lo()[d] - v;
        d2 += delta * delta;
      } else if (v > cell.hi()[d]) {
        const double delta = v - cell.hi()[d];
        d2 += delta * delta;
      }
    }
    return d2 <= radius_ * radius_;
  }

  bool covers(const mlight::common::Rect& cell) const override {
    // The farthest cell corner must be inside the ball.
    double d2 = 0.0;
    for (std::size_t d = 0; d < center_.dims(); ++d) {
      const double toLo = std::abs(center_[d] - cell.lo()[d]);
      const double toHi = std::abs(cell.hi()[d] - center_[d]);
      const double far = std::max(toLo, toHi);
      d2 += far * far;
    }
    return d2 <= radius_ * radius_;
  }

  bool contains(const mlight::common::Point& p) const override {
    double d2 = 0.0;
    for (std::size_t d = 0; d < center_.dims(); ++d) {
      const double delta = p[d] - center_[d];
      d2 += delta * delta;
    }
    return d2 <= radius_ * radius_;
  }

 private:
  mlight::common::Point center_;
  double radius_;
};

}  // namespace mlight::index
