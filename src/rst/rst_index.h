// RST: Range Search Tree baseline (Gao & Steenkiste, ICNP'04; paper [9]).
//
// §2.1 groups RST with DST: "To fill internal nodes, they both replicate
// the data records of a leaf node at all its ancestors."  RST's tree is
// *binary* over the (SFC-linearized) key space and its distinguishing
// idea is load adaptation: a *registration band* — the top `bandCeiling`
// levels never store data (they would be replication hotspots serving
// every insert), and saturated nodes inside the band stop absorbing
// records, pushing registration toward the leaves, exactly like DST's
// saturation.  Queries decompose a range into canonical *binary*
// segments at or below the band ceiling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bitstring.h"
#include "common/digest.h"
#include "common/geometry.h"
#include "common/rng.h"
#include "common/serde.h"
#include "dht/network.h"
#include "index/index_base.h"
#include "store/distributed_store.h"

namespace mlight::rst {

struct RstConfig {
  std::size_t dims = 2;
  /// Static tree depth in interleaved bits (binary levels).
  std::size_t maxDepth = 28;
  /// Node capacity before saturation (plays DST's gamma role).
  std::size_t gamma = 100;
  /// Top levels excluded from the registration band: nodes shallower
  /// than this never store data and queries never probe them.
  std::size_t bandCeiling = 3;
  std::uint64_t seed = 45;
  std::string dhtNamespace = "rst/";
};

struct RstNode {
  mlight::common::BitString label;
  std::vector<mlight::index::Record> records;
  bool complete = true;

  std::size_t recordCount() const noexcept { return records.size(); }
  std::size_t byteSize() const noexcept {
    std::size_t bytes = 4 + 8 * ((label.size() + 63) / 64) + 1 + 4;
    for (const auto& r : records) bytes += r.byteSize();
    return bytes;
  }

  void serialize(mlight::common::Writer& w) const {
    w.writeBitString(label);
    w.writeU8(complete ? 1 : 0);
    w.writeU32(static_cast<std::uint32_t>(records.size()));
    for (const auto& r : records) r.serialize(w);
  }

  static RstNode deserialize(mlight::common::Reader& r) {
    RstNode n;
    n.label = r.readBitString();
    n.complete = r.readU8() != 0;
    const std::uint32_t count = r.readCount(16);
    n.records.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      n.records.push_back(mlight::index::Record::deserialize(r));
    }
    return n;
  }
};

class RstIndex final : public mlight::index::IndexBase {
 public:
  using Label = mlight::common::BitString;
  using Point = mlight::common::Point;
  using Rect = mlight::common::Rect;
  using Record = mlight::index::Record;

  RstIndex(mlight::dht::Network& net, RstConfig config);

  void insert(const Record& record) override;
  std::size_t erase(const Point& key, std::uint64_t id) override;
  mlight::index::RangeResult rangeQuery(const Rect& range) override;
  mlight::index::PointResult pointQuery(const Point& key) override;
  std::size_t size() const override { return size_; }

  std::size_t nodeCount() const noexcept { return store_.bucketCount(); }
  void checkInvariants() const;

  /// Canonical binary decomposition of a range into segments at or below
  /// the band ceiling (locally computable; exposed for tests).
  std::vector<Label> decompose(const Rect& range) const;

  const mlight::store::DistributedStore<RstNode>& store() const noexcept {
    return store_;
  }

  /// Digest of every simulation-visible fact of this index (see
  /// MLightIndex::stateDigest; same contract).
  std::uint64_t stateDigest() const {
    mlight::common::Digest d;
    d.feed(size_);
    store_.digestState(d);
    return d.value();
  }

 private:
  mlight::dht::RingId randomPeer();
  void decomposeInto(const Rect& range, const Label& node,
                     std::vector<Label>& out) const;

  mlight::dht::Network* net_;
  RstConfig config_;
  mlight::store::DistributedStore<RstNode> store_;
  mlight::common::Rng rng_;
  std::size_t size_ = 0;
};

}  // namespace mlight::rst
