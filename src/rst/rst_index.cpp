#include "rst/rst_index.h"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/invariants.h"
#include "common/zorder.h"

namespace mlight::rst {

namespace {

using mlight::common::cellOfPath;
using mlight::common::interleave;

void collectInRange(const RstNode& node, const mlight::common::Rect& range,
                    std::vector<mlight::index::Record>& out) {
  for (const auto& r : node.records) {
    if (range.contains(r.key)) out.push_back(r);
  }
}

}  // namespace

RstIndex::RstIndex(mlight::dht::Network& net, RstConfig config)
    : net_(&net),
      config_(std::move(config)),
      store_(net, config_.dhtNamespace),
      rng_(config_.seed) {
  if (config_.dims < 1 || config_.dims > mlight::common::kMaxDims) {
    throw std::invalid_argument("RstIndex: dims out of range");
  }
  if (config_.gamma == 0) {
    throw std::invalid_argument("RstIndex: gamma must be positive");
  }
  if (config_.bandCeiling >= config_.maxDepth) {
    throw std::invalid_argument("RstIndex: bandCeiling must be < maxDepth");
  }
}

mlight::dht::RingId RstIndex::randomPeer() {
  const auto& peers = net_->peers();
  return peers[rng_.below(peers.size())];
}

void RstIndex::insert(const Record& record) {
  if (record.key.dims() != config_.dims) {
    throw std::invalid_argument("insert: wrong dimensionality");
  }
  const auto initiator = randomPeer();
  const Label path = interleave(record.key, config_.maxDepth);
  // Register within the band: every binary level from the ceiling down
  // to the leaf, skipping saturated nodes.  The levels form a
  // continuation chain of visit RPCs, each one round deeper; the
  // saturation check runs at the owning peer.
  std::function<void(std::size_t, std::uint32_t)> visitLevel =
      [&](std::size_t level, std::uint32_t round) {
        const Label label = path.prefix(level);
        store_.asyncVisit(
            initiator, label, round,
            [&, label, level](RstNode* node,
                              const mlight::dht::RpcDelivery& d) {
              const bool isLeafLevel = (level == config_.maxDepth);
              if (node == nullptr) {
                RstNode fresh;
                fresh.label = label;
                fresh.records.push_back(record);
                net_->shipPayload(initiator, d.route.owner,
                                  record.byteSize(), 1);
                store_.placeLocal(label, std::move(fresh));
              } else if (isLeafLevel) {
                node->records.push_back(record);
                net_->shipPayload(initiator, d.route.owner,
                                  record.byteSize(), 1);
              } else if (node->complete) {
                if (node->records.size() >= config_.gamma) {
                  node->complete = false;
                } else {
                  node->records.push_back(record);
                  net_->shipPayload(initiator, d.route.owner,
                                    record.byteSize(), 1);
                }
              }  // else: saturated long ago; skip
              if (level < config_.maxDepth) {
                visitLevel(level + 1, d.env.round + 1);
              }
            });
      };
  visitLevel(config_.bandCeiling, 1);
  net_->run();
  ++size_;
}

std::size_t RstIndex::erase(const Point& key, std::uint64_t id) {
  const auto initiator = randomPeer();
  const Label path = interleave(key, config_.maxDepth);
  std::size_t removedAtLeaf = 0;
  for (std::size_t level = config_.bandCeiling; level <= config_.maxDepth;
       ++level) {
    const Label label = path.prefix(level);
    const auto found = store_.routeAndFind(initiator, label);
    if (found.bucket == nullptr) continue;
    const auto before = found.bucket->records.size();
    std::erase_if(found.bucket->records, [&](const Record& r) {
      return r.id == id && r.key == key;
    });
    if (level == config_.maxDepth) {
      removedAtLeaf = before - found.bucket->records.size();
    }
  }
  size_ -= removedAtLeaf;
  return removedAtLeaf;
}

mlight::index::PointResult RstIndex::pointQuery(const Point& key) {
  const double t0 = net_->beginTimeline();
  const std::size_t failedBefore = store_.failedReads();
  mlight::dht::CostMeter meter;
  mlight::dht::MeterScope scope(*net_, meter);
  mlight::index::PointResult out;
  const Label leaf = interleave(key, config_.maxDepth);
  const auto found = store_.routeAndFind(randomPeer(), leaf);
  if (found.bucket != nullptr) {
    for (const auto& r : found.bucket->records) {
      if (r.key == key) out.records.push_back(r);
    }
  }
  out.stats.cost = meter;
  out.stats.rounds = net_->timelineMaxRound();
  out.stats.latencyMs = net_->now() - t0;
  out.stats.failedProbes = store_.failedReads() - failedBefore;
  return out;
}

void RstIndex::decomposeInto(const Rect& range, const Label& node,
                             std::vector<Label>& out) const {
  const Rect cell = cellOfPath(node, config_.dims);
  if (!cell.intersects(range)) return;
  // Below the ceiling, emit fully-covered or leaf-level segments.
  if (node.size() >= config_.bandCeiling &&
      (range.containsRect(cell) || node.size() >= config_.maxDepth)) {
    out.push_back(node);
    return;
  }
  decomposeInto(range, node.withBack(false), out);
  decomposeInto(range, node.withBack(true), out);
}

std::vector<RstIndex::Label> RstIndex::decompose(const Rect& range) const {
  std::vector<Label> out;
  decomposeInto(range, Label{}, out);
  return out;
}

mlight::index::RangeResult RstIndex::rangeQuery(const Rect& range) {
  mlight::index::RangeResult out;
  if (range.dims() != config_.dims) {
    throw std::invalid_argument("rangeQuery: wrong dimensionality");
  }
  const Rect clipped = range.intersection(Rect::unit(config_.dims));
  if (clipped.empty()) return out;

  const double t0 = net_->beginTimeline();
  const std::size_t failedBefore = store_.failedReads();
  mlight::dht::CostMeter meter;
  mlight::dht::MeterScope scope(*net_, meter);
  const auto initiator = randomPeer();

  // Canonical segments probe in parallel at round 1; saturated segments
  // descend via follow-up RPCs from the probed node's owner, one round
  // deeper per binary level.
  std::function<void(const Label&, mlight::dht::RingId, std::uint32_t)>
      probe = [&](const Label& label, mlight::dht::RingId source,
                  std::uint32_t round) {
        store_.asyncGet(
            source, label, round,
            [&, label](RstNode* node, const mlight::dht::RpcDelivery& d) {
              if (node == nullptr) return;  // empty segment
              if (node->complete) {
                collectInRange(*node, clipped, out.records);
                return;
              }
              for (const bool bit : {false, true}) {
                const Label child = label.withBack(bit);
                if (cellOfPath(child, config_.dims).intersects(clipped)) {
                  probe(child, d.route.owner, d.env.round + 1);
                }
              }
            });
      };
  for (Label& label : decompose(clipped)) {
    probe(label, initiator, 1);
  }

  net_->run();
  out.stats.cost = meter;
  out.stats.rounds = net_->timelineMaxRound();
  out.stats.latencyMs = net_->now() - t0;
  out.stats.failedProbes = store_.failedReads() - failedBefore;
  return out;
}

void RstIndex::checkInvariants() const {
  std::size_t leafRecords = 0;
  store_.forEach([&](const Label& key, const RstNode& n,
                     mlight::dht::RingId) {
    MLIGHT_CHECK(key == n.label, "node stored under wrong key");
    MLIGHT_CHECK(n.label.size() >= config_.bandCeiling,
                 "node above the registration band");
    MLIGHT_CHECK(n.label.size() <= config_.maxDepth, "node too deep");
    mlight::common::auditRecordPlacement(
        cellOfPath(n.label, config_.dims), n.records,
        [](const Record& r) -> const Point& { return r.key; });
    if (n.label.size() == config_.maxDepth) {
      MLIGHT_CHECK(n.complete, "leaf-level node must be complete");
      leafRecords += n.records.size();
    } else if (n.complete) {
      MLIGHT_CHECK(n.records.size() <= config_.gamma,
                   "complete node above capacity");
    }
  });
  MLIGHT_CHECK(leafRecords == size_, "record count drift");
}

}  // namespace mlight::rst
