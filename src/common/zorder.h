// Bit interleaving between m-dimensional points and binary strings.
//
// m-LIGHT's kd-tree halves the space one dimension per level, cycling
// through the dimensions; therefore the path of a point down the tree is
// exactly the interleaving of the binary expansions of its coordinates.
// PHT uses the same interleaving as its space-filling-curve (z-order) key,
// and DST's quad cells are prefixes of it, so all three indexes share this
// module.
//
// Dimension order: the paper's worked examples interleave starting from the
// LAST dimension (for δ = <0.2, 0.4> the interleaved string is "001011...",
// which is y-bit first; see §5 and the lookup example where
// <0.3, 0.9> interleaves to "10111000011110000111").  We follow the paper:
// the bit at depth d comes from dimension (m-1) - (d mod m).
#pragma once

#include <cstddef>

#include "common/bitstring.h"
#include "common/geometry.h"

namespace mlight::common {

/// Dimension refined at tree depth `depth` (depth 0 = first halving below
/// the kd root) in an m-dimensional space, per the paper's convention.
constexpr std::size_t dimensionAtDepth(std::size_t depth,
                                       std::size_t dims) noexcept {
  return (dims - 1) - (depth % dims);
}

/// Interleaves the first ceil(depth/m) fractional bits of each coordinate
/// into a `depth`-bit string: bit d tells whether the point lies in the
/// upper half of dimension dimensionAtDepth(d, m) after d/m halvings.
/// Coordinates must lie in [0, 1); 1.0 is clamped to the top cell.
BitString interleave(const Point& p, std::size_t depth);

/// The dyadic cell reached by following `path` from the unit cube, halving
/// dimension dimensionAtDepth(d, m) at each step d (0 = lower half,
/// 1 = upper half).
Rect cellOfPath(const BitString& path, std::size_t dims);

/// Deepest path (up to maxDepth bits) whose cell fully contains `r`; the
/// lowest single cell covering the rectangle.  Returns an empty BitString
/// when no halving keeps the rectangle whole.
BitString lowestCoveringPath(const Rect& r, std::size_t dims,
                             std::size_t maxDepth);

}  // namespace mlight::common
