#include "common/geometry.h"

#include <algorithm>
#include <sstream>

namespace mlight::common {

std::string Point::toString() const {
  std::ostringstream out;
  out << '<';
  for (std::size_t i = 0; i < dims_; ++i) {
    if (i != 0) out << ", ";
    out << coords_[i];
  }
  out << '>';
  return out.str();
}

Rect Rect::unit(std::size_t dims) {
  Point lo(dims);
  Point hi(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    lo[i] = 0.0;
    hi[i] = 1.0;
  }
  return Rect(lo, hi);
}

bool Rect::contains(const Point& p) const noexcept {
  assert(p.dims() == dims());
  for (std::size_t i = 0; i < dims(); ++i) {
    if (p[i] < lo_[i] || p[i] >= hi_[i]) return false;
  }
  return true;
}

bool Rect::containsRect(const Rect& other) const noexcept {
  assert(other.dims() == dims());
  for (std::size_t i = 0; i < dims(); ++i) {
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::intersects(const Rect& other) const noexcept {
  assert(other.dims() == dims());
  for (std::size_t i = 0; i < dims(); ++i) {
    if (other.hi_[i] <= lo_[i] || other.lo_[i] >= hi_[i]) return false;
  }
  return true;
}

Rect Rect::intersection(const Rect& other) const noexcept {
  assert(other.dims() == dims());
  Point lo(dims());
  Point hi(dims());
  for (std::size_t i = 0; i < dims(); ++i) {
    lo[i] = std::max(lo_[i], other.lo_[i]);
    hi[i] = std::min(hi_[i], other.hi_[i]);
  }
  return Rect(lo, hi);
}

bool Rect::empty() const noexcept {
  for (std::size_t i = 0; i < dims(); ++i) {
    if (hi_[i] <= lo_[i]) return true;
  }
  return dims() == 0;
}

double Rect::volume() const noexcept {
  if (empty()) return 0.0;
  double v = 1.0;
  for (std::size_t i = 0; i < dims(); ++i) v *= hi_[i] - lo_[i];
  return v;
}

Rect Rect::halved(std::size_t dim, bool upper) const noexcept {
  assert(dim < dims());
  Rect out = *this;
  const double m = mid(dim);
  if (upper) {
    out.lo_[dim] = m;
  } else {
    out.hi_[dim] = m;
  }
  return out;
}

std::string Rect::toString() const {
  return lo_.toString() + ".." + hi_.toString();
}

}  // namespace mlight::common
