#include "common/bitstring.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mlight::common {

BitString BitString::fromString(std::string_view text) {
  BitString out;
  for (char c : text) {
    if (c != '0' && c != '1') {
      throw std::invalid_argument("BitString::fromString: invalid char");
    }
    out.pushBack(c == '1');
  }
  return out;
}

BitString BitString::repeated(bool bitValue, std::size_t count) {
  BitString out;
  out.size_ = count;
  out.words_.assign((count + kWordBits - 1) / kWordBits,
                    bitValue ? ~std::uint64_t{0} : 0);
  if (bitValue && count % kWordBits != 0) {
    out.words_.back() &= (std::uint64_t{1} << (count % kWordBits)) - 1;
  }
  return out;
}

bool BitString::bit(std::size_t i) const noexcept {
  assert(i < size_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitString::pushBack(bool b) {
  if (size_ % kWordBits == 0) words_.push_back(0);
  if (b) words_[size_ / kWordBits] |= std::uint64_t{1} << (size_ % kWordBits);
  ++size_;
}

void BitString::popBack() noexcept {
  assert(size_ > 0);
  --size_;
  words_[size_ / kWordBits] &=
      ~(std::uint64_t{1} << (size_ % kWordBits));
  if (size_ % kWordBits == 0) words_.pop_back();
}

void BitString::setBit(std::size_t i, bool b) noexcept {
  assert(i < size_);
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (b) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

BitString BitString::withBack(bool b) const {
  BitString out = *this;
  out.pushBack(b);
  return out;
}

BitString BitString::prefix(std::size_t n) const {
  assert(n <= size_);
  BitString out;
  out.size_ = n;
  out.words_.assign(words_.begin(),
                    words_.begin() + static_cast<std::ptrdiff_t>(
                                         (n + kWordBits - 1) / kWordBits));
  if (n % kWordBits != 0) {
    out.words_.back() &= (std::uint64_t{1} << (n % kWordBits)) - 1;
  }
  return out;
}

bool BitString::isPrefixOf(const BitString& other) const noexcept {
  if (size_ > other.size_) return false;
  const std::size_t fullWords = size_ / kWordBits;
  for (std::size_t w = 0; w < fullWords; ++w) {
    if (words_[w] != other.words_[w]) return false;
  }
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << rem) - 1;
    if ((words_[fullWords] & mask) != (other.words_[fullWords] & mask)) {
      return false;
    }
  }
  return true;
}

BitString BitString::sibling() const {
  assert(size_ > 0);
  BitString out = *this;
  out.setBit(size_ - 1, !out.bit(size_ - 1));
  return out;
}

void BitString::append(const BitString& tail) {
  for (std::size_t i = 0; i < tail.size(); ++i) pushBack(tail.bit(i));
}

std::string BitString::toString() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(bit(i) ? '1' : '0');
  return out;
}

std::uint64_t BitString::hash64() const noexcept {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix(size_);
  for (std::uint64_t w : words_) mix(w);
  return h;
}

std::strong_ordering BitString::operator<=>(
    const BitString& other) const noexcept {
  const std::size_t common = std::min(size_, other.size_);
  for (std::size_t i = 0; i < common; ++i) {
    const bool a = bit(i);
    const bool b = other.bit(i);
    if (a != b) return a ? std::strong_ordering::greater
                         : std::strong_ordering::less;
  }
  return size_ <=> other.size_;
}

}  // namespace mlight::common
