#include "common/bitstring.h"

#include <algorithm>
#include <stdexcept>

namespace mlight::common {

BitString BitString::fromString(std::string_view text) {
  BitString out;
  out.reserveBits(text.size());
  for (char c : text) {
    if (c != '0' && c != '1') {
      throw std::invalid_argument("BitString::fromString: invalid char");
    }
    out.pushBack(c == '1');
  }
  return out;
}

BitString BitString::repeated(bool bitValue, std::size_t count) {
  BitString out;
  out.reserveBits(count);
  const std::size_t n = wordsFor(count);
  std::uint64_t* w = out.dataMut();
  std::fill_n(w, n, bitValue ? ~std::uint64_t{0} : std::uint64_t{0});
  if (bitValue && count % kWordBits != 0) {
    w[n - 1] &= (std::uint64_t{1} << (count % kWordBits)) - 1;
  }
  out.size_ = count;
  return out;
}

void BitString::grow(std::size_t wantWords) {
  const std::size_t newCap = std::max(wantWords, std::size_t{capWords_} * 2);
  auto* p = new std::uint64_t[newCap];
  std::memcpy(p, data(), wordCount() * sizeof(std::uint64_t));
  releaseHeap();
  rep_.heap = p;
  capWords_ = static_cast<std::uint32_t>(newCap);
}

void BitString::initFrom(const BitString& other) {
  const std::size_t n = other.wordCount();
  if (n > kInlineWords) {
    rep_.heap = new std::uint64_t[n];
    capWords_ = static_cast<std::uint32_t>(n);
  }
  std::memcpy(dataMut(), other.data(), n * sizeof(std::uint64_t));
  size_ = other.size_;
  hash_ = other.hash_;
  hashKnown_ = other.hashKnown_;
}

void BitString::assignFrom(const BitString& other) {
  const std::size_t n = other.wordCount();
  if (n > capWords_) grow(n);
  std::memcpy(dataMut(), other.data(), n * sizeof(std::uint64_t));
  size_ = other.size_;
  hash_ = other.hash_;
  hashKnown_ = other.hashKnown_;
}

void BitString::stealFrom(BitString& other) noexcept {
  rep_ = other.rep_;
  capWords_ = other.capWords_;
  size_ = other.size_;
  hash_ = other.hash_;
  hashKnown_ = other.hashKnown_;
  other.capWords_ = kInlineWords;
  other.size_ = 0;
  other.hashKnown_ = false;
}

BitString BitString::withBack(bool b) const {
  BitString out = *this;
  out.pushBack(b);
  return out;
}

BitString BitString::prefix(std::size_t n) const {
  assert(n <= size_);
  BitString out;
  out.reserveBits(n);
  const std::size_t nw = wordsFor(n);
  std::memcpy(out.dataMut(), data(), nw * sizeof(std::uint64_t));
  if (n % kWordBits != 0) {
    out.dataMut()[nw - 1] &= (std::uint64_t{1} << (n % kWordBits)) - 1;
  }
  out.size_ = n;
  return out;
}

bool BitString::isPrefixOf(const BitString& other) const noexcept {
  return size_ <= other.size_ && commonPrefixLength(other) == size_;
}

std::size_t BitString::commonPrefixLength(
    const BitString& other) const noexcept {
  const std::size_t limit = std::min(size_, other.size_);
  const std::uint64_t* a = data();
  const std::uint64_t* b = other.data();
  const std::size_t nw = wordsFor(limit);
  for (std::size_t w = 0; w < nw; ++w) {
    const std::uint64_t x = a[w] ^ b[w];
    if (x != 0) {
      return std::min(
          limit, w * kWordBits + static_cast<std::size_t>(std::countr_zero(x)));
    }
  }
  return limit;
}

BitString BitString::sibling() const {
  assert(size_ > 0);
  BitString out = *this;
  out.flipBack();
  return out;
}

void BitString::appendBits(const BitString& tail) {
  if (&tail == this) {
    const BitString copy = tail;
    appendBits(copy);
    return;
  }
  if (tail.size_ == 0) return;
  const std::size_t base = size_ / kWordBits;
  const std::size_t off = size_ % kWordBits;
  const std::size_t tw = tail.wordCount();
  // The shifted merge below may touch one word past the final wordCount;
  // that word stays within capacity and beyond-size words are unspecified.
  if (capWords_ < base + tw + 1) grow(base + tw + 1);
  std::uint64_t* dst = dataMut() + base;
  const std::uint64_t* src = tail.data();
  if (off == 0) {
    std::memcpy(dst, src, tw * sizeof(std::uint64_t));
  } else {
    for (std::size_t w = 0; w < tw; ++w) {
      // dst[w] was either live (w == 0, tail bits beyond size_ are zero)
      // or assigned by the previous iteration's carry — OR is exact.
      dst[w] |= src[w] << off;
      dst[w + 1] = src[w] >> (kWordBits - off);
    }
  }
  size_ += tail.size_;
  hashKnown_ = false;
}

void BitString::appendWordBits(std::uint64_t word, std::size_t count) {
  assert(count <= kWordBits);
  if (count == 0) return;
  if (count < kWordBits) word &= (std::uint64_t{1} << count) - 1;
  reserveBits(size_ + count);
  const std::size_t base = size_ / kWordBits;
  const std::size_t off = size_ % kWordBits;
  std::uint64_t* dst = dataMut();
  if (off == 0) {
    dst[base] = word;
  } else {
    dst[base] |= word << off;
    if (off + count > kWordBits) dst[base + 1] = word >> (kWordBits - off);
  }
  size_ += count;
  hashKnown_ = false;
}

std::string BitString::toString() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(bit(i) ? '1' : '0');
  return out;
}

std::uint64_t BitString::computeHash() const noexcept {
  // FNV-1a over the length then the packed words, byte by byte — the
  // exact pre-SBO algorithm, so persisted/derived key material matches.
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix(size_);
  const std::uint64_t* w = data();
  const std::size_t n = wordCount();
  for (std::size_t i = 0; i < n; ++i) mix(w[i]);
  hash_ = h;
  hashKnown_ = true;
  return h;
}

std::strong_ordering BitString::operator<=>(
    const BitString& other) const noexcept {
  const std::size_t limit = std::min(size_, other.size_);
  const std::size_t cpl = commonPrefixLength(other);
  if (cpl < limit) {
    return bit(cpl) ? std::strong_ordering::greater
                    : std::strong_ordering::less;
  }
  return size_ <=> other.size_;
}

}  // namespace mlight::common
