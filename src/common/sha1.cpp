#include "common/sha1.h"

#include <bit>
#include <cstring>

namespace mlight::common {

namespace {

constexpr std::uint32_t rotl(std::uint32_t v, int s) noexcept {
  return std::rotl(v, s);
}

}  // namespace

void Sha1::reset() noexcept {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  totalBytes_ = 0;
  bufferLen_ = 0;
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
  totalBytes_ += data.size();
  std::size_t offset = 0;
  if (bufferLen_ != 0) {
    const std::size_t take = std::min(data.size(), 64 - bufferLen_);
    std::memcpy(buffer_.data() + bufferLen_, data.data(), take);
    bufferLen_ += take;
    offset += take;
    if (bufferLen_ == 64) {
      processBlock(buffer_.data());
      bufferLen_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    processBlock(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    bufferLen_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, bufferLen_);
  }
}

void Sha1::update(std::string_view text) noexcept {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Sha1Digest Sha1::finish() noexcept {
  // Length is latched before padding; update() below keeps adjusting
  // totalBytes_ but that no longer matters.  The 0x80 marker, the zero
  // run, and the 8-byte big-endian bit length are assembled into one
  // buffer so padding costs one or two block transforms, not a 1-byte
  // update() call per padding byte.
  const std::uint64_t bitLen = totalBytes_ * 8;
  std::array<std::uint8_t, 128> pad{};
  pad[0] = 0x80;
  const std::size_t padLen =
      (bufferLen_ < 56 ? 56 - bufferLen_ : 120 - bufferLen_);
  for (int i = 0; i < 8; ++i) {
    pad[padLen + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bitLen >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(pad.data(), padLen + 8));

  Sha1Digest digest{};
  for (std::size_t i = 0; i < 5; ++i) {
    digest[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

void Sha1::processBlock(const std::uint8_t* block) noexcept {
  std::array<std::uint32_t, 80> w{};
  for (std::size_t t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (std::size_t t = 16; t < 80; ++t) {
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];

  for (std::size_t t = 0; t < 80; ++t) {
    std::uint32_t f;
    std::uint32_t k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

Sha1Digest sha1(std::span<const std::uint8_t> data) noexcept {
  Sha1 h;
  h.update(data);
  return h.finish();
}

Sha1Digest sha1(std::string_view text) noexcept {
  Sha1 h;
  h.update(text);
  return h.finish();
}

std::string toHex(const Sha1Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0x0f]);
  }
  return out;
}

std::uint64_t digestPrefix64(const Sha1Digest& digest) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | digest[i];
  return v;
}

}  // namespace mlight::common
