// Points and axis-aligned rectangles in the unit hypercube [0,1]^m.
//
// m-LIGHT assumes every data key is an m-dimensional vector with each
// coordinate in [0,1] (paper §3.1).  The kd-tree always halves a region
// exactly in the middle of one dimension ("space partitioning"), so regions
// are representable as dyadic boxes; we keep plain doubles for generality
// and because query rectangles are arbitrary.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace mlight::common {

/// Maximum dimensionality supported.  The paper's evaluation is 2-D; the
/// algorithms generalize, and tests exercise up to 4 dimensions.
inline constexpr std::size_t kMaxDims = 8;

/// An m-dimensional point.  Fixed capacity avoids per-point allocations on
/// hot paths; `dims` gives the live dimensionality.
class Point {
 public:
  Point() = default;

  explicit Point(std::size_t dims) : dims_(dims) {
    assert(dims >= 1 && dims <= kMaxDims);
  }

  Point(std::initializer_list<double> coords) : dims_(coords.size()) {
    assert(dims_ >= 1 && dims_ <= kMaxDims);
    std::size_t i = 0;
    for (double c : coords) coords_[i++] = c;
  }

  std::size_t dims() const noexcept { return dims_; }

  double operator[](std::size_t i) const noexcept {
    assert(i < dims_);
    return coords_[i];
  }
  double& operator[](std::size_t i) noexcept {
    assert(i < dims_);
    return coords_[i];
  }

  friend bool operator==(const Point& a, const Point& b) noexcept {
    if (a.dims_ != b.dims_) return false;
    for (std::size_t i = 0; i < a.dims_; ++i) {
      if (a.coords_[i] != b.coords_[i]) return false;
    }
    return true;
  }

  std::string toString() const;

 private:
  std::array<double, kMaxDims> coords_{};
  std::size_t dims_ = 0;
};

/// Axis-aligned box [lo, hi).  The half-open convention matches binary
/// space partitioning: halving [0,1) at 0.5 yields [0,0.5) and [0.5,1),
/// which tile the space with no point belonging to two cells.  The global
/// domain treats coordinate 1.0 as belonging to the upper cell chain; data
/// generators produce values in [0,1).
class Rect {
 public:
  Rect() = default;

  Rect(Point lo, Point hi) : lo_(lo), hi_(hi) {
    assert(lo.dims() == hi.dims());
  }

  /// The unit hypercube [0,1)^m.
  static Rect unit(std::size_t dims);

  std::size_t dims() const noexcept { return lo_.dims(); }
  const Point& lo() const noexcept { return lo_; }
  const Point& hi() const noexcept { return hi_; }
  Point& lo() noexcept { return lo_; }
  Point& hi() noexcept { return hi_; }

  bool contains(const Point& p) const noexcept;

  /// True iff `other` is fully inside *this.
  bool containsRect(const Rect& other) const noexcept;

  bool intersects(const Rect& other) const noexcept;

  /// Intersection box; empty() if they do not overlap.
  Rect intersection(const Rect& other) const noexcept;

  /// True iff some dimension has hi <= lo.
  bool empty() const noexcept;

  /// Product of side lengths (0 for empty boxes).
  double volume() const noexcept;

  /// Splits *this in the middle of dimension `dim`; returns the lower half
  /// if `upper` is false, else the upper half.
  Rect halved(std::size_t dim, bool upper) const noexcept;

  /// Midpoint of dimension `dim`.
  double mid(std::size_t dim) const noexcept {
    return 0.5 * (lo_[dim] + hi_[dim]);
  }

  friend bool operator==(const Rect& a, const Rect& b) noexcept {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

  std::string toString() const;

 private:
  Point lo_;
  Point hi_;
};

}  // namespace mlight::common
