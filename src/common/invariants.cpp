#include "common/invariants.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string_view>
#include <vector>

namespace mlight::common {

namespace {

std::atomic<std::uint64_t> g_run{0};
std::atomic<std::uint64_t> g_passed{0};
std::atomic<std::uint64_t> g_failed{0};
std::atomic<std::uint64_t> g_skipped{0};

constexpr int kLevelUnset = -1;
std::atomic<int> g_override{kLevelUnset};

AuditLevel parseLevel(std::string_view text) noexcept {
  if (text == "off" || text == "0") return AuditLevel::kOff;
  if (text == "paranoid" || text == "2") return AuditLevel::kParanoid;
  // "boundaries", "1", and anything unrecognized fall back to the
  // default: silently disabling audits on a typo would be the worst
  // failure mode for a correctness knob.
  return AuditLevel::kBoundaries;
}

AuditLevel envLevel() noexcept {
  static const AuditLevel level = [] {
    const char* env = std::getenv("MLIGHT_AUDIT_LEVEL");
    return env == nullptr ? AuditLevel::kBoundaries : parseLevel(env);
  }();
  return level;
}

}  // namespace

AuditLevel auditLevel() noexcept {
  const int forced = g_override.load(std::memory_order_relaxed);
  return forced == kLevelUnset ? envLevel() : static_cast<AuditLevel>(forced);
}

void setAuditLevel(AuditLevel level) noexcept {
  g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* auditLevelName(AuditLevel level) noexcept {
  switch (level) {
    case AuditLevel::kOff:
      return "off";
    case AuditLevel::kBoundaries:
      return "boundaries";
    case AuditLevel::kParanoid:
      return "paranoid";
  }
  return "unknown";
}

AuditCounters auditCounters() noexcept {
  AuditCounters c;
  c.run = g_run.load(std::memory_order_relaxed);
  c.passed = g_passed.load(std::memory_order_relaxed);
  c.failed = g_failed.load(std::memory_order_relaxed);
  c.skipped = g_skipped.load(std::memory_order_relaxed);
  return c;
}

void resetAuditCounters() noexcept {
  g_run.store(0, std::memory_order_relaxed);
  g_passed.store(0, std::memory_order_relaxed);
  g_failed.store(0, std::memory_order_relaxed);
  g_skipped.store(0, std::memory_order_relaxed);
}

bool auditEnabled(AuditLevel needed) noexcept {
  if (auditLevel() >= needed) return true;
  g_skipped.fetch_add(1, std::memory_order_relaxed);
  return false;
}

namespace detail {

void beginAudit() noexcept { g_run.fetch_add(1, std::memory_order_relaxed); }

void passAudit() noexcept { g_passed.fetch_add(1, std::memory_order_relaxed); }

void failAudit(const char* audit, const std::string& what) {
  g_failed.fetch_add(1, std::memory_order_relaxed);
  throw AuditFailure(std::string(audit) + ": " + what);
}

}  // namespace detail

void auditNamingBijection(
    std::span<const std::pair<BitString, BitString>> leafToKey,
    std::size_t dims) {
  detail::beginAudit();
  std::vector<const BitString*> keys;
  keys.reserve(leafToKey.size());
  for (const auto& [leaf, key] : leafToKey) {
    if (key.size() < dims || key.size() >= leaf.size() ||
        !key.isPrefixOf(leaf)) {
      detail::failAudit("auditNamingBijection",
                        "key " + key.toString() +
                            " is not a proper prefix (length >= m) of leaf " +
                            leaf.toString());
    }
    keys.push_back(&key);
  }
  std::sort(keys.begin(), keys.end(),
            [](const BitString* a, const BitString* b) { return *a < *b; });
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (*keys[i - 1] == *keys[i]) {
      detail::failAudit("auditNamingBijection",
                        "two leaves share DHT key " + keys[i]->toString());
    }
  }
  detail::passAudit();
}

void auditSpaceTiling(std::span<const BitString> leaves,
                      std::size_t rootPrefixBits) {
  detail::beginAudit();
  std::vector<const BitString*> sorted;
  sorted.reserve(leaves.size());
  double volume = 0.0;
  for (const BitString& leaf : leaves) {
    if (leaf.size() < rootPrefixBits) {
      detail::failAudit("auditSpaceTiling",
                        "label " + leaf.toString() +
                            " shorter than the root prefix");
    }
    volume += std::ldexp(
        1.0, -static_cast<int>(leaf.size() - rootPrefixBits));
    sorted.push_back(&leaf);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const BitString* a, const BitString* b) { return *a < *b; });
  // In lexicographic order (prefixes first) any prefix relation shows up
  // between adjacent elements, so one linear scan proves prefix-freeness.
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i - 1]->isPrefixOf(*sorted[i])) {
      detail::failAudit("auditSpaceTiling",
                        "leaf " + sorted[i - 1]->toString() +
                            " overlaps leaf " + sorted[i]->toString() +
                            " (prefix)");
    }
  }
  if (std::abs(volume - 1.0) > 1e-9) {
    detail::failAudit("auditSpaceTiling",
                      "leaf volumes sum to " + std::to_string(volume) +
                          ", not 1 — leaves do not tile the space");
  }
  detail::passAudit();
}

void auditIncrementalSplit(const BitString& parent, const BitString& parentKey,
                           const BitString& childKeyA,
                           const BitString& childKeyB) {
  detail::beginAudit();
  const bool holds = (childKeyA == parentKey && childKeyB == parent) ||
                     (childKeyB == parentKey && childKeyA == parent);
  if (!holds) {
    detail::failAudit(
        "auditIncrementalSplit",
        "Theorem 5 violated at " + parent.toString() + ": child keys {" +
            childKeyA.toString() + ", " + childKeyB.toString() +
            "} != {parent key " + parentKey.toString() + ", parent label " +
            parent.toString() + "}");
  }
  detail::passAudit();
}

void auditIncrementalSplitPlan(const BitString& parentKey,
                               std::span<const BitString> leafKeys) {
  detail::beginAudit();
  std::size_t keepers = 0;
  std::vector<const BitString*> sorted;
  sorted.reserve(leafKeys.size());
  for (const BitString& key : leafKeys) {
    if (key == parentKey) ++keepers;
    sorted.push_back(&key);
  }
  if (keepers != 1) {
    detail::failAudit("auditIncrementalSplitPlan",
                      std::to_string(keepers) +
                          " plan leaves keep the old key " +
                          parentKey.toString() + " (want exactly 1)");
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const BitString* a, const BitString* b) { return *a < *b; });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (*sorted[i - 1] == *sorted[i]) {
      detail::failAudit("auditIncrementalSplitPlan",
                        "duplicate plan key " + sorted[i]->toString());
    }
  }
  detail::passAudit();
}

void auditLoadVariance(std::span<const std::size_t> loads, double epsilon) {
  detail::beginAudit();
  if (loads.size() > 1) {
    double splitCost = 0.0;
    double total = 0.0;
    for (const std::size_t load : loads) {
      const double l = static_cast<double>(load);
      splitCost += (l - epsilon) * (l - epsilon);
      total += l;
    }
    const double wholeCost = (total - epsilon) * (total - epsilon);
    // Strictly-better is the algorithm's rule; allow equality headroom
    // for floating-point accumulation order.
    if (splitCost > wholeCost + 1e-6) {
      detail::failAudit(
          "auditLoadVariance",
          "split plan cost " + std::to_string(splitCost) +
              " exceeds the unsplit cost " + std::to_string(wholeCost) +
              " for epsilon " + std::to_string(epsilon) +
              " — Theorem 6 minimality violated");
    }
  }
  detail::passAudit();
}

void auditReplicaHolders(std::span<const std::uint64_t> holders,
                         std::size_t replication) {
  detail::beginAudit();
  if (holders.empty()) {
    detail::failAudit("auditReplicaHolders", "bucket has no copy-holders");
  }
  if (holders.size() > replication) {
    detail::failAudit("auditReplicaHolders",
                      std::to_string(holders.size()) +
                          " copy-holders exceed replication factor " +
                          std::to_string(replication));
  }
  for (std::size_t i = 0; i < holders.size(); ++i) {
    for (std::size_t j = i + 1; j < holders.size(); ++j) {
      if (holders[i] == holders[j]) {
        detail::failAudit("auditReplicaHolders",
                          "copy-holders are not failure-independent: ring "
                          "position " +
                              std::to_string(holders[i]) + " holds two copies");
      }
    }
  }
  detail::passAudit();
}

void auditRingOrder(std::span<const std::uint64_t> ringPositions) {
  detail::beginAudit();
  for (std::size_t i = 1; i < ringPositions.size(); ++i) {
    if (ringPositions[i - 1] >= ringPositions[i]) {
      detail::failAudit(
          "auditRingOrder",
          "ring positions not strictly increasing at index " +
              std::to_string(i) + " (" + std::to_string(ringPositions[i - 1]) +
              " then " + std::to_string(ringPositions[i]) + ")");
    }
  }
  detail::passAudit();
}

void auditCacheCoherence(const BitString& cachedLeaf,
                         const BitString& uncachedLeaf) {
  detail::beginAudit();
  if (cachedLeaf != uncachedLeaf) {
    detail::failAudit("auditCacheCoherence",
                      "cached lookup resolved to leaf " +
                          cachedLeaf.toString() +
                          " but the uncached binary search finds " +
                          uncachedLeaf.toString());
  }
  detail::passAudit();
}

void auditLookupSearchBounds(std::size_t lo, std::size_t hi) {
  detail::beginAudit();
  if (lo > hi) {
    detail::failAudit("auditLookupSearchBounds",
                      "binary search lost the target: lo " +
                          std::to_string(lo) + " > hi " + std::to_string(hi));
  }
  detail::passAudit();
}

}  // namespace mlight::common
