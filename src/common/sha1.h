// SHA-1, implemented from scratch (FIPS 180-1).
//
// DHT node identifiers and key placement in Chord-style overlays are
// classically derived from SHA-1 digests.  We implement the full algorithm
// rather than pull in a crypto dependency: the repo has no external
// dependencies beyond gtest/benchmark, and DHT id distribution only needs a
// well-mixed deterministic digest, which SHA-1 provides.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace mlight::common {

using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1 hasher.  Typical use:
///   Sha1 h; h.update(bytes); Sha1Digest d = h.finish();
class Sha1 {
 public:
  Sha1() noexcept { reset(); }

  void reset() noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view text) noexcept;

  /// Finalizes and returns the 160-bit digest.  The hasher must be reset()
  /// before reuse.
  Sha1Digest finish() noexcept;

 private:
  void processBlock(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t totalBytes_ = 0;
  std::size_t bufferLen_ = 0;
};

/// One-shot digest of a byte span.
Sha1Digest sha1(std::span<const std::uint8_t> data) noexcept;

/// One-shot digest of text.
Sha1Digest sha1(std::string_view text) noexcept;

/// Lowercase hex rendering of a digest (40 chars).
std::string toHex(const Sha1Digest& digest);

/// First 8 bytes of the digest as a big-endian 64-bit integer.  Used to
/// place keys and nodes on the simulated ring.
std::uint64_t digestPrefix64(const Sha1Digest& digest) noexcept;

}  // namespace mlight::common
