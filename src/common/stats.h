// Streaming statistics used by the load-balance and query-cost experiments.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace mlight::common {

/// Welford's online mean/variance.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }

  /// Population variance (the paper reports variance of per-peer load over
  /// all peers, which is a population, not a sample).
  double variance() const noexcept {
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
  }

  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile over a materialized sample (nearest-rank).
inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto loIdx = static_cast<std::size_t>(rank);
  const std::size_t hiIdx = std::min(loIdx + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(loIdx);
  return values[loIdx] * (1.0 - frac) + values[hiIdx] * frac;
}

}  // namespace mlight::common
