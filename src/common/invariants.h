// Theorem-level invariant audits (structured contracts).
//
// m-LIGHT's correctness rests on structural theorems — the naming
// bijection (Thm 2/4), corner preservation (Thm 1/3), incremental split
// (Thm 5), and variance-minimizing data-aware splits (Thm 6); see
// docs/THEORY.md.  This module turns the ad-hoc MLIGHT_CHECK spot checks
// into named, counted audit functions shared by every index backend
// (mlight, pht, dst, rst) and the store/network layers, so refactors can
// be aggressive without silently breaking the tiling/bijection contracts.
//
// Layering: this lives in mlight_common, below the indexes, so audits are
// phrased over BitString labels, Rect regions, and raw ring positions.
// Callers pass precomputed naming-function values; the audits check the
// *relations* the theorems assert.
//
// Gating: audits always execute when called.  Call sites gate expensive
// audits on the runtime level (MLIGHT_AUDIT_LEVEL environment variable,
// overridable via setAuditLevel):
//   off        — no optional audits (O(1) theorem checks stay on);
//   boundaries — audit at structural boundaries: splits, merges, bulk
//                loads, replica placement, membership changes (default);
//   paranoid   — additionally re-audit the whole structure after every
//                mutating operation (tests, fuzzing, debugging).
// Counters make audits observable: tests assert both that audits ran and
// that corruption makes them fire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "common/bitstring.h"
#include "common/check.h"
#include "common/geometry.h"

namespace mlight::common {

enum class AuditLevel : int {
  kOff = 0,
  kBoundaries = 1,
  kParanoid = 2,
};

/// Audit violations derive from CheckFailure so existing catch sites
/// keep working; the what() string names the audit that fired.
class AuditFailure : public CheckFailure {
 public:
  using CheckFailure::CheckFailure;
};

/// Current level: the programmatic override if set, else the
/// MLIGHT_AUDIT_LEVEL environment variable ("off" | "boundaries" |
/// "paranoid", or 0/1/2), else kBoundaries.
AuditLevel auditLevel() noexcept;

/// Programmatic override (tests, benchmarks); wins over the environment.
void setAuditLevel(AuditLevel level) noexcept;

const char* auditLevelName(AuditLevel level) noexcept;

/// Observability: how many audits executed, passed, failed, and how many
/// call sites were skipped because the level was below their threshold.
struct AuditCounters {
  std::uint64_t run = 0;
  std::uint64_t passed = 0;
  std::uint64_t failed = 0;
  std::uint64_t skipped = 0;
};

/// Snapshot of the process-wide counters.
AuditCounters auditCounters() noexcept;
void resetAuditCounters() noexcept;

/// Gate helper for call sites: true iff the current level enables audits
/// of the given threshold.  Counts a skip when disabled so coverage holes
/// are visible in the counters.
bool auditEnabled(AuditLevel needed) noexcept;

namespace detail {
/// Counter bookkeeping shared by every audit function: constructed on
/// entry (counts `run`), `pass()` on success; a failure path calls
/// `fail()` (counts `failed`) and throws AuditFailure.
void beginAudit() noexcept;
void passAudit() noexcept;
[[noreturn]] void failAudit(const char* audit, const std::string& detail);
}  // namespace detail

// --- Theorem 2/4: the naming function is a bijection ---------------------
//
// `leafToKey` holds (leaf label λ, DHT key f_md(λ)) for every bucket.
// Checks: every key is a proper prefix of its leaf of length >= dims
// (F1 in docs/THEORY.md) and keys are pairwise distinct (injectivity;
// onto follows by counting, |leaves| == |internal nodes incl. virtual
// root| in a full binary tree).  O(n log n).
void auditNamingBijection(
    std::span<const std::pair<BitString, BitString>> leafToKey,
    std::size_t dims);

// --- Theorem 1/3 corollary: leaves tile the space ------------------------
//
// `leaves` are tree-node labels whose cells must partition the data
// space: pairwise prefix-free and total volume 1, where a label at edge
// depth d (= size() - rootPrefixBits) covers volume 2^-d.  Pass
// rootPrefixBits = dims + 1 for m-LIGHT labels (virtual-root prefix + #),
// 0 for plain trie/SFC paths (PHT).  O(n log n).
void auditSpaceTiling(std::span<const BitString> leaves,
                      std::size_t rootPrefixBits);

// --- Theorem 5: incremental split / merge ------------------------------
//
// Splitting leaf λ stored under key k = f_md(λ) yields children whose
// keys are exactly {k, λ}: one child keeps the parent's DHT key (no
// transfer), the other is re-assigned to λ.  The same relation read
// backwards governs merges.  `childKeyA/B` are the precomputed names of
// the two children (order irrelevant).  O(1).
void auditIncrementalSplit(const BitString& parent, const BitString& parentKey,
                           const BitString& childKeyA,
                           const BitString& childKeyB);

// Generalization to whole split subtrees (data-aware adjustment, §4.2):
// of the plan's leaf keys exactly one equals the parent's old key, and
// all keys are pairwise distinct.  O(n log n).
void auditIncrementalSplitPlan(const BitString& parentKey,
                               std::span<const BitString> leafKeys);

// --- Theorem 6: variance-minimizing data-aware split ---------------------
//
// A split plan targeting expected load ε is only taken when it lowers
// Σ (load − ε)²; in particular any multi-leaf plan must cost no more
// than leaving the bucket whole: Σ (lᵢ − ε)² <= (Σ lᵢ − ε)².  O(n).
void auditLoadVariance(std::span<const std::size_t> loads, double epsilon);

// --- Record placement (all four indexes) ---------------------------------
//
// Every record key must lie inside its bucket's region/cell/segment.
// Templated so index layers can pass their own record ranges without a
// copy (this header cannot see index::Record).
template <typename Records, typename KeyOf>
void auditRecordPlacement(const Rect& region, const Records& records,
                          KeyOf keyOf) {
  detail::beginAudit();
  std::size_t i = 0;
  for (const auto& r : records) {
    if (!region.contains(keyOf(r))) {
      detail::failAudit("auditRecordPlacement",
                        "record " + std::to_string(i) + " at " +
                            keyOf(r).toString() + " outside its bucket " +
                            region.toString());
    }
    ++i;
  }
  detail::passAudit();
}

// --- Store layer: replica placement --------------------------------------
//
// Copy-holders of one bucket must be pairwise distinct (failure
// independence) and never exceed the replication factor; pass RingId
// values.  O(n²) over a handful of holders.
void auditReplicaHolders(std::span<const std::uint64_t> holders,
                         std::size_t replication);

// --- Network layer: ring soundness ---------------------------------------
//
// Ring positions must be strictly increasing (sorted, duplicate-free):
// the predecessor mapping and finger construction assume it.  O(n).
void auditRingOrder(std::span<const std::uint64_t> ringPositions);

// --- Lookup cache: hint coherence ----------------------------------------
//
// A cached lookup (direct hit or stale-hint repair) must resolve to the
// exact leaf the uncached §5 binary search would find — hints may only
// save probes, never change answers.  Call sites gate on kParanoid (the
// oracle search is a full extra walk per lookup).  O(1) given both
// labels.
void auditCacheCoherence(const BitString& cachedLeaf,
                         const BitString& uncachedLeaf);

// --- Lookup search: bound sanity -----------------------------------------
//
// The binary search over candidate edge depths maintains lo <= hi at
// every cut; losing the target means a probe's verdict contradicted the
// tree structure (or a hint repair mis-seeded the window).  Always-on
// O(1) — this replaces the old bare `assert`, so the guard survives
// release builds and reports through the audit counters.
void auditLookupSearchBounds(std::size_t lo, std::size_t hi);

}  // namespace mlight::common
