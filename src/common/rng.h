// Deterministic pseudo-random number generation.
//
// Every experiment in this repository must be reproducible bit-for-bit, so
// all randomness flows through this self-contained xoshiro256** generator
// (seeded via splitmix64) instead of std::mt19937 whose distributions are
// not portable across standard libraries.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace mlight::common {

/// xoshiro256** 1.0 by Blackman & Vigna, seeded with splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
    cachedGaussianValid_ = false;
  }

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept {
    auto rotl = [](std::uint64_t v, int s) {
      return (v << s) | (v >> (64 - s));
    };
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound).  Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift with rejection for unbiased results.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (cached pair).
  double gaussian() noexcept {
    if (cachedGaussianValid_) {
      cachedGaussianValid_ = false;
      return cachedGaussian_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cachedGaussian_ = r * std::sin(theta);
    cachedGaussianValid_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Bernoulli(p).
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  std::uint64_t state_[4]{};
  double cachedGaussian_ = 0.0;
  bool cachedGaussianValid_ = false;
};

}  // namespace mlight::common
