#include "common/zorder.h"

#include <array>
#include <cassert>

namespace mlight::common {

BitString interleave(const Point& p, std::size_t depth) {
  const std::size_t m = p.dims();
  assert(m >= 1);
  // Track the live interval of each dimension as we halve; numerically
  // identical to reading fractional bits but robust at cell boundaries.
  std::array<double, kMaxDims> lo{};
  std::array<double, kMaxDims> hi{};
  for (std::size_t i = 0; i < m; ++i) {
    lo[i] = 0.0;
    hi[i] = 1.0;
  }
  // Accumulate 64 decisions per word and flush via appendWordBits —
  // bit-for-bit the same string as per-bit pushBack, at a fraction of
  // the per-bit bookkeeping.  This is the innermost loop of every
  // insert (single and batched): each record interleaves its full path
  // before anything else happens.
  BitString out;
  out.reserveBits(depth);
  std::uint64_t word = 0;
  std::size_t filled = 0;
  for (std::size_t d = 0; d < depth; ++d) {
    const std::size_t dim = dimensionAtDepth(d, m);
    const double mid = 0.5 * (lo[dim] + hi[dim]);
    const bool upper = p[dim] >= mid;
    word |= static_cast<std::uint64_t>(upper) << filled;
    if (++filled == 64) {
      out.appendWordBits(word, 64);
      word = 0;
      filled = 0;
    }
    if (upper) {
      lo[dim] = mid;
    } else {
      hi[dim] = mid;
    }
  }
  if (filled != 0) out.appendWordBits(word, filled);
  return out;
}

Rect cellOfPath(const BitString& path, std::size_t dims) {
  Rect cell = Rect::unit(dims);
  for (std::size_t d = 0; d < path.size(); ++d) {
    cell = cell.halved(dimensionAtDepth(d, dims), path.bit(d));
  }
  return cell;
}

BitString lowestCoveringPath(const Rect& r, std::size_t dims,
                             std::size_t maxDepth) {
  BitString path;
  Rect cell = Rect::unit(dims);
  for (std::size_t d = 0; d < maxDepth; ++d) {
    const std::size_t dim = dimensionAtDepth(d, dims);
    const Rect lower = cell.halved(dim, false);
    const Rect upper = cell.halved(dim, true);
    if (lower.containsRect(r)) {
      path.pushBack(false);
      cell = lower;
    } else if (upper.containsRect(r)) {
      path.pushBack(true);
      cell = upper;
    } else {
      break;
    }
  }
  return path;
}

}  // namespace mlight::common
