// BitString: an arbitrary-length, value-semantic string of bits.
//
// Labels in m-LIGHT (and trie prefixes in PHT, quad-cell paths in DST) are
// binary strings whose length matters and whose tail is manipulated bit by
// bit (append a child edge, truncate during the naming function, invert the
// last bit to reach a sibling).  BitString packs bits into 64-bit words and
// supports exactly those operations, plus ordering/hashing so it can key
// standard containers, and a compact binary serialization.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mlight::common {

class BitString {
 public:
  BitString() = default;

  BitString(const BitString&) = default;
  BitString& operator=(const BitString&) = default;
  /// Moves leave the source empty (not merely "valid but unspecified"):
  /// labels are shuffled around aggressively during splits/merges and a
  /// half-moved state (words gone, size kept) would be a trap.
  BitString(BitString&& other) noexcept
      : words_(std::move(other.words_)), size_(other.size_) {
    other.size_ = 0;
    other.words_.clear();
  }
  BitString& operator=(BitString&& other) noexcept {
    words_ = std::move(other.words_);
    size_ = other.size_;
    other.size_ = 0;
    other.words_.clear();
    return *this;
  }

  /// Builds from a textual form such as "00101".  Characters other than
  /// '0'/'1' are rejected (throws std::invalid_argument).
  static BitString fromString(std::string_view text);

  /// A run of `count` copies of `bit`.
  static BitString repeated(bool bit, std::size_t count);

  /// Number of bits.
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Bit at position `i` (0-based from the front).  Precondition: i < size().
  bool bit(std::size_t i) const noexcept;

  /// Last bit.  Precondition: !empty().
  bool back() const noexcept { return bit(size_ - 1); }

  /// Appends one bit at the back.
  void pushBack(bool b);

  /// Removes the last bit.  Precondition: !empty().
  void popBack() noexcept;

  /// Sets bit `i`.  Precondition: i < size().
  void setBit(std::size_t i, bool b) noexcept;

  /// Returns *this with `b` appended (non-mutating convenience).
  BitString withBack(bool b) const;

  /// First `n` bits.  Precondition: n <= size().
  BitString prefix(std::size_t n) const;

  /// True iff *this is a (non-strict) prefix of `other`.
  bool isPrefixOf(const BitString& other) const noexcept;

  /// Returns a copy with the last bit inverted — the label of the sibling
  /// node in a binary tree.  Precondition: !empty().
  BitString sibling() const;

  /// Appends all bits of `tail` at the back.
  void append(const BitString& tail);

  /// Textual form, e.g. "00101".
  std::string toString() const;

  /// Packed little-endian words (tail bits beyond size() are zero).  Useful
  /// for hashing into DHT key space.
  const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  /// Stable 64-bit hash of the contents (FNV-1a over words and length).
  std::uint64_t hash64() const noexcept;

  friend bool operator==(const BitString& a, const BitString& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Lexicographic by bits; a proper prefix orders before its extensions.
  std::strong_ordering operator<=>(const BitString& other) const noexcept;

 private:
  static constexpr std::size_t kWordBits = 64;

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

struct BitStringHash {
  std::size_t operator()(const BitString& b) const noexcept {
    return static_cast<std::size_t>(b.hash64());
  }
};

}  // namespace mlight::common
