// BitString: an arbitrary-length, value-semantic string of bits.
//
// Labels in m-LIGHT (and trie prefixes in PHT, quad-cell paths in DST) are
// binary strings whose length matters and whose tail is manipulated bit by
// bit (append a child edge, truncate during the naming function, invert the
// last bit to reach a sibling).  BitString packs bits into 64-bit words and
// supports exactly those operations, plus ordering/hashing so it can key
// standard containers, and a compact binary serialization.
//
// Representation: small-buffer optimized.  Labels of up to kInlineBits
// (256) bits — deeper than any benchmark workload reaches (D = 28 paths
// over m <= 8 dimensions top out at 233 bits) — live entirely inside the
// object; only longer strings spill to a heap word array.  On the common
// path every copy, prefix, truncate and append is therefore
// allocation-free, which is what makes the §5 probe binary search and
// Algorithm 1 planning cheap on the host.  hash64() is memoized (labels key several hash tables per probe);
// every mutator invalidates the cache.
//
// Storage invariant: within the last occupied word, bits at positions
// >= size() are zero (so equality/hashing can compare whole words); words
// beyond wordCount() are unspecified and never read.
#pragma once

#include <bit>
#include <cassert>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

namespace mlight::common {

class BitString {
 public:
  /// Bits that fit without heap allocation.
  static constexpr std::size_t kInlineBits = 256;

  BitString() noexcept = default;

  BitString(const BitString& other) { initFrom(other); }
  BitString& operator=(const BitString& other) {
    if (this != &other) assignFrom(other);
    return *this;
  }

  /// Moves leave the source empty (not merely "valid but unspecified"):
  /// labels are shuffled around aggressively during splits/merges and a
  /// half-moved state (storage gone, size kept) would be a trap.
  BitString(BitString&& other) noexcept { stealFrom(other); }
  BitString& operator=(BitString&& other) noexcept {
    if (this != &other) {
      releaseHeap();
      stealFrom(other);
    }
    return *this;
  }

  ~BitString() { releaseHeap(); }

  /// Builds from a textual form such as "00101".  Characters other than
  /// '0'/'1' are rejected (throws std::invalid_argument).
  static BitString fromString(std::string_view text);

  /// A run of `count` copies of `bit`.
  static BitString repeated(bool bit, std::size_t count);

  /// Number of bits.
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Bit at position `i` (0-based from the front).  Precondition: i < size().
  bool bit(std::size_t i) const noexcept {
    assert(i < size_);
    return (data()[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  /// Last bit.  Precondition: !empty().
  bool back() const noexcept { return bit(size_ - 1); }

  /// Appends one bit at the back.
  void pushBack(bool b) {
    if (size_ == capacityBits()) grow(capWords_ * 2);
    std::uint64_t* w = dataMut() + size_ / kWordBits;
    const std::size_t off = size_ % kWordBits;
    if (off == 0) {
      // Entering a fresh word: overwrite it wholesale (storage beyond
      // wordCount() is unspecified, see the invariant above).
      *w = b ? 1u : 0u;
    } else if (b) {
      *w |= std::uint64_t{1} << off;
    }
    ++size_;
    hashKnown_ = false;
  }

  /// Removes the last bit.  Precondition: !empty().
  void popBack() noexcept {
    assert(size_ > 0);
    --size_;
    dataMut()[size_ / kWordBits] &=
        ~(std::uint64_t{1} << (size_ % kWordBits));
    hashKnown_ = false;
  }

  /// Sets bit `i`.  Precondition: i < size().
  void setBit(std::size_t i, bool b) noexcept {
    assert(i < size_);
    const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
    if (b) {
      dataMut()[i / kWordBits] |= mask;
    } else {
      dataMut()[i / kWordBits] &= ~mask;
    }
    hashKnown_ = false;
  }

  /// Inverts the last bit in place — moves to the sibling node of a
  /// binary tree without a copy.  Precondition: !empty().
  void flipBack() noexcept {
    assert(size_ > 0);
    dataMut()[(size_ - 1) / kWordBits] ^=
        std::uint64_t{1} << ((size_ - 1) % kWordBits);
    hashKnown_ = false;
  }

  /// Returns *this with `b` appended (non-mutating convenience).
  BitString withBack(bool b) const;

  /// First `n` bits.  Precondition: n <= size().
  BitString prefix(std::size_t n) const;

  /// In-place prefix: keeps the first `n` bits, drops the rest (the
  /// naming function's repeated popBack, in one masked step).
  /// Precondition: n <= size().
  void truncate(std::size_t n) noexcept {
    assert(n <= size_);
    size_ = n;
    if (n % kWordBits != 0) {
      dataMut()[n / kWordBits] &= (std::uint64_t{1} << (n % kWordBits)) - 1;
    }
    hashKnown_ = false;
  }

  /// The sibling of the length-`n` ancestor: prefix(n) with its last bit
  /// inverted, in one construction (range forwarding's branch labels).
  /// Precondition: 0 < n <= size().
  BitString prefixSibling(std::size_t n) const {
    BitString out = prefix(n);
    out.flipBack();
    return out;
  }

  /// True iff *this is a (non-strict) prefix of `other`.
  bool isPrefixOf(const BitString& other) const noexcept;

  /// Number of leading bits shared with `other` (word-parallel; at most
  /// min(size(), other.size())).
  std::size_t commonPrefixLength(const BitString& other) const noexcept;

  /// Returns a copy with the last bit inverted — the label of the sibling
  /// node in a binary tree.  Precondition: !empty().
  BitString sibling() const;

  /// Appends all bits of `tail` at the back, word-parallel.
  void appendBits(const BitString& tail);

  /// Alias for appendBits (historical name).
  void append(const BitString& tail) { appendBits(tail); }

  /// Appends the low `count` bits of `word` (count <= 64) — the serde
  /// decode path builds labels one wire word at a time.
  void appendWordBits(std::uint64_t word, std::size_t count);

  /// Pre-grows storage so subsequent appends up to `bits` total bits do
  /// not reallocate.
  void reserveBits(std::size_t bits) {
    if (bits > capacityBits()) grow((bits + kWordBits - 1) / kWordBits);
  }

  /// Textual form, e.g. "00101".
  std::string toString() const;

  /// Packed little-endian words (tail bits beyond size() are zero); the
  /// view covers exactly ceil(size()/64) words.  Useful for hashing into
  /// DHT key space.  Invalidated by any mutation of *this.
  std::span<const std::uint64_t> words() const noexcept {
    return {data(), wordCount()};
  }

  /// Stable 64-bit hash of the contents (FNV-1a over words and length).
  /// Memoized: repeated calls on an unmodified object are a load.
  std::uint64_t hash64() const noexcept {
    if (hashKnown_) return hash_;
    return computeHash();
  }

  friend bool operator==(const BitString& a, const BitString& b) noexcept {
    return a.size_ == b.size_ &&
           std::memcmp(a.data(), b.data(),
                       a.wordCount() * sizeof(std::uint64_t)) == 0;
  }

  /// Lexicographic by bits; a proper prefix orders before its extensions.
  std::strong_ordering operator<=>(const BitString& other) const noexcept;

 private:
  static constexpr std::size_t kWordBits = 64;
  static constexpr std::size_t kInlineWords = kInlineBits / kWordBits;

  union Rep {
    std::uint64_t inl[kInlineWords];
    std::uint64_t* heap;
  };

  bool isInline() const noexcept { return capWords_ == kInlineWords; }
  std::size_t capacityBits() const noexcept { return capWords_ * kWordBits; }
  std::size_t wordCount() const noexcept {
    return (size_ + kWordBits - 1) / kWordBits;
  }
  static std::size_t wordsFor(std::size_t bits) noexcept {
    return (bits + kWordBits - 1) / kWordBits;
  }

  const std::uint64_t* data() const noexcept {
    return isInline() ? rep_.inl : rep_.heap;
  }
  std::uint64_t* dataMut() noexcept {
    return isInline() ? rep_.inl : rep_.heap;
  }

  void grow(std::size_t wantWords);
  void releaseHeap() noexcept {
    if (!isInline()) delete[] rep_.heap;
  }

  /// Copy into a freshly constructed (or just-released) object.  Small
  /// sources land inline even when the source itself had spilled.
  void initFrom(const BitString& other);
  /// Copy into a live object, reusing existing heap capacity when it
  /// fits.
  void assignFrom(const BitString& other);
  /// Move guts out of `other`, leaving it empty (inline).
  void stealFrom(BitString& other) noexcept;

  std::uint64_t computeHash() const noexcept;

  Rep rep_{{0, 0}};
  std::uint32_t capWords_ = kInlineWords;  ///< == kInlineWords ⇒ inline
  std::size_t size_ = 0;                   ///< bits
  mutable std::uint64_t hash_ = 0;         ///< memoized hash64()
  mutable bool hashKnown_ = false;
};

struct BitStringHash {
  std::size_t operator()(const BitString& b) const noexcept {
    return static_cast<std::size_t>(b.hash64());
  }
};

}  // namespace mlight::common
