// Minimal binary serialization.
//
// Buckets and records cross the (simulated) network; data-movement cost in
// the paper is measured in shipped payload.  Serializing through a real
// byte format keeps the byte accounting honest and exercises the same
// code path a deployed over-DHT index would use.
//
// Format: little-endian fixed-width integers, IEEE doubles, length-prefixed
// strings and sequences.  Readers validate lengths and throw
// SerdeError on truncated or malformed input.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitstring.h"

namespace mlight::common {

class SerdeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only byte sink.
class Writer {
 public:
  Writer() = default;

  /// Adopts `reuse` as the backing store (cleared, capacity kept) so hot
  /// paths can serialize into a pooled buffer instead of allocating.
  explicit Writer(std::vector<std::uint8_t>&& reuse) noexcept
      : bytes_(std::move(reuse)) {
    bytes_.clear();
  }

  void writeU8(std::uint8_t v) { bytes_.push_back(v); }
  void writeU32(std::uint32_t v) { writeLe(v); }
  void writeU64(std::uint64_t v) { writeLe(v); }
  void writeDouble(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    writeU64(bits);
  }
  void writeString(std::string_view s) {
    writeU32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  /// Length-prefixed raw byte blob (nested payloads, e.g. RPC bodies).
  void writeBytes(std::span<const std::uint8_t> b) {
    writeU32(static_cast<std::uint32_t>(b.size()));
    bytes_.insert(bytes_.end(), b.begin(), b.end());
  }
  void writeBitString(const BitString& b) {
    writeU32(static_cast<std::uint32_t>(b.size()));
    for (std::uint64_t w : b.words()) writeU64(w);
  }

  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  std::size_t size() const noexcept { return bytes_.size(); }
  std::vector<std::uint8_t> take() && noexcept { return std::move(bytes_); }

 private:
  template <typename T>
  void writeLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

/// Sequential byte source over a borrowed buffer.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) noexcept
      : bytes_(bytes) {}

  std::uint8_t readU8() { return readLe<std::uint8_t>(); }
  std::uint32_t readU32() { return readLe<std::uint32_t>(); }
  std::uint64_t readU64() { return readLe<std::uint64_t>(); }
  double readDouble() {
    const std::uint64_t bits = readU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string readString() {
    const std::uint32_t n = readU32();
    require(n);
    std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return out;
  }
  std::vector<std::uint8_t> readBytes() {
    std::vector<std::uint8_t> out;
    readBytesInto(out);
    return out;
  }
  /// readBytes into a caller-owned (possibly pooled) buffer, reusing its
  /// capacity instead of allocating a fresh vector per message.
  void readBytesInto(std::vector<std::uint8_t>& out) {
    const std::uint32_t n = readU32();
    require(n);
    out.assign(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
               bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
  }
  BitString readBitString() {
    const std::uint32_t nbits = readU32();
    BitString out;
    out.reserveBits(nbits);
    for (std::size_t done = 0; done < nbits; done += 64) {
      out.appendWordBits(readU64(), std::min<std::size_t>(64, nbits - done));
    }
    return out;
  }

  bool atEnd() const noexcept { return pos_ == bytes_.size(); }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

  /// Validates an element count read from the wire against the bytes
  /// actually left (each element needs at least `minElementBytes`);
  /// prevents attacker-controlled counts from driving huge
  /// pre-allocations on corrupt input.
  std::uint32_t readCount(std::size_t minElementBytes) {
    const std::uint32_t n = readU32();
    if (minElementBytes != 0 &&
        static_cast<std::size_t>(n) > remaining() / minElementBytes) {
      throw SerdeError("serde: element count exceeds remaining bytes");
    }
    return n;
  }

 private:
  void require(std::size_t n) const {
    if (bytes_.size() - pos_ < n) {
      throw SerdeError("serde: truncated input");
    }
  }

  template <typename T>
  T readLe() {
    require(sizeof(T));
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(bytes_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace mlight::common
