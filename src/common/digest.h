// Order-insensitive-by-construction state digests for determinism checks.
//
// The determinism contract (docs/THEORY.md, "Determinism contract") is
// certified dynamically by re-running a workload under schedule
// perturbation (MLIGHT_SCHED_SHUFFLE_SEED) and comparing a digest of all
// simulation-visible state: index trees, stored buckets, replica
// placements, cost meters.  The digest itself must therefore never
// depend on container iteration order — every component that feeds a
// Digest walks its unordered containers through a *sorted snapshot*
// (see sortedKeys below), so two states are digest-equal iff they are
// logically equal.
//
// This is a cheap streaming FNV-1a over typed words, not a cryptographic
// hash: it fingerprints states for equality testing inside one build,
// nothing more.  For content-addressed keys use common/sha1.h.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/bitstring.h"

namespace mlight::common {

/// Streaming 64-bit FNV-1a accumulator with typed feeds.  Feed order is
/// part of the fingerprint, so callers feed fields in a fixed program
/// order and feed container elements in sorted key order.
class Digest {
 public:
  void feed(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      step(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void feed(std::uint32_t v) noexcept { feed(static_cast<std::uint64_t>(v)); }
  void feed(bool v) noexcept { feed(static_cast<std::uint64_t>(v ? 1 : 0)); }

  /// Doubles are fed by bit pattern: two states are digest-equal only
  /// when every simulated time/coordinate is bit-identical, which is
  /// exactly the replay contract.
  void feed(double v) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    feed(bits);
  }

  void feed(std::string_view s) noexcept {
    feed(s.size());
    for (const char c : s) step(static_cast<std::uint8_t>(c));
  }

  /// A label: length plus its packed words (tail bits are zeroed by
  /// BitString's invariant, so equal labels feed equal words).
  void feed(const BitString& b) noexcept {
    feed(b.size());
    for (const std::uint64_t w : b.words()) feed(w);
  }

  void feedBytes(const std::vector<std::uint8_t>& bytes) noexcept {
    feed(bytes.size());
    for (const std::uint8_t b : bytes) step(b);
  }

  std::uint64_t value() const noexcept { return state_; }

 private:
  void step(std::uint8_t byte) noexcept {
    state_ ^= byte;
    state_ *= 0x100000001B3ull;  // FNV-1a 64 prime
  }

  std::uint64_t state_ = 0xCBF29CE484222325ull;  // FNV-1a 64 offset basis
};

/// Sorted snapshot of an associative container's keys — the one sanctioned
/// way to walk an unordered container into anything order-sensitive
/// (digests, serde, logs, fan-out).  Centralizing the idiom keeps the
/// DET-ALLOW surface to this single audited loop.
template <typename Container>
std::vector<typename Container::key_type> sortedKeys(const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  // DET-ALLOW(key collection is order-insensitive; the sort below imposes
  // the canonical order before any consumer sees the keys)
  for (const auto& item : c) {
    if constexpr (requires { item.first; }) {
      keys.push_back(item.first);
    } else {
      keys.push_back(item);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace mlight::common
