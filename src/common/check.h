// Always-on invariant checks.
//
// The theorem-level invariants of m-LIGHT (naming bijection, incremental
// split, space tiling) are cheap relative to the operations that exercise
// them and guard distributed-state correctness, so they stay active in
// release builds; use plain assert() only on hot per-record paths.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace mlight::common {

class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  throw CheckFailure(std::string(file) + ":" + std::to_string(line) +
                     ": check failed: " + expr +
                     (msg.empty() ? "" : " — " + msg));
}

/// Out-of-line-ish failure path: materializes the message only after the
/// condition has already failed, so message construction never runs (and
/// never bloats the inlined fast path) on success.
template <typename MsgFn>
[[noreturn]] inline void checkFailedLazy(const char* expr, const char* file,
                                         int line, MsgFn&& msgFn) {
  checkFailed(expr, file, line, std::forward<MsgFn>(msgFn)());
}

}  // namespace mlight::common

// `msg` may be an arbitrary string-building expression; it is wrapped in
// a lambda invoked only on failure, so paranoid-level audits stay cheap
// on hot paths even when callers pass concatenations.
#define MLIGHT_CHECK(cond, msg)                                     \
  do {                                                              \
    if (!(cond)) [[unlikely]] {                                     \
      ::mlight::common::checkFailedLazy(                            \
          #cond, __FILE__, __LINE__,                                \
          [&]() -> ::std::string { return (msg); });                \
    }                                                               \
  } while (false)
