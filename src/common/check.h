// Always-on invariant checks.
//
// The theorem-level invariants of m-LIGHT (naming bijection, incremental
// split, space tiling) are cheap relative to the operations that exercise
// them and guard distributed-state correctness, so they stay active in
// release builds; use plain assert() only on hot per-record paths.
#pragma once

#include <stdexcept>
#include <string>

namespace mlight::common {

class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  throw CheckFailure(std::string(file) + ":" + std::to_string(line) +
                     ": check failed: " + expr +
                     (msg.empty() ? "" : " — " + msg));
}

}  // namespace mlight::common

#define MLIGHT_CHECK(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::mlight::common::checkFailed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                 \
  } while (false)
