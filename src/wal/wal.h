// Per-peer write-ahead log for the batched durable write path.
//
// Every bucket placement and batched record append *applied* at a peer is
// framed into that peer's log (append-on-apply), and the frame is marked
// committed exactly when the write is acknowledged to the client.  A
// crashed peer that rejoins replays its committed frames to restore the
// buckets the crash destroyed — turning "reads fail over" (PR 3) into
// "acked writes are durable" (docs/THEORY.md invariant table).
//
// The log is the byte image of the file a deployed peer would fsync:
// length-prefixed serde frames with an explicit commit mark, so a torn
// tail (crash mid-append) parses cleanly up to the last complete frame.
// In sim mode nothing touches the filesystem — the image lives in
// memory, but its *layout* (frame format and the per-peer file path,
// derived from the layout seed and the peer name alone) is deterministic,
// so replay is bit-identical across shard counts and shuffle seeds.
//
// Frame wire format (little-endian, common/serde):
//
//   u32 bodyLen | u8 commitMark | body
//   body = u64 lsn | u8 kind | bitstring key | bytes payload
//
// kPlace payload: the serialized bucket stored under `key` (a snapshot —
// it supersedes every earlier frame for the key).  kBatch payload: the
// records a batched insert appended to the bucket under `key`
// (u32 count + records).
//
// Modeled after reindexer's compact replicator/walrecord.h shape: one
// fixed header, one kind tag, typed payload, LSN-ordered scan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bitstring.h"
#include "common/digest.h"

namespace mlight::wal {

enum class FrameKind : std::uint8_t {
  kPlace = 1,  ///< full bucket image placed/replaced under a key
  kBatch = 2,  ///< records a batched insert appended under a key
};

/// One decoded log frame (scan output).
struct Frame {
  std::uint64_t lsn = 0;
  FrameKind kind = FrameKind::kPlace;
  bool committed = false;
  mlight::common::BitString key;       ///< DHT key of the target bucket
  std::vector<std::uint8_t> payload;   ///< kind-specific body
};

/// Append-only log of one physical peer.  The image survives the peer's
/// crash (it models the peer's local disk, not its memory), so the
/// rejoining peer finds it again by name through the owning WalSet.
class PeerWal {
 public:
  explicit PeerWal(std::string filePath) : filePath_(std::move(filePath)) {}

  /// Deterministic path of the simulated log file (metadata only — never
  /// opened in sim mode).
  const std::string& filePath() const noexcept { return filePath_; }

  /// Appends an *open* (uncommitted) frame; returns its LSN.  An open
  /// frame is durably parked but not yet acknowledged — replay skips it.
  std::uint64_t append(FrameKind kind, const mlight::common::BitString& key,
                       std::span<const std::uint8_t> payload);

  /// Flips the commit mark of the frame with the given LSN — the write
  /// is now acknowledged and must survive a crash of this peer.
  void commit(std::uint64_t lsn);

  /// append + commit in one step (synchronously acknowledged writes,
  /// e.g. bucket placements).
  std::uint64_t appendCommitted(FrameKind kind,
                                const mlight::common::BitString& key,
                                std::span<const std::uint8_t> payload) {
    const std::uint64_t lsn = append(kind, key, payload);
    commit(lsn);
    return lsn;
  }

  /// Parses the image from the start: every structurally complete frame
  /// in LSN order.  A torn tail (image cut mid-frame) ends the scan
  /// cleanly — exactly what a crashed-mid-append file would yield.
  std::vector<Frame> scan() const;

  /// scan() filtered to committed (acknowledged) frames — the replay
  /// input.
  std::vector<Frame> scanCommitted() const;

  /// Cuts the image to its first `bytes` bytes (test hook: injects the
  /// torn tail a crash mid-append leaves behind).
  void truncate(std::size_t bytes);

  std::size_t byteSize() const noexcept { return image_.size(); }
  std::size_t frameCount() const noexcept { return frames_.size(); }

  void digestState(mlight::common::Digest& d) const {
    d.feed(std::string_view(filePath_));
    d.feed(nextLsn_);
    d.feedBytes(image_);
  }

 private:
  std::string filePath_;
  std::uint64_t nextLsn_ = 1;
  /// The simulated file content — authoritative; scan() re-parses it.
  std::vector<std::uint8_t> image_;
  /// (lsn, image offset of the frame's length prefix) per appended
  /// frame, for O(log n) commit-mark flips.
  std::vector<std::pair<std::uint64_t, std::size_t>> frames_;
};

/// The per-physical-peer log set, keyed by peer *name*: names are stable
/// across crash/rejoin (a restarting peer mounts the same disk), unlike
/// ring positions or physical indices.
class WalSet {
 public:
  /// `dir` roots the simulated file layout; `layoutSeed` namespaces it
  /// (one deterministic directory per seeded run).
  WalSet(std::string dir, std::uint64_t layoutSeed)
      : dir_(std::move(dir)), layoutSeed_(layoutSeed) {}

  /// Pure function of (dir, seed, name): where this peer's log file
  /// would live on a real disk.
  std::string filePathFor(std::string_view peerName) const;

  /// The peer's log, created empty on first use.
  PeerWal& forPeer(std::string_view peerName);

  /// The peer's log if it has one (no creation) — the replay entry point.
  const PeerWal* findPeer(std::string_view peerName) const;

  std::size_t peerCount() const noexcept { return logs_.size(); }
  std::size_t totalFrames() const noexcept;
  std::size_t totalBytes() const noexcept;

  /// Feeds every log in sorted peer-name order (determinism contract).
  void digestState(mlight::common::Digest& d) const;

 private:
  std::string dir_;
  std::uint64_t layoutSeed_ = 0;
  std::map<std::string, PeerWal, std::less<>> logs_;
};

}  // namespace mlight::wal
