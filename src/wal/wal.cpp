#include "wal/wal.h"

#include <algorithm>

#include "common/check.h"
#include "common/serde.h"

namespace mlight::wal {
namespace {

// Offset of the commit mark inside a frame, relative to the frame's
// length prefix.
constexpr std::size_t kCommitMarkOffset = 4;
// Length prefix + commit mark.
constexpr std::size_t kFrameHeaderBytes = 5;

void appendU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xffU));
  out.push_back(static_cast<std::uint8_t>((v >> 8U) & 0xffU));
  out.push_back(static_cast<std::uint8_t>((v >> 16U) & 0xffU));
  out.push_back(static_cast<std::uint8_t>((v >> 24U) & 0xffU));
}

std::uint32_t readU32At(const std::vector<std::uint8_t>& in, std::size_t at) {
  return static_cast<std::uint32_t>(in[at]) |
         (static_cast<std::uint32_t>(in[at + 1]) << 8U) |
         (static_cast<std::uint32_t>(in[at + 2]) << 16U) |
         (static_cast<std::uint32_t>(in[at + 3]) << 24U);
}

}  // namespace

std::uint64_t PeerWal::append(FrameKind kind,
                              const mlight::common::BitString& key,
                              std::span<const std::uint8_t> payload) {
  const std::uint64_t lsn = nextLsn_++;

  mlight::common::Writer body;
  body.writeU64(lsn);
  body.writeU8(static_cast<std::uint8_t>(kind));
  body.writeBitString(key);
  body.writeBytes(payload);
  const std::vector<std::uint8_t> bodyBytes = std::move(body).take();

  const std::size_t frameStart = image_.size();
  appendU32(image_, static_cast<std::uint32_t>(bodyBytes.size()));
  image_.push_back(0);  // commit mark: open
  image_.insert(image_.end(), bodyBytes.begin(), bodyBytes.end());
  frames_.emplace_back(lsn, frameStart);
  return lsn;
}

void PeerWal::commit(std::uint64_t lsn) {
  // frames_ is appended in strictly increasing LSN order.
  const auto it = std::lower_bound(
      frames_.begin(), frames_.end(), lsn,
      [](const auto& entry, std::uint64_t want) { return entry.first < want; });
  MLIGHT_CHECK(it != frames_.end() && it->first == lsn,
               "PeerWal::commit: unknown LSN");
  image_[it->second + kCommitMarkOffset] = 1;
}

std::vector<Frame> PeerWal::scan() const {
  std::vector<Frame> out;
  std::size_t at = 0;
  while (image_.size() - at >= kFrameHeaderBytes) {
    const std::uint32_t bodyLen = readU32At(image_, at);
    if (image_.size() - at - kFrameHeaderBytes < bodyLen) break;  // torn tail
    const std::uint8_t mark = image_[at + kCommitMarkOffset];
    mlight::common::Reader body(
        std::span<const std::uint8_t>(image_.data() + at + kFrameHeaderBytes,
                                      bodyLen));
    Frame f;
    try {
      f.lsn = body.readU64();
      const std::uint8_t kind = body.readU8();
      if (kind != static_cast<std::uint8_t>(FrameKind::kPlace) &&
          kind != static_cast<std::uint8_t>(FrameKind::kBatch)) {
        break;  // corrupt tail — stop cleanly, keep the valid prefix
      }
      f.kind = static_cast<FrameKind>(kind);
      f.key = body.readBitString();
      f.payload = body.readBytes();
    } catch (const mlight::common::SerdeError&) {
      break;  // truncated/corrupt body — same clean stop
    }
    f.committed = mark != 0;
    out.push_back(std::move(f));
    at += kFrameHeaderBytes + bodyLen;
  }
  return out;
}

std::vector<Frame> PeerWal::scanCommitted() const {
  std::vector<Frame> all = scan();
  std::vector<Frame> out;
  out.reserve(all.size());
  for (Frame& f : all) {
    if (f.committed) out.push_back(std::move(f));
  }
  return out;
}

void PeerWal::truncate(std::size_t bytes) {
  if (bytes >= image_.size()) return;
  image_.resize(bytes);
  // Drop index entries for frames the cut removed or tore: a frame
  // survives only if its header AND body still fit in the image.
  std::erase_if(frames_, [&](const auto& entry) {
    const std::size_t off = entry.second;
    if (image_.size() - off < kFrameHeaderBytes) return true;
    return image_.size() - off - kFrameHeaderBytes < readU32At(image_, off);
  });
}

std::string WalSet::filePathFor(std::string_view peerName) const {
  // <dir>/<seed as 16 hex digits>/<sanitized peer name>.wal — a pure
  // function of constructor arguments and the name, so the layout is
  // identical across shard counts, shuffle seeds, and re-runs.
  static constexpr char kHex[] = "0123456789abcdef";
  std::string path = dir_;
  path += '/';
  for (int shift = 60; shift >= 0; shift -= 4) {
    path += kHex[(layoutSeed_ >> static_cast<unsigned>(shift)) & 0xfU];
  }
  path += '/';
  for (const char c : peerName) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    path += safe ? c : '_';
  }
  path += ".wal";
  return path;
}

PeerWal& WalSet::forPeer(std::string_view peerName) {
  const auto it = logs_.find(peerName);
  if (it != logs_.end()) return it->second;
  return logs_.emplace(std::string(peerName), PeerWal(filePathFor(peerName)))
      .first->second;
}

const PeerWal* WalSet::findPeer(std::string_view peerName) const {
  const auto it = logs_.find(peerName);
  return it == logs_.end() ? nullptr : &it->second;
}

std::size_t WalSet::totalFrames() const noexcept {
  std::size_t n = 0;
  for (const auto& [name, log] : logs_) n += log.frameCount();
  return n;
}

std::size_t WalSet::totalBytes() const noexcept {
  std::size_t n = 0;
  for (const auto& [name, log] : logs_) n += log.byteSize();
  return n;
}

void WalSet::digestState(mlight::common::Digest& d) const {
  d.feed(layoutSeed_);
  d.feed(logs_.size());
  for (const auto& [name, log] : logs_) {  // std::map: sorted by name
    d.feed(std::string_view(name));
    log.digestState(d);
  }
}

}  // namespace mlight::wal
