#include "dst/dst_index.h"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/invariants.h"
#include "common/zorder.h"

namespace mlight::dst {

namespace {

using mlight::common::cellOfPath;
using mlight::common::interleave;

void collectInRange(const DstNode& node, const mlight::common::Rect& range,
                    std::vector<mlight::index::Record>& out) {
  for (const auto& r : node.records) {
    if (range.contains(r.key)) out.push_back(r);
  }
}

}  // namespace

DstIndex::DstIndex(mlight::dht::Network& net, DstConfig config)
    : net_(&net),
      config_(std::move(config)),
      store_(net, config_.dhtNamespace),
      rng_(config_.seed) {
  if (config_.dims < 1 || config_.dims > mlight::common::kMaxDims) {
    throw std::invalid_argument("DstIndex: dims out of range");
  }
  if (config_.maxDepth % config_.dims != 0) {
    throw std::invalid_argument(
        "DstIndex: maxDepth must be a multiple of dims");
  }
  if (config_.gamma == 0) {
    throw std::invalid_argument("DstIndex: gamma must be positive");
  }
}

mlight::dht::RingId DstIndex::randomPeer() {
  const auto& peers = net_->peers();
  return peers[rng_.below(peers.size())];
}

void DstIndex::insert(const Record& record) {
  if (record.key.dims() != config_.dims) {
    throw std::invalid_argument("insert: wrong dimensionality");
  }
  const auto initiator = randomPeer();
  const Label path = interleave(record.key, config_.maxDepth);
  // Replicate at every ancestor (subject to saturation): one visit RPC
  // per level — the maintenance price of DST's O(1) queries.  The levels
  // form a continuation chain (each handler issues the next level one
  // round deeper); the saturation check runs at the owning peer, against
  // the owner's copy of the node.  `record` and `path` stay alive for
  // the whole chain: the continuations all run inside net_->run() below.
  insertAtLevel(record, initiator, path, 0, 1);
  net_->run();
  ++size_;
}

void DstIndex::insertAtLevel(const Record& record,
                             mlight::dht::RingId initiator, const Label& path,
                             std::size_t level, std::uint32_t round) {
  const Label label = path.prefix(level * config_.dims);
  store_.asyncVisit(
      initiator, label, round,
      [this, &record, &path, initiator, label, level](
          DstNode* node, const mlight::dht::RpcDelivery& d) {
        const bool isLeafLevel = (level == levels());
        if (node == nullptr) {
          DstNode fresh;
          fresh.label = label;
          fresh.records.push_back(record);
          net_->shipPayload(initiator, d.route.owner, record.byteSize(), 1);
          store_.placeLocal(label, std::move(fresh));
        } else if (isLeafLevel) {
          node->records.push_back(record);
          net_->shipPayload(initiator, d.route.owner, record.byteSize(), 1);
        } else if (node->complete) {
          if (node->records.size() >= config_.gamma) {
            // This record does not fit: the node's replica set is
            // no longer the full contents of its region.
            node->complete = false;
          } else {
            node->records.push_back(record);
            net_->shipPayload(initiator, d.route.owner, record.byteSize(), 1);
          }
        }  // else: saturated long ago; skip
        if (level < levels()) {
          insertAtLevel(record, initiator, path, level + 1, d.env.round + 1);
        }
      });
}

void DstIndex::probeRange(const Rect& clipped, const Label& label,
                          mlight::dht::RingId source, std::uint32_t round,
                          std::vector<Record>& out) {
  store_.asyncGet(
      source, label, round,
      [this, &clipped, &out, label](DstNode* node,
                                    const mlight::dht::RpcDelivery& d) {
        if (node == nullptr) return;  // empty region
        if (node->complete) {
          collectInRange(*node, clipped, out);
          return;
        }
        // Saturated: replica set incomplete, descend one level.  Child
        // cells derive from the node's cell by m halvings — the same
        // composition cellOfPath performs, at a fraction of the cost of
        // re-walking each child label.
        const Rect nodeCell = cellOfPath(label, config_.dims);
        const std::size_t fan = std::size_t{1} << config_.dims;
        for (std::size_t child = 0; child < fan; ++child) {
          Label childLabel = label;
          Rect childCell = nodeCell;
          for (std::size_t b = 0; b < config_.dims; ++b) {
            const bool bit = (child >> (config_.dims - 1 - b)) & 1u;
            childCell = childCell.halved(
                mlight::common::dimensionAtDepth(label.size() + b,
                                                 config_.dims),
                bit);
            childLabel.pushBack(bit);
          }
          if (childCell.intersects(clipped)) {
            probeRange(clipped, childLabel, d.route.owner, d.env.round + 1,
                       out);
          }
        }
      });
}

std::size_t DstIndex::erase(const Point& key, std::uint64_t id) {
  const auto initiator = randomPeer();
  const Label path = interleave(key, config_.maxDepth);
  std::size_t removedAtLeaf = 0;
  for (std::size_t level = 0; level <= levels(); ++level) {
    const Label label = path.prefix(level * config_.dims);
    const auto found = store_.routeAndFind(initiator, label);
    if (found.bucket == nullptr) continue;
    const auto before = found.bucket->records.size();
    std::erase_if(found.bucket->records, [&](const Record& r) {
      return r.id == id && r.key == key;
    });
    if (level == levels()) {
      removedAtLeaf = before - found.bucket->records.size();
    }
  }
  size_ -= removedAtLeaf;
  return removedAtLeaf;
}

mlight::index::PointResult DstIndex::pointQuery(const Point& key) {
  const double t0 = net_->beginTimeline();
  const std::size_t failedBefore = store_.failedReads();
  mlight::dht::CostMeter meter;
  mlight::dht::MeterScope scope(*net_, meter);
  mlight::index::PointResult out;
  // The leaf-level cell is computable locally and always complete: exact
  // match is a single DHT-lookup (DST's strength).
  const Label leaf = interleave(key, config_.maxDepth);
  const auto found = store_.routeAndFind(randomPeer(), leaf);
  if (found.bucket != nullptr) {
    for (const auto& r : found.bucket->records) {
      if (r.key == key) out.records.push_back(r);
    }
  }
  out.stats.cost = meter;
  out.stats.rounds = net_->timelineMaxRound();
  out.stats.latencyMs = net_->now() - t0;
  out.stats.failedProbes = store_.failedReads() - failedBefore;
  return out;
}

void DstIndex::decomposeInto(const Rect& range, const Label& node,
                             const Rect& cell, std::vector<Label>& out) const {
  // `cell` is cellOfPath(node, dims), threaded down the recursion so each
  // child costs m halvings instead of re-walking the whole label (the
  // halvings compose exactly as cellOfPath computes them, so the
  // geometry is bit-identical to the from-scratch walk).
  if (!cell.intersects(range)) return;
  if (range.containsRect(cell) || node.size() >= config_.maxDepth) {
    out.push_back(node);
    return;
  }
  // Enumerate the 2^m level-children of the node.
  const std::size_t fan = std::size_t{1} << config_.dims;
  for (std::size_t child = 0; child < fan; ++child) {
    Label childLabel = node;
    Rect childCell = cell;
    for (std::size_t b = 0; b < config_.dims; ++b) {
      const bool bit = (child >> (config_.dims - 1 - b)) & 1u;
      childCell = childCell.halved(
          mlight::common::dimensionAtDepth(node.size() + b, config_.dims),
          bit);
      childLabel.pushBack(bit);
    }
    decomposeInto(range, childLabel, childCell, out);
  }
}

std::vector<DstIndex::Label> DstIndex::decompose(const Rect& range) const {
  std::vector<Label> out;
  decomposeInto(range, Label{}, Rect::unit(config_.dims), out);
  return out;
}

mlight::index::RangeResult DstIndex::rangeQuery(const Rect& range) {
  mlight::index::RangeResult out;
  if (range.dims() != config_.dims) {
    throw std::invalid_argument("rangeQuery: wrong dimensionality");
  }
  const Rect clipped = range.intersection(Rect::unit(config_.dims));
  if (clipped.empty()) return out;

  const double t0 = net_->beginTimeline();
  const std::size_t failedBefore = store_.failedReads();
  mlight::dht::CostMeter meter;
  mlight::dht::MeterScope scope(*net_, meter);
  const auto initiator = randomPeer();

  // The canonical decomposition is computed locally (the tree is static),
  // then every canonical node is one parallel probe RPC away: O(1)
  // rounds unless saturation forces descents, which chain one round
  // deeper per level from the probed node's owner.  `clipped` and
  // `out.records` stay alive for the whole chain: the continuations all
  // run inside net_->run() below.
  for (Label& label : decompose(clipped)) {
    probeRange(clipped, label, initiator, 1, out.records);
  }

  net_->run();
  out.stats.cost = meter;
  out.stats.rounds = net_->timelineMaxRound();
  out.stats.latencyMs = net_->now() - t0;
  out.stats.failedProbes = store_.failedReads() - failedBefore;
  return out;
}

void DstIndex::checkInvariants() const {
  std::size_t leafRecords = 0;
  store_.forEach([&](const Label& key, const DstNode& n,
                     mlight::dht::RingId) {
    MLIGHT_CHECK(key == n.label, "node stored under wrong key");
    MLIGHT_CHECK(n.label.size() % config_.dims == 0, "off-level node");
    MLIGHT_CHECK(n.label.size() <= config_.maxDepth, "node too deep");
    mlight::common::auditRecordPlacement(
        cellOfPath(n.label, config_.dims), n.records,
        [](const Record& r) -> const Point& { return r.key; });
    if (n.label.size() == config_.maxDepth) {
      MLIGHT_CHECK(n.complete, "leaf-level node must be complete");
      leafRecords += n.records.size();
    } else if (n.complete) {
      MLIGHT_CHECK(n.records.size() <= config_.gamma,
                   "complete node above saturation cap");
    }
  });
  MLIGHT_CHECK(leafRecords == size_, "record count drift");
}

}  // namespace mlight::dst
