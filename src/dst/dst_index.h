// DST: Distributed Segment Tree baseline (Zheng et al., IPTPS'06 / MSR TR
// 2007; paper [5],[19]), in its multi-dimensional (quad-tree) form the
// m-LIGHT paper compares against.
//
// DST superimposes a *static* 2^m-ary tree of depth L = D/m over the data
// space; node labels are interleaved-bit prefixes of length m·ℓ.  To fill
// internal nodes with data, every record is replicated at ALL its
// ancestors, capped by a per-node saturation limit γ: once a node
// overflows γ it stops absorbing records (and is marked incomplete, so
// queries must descend below it).  Consequences the paper measures:
//
//  * maintenance costs an order of magnitude more than m-LIGHT/PHT
//    (one DHT-put per non-saturated ancestor per insert);
//  * small ranges resolve in O(1) rounds (each canonical cover node is
//    one DHT-lookup away);
//  * large ranges decompose into very many small subranges when the
//    static depth D exceeds the "real" tree depth, blowing up bandwidth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bitstring.h"
#include "common/digest.h"
#include "common/serde.h"
#include "common/geometry.h"
#include "common/rng.h"
#include "dht/network.h"
#include "index/index_base.h"
#include "store/distributed_store.h"

namespace mlight::dst {

struct DstConfig {
  std::size_t dims = 2;
  /// Static tree depth in interleaved bits; levels = maxDepth / dims.
  /// §7 uses D = 28 (14 quad levels in 2-D).
  std::size_t maxDepth = 28;
  /// Saturation cap γ per node (the paper couples it to θ_split).
  std::size_t gamma = 100;
  std::uint64_t seed = 44;
  std::string dhtNamespace = "dst/";
};

struct DstNode {
  mlight::common::BitString label;
  std::vector<mlight::index::Record> records;
  /// False once any record skipped this node because it was saturated;
  /// incomplete nodes cannot answer queries and force a descent.
  bool complete = true;

  std::size_t recordCount() const noexcept { return records.size(); }
  std::size_t byteSize() const noexcept {
    std::size_t bytes = 4 + 8 * ((label.size() + 63) / 64) + 1 + 4;
    for (const auto& r : records) bytes += r.byteSize();
    return bytes;
  }

  void serialize(mlight::common::Writer& w) const {
    w.writeBitString(label);
    w.writeU8(complete ? 1 : 0);
    w.writeU32(static_cast<std::uint32_t>(records.size()));
    for (const auto& r : records) r.serialize(w);
  }

  static DstNode deserialize(mlight::common::Reader& r) {
    DstNode n;
    n.label = r.readBitString();
    n.complete = r.readU8() != 0;
    const std::uint32_t count = r.readCount(16);
    n.records.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      n.records.push_back(mlight::index::Record::deserialize(r));
    }
    return n;
  }
};

class DstIndex final : public mlight::index::IndexBase {
 public:
  using Label = mlight::common::BitString;
  using Point = mlight::common::Point;
  using Rect = mlight::common::Rect;
  using Record = mlight::index::Record;

  DstIndex(mlight::dht::Network& net, DstConfig config);

  void insert(const Record& record) override;
  std::size_t erase(const Point& key, std::uint64_t id) override;
  mlight::index::RangeResult rangeQuery(const Rect& range) override;
  mlight::index::PointResult pointQuery(const Point& key) override;
  std::size_t size() const override { return size_; }

  std::size_t nodeCount() const noexcept { return store_.bucketCount(); }
  std::size_t levels() const noexcept { return config_.maxDepth / config_.dims; }
  void checkInvariants() const;

  /// The canonical decomposition of a range into maximal tree cells
  /// (computed locally; exposed for tests and the bandwidth analysis).
  std::vector<Label> decompose(const Rect& range) const;

  const mlight::store::DistributedStore<DstNode>& store() const noexcept {
    return store_;
  }

  /// Digest of every simulation-visible fact of this index (see
  /// MLightIndex::stateDigest; same contract).
  std::uint64_t stateDigest() const {
    mlight::common::Digest d;
    d.feed(size_);
    store_.digestState(d);
    return d.value();
  }

 private:
  mlight::dht::RingId randomPeer();
  void insertAtLevel(const Record& record, mlight::dht::RingId initiator,
                     const Label& path, std::size_t level,
                     std::uint32_t round);
  void probeRange(const Rect& clipped, const Label& label,
                  mlight::dht::RingId source, std::uint32_t round,
                  std::vector<Record>& out);
  void decomposeInto(const Rect& range, const Label& node, const Rect& cell,
                     std::vector<Label>& out) const;

  mlight::dht::Network* net_;
  DstConfig config_;
  mlight::store::DistributedStore<DstNode> store_;
  mlight::common::Rng rng_;
  std::size_t size_ = 0;
};

}  // namespace mlight::dst
