#include "mlight/kdspace.h"

#include <cassert>

#include "common/zorder.h"

namespace mlight::core {

Rect labelRegion(const BitString& label, std::size_t dims) {
  assert(isTreeNodeLabel(label, dims));
  Rect cell = Rect::unit(dims);
  // Halve in place: one Rect, two live coordinate writes per level —
  // the per-level Rect::halved() copies dominated this hot helper.
  Point& lo = cell.lo();
  Point& hi = cell.hi();
  for (std::size_t pos = dims + 1; pos < label.size(); ++pos) {
    const std::size_t dim = splitDimension(pos - (dims + 1), dims);
    const double m = 0.5 * (lo[dim] + hi[dim]);  // == Rect::mid(dim)
    (label.bit(pos) ? lo : hi)[dim] = m;
  }
  return cell;
}

BitString pointPathLabel(const Point& p, std::size_t dims,
                         std::size_t maxEdgeDepth) {
  BitString label = rootLabel(dims);
  label.append(mlight::common::interleave(p, maxEdgeDepth));
  return label;
}

BitString lowestCommonAncestor(const Rect& r, std::size_t dims,
                               std::size_t maxEdgeDepth) {
  BitString label = rootLabel(dims);
  label.append(mlight::common::lowestCoveringPath(r, dims, maxEdgeDepth));
  return label;
}

}  // namespace mlight::core
