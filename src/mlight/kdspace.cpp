#include "mlight/kdspace.h"

#include <cassert>

#include "common/zorder.h"

namespace mlight::core {

Rect labelRegion(const BitString& label, std::size_t dims) {
  assert(isTreeNodeLabel(label, dims));
  Rect cell = Rect::unit(dims);
  for (std::size_t pos = dims + 1; pos < label.size(); ++pos) {
    const std::size_t depth = pos - (dims + 1);
    cell = cell.halved(splitDimension(depth, dims), label.bit(pos));
  }
  return cell;
}

BitString pointPathLabel(const Point& p, std::size_t dims,
                         std::size_t maxEdgeDepth) {
  BitString label = rootLabel(dims);
  label.append(mlight::common::interleave(p, maxEdgeDepth));
  return label;
}

BitString lowestCommonAncestor(const Rect& r, std::size_t dims,
                               std::size_t maxEdgeDepth) {
  BitString label = rootLabel(dims);
  label.append(mlight::common::lowestCoveringPath(r, dims, maxEdgeDepth));
  return label;
}

}  // namespace mlight::core
