// Geometry of space kd-tree labels (paper §3.2).
//
// The space kd-tree partitions [0,1)^m by halving one dimension per level,
// cycling through the dimensions in the paper's order (last dimension
// first; see common/zorder.h).  Because partitioning ignores the data,
// every peer can locally compute the region of any label, the full path of
// any point, and the lowest common ancestor of any rectangle — the
// property that makes distributed query processing possible.
#pragma once

#include <cstddef>

#include "common/bitstring.h"
#include "common/geometry.h"
#include "common/zorder.h"
#include "mlight/naming.h"

namespace mlight::core {

using mlight::common::BitString;
using mlight::common::Point;
using mlight::common::Rect;

/// Data region of a tree node label (root # covers the unit cube; each
/// edge bit halves the dimension of its depth).
Rect labelRegion(const BitString& label, std::size_t dims);

/// The deepest possible label of the cell containing `p`:
/// # followed by maxEdgeDepth interleaved coordinate bits.  Every
/// candidate leaf label of p is a prefix of this (of length >= dims+1).
BitString pointPathLabel(const Point& p, std::size_t dims,
                         std::size_t maxEdgeDepth);

/// Label of the lowest tree node whose region fully covers `r` (the LCA
/// of the range, §6), descending at most maxEdgeDepth edges.
BitString lowestCommonAncestor(const Rect& r, std::size_t dims,
                               std::size_t maxEdgeDepth);

/// Dimension split by a node at the given edge depth.
inline std::size_t splitDimension(std::size_t edgeDepthValue,
                                  std::size_t dims) noexcept {
  return mlight::common::dimensionAtDepth(edgeDepthValue, dims);
}

}  // namespace mlight::core
