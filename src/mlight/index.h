// m-LIGHT: multi-dimensional Lightweight Hash Tree over a DHT.
//
// Public entry point of the library: implements the full index of the
// paper — space kd-tree decomposition into leaf buckets (§3.3), the
// m-dimensional naming function placement (§3.4), incremental tree
// maintenance with threshold or data-aware splitting (§4), binary-search
// lookup (§5), and recursive-forwarding range queries with the optional
// parallel lookahead variant (§6).
//
// All DHT traffic flows through the shared dht::Network so costs are
// metered in the paper's units (DHT-lookups, rounds, payload moved).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cache/hint_cache.h"
#include "common/bitstring.h"
#include "common/digest.h"
#include "common/geometry.h"
#include "common/rng.h"
#include "dht/network.h"
#include "index/index_base.h"
#include "index/region.h"
#include "mlight/bucket.h"
#include "store/distributed_store.h"
#include "wal/wal.h"

namespace mlight::core {

enum class SplitStrategy {
  kThreshold,  ///< split when load > θ_split, merge when siblings < θ_merge
  kDataAware,  ///< Algorithm 1: optimal split subtree targeting load ε
};

struct MLightConfig {
  std::size_t dims = 2;
  /// Maximum edge depth D of the index tree (paper §5; §7 uses D = 28).
  std::size_t maxEdgeDepth = 28;
  SplitStrategy strategy = SplitStrategy::kThreshold;
  std::size_t thetaSplit = 100;
  /// Merge when two sibling leaves hold fewer than this many records
  /// combined (θ_merge < θ_split for split/merge consistency).
  std::size_t thetaMerge = 50;
  /// Expected per-bucket load ε for the data-aware strategy.
  double epsilon = 70.0;
  /// Range-query lookahead h (§6): 1 = basic algorithm; h >= 2 forwards up
  /// to h speculative subqueries per branch node, trading bandwidth for
  /// latency.
  std::size_t lookahead = 1;
  /// Total copies of every bucket in the DHT (1 = no replication).
  /// Replication multiplies maintenance traffic but lets the index
  /// survive peer *crashes* (ungraceful departures) — see
  /// store::DistributedStore.
  std::size_t replication = 1;
  /// When crash repair runs: eagerly at the membership change (default)
  /// or deferred to the first read that fails over to a surviving
  /// replica (read-repair) — see store::RepairPolicy.
  mlight::store::RepairPolicy repair = mlight::store::RepairPolicy::kEager;
  /// Seed for initiator-peer choices (determinism).
  std::uint64_t seed = 42;
  /// Namespace for this index's keys in the shared DHT key space.
  std::string dhtNamespace = "mlight/";
  /// Durable write path: when true the index owns a per-peer write-ahead
  /// log set (src/wal) — every bucket placement and every acknowledged
  /// insert batch applied at a peer is framed into that peer's log, and
  /// recoverFromWal() replays a crashed peer's acknowledged writes after
  /// it rejoins under the same name.  Off by default; the off path is
  /// bit-identical to a build without the WAL.
  bool wal = false;
  /// Root of the simulated WAL file layout (per-run subdirectory derives
  /// from `seed`; see wal::WalSet::filePathFor).
  std::string walDir = "wal";
  /// Per-peer label-hint cache (src/cache): with `cache.enabled` every
  /// point operation first probes the last leaf observed for the query's
  /// cell (1 DHT-lookup on a hit) and falls back to the §5 binary
  /// search, seeded from the hint, when the hint went stale.  Disabled
  /// by default (unless MLIGHT_CACHE is set) — the disabled path is
  /// bit-identical to a build without the cache.
  mlight::cache::CachePolicy cache;
  /// Query-load balancing (src/store LoadBalancePolicy): with
  /// `loadBalance.enabled` the store promotes read-hot leaves to extra
  /// replicas and point/range reads route to the least-loaded live copy
  /// (hints carry the replica set; range probes use the store's frozen
  /// read routes).  Disabled by default — the off path is byte-identical
  /// to a build without the subsystem.
  mlight::store::LoadBalancePolicy loadBalance;
};

class MLightIndex final : public mlight::index::IndexBase {
 public:
  using Label = mlight::common::BitString;
  using Point = mlight::common::Point;
  using Rect = mlight::common::Rect;
  using Record = mlight::index::Record;

  MLightIndex(mlight::dht::Network& net, MLightConfig config);

  // --- IndexBase -------------------------------------------------------
  void insert(const Record& record) override;

  /// Bulk-loads an *empty* index: the initiating peer partitions the
  /// whole batch locally into the final leaf layout (using the
  /// configured splitting strategy) and issues one DHT-put per bucket —
  /// O(#buckets) DHT-lookups instead of O(N log D), and every record
  /// crosses the wire exactly once instead of being re-shipped by later
  /// splits.  Throws std::logic_error if the index already holds data.
  void bulkLoad(std::span<const Record> records);
  /// Batched durable insert path (ROADMAP item 5): splits `records` into
  /// chunks of `batchSize`, and within each chunk groups records by
  /// destination leaf — the first record of a group pays the §5 locate
  /// (through the hint cache), every other member joins by a local
  /// prefix test, and a call-local memo of located leaves carries over
  /// between chunks so a leaf is located once per call, not once per
  /// chunk (stale memo entries are detected by the owner-side apply and
  /// re-located, never silently dropped) — then ships each group as ONE
  /// pooled kBatchPut envelope.  The owner-side apply dedups by (id, key) so a replayed
  /// group is idempotent, appends the fresh records, runs ONE split-
  /// planning pass for the whole group (a single data-aware plan instead
  /// of N sequential per-record splits), propagates the delta to
  /// replicas, and — with the WAL enabled — frames the applied group in
  /// the owner's log, committing the frame exactly when the batch is
  /// acknowledged.  Records whose group ultimately fails (unreachable
  /// leaf, exhausted retries) count into failedInserts() and are NOT
  /// acknowledged.
  struct BatchResult {
    std::size_t acked = 0;    ///< records applied and acknowledged
    std::size_t failed = 0;   ///< records abandoned (never acknowledged)
    std::size_t groups = 0;   ///< kBatchPut envelopes issued
    std::size_t batches = 0;  ///< client-side chunks processed
  };
  BatchResult insertBatched(std::span<const Record> records,
                            std::size_t batchSize = 64,
                            std::vector<std::uint64_t>* ackedIds = nullptr);

  /// Crash recovery for the durable write path: scans the committed
  /// frames of `peerName`'s WAL (the peer must have rejoined the overlay
  /// — same name, hence same ring positions — as `rejoined`), rebuilds
  /// the last acknowledged state of every bucket the log covers (kPlace
  /// snapshots superseded by later kBatch appends, deduped by id), and
  /// re-places exactly the buckets the crash actually lost (mourned
  /// keys) in sorted key order.  Surviving buckets are left to the
  /// replica-repair machinery — replaying them would resurrect stale
  /// content.  Idempotent: a second replay finds nothing mourned and
  /// restores nothing.  Recovery traffic is metered like any placement;
  /// `ms` is the simulated time the replay took.
  struct RecoveryStats {
    std::size_t framesScanned = 0;
    std::size_t bucketsRestored = 0;
    std::size_t recordsRestored = 0;
    double ms = 0.0;
  };
  RecoveryStats recoverFromWal(std::string_view peerName,
                               mlight::dht::RingId rejoined);

  /// The write-ahead log set (nullptr unless config.wal) — test/bench
  /// hook: benches read per-peer frame counts, tests inject torn tails.
  mlight::wal::WalSet* walSet() noexcept { return wal_.get(); }
  const mlight::wal::WalSet* walSet() const noexcept { return wal_.get(); }

  std::size_t erase(const Point& key, std::uint64_t id) override;
  mlight::index::RangeResult rangeQuery(const Rect& range) override;
  mlight::index::PointResult pointQuery(const Point& key) override;
  std::size_t size() const override { return size_; }

  // --- m-LIGHT-specific operations -------------------------------------

  /// The lookup operation of §5: returns the label of the leaf bucket
  /// covering δ plus the cost of the binary search.
  struct LookupResult {
    Label leaf;
    mlight::index::QueryStats stats;
  };
  LookupResult lookup(const Point& key);

  /// Range query over an arbitrarily shaped region (§6: "the queried
  /// region can be of an arbitrary shape") — forwarding prunes on the
  /// region's cell-overlap test, results filter on exact containment.
  /// rangeQuery(Rect) is the RectRegion special case.
  mlight::index::RangeResult regionQuery(
      const mlight::index::QueryRegion& region);

  /// Aggregate range query: COUNT of records in `range` without shipping
  /// the records themselves back to the initiator — same DHT-lookups as
  /// rangeQuery, but the result traffic is a fixed few bytes per visited
  /// bucket instead of the full payload.
  struct CountResult {
    std::size_t count = 0;
    mlight::index::QueryStats stats;
  };
  CountResult rangeCount(const Rect& range);

  /// k-nearest-neighbour query (extension beyond the paper, built on the
  /// index's own primitives): finds the k records closest to `q` in
  /// Euclidean distance by expanding-range search — start from the leaf
  /// covering q, then grow a box until the k-th candidate's distance is
  /// certified.  Ties broken by record id.  Cost includes every range
  /// probe issued along the way.
  struct KnnResult {
    std::vector<Record> records;  ///< up to k records, nearest first
    mlight::index::QueryStats stats;
  };
  KnnResult knnQuery(const Point& q, std::size_t k);

  /// Linear-probing lookup used only by the lookup ablation benchmark:
  /// probes candidate prefixes top-down (deduplicating consecutive
  /// candidates that share a name) instead of binary searching.
  LookupResult lookupLinear(const Point& key);

  /// Logical maintenance traffic breakdown (counted even when a bucket
  /// happens to land on the same peer, unlike the network meter, so the
  /// ablation numbers do not depend on hashing luck).
  struct MaintenanceBreakdown {
    std::uint64_t insertShipBytes = 0;  ///< records shipped into leaves
    std::uint64_t splitShipBytes = 0;   ///< bucket bytes re-assigned at splits
    std::uint64_t splitBucketMoves = 0; ///< buckets re-keyed at splits
    std::uint64_t splitStayLocal = 0;   ///< children that kept the old key
    std::uint64_t mergeShipBytes = 0;   ///< bucket bytes moved at merges
  };
  const MaintenanceBreakdown& maintenanceBreakdown() const noexcept {
    return breakdown_;
  }

  /// Adjusts the range-query lookahead h at runtime (benchmarks sweep h
  /// over one loaded index instead of rebuilding per variant).
  void setLookahead(std::size_t h) noexcept { config_.lookahead = h; }

  /// One probe of a lookup or range query, in issue order.  Rounds start
  /// at 1; sequential binary-search probes each get their own round.
  struct TraceEvent {
    std::size_t round = 0;
    Label key;        ///< DHT key probed (f_md of the target)
    Label foundLeaf;  ///< label of the bucket found (empty on NULL)
    bool hit = false;
  };

  /// Installs a probe trace sink (nullptr to disable).  Used by tests to
  /// verify the paper's worked probe sequences and by the shell's
  /// `trace` mode; negligible overhead when disabled.
  void setTracer(std::vector<TraceEvent>* sink) noexcept { trace_ = sink; }

  // --- introspection (tests, benchmarks) -------------------------------
  const MLightConfig& config() const noexcept { return config_; }
  std::size_t bucketCount() const noexcept { return store_.bucketCount(); }
  std::size_t emptyBucketCount() const;

  /// Inserts abandoned because the target leaf (or a probe on the way to
  /// it) was unreachable — crash loss with too little replication, or
  /// every RPC retry exhausted under fault injection.  Always 0 in a
  /// fault-free run.
  std::size_t failedInserts() const noexcept { return failedInserts_; }

  /// Deepest leaf currently in the tree (edge depth; global scan — a
  /// simulator-only convenience).
  std::size_t treeDepth() const;

  /// §5's distributed D estimation: "the maximum possible height of the
  /// index tree ... can be estimated by apriori knowledge or by probing
  /// certain values before query processing [8], [11]".  Performs
  /// `samples` lookups of random points (normal metered DHT traffic) and
  /// returns the deepest leaf seen plus `headroom` levels of slack — a
  /// working upper bound a client can use as its D.
  std::size_t estimateDepthByProbing(std::size_t samples,
                                     std::size_t headroom = 4);

  /// Invariant check (test hook): every bucket is stored under
  /// key == f_md(label), labels tile the space, record keys lie inside
  /// their leaf region.  Aborts via assertion text on violation.
  void checkInvariants() const;

  /// Test/bench hook: replaces the current (empty) index with exactly the
  /// given tree shape — `leaves` must be the leaf set of a full binary
  /// space kd-tree (validated).  Used to reproduce the paper's worked
  /// examples (§5 lookup trace, §6 range trace) against the exact trees
  /// of Figs 1 and 4.  Precondition: size() == 0.
  void installTreeForTesting(const std::vector<Label>& leaves);

  const mlight::store::DistributedStore<LeafBucket>& store() const noexcept {
    return store_;
  }

  /// The per-peer hint caches (test/bench hook: poisoned-hint negative
  /// tests inject wrong labels here; benches read hint counts).
  mlight::cache::HintCacheSet& hintCaches() noexcept { return hintCaches_; }

  /// Digest of every simulation-visible fact of this index: record
  /// count, failure/maintenance counters, the full bucket store (sorted
  /// labels, serialized buckets, replica placements), and the hint
  /// caches.  The schedule-perturbation suite asserts this value is
  /// bit-identical across tie-break shuffle seeds (determinism
  /// contract, docs/THEORY.md).
  std::uint64_t stateDigest() const {
    mlight::common::Digest d;
    d.feed(size_);
    d.feed(failedInserts_);
    d.feed(breakdown_.insertShipBytes);
    d.feed(breakdown_.splitShipBytes);
    d.feed(breakdown_.splitBucketMoves);
    d.feed(breakdown_.splitStayLocal);
    d.feed(breakdown_.mergeShipBytes);
    store_.digestState(d);
    hintCaches_.digestState(d);
    if (wal_ != nullptr) wal_->digestState(d);
    return d.value();
  }

 private:
  struct Located {
    Label key;    ///< DHT key of the leaf bucket (= f_md(leaf)).
    Label leaf;   ///< Leaf label covering the probed point.
    mlight::dht::RingId owner;
    std::size_t probes = 0;
    double ms = 0.0;  ///< accumulated routing latency (sequential probes)
  };

  /// §5 binary search over candidate prefixes.  Meters one DHT-lookup per
  /// probe; probes are sequential (rounds == probes).  `hiCap` bounds the
  /// initial upper edge-depth when the caller already knows the leaf is
  /// shallow (the range query's NULL-at-LCA fallback).  `roundBase` is
  /// the RPC round of the first probe — callers continuing an existing
  /// chain (the fallback runs after the round-1 LCA probe) pass the next
  /// depth so the event timeline counts their probes as further rounds.
  Located locate(mlight::dht::RingId initiator, const Point& p,
                 std::size_t hiCap = static_cast<std::size_t>(-1),
                 std::uint32_t roundBase = 1);

  /// Cache-aware locate: with the hint cache enabled, probes the deepest
  /// cached leaf covering `p` first (one kHintProbe DHT-lookup on a
  /// live hint, metered as CostMeter::cacheHits) and repairs stale hints
  /// in place with a search seeded from the hint's depth (metered as
  /// staleHints).  With the cache disabled this *is* locate() — same
  /// probes, same rounds, same trace.
  Located locateCached(mlight::dht::RingId initiator, const Point& p,
                       std::size_t hiCap = static_cast<std::size_t>(-1),
                       std::uint32_t roundBase = 1);

  /// Unmetered replica of the §5 binary search over peek() — the
  /// paranoid-audit oracle proving a cached lookup resolved to the same
  /// leaf the uncached search finds.  Empty label when the search dead-
  /// ends (possible only on a structurally broken tree).
  Label uncachedLeafOracle(const Label& full, std::size_t hiCap) const;

  mlight::dht::RingId randomPeer();

  void thresholdSplitLoop(Label key);
  void dataAwareAdjust(const Label& key);
  void thresholdMergeLoop(Label key);

  /// One range-query forwarding step (Algorithm 3 body).
  struct Task {
    Rect range;
    Label target;    ///< node whose f_md key is probed (may be speculative)
    Label fallback;  ///< in-tree node to re-probe if speculation missed
    mlight::dht::RingId source;
    /// Edge depth of the last leaf seen on this chain: speculative pieces
    /// never descend past depthHint - 1, which keeps overshoots (wasted
    /// rounds) rare on trees of roughly uniform local depth.
    std::size_t depthHint = 0;
  };
  void enqueueForward(std::vector<Task>& wave, const Rect& subRange,
                      const Label& branch, mlight::dht::RingId source,
                      std::size_t depthHint);

  /// Shared engine behind regionQuery/rangeCount: when `collectRecords`
  /// is false only counts flow back (8 bytes per visited bucket).
  mlight::index::RangeResult regionQueryCore(
      const mlight::index::QueryRegion& region, bool collectRecords,
      std::size_t& countOut);

  mlight::dht::Network* net_;
  MLightConfig config_;
  /// Owned here, attached to the store: models the peers' disks, so it
  /// must survive simulated crashes of the peers it logs.
  std::unique_ptr<mlight::wal::WalSet> wal_;
  mlight::store::DistributedStore<LeafBucket> store_;
  mlight::common::Rng rng_;
  mlight::cache::HintCacheSet hintCaches_;
  std::size_t failedInserts_ = 0;
  MaintenanceBreakdown breakdown_;
  std::vector<TraceEvent>* trace_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace mlight::core
