// MLightIndex::knnQuery — the expanding-range k-nearest-neighbour
// extension (see index.h for the contract).
#include "mlight/index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/check.h"

#include "mlight/kdspace.h"
#include "mlight/naming.h"
#include "mlight/split.h"

namespace mlight::core {

MLightIndex::KnnResult MLightIndex::knnQuery(const Point& q, std::size_t k) {
  if (q.dims() != config_.dims) {
    throw std::invalid_argument("knnQuery: wrong dimensionality");
  }
  KnnResult out;
  if (k == 0 || size_ == 0) return out;

  const auto distance = [&](const Point& p) {
    double d2 = 0.0;
    for (std::size_t d = 0; d < config_.dims; ++d) {
      const double delta = p[d] - q[d];
      d2 += delta * delta;
    }
    return std::sqrt(d2);
  };
  const auto boxAround = [&](double r) {
    Point lo(config_.dims);
    Point hi(config_.dims);
    for (std::size_t d = 0; d < config_.dims; ++d) {
      lo[d] = q[d] - r;
      hi[d] = q[d] + r;
    }
    return Rect(lo, hi).intersection(Rect::unit(config_.dims));
  };

  // Seed the radius with the leaf covering q: its cell diameter is the
  // natural local scale (and guarantees the first box is non-trivial).
  const LookupResult seed = lookup(q);
  out.stats.cost += seed.stats.cost;
  out.stats.rounds += seed.stats.rounds;
  out.stats.latencyMs += seed.stats.latencyMs;
  out.stats.failedProbes += seed.stats.failedProbes;
  const Rect leafRegion = labelRegion(seed.leaf, config_.dims);
  double radius = 1e-6;
  for (std::size_t d = 0; d < config_.dims; ++d) {
    radius = std::max(radius,
                      std::max(std::abs(q[d] - leafRegion.lo()[d]),
                               std::abs(leafRegion.hi()[d] - q[d])));
  }

  for (;;) {
    const Rect box = boxAround(radius);
    auto res = rangeQuery(box);
    out.stats.cost += res.stats.cost;
    out.stats.rounds += res.stats.rounds;
    out.stats.latencyMs += res.stats.latencyMs;
    out.stats.failedProbes += res.stats.failedProbes;
    std::sort(res.records.begin(), res.records.end(),
              [&](const Record& a, const Record& b) {
                const double da = distance(a.key);
                const double db = distance(b.key);
                return da != db ? da < db : a.id < b.id;
              });
    const bool boxIsEverything =
        box.containsRect(Rect::unit(config_.dims));
    if (res.records.size() >= k) {
      // Certified iff the k-th distance fits inside the probed radius
      // (anything closer would have been inside the box).
      const double kth = distance(res.records[k - 1].key);
      if (kth <= radius || boxIsEverything) {
        res.records.resize(k);
        out.records = std::move(res.records);
        return out;
      }
      radius = std::max(kth, radius * 2.0);
      continue;
    }
    if (boxIsEverything) {
      out.records = std::move(res.records);  // fewer than k exist
      return out;
    }
    radius *= 2.0;
  }
}

}  // namespace mlight::core
