// The m-dimensional naming function f_md (paper §3.4, Definitions 1–2).
//
// Labels of the space kd-tree: the *virtual root* is m zero bits, the
// ordinary root # is m-1 zeros followed by a 1, and each further bit is an
// edge label (0 = left/lower child, 1 = right/upper child).  The naming
// function maps every leaf label to the label of an internal node:
//
//     f_md(b1..bi) = f_md(b1..b_{i-1})   if b_{i-m} == b_i,
//                    b1..b_{i-1}         otherwise.
//
// Intuitively it climbs to the lowest ancestor that is not aligned with
// the leaf in quadrant position.  Its properties drive the whole index:
//  * Theorem 1/3 (corner preservation): the 2^m corner cells of internal
//    node ω are named f_md(ω), ω, ω0, ω1, ..., ω1..1;
//  * Theorem 2/4 (bijection): f_md maps the leaf set one-to-one onto the
//    internal node set (virtual root included);
//  * Theorem 5 (incremental split): of the two children of a split leaf
//    λ, one is named f_md(λ) (keeps the parent's DHT key — no transfer)
//    and the other is named λ.
#pragma once

#include <cstddef>

#include "common/bitstring.h"

namespace mlight::core {

using mlight::common::BitString;

/// Virtual root label: m consecutive zeros.
BitString virtualRootLabel(std::size_t dims);

/// Ordinary root label # = 0...01 (m bits of zero-prefix, then 1).
BitString rootLabel(std::size_t dims);

/// True iff `label` is the root or a descendant (valid tree node label):
/// at least m+1 bits and begins with #.
bool isTreeNodeLabel(const BitString& label, std::size_t dims);

/// Applies the naming function.  Precondition: isTreeNodeLabel(label).
/// The result is always a proper prefix of `label`, of length >= m.
BitString naming(const BitString& label, std::size_t dims);

/// Length of f_md applied to the first `nodeLen` bits of `path` — the
/// naming result is always a prefix of the input, so callers holding a
/// longer path (lookup's §5 probe binary search) can name any ancestor
/// without materializing it: the probe key is
/// `path.prefix(namedPrefixLength(path, len, m))`.
/// Precondition: isTreeNodeLabel(path.prefix(nodeLen), dims).
std::size_t namedPrefixLength(const BitString& path, std::size_t nodeLen,
                              std::size_t dims) noexcept;

/// Edge depth of a node label: 0 for the root #, +1 per edge.
inline std::size_t edgeDepth(const BitString& label,
                             std::size_t dims) noexcept {
  return label.size() - (dims + 1);
}

}  // namespace mlight::core
