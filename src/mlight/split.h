// Index splitting strategies (paper §4).
//
// Threshold-based: split when a bucket exceeds θ_split, halving the region
// once per step (classic kd behaviour; may create empty buckets on skewed
// data).
//
// Data-aware (paper §4.2, Algorithm 1): given an expected per-bucket load
// ε, locally compute the *optimal split subtree* rooted at the bucket that
// minimizes Σ_leaves (load − ε)²; split only if strictly better than
// staying whole.  Theorem 6: this minimizes the variance of expected load
// across peers.  The computation is the divide-and-conquer of Algorithm 1
// and runs entirely locally (no DHT traffic).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/bitstring.h"
#include "common/geometry.h"
#include "index/record.h"

namespace mlight::core {

using mlight::common::BitString;
using mlight::common::Rect;
using mlight::index::Record;

/// One leaf of a split plan: its label and the records it receives.
struct PlanLeaf {
  BitString label;
  std::vector<Record> records;
};

/// Result of the local split computation.
struct SplitPlan {
  /// Σ (load − ε)² over the plan's leaves (data-aware), or unused for
  /// threshold splits.
  double cost = 0.0;
  /// The leaves of the optimal split subtree, left-to-right.  A single
  /// leaf equal to the input bucket means "do not split".
  std::vector<PlanLeaf> leaves;

  bool splits() const noexcept { return leaves.size() > 1; }
};

/// Partitions `records` between the two children of `label` (whose region
/// is `region`): first element lower/left child (bit 0), second
/// upper/right child (bit 1).
std::pair<std::vector<Record>, std::vector<Record>> partitionOnce(
    const BitString& label, const Rect& region,
    std::span<const Record> records, std::size_t dims);

/// Algorithm 1: the optimal split subtree for a bucket with the given
/// label/region/records.  Recursion stops at cells with <= ε records or at
/// maxEdgeDepth.  Deterministic and purely local.
SplitPlan planDataAwareSplit(const BitString& label, const Rect& region,
                             std::span<const Record> records, double epsilon,
                             std::size_t dims, std::size_t maxEdgeDepth);

/// Exhaustive minimizer over all split subtrees (exponential; test-only
/// ground truth for planDataAwareSplit on small instances).
double bruteForceSplitCost(const BitString& label, const Rect& region,
                           std::span<const Record> records, double epsilon,
                           std::size_t dims, std::size_t maxEdgeDepth);

}  // namespace mlight::core
