// Batched durable write path (ROADMAP item 5).
//
// insertBatched: the client-side batcher.  One chunk = one initiating
// peer; records group per destination leaf (the first member pays the §5
// locate through the hint cache, the rest join by a local prefix test),
// and each group crosses the DHT as ONE pooled kBatchPut envelope — the
// per-record envelope overhead that dominates BM_MLightInsert is paid
// once per group.  Across chunks of the same call, located leaves are
// remembered in a client-side memo: later chunks hitting the same leaf
// skip the locate entirely, and a stale memo entry (the leaf split since
// it was located) is detected by the owner-side apply and re-queued for
// a real locate — never silently dropped.
//
// The owner-side apply dedups, appends, runs one group split-planning
// pass, and frames the applied records in the owner's write-ahead log;
// the frame commits exactly when the batch is acknowledged to the
// caller.
//
// recoverFromWal: the other half of durability.  A crashed peer that
// rejoins under its old name (hence the same ring positions) replays its
// committed frames and re-places exactly the buckets the crash lost —
// acknowledged batched writes survive an owner crash even at R = 1.

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/invariants.h"
#include "mlight/index.h"
#include "mlight/kdspace.h"
#include "mlight/naming.h"

namespace mlight::core {

namespace {

bool holdsRecord(const std::vector<mlight::index::Record>& records,
                 const mlight::index::Record& r) {
  return std::find_if(records.begin(), records.end(),
                      [&](const mlight::index::Record& have) {
                        return have.id == r.id && have.key == r.key;
                      }) != records.end();
}

}  // namespace

MLightIndex::BatchResult MLightIndex::insertBatched(
    std::span<const Record> records, std::size_t batchSize,
    std::vector<std::uint64_t>* ackedIds) {
  MLIGHT_CHECK(batchSize > 0, "insertBatched: batchSize must be positive");
  const std::size_t m = config_.dims;
  for (const Record& r : records) {
    if (r.key.dims() != m) {
      throw std::invalid_argument("insertBatched: wrong dimensionality");
    }
  }
  BatchResult out;

  struct Group {
    Located loc;
    std::vector<const Record*> recs;
    /// Full tree path of each record, parallel to `recs` — computed once
    /// in the grouping phase and reused for the apply-time coverage
    /// check (building a D*m-bit label is the single most expensive
    /// per-record host operation on this path).
    std::vector<Label> fulls;
    /// True when `loc` came from the cross-chunk memo instead of a real
    /// locate: a missing bucket then means "stale memo" (the leaf split
    /// since it was located), and the group is re-queued for a real
    /// locate instead of being failed.
    bool fromMemo = false;
  };

  // Cross-chunk locate memo.  The whole call shares one worklist of
  // destination leaves: once a leaf is located, every later chunk that
  // touches it pays a local prefix test instead of a §5 binary search
  // (the dominant per-group cost).  Entries are only ever hints — the
  // owner-side apply re-validates coverage, so a stale entry costs one
  // extra round trip, never correctness.  Bounded and scanned newest-
  // first so a deep tree cannot turn the memo itself into a linear-scan
  // tax.
  constexpr std::size_t kMemoCap = 128;
  std::vector<Located> memo;
  const auto memoEvict = [&memo](const Label& leaf) {
    std::erase_if(memo, [&](const Located& e) { return e.leaf == leaf; });
  };
  const auto memoRemember = [&memo, kMemoCap](const Located& loc) {
    for (const Located& e : memo) {
      if (e.leaf == loc.leaf) return;  // already known
    }
    if (memo.size() == kMemoCap) memo.erase(memo.begin());
    memo.push_back(loc);
  };

  for (std::size_t base = 0; base < records.size(); base += batchSize) {
    const std::size_t chunkEnd = std::min(records.size(), base + batchSize);
    ++out.batches;
    const auto initiator = randomPeer();

    std::vector<const Record*> pending;
    pending.reserve(chunkEnd - base);
    for (std::size_t i = base; i < chunkEnd; ++i) {
      pending.push_back(&records[i]);
    }

    // A group applied earlier in the chunk can split the leaf a later
    // group was located at; records the split moved out of the located
    // leaf are re-queued and re-located next round, so the worklist
    // shrinks by at least the covered records of one group per round.
    // The round bound is a safety valve against pathological ping-pong,
    // not a budget any sane workload reaches.
    for (std::size_t round = 0; round < 32 && !pending.empty(); ++round) {
      // Phase 1 — group the worklist per destination leaf: one locate
      // per distinct leaf, local prefix tests for the rest.
      std::vector<Group> groups;
      std::vector<const Record*> failed;
      for (const Record* r : pending) {
        Label full = pointPathLabel(r->key, m, config_.maxEdgeDepth);
        bool joined = false;
        for (Group& g : groups) {
          if (g.loc.leaf.isPrefixOf(full)) {
            g.recs.push_back(r);
            g.fulls.push_back(std::move(full));
            joined = true;
            break;
          }
        }
        if (joined) continue;
        // Memo hit: a leaf located by an earlier chunk (or round) covers
        // this record — skip the binary search.  Newest-first: recent
        // locates reflect the current tree best.
        bool fromMemo = false;
        Located loc;
        for (auto it = memo.rbegin(); it != memo.rend(); ++it) {
          if (it->leaf.isPrefixOf(full)) {
            loc = *it;
            fromMemo = true;
            break;
          }
        }
        if (!fromMemo) {
          loc = locateCached(initiator, r->key);
          if (loc.leaf.empty()) {
            // Unreachable leaf (crash loss / exhausted retries): the
            // record is not inserted and never acknowledged.
            failed.push_back(r);
            continue;
          }
          memoRemember(loc);
        }
        groups.push_back(Group{std::move(loc), {r}, {std::move(full)},
                               fromMemo});
      }
      pending.clear();
      failedInserts_ += failed.size();
      out.failed += failed.size();

      // Phase 2 — one kBatchPut per group.
      for (Group& g : groups) {
        ++out.groups;
        // Assemble the group payload in a pooled buffer: u32 count +
        // records — the bytes that would have been N separate puts.
        mlight::common::Writer groupWire(net_->acquireBuffer());
        groupWire.writeU32(static_cast<std::uint32_t>(g.recs.size()));
        std::size_t groupBytes = 0;
        for (const Record* r : g.recs) {
          r->serialize(groupWire);
          groupBytes += r->byteSize();
        }

        bool answered = false;
        bool present = false;
        mlight::dht::RingId answeredBy{};
        std::vector<Record> wireRecs;
        store_.asyncBatchPut(
            initiator, g.loc.key, std::move(groupWire).take(), /*round=*/1,
            [&](LeafBucket* bucket, const mlight::dht::RpcDelivery& d) {
              answered = true;
              present = bucket != nullptr;
              answeredBy = d.route.owner;
              if (bucket == nullptr) return;
              // Decode the group from the wire copy (past the leading
              // label) — the apply below works from what actually
              // crossed the network, like every other handler.
              mlight::common::Reader r(d.env.payload);
              r.readBitString();
              std::vector<std::uint8_t> blob = net_->acquireBuffer();
              r.readBytesInto(blob);
              mlight::common::Reader body(blob);
              const std::uint32_t n = body.readCount(16);
              wireRecs.reserve(n);
              for (std::uint32_t k = 0; k < n; ++k) {
                wireRecs.push_back(Record::deserialize(body));
              }
              net_->releaseBuffer(std::move(blob));
            });
        net_->run();

        LeafBucket* bucket =
            answered && present ? store_.peek(g.loc.key) : nullptr;
        if (bucket == nullptr) {
          if (g.fromMemo) {
            // Stale memo: the leaf split (or moved) since it was
            // located.  Evict the hint and re-queue the group for a
            // real locate next round — a memo must never turn a
            // transient staleness into a lost write.
            memoEvict(g.loc.leaf);
            pending.insert(pending.end(), g.recs.begin(), g.recs.end());
            continue;
          }
          // Dead letter on every holder, or the bucket vanished between
          // locate and delivery (crash): nothing was applied.
          failedInserts_ += g.recs.size();
          out.failed += g.recs.size();
          continue;
        }

        // Apply: records the located leaf still covers are deduped by
        // (id, key) — so a replayed or retransmitted group is idempotent
        // — and appended; records a concurrent split moved out of this
        // leaf go back to the worklist for relocation.  The wire round
        // trip preserves record order, so wireRecs[k] pairs with
        // g.recs[k]: the coverage test reuses the grouping-phase label
        // and the dedup probes an id set instead of rescanning the
        // bucket per record.
        MLIGHT_CHECK(wireRecs.size() == g.recs.size(),
                     "insertBatched: group count changed on the wire");
        // Duplicate prefilter: if the incoming id range and the bucket's
        // id range are disjoint, no (id, key) can repeat and the dedup
        // set is never built — fresh inserts (the overwhelmingly common
        // case) pay two integer min/max sweeps instead of hashing every
        // bucket record per group.
        std::uint64_t inMin = std::numeric_limits<std::uint64_t>::max();
        std::uint64_t inMax = 0;
        for (const Record& wr : wireRecs) {
          inMin = std::min(inMin, wr.id);
          inMax = std::max(inMax, wr.id);
        }
        std::uint64_t haveMin = std::numeric_limits<std::uint64_t>::max();
        std::uint64_t haveMax = 0;
        for (const Record& have : bucket->records) {
          haveMin = std::min(haveMin, have.id);
          haveMax = std::max(haveMax, have.id);
        }
        const bool mayDup =
            !bucket->records.empty() && inMin <= haveMax && inMax >= haveMin;
        std::unordered_set<std::uint64_t> heldIds;
        if (mayDup) {
          heldIds.reserve(bucket->records.size());
          for (const Record& have : bucket->records) heldIds.insert(have.id);
        }
        std::vector<std::size_t> fresh;
        std::vector<bool> requeued(wireRecs.size(), false);
        for (std::size_t k = 0; k < wireRecs.size(); ++k) {
          const Record& wr = wireRecs[k];
          if (!bucket->label.isPrefixOf(g.fulls[k])) {
            pending.push_back(g.recs[k]);
            requeued[k] = true;
            continue;
          }
          if (mayDup && heldIds.count(wr.id) != 0 &&
              holdsRecord(bucket->records, wr)) {
            continue;
          }
          fresh.push_back(k);
        }

        // Append-on-apply: frame what is about to be applied in the
        // answering peer's log, still uncommitted — a crash between
        // apply and acknowledgment must not replay an unacked batch.
        std::uint64_t lsn = 0;
        mlight::wal::PeerWal* log = nullptr;
        if (wal_ != nullptr && !fresh.empty()) {
          mlight::common::Writer frame(net_->acquireBuffer());
          frame.writeU32(static_cast<std::uint32_t>(fresh.size()));
          for (const std::size_t k : fresh) wireRecs[k].serialize(frame);
          log = &wal_->forPeer(net_->physicalNameOf(answeredBy));
          lsn = log->append(mlight::wal::FrameKind::kBatch, g.loc.key,
                            frame.bytes());
          net_->releaseBuffer(std::move(frame).take());
        }

        for (const std::size_t k : fresh) {
          breakdown_.insertShipBytes += wireRecs[k].byteSize();
          bucket->records.push_back(std::move(wireRecs[k]));
          ++size_;
        }
        // The group delta reaches the replicas as one update, like the
        // single-record path — but amortized over the whole group.
        store_.shipToReplicas(answeredBy, g.loc.key, groupBytes,
                              g.recs.size());

        // ONE split-planning pass for the whole group: an oversized
        // batch triggers a single data-aware plan (Algorithm 1) or one
        // threshold cascade, instead of N sequential per-record splits.
        if (config_.strategy == SplitStrategy::kThreshold) {
          thresholdSplitLoop(g.loc.key);
        } else {
          dataAwareAdjust(g.loc.key);
        }
        net_->run();
        // Refresh the memo against the post-apply, post-split tree.  A
        // split does not free the DHT key: §4 naming keeps one child on
        // the parent's key, so the key often survives with a NARROWER
        // label — repair the entry in place (same key, new leaf) so the
        // re-queued sibling records miss it and re-locate, instead of
        // ping-ponging off the stale parent entry forever.
        LeafBucket* after = store_.peek(g.loc.key);
        if (after == nullptr) {
          memoEvict(g.loc.leaf);
        } else if (after->label != g.loc.leaf) {
          memoEvict(g.loc.leaf);
          Located repaired = g.loc;
          repaired.leaf = after->label;
          memoRemember(repaired);
        }

        // Commit = acknowledgment: from here the batch must survive a
        // crash of the peer that applied it.
        if (log != nullptr) log->commit(lsn);
        std::size_t ackedHere = 0;
        for (std::size_t k = 0; k < g.recs.size(); ++k) {
          if (requeued[k]) continue;
          ++ackedHere;
          if (ackedIds != nullptr) ackedIds->push_back(g.recs[k]->id);
        }
        out.acked += ackedHere;
      }
    }
    // Safety-valve leftovers (see the round bound above): never applied,
    // never acknowledged.
    failedInserts_ += pending.size();
    out.failed += pending.size();
  }

  if (mlight::common::auditEnabled(mlight::common::AuditLevel::kParanoid)) {
    checkInvariants();
  }
  return out;
}

MLightIndex::RecoveryStats MLightIndex::recoverFromWal(
    std::string_view peerName, mlight::dht::RingId rejoined) {
  RecoveryStats out;
  if (wal_ == nullptr) return out;
  const mlight::wal::PeerWal* log = wal_->findPeer(peerName);
  if (log == nullptr) return out;
  const double t0 = net_->now();

  // Rebuild, per key, the last acknowledged state this peer durably
  // held: a kPlace frame snapshots the whole bucket (superseding every
  // earlier frame for the key); later kBatch frames append their
  // records, deduped by (id, key) so double replay is idempotent.
  std::map<Label, LeafBucket> rebuilt;
  for (const mlight::wal::Frame& f : log->scanCommitted()) {
    ++out.framesScanned;
    mlight::common::Reader r(f.payload);
    if (f.kind == mlight::wal::FrameKind::kPlace) {
      rebuilt.insert_or_assign(f.key, LeafBucket::deserialize(r));
      continue;
    }
    const auto it = rebuilt.find(f.key);
    if (it == rebuilt.end()) {
      // A batch against a bucket whose placement predates this log —
      // cannot happen when the WAL was attached from index construction
      // (every placement is framed), but a scan must not trust that.
      continue;
    }
    const std::uint32_t n = r.readCount(16);
    for (std::uint32_t k = 0; k < n; ++k) {
      Record rec = Record::deserialize(r);
      if (!holdsRecord(it->second.records, rec)) {
        it->second.records.push_back(std::move(rec));
      }
    }
  }

  // Re-place exactly the buckets the crash actually lost: mourned keys.
  // Surviving buckets keep their replica-repaired state — replaying
  // them would resurrect stale content.  std::map iteration = sorted
  // keys (determinism contract).  The rejoined peer owns its old keys
  // again (same name → same ring positions), so most placements resolve
  // to itself and recovery traffic is dominated by the lookups.
  for (auto& [key, bucket] : rebuilt) {
    if (!store_.isMourned(key)) continue;
    ++out.bucketsRestored;
    out.recordsRestored += bucket.records.size();
    store_.place(rejoined, key, std::move(bucket));
  }
  net_->run();
  out.ms = net_->now() - t0;
  return out;
}

}  // namespace mlight::core
