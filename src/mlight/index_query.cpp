// MLightIndex query processing: the recursive-forwarding range/region
// algorithm of §6 (Algorithms 2–3) with the parallel-h variant.
#include "mlight/index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/check.h"

#include "mlight/kdspace.h"
#include "mlight/naming.h"
#include "mlight/split.h"

namespace mlight::core {

namespace {

/// Collects bucket records inside both the task's rectangular scope
/// (which keeps parallel tasks disjoint) and the query region's shape.
void collectInRegion(const LeafBucket& bucket, const Rect& scope,
                     const mlight::index::QueryRegion& region,
                     std::vector<mlight::index::Record>& out) {
  for (const auto& r : bucket.records) {
    if (scope.contains(r.key) && region.contains(r.key)) {
      out.push_back(r);
    }
  }
}

}  // namespace

void MLightIndex::enqueueForward(std::vector<Task>& wave,
                                 const Rect& subRange, const Label& branch,
                                 mlight::dht::RingId source,
                                 std::size_t depthHint) {
  if (config_.lookahead <= 1) {
    wave.push_back(Task{subRange, branch, branch, source, depthHint});
    return;
  }
  // Parallel variant (§6): speculatively descend the globally-known space
  // partition below the branch node, splitting the subrange into up to h
  // pieces probed in the same round.  Pieces that overshoot the real tree
  // fall back to re-probing the branch node itself next round; the depth
  // hint (local leaf depth observed so far) keeps that rare.
  const std::size_t maxPieceDepth = std::min(
      config_.maxEdgeDepth,
      std::max(edgeDepth(branch, config_.dims), depthHint));
  std::vector<std::pair<Rect, Label>> pieces{{subRange, branch}};
  std::size_t cursor = 0;
  while (pieces.size() < config_.lookahead && cursor < pieces.size()) {
    const auto [range, node] = pieces[cursor];
    if (edgeDepth(node, config_.dims) >= maxPieceDepth) {
      ++cursor;
      continue;
    }
    const std::size_t dim =
        splitDimension(edgeDepth(node, config_.dims), config_.dims);
    const Rect region = labelRegion(node, config_.dims);
    const Rect loPart = range.intersection(region.halved(dim, false));
    const Rect hiPart = range.intersection(region.halved(dim, true));
    std::vector<std::pair<Rect, Label>> expanded;
    if (!loPart.empty()) expanded.emplace_back(loPart, node.withBack(false));
    if (!hiPart.empty()) expanded.emplace_back(hiPart, node.withBack(true));
    if (expanded.size() <= 1 && pieces.size() == 1 && expanded.size() == 1) {
      // Degenerate: the whole subrange sits in one child; descending
      // keeps one piece but gets closer to the data.
      pieces[cursor] = expanded.front();
      continue;
    }
    if (expanded.empty()) {
      ++cursor;
      continue;
    }
    pieces.erase(pieces.begin() + static_cast<std::ptrdiff_t>(cursor));
    pieces.insert(pieces.end(), expanded.begin(), expanded.end());
  }
  for (auto& [range, node] : pieces) {
    wave.push_back(Task{range, node, branch, source, depthHint});
  }
}

mlight::index::RangeResult MLightIndex::rangeQuery(const Rect& range) {
  if (range.dims() != config_.dims) {
    throw std::invalid_argument("rangeQuery: wrong dimensionality");
  }
  const mlight::index::RectRegion region(range);
  return regionQuery(region);
}

mlight::index::RangeResult MLightIndex::regionQuery(
    const mlight::index::QueryRegion& region) {
  std::size_t count = 0;
  return regionQueryCore(region, /*collectRecords=*/true, count);
}

MLightIndex::CountResult MLightIndex::rangeCount(const Rect& range) {
  if (range.dims() != config_.dims) {
    throw std::invalid_argument("rangeCount: wrong dimensionality");
  }
  const mlight::index::RectRegion region(range);
  CountResult out;
  const auto res =
      regionQueryCore(region, /*collectRecords=*/false, out.count);
  out.stats = res.stats;
  return out;
}

mlight::index::RangeResult MLightIndex::regionQueryCore(
    const mlight::index::QueryRegion& region, bool collectRecords,
    std::size_t& countOut) {
  mlight::index::RangeResult out;
  const Rect box = region.boundingBox();
  if (box.dims() != config_.dims) {
    throw std::invalid_argument("regionQuery: wrong dimensionality");
  }
  const Rect clipped = box.intersection(Rect::unit(config_.dims));
  if (clipped.empty()) return out;

  const double t0 = net_->beginTimeline();
  // Freeze the read routes of boosted leaves at this quiescent point:
  // the cascade's handlers issue asyncGet reads mid-flight, and they
  // must consult a table fixed for the whole operation — never the live
  // load counters — to stay order-free under tie shuffling.
  store_.refreshReadRouting();
  const std::size_t failedBefore = store_.failedReads();
  mlight::dht::CostMeter meter;
  mlight::dht::MeterScope scope(*net_, meter);
  const auto initiator = randomPeer();
  countOut = 0;

  // Range queries are the cheap way to warm the lookup cache: every leaf
  // the cascade touches becomes a hint for the *initiating* peer, so
  // later point operations in the queried region start from a direct
  // probe.  Learning happens AFTER the cascade quiesces, in sorted label
  // order — harvest runs inside RPC handlers, and handler order among
  // same-time deliveries is explicitly unspecified (the determinism
  // contract's schedule-perturbation tests reorder it), so feeding the
  // LRU in arrival order would make cache recency — and with it future
  // evictions and traffic — depend on tie-break order.
  std::vector<Label> learnedLeaves;

  // Collects from one visited bucket and ships the result (full records
  // or an 8-byte count) from the bucket's owner back to the initiator.
  const auto harvest = [&](const LeafBucket& bucket, const Rect& scopeRect,
                           mlight::dht::RingId owner) {
    if (config_.cache.enabled) {
      learnedLeaves.push_back(bucket.label);
    }
    std::vector<mlight::index::Record> hits;
    collectInRegion(bucket, scopeRect, region, hits);
    countOut += hits.size();
    if (collectRecords) {
      std::size_t bytes = 0;
      for (const auto& r : hits) bytes += r.byteSize();
      net_->shipPayload(owner, initiator, bytes, hits.size());
      out.records.insert(out.records.end(),
                         std::make_move_iterator(hits.begin()),
                         std::make_move_iterator(hits.end()));
    } else if (!hits.empty()) {
      net_->shipPayload(owner, initiator, 8, 0);  // the count only
    }
  };

  // One forwarding step (Algorithm 3 body) as an RPC continuation: the
  // handler runs "at" the probed node's owner when the envelope arrives,
  // harvests locally, and issues follow-up RPCs one round deeper.  The
  // task tree — and hence every count metric — is identical to the old
  // breadth-first wave loop; only the timeline is now emergent (probes
  // of one round overlap, each chain deepens independently).
  std::function<void(const Task&, std::uint32_t)> issueTask =
      [&](const Task& task, std::uint32_t round) {
        const Label key = naming(task.target, config_.dims);
        store_.asyncGet(
            task.source, key, round,
            // `issueTask` and the locals captured by reference outlive
            // every handler: the event loop is pumped dry below, inside
            // this frame.
            [this, &issueTask, &harvest, &region, task,
             key](LeafBucket* bucket, const mlight::dht::RpcDelivery& d) {
              if (trace_ != nullptr) {
                trace_->push_back(TraceEvent{
                    d.env.round, key,
                    bucket != nullptr ? bucket->label : Label{},
                    bucket != nullptr});
              }
              if (bucket == nullptr) {
                // Speculation overshot the real tree; retry the in-tree
                // branch node without speculation.
                assert(task.target != task.fallback);
                issueTask(Task{task.range, task.fallback, task.fallback,
                               d.route.owner, task.depthHint},
                          d.env.round + 1);
                return;
              }
              const Label& leafLabel = bucket->label;
              if (task.target.isPrefixOf(leafLabel)) {
                harvest(*bucket, task.range, d.route.owner);
                const std::size_t hint = edgeDepth(leafLabel, config_.dims);
                std::vector<Task> follow;
                for (std::size_t len = task.target.size() + 1;
                     len <= leafLabel.size(); ++len) {
                  const Label branch = leafLabel.prefixSibling(len);
                  const Rect branchRegion = labelRegion(branch, config_.dims);
                  const Rect sub = task.range.intersection(branchRegion);
                  if (!sub.empty() && region.intersects(branchRegion)) {
                    enqueueForward(follow, sub, branch, d.route.owner, hint);
                  }
                }
                for (const Task& t : follow) issueTask(t, d.env.round + 1);
              } else if (labelRegion(leafLabel, config_.dims)
                             .containsRect(task.range)) {
                // Speculative probe landed on a leaf covering the piece.
                harvest(*bucket, task.range, d.route.owner);
              } else {
                // Mismatched speculative hit: fall back to the in-tree
                // node.
                assert(task.target != task.fallback);
                issueTask(Task{task.range, task.fallback, task.fallback,
                               d.route.owner, task.depthHint},
                          d.env.round + 1);
              }
            });
      };

  // Algorithm 2: forward to the LCA's name; the probe reaches a corner
  // cell of the LCA region (Theorem 1).  This first probe is round 1 and
  // stays synchronous — it alone decides whether the query degenerates
  // to a point lookup or fans out.
  const Label omega =
      lowestCommonAncestor(clipped, config_.dims, config_.maxEdgeDepth);
  const Label omegaKey = naming(omega, config_.dims);
  const auto first = store_.routeAndFind(initiator, omegaKey);
  if (trace_ != nullptr) {
    trace_->push_back(TraceEvent{
        1, omegaKey,
        first.bucket != nullptr ? first.bucket->label : Label{},
        first.bucket != nullptr});
  }

  if (first.failed) {
    // The LCA probe itself was unanswerable (every holder dark): the
    // whole query is a failed probe; return an empty partial result.
  } else if (first.bucket == nullptr) {
    // f_md(ω) is not an internal node, so a single leaf covers the whole
    // range; find it with a point lookup of the range's corner.  The
    // failed probe already proved the leaf is no deeper than f_md(ω);
    // the sequential probes continue the chain at round 2.
    const Located loc =
        locateCached(first.owner, clipped.lo(),
                     omegaKey.size() >= config_.dims + 1
                         ? edgeDepth(omegaKey, config_.dims)
                         : std::size_t{0},
                     /*roundBase=*/2);
    if (!loc.leaf.empty()) {
      const LeafBucket* bucket = store_.peek(loc.key);
      assert(bucket != nullptr);
      harvest(*bucket, clipped, loc.owner);
    }
  } else {
    const Label& leafLabel = first.bucket->label;
    harvest(*first.bucket, clipped, first.owner);
    // ω may be below the local leaf level; f_md(ω) is always a prefix of
    // the found leaf, so branch enumeration stays valid either way.
    const Label& base = omega.isPrefixOf(leafLabel) ? omega : omegaKey;
    const std::size_t hint = edgeDepth(leafLabel, config_.dims);
    // The base can be the virtual root (when f_md(ω) = 0...0); its only
    // real child is the root #, which has no sibling, so branch
    // enumeration starts below the root.
    const std::size_t firstLen = std::max(base.size() + 1, config_.dims + 2);
    std::vector<Task> seed;
    for (std::size_t len = firstLen; len <= leafLabel.size(); ++len) {
      const Label branch = leafLabel.prefixSibling(len);
      const Rect branchRegion = labelRegion(branch, config_.dims);
      const Rect sub = clipped.intersection(branchRegion);
      if (!sub.empty() && region.intersects(branchRegion)) {
        enqueueForward(seed, sub, branch, first.owner, hint);
      }
    }
    for (const Task& t : seed) issueTask(t, 2);
  }

  // Drive the cascade to quiescence; stats fall out of the timeline.
  net_->run();
  store_.drainLoadBalance();
  if (config_.cache.enabled && !learnedLeaves.empty()) {
    std::sort(learnedLeaves.begin(), learnedLeaves.end());
    learnedLeaves.erase(
        std::unique(learnedLeaves.begin(), learnedLeaves.end()),
        learnedLeaves.end());
    auto& cache = hintCaches_.forPeer(initiator.value);
    for (const Label& leaf : learnedLeaves) {
      if (cache.learn(leaf, static_cast<std::uint32_t>(
                                edgeDepth(leaf, config_.dims)))) {
        net_->noteHintEviction();
      }
    }
  }
  out.stats.cost = meter;
  out.stats.rounds = net_->timelineMaxRound();
  out.stats.latencyMs = net_->now() - t0;
  out.stats.failedProbes = store_.failedReads() - failedBefore;
  return out;
}

}  // namespace mlight::core
