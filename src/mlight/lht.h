// LHT: the authors' one-dimensional predecessor system (Tang & Zhou,
// ICDCS'08, paper [12]), provided as a thin typed façade over m-LIGHT.
//
// §2.1: "LHT fills internal nodes with data by an elegant mapping
// mechanism ... Nevertheless, LHT can deal with one-dimensional data
// only."  m-LIGHT with m = 1 degenerates to exactly that structure — the
// kd-tree becomes a binary interval tree and f_md reduces to LHT's
// naming function — so the façade adapts scalar keys/intervals onto the
// 2-D-generalized machinery and nothing else.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dht/network.h"
#include "mlight/index.h"

namespace mlight::lht {

struct LhtConfig {
  std::size_t maxDepth = 28;
  std::size_t thetaSplit = 100;
  std::size_t thetaMerge = 50;
  std::uint64_t seed = 42;
  std::string dhtNamespace = "lht/";
};

/// One-dimensional record: scalar key in [0, 1).
struct LhtRecord {
  double key = 0.0;
  std::string payload;
  std::uint64_t id = 0;
};

class LhtIndex {
 public:
  LhtIndex(mlight::dht::Network& net, const LhtConfig& config)
      : inner_(net, toMLightConfig(config)) {}

  void insert(const LhtRecord& record) {
    inner_.insert(toRecord(record));
  }

  std::size_t erase(double key, std::uint64_t id) {
    return inner_.erase(mlight::common::Point{key}, id);
  }

  /// All records with key in [lo, hi).
  struct RangeResult {
    std::vector<LhtRecord> records;
    mlight::index::QueryStats stats;
  };
  RangeResult rangeQuery(double lo, double hi) {
    auto res = inner_.rangeQuery(mlight::common::Rect(
        mlight::common::Point{lo}, mlight::common::Point{hi}));
    RangeResult out;
    out.stats = res.stats;
    out.records.reserve(res.records.size());
    for (const auto& r : res.records) out.records.push_back(fromRecord(r));
    return out;
  }

  RangeResult pointQuery(double key) {
    auto res = inner_.pointQuery(mlight::common::Point{key});
    RangeResult out;
    out.stats = res.stats;
    for (const auto& r : res.records) out.records.push_back(fromRecord(r));
    return out;
  }

  std::size_t size() const { return inner_.size(); }
  std::size_t bucketCount() const { return inner_.bucketCount(); }
  void checkInvariants() const { inner_.checkInvariants(); }

  /// The generalized index underneath (tests verify the degeneration).
  mlight::core::MLightIndex& inner() noexcept { return inner_; }

 private:
  static mlight::core::MLightConfig toMLightConfig(const LhtConfig& c) {
    mlight::core::MLightConfig cfg;
    cfg.dims = 1;
    cfg.maxEdgeDepth = c.maxDepth;
    cfg.thetaSplit = c.thetaSplit;
    cfg.thetaMerge = c.thetaMerge;
    cfg.seed = c.seed;
    cfg.dhtNamespace = c.dhtNamespace;
    return cfg;
  }
  static mlight::index::Record toRecord(const LhtRecord& r) {
    mlight::index::Record out;
    out.key = mlight::common::Point{r.key};
    out.payload = r.payload;
    out.id = r.id;
    return out;
  }
  static LhtRecord fromRecord(const mlight::index::Record& r) {
    return LhtRecord{r.key[0], r.payload, r.id};
  }

  mlight::core::MLightIndex inner_;
};

}  // namespace mlight::lht
