// MLightIndex maintenance paths: bulk loading, threshold split/merge
// loops (§4.1, Theorem 5) and the data-aware adjustment (§4.2,
// Algorithm 1).
#include "mlight/index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/invariants.h"

#include "mlight/kdspace.h"
#include "mlight/naming.h"
#include "mlight/split.h"

namespace mlight::core {

namespace {

/// Recursive threshold partition for bulk loading: split every cell with
/// more than theta records (depth-capped), keeping record ownership.
void thresholdPartition(const mlight::common::BitString& label,
                        const mlight::common::Rect& region,
                        std::vector<mlight::index::Record> records,
                        std::size_t theta, std::size_t dims,
                        std::size_t maxEdgeDepth,
                        std::vector<PlanLeaf>& out) {
  if (records.size() <= theta ||
      edgeDepth(label, dims) >= maxEdgeDepth) {
    out.push_back(PlanLeaf{label, std::move(records)});
    return;
  }
  auto [lo, hi] = partitionOnce(label, region, records, dims);
  const std::size_t dim = splitDimension(edgeDepth(label, dims), dims);
  thresholdPartition(label.withBack(false), region.halved(dim, false),
                     std::move(lo), theta, dims, maxEdgeDepth, out);
  thresholdPartition(label.withBack(true), region.halved(dim, true),
                     std::move(hi), theta, dims, maxEdgeDepth, out);
}

}  // namespace

void MLightIndex::bulkLoad(std::span<const Record> records) {
  if (size_ != 0) {
    throw std::logic_error("bulkLoad requires an empty index");
  }
  for (const Record& r : records) {
    if (r.key.dims() != config_.dims) {
      throw std::invalid_argument("bulkLoad: wrong dimensionality");
    }
  }
  const Label root = rootLabel(config_.dims);
  std::vector<PlanLeaf> leaves;
  if (config_.strategy == SplitStrategy::kThreshold) {
    thresholdPartition(root, Rect::unit(config_.dims),
                       std::vector<Record>(records.begin(), records.end()),
                       config_.thetaSplit, config_.dims,
                       config_.maxEdgeDepth, leaves);
  } else {
    SplitPlan plan =
        planDataAwareSplit(root, Rect::unit(config_.dims), records,
                           config_.epsilon, config_.dims,
                           config_.maxEdgeDepth);
    leaves = std::move(plan.leaves);
  }
  if (config_.strategy == SplitStrategy::kDataAware &&
      mlight::common::auditEnabled(mlight::common::AuditLevel::kBoundaries)) {
    std::vector<std::size_t> planLoads;
    planLoads.reserve(leaves.size());
    for (const PlanLeaf& leaf : leaves) planLoads.push_back(leaf.records.size());
    mlight::common::auditLoadVariance(planLoads, config_.epsilon);
  }
  // Replace the bootstrap root bucket with the computed layout: one
  // DHT-put per leaf from the initiating peer.
  store_.erase(naming(root, config_.dims));
  const auto initiator = randomPeer();
  for (PlanLeaf& leaf : leaves) {
    const Label key = naming(leaf.label, config_.dims);
    LeafBucket bucket;
    bucket.label = std::move(leaf.label);
    bucket.records = std::move(leaf.records);
    size_ += bucket.records.size();
    breakdown_.insertShipBytes += bucket.byteSize();
    store_.place(initiator, key, std::move(bucket));
  }
  if (mlight::common::auditEnabled(mlight::common::AuditLevel::kBoundaries)) {
    checkInvariants();
  }
}

void MLightIndex::thresholdSplitLoop(Label key) {
  std::vector<Label> pending{std::move(key)};
  while (!pending.empty()) {
    const Label k = std::move(pending.back());
    pending.pop_back();
    LeafBucket* bucket = store_.peek(k);
    if (bucket == nullptr ||
        bucket->records.size() <= config_.thetaSplit) {
      continue;
    }
    const Label lambda = bucket->label;
    if (edgeDepth(lambda, config_.dims) >= config_.maxEdgeDepth) continue;

    auto [loRecords, hiRecords] =
        partitionOnce(lambda, labelRegion(lambda, config_.dims),
                      bucket->records, config_.dims);
    const Label child0 = lambda.withBack(false);
    const Label child1 = lambda.withBack(true);
    const Label key0 = naming(child0, config_.dims);
    const Label key1 = naming(child1, config_.dims);
    // Theorem 5 (incremental split): one child keeps the parent's DHT key
    // and never leaves this peer; only the other is re-assigned.
    mlight::common::auditIncrementalSplit(lambda, k, key0, key1);
    const bool child0Stays = (key0 == k);

    LeafBucket stay;
    stay.label = child0Stays ? child0 : child1;
    stay.records = child0Stays ? std::move(loRecords) : std::move(hiRecords);
    LeafBucket move;
    move.label = child0Stays ? child1 : child0;
    move.records = child0Stays ? std::move(hiRecords) : std::move(loRecords);

    const auto owner = store_.ownerOf(k);
    MLIGHT_CHECK(store_.peek(lambda) == nullptr,
                 "naming bijection violated");
    breakdown_.splitStayLocal += 1;
    breakdown_.splitShipBytes += move.byteSize();
    breakdown_.splitBucketMoves += 1;
    store_.placeLocal(k, std::move(stay));
    store_.place(owner, lambda, std::move(move));  // one DHT-put

    pending.push_back(k);
    pending.push_back(lambda);
  }
}

void MLightIndex::dataAwareAdjust(const Label& key) {
  LeafBucket* bucket = store_.peek(key);
  assert(bucket != nullptr);
  const Label lambda = bucket->label;
  SplitPlan plan = planDataAwareSplit(
      lambda, labelRegion(lambda, config_.dims), bucket->records,
      config_.epsilon, config_.dims, config_.maxEdgeDepth);
  if (!plan.splits()) return;

  const auto owner = store_.ownerOf(key);
  if (mlight::common::auditEnabled(mlight::common::AuditLevel::kBoundaries)) {
    // Theorem 5 generalized to whole split subtrees, plus Theorem 6
    // minimality of the chosen plan.
    std::vector<Label> planKeys;
    std::vector<std::size_t> planLoads;
    planKeys.reserve(plan.leaves.size());
    planLoads.reserve(plan.leaves.size());
    for (const PlanLeaf& leaf : plan.leaves) {
      planKeys.push_back(naming(leaf.label, config_.dims));
      planLoads.push_back(leaf.records.size());
    }
    mlight::common::auditIncrementalSplitPlan(key, planKeys);
    mlight::common::auditLoadVariance(planLoads, config_.epsilon);
  }
  bool placedStay = false;
  for (PlanLeaf& leaf : plan.leaves) {
    const Label leafKey = naming(leaf.label, config_.dims);
    LeafBucket newBucket;
    newBucket.label = std::move(leaf.label);
    newBucket.records = std::move(leaf.records);
    if (leafKey == key) {
      // The one leaf named to the old key stays on this peer (Theorem 5
      // generalized to whole split subtrees).
      breakdown_.splitStayLocal += 1;
      store_.placeLocal(leafKey, std::move(newBucket));
      placedStay = true;
    } else {
      MLIGHT_CHECK(store_.peek(leafKey) == nullptr,
                   "naming bijection violated");
      breakdown_.splitShipBytes += newBucket.byteSize();
      breakdown_.splitBucketMoves += 1;
      store_.place(owner, leafKey, std::move(newBucket));
    }
  }
  MLIGHT_CHECK(placedStay, "exactly one plan leaf must keep the old key");
}

void MLightIndex::thresholdMergeLoop(Label key) {
  for (;;) {
    LeafBucket* bucket = store_.peek(key);
    if (bucket == nullptr) return;
    const Label lambda = bucket->label;
    if (lambda == rootLabel(config_.dims)) return;

    const Label sib = lambda.sibling();
    const Label parent = [&] {
      Label p = lambda;
      p.popBack();
      return p;
    }();
    // Probe the sibling (one DHT-lookup).  The bucket under f_md(sibling)
    // is the sibling itself iff the sibling is a leaf.
    const Label sibKey = naming(sib, config_.dims);
    const auto found = store_.routeAndFind(store_.ownerOf(key), sibKey);
    MLIGHT_CHECK(found.bucket != nullptr, "tree keys must be dense");
    if (found.bucket->label != sib) return;  // sibling is internal
    if (bucket->records.size() + found.bucket->records.size() >=
        config_.thetaMerge) {
      return;
    }

    // Merge: children of `parent` sit under keys {f_md(parent), parent};
    // the one under f_md(parent) absorbs the other (one bucket transfer).
    const Label stayKey = naming(parent, config_.dims);
    mlight::common::auditIncrementalSplit(parent, stayKey, key, sibKey);
    LeafBucket merged;
    merged.label = parent;
    merged.records = bucket->records;
    merged.records.insert(merged.records.end(),
                          found.bucket->records.begin(),
                          found.bucket->records.end());

    const LeafBucket* moving = store_.peek(parent);
    assert(moving != nullptr);
    breakdown_.mergeShipBytes += moving->byteSize();
    net_->shipPayload(store_.ownerOf(parent), store_.ownerOf(stayKey),
                      moving->byteSize(), moving->recordCount());
    store_.erase(parent);
    store_.placeLocal(stayKey, std::move(merged));
    key = stayKey;  // the merged leaf may merge again with *its* sibling
  }
}

}  // namespace mlight::core
