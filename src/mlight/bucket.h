// Leaf bucket: the unit of distribution in m-LIGHT (paper §3.3).
//
// The global space kd-tree is decomposed into one bucket per leaf.  A
// bucket stores two components: the *label store* — the leaf label λ,
// which encodes the whole local tree (ancestors are prefixes of λ, branch
// nodes are prefixes with the last bit inverted) — and the *record store*
// with the data records whose keys fall in the leaf's region.  The bucket
// lives in the DHT under key f_md(λ).
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitstring.h"
#include "common/serde.h"
#include "index/record.h"

namespace mlight::core {

struct LeafBucket {
  mlight::common::BitString label;
  std::vector<mlight::index::Record> records;

  std::size_t recordCount() const noexcept { return records.size(); }

  /// Serialized size: drives data-movement accounting when the bucket is
  /// shipped between peers (splits, merges, churn).
  std::size_t byteSize() const noexcept {
    std::size_t bytes = 4 + 8 * ((label.size() + 63) / 64) + 4;
    for (const auto& r : records) bytes += r.byteSize();
    return bytes;
  }

  void serialize(mlight::common::Writer& w) const {
    w.writeBitString(label);
    w.writeU32(static_cast<std::uint32_t>(records.size()));
    for (const auto& r : records) r.serialize(w);
  }

  static LeafBucket deserialize(mlight::common::Reader& r) {
    LeafBucket b;
    b.label = r.readBitString();
    const std::uint32_t n = r.readCount(16);
    b.records.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      b.records.push_back(mlight::index::Record::deserialize(r));
    }
    return b;
  }
};

}  // namespace mlight::core
