#include "mlight/index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/invariants.h"

#include "mlight/kdspace.h"
#include "mlight/naming.h"
#include "mlight/split.h"

namespace mlight::core {

MLightIndex::MLightIndex(mlight::dht::Network& net, MLightConfig config)
    : net_(&net),
      config_(std::move(config)),
      store_(net, config_.dhtNamespace, config_.replication,
             config_.repair),
      rng_(config_.seed),
      hintCaches_(config_.dims, config_.cache) {
  if (config_.dims < 1 || config_.dims > mlight::common::kMaxDims) {
    throw std::invalid_argument("MLightIndex: dims out of range");
  }
  if (config_.thetaMerge >= config_.thetaSplit) {
    throw std::invalid_argument(
        "MLightIndex: thetaMerge must be < thetaSplit");
  }
  // Install before any placement so the bootstrap bucket, too, goes
  // through boost-aware copy resolution (a no-op while nothing is hot).
  store_.setLoadBalance(config_.loadBalance);
  if (config_.wal) {
    // Attach before the bootstrap placement so the root bucket is framed
    // too — the log must cover every placement ever applied.
    wal_ = std::make_unique<mlight::wal::WalSet>(config_.walDir,
                                                 config_.seed);
    store_.attachWal(wal_.get());
  }
  // Bootstrap: a single leaf # named to the virtual root.  Index creation
  // is not part of any measured workload, so the bucket is placed locally.
  const Label rootKey = naming(rootLabel(config_.dims), config_.dims);
  LeafBucket root;
  root.label = rootLabel(config_.dims);
  store_.placeLocal(rootKey, std::move(root));
  net_->run();  // deliver bootstrap replica envelopes, if any
}

mlight::dht::RingId MLightIndex::randomPeer() {
  const auto& peers = net_->peers();
  return peers[rng_.below(peers.size())];
}

MLightIndex::Located MLightIndex::locate(mlight::dht::RingId initiator,
                                         const Point& p, std::size_t hiCap,
                                         std::uint32_t roundBase) {
  const std::size_t m = config_.dims;
  const Label full = pointPathLabel(p, m, config_.maxEdgeDepth);
  std::size_t lo = 0;
  std::size_t hi = std::min(config_.maxEdgeDepth, hiCap);
  Located result;
  // Distinct candidates can share a name (every candidate in
  // (|f_md(λ)|, |λ|] names to f_md(λ)); a repeated key needs no second
  // DHT-lookup, the earlier answer is definitive.  (Only hit-but-off-path
  // keys can repeat: a NULL key caps `hi` below any candidate that could
  // name to it again.)
  std::vector<Label> probedKeys;
  for (;;) {
    const std::size_t t = lo + (hi - lo) / 2;
    // Name the candidate prefix without materializing it: f_md's result
    // is itself a prefix of `full`, so one length computation + one
    // prefix() replaces two temporary labels per probe.
    const Label key = full.prefix(namedPrefixLength(full, m + 1 + t, m));
    if (std::find(probedKeys.begin(), probedKeys.end(), key) !=
        probedKeys.end()) {
      lo = t + 1;
      mlight::common::auditLookupSearchBounds(lo, hi);
      continue;
    }
    const auto found = store_.routeAndFind(
        initiator, key,
        roundBase + static_cast<std::uint32_t>(result.probes));
    if (found.failed) {
      // No holder of this probe key answered (crash loss / exhausted
      // retries): the search cannot distinguish NULL from unreachable,
      // so give up rather than mis-navigate.  Callers detect the empty
      // leaf; the store already counted the failed read.
      result.key = Label{};
      result.leaf = Label{};
      return result;
    }
    probedKeys.push_back(key);
    ++result.probes;
    result.ms += found.ms;
    if (trace_ != nullptr) {
      trace_->push_back(TraceEvent{
          result.probes, key,
          found.bucket != nullptr ? found.bucket->label : Label{},
          found.bucket != nullptr});
    }
    if (found.bucket == nullptr) {
      // `key` is not an internal node, so the leaf on this path is no
      // deeper than key; the NULL probe can cut far below t-1 (this is
      // where m-LIGHT beats a plain prefix binary search).
      assert(key.size() >= m + 1 && "virtual-root bucket must exist");
      hi = edgeDepth(key, m);
      assert(hi < t || t == 0);
    } else if (found.bucket->label.isPrefixOf(full)) {
      result.key = key;
      result.leaf = found.bucket->label;
      result.owner = found.owner;
      return result;
    } else {
      // `key` is internal and its named leaf is off-path: every candidate
      // in (edgeDepth(key), t] shares the same name, so none is the leaf.
      lo = t + 1;
    }
    mlight::common::auditLookupSearchBounds(lo, hi);
  }
}

MLightIndex::Located MLightIndex::locateCached(mlight::dht::RingId initiator,
                                               const Point& p,
                                               std::size_t hiCap,
                                               std::uint32_t roundBase) {
  if (!config_.cache.enabled) return locate(initiator, p, hiCap, roundBase);
  const std::size_t m = config_.dims;
  const Label full = pointPathLabel(p, m, config_.maxEdgeDepth);
  mlight::cache::LabelHintCache& cache = hintCaches_.forPeer(initiator.value);
  const mlight::cache::LabelHint* cached = cache.findCovering(full);
  if (cached == nullptr) {
    // Cold cell: the plain §5 search, plus learning its answer.
    Located loc = locate(initiator, p, hiCap, roundBase);
    if (!loc.leaf.empty()) {
      auto info = store_.replicaReadInfo(loc.key);
      if (cache.learn(loc.leaf,
                      static_cast<std::uint32_t>(edgeDepth(loc.leaf, m)),
                      std::move(info.salts), std::move(info.loads))) {
        net_->noteHintEviction();
      }
    }
    return loc;
  }
  // Copy before any repair: learn/forget below invalidate the pointer.
  const mlight::cache::LabelHint used = *cached;
  std::size_t lo = 0;
  std::size_t hi = std::min(config_.maxEdgeDepth, hiCap);
  // A caller-capped window (the range query's NULL-at-LCA fallback)
  // already proves the leaf is shallow; clamp a deeper hint to it — any
  // on-path probe depth is sound, so the clamped probe still verifies
  // or refutes the hint.
  const std::size_t t0 = std::min<std::size_t>(used.depth, hi);
  const Label probeKey = full.prefix(namedPrefixLength(full, m + 1 + t0, m));
  Located result;
  // Least-loaded replica routing (query-load balancing): a hint learned
  // for a boosted leaf carries the replica set plus the loads observed
  // at learn time — probe the copy with the smallest load, ties broken
  // toward the lowest replica index (strict < keeps the first minimum).
  // Only when the probe key is the hint's own key (an unclamped t0):
  // under a caller-capped window the probe targets an ancestor, whose
  // copy set the hint knows nothing about.
  std::size_t probeSalt = 0;
  if (!used.replicaSalts.empty() && t0 == used.depth) {
    std::uint32_t bestLoad = ~std::uint32_t{0};
    for (std::size_t i = 0; i < used.replicaSalts.size(); ++i) {
      const std::uint32_t load =
          i < used.replicaLoads.size() ? used.replicaLoads[i] : 0;
      if (load < bestLoad) {
        bestLoad = load;
        probeSalt = used.replicaSalts[i];
      }
    }
  }
  // The hint crosses the wire with the probe so the owner-side verdict
  // works from the wire copy, like every other handler.
  mlight::common::Writer hintWire(net_->acquireBuffer());
  used.serialize(hintWire);
  const auto probed = store_.hintProbeAndFind(
      initiator, probeKey, std::move(hintWire).take(), roundBase, probeSalt);
  if (probed.failed) {
    // Unreachable probe (crash loss / exhausted retries): same give-up
    // contract as locate() — callers detect the empty leaf.
    return result;
  }
  ++result.probes;
  result.ms += probed.ms;
  if (trace_ != nullptr) {
    trace_->push_back(TraceEvent{
        result.probes, probeKey,
        probed.bucket != nullptr ? probed.bucket->label : Label{},
        probed.bucket != nullptr});
  }
  if (probed.bucket != nullptr && probed.bucket->label.isPrefixOf(full)) {
    // Live hint: the whole binary search collapsed into this one probe.
    // The leaf found may still differ from the remembered label — after
    // a split one child keeps the parent's DHT key (Theorem 5), so the
    // stale *label* resolves in one probe anyway; refresh it.
    net_->noteCacheHit();
    result.key = probeKey;
    result.leaf = probed.bucket->label;
    result.owner = probed.owner;
    if (result.leaf != used.leaf) cache.forget(used.leaf);
    // Refresh the replica routing info along with the hint: the reply
    // piggybacks the current copy set and loads (read at this quiescent
    // point — the probe's facade pumped the loop dry), so the next read
    // of this leaf self-balances toward the then-coldest copy.
    auto info = store_.replicaReadInfo(probeKey);
    if (cache.learn(result.leaf,
                    static_cast<std::uint32_t>(edgeDepth(result.leaf, m)),
                    std::move(info.salts), std::move(info.loads))) {
      net_->noteHintEviction();
    }
    if (mlight::common::auditEnabled(mlight::common::AuditLevel::kParanoid)) {
      mlight::common::auditCacheCoherence(result.leaf,
                                          uncachedLeafOracle(full, hiCap));
    }
    return result;
  }
  // Stale hint: the probed peer no longer holds an on-path leaf under
  // this key (split/merge moved it).  Forget it and repair in place —
  // the §5 search continues inside the window the failed probe already
  // cut, so a hint that drifted by Δdepth levels costs O(log Δdepth)
  // extra probes, never a wrong answer.
  net_->noteStaleHint();
  cache.forget(used.leaf);
  std::vector<Label> probedKeys{probeKey};
  bool gallop = false;
  std::size_t step = 1;
  if (probed.bucket == nullptr) {
    // The tree got shallower here (merge): the leaf is no deeper than
    // the probe key's edge depth — the standard NULL cut.
    mlight::common::auditLookupSearchBounds(m + 1, probeKey.size());
    hi = edgeDepth(probeKey, m);
  } else {
    // The tree grew below the hint (split): the leaf is deeper than t0.
    // Gallop upward from the hint instead of bisecting the whole
    // remaining window — splits move depth by a few levels, so the
    // target is almost always just past the hint.
    lo = t0 + 1;
    gallop = true;
  }
  mlight::common::auditLookupSearchBounds(lo, hi);
  for (;;) {
    std::size_t t;
    if (gallop) {
      t = std::min(lo + step - 1, hi);
      step *= 2;
      if (t == hi) gallop = false;  // window exhausted: bisect from here
    } else {
      t = lo + (hi - lo) / 2;
    }
    const Label key = full.prefix(namedPrefixLength(full, m + 1 + t, m));
    if (std::find(probedKeys.begin(), probedKeys.end(), key) !=
        probedKeys.end()) {
      lo = t + 1;
      mlight::common::auditLookupSearchBounds(lo, hi);
      continue;
    }
    const auto found = store_.routeAndFind(
        initiator, key,
        roundBase + static_cast<std::uint32_t>(result.probes));
    if (found.failed) {
      result.key = Label{};
      result.leaf = Label{};
      return result;
    }
    probedKeys.push_back(key);
    ++result.probes;
    result.ms += found.ms;
    if (trace_ != nullptr) {
      trace_->push_back(TraceEvent{
          result.probes, key,
          found.bucket != nullptr ? found.bucket->label : Label{},
          found.bucket != nullptr});
    }
    if (found.bucket == nullptr) {
      hi = edgeDepth(key, m);
      gallop = false;  // the depth direction reversed: bisect
    } else if (found.bucket->label.isPrefixOf(full)) {
      result.key = key;
      result.leaf = found.bucket->label;
      result.owner = found.owner;
      auto info = store_.replicaReadInfo(key);
      if (cache.learn(result.leaf,
                      static_cast<std::uint32_t>(edgeDepth(result.leaf, m)),
                      std::move(info.salts), std::move(info.loads))) {
        net_->noteHintEviction();
      }
      if (mlight::common::auditEnabled(
              mlight::common::AuditLevel::kParanoid)) {
        mlight::common::auditCacheCoherence(
            result.leaf, uncachedLeafOracle(full, hiCap));
      }
      return result;
    } else {
      lo = t + 1;
    }
    mlight::common::auditLookupSearchBounds(lo, hi);
  }
}

MLightIndex::Label MLightIndex::uncachedLeafOracle(const Label& full,
                                                   std::size_t hiCap) const {
  const std::size_t m = config_.dims;
  std::size_t lo = 0;
  std::size_t hi = std::min(config_.maxEdgeDepth, hiCap);
  std::vector<Label> probedKeys;
  while (lo <= hi) {
    const std::size_t t = lo + (hi - lo) / 2;
    const Label key = full.prefix(namedPrefixLength(full, m + 1 + t, m));
    if (std::find(probedKeys.begin(), probedKeys.end(), key) !=
        probedKeys.end()) {
      lo = t + 1;
      continue;
    }
    probedKeys.push_back(key);
    const LeafBucket* bucket = store_.peek(key);
    if (bucket == nullptr) {
      hi = edgeDepth(key, m);
    } else if (bucket->label.isPrefixOf(full)) {
      return bucket->label;
    } else {
      lo = t + 1;
    }
  }
  return Label{};
}

MLightIndex::LookupResult MLightIndex::lookupLinear(const Point& key) {
  const double t0 = net_->beginTimeline();
  const std::size_t failedBefore = store_.failedReads();
  mlight::dht::CostMeter meter;
  mlight::dht::MeterScope scope(*net_, meter);
  const std::size_t m = config_.dims;
  const Label full = pointPathLabel(key, m, config_.maxEdgeDepth);
  const auto initiator = randomPeer();
  LookupResult out;
  Label lastProbed;
  for (std::size_t t = 0; t <= config_.maxEdgeDepth; ++t) {
    const Label probeKey =
        full.prefix(namedPrefixLength(full, m + 1 + t, m));
    if (probeKey == lastProbed) continue;  // consecutive shared name
    lastProbed = probeKey;
    const auto found = store_.routeAndFind(
        initiator, probeKey,
        static_cast<std::uint32_t>(out.stats.rounds) + 1);
    ++out.stats.rounds;
    if (found.bucket != nullptr &&
        found.bucket->label.isPrefixOf(full)) {
      out.leaf = found.bucket->label;
      break;
    }
  }
  out.stats.cost = meter;
  out.stats.latencyMs = net_->now() - t0;
  out.stats.failedProbes = store_.failedReads() - failedBefore;
  return out;
}

MLightIndex::LookupResult MLightIndex::lookup(const Point& key) {
  const double t0 = net_->beginTimeline();
  store_.refreshReadRouting();
  const std::size_t failedBefore = store_.failedReads();
  mlight::dht::CostMeter meter;
  mlight::dht::MeterScope scope(*net_, meter);
  const Located loc = locateCached(randomPeer(), key);
  store_.drainLoadBalance();
  LookupResult out;
  out.leaf = loc.leaf;
  out.stats.cost = meter;
  // Probes are sequential RPCs at rounds 1..probes, so the deepest round
  // delivered equals the probe count and the elapsed simulated time is
  // the accumulated routing latency.
  out.stats.rounds = net_->timelineMaxRound();
  out.stats.latencyMs = net_->now() - t0;
  out.stats.failedProbes = store_.failedReads() - failedBefore;
  return out;
}

void MLightIndex::insert(const Record& record) {
  if (record.key.dims() != config_.dims) {
    throw std::invalid_argument("insert: wrong dimensionality");
  }
  const auto initiator = randomPeer();
  const Located loc = locateCached(initiator, record.key);
  if (loc.leaf.empty()) {
    // The leaf (or a probe on the way to it) was unreachable — crash
    // loss with R too small, or every retry exhausted.  The record is
    // not inserted; surface the failure instead of corrupting the tree.
    ++failedInserts_;
    net_->run();
    return;
  }
  // The final probe already reached the owner; the record ships with the
  // reply-put, costing payload movement but no extra DHT-lookup.
  net_->shipPayload(initiator, loc.owner, record.byteSize(), 1);
  store_.shipToReplicas(loc.owner, loc.key, record.byteSize(), 1);
  breakdown_.insertShipBytes += record.byteSize();
  LeafBucket* bucket = store_.peek(loc.key);
  assert(bucket != nullptr);
  bucket->records.push_back(record);
  ++size_;
  if (config_.strategy == SplitStrategy::kThreshold) {
    thresholdSplitLoop(loc.key);
  } else {
    dataAwareAdjust(loc.key);
  }
  // Quiesce: deliver fire-and-forget replica envelopes before returning
  // so the next operation starts from an idle network.
  net_->run();
  store_.drainLoadBalance();
  if (mlight::common::auditEnabled(mlight::common::AuditLevel::kParanoid)) {
    checkInvariants();
  }
}

std::size_t MLightIndex::erase(const Point& key, std::uint64_t id) {
  const auto initiator = randomPeer();
  const Located loc = locateCached(initiator, key);
  if (loc.leaf.empty()) return 0;  // leaf unreachable (see insert)
  LeafBucket* bucket = store_.peek(loc.key);
  assert(bucket != nullptr);
  const auto before = bucket->records.size();
  std::erase_if(bucket->records, [&](const Record& r) {
    return r.id == id && r.key == key;
  });
  const std::size_t removed = before - bucket->records.size();
  size_ -= removed;
  if (removed > 0) {
    // Propagate the deletion to replica copies (tombstone message).
    store_.shipToReplicas(loc.owner, loc.key, 16 * removed, 0);
  }
  if (removed > 0 && config_.strategy == SplitStrategy::kThreshold) {
    thresholdMergeLoop(loc.key);
  }
  net_->run();
  store_.drainLoadBalance();
  if (mlight::common::auditEnabled(mlight::common::AuditLevel::kParanoid)) {
    checkInvariants();
  }
  return removed;
}

mlight::index::PointResult MLightIndex::pointQuery(const Point& key) {
  const double t0 = net_->beginTimeline();
  store_.refreshReadRouting();
  const std::size_t failedBefore = store_.failedReads();
  mlight::dht::CostMeter meter;
  mlight::dht::MeterScope scope(*net_, meter);
  const Located loc = locateCached(randomPeer(), key);
  store_.drainLoadBalance();
  mlight::index::PointResult out;
  if (!loc.leaf.empty()) {
    const LeafBucket* bucket = store_.peek(loc.key);
    assert(bucket != nullptr);
    for (const auto& r : bucket->records) {
      if (r.key == key) out.records.push_back(r);
    }
  }
  out.stats.cost = meter;
  out.stats.rounds = net_->timelineMaxRound();
  out.stats.latencyMs = net_->now() - t0;
  out.stats.failedProbes = store_.failedReads() - failedBefore;
  return out;
}

void MLightIndex::installTreeForTesting(const std::vector<Label>& leaves) {
  MLIGHT_CHECK(size_ == 0, "installTreeForTesting requires an empty index");
  double volume = 0.0;
  for (const Label& leaf : leaves) {
    MLIGHT_CHECK(isTreeNodeLabel(leaf, config_.dims), "bad leaf label");
    volume += labelRegion(leaf, config_.dims).volume();
  }
  MLIGHT_CHECK(std::abs(volume - 1.0) < 1e-9,
               "leaves must tile the unit cube");
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    for (std::size_t j = 0; j < leaves.size(); ++j) {
      MLIGHT_CHECK(i == j || !leaves[i].isPrefixOf(leaves[j]),
                   "leaf set is not prefix-free");
    }
  }
  // Drop the bootstrap root bucket, then install one empty bucket per
  // leaf under its f_md key (placement is free: tree construction is not
  // part of any measured workload).
  store_.erase(naming(rootLabel(config_.dims), config_.dims));
  for (const Label& leaf : leaves) {
    const Label key = naming(leaf, config_.dims);
    MLIGHT_CHECK(store_.peek(key) == nullptr,
                 "duplicate key — leaves do not form a valid tree");
    LeafBucket bucket;
    bucket.label = leaf;
    store_.placeLocal(key, std::move(bucket));
  }
  net_->run();
  checkInvariants();
}

std::size_t MLightIndex::emptyBucketCount() const {
  std::size_t count = 0;
  store_.forEach([&](const Label&, const LeafBucket& b, mlight::dht::RingId) {
    if (b.records.empty()) ++count;
  });
  return count;
}

std::size_t MLightIndex::estimateDepthByProbing(std::size_t samples,
                                                std::size_t headroom) {
  std::size_t deepest = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    Point p(config_.dims);
    for (std::size_t d = 0; d < config_.dims; ++d) p[d] = rng_.uniform();
    const Located loc = locateCached(randomPeer(), p);
    deepest = std::max(deepest, edgeDepth(loc.leaf, config_.dims));
  }
  return std::min(config_.maxEdgeDepth, deepest + headroom);
}

std::size_t MLightIndex::treeDepth() const {
  std::size_t depth = 0;
  store_.forEach([&](const Label&, const LeafBucket& b, mlight::dht::RingId) {
    depth = std::max(depth, edgeDepth(b.label, config_.dims));
  });
  return depth;
}

void MLightIndex::checkInvariants() const {
  // Full structural audit over the shared invariant layer
  // (common/invariants.h): Theorem 2/4 bijection, the tiling corollary
  // of Theorem 1/3, and per-bucket record placement.
  const std::size_t m = config_.dims;
  std::vector<std::pair<Label, Label>> leafToKey;
  std::vector<Label> leaves;
  std::size_t totalRecords = 0;
  store_.forEach([&](const Label& key, const LeafBucket& b,
                     mlight::dht::RingId owner) {
    MLIGHT_CHECK(isTreeNodeLabel(b.label, m), "bad leaf label");
    MLIGHT_CHECK(naming(b.label, m) == key, "bucket stored under wrong key");
    MLIGHT_CHECK(owner == store_.ownerOf(key), "bucket on wrong peer");
    mlight::common::auditRecordPlacement(
        labelRegion(b.label, m), b.records,
        [](const Record& r) -> const Point& { return r.key; });
    leafToKey.emplace_back(b.label, key);
    leaves.push_back(b.label);
    totalRecords += b.records.size();
  });
  mlight::common::auditNamingBijection(leafToKey, m);
  mlight::common::auditSpaceTiling(leaves, m + 1);
  MLIGHT_CHECK(totalRecords == size_, "record count drift");
}

}  // namespace mlight::core
