#include "mlight/naming.h"

#include <cassert>

namespace mlight::core {

BitString virtualRootLabel(std::size_t dims) {
  return BitString::repeated(false, dims);
}

BitString rootLabel(std::size_t dims) {
  BitString label = BitString::repeated(false, dims);
  label.pushBack(true);
  return label;
}

bool isTreeNodeLabel(const BitString& label, std::size_t dims) {
  return label.size() >= dims + 1 &&
         rootLabel(dims).isPrefixOf(label);
}

BitString naming(const BitString& label, std::size_t dims) {
  assert(isTreeNodeLabel(label, dims));
  BitString out = label;
  for (;;) {
    const std::size_t i = out.size();
    // 1-based b_i is out.bit(i-1); b_{i-m} is out.bit(i-1-dims).
    const bool same = out.bit(i - 1) == out.bit(i - 1 - dims);
    out.popBack();
    if (!same) return out;
    // The root # always terminates the recursion: its last bit is 1 and
    // b_{i-m} is the leading 0, so `same` is false at length m+1.
    assert(out.size() >= dims + 1);
  }
}

}  // namespace mlight::core
