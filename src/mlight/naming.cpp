#include "mlight/naming.h"

#include <cassert>

namespace mlight::core {

BitString virtualRootLabel(std::size_t dims) {
  return BitString::repeated(false, dims);
}

BitString rootLabel(std::size_t dims) {
  BitString label = BitString::repeated(false, dims);
  label.pushBack(true);
  return label;
}

bool isTreeNodeLabel(const BitString& label, std::size_t dims) {
  return label.size() >= dims + 1 &&
         rootLabel(dims).isPrefixOf(label);
}

std::size_t namedPrefixLength(const BitString& path, std::size_t nodeLen,
                              std::size_t dims) noexcept {
  std::size_t i = nodeLen;
  // 1-based b_i is path.bit(i-1); b_{i-m} is path.bit(i-1-dims).  The
  // recursion only ever inspects bits of the original label, so it runs
  // on the unmodified path — no copy, no popBack chain.
  for (;;) {
    const bool same = path.bit(i - 1) == path.bit(i - 1 - dims);
    if (!same) return i - 1;
    --i;
    // The root # always terminates the recursion: its last bit is 1 and
    // b_{i-m} is the leading 0, so `same` is false at length m+1.
    assert(i >= dims + 1);
  }
}

BitString naming(const BitString& label, std::size_t dims) {
  assert(isTreeNodeLabel(label, dims));
  return label.prefix(namedPrefixLength(label, label.size(), dims));
}

}  // namespace mlight::core
