#include "mlight/split.h"

#include <algorithm>
#include <cassert>

#include "mlight/kdspace.h"
#include "mlight/naming.h"

namespace mlight::core {

namespace {

double sq(double v) noexcept { return v * v; }

/// Recursive core of Algorithm 1 over index subsets (no record copies
/// until materialization).
struct Planner {
  std::span<const Record> records;
  double epsilon;
  std::size_t dims;
  std::size_t maxEdgeDepth;

  struct Node {
    double cost;
    std::vector<std::pair<BitString, std::vector<std::size_t>>> leaves;
  };

  Node run(const BitString& label, const Rect& region,
           std::vector<std::size_t> idx) const {
    const double localCost = sq(static_cast<double>(idx.size()) - epsilon);
    const bool atDepthCap = edgeDepth(label, dims) >= maxEdgeDepth;
    if (static_cast<double>(idx.size()) <= epsilon || atDepthCap) {
      Node n{localCost, {}};
      n.leaves.emplace_back(label, std::move(idx));
      return n;
    }
    const std::size_t dim = splitDimension(edgeDepth(label, dims), dims);
    const double mid = region.mid(dim);
    std::vector<std::size_t> loIdx;
    std::vector<std::size_t> hiIdx;
    for (std::size_t i : idx) {
      (records[i].key[dim] >= mid ? hiIdx : loIdx).push_back(i);
    }
    Node left = run(label.withBack(false), region.halved(dim, false),
                    std::move(loIdx));
    Node right = run(label.withBack(true), region.halved(dim, true),
                     std::move(hiIdx));
    const double splitCost = left.cost + right.cost;
    if (localCost <= splitCost) {
      Node n{localCost, {}};
      n.leaves.emplace_back(label, std::move(idx));
      return n;
    }
    Node n{splitCost, std::move(left.leaves)};
    n.leaves.insert(n.leaves.end(),
                    std::make_move_iterator(right.leaves.begin()),
                    std::make_move_iterator(right.leaves.end()));
    return n;
  }
};

}  // namespace

std::pair<std::vector<Record>, std::vector<Record>> partitionOnce(
    const BitString& label, const Rect& region,
    std::span<const Record> records, std::size_t dims) {
  const std::size_t dim = splitDimension(edgeDepth(label, dims), dims);
  const double mid = region.mid(dim);
  std::vector<Record> lo;
  std::vector<Record> hi;
  for (const Record& r : records) {
    (r.key[dim] >= mid ? hi : lo).push_back(r);
  }
  return {std::move(lo), std::move(hi)};
}

SplitPlan planDataAwareSplit(const BitString& label, const Rect& region,
                             std::span<const Record> records, double epsilon,
                             std::size_t dims, std::size_t maxEdgeDepth) {
  std::vector<std::size_t> idx(records.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  const Planner planner{records, epsilon, dims, maxEdgeDepth};
  Planner::Node node = planner.run(label, region, std::move(idx));

  SplitPlan plan;
  plan.cost = node.cost;
  plan.leaves.reserve(node.leaves.size());
  for (auto& [leafLabel, leafIdx] : node.leaves) {
    PlanLeaf leaf;
    leaf.label = leafLabel;
    leaf.records.reserve(leafIdx.size());
    for (std::size_t i : leafIdx) leaf.records.push_back(records[i]);
    plan.leaves.push_back(std::move(leaf));
  }
  return plan;
}

namespace {

/// Enumerates the total cost of *every* split subtree rooted at the node
/// (independently of the DP in planDataAwareSplit, which only propagates
/// minima): each subtree either keeps the node as a leaf or splits it and
/// combines any pair of left/right subtree costs.
std::vector<double> allSubtreeCosts(const BitString& label,
                                    const Rect& region,
                                    std::span<const Record> records,
                                    double epsilon, std::size_t dims,
                                    std::size_t maxEdgeDepth) {
  std::vector<Record> owned(records.begin(), records.end());
  std::vector<double> costs{sq(static_cast<double>(owned.size()) - epsilon)};
  if (edgeDepth(label, dims) >= maxEdgeDepth ||
      static_cast<double>(owned.size()) <= epsilon) {
    return costs;
  }
  auto [lo, hi] = partitionOnce(label, region, owned, dims);
  const std::size_t dim = splitDimension(edgeDepth(label, dims), dims);
  const auto leftCosts =
      allSubtreeCosts(label.withBack(false), region.halved(dim, false), lo,
                      epsilon, dims, maxEdgeDepth);
  const auto rightCosts =
      allSubtreeCosts(label.withBack(true), region.halved(dim, true), hi,
                      epsilon, dims, maxEdgeDepth);
  for (double l : leftCosts) {
    for (double r : rightCosts) costs.push_back(l + r);
  }
  return costs;
}

}  // namespace

double bruteForceSplitCost(const BitString& label, const Rect& region,
                           std::span<const Record> records, double epsilon,
                           std::size_t dims, std::size_t maxEdgeDepth) {
  const auto costs = allSubtreeCosts(label, region, records, epsilon, dims,
                                     maxEdgeDepth);
  return *std::min_element(costs.begin(), costs.end());
}

}  // namespace mlight::core
