#include "mlight/split.h"

#include <algorithm>
#include <cassert>

#include "mlight/kdspace.h"
#include "mlight/naming.h"

namespace mlight::core {

namespace {

double sq(double v) noexcept { return v * v; }

/// Recursive core of Algorithm 1 over index subsets (no record copies
/// until materialization).
struct Planner {
  std::span<const Record> records;
  double epsilon;
  std::size_t dims;
  std::size_t maxEdgeDepth;

  struct Node {
    double cost;
    std::vector<std::pair<BitString, std::vector<std::size_t>>> leaves;
  };

  /// `label` is a scratch string mutated in place down the recursion
  /// (pushBack on descent, popBack on return) — the DP explores O(2^D)
  /// nodes and a per-node label copy dominated its runtime; only
  /// materialized leaves copy the label.
  Node run(BitString& label, const Rect& region,
           std::vector<std::size_t> idx) const {
    const double localCost = sq(static_cast<double>(idx.size()) - epsilon);
    const bool atDepthCap = edgeDepth(label, dims) >= maxEdgeDepth;
    if (static_cast<double>(idx.size()) <= epsilon || atDepthCap) {
      Node n{localCost, {}};
      n.leaves.emplace_back(label, std::move(idx));
      return n;
    }
    const std::size_t dim = splitDimension(edgeDepth(label, dims), dims);
    const double mid = region.mid(dim);
    std::vector<std::size_t> loIdx;
    std::vector<std::size_t> hiIdx;
    for (std::size_t i : idx) {
      (records[i].key[dim] >= mid ? hiIdx : loIdx).push_back(i);
    }
    label.pushBack(false);
    Node left = run(label, region.halved(dim, false), std::move(loIdx));
    label.flipBack();
    Node right = run(label, region.halved(dim, true), std::move(hiIdx));
    label.popBack();
    const double splitCost = left.cost + right.cost;
    if (localCost <= splitCost) {
      Node n{localCost, {}};
      n.leaves.emplace_back(label, std::move(idx));
      return n;
    }
    Node n{splitCost, std::move(left.leaves)};
    n.leaves.insert(n.leaves.end(),
                    std::make_move_iterator(right.leaves.begin()),
                    std::make_move_iterator(right.leaves.end()));
    return n;
  }
};

}  // namespace

std::pair<std::vector<Record>, std::vector<Record>> partitionOnce(
    const BitString& label, const Rect& region,
    std::span<const Record> records, std::size_t dims) {
  const std::size_t dim = splitDimension(edgeDepth(label, dims), dims);
  const double mid = region.mid(dim);
  std::vector<Record> lo;
  std::vector<Record> hi;
  for (const Record& r : records) {
    (r.key[dim] >= mid ? hi : lo).push_back(r);
  }
  return {std::move(lo), std::move(hi)};
}

SplitPlan planDataAwareSplit(const BitString& label, const Rect& region,
                             std::span<const Record> records, double epsilon,
                             std::size_t dims, std::size_t maxEdgeDepth) {
  std::vector<std::size_t> idx(records.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  const Planner planner{records, epsilon, dims, maxEdgeDepth};
  BitString scratch = label;
  Planner::Node node = planner.run(scratch, region, std::move(idx));
  assert(scratch == label && "planner must restore its scratch label");

  SplitPlan plan;
  plan.cost = node.cost;
  plan.leaves.reserve(node.leaves.size());
  for (auto& [leafLabel, leafIdx] : node.leaves) {
    PlanLeaf leaf;
    leaf.label = leafLabel;
    leaf.records.reserve(leafIdx.size());
    for (std::size_t i : leafIdx) leaf.records.push_back(records[i]);
    plan.leaves.push_back(std::move(leaf));
  }
  return plan;
}

namespace {

/// Enumerates the total cost of *every* split subtree rooted at the node
/// (independently of the DP in planDataAwareSplit, which only propagates
/// minima): each subtree either keeps the node as a leaf or splits it and
/// combines any pair of left/right subtree costs.
std::vector<double> allSubtreeCosts(const BitString& label,
                                    const Rect& region,
                                    std::span<const Record> records,
                                    double epsilon, std::size_t dims,
                                    std::size_t maxEdgeDepth) {
  std::vector<Record> owned(records.begin(), records.end());
  std::vector<double> costs{sq(static_cast<double>(owned.size()) - epsilon)};
  if (edgeDepth(label, dims) >= maxEdgeDepth ||
      static_cast<double>(owned.size()) <= epsilon) {
    return costs;
  }
  auto [lo, hi] = partitionOnce(label, region, owned, dims);
  const std::size_t dim = splitDimension(edgeDepth(label, dims), dims);
  const auto leftCosts =
      allSubtreeCosts(label.withBack(false), region.halved(dim, false), lo,
                      epsilon, dims, maxEdgeDepth);
  const auto rightCosts =
      allSubtreeCosts(label.withBack(true), region.halved(dim, true), hi,
                      epsilon, dims, maxEdgeDepth);
  for (double l : leftCosts) {
    for (double r : rightCosts) costs.push_back(l + r);
  }
  return costs;
}

}  // namespace

double bruteForceSplitCost(const BitString& label, const Rect& region,
                           std::span<const Record> records, double epsilon,
                           std::size_t dims, std::size_t maxEdgeDepth) {
  const auto costs = allSubtreeCosts(label, region, records, epsilon, dims,
                                     maxEdgeDepth);
  return *std::min_element(costs.begin(), costs.end());
}

}  // namespace mlight::core
