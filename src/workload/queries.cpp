#include "workload/queries.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace mlight::workload {

std::vector<mlight::common::Rect> uniformRangeQueries(std::size_t count,
                                                      std::size_t dims,
                                                      double span,
                                                      std::uint64_t seed) {
  using mlight::common::Point;
  using mlight::common::Rect;
  mlight::common::Rng rng(seed);
  const double side =
      span <= 0.0 ? 1e-6
                  : std::pow(span, 1.0 / static_cast<double>(dims));
  std::vector<Rect> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Point lo(dims);
    Point hi(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      const double start = rng.uniform() * std::max(0.0, 1.0 - side);
      lo[d] = start;
      hi[d] = std::min(1.0, start + side);
    }
    out.emplace_back(lo, hi);
  }
  return out;
}

}  // namespace mlight::workload
