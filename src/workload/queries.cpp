#include "workload/queries.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace mlight::workload {

std::vector<mlight::common::Rect> uniformRangeQueries(std::size_t count,
                                                      std::size_t dims,
                                                      double span,
                                                      std::uint64_t seed) {
  using mlight::common::Point;
  using mlight::common::Rect;
  mlight::common::Rng rng(seed);
  const double side =
      span <= 0.0 ? 1e-6
                  : std::pow(span, 1.0 / static_cast<double>(dims));
  std::vector<Rect> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Point lo(dims);
    Point hi(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      const double start = rng.uniform() * std::max(0.0, 1.0 - side);
      lo[d] = start;
      hi[d] = std::min(1.0, start + side);
    }
    out.emplace_back(lo, hi);
  }
  return out;
}

std::vector<std::size_t> zipfIndices(std::size_t count, std::size_t n,
                                     double theta, std::uint64_t seed) {
  std::vector<std::size_t> out;
  out.reserve(count);
  if (n == 0) return out;
  std::vector<double> cdf(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf[i] = sum;
  }
  mlight::common::Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const double u = rng.uniform() * sum;
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
    out.push_back(std::min<std::size_t>(
        static_cast<std::size_t>(it - cdf.begin()), n - 1));
  }
  return out;
}

}  // namespace mlight::workload
