// Dataset generators.
//
// The paper evaluates on a real dataset of 123,593 postal addresses in the
// New York / Philadelphia / Boston metropolitan areas, normalized to
// [0,1] per dimension (rtreeportal.org's NE dataset — not redistributable
// here).  northeastDataset() is our synthetic stand-in: the same record
// count, three dense Gaussian metro clusters plus sparse background, so
// the skew that drives split behaviour, load imbalance and query costs is
// preserved.  All generators are deterministic in their seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "index/record.h"

namespace mlight::workload {

using mlight::index::Record;

/// Number of points in the paper's NE dataset.
inline constexpr std::size_t kNortheastSize = 123593;

/// Synthetic NE: 2-D, three Gaussian metro clusters (NY/Philadelphia/
/// Boston analogues) over a sparse uniform background, coordinates in
/// [0,1).  Payloads are short address-like strings.
std::vector<Record> northeastDataset(std::size_t count, std::uint64_t seed);

/// Uniform points in [0,1)^dims.
std::vector<Record> uniformDataset(std::size_t count, std::size_t dims,
                                   std::uint64_t seed);

/// `clusters` Gaussian blobs with the given standard deviation, centers
/// uniform in [0.15, 0.85]^dims, plus 10% uniform background.
std::vector<Record> clusteredDataset(std::size_t count, std::size_t dims,
                                     std::size_t clusters, double stddev,
                                     std::uint64_t seed);

/// Loads points from a whitespace/comma-separated text file (one point
/// per line, `dims` leading numeric columns; extra columns and lines
/// starting with '#' are ignored).  Coordinates are min-max normalized
/// into [0,1)^dims, as the paper does with the real NE dataset ("along
/// each dimension, we normalized the data points into the range
/// [0,1]").  Use this to run the benches on the actual rtreeportal.org
/// NE file when it is available:
///   ./build/bench/fig5_maintenance --dataset /path/to/NE.txt
/// Throws std::runtime_error on unreadable files or < 2 valid points.
std::vector<Record> loadPointsFile(const std::string& path,
                                   std::size_t dims);

}  // namespace mlight::workload
