// Range-query workload generator.
//
// §7.4: "the queried ranges are rectangles uniformly distributed in the
// data space", swept by *range span*, which the paper defines as the area
// of the rectangle.  We generate axis-aligned squares of the requested
// area whose position is uniform among placements fully inside [0,1]^m.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace mlight::workload {

/// `count` square ranges of area `span` (side = span^(1/dims)), uniformly
/// placed inside the unit cube.  span = 0 yields degenerate point-sized
/// boxes of side 1e-6.
std::vector<mlight::common::Rect> uniformRangeQueries(std::size_t count,
                                                      std::size_t dims,
                                                      double span,
                                                      std::uint64_t seed);

/// `count` indices in [0, n) drawn from a Zipf(theta) distribution:
/// P(rank i) proportional to 1/(i+1)^theta.  theta = 0 degenerates to
/// uniform; larger theta concentrates draws on low ranks, which is the
/// standard skewed-access model for hotspot benchmarks.  Sampling is by
/// binary search over the precomputed CDF, so generation is O(n + count
/// log n) and fully deterministic in `seed`.
std::vector<std::size_t> zipfIndices(std::size_t count, std::size_t n,
                                     double theta, std::uint64_t seed);

}  // namespace mlight::workload
