#include "workload/datasets.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"

namespace mlight::workload {

namespace {

using mlight::common::Point;
using mlight::common::Rng;

/// Draws a coordinate from N(mean, stddev) restricted to [0,1).
double clampedGaussian(Rng& rng, double mean, double stddev) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double v = rng.gaussian(mean, stddev);
    if (v >= 0.0 && v < 1.0) return v;
  }
  return std::clamp(rng.uniform(), 0.0, 0.999999);
}

Record makeRecord(Point key, std::uint64_t id, const char* prefix) {
  Record r;
  r.key = key;
  r.id = id;
  r.payload = std::string(prefix) + std::to_string(id);
  return r;
}

}  // namespace

std::vector<Record> northeastDataset(std::size_t count, std::uint64_t seed) {
  // Skew modelled on the NE postal dataset, which clusters at two scales:
  // metropolitan areas (New York dominating, then Philadelphia and
  // Boston) and, within each metro, towns/street grids that are far
  // tighter than the metro spread.  The hierarchical mixture reproduces
  // the deep, locally dense kd-subtrees real address data induces.
  struct Metro {
    double x, y, sx, sy, weight;
    std::size_t towns;
  };
  static constexpr Metro kMetros[] = {
      {0.35, 0.45, 0.050, 0.065, 0.45, 60},  // New York analogue
      {0.18, 0.22, 0.045, 0.040, 0.22, 35},  // Philadelphia analogue
      {0.72, 0.78, 0.040, 0.045, 0.23, 35},  // Boston analogue
  };
  Rng rng(seed);
  struct Town {
    double x, y, s;
  };
  std::vector<std::vector<Town>> towns;
  for (const Metro& m : kMetros) {
    std::vector<Town> list;
    list.reserve(m.towns);
    for (std::size_t t = 0; t < m.towns; ++t) {
      Town town;
      town.x = clampedGaussian(rng, m.x, m.sx);
      town.y = clampedGaussian(rng, m.y, m.sy);
      // Street-grid scale: a few blocks wide.
      town.s = 0.002 + 0.010 * rng.uniform();
      list.push_back(town);
    }
    towns.push_back(std::move(list));
  }
  std::vector<Record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double pick = rng.uniform();
    double acc = 0.0;
    const Metro* metro = nullptr;
    std::size_t metroIdx = 0;
    for (std::size_t mi = 0; mi < std::size(kMetros); ++mi) {
      acc += kMetros[mi].weight;
      if (pick < acc) {
        metro = &kMetros[mi];
        metroIdx = mi;
        break;
      }
    }
    Point p(2);
    if (metro != nullptr) {
      const Town& town = towns[metroIdx][rng.below(metro->towns)];
      p[0] = clampedGaussian(rng, town.x, town.s);
      p[1] = clampedGaussian(rng, town.y, town.s);
    } else {
      p[0] = rng.uniform();
      p[1] = rng.uniform();
    }
    out.push_back(makeRecord(p, i, "addr-"));
  }
  return out;
}

std::vector<Record> uniformDataset(std::size_t count, std::size_t dims,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Point p(dims);
    for (std::size_t d = 0; d < dims; ++d) p[d] = rng.uniform();
    out.push_back(makeRecord(p, i, "u-"));
  }
  return out;
}

std::vector<Record> clusteredDataset(std::size_t count, std::size_t dims,
                                     std::size_t clusters, double stddev,
                                     std::uint64_t seed) {
  assert(clusters >= 1);
  Rng rng(seed);
  std::vector<Point> centers;
  centers.reserve(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    Point center(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      center[d] = rng.uniform(0.15, 0.85);
    }
    centers.push_back(center);
  }
  std::vector<Record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Point p(dims);
    if (rng.chance(0.1)) {
      for (std::size_t d = 0; d < dims; ++d) p[d] = rng.uniform();
    } else {
      const Point& center = centers[rng.below(clusters)];
      for (std::size_t d = 0; d < dims; ++d) {
        p[d] = clampedGaussian(rng, center[d], stddev);
      }
    }
    out.push_back(makeRecord(p, i, "c-"));
  }
  return out;
}

std::vector<Record> loadPointsFile(const std::string& path,
                                   std::size_t dims) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("loadPointsFile: cannot open " + path);
  }
  std::vector<std::vector<double>> raw;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    for (char& c : line) {
      if (c == ',' || c == ';' || c == '\t') c = ' ';
    }
    std::istringstream fields(line);
    std::vector<double> coords(dims);
    bool ok = true;
    for (std::size_t d = 0; d < dims; ++d) {
      if (!(fields >> coords[d])) {
        ok = false;
        break;
      }
    }
    if (ok) raw.push_back(std::move(coords));
  }
  if (raw.size() < 2) {
    throw std::runtime_error("loadPointsFile: fewer than 2 valid points in " +
                             path);
  }
  // Min-max normalize each dimension into [0, 1).
  std::vector<double> lo(dims, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dims, -std::numeric_limits<double>::infinity());
  for (const auto& coords : raw) {
    for (std::size_t d = 0; d < dims; ++d) {
      lo[d] = std::min(lo[d], coords[d]);
      hi[d] = std::max(hi[d], coords[d]);
    }
  }
  std::vector<Record> out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    Point p(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      const double span = hi[d] - lo[d];
      const double unit = span > 0 ? (raw[i][d] - lo[d]) / span : 0.0;
      p[d] = std::min(unit, 0.999999999);
    }
    out.push_back(makeRecord(p, i, "file-"));
  }
  return out;
}

}  // namespace mlight::workload
