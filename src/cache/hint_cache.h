// Lookup-hint caching for over-DHT indexes.
//
// m-LIGHT's point lookup pays ~ceil(log2 D) sequential DHT-lookups (the
// §5 binary search over label prefixes) on every operation, yet the tree
// depth along a client's hot region barely moves between queries.  A
// LabelHintCache remembers, per initiating peer, the last observed leaf
// label (and its local tree depth) for every cell the peer has touched,
// so the next lookup of a covered point issues a single direct probe and
// only falls back to a *seeded* binary search when the probe discovers
// the hint went stale (a split or merge moved the leaf).
//
// Design rules:
//  * hints are advisory, never authoritative — staleness is detected at
//    the probed owner (the bucket found there is off the point's path,
//    or no bucket is stored under the key any more) and repaired in
//    place by the regular search seeded from the hint's depth.  There is
//    no invalidation protocol to get wrong under churn; a stale hint
//    costs O(log Δdepth) extra probes, never a wrong answer;
//  * the cache is bounded (LRU, per-dimension capacity) so a client
//    scanning the whole space cannot grow memory without limit;
//  * hints serialize through the shared serde layer: the hint-probe RPC
//    carries the tested hint on the wire so the owner-side verdict works
//    from the wire copy like every other handler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/bitstring.h"
#include "common/digest.h"
#include "common/serde.h"

namespace mlight::cache {

/// One cached resolution: the leaf label last seen covering a cell plus
/// the local tree depth observed with it.  `depth` is the index's own
/// depth notion (edge depth for m-LIGHT labels, prefix length for PHT
/// tries) — the cache never interprets it, it only stores and ships it.
struct LabelHint {
  mlight::common::BitString leaf;
  std::uint32_t depth = 0;
  /// Read-replica routing info for the leaf (query-load balancing,
  /// docs/COST_MODEL.md "Query-load balancing"): the DHT placement salts
  /// of every copy-holder, parallel to a coarse load signal per holder
  /// observed when the hint was learned.  Empty for unboosted leaves —
  /// and the wire image of an empty set is byte-identical to the
  /// pre-replica hint format, so balancing-off traffic is unchanged.
  std::vector<std::uint32_t> replicaSalts;
  std::vector<std::uint32_t> replicaLoads;

  std::size_t wireSize() const noexcept {
    return 4 + 8 * ((leaf.size() + 63) / 64) + 4 +
           (replicaSalts.empty() ? 0 : 4 + 8 * replicaSalts.size());
  }
  void serialize(mlight::common::Writer& w) const {
    w.writeBitString(leaf);
    w.writeU32(depth);
    if (!replicaSalts.empty()) {
      w.writeU32(static_cast<std::uint32_t>(replicaSalts.size()));
      for (std::size_t i = 0; i < replicaSalts.size(); ++i) {
        w.writeU32(replicaSalts[i]);
        w.writeU32(i < replicaLoads.size() ? replicaLoads[i] : 0);
      }
    }
  }
  /// The replica block is optional-by-presence: a hint is always the
  /// last field of its enclosing frame, so "more bytes remain" means the
  /// block was written.
  static LabelHint deserialize(mlight::common::Reader& r) {
    LabelHint h;
    h.leaf = r.readBitString();
    h.depth = r.readU32();
    if (!r.atEnd()) {
      const std::uint32_t n = r.readU32();
      h.replicaSalts.reserve(n);
      h.replicaLoads.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        h.replicaSalts.push_back(r.readU32());
        h.replicaLoads.push_back(r.readU32());
      }
    }
    return h;
  }
};

/// Reads the MLIGHT_CACHE environment variable: "0" / "off" / "false"
/// disable, "1" / "on" / "true" / "yes" enable, unset/empty falls back —
/// how CI runs whole suites cache-on without touching code.  Any other
/// value throws common::CheckFailure (same contract as
/// dht::faultSeedFromEnv) instead of silently enabling the cache.
bool cacheEnabledFromEnv(bool fallback = false);

/// Cache knobs shared by every index backend.  Off by default (the
/// cache-off path must stay bit-identical to a build without the cache
/// subsystem — goldens, replay suites) unless MLIGHT_CACHE turns whole
/// runs on from the environment.
struct CachePolicy {
  bool enabled = cacheEnabledFromEnv(false);
  /// LRU bound per data dimension: a cache holds at most
  /// perDimCapacity * dims hints (deeper trees in higher dimensions get
  /// proportionally more room).
  std::size_t perDimCapacity = 1024;
};

/// Bounded LRU of LabelHints keyed by the observed leaf label.
///
/// Lookup is by *coverage*: findCovering(fullPath) returns the deepest
/// cached hint whose leaf label is a prefix of the query point's full
/// path label.  Cells are fixed geometry, so a covering label observed
/// for any point of the cell stays on the path of every point of the
/// cell forever — only its leaf-ness can go stale.  The walk probes
/// candidate prefix lengths deepest-first, skipping lengths for which
/// the cache holds no hint at all (a per-length occupancy count), so a
/// miss costs O(distinct hint lengths), not O(path length) hash lookups.
class LabelHintCache {
 public:
  using Label = mlight::common::BitString;

  LabelHintCache(std::size_t dims, const CachePolicy& policy)
      : capacity_(policy.perDimCapacity * dims) {}

  std::size_t size() const noexcept { return lru_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Deepest cached hint covering `fullPath` (nullptr on miss).  Touches
  /// the hint's LRU position.  The pointer is invalidated by the next
  /// learn/forget call — callers copy the hint before repairing.
  const LabelHint* findCovering(const Label& fullPath);

  /// Records (or refreshes) the hint for `leaf`; evicts the
  /// least-recently-used hint when full.  `replicaSalts`/`replicaLoads`
  /// attach read-replica routing info (empty = none; a refresh
  /// overwrites the stored set, so demoted leaves shed their replica
  /// block on the next learn).  Returns true when an LRU victim was
  /// evicted to make room — callers meter that through
  /// dht::Network::noteHintEviction so cache pressure shows up in
  /// CostMeter::hintEvictions.
  bool learn(const Label& leaf, std::uint32_t depth,
             std::vector<std::uint32_t> replicaSalts = {},
             std::vector<std::uint32_t> replicaLoads = {});

  /// Drops the hint for `leaf`, if cached.  Called on stale detection:
  /// a repaired lookup must forget the old leaf before learning the new
  /// one, or a dead deeper label would keep shadowing the live shallower
  /// one in findCovering after a merge.
  void forget(const Label& leaf);

  /// Test hook: inject a hint verbatim (poisoned-hint negative tests).
  void poison(const Label& leaf, std::uint32_t depth) { learn(leaf, depth); }

  /// Feeds the cached hints *in LRU order* into `d`.  Recency order is
  /// part of the fingerprint on purpose: it decides future evictions and
  /// therefore future cache-hit traffic, so two runs that are
  /// digest-equal here will also meter identically from now on.
  void digestState(mlight::common::Digest& d) const {
    d.feed(lru_.size());
    for (const LabelHint& h : lru_) {
      d.feed(h.leaf);
      d.feed(h.depth);
      d.feed(h.replicaSalts.size());
      for (const std::uint32_t s : h.replicaSalts) d.feed(s);
      for (const std::uint32_t l : h.replicaLoads) d.feed(l);
    }
  }

 private:
  std::size_t capacity_;
  /// Most-recently-used at the front.
  std::list<LabelHint> lru_;
  std::unordered_map<Label, std::list<LabelHint>::iterator,
                     mlight::common::BitStringHash>
      byLeaf_;
  /// lengthCount_[len] = number of cached hints with leaf.size() == len.
  std::vector<std::uint32_t> lengthCount_;

  void bumpLength(std::size_t len);
  void dropLength(std::size_t len);
};

/// Per-peer hint caches: hints belong to the *initiating* peer of the
/// query that observed them (a client-side cache — what a deployed node
/// would keep next to its DHT routing table).  Keyed by raw ring
/// position value so this layer stays independent of the dht module.
class HintCacheSet {
 public:
  HintCacheSet(std::size_t dims, CachePolicy policy)
      : dims_(dims), policy_(policy) {}

  const CachePolicy& policy() const noexcept { return policy_; }
  bool enabled() const noexcept { return policy_.enabled; }

  LabelHintCache& forPeer(std::uint64_t peer) {
    auto it = caches_.find(peer);
    if (it == caches_.end()) {
      it = caches_.emplace(peer, LabelHintCache(dims_, policy_)).first;
    }
    return it->second;
  }

  /// Total hints cached across all peers (introspection).
  std::size_t totalHints() const noexcept {
    std::size_t n = 0;
    // DET-ALLOW(commutative sum of sizes; feeds introspection only)
    for (const auto& [peer, cache] : caches_) n += cache.size();
    return n;
  }
  std::size_t peerCount() const noexcept { return caches_.size(); }

  /// Digests every peer's cache in ascending peer order (sorted
  /// snapshot; see LabelHintCache::digestState for why LRU order is
  /// included).
  void digestState(mlight::common::Digest& d) const {
    d.feed(caches_.size());
    for (const std::uint64_t peer : mlight::common::sortedKeys(caches_)) {
      d.feed(peer);
      caches_.find(peer)->second.digestState(d);
    }
  }

 private:
  std::size_t dims_;
  CachePolicy policy_;
  std::unordered_map<std::uint64_t, LabelHintCache> caches_;
};

}  // namespace mlight::cache
