#include "cache/hint_cache.h"

#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace mlight::cache {

bool cacheEnabledFromEnv(bool fallback) {
  const char* env = std::getenv("MLIGHT_CACHE");
  if (env == nullptr || *env == '\0') return fallback;
  if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
      std::strcmp(env, "false") == 0) {
    return false;
  }
  if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
      std::strcmp(env, "true") == 0 || std::strcmp(env, "yes") == 0) {
    return true;
  }
  // "enabl" / "offf" / " 1" used to silently *enable* — the worst
  // possible reading of a typo in a knob whose off-path must stay
  // bit-identical to a cacheless build.  Fail loudly instead (same
  // contract as dht::faultSeedFromEnv).
  MLIGHT_CHECK(false,
               "MLIGHT_CACHE must be one of 0/off/false/1/on/true/yes");
  return fallback;  // unreachable; keeps -Werror=return-type happy
}

const LabelHint* LabelHintCache::findCovering(const Label& fullPath) {
  // Deepest-first over the lengths that are actually populated: the
  // deepest covering hint is the one whose direct probe skips the most
  // binary-search levels, and after a merge it is the one whose
  // staleness we want to detect (and forget) rather than silently
  // shadow with an ancestor.
  const std::size_t maxLen =
      std::min(fullPath.size() + 1, lengthCount_.size());
  for (std::size_t len = maxLen; len-- > 0;) {
    if (lengthCount_[len] == 0) continue;
    auto it = byLeaf_.find(fullPath.prefix(len));
    if (it == byLeaf_.end()) continue;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &*it->second;
  }
  return nullptr;
}

bool LabelHintCache::learn(const Label& leaf, std::uint32_t depth,
                           std::vector<std::uint32_t> replicaSalts,
                           std::vector<std::uint32_t> replicaLoads) {
  if (capacity_ == 0) return false;
  auto it = byLeaf_.find(leaf);
  if (it != byLeaf_.end()) {
    it->second->depth = depth;
    it->second->replicaSalts = std::move(replicaSalts);
    it->second->replicaLoads = std::move(replicaLoads);
    lru_.splice(lru_.begin(), lru_, it->second);
    return false;
  }
  bool evicted = false;
  if (lru_.size() >= capacity_) {
    const LabelHint& victim = lru_.back();
    dropLength(victim.leaf.size());
    byLeaf_.erase(victim.leaf);
    lru_.pop_back();
    evicted = true;
  }
  lru_.push_front(
      LabelHint{leaf, depth, std::move(replicaSalts), std::move(replicaLoads)});
  byLeaf_.emplace(leaf, lru_.begin());
  bumpLength(leaf.size());
  return evicted;
}

void LabelHintCache::forget(const Label& leaf) {
  auto it = byLeaf_.find(leaf);
  if (it == byLeaf_.end()) return;
  dropLength(leaf.size());
  lru_.erase(it->second);
  byLeaf_.erase(it);
}

void LabelHintCache::bumpLength(std::size_t len) {
  if (len >= lengthCount_.size()) lengthCount_.resize(len + 1, 0);
  ++lengthCount_[len];
}

void LabelHintCache::dropLength(std::size_t len) {
  --lengthCount_[len];
}

}  // namespace mlight::cache
