// Discrete-event simulation core for the DHT overlay.
//
// The paper's latency metric is *rounds of DHT-lookups* executed by real
// peers exchanging real messages over Bamboo.  Instead of computing that
// analytically per forwarding wave, the Network schedules every RPC as a
// timestamped delivery on this scheduler and the timeline — clock
// advances, per-peer send-queue serialization, parallel link overlap —
// emerges from execution.  Indexes pump the loop to completion via the
// synchronous facade.
//
// Determinism contract: events fire in (time, sequence) order, where the
// sequence number is assigned at schedule time.  Two runs that schedule
// the same callbacks at the same times execute them in the same order,
// which is what makes whole-workload replay byte-exact (see
// tests/integration/replay_test.cpp).
//
// Schedule perturbation (determinism certification): the contract above
// also says that *no simulation-visible state may depend on the relative
// order of same-time events* — only the (commutative) union of their
// effects.  MLIGHT_SCHED_SHUFFLE_SEED (or setTieShuffleSeed) replaces
// the same-time tie-break with a seeded pseudo-random permutation of the
// sequence numbers: the timeline stays a deterministic pure function of
// (workload, shuffle seed), but same-time ties deliver in a different —
// still fixed — order.  State digests (common/digest.h) must be
// bit-identical across shuffle seeds; tests/determinism/ enforces it.
// Seed 0 (the default) disables the shuffle and is byte-identical to a
// build without this mechanism.
//
// Sharded execution (MLIGHT_SIM_SHARDS / setShardCount): peers are
// partitioned into N shards and each shard owns a local (time, tie, seq)
// ordered queue.  run() becomes a conservative time-window executor:
// it picks the globally earliest pending time T, opens the window
// [T, T+Δ) (Δ = the lookahead installed via setLookaheadMs, normally the
// latency model's minimum link latency), and lets one worker thread per
// shard drain its own queue up to the window end — running each event's
// *prep* stage (wire decode, a pure function of bytes fixed at schedule
// time) in parallel.  At the window barrier the shard batches are merged
// in the canonical global (time, tie, seq) order and *applied* one by
// one on the coordinator thread.  Events scheduled during application
// (every handler runs during application) are posted to the owning
// shard's queue — the mailbox — and the executor re-checks the queue
// fronts before every apply, so a late event that sorts before the next
// batched one runs first, exactly as it would have serially.
//
// Because the sequence counter is only ever advanced on the coordinator
// (scheduling happens at issue time or inside applied handlers, never in
// a prep worker), the global (time, tie, seq) apply order is the *same
// total order for every shard count* — N=1 and N=8 are bit-identical,
// not merely digest-equal.  The digest-equality matrix in
// tests/determinism/ certifies the observable half of that claim; the
// DET-E lint rule (scripts/lint_determinism.py) guards the structural
// half (no cross-shard shared mutable state reachable from handler
// code outside this mailbox protocol).  See docs/THEORY.md,
// "Sharded execution model".
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

namespace mlight::dht {

/// Monotonic simulated clock (milliseconds).  Time only moves forward:
/// delivering an event stamped earlier than `now` runs it at `now`.
class SimClock {
 public:
  double now() const noexcept { return now_; }
  void advanceTo(double t) noexcept { now_ = std::max(now_, t); }

 private:
  double now_ = 0.0;
};

/// Priority event queue + clock.  The apply path is single-threaded by
/// contract (the coordinator); only the window prep phase fans out to
/// shard workers, and those never touch simulation state.
/// Reads `MLIGHT_SCHED_SHUFFLE_SEED` from the environment (strict
/// decimal), falling back to `fallback` (0 = shuffle off) when
/// unset/empty — how the determinism CI job perturbs every scheduler in
/// a test binary without touching code.  Malformed values throw
/// common::CheckFailure (same contract as dht::faultSeedFromEnv) instead
/// of silently running the unshuffled schedule.
std::uint64_t schedShuffleSeedFromEnv(std::uint64_t fallback = 0);

/// Reads `MLIGHT_SIM_SHARDS` from the environment (strict decimal,
/// clamped to [1, 64]), falling back to `fallback` when unset/empty —
/// how CI runs the whole suite under the sharded executor without
/// touching code.  Malformed values and 0 throw common::CheckFailure
/// instead of silently running the serial executor.
std::size_t simShardsFromEnv(std::size_t fallback = 1);

class SimScheduler {
 public:
  using Fn = std::function<void()>;
  /// Window prep stage: runs on the owning shard's worker thread during
  /// the parallel phase of a window.  Must be a pure function of state
  /// fixed at schedule time (e.g. decoding an immutable wire image into
  /// a per-event staging area) — it must not read or write any
  /// simulation-visible state shared with another shard.
  using PrepFn = std::function<void()>;

  SimScheduler()
      : shardHeaps_(1), shuffleSeed_(schedShuffleSeedFromEnv()), batches_(1) {}
  ~SimScheduler() { stopWorkers(); }

  SimScheduler(const SimScheduler&) = delete;
  SimScheduler& operator=(const SimScheduler&) = delete;

  double now() const noexcept { return clock_.now(); }

  /// Installs the same-time tie-break shuffle seed (0 = off, the
  /// default order: ties fire in schedule order).  Only affects events
  /// scheduled after the call; tests install it on a quiet scheduler.
  void setTieShuffleSeed(std::uint64_t seed) noexcept { shuffleSeed_ = seed; }
  std::uint64_t tieShuffleSeed() const noexcept { return shuffleSeed_; }

  /// Deliveries where another live event with the same timestamp was
  /// still pending — ties the shuffle could genuinely reorder (same-time
  /// events in a causal chain never coexist in the heap and don't
  /// count).  A perturbation test asserts this is nonzero for its
  /// workload, otherwise shuffling proved nothing.
  std::uint64_t tieDeliveries() const noexcept { return tieDeliveries_; }

  // --- Sharding ---------------------------------------------------------

  /// Partitions the event queue into `n` shards (1 = the serial
  /// executor, the default) and spawns one prep worker thread per extra
  /// shard.  Call on a quiet scheduler, before traffic; the Network
  /// forwards MLIGHT_SIM_SHARDS here and maps peers to shards.
  void setShardCount(std::size_t n);
  std::size_t shardCount() const noexcept { return shardHeaps_.size(); }

  /// Conservative window width Δ for the sharded executor (ms); the
  /// Network installs its latency model's minimum link latency.  Values
  /// <= 0 fall back to 1 ms.  Any positive Δ is *correct* (apply order
  /// is globally merged regardless); Δ only controls how much prep work
  /// a window can batch.
  void setLookaheadMs(double delta) noexcept {
    lookaheadMs_ = delta > 0.0 ? delta : 1.0;
  }
  double lookaheadMs() const noexcept { return lookaheadMs_; }

  /// Schedules `fn` to run at simulated time `at` (clamped to `now`) on
  /// shard 0.  Returns the event's sequence number (global issue order).
  ///
  /// Event nodes live in reused vector-backed heaps, so scheduling is
  /// allocation-free once a heap has grown — *provided the closure
  /// fits std::function's inline buffer* (two pointers on libstdc++).
  /// Hot paths keep to that budget by parking their per-event state in
  /// pooled slots and capturing only an owner pointer plus a slot index
  /// (see Network's delivery slots); cold paths (fault injection) may
  /// capture freely.
  std::uint64_t schedule(double at, Fn fn) {
    return scheduleOn(0, at, std::move(fn), nullptr);
  }

  /// Shard-aware schedule: the event executes at a peer owned by shard
  /// `shard` (the mailbox post).  `prep` optionally stages decode work
  /// for the parallel window phase; it may be dropped (never run) when
  /// the event fires before a window batches it, so correctness must
  /// not depend on it running.
  std::uint64_t scheduleOn(std::uint32_t shard, double at, Fn fn,
                           PrepFn prep = nullptr);

  /// Delivers the next event in global (time, tie, seq) order, advancing
  /// the clock to its timestamp.  Returns false when the queue is empty.
  bool runOne();

  /// Cancels a still-pending event by its sequence number.  A cancelled
  /// event is discarded when it surfaces — it neither runs nor advances
  /// the clock, so cancelling an RPC timeout after an early delivery
  /// leaves the timeline exactly as if the timeout never existed.
  /// Precondition: `seq` is pending (the fault layer only cancels
  /// timeouts it knows have not fired).
  void cancel(std::uint64_t seq) { cancelled_.insert(seq); }

  /// Pumps the queue dry.  Re-entrant: a callback may itself call run()
  /// (the synchronous store facade does) — the inner call drains the
  /// queue (windowed batch included) and the outer loop simply finds it
  /// empty.  With more than one shard this is the conservative
  /// time-window executor described in the header comment.
  void run();

  std::size_t pending() const noexcept {
    std::size_t n = applyQueue_.size() - applyQueueHead_;
    for (const auto& h : shardHeaps_) n += h.size();
    return n - cancelled_.size();
  }

  /// Total events ever scheduled (timeline fingerprint for replay tests).
  std::uint64_t scheduledCount() const noexcept { return nextSeq_; }

  /// Windows the sharded executor has opened (0 under the serial path) —
  /// a witness that the parallel machinery actually engaged.
  std::uint64_t windowCount() const noexcept { return windowCount_; }
  /// Prep stages executed by shard workers during window phases,
  /// summed in shard order (worker-thread work witness for the TSan CI
  /// job and the shard matrix test).
  std::uint64_t parallelPreps() const noexcept {
    std::uint64_t n = 0;
    for (const auto& b : batches_) n += b.preps;
    return n;
  }

 private:
  struct Event {
    double at = 0.0;
    /// Tie-break key among same-time events: equal to `seq` when the
    /// shuffle is off, a seeded permutation of it when on.
    std::uint64_t tie = 0;
    std::uint64_t seq = 0;
    Fn fn;
    PrepFn prep;
  };
  /// std::push_heap keeps the *greatest* element on top, so "greater"
  /// here means "fires later": min-(time, tie, seq) ends up at the
  /// front.  `seq` backs up `tie` so the order is total even if the
  /// shuffle hash ever collided.
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;
    }
  };
  /// True when a sorts strictly before b in apply order.
  static bool firesBefore(const Event& a, const Event& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    if (a.tie != b.tie) return a.tie < b.tie;
    return a.seq < b.seq;
  }

  /// Per-shard window batch: events popped by this shard's worker for
  /// the current window, ascending in (at, tie, seq).
  struct Batch {
    std::vector<Event> events;
    std::uint64_t preps = 0;
    // False sharing between adjacent batches is tolerable: workers
    // touch their batch only during the prep phase, the coordinator
    // only after the barrier.
  };

  /// Picks the next live event in global order (shard heap fronts +
  /// window batch cursors), pops it, and returns true; false when empty.
  bool popNext(Event& out);
  void refillWindow();
  void startWorkers();
  void stopWorkers();
  void workerLoop(std::size_t shard);
  /// Drains shard `s`'s heap into its batch up to `windowEnd_`, running
  /// prep stages.  Called on the shard's worker (shard 0: coordinator).
  void drainShardWindow(std::size_t shard);

  SimClock clock_;
  std::vector<std::vector<Event>> shardHeaps_;  // one min-heap per shard
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t shuffleSeed_ = 0;
  std::uint64_t tieDeliveries_ = 0;

  // Window executor state (coordinator-owned outside the prep phase).
  std::vector<Batch> batches_;
  // Legacy-compat apply staging: merged batch events awaiting apply
  // when shardCount() > 1.  Kept globally sorted; head index avoids
  // front erases.
  std::vector<Event> applyQueue_;
  std::size_t applyQueueHead_ = 0;
  double lookaheadMs_ = 1.0;
  double windowEnd_ = 0.0;
  std::uint64_t windowCount_ = 0;

  // Worker pool (only with shardCount() > 1).  The coordinator bumps
  // `generation` and waits for `pendingWorkers` to hit zero; workers
  // drain exactly their own shard.  All simulation state other than
  // shardHeaps_[s]/batches_[s] is off-limits inside the prep phase.
  std::vector<std::thread> workers_;
  std::mutex poolMutex_;
  std::condition_variable poolStart_;
  std::condition_variable poolDone_;
  std::uint64_t poolGeneration_ = 0;
  std::size_t pendingWorkers_ = 0;
  bool poolStop_ = false;
};

}  // namespace mlight::dht
