// Discrete-event simulation core for the DHT overlay.
//
// The paper's latency metric is *rounds of DHT-lookups* executed by real
// peers exchanging real messages over Bamboo.  Instead of computing that
// analytically per forwarding wave, the Network schedules every RPC as a
// timestamped delivery on this scheduler and the timeline — clock
// advances, per-peer send-queue serialization, parallel link overlap —
// emerges from execution.  Indexes pump the loop to completion via the
// synchronous facade, so the simulation stays single-threaded and
// deterministic.
//
// Determinism contract: events fire in (time, sequence) order, where the
// sequence number is assigned at schedule time.  Two runs that schedule
// the same callbacks at the same times execute them in the same order,
// which is what makes whole-workload replay byte-exact (see
// tests/integration/replay_test.cpp).
//
// Schedule perturbation (determinism certification): the contract above
// also says that *no simulation-visible state may depend on the relative
// order of same-time events* — only the (commutative) union of their
// effects.  MLIGHT_SCHED_SHUFFLE_SEED (or setTieShuffleSeed) replaces
// the same-time tie-break with a seeded pseudo-random permutation of the
// sequence numbers: the timeline stays a deterministic pure function of
// (workload, shuffle seed), but same-time ties deliver in a different —
// still fixed — order.  State digests (common/digest.h) must be
// bit-identical across shuffle seeds; tests/determinism/ enforces it.
// Seed 0 (the default) disables the shuffle and is byte-identical to a
// build without this mechanism.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

namespace mlight::dht {

/// Monotonic simulated clock (milliseconds).  Time only moves forward:
/// delivering an event stamped earlier than `now` runs it at `now`.
class SimClock {
 public:
  double now() const noexcept { return now_; }
  void advanceTo(double t) noexcept { now_ = std::max(now_, t); }

 private:
  double now_ = 0.0;
};

/// Priority event queue + clock.  Not thread-safe by design — the whole
/// overlay is one deterministic simulation.
/// Reads `MLIGHT_SCHED_SHUFFLE_SEED` from the environment (decimal),
/// falling back to `fallback` (0 = shuffle off) when unset/empty — how
/// the determinism CI job perturbs every scheduler in a test binary
/// without touching code.
std::uint64_t schedShuffleSeedFromEnv(std::uint64_t fallback = 0) noexcept;

class SimScheduler {
 public:
  using Fn = std::function<void()>;

  SimScheduler() : shuffleSeed_(schedShuffleSeedFromEnv()) {}

  double now() const noexcept { return clock_.now(); }

  /// Installs the same-time tie-break shuffle seed (0 = off, the
  /// default order: ties fire in schedule order).  Only affects events
  /// scheduled after the call; tests install it on a quiet scheduler.
  void setTieShuffleSeed(std::uint64_t seed) noexcept { shuffleSeed_ = seed; }
  std::uint64_t tieShuffleSeed() const noexcept { return shuffleSeed_; }

  /// Deliveries where another live event with the same timestamp was
  /// still pending — ties the shuffle could genuinely reorder (same-time
  /// events in a causal chain never coexist in the heap and don't
  /// count).  A perturbation test asserts this is nonzero for its
  /// workload, otherwise shuffling proved nothing.
  std::uint64_t tieDeliveries() const noexcept { return tieDeliveries_; }

  /// Schedules `fn` to run at simulated time `at` (clamped to `now`).
  /// Returns the event's sequence number (global issue order).
  ///
  /// Event nodes live in a reused vector-backed heap, so scheduling is
  /// allocation-free once the heap has grown — *provided the closure
  /// fits std::function's inline buffer* (two pointers on libstdc++).
  /// Hot paths keep to that budget by parking their per-event state in
  /// pooled slots and capturing only an owner pointer plus a slot index
  /// (see Network's delivery slots); cold paths (fault injection) may
  /// capture freely.
  std::uint64_t schedule(double at, Fn fn);

  /// Delivers the next event, advancing the clock to its timestamp.
  /// Returns false when the queue is empty.
  bool runOne();

  /// Cancels a still-pending event by its sequence number.  A cancelled
  /// event is discarded when it surfaces — it neither runs nor advances
  /// the clock, so cancelling an RPC timeout after an early delivery
  /// leaves the timeline exactly as if the timeout never existed.
  /// Precondition: `seq` is pending (the fault layer only cancels
  /// timeouts it knows have not fired).
  void cancel(std::uint64_t seq) { cancelled_.insert(seq); }

  /// Pumps the queue dry.  Re-entrant: a callback may itself call run()
  /// (the synchronous store facade does) — the inner call drains the
  /// queue and the outer loop simply finds it empty.
  void run() {
    while (runOne()) {
    }
  }

  std::size_t pending() const noexcept {
    return heap_.size() - cancelled_.size();
  }

  /// Total events ever scheduled (timeline fingerprint for replay tests).
  std::uint64_t scheduledCount() const noexcept { return nextSeq_; }

 private:
  struct Event {
    double at = 0.0;
    /// Tie-break key among same-time events: equal to `seq` when the
    /// shuffle is off, a seeded permutation of it when on.
    std::uint64_t tie = 0;
    std::uint64_t seq = 0;
    Fn fn;
  };
  /// std::push_heap keeps the *greatest* element on top, so "greater"
  /// here means "fires later": min-(time, tie, seq) ends up at the
  /// front.  `seq` backs up `tie` so the order is total even if the
  /// shuffle hash ever collided.
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;
    }
  };

  SimClock clock_;
  std::vector<Event> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t shuffleSeed_ = 0;
  std::uint64_t tieDeliveries_ = 0;
};

}  // namespace mlight::dht
