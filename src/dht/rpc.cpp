#include "dht/rpc.h"

namespace mlight::dht {

void RpcEnvelope::serialize(common::Writer& w) const {
  w.writeU64(id);
  w.writeU8(static_cast<std::uint8_t>(kind));
  w.writeU64(from.value);
  w.writeU64(to.value);
  w.writeU32(round);
  w.writeBytes(payload);
}

RpcEnvelope RpcEnvelope::deserialize(common::Reader& r) {
  RpcEnvelope env;
  env.deserializeFrom(r);
  return env;
}

void RpcEnvelope::deserializeFrom(common::Reader& r) {
  id = r.readU64();
  const std::uint8_t k = r.readU8();
  if (k < static_cast<std::uint8_t>(RpcKind::kGet) ||
      k > static_cast<std::uint8_t>(RpcKind::kBatchPut)) {
    throw common::SerdeError("rpc: unknown envelope kind");
  }
  kind = static_cast<RpcKind>(k);
  from = RingId{r.readU64()};
  to = RingId{r.readU64()};
  round = r.readU32();
  r.readBytesInto(payload);
}

}  // namespace mlight::dht
