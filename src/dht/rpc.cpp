#include "dht/rpc.h"

namespace mlight::dht {

void RpcEnvelope::serialize(common::Writer& w) const {
  w.writeU64(id);
  w.writeU8(static_cast<std::uint8_t>(kind));
  w.writeU64(from.value);
  w.writeU64(to.value);
  w.writeU32(round);
  w.writeBytes(payload);
}

RpcEnvelope RpcEnvelope::deserialize(common::Reader& r) {
  RpcEnvelope env;
  env.id = r.readU64();
  const std::uint8_t kind = r.readU8();
  if (kind < static_cast<std::uint8_t>(RpcKind::kGet) ||
      kind > static_cast<std::uint8_t>(RpcKind::kResponse)) {
    throw common::SerdeError("rpc: unknown envelope kind");
  }
  env.kind = static_cast<RpcKind>(kind);
  env.from = RingId{r.readU64()};
  env.to = RingId{r.readU64()};
  env.round = r.readU32();
  env.payload = r.readBytes();
  return env;
}

}  // namespace mlight::dht
