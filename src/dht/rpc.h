// Typed RPC envelope exchanged between peers.
//
// Every remote bucket access an index performs — locate probes, range
// forwarding, replica pushes — travels as one of these envelopes.  The
// envelope crosses the simulated wire through the serde layer, so the
// header bytes metered by CostMeter are the bytes a deployed node would
// actually put on the network, and the receiving handler works from the
// deserialized copy (never from initiator-side state).
//
// `round` is the RPC chain depth: a handler that issues a follow-up RPC
// stamps it `round + 1`.  The maximum round delivered during an
// operation is exactly the paper's "rounds of DHT-lookups" — parallel
// fan-out at the same depth shares a round, sequential dependency
// chains deepen it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "dht/id.h"

namespace mlight::dht {

enum class RpcKind : std::uint8_t {
  kGet = 1,    ///< Read a bucket at the owner.
  kPut = 2,    ///< Store a serialized bucket at the owner.
  kVisit = 3,  ///< Run arbitrary logic at the owner (read-modify-write).
  kResponse = 4,
  /// Direct probe of a cached label hint: the body carries the probe key
  /// plus the hint under test; the owner-side verdict (leaf here / stale)
  /// comes back with the repair depth.  Travels and meters exactly like
  /// kGet — one DHT-lookup — but is its own verb so traces and dead
  /// letters distinguish hint traffic from search probes.
  kHintProbe = 5,
  /// Store a batch of records into the bucket at the owner: the body
  /// carries the target key plus the serialized record group (assembled
  /// in a pooled buffer by the client-side batcher).  One envelope
  /// replaces N per-record kVisit round-trips; travels through the same
  /// retry/failover machinery as every other access.
  kBatchPut = 6,
};

struct RpcEnvelope {
  std::uint64_t id = 0;  ///< Assigned by Network::sendRpc (global order).
  RpcKind kind = RpcKind::kGet;
  RingId from{};
  RingId to{};  ///< Owner vnode; filled in at routing time.
  std::uint32_t round = 1;
  std::vector<std::uint8_t> payload;  ///< Kind-specific body (serde bytes).

  /// Exact size of the serialized envelope.
  std::size_t wireSize() const noexcept {
    // id + kind + from + to + round + payload length prefix + payload.
    return 8 + 1 + 8 + 8 + 4 + 4 + payload.size();
  }

  void serialize(common::Writer& w) const;
  static RpcEnvelope deserialize(common::Reader& r);
  /// deserialize into *this, reusing the existing payload capacity (the
  /// pooled-delivery path: one buffer cycles through every message
  /// instead of a fresh vector per envelope).
  void deserializeFrom(common::Reader& r);
};

/// Free list of byte buffers for the per-message hot path.  Every RPC
/// needs two transient vectors (the serialized wire image and the
/// deserialized payload); recycling them through this pool makes the
/// steady-state message cycle allocation-free.  Purely a host-side
/// optimization: buffers are cleared on acquire and carry no simulated
/// state, so pooling cannot perturb the timeline (pinned by the replay
/// pooling on/off test).
class BufferPool {
 public:
  /// An empty buffer, recycled when available (capacity retained).
  std::vector<std::uint8_t> acquire() {
    if (free_.empty()) return {};
    std::vector<std::uint8_t> b = std::move(free_.back());
    free_.pop_back();
    b.clear();
    return b;
  }

  /// Returns a buffer to the pool (dropped when disabled or full).
  void release(std::vector<std::uint8_t>&& b) noexcept {
    if (enabled_ && free_.size() < kMaxPooled) free_.push_back(std::move(b));
  }

  /// Disabling clears the pool; acquire() then always allocates fresh —
  /// the A/B switch for the pooling-transparency replay test.
  void setEnabled(bool on) {
    enabled_ = on;
    if (!on) free_.clear();
  }
  bool enabled() const noexcept { return enabled_; }

  /// Buffers currently parked in the free list.
  std::size_t pooledCount() const noexcept { return free_.size(); }

 private:
  /// Cap on parked buffers: bounds worst-case retained memory under a
  /// burst (fan-outs park one wire buffer per in-flight message).
  static constexpr std::size_t kMaxPooled = 256;

  bool enabled_ = true;
  std::vector<std::vector<std::uint8_t>> free_;
};

}  // namespace mlight::dht
