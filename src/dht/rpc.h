// Typed RPC envelope exchanged between peers.
//
// Every remote bucket access an index performs — locate probes, range
// forwarding, replica pushes — travels as one of these envelopes.  The
// envelope crosses the simulated wire through the serde layer, so the
// header bytes metered by CostMeter are the bytes a deployed node would
// actually put on the network, and the receiving handler works from the
// deserialized copy (never from initiator-side state).
//
// `round` is the RPC chain depth: a handler that issues a follow-up RPC
// stamps it `round + 1`.  The maximum round delivered during an
// operation is exactly the paper's "rounds of DHT-lookups" — parallel
// fan-out at the same depth shares a round, sequential dependency
// chains deepen it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "dht/id.h"

namespace mlight::dht {

enum class RpcKind : std::uint8_t {
  kGet = 1,    ///< Read a bucket at the owner.
  kPut = 2,    ///< Store a serialized bucket at the owner.
  kVisit = 3,  ///< Run arbitrary logic at the owner (read-modify-write).
  kResponse = 4,
};

struct RpcEnvelope {
  std::uint64_t id = 0;  ///< Assigned by Network::sendRpc (global order).
  RpcKind kind = RpcKind::kGet;
  RingId from{};
  RingId to{};  ///< Owner vnode; filled in at routing time.
  std::uint32_t round = 1;
  std::vector<std::uint8_t> payload;  ///< Kind-specific body (serde bytes).

  /// Exact size of the serialized envelope.
  std::size_t wireSize() const noexcept {
    // id + kind + from + to + round + payload length prefix + payload.
    return 8 + 1 + 8 + 8 + 4 + 4 + payload.size();
  }

  void serialize(common::Writer& w) const;
  static RpcEnvelope deserialize(common::Reader& r);
};

}  // namespace mlight::dht
