// Typed RPC envelope exchanged between peers.
//
// Every remote bucket access an index performs — locate probes, range
// forwarding, replica pushes — travels as one of these envelopes.  The
// envelope crosses the simulated wire through the serde layer, so the
// header bytes metered by CostMeter are the bytes a deployed node would
// actually put on the network, and the receiving handler works from the
// deserialized copy (never from initiator-side state).
//
// `round` is the RPC chain depth: a handler that issues a follow-up RPC
// stamps it `round + 1`.  The maximum round delivered during an
// operation is exactly the paper's "rounds of DHT-lookups" — parallel
// fan-out at the same depth shares a round, sequential dependency
// chains deepen it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "dht/id.h"

namespace mlight::dht {

enum class RpcKind : std::uint8_t {
  kGet = 1,    ///< Read a bucket at the owner.
  kPut = 2,    ///< Store a serialized bucket at the owner.
  kVisit = 3,  ///< Run arbitrary logic at the owner (read-modify-write).
  kResponse = 4,
  /// Direct probe of a cached label hint: the body carries the probe key
  /// plus the hint under test; the owner-side verdict (leaf here / stale)
  /// comes back with the repair depth.  Travels and meters exactly like
  /// kGet — one DHT-lookup — but is its own verb so traces and dead
  /// letters distinguish hint traffic from search probes.
  kHintProbe = 5,
  /// Store a batch of records into the bucket at the owner: the body
  /// carries the target key plus the serialized record group (assembled
  /// in a pooled buffer by the client-side batcher).  One envelope
  /// replaces N per-record kVisit round-trips; travels through the same
  /// retry/failover machinery as every other access.
  kBatchPut = 6,
};

struct RpcEnvelope {
  std::uint64_t id = 0;  ///< Assigned by Network::sendRpc (global order).
  RpcKind kind = RpcKind::kGet;
  RingId from{};
  RingId to{};  ///< Owner vnode; filled in at routing time.
  std::uint32_t round = 1;
  std::vector<std::uint8_t> payload;  ///< Kind-specific body (serde bytes).

  /// Exact size of the serialized envelope.
  std::size_t wireSize() const noexcept {
    // id + kind + from + to + round + payload length prefix + payload.
    return 8 + 1 + 8 + 8 + 4 + 4 + payload.size();
  }

  void serialize(common::Writer& w) const;
  static RpcEnvelope deserialize(common::Reader& r);
  /// deserialize into *this, reusing the existing payload capacity (the
  /// pooled-delivery path: one buffer cycles through every message
  /// instead of a fresh vector per envelope).
  void deserializeFrom(common::Reader& r);
};

/// Capped exponential retry backoff shared by the simulated fault layer
/// and the real TCP transport: the timeout for transmission `attempt`
/// (0 = the original send) is `floorMs` doubled per attempt, with the
/// exponent capped at 8.  One formula in one place so the simulator's
/// predicted retry schedule and the wire's measured one cannot drift.
inline double retryBackoffMs(double floorMs, std::size_t attempt) noexcept {
  return floorMs * static_cast<double>(
                       std::uint64_t{1}
                       << (attempt < 8 ? attempt : std::size_t{8}));
}

/// An envelope that exhausted its transmission attempts — recorded by the
/// simulated fault layer (Network) and the real TCP transport alike.
struct DeadLetter {
  std::uint64_t rpcId = 0;
  RpcKind kind = RpcKind::kGet;
  RingId from{};
  RingId lastTarget{};    ///< Owner of the key on the last attempt.
  std::size_t attempts = 0;
  double at = 0.0;        ///< Simulated ms (Network) / wall ms (TCP).
};

/// Fixed-capacity ring of the most recent dead letters.  A flapping peer
/// can dead-letter without bound; diagnostics only need the tail, so the
/// ring keeps the latest `capacity` entries and counts what it evicted
/// (`dropped`) next to the all-time total.
class DeadLetterRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit DeadLetterRing(std::size_t capacity = kDefaultCapacity)
      : cap_(capacity) {}

  void record(DeadLetter dl) {
    ++total_;
    if (cap_ == 0) {
      ++dropped_;
      return;
    }
    if (ring_.size() < cap_) {
      ring_.push_back(std::move(dl));
      return;
    }
    ring_[head_] = std::move(dl);  // overwrite the oldest entry
    head_ = (head_ + 1) % cap_;
    ++dropped_;
  }

  /// All-time dead letters recorded (the correctness-facing counter).
  std::uint64_t total() const noexcept { return total_; }
  /// Entries evicted from the ring to stay within capacity (gauge of how
  /// much diagnostic tail has been lost, not of additional failures).
  std::uint64_t dropped() const noexcept { return dropped_; }
  /// Entries currently held (== min(total, capacity)) — the gauge.
  std::size_t size() const noexcept { return ring_.size(); }
  std::size_t capacity() const noexcept { return cap_; }

  /// The retained tail, oldest first.
  std::vector<DeadLetter> snapshot() const {
    std::vector<DeadLetter> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  void clear() {
    ring_.clear();
    head_ = 0;
    total_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t cap_;
  std::size_t head_ = 0;  ///< Oldest entry once the ring is full.
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<DeadLetter> ring_;
};

/// Free list of byte buffers for the per-message hot path.  Every RPC
/// needs two transient vectors (the serialized wire image and the
/// deserialized payload); recycling them through this pool makes the
/// steady-state message cycle allocation-free.  Purely a host-side
/// optimization: buffers are cleared on acquire and carry no simulated
/// state, so pooling cannot perturb the timeline (pinned by the replay
/// pooling on/off test).
class BufferPool {
 public:
  /// An empty buffer, recycled when available (capacity retained).
  std::vector<std::uint8_t> acquire() {
    if (free_.empty()) return {};
    std::vector<std::uint8_t> b = std::move(free_.back());
    free_.pop_back();
    b.clear();
    return b;
  }

  /// Returns a buffer to the pool (dropped when disabled or full).
  void release(std::vector<std::uint8_t>&& b) noexcept {
    if (enabled_ && free_.size() < kMaxPooled) free_.push_back(std::move(b));
  }

  /// Disabling clears the pool; acquire() then always allocates fresh —
  /// the A/B switch for the pooling-transparency replay test.
  void setEnabled(bool on) {
    enabled_ = on;
    if (!on) free_.clear();
  }
  bool enabled() const noexcept { return enabled_; }

  /// Buffers currently parked in the free list.
  std::size_t pooledCount() const noexcept { return free_.size(); }

 private:
  /// Cap on parked buffers: bounds worst-case retained memory under a
  /// burst (fan-outs park one wire buffer per in-flight message).
  static constexpr std::size_t kMaxPooled = 256;

  bool enabled_ = true;
  std::vector<std::vector<std::uint8_t>> free_;
};

}  // namespace mlight::dht
