// Cost accounting for the simulated DHT.
//
// The paper's metrics are counts, not wall-clock times: number of
// DHT-lookups (bandwidth), rounds of DHT-lookups (latency), and amount of
// data moved (maintenance).  Every routed operation reports into the
// CostMeter installed on the network; callers scope meters around the
// operation groups they want to measure.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/digest.h"

namespace mlight::dht {

struct CostMeter {
  /// Routed key resolutions ("DHT-lookup" in the paper).
  std::uint64_t lookups = 0;
  /// Overlay hops taken by all lookups (finger routing).
  std::uint64_t hops = 0;
  /// Payload bytes shipped between *distinct* peers.
  std::uint64_t bytesMoved = 0;
  /// Data records shipped between distinct peers.
  std::uint64_t recordsMoved = 0;
  /// RPC envelopes sent through the event core.  Distinct from lookups:
  /// every envelope is routed (so messages <= lookups op-by-op only when
  /// legacy lookup() is never used), and payload piggybacks on the
  /// envelope rather than counting a message of its own.
  std::uint64_t messages = 0;
  /// Envelope retransmissions issued by the reliable-RPC layer after a
  /// timeout (fault injection only — always 0 with faults disabled).
  /// Retransmissions re-route on the current ring, so each retry also
  /// adds one lookup + hops; `messages` is *not* incremented again (it
  /// counts logical envelopes, see docs/COST_MODEL.md "Fault model").
  std::uint64_t retries = 0;
  /// Hint probes that landed on a live leaf covering the query point: the
  /// whole binary search collapsed to the one lookup already counted in
  /// `lookups` (cacheHits never adds lookups of its own — see
  /// docs/COST_MODEL.md "Lookup cache").
  std::uint64_t cacheHits = 0;
  /// Hint probes that found their leaf gone (split/merge moved it); each
  /// one pays the probe plus an O(log Δdepth) seeded repair search, all
  /// metered in `lookups` as usual.
  std::uint64_t staleHints = 0;

  /// Feeds every counter into a state digest (fixed field order).  All
  /// counters are commutative sums, so a meter is digest-stable under
  /// any reordering of the operations it metered.
  void digestTo(mlight::common::Digest& d) const noexcept {
    d.feed(lookups);
    d.feed(hops);
    d.feed(bytesMoved);
    d.feed(recordsMoved);
    d.feed(messages);
    d.feed(retries);
    d.feed(cacheHits);
    d.feed(staleHints);
  }

  CostMeter& operator+=(const CostMeter& other) noexcept {
    lookups += other.lookups;
    hops += other.hops;
    bytesMoved += other.bytesMoved;
    recordsMoved += other.recordsMoved;
    messages += other.messages;
    retries += other.retries;
    cacheHits += other.cacheHits;
    staleHints += other.staleHints;
    return *this;
  }

  friend CostMeter operator-(CostMeter a, const CostMeter& b) noexcept {
    a.lookups -= b.lookups;
    a.hops -= b.hops;
    a.bytesMoved -= b.bytesMoved;
    a.recordsMoved -= b.recordsMoved;
    a.messages -= b.messages;
    a.retries -= b.retries;
    a.cacheHits -= b.cacheHits;
    a.staleHints -= b.staleHints;
    return a;
  }
};

}  // namespace mlight::dht
