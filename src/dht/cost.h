// Cost accounting for the simulated DHT.
//
// The paper's metrics are counts, not wall-clock times: number of
// DHT-lookups (bandwidth), rounds of DHT-lookups (latency), and amount of
// data moved (maintenance).  Every routed operation reports into the
// CostMeter installed on the network; callers scope meters around the
// operation groups they want to measure.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/digest.h"

namespace mlight::dht {

struct CostMeter {
  /// Routed key resolutions ("DHT-lookup" in the paper).
  std::uint64_t lookups = 0;
  /// Overlay hops taken by all lookups (finger routing).
  std::uint64_t hops = 0;
  /// Payload bytes shipped between *distinct* peers.
  std::uint64_t bytesMoved = 0;
  /// Data records shipped between distinct peers.
  std::uint64_t recordsMoved = 0;
  /// RPC envelopes sent through the event core.  Distinct from lookups:
  /// every envelope is routed (so messages <= lookups op-by-op only when
  /// legacy lookup() is never used), and payload piggybacks on the
  /// envelope rather than counting a message of its own.
  std::uint64_t messages = 0;
  /// Envelope retransmissions issued by the reliable-RPC layer after a
  /// timeout (fault injection only — always 0 with faults disabled).
  /// Retransmissions re-route on the current ring, so each retry also
  /// adds one lookup + hops; `messages` is *not* incremented again (it
  /// counts logical envelopes, see docs/COST_MODEL.md "Fault model").
  std::uint64_t retries = 0;
  /// Hint probes that landed on a live leaf covering the query point: the
  /// whole binary search collapsed to the one lookup already counted in
  /// `lookups` (cacheHits never adds lookups of its own — see
  /// docs/COST_MODEL.md "Lookup cache").
  std::uint64_t cacheHits = 0;
  /// Hint probes that found their leaf gone (split/merge moved it); each
  /// one pays the probe plus an O(log Δdepth) seeded repair search, all
  /// metered in `lookups` as usual.
  std::uint64_t staleHints = 0;
  /// LRU evictions in the label-hint caches: a learn() that had to drop
  /// the coldest hint to make room.  Cache pressure made visible — a
  /// steadily climbing eviction count at flat occupancy means the
  /// working set exceeds CachePolicy::perDimCapacity.  (Occupancy itself
  /// is a gauge, not a flow, so it is reported via
  /// HintCacheSet::totalHints() instead of this meter.)
  std::uint64_t hintEvictions = 0;

  /// Feeds every counter into a state digest (fixed field order).  All
  /// counters are commutative sums, so a meter is digest-stable under
  /// any reordering of the operations it metered.
  void digestTo(mlight::common::Digest& d) const noexcept {
    d.feed(lookups);
    d.feed(hops);
    d.feed(bytesMoved);
    d.feed(recordsMoved);
    d.feed(messages);
    d.feed(retries);
    d.feed(cacheHits);
    d.feed(staleHints);
    d.feed(hintEvictions);
  }

  CostMeter& operator+=(const CostMeter& other) noexcept {
    lookups += other.lookups;
    hops += other.hops;
    bytesMoved += other.bytesMoved;
    recordsMoved += other.recordsMoved;
    messages += other.messages;
    retries += other.retries;
    cacheHits += other.cacheHits;
    staleHints += other.staleHints;
    hintEvictions += other.hintEvictions;
    return *this;
  }

  friend CostMeter operator-(CostMeter a, const CostMeter& b) noexcept {
    a.lookups -= b.lookups;
    a.hops -= b.hops;
    a.bytesMoved -= b.bytesMoved;
    a.recordsMoved -= b.recordsMoved;
    a.messages -= b.messages;
    a.retries -= b.retries;
    a.cacheHits -= b.cacheHits;
    a.staleHints -= b.staleHints;
    a.hintEvictions -= b.hintEvictions;
    return a;
  }
};

/// Per-physical-peer query-load accounting (the query-side sibling of
/// Fig 6's storage-load variance): one counter per peer, incremented for
/// every RPC envelope addressed to that peer — i.e. requests the peer
/// must serve, including retransmissions.  Counters are commutative sums
/// bumped at envelope issue time, so the meter is digest-stable under
/// tie-break shuffling and shard counts like every CostMeter field.
class PeerLoadMeter {
 public:
  /// One more request addressed to physical peer `peer`.
  void note(std::size_t peer) {
    if (counts_.size() <= peer) counts_.resize(peer + 1, 0);
    ++counts_[peer];
  }

  /// Requests addressed to `peer` so far (0 for peers never targeted).
  std::uint64_t countOf(std::size_t peer) const noexcept {
    return peer < counts_.size() ? counts_[peer] : 0;
  }

  /// Raw per-peer counters, indexed by physical peer.  May be shorter
  /// than the overlay's peer count — missing tails are zero.
  const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

  /// Load distribution at a quiescent point, over `peerCount` peers
  /// (peers beyond the counter vector count as zero load).
  struct Snapshot {
    std::uint64_t total = 0;
    std::uint64_t max = 0;
    std::uint64_t p99 = 0;
    double avg = 0.0;
    /// max/avg — the headline balance figure (1.0 = perfectly even;
    /// 0 when nothing was metered).
    double maxOverAvg = 0.0;
  };
  Snapshot snapshot(std::size_t peerCount) const {
    Snapshot s;
    std::vector<std::uint64_t> loads(std::max(peerCount, counts_.size()), 0);
    std::copy(counts_.begin(), counts_.end(), loads.begin());
    for (const std::uint64_t v : loads) {
      s.total += v;
      s.max = std::max(s.max, v);
    }
    if (loads.empty()) return s;
    s.avg = static_cast<double>(s.total) / static_cast<double>(loads.size());
    std::sort(loads.begin(), loads.end());
    const std::size_t rank =
        (99 * (loads.size() - 1) + 50) / 100;  // nearest-rank p99
    s.p99 = loads[rank];
    if (s.avg > 0.0) s.maxOverAvg = static_cast<double>(s.max) / s.avg;
    return s;
  }

  /// Feeds the counters in peer-index order (fixed, so digest-stable).
  void digestTo(mlight::common::Digest& d) const noexcept {
    d.feed(counts_.size());
    for (const std::uint64_t v : counts_) d.feed(v);
  }

 private:
  std::vector<std::uint64_t> counts_;  ///< indexed by physical peer
};

}  // namespace mlight::dht
