// Identifier space of the simulated DHT.
//
// Chord-style overlays place nodes and keys on a ring of 2^b identifiers.
// We use b = 64: identifiers are the first 8 bytes of a SHA-1 digest, which
// keeps ring arithmetic in native integers while preserving the uniform
// placement that consistent hashing relies on.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/sha1.h"

namespace mlight::dht {

/// A position on the identifier ring.  Strong type so node ids and raw
/// integers cannot be mixed up.
struct RingId {
  std::uint64_t value = 0;

  friend auto operator<=>(const RingId&, const RingId&) = default;
};

/// Hash of an application key string onto the ring.
inline RingId keyId(std::string_view key) noexcept {
  return RingId{mlight::common::digestPrefix64(mlight::common::sha1(key))};
}

/// Clockwise distance from `from` to `to` on the ring (mod 2^64).
inline std::uint64_t clockwise(RingId from, RingId to) noexcept {
  return to.value - from.value;  // wraps mod 2^64 by construction
}

/// True iff `x` lies in the half-open clockwise arc (from, to].
inline bool inArc(RingId x, RingId from, RingId to) noexcept {
  return clockwise(from, x) != 0 && clockwise(from, x) <= clockwise(from, to);
}

std::string toString(RingId id);

}  // namespace mlight::dht
