// Simulated Chord/Bamboo-style DHT overlay.
//
// The paper runs m-LIGHT over the Bamboo DHT ("a ring-like DHT") with more
// than one hundred logical peers on a LAN.  All reported metrics are
// counts of DHT operations, so a deterministic simulated overlay
// reproduces them exactly:
//
//  * peers sit on a 64-bit identifier ring (SHA-1 of their names);
//  * a key κ is owned by the peer whose identifier is *less than but
//    closest to* hash(κ) (predecessor mapping, paper §3.1);
//  * lookups route greedily through per-peer finger tables
//    (finger[k] = first peer at or after self + 2^k), giving the O(log n)
//    hop counts a real Chord/Bamboo deployment exhibits;
//  * membership can change (churn); registered stores are told to migrate
//    keys whose ownership moved.
//
// The Network is the only component that touches the CostMeter: each
// routed resolution counts one DHT-lookup plus its hops, and payload
// shipped between distinct peers counts bytes/records moved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/digest.h"
#include "common/rng.h"
#include "dht/cost.h"
#include "dht/id.h"
#include "dht/rpc.h"
#include "dht/sim.h"

namespace mlight::dht {

/// Result of a routed lookup.
struct RouteResult {
  RingId owner;        ///< Peer responsible for the key.
  std::size_t hops;    ///< Overlay hops from the initiator.
  double ms;           ///< Simulated network time along the hop path.
};

/// What an RPC handler receives when its envelope arrives at the owner.
/// `env` is the wire copy — serialized at the sender, deserialized at
/// delivery — so handlers cannot accidentally share initiator state.
struct RpcDelivery {
  RpcEnvelope env;
  RouteResult route;      ///< How the envelope was routed.
  double sentAt = 0.0;    ///< Departure time (after send-queue delay).
  double deliveredAt = 0.0;
};

/// Pairwise link latencies: deterministic per ordered peer pair, drawn
/// uniformly from [minMs, maxMs] by hashing the pair (symmetric).  The
/// default range loosely models a wide-area overlay; a LAN would be
/// {0.1, 1.0}.
struct LatencyModel {
  double minMs = 10.0;
  double maxMs = 100.0;
  /// Per-message send/serialization overhead at the issuing peer: the
  /// i-th message a peer sends in one burst departs i*sendOverheadMs
  /// late.  This is what makes a 10^5-message fan-out latency-bound at
  /// the sender even with parallel links (cf. DST's large-range
  /// queries, EXPERIMENTS.md).
  double sendOverheadMs = 1.0;
};

/// Seeded fault injection for the RPC layer.  Disabled by default; with
/// `enabled == false` the send path is byte-for-byte the fault-free one
/// (no RNG draws, no timeout events), so count metrics *and* the event
/// timeline are identical to a network without the fault layer — the
/// replay and bit-identical-metrics contracts depend on this.
///
/// With `enabled == true` every transmission attempt may be lost (per
/// attempt, i.i.d. with probability `lossProbability`), every delivery
/// gains uniform jitter in [0, jitterMs), and a crash while an envelope
/// is in flight suppresses the delivery (no ghost handlers).  The
/// reliable layer on top schedules a timeout per attempt and retransmits
/// with capped exponential backoff, re-routing on the current ring;
/// envelopes that exhaust `maxAttempts` become dead letters.
struct FaultModel {
  bool enabled = false;
  /// Probability a single transmission attempt is lost in flight.
  double lossProbability = 0.0;
  /// Max additive delivery jitter (uniform in [0, jitterMs); 0 = none).
  double jitterMs = 0.0;
  /// Grace added on top of the RTT-derived timeout floor (see
  /// Network::rpcTimeoutMs).
  double timeoutBaseMs = 50.0;
  /// Total transmissions per envelope, including the first.
  std::size_t maxAttempts = 6;
  /// Seed of the fault randomness.  Loss and jitter are not drawn from a
  /// shared stream: each attempt's outcome is a pure function of this
  /// seed, the envelope's content, and the attempt number (see
  /// attemptRng in network.cpp), so enabling faults never perturbs the
  /// network's auxiliary RNG and the fault timeline is invariant under
  /// schedule-tie perturbation.
  std::uint64_t seed = 1;
};

/// Reads `MLIGHT_FAULT_SEED` from the environment (decimal), falling
/// back to `fallback` when unset/empty — how CI points the whole fault
/// matrix at one seed without touching code.  A *malformed* value
/// (non-digit characters, trailing garbage, or a number that overflows
/// 64 bits) fails loudly via MLIGHT_CHECK instead of silently running
/// the fallback seed: a seed-matrix job that typos its seed must go
/// red, not green-under-the-wrong-seed.
std::uint64_t faultSeedFromEnv(std::uint64_t fallback = 1);

class Network {
 public:
  /// Builds an overlay with `peerCount` physical peers named "node:<i>",
  /// each owning `vnodesPerPeer` ring positions (virtual nodes — the
  /// classic Chord remedy for consistent-hashing arc imbalance; Bamboo
  /// and OpenDHT deployments do the same).  `seed` feeds only auxiliary
  /// choices (e.g. initiator picking).
  explicit Network(std::size_t peerCount, std::uint64_t seed = 1,
                   std::size_t vnodesPerPeer = 1,
                   LatencyModel latency = LatencyModel{});

  /// Number of ring positions (virtual nodes).
  std::size_t peerCount() const noexcept { return peers_.size(); }

  /// Size of the physical-peer index space (peers ever added; indices
  /// from physicalOf() are stable across churn, so departed peers keep
  /// their slot).
  std::size_t physicalCount() const noexcept { return physicalNames_.size(); }

  /// Number of physical peers currently in the overlay.
  std::size_t livePhysicalCount() const;

  /// All ring positions in ring order.
  const std::vector<RingId>& peers() const noexcept { return peers_; }

  /// Index of the physical peer owning ring position `vnode` (which must
  /// be a live position).  Stable across churn of *other* peers.
  std::size_t physicalOf(RingId vnode) const;

  /// Name of the physical peer owning ring position `vnode` (which must
  /// be a live position).  Names are stable across crash/rejoin — a peer
  /// re-added under the same name reclaims the same ring positions — so
  /// they key state that must survive a crash (the per-peer WAL).
  const std::string& physicalNameOf(RingId vnode) const {
    return physicalNames_[physicalOf(vnode)];
  }

  /// Peer owning ring position `h`: greatest id <= h, wrapping.
  RingId responsible(RingId h) const noexcept;

  /// Peer owning application key `key`.
  RingId responsibleForKey(std::string_view key) const noexcept {
    return responsible(keyId(key));
  }

  /// Routes a lookup for `key` from `initiator`; meters one DHT-lookup
  /// and the hops taken.
  RouteResult lookup(RingId initiator, RingId key);
  RouteResult lookupKey(RingId initiator, std::string_view key) {
    return lookup(initiator, keyId(key));
  }

  /// Accounts payload moving from `from` to `to` (no cost if same peer).
  void shipPayload(RingId from, RingId to, std::size_t bytes,
                   std::size_t records);

  // --- Event-driven RPC core -------------------------------------------
  //
  // sendRpc() is the async counterpart of lookup(): it routes the
  // envelope to the owner of `key` (metering one DHT-lookup, its hops,
  // and one message — all at issue time, so meter scopes see costs in
  // program order), pushes the serialized envelope through the sender's
  // send queue, and schedules `handler` to run "at" the owner when the
  // message arrives.  Count metrics are therefore identical to an
  // equivalent sequence of lookup() calls; only the *timeline* differs.

  using RpcHandler = std::function<void(const RpcDelivery&)>;

  /// Invoked when an envelope exhausts its transmission attempts under
  /// fault injection (never with faults disabled).  Receives the final
  /// envelope (with its last routed `to`) and the attempt count.
  using RpcFailFn = std::function<void(const RpcEnvelope&, std::size_t)>;

  /// Issues `env` from env.from toward the owner of `key`.  Returns the
  /// route immediately (counts are synchronous); the handler runs when
  /// the scheduler reaches the arrival time.  Departure is serialized
  /// per sender: the i-th envelope a peer issues in a burst departs
  /// i * sendOverheadMs late, so wide fan-outs are latency-bound at the
  /// sender even though links are parallel.
  ///
  /// Under fault injection the send becomes reliable-with-retries:
  /// every attempt draws a loss/jitter outcome, a timeout event guards
  /// each attempt, and a timed-out envelope is re-routed on the
  /// *current* ring (fresh metered lookup + one CostMeter::retries) and
  /// retransmitted with exponential backoff.  After FaultModel::
  /// maxAttempts the envelope is recorded as a dead letter and `onFail`
  /// (if any) runs instead of `handler`.
  RouteResult sendRpc(RingId key, RpcEnvelope env, RpcHandler handler,
                      RpcFailFn onFail = nullptr);

  /// Current simulated time (ms since the network was built).
  double now() const noexcept { return sched_.now(); }

  /// Delivers every pending message (the synchronous facade's pump).
  void run() { sched_.run(); }

  std::size_t pendingEvents() const noexcept { return sched_.pending(); }

  // --- Determinism certification ---------------------------------------
  //
  // Same-time event ties must be order-free: the schedule-perturbation
  // suite re-runs workloads with a shuffled tie-break
  // (MLIGHT_SCHED_SHUFFLE_SEED / setScheduleShuffleSeed) and asserts
  // state digests match the unshuffled run bit-for-bit.  See the
  // "Determinism contract" section of docs/THEORY.md.

  /// Installs a same-time tie-break shuffle on the scheduler (0 = off).
  /// Call on a quiet network, before issuing traffic.
  void setScheduleShuffleSeed(std::uint64_t seed) noexcept {
    sched_.setTieShuffleSeed(seed);
  }
  std::uint64_t scheduleShuffleSeed() const noexcept {
    return sched_.tieShuffleSeed();
  }
  /// Same-time delivery pairs observed so far (perturbation witness).
  std::uint64_t schedulerTieDeliveries() const noexcept {
    return sched_.tieDeliveries();
  }

  /// Feeds every simulation-visible network-level fact into `d`: the
  /// ring membership, total cost meter, fault-layer outcomes, and the
  /// simulated clock.  Pointer values, host memory, and pooled-buffer
  /// bookkeeping are deliberately excluded.
  void digestState(mlight::common::Digest& d) const {
    d.feed(peers_.size());
    for (const RingId p : peers_) d.feed(p.value);  // ring order: sorted
    d.feed(physicalNames_.size());
    for (const std::string& n : physicalNames_) d.feed(std::string_view(n));
    total_.digestTo(d);
    peerLoads_.digestTo(d);
    d.feed(maxHops_);
    d.feed(deadLetterRing_.total());
    d.feed(ghostDrops_);
    d.feed(sched_.now());
  }

  // --- Sharded execution ------------------------------------------------
  //
  // Peers are partitioned into N shards by a deterministic hash of the
  // physical peer's first vnode RingId (all vnodes of one physical peer
  // share a shard, so co-located zero-latency links never cross a shard
  // boundary).  Every scheduled event is tagged with the shard of the
  // peer it executes at — deliveries with the addressee's shard,
  // timeouts with the sender's — and the scheduler's window executor
  // preps each shard's events on its own worker thread before applying
  // everything in canonical global order (see sim.h).  N=1 (the
  // default) is the serial executor; any N is bit-identical to it.

  /// Installs the shard count (reads MLIGHT_SIM_SHARDS at construction;
  /// this setter lets tests and benches sweep programmatically).  Call
  /// on a quiet network, before issuing traffic.
  void setSimShards(std::size_t n);
  std::size_t simShards() const noexcept { return sched_.shardCount(); }

  /// Shard owning the physical peer of ring position `vnode` (0 when
  /// the vnode has left the ring — the executor only needs a stable tag
  /// at schedule time).
  std::uint32_t shardOfVnode(RingId vnode) const noexcept;

  /// Windows the sharded executor has run / prep stages executed on
  /// shard workers (witnesses for the shard matrix test and TSan CI).
  std::uint64_t simWindowCount() const noexcept { return sched_.windowCount(); }
  std::uint64_t simParallelPreps() const noexcept {
    return sched_.parallelPreps();
  }

  /// Marks the start of a measured operation: drains messages still in
  /// flight from prior operations, clears per-sender send backlogs, and
  /// resets the round high-water mark.  Returns now() — the operation's
  /// t0 for emergent latencyMs.
  double beginTimeline();

  /// Deepest RPC round delivered since beginTimeline() — the paper's
  /// "rounds of DHT-lookups" for the operation.
  std::uint32_t timelineMaxRound() const noexcept { return timelineMaxRound_; }

  /// Observes every delivery (replay/trace tests).  Null disables.
  using RpcTraceFn = std::function<void(const RpcDelivery&)>;
  void setRpcTrace(RpcTraceFn fn) { rpcTrace_ = std::move(fn); }

  // --- Pooled message buffers ------------------------------------------
  //
  // Per-message transient vectors (wire images, envelope payloads,
  // store bucket bodies) cycle through one BufferPool per Network.
  // Host-side only: buffers are cleared on acquire, so pooling is
  // invisible to the simulation (see the pooling on/off replay test).

  /// A cleared scratch buffer, recycled when available.  Callers that
  /// serialize transient bodies (e.g. the store) should round-trip
  /// their buffers through here instead of allocating per message.
  std::vector<std::uint8_t> acquireBuffer() { return bufferPool_.acquire(); }
  void releaseBuffer(std::vector<std::uint8_t>&& b) noexcept {
    bufferPool_.release(std::move(b));
  }

  /// A/B switch for the pooling-transparency tests; on by default.
  void setBufferPooling(bool on) { bufferPool_.setEnabled(on); }
  bool bufferPooling() const noexcept { return bufferPool_.enabled(); }
  /// Buffers currently parked in the free list (introspection).
  std::size_t pooledBufferCount() const noexcept {
    return bufferPool_.pooledCount();
  }

  // --- Fault injection -------------------------------------------------

  /// Installs (or replaces) the fault model and reseeds the fault RNG.
  /// Call before issuing traffic; swapping models mid-flight is legal
  /// but already-scheduled attempts keep their old outcomes.
  void setFaultModel(const FaultModel& faults);
  const FaultModel& faultModel() const noexcept { return faults_; }

  /// All-time envelopes that exhausted FaultModel::maxAttempts
  /// transmissions (the counter the digests and goldens pin).
  std::uint64_t deadLetterCount() const noexcept {
    return deadLetterRing_.total();
  }
  /// The most recent dead letters in full, oldest first (bounded ring —
  /// see dht::DeadLetterRing; diagnostics only).
  std::vector<DeadLetter> deadLetterLog() const {
    return deadLetterRing_.snapshot();
  }
  /// Ring evictions: dead letters whose full record was discarded to
  /// stay within the log's capacity (they still count in
  /// deadLetterCount()).
  std::uint64_t deadLettersDropped() const noexcept {
    return deadLetterRing_.dropped();
  }
  /// Entries currently retained in the log — the gauge to export.
  std::size_t deadLetterLogSize() const noexcept {
    return deadLetterRing_.size();
  }
  /// Deliveries suppressed because the addressee crashed while the
  /// envelope was in flight (fault injection only; each such attempt is
  /// recovered by its timeout).
  std::uint64_t ghostDrops() const noexcept { return ghostDrops_; }

  /// A uniformly random live peer (deterministic via the network's RNG).
  RingId randomPeer();

  /// How a membership change happened: graceful departures hand their
  /// data to the new owners first; crashes take their copies with them.
  struct MembershipChange {
    enum class Kind { kJoin, kGracefulLeave, kCrash };
    Kind kind = Kind::kJoin;
    /// Ring positions that vanished (empty for joins).  For crashes,
    /// any data held only by these positions is gone.
    std::vector<RingId> removedVnodes;
  };

  /// Adds a physical peer named `name` (with this network's vnode count);
  /// migrates ownership via registered stores.  Returns its first vnode.
  RingId addPeer(std::string_view name);

  /// Removes the *physical* peer owning ring position `id` (all of its
  /// virtual nodes leave).  Keys are migrated to the new owners.
  /// Returns false if `id` is unknown or this is the last peer.
  bool removePeer(RingId id);

  /// Crash-fails the physical peer owning ring position `id`: its vnodes
  /// vanish *without* handing data off — registered stores decide what
  /// survives (replicas) and what is lost.
  bool crashPeer(RingId id);

  /// Stores register a migration callback invoked on membership changes.
  /// The callback must re-home (or mourn) every key whose responsible
  /// peer changed.  Returns a handle for unregisterStore (call it before
  /// the store dies).
  using RebalanceFn = std::function<void(const MembershipChange&)>;
  std::uint64_t registerStore(RebalanceFn fn) {
    stores_.emplace_back(nextStoreHandle_, std::move(fn));
    return nextStoreHandle_++;
  }
  void unregisterStore(std::uint64_t handle) {
    std::erase_if(stores_,
                  [handle](const auto& e) { return e.first == handle; });
  }

  /// Installs `meter` as the destination for cost accounting; returns the
  /// previous meter (restore it when done).  Null disables scoped
  /// metering; totals are always accumulated in totalCost().
  CostMeter* setMeter(CostMeter* meter) noexcept {
    CostMeter* old = meter_;
    meter_ = meter;
    return old;
  }

  const CostMeter& totalCost() const noexcept { return total_; }

  /// Meters a hint probe that resolved the lookup in one shot.  The
  /// probe's lookup/hops/message were already counted by sendRpc; these
  /// note only the cache outcome, so cacheHits/staleHints never double
  /// into `lookups`.
  void noteCacheHit() noexcept {
    ++total_.cacheHits;
    if (meter_ != nullptr) ++meter_->cacheHits;
  }
  /// Meters a hint probe that found its leaf gone (repair follows).
  void noteStaleHint() noexcept {
    ++total_.staleHints;
    if (meter_ != nullptr) ++meter_->staleHints;
  }
  /// Meters a hint-cache LRU eviction (a learn() that dropped the
  /// coldest hint to make room).
  void noteHintEviction() noexcept {
    ++total_.hintEvictions;
    if (meter_ != nullptr) ++meter_->hintEvictions;
  }

  /// Per-physical-peer query load: requests (RPC envelopes, including
  /// retransmissions) addressed to each peer since the network was
  /// built.  Always on — reading it is free and the counters are
  /// commutative sums, so they perturb nothing.  Index with
  /// physicalOf()/physicalCount(); scope deltas by snapshotting
  /// counts() around the phase of interest.
  const PeerLoadMeter& peerLoads() const noexcept { return peerLoads_; }

  /// Maximum hops observed over all lookups so far (sanity: O(log n)).
  std::size_t maxHopsSeen() const noexcept { return maxHops_; }

  /// Simulated one-way latency of the overlay link a -> b (0 for a == b;
  /// links between two vnodes of one physical peer are local too).
  double linkMs(RingId a, RingId b) const noexcept;

  /// Per-message send overhead of the latency model.
  double sendOverheadMs() const noexcept { return latency_.sendOverheadMs; }

 private:
  void rebuildFingers();
  bool dropPhysicalPeer(RingId id, MembershipChange::Kind kind);
  struct Path {
    std::size_t hops;
    double ms;
  };
  Path routePath(RingId from, RingId target) const noexcept;

  /// Reliable-send bookkeeping shared by one attempt's delivery and
  /// timeout events (fault injection only).
  struct RpcFlight {
    bool delivered = false;
    std::uint64_t timeoutSeq = 0;
  };

  /// In-flight state of one message, parked in a pooled slot so the
  /// scheduled closure captures only {this, slot} — small enough for
  /// std::function's inline buffer, which keeps the scheduler's event
  /// nodes allocation-free (see SimScheduler::schedule).  `prepped`
  /// holds the envelope decoded off the wire by the shard worker during
  /// a window's prep phase; when the event fires unprepped (serial mode,
  /// or scheduled into an already-open window) the decode happens
  /// inline at apply time instead.
  struct DeliverySlot {
    std::vector<std::uint8_t> wire;
    RouteResult route{};
    double departure = 0.0;
    RpcHandler handler;
    RpcEnvelope prepped;
    bool hasPrepped = false;
    std::shared_ptr<RpcFlight> flight;  // null on the fault-free path
  };
  std::uint32_t allocDeliverySlot();
  void deliverSlot(std::uint32_t slot);
  /// Window prep stage for slot deliveries: decodes the slot's wire
  /// image into `prepped`.  Runs on the owning shard's worker thread;
  /// touches nothing but the slot (see SimScheduler::PrepFn).
  void prepSlot(std::uint32_t slot);
  /// Schedules the slot's delivery at `arrival`, tagged with the
  /// addressee's shard and carrying the prep stage.
  void scheduleSlotDelivery(std::uint32_t slot, RingId to, double arrival);
  /// One transmission attempt under fault injection (attempt 0 = the
  /// original send); schedules the guarded delivery plus its timeout.
  void transmitWithFaults(RingId key, const RouteResult& route,
                          RpcEnvelope env, RpcHandler handler,
                          RpcFailFn onFail, std::size_t attempt);
  /// Timeout for the given attempt: twice the routed path latency plus
  /// worst-case jitter plus timeoutBaseMs grace, doubled per attempt
  /// (capped exponential backoff).
  double rpcTimeoutMs(std::size_t attempt, double routeMs) const noexcept;

  std::vector<RingId> peers_;                       // vnodes, ring order
  /// Finger tables aligned with peers_ (fingersByIdx_[i] belongs to
  /// peers_[i]) — index lookup is one lower_bound on the sorted ring,
  /// cheaper and cache-friendlier than the former RingId-keyed map on
  /// the routePath hot loop.
  std::vector<std::vector<RingId>> fingersByIdx_;
  std::map<RingId, std::size_t> vnodeToPhysical_;   // vnode -> peer index
  std::vector<std::string> physicalNames_;          // by peer index
  /// First (v == 0) vnode of each physical peer, by peer index — the
  /// stable anchor the shard hash keys on.
  std::vector<RingId> physicalFirstVnode_;
  /// Shard of each physical peer, by peer index; rebuilt whenever the
  /// shard count changes, appended on join.
  std::vector<std::uint32_t> physicalShard_;
  std::size_t vnodesPerPeer_ = 1;
  LatencyModel latency_;
  std::vector<std::pair<std::uint64_t, RebalanceFn>> stores_;
  std::uint64_t nextStoreHandle_ = 0;
  mlight::common::Rng rng_;
  CostMeter* meter_ = nullptr;
  CostMeter total_;
  PeerLoadMeter peerLoads_;
  std::size_t maxHops_ = 0;
  std::uint64_t nextPeerSerial_ = 0;

  SimScheduler sched_;
  std::map<RingId, double> sendQueueFree_;  // per-sender next free slot
  BufferPool bufferPool_;
  std::vector<DeliverySlot> deliverySlots_;
  std::vector<std::uint32_t> freeDeliverySlots_;
  std::uint64_t nextRpcId_ = 0;
  std::uint32_t timelineMaxRound_ = 0;
  RpcTraceFn rpcTrace_;

  FaultModel faults_;
  std::uint64_t ghostDrops_ = 0;
  DeadLetterRing deadLetterRing_;
};

/// RAII helper: installs a meter on construction, restores on destruction.
class MeterScope {
 public:
  MeterScope(Network& net, CostMeter& meter) noexcept
      : net_(net), prev_(net.setMeter(&meter)) {}
  ~MeterScope() { net_.setMeter(prev_); }

  MeterScope(const MeterScope&) = delete;
  MeterScope& operator=(const MeterScope&) = delete;

 private:
  Network& net_;
  CostMeter* prev_;
};

}  // namespace mlight::dht
