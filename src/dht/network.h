// Simulated Chord/Bamboo-style DHT overlay.
//
// The paper runs m-LIGHT over the Bamboo DHT ("a ring-like DHT") with more
// than one hundred logical peers on a LAN.  All reported metrics are
// counts of DHT operations, so a deterministic simulated overlay
// reproduces them exactly:
//
//  * peers sit on a 64-bit identifier ring (SHA-1 of their names);
//  * a key κ is owned by the peer whose identifier is *less than but
//    closest to* hash(κ) (predecessor mapping, paper §3.1);
//  * lookups route greedily through per-peer finger tables
//    (finger[k] = first peer at or after self + 2^k), giving the O(log n)
//    hop counts a real Chord/Bamboo deployment exhibits;
//  * membership can change (churn); registered stores are told to migrate
//    keys whose ownership moved.
//
// The Network is the only component that touches the CostMeter: each
// routed resolution counts one DHT-lookup plus its hops, and payload
// shipped between distinct peers counts bytes/records moved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "dht/cost.h"
#include "dht/id.h"
#include "dht/rpc.h"
#include "dht/sim.h"

namespace mlight::dht {

/// Result of a routed lookup.
struct RouteResult {
  RingId owner;        ///< Peer responsible for the key.
  std::size_t hops;    ///< Overlay hops from the initiator.
  double ms;           ///< Simulated network time along the hop path.
};

/// What an RPC handler receives when its envelope arrives at the owner.
/// `env` is the wire copy — serialized at the sender, deserialized at
/// delivery — so handlers cannot accidentally share initiator state.
struct RpcDelivery {
  RpcEnvelope env;
  RouteResult route;      ///< How the envelope was routed.
  double sentAt = 0.0;    ///< Departure time (after send-queue delay).
  double deliveredAt = 0.0;
};

/// Pairwise link latencies: deterministic per ordered peer pair, drawn
/// uniformly from [minMs, maxMs] by hashing the pair (symmetric).  The
/// default range loosely models a wide-area overlay; a LAN would be
/// {0.1, 1.0}.
struct LatencyModel {
  double minMs = 10.0;
  double maxMs = 100.0;
  /// Per-message send/serialization overhead at the issuing peer: the
  /// i-th message a peer sends in one burst departs i*sendOverheadMs
  /// late.  This is what makes a 10^5-message fan-out latency-bound at
  /// the sender even with parallel links (cf. DST's large-range
  /// queries, EXPERIMENTS.md).
  double sendOverheadMs = 1.0;
};

class Network {
 public:
  /// Builds an overlay with `peerCount` physical peers named "node:<i>",
  /// each owning `vnodesPerPeer` ring positions (virtual nodes — the
  /// classic Chord remedy for consistent-hashing arc imbalance; Bamboo
  /// and OpenDHT deployments do the same).  `seed` feeds only auxiliary
  /// choices (e.g. initiator picking).
  explicit Network(std::size_t peerCount, std::uint64_t seed = 1,
                   std::size_t vnodesPerPeer = 1,
                   LatencyModel latency = LatencyModel{});

  /// Number of ring positions (virtual nodes).
  std::size_t peerCount() const noexcept { return peers_.size(); }

  /// Size of the physical-peer index space (peers ever added; indices
  /// from physicalOf() are stable across churn, so departed peers keep
  /// their slot).
  std::size_t physicalCount() const noexcept { return physicalNames_.size(); }

  /// Number of physical peers currently in the overlay.
  std::size_t livePhysicalCount() const;

  /// All ring positions in ring order.
  const std::vector<RingId>& peers() const noexcept { return peers_; }

  /// Index of the physical peer owning ring position `vnode` (which must
  /// be a live position).  Stable across churn of *other* peers.
  std::size_t physicalOf(RingId vnode) const;

  /// Peer owning ring position `h`: greatest id <= h, wrapping.
  RingId responsible(RingId h) const noexcept;

  /// Peer owning application key `key`.
  RingId responsibleForKey(std::string_view key) const noexcept {
    return responsible(keyId(key));
  }

  /// Routes a lookup for `key` from `initiator`; meters one DHT-lookup
  /// and the hops taken.
  RouteResult lookup(RingId initiator, RingId key);
  RouteResult lookupKey(RingId initiator, std::string_view key) {
    return lookup(initiator, keyId(key));
  }

  /// Accounts payload moving from `from` to `to` (no cost if same peer).
  void shipPayload(RingId from, RingId to, std::size_t bytes,
                   std::size_t records);

  // --- Event-driven RPC core -------------------------------------------
  //
  // sendRpc() is the async counterpart of lookup(): it routes the
  // envelope to the owner of `key` (metering one DHT-lookup, its hops,
  // and one message — all at issue time, so meter scopes see costs in
  // program order), pushes the serialized envelope through the sender's
  // send queue, and schedules `handler` to run "at" the owner when the
  // message arrives.  Count metrics are therefore identical to an
  // equivalent sequence of lookup() calls; only the *timeline* differs.

  using RpcHandler = std::function<void(const RpcDelivery&)>;

  /// Issues `env` from env.from toward the owner of `key`.  Returns the
  /// route immediately (counts are synchronous); the handler runs when
  /// the scheduler reaches the arrival time.  Departure is serialized
  /// per sender: the i-th envelope a peer issues in a burst departs
  /// i * sendOverheadMs late, so wide fan-outs are latency-bound at the
  /// sender even though links are parallel.
  RouteResult sendRpc(RingId key, RpcEnvelope env, RpcHandler handler);

  /// Current simulated time (ms since the network was built).
  double now() const noexcept { return sched_.now(); }

  /// Delivers every pending message (the synchronous facade's pump).
  void run() { sched_.run(); }

  std::size_t pendingEvents() const noexcept { return sched_.pending(); }

  /// Marks the start of a measured operation: drains messages still in
  /// flight from prior operations, clears per-sender send backlogs, and
  /// resets the round high-water mark.  Returns now() — the operation's
  /// t0 for emergent latencyMs.
  double beginTimeline();

  /// Deepest RPC round delivered since beginTimeline() — the paper's
  /// "rounds of DHT-lookups" for the operation.
  std::uint32_t timelineMaxRound() const noexcept { return timelineMaxRound_; }

  /// Observes every delivery (replay/trace tests).  Null disables.
  using RpcTraceFn = std::function<void(const RpcDelivery&)>;
  void setRpcTrace(RpcTraceFn fn) { rpcTrace_ = std::move(fn); }

  /// A uniformly random live peer (deterministic via the network's RNG).
  RingId randomPeer();

  /// How a membership change happened: graceful departures hand their
  /// data to the new owners first; crashes take their copies with them.
  struct MembershipChange {
    enum class Kind { kJoin, kGracefulLeave, kCrash };
    Kind kind = Kind::kJoin;
    /// Ring positions that vanished (empty for joins).  For crashes,
    /// any data held only by these positions is gone.
    std::vector<RingId> removedVnodes;
  };

  /// Adds a physical peer named `name` (with this network's vnode count);
  /// migrates ownership via registered stores.  Returns its first vnode.
  RingId addPeer(std::string_view name);

  /// Removes the *physical* peer owning ring position `id` (all of its
  /// virtual nodes leave).  Keys are migrated to the new owners.
  /// Returns false if `id` is unknown or this is the last peer.
  bool removePeer(RingId id);

  /// Crash-fails the physical peer owning ring position `id`: its vnodes
  /// vanish *without* handing data off — registered stores decide what
  /// survives (replicas) and what is lost.
  bool crashPeer(RingId id);

  /// Stores register a migration callback invoked on membership changes.
  /// The callback must re-home (or mourn) every key whose responsible
  /// peer changed.  Returns a handle for unregisterStore (call it before
  /// the store dies).
  using RebalanceFn = std::function<void(const MembershipChange&)>;
  std::uint64_t registerStore(RebalanceFn fn) {
    stores_.emplace_back(nextStoreHandle_, std::move(fn));
    return nextStoreHandle_++;
  }
  void unregisterStore(std::uint64_t handle) {
    std::erase_if(stores_,
                  [handle](const auto& e) { return e.first == handle; });
  }

  /// Installs `meter` as the destination for cost accounting; returns the
  /// previous meter (restore it when done).  Null disables scoped
  /// metering; totals are always accumulated in totalCost().
  CostMeter* setMeter(CostMeter* meter) noexcept {
    CostMeter* old = meter_;
    meter_ = meter;
    return old;
  }

  const CostMeter& totalCost() const noexcept { return total_; }

  /// Maximum hops observed over all lookups so far (sanity: O(log n)).
  std::size_t maxHopsSeen() const noexcept { return maxHops_; }

  /// Simulated one-way latency of the overlay link a -> b (0 for a == b;
  /// links between two vnodes of one physical peer are local too).
  double linkMs(RingId a, RingId b) const noexcept;

  /// Per-message send overhead of the latency model.
  double sendOverheadMs() const noexcept { return latency_.sendOverheadMs; }

 private:
  void rebuildFingers();
  bool dropPhysicalPeer(RingId id, MembershipChange::Kind kind);
  struct Path {
    std::size_t hops;
    double ms;
  };
  Path routePath(RingId from, RingId target) const noexcept;

  std::vector<RingId> peers_;                       // vnodes, ring order
  std::map<RingId, std::vector<RingId>> fingers_;   // per-vnode fingers
  std::map<RingId, std::size_t> vnodeToPhysical_;   // vnode -> peer index
  std::vector<std::string> physicalNames_;          // by peer index
  std::size_t vnodesPerPeer_ = 1;
  LatencyModel latency_;
  std::vector<std::pair<std::uint64_t, RebalanceFn>> stores_;
  std::uint64_t nextStoreHandle_ = 0;
  mlight::common::Rng rng_;
  CostMeter* meter_ = nullptr;
  CostMeter total_;
  std::size_t maxHops_ = 0;
  std::uint64_t nextPeerSerial_ = 0;

  SimScheduler sched_;
  std::map<RingId, double> sendQueueFree_;  // per-sender next free slot
  std::uint64_t nextRpcId_ = 0;
  std::uint32_t timelineMaxRound_ = 0;
  RpcTraceFn rpcTrace_;
};

/// RAII helper: installs a meter on construction, restores on destruction.
class MeterScope {
 public:
  MeterScope(Network& net, CostMeter& meter) noexcept
      : net_(net), prev_(net.setMeter(&meter)) {}
  ~MeterScope() { net_.setMeter(prev_); }

  MeterScope(const MeterScope&) = delete;
  MeterScope& operator=(const MeterScope&) = delete;

 private:
  Network& net_;
  CostMeter* prev_;
};

}  // namespace mlight::dht
