#include "dht/network.h"

#include <algorithm>
#include <set>
#include <cassert>
#include <cstdio>

#include "common/invariants.h"

namespace mlight::dht {

std::string toString(RingId id) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(id.value));
  return buf;
}

Network::Network(std::size_t peerCount, std::uint64_t seed,
                 std::size_t vnodesPerPeer, LatencyModel latency)
    : vnodesPerPeer_(vnodesPerPeer), latency_(latency), rng_(seed) {
  assert(peerCount >= 1);
  assert(vnodesPerPeer >= 1);
  peers_.reserve(peerCount * vnodesPerPeer);
  for (std::size_t i = 0; i < peerCount; ++i) {
    addPeer("node:" + std::to_string(nextPeerSerial_++));
  }
}

std::size_t Network::livePhysicalCount() const {
  std::set<std::size_t> live;
  for (const auto& [vnode, physical] : vnodeToPhysical_) live.insert(physical);
  return live.size();
}

std::size_t Network::physicalOf(RingId vnode) const {
  const auto it = vnodeToPhysical_.find(vnode);
  assert(it != vnodeToPhysical_.end());
  return it->second;
}

RingId Network::responsible(RingId h) const noexcept {
  assert(!peers_.empty());
  // Greatest peer id <= h; wrap to the overall greatest if h precedes all.
  auto it = std::upper_bound(peers_.begin(), peers_.end(), h);
  if (it == peers_.begin()) return peers_.back();
  return *std::prev(it);
}

double Network::linkMs(RingId a, RingId b) const noexcept {
  if (a == b) return 0.0;
  {
    const auto ia = vnodeToPhysical_.find(a);
    const auto ib = vnodeToPhysical_.find(b);
    if (ia != vnodeToPhysical_.end() && ib != vnodeToPhysical_.end() &&
        ia->second == ib->second) {
      return 0.0;  // co-located virtual nodes
    }
  }
  // Deterministic symmetric draw from [minMs, maxMs].
  const std::uint64_t lo = std::min(a.value, b.value);
  const std::uint64_t hi = std::max(a.value, b.value);
  std::uint64_t h = lo * 0x9E3779B97F4A7C15ull ^ (hi + 0xD1B54A32D192ED03ull);
  h ^= h >> 32;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 29;
  const double unit =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return latency_.minMs + (latency_.maxMs - latency_.minMs) * unit;
}

Network::Path Network::routePath(RingId from, RingId target) const noexcept {
  std::size_t hops = 0;
  double ms = 0.0;
  RingId cur = from;
  while (cur != target) {
    // Greedy Chord step: jump to the contact that gets clockwise-closest
    // to the target without passing it; the successor (finger[0] covers
    // +1, but we keep an explicit fallback) guarantees progress.
    const auto& table = fingers_.at(cur);
    const std::uint64_t want = clockwise(cur, target);
    RingId next = cur;
    std::uint64_t best = 0;
    for (RingId f : table) {
      const std::uint64_t d = clockwise(cur, f);
      if (d != 0 && d <= want && d > best) {
        best = d;
        next = f;
      }
    }
    if (next == cur) {
      // All fingers overshoot; step to the immediate successor.
      auto it = std::upper_bound(peers_.begin(), peers_.end(), cur);
      next = (it == peers_.end()) ? peers_.front() : *it;
    }
    ms += linkMs(cur, next);
    cur = next;
    ++hops;
  }
  return Path{hops, ms};
}

RouteResult Network::lookup(RingId initiator, RingId key) {
  const RingId owner = responsible(key);
  const Path path = routePath(initiator, owner);
  maxHops_ = std::max(maxHops_, path.hops);
  total_.lookups += 1;
  total_.hops += path.hops;
  if (meter_ != nullptr) {
    meter_->lookups += 1;
    meter_->hops += path.hops;
  }
  return RouteResult{owner, path.hops, path.ms};
}

void Network::shipPayload(RingId from, RingId to, std::size_t bytes,
                          std::size_t records) {
  if (from == to) return;
  total_.bytesMoved += bytes;
  total_.recordsMoved += records;
  if (meter_ != nullptr) {
    meter_->bytesMoved += bytes;
    meter_->recordsMoved += records;
  }
}

RouteResult Network::sendRpc(RingId key, RpcEnvelope env, RpcHandler handler) {
  // Route + meter at issue time: the multiset of (initiator, key)
  // resolutions an operation performs is determined by index structure,
  // not delivery timing, so counts stay bit-identical to the old
  // synchronous call sequence.
  const RouteResult route = lookup(env.from, key);
  env.to = route.owner;
  env.id = nextRpcId_++;
  total_.messages += 1;
  if (meter_ != nullptr) meter_->messages += 1;

  // Real wire bytes: the handler works from the deserialized copy.
  common::Writer w;
  env.serialize(w);

  double& nextFree = sendQueueFree_[env.from];
  const double departure = std::max(sched_.now(), nextFree);
  nextFree = departure + latency_.sendOverheadMs;
  const double arrival = departure + route.ms;

  sched_.schedule(
      arrival, [this, wire = std::move(w).take(), route, departure,
                handler = std::move(handler)]() {
        common::Reader r(wire);
        RpcDelivery d;
        d.env = RpcEnvelope::deserialize(r);
        if (!r.atEnd()) {
          throw common::SerdeError("rpc: trailing bytes after envelope");
        }
        d.route = route;
        d.sentAt = departure;
        d.deliveredAt = sched_.now();
        timelineMaxRound_ = std::max(timelineMaxRound_, d.env.round);
        if (rpcTrace_) rpcTrace_(d);
        if (handler) handler(d);
      });
  return route;
}

double Network::beginTimeline() {
  // Anything still in flight belongs to a previous operation (e.g. a
  // fire-and-forget replica push); deliver it first so any follow-up
  // RPCs its handlers issue are not charged to this operation, then
  // start from a quiet network with idle send queues.
  sched_.run();
  sendQueueFree_.clear();
  timelineMaxRound_ = 0;
  return sched_.now();
}

RingId Network::randomPeer() {
  assert(!peers_.empty());
  return peers_[rng_.below(peers_.size())];
}

RingId Network::addPeer(std::string_view name) {
  const std::size_t physical = physicalNames_.size();
  physicalNames_.emplace_back(name);
  RingId first{};
  for (std::size_t v = 0; v < vnodesPerPeer_; ++v) {
    RingId id = keyId(std::string("peer-id:") + std::string(name) + "#" +
                      std::to_string(v));
    // Resolve the (astronomically unlikely) collision deterministically.
    while (std::binary_search(peers_.begin(), peers_.end(), id)) {
      id.value += 1;
    }
    peers_.insert(std::upper_bound(peers_.begin(), peers_.end(), id), id);
    vnodeToPhysical_[id] = physical;
    if (v == 0) first = id;
  }
  rebuildFingers();
  const MembershipChange change{MembershipChange::Kind::kJoin, {}};
  for (const auto& [handle, fn] : stores_) fn(change);
  return first;
}

bool Network::dropPhysicalPeer(RingId id, MembershipChange::Kind kind) {
  const auto mapIt = vnodeToPhysical_.find(id);
  if (mapIt == vnodeToPhysical_.end()) return false;
  const std::size_t physical = mapIt->second;
  bool othersLive = false;
  for (const auto& [vnode, owner] : vnodeToPhysical_) {
    (void)vnode;
    if (owner != physical) {
      othersLive = true;
      break;
    }
  }
  if (!othersLive) return false;  // last physical peer
  MembershipChange change;
  change.kind = kind;
  for (const auto& [vnode, owner] : vnodeToPhysical_) {
    if (owner == physical) change.removedVnodes.push_back(vnode);
  }
  std::erase_if(peers_, [&](RingId p) {
    const auto it = vnodeToPhysical_.find(p);
    return it != vnodeToPhysical_.end() && it->second == physical;
  });
  std::erase_if(vnodeToPhysical_,
                [&](const auto& e) { return e.second == physical; });
  rebuildFingers();
  for (const auto& [handle, fn] : stores_) fn(change);
  return true;
}

bool Network::removePeer(RingId id) {
  return dropPhysicalPeer(id, MembershipChange::Kind::kGracefulLeave);
}

bool Network::crashPeer(RingId id) {
  return dropPhysicalPeer(id, MembershipChange::Kind::kCrash);
}

void Network::rebuildFingers() {
  if (mlight::common::auditEnabled(mlight::common::AuditLevel::kBoundaries)) {
    // Finger construction and the predecessor mapping both assume the
    // ring is sorted and duplicate-free; audit it at every membership
    // change (the only times fingers are rebuilt).
    std::vector<std::uint64_t> positions;
    positions.reserve(peers_.size());
    for (const RingId p : peers_) positions.push_back(p.value);
    mlight::common::auditRingOrder(positions);
  }
  fingers_.clear();
  for (RingId p : peers_) {
    std::vector<RingId>& table = fingers_[p];
    table.reserve(64);
    RingId last{p.value};  // sentinel: skip duplicate fingers
    for (int k = 0; k < 64; ++k) {
      const RingId probe{p.value + (std::uint64_t{1} << k)};
      // First peer at or clockwise-after `probe`.
      auto it = std::lower_bound(peers_.begin(), peers_.end(), probe);
      const RingId f = (it == peers_.end()) ? peers_.front() : *it;
      if (f != last && f != p) {
        table.push_back(f);
        last = f;
      }
    }
  }
}

}  // namespace mlight::dht
