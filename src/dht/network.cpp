#include "dht/network.h"

#include <algorithm>
#include <memory>
#include <set>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/invariants.h"

namespace mlight::dht {

std::uint64_t faultSeedFromEnv(std::uint64_t fallback) {
  const char* raw = std::getenv("MLIGHT_FAULT_SEED");
  if (raw == nullptr || *raw == '\0') return fallback;
  // Strict decimal: strtoull alone would accept "17x" (trailing garbage),
  // " 17", "-1" (wraps), and saturate on overflow — all silent wrong-seed
  // runs.  Only an exact digit string parses.
  for (const char* p = raw; *p != '\0'; ++p) {
    MLIGHT_CHECK(*p >= '0' && *p <= '9',
                 "MLIGHT_FAULT_SEED must be a plain decimal integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  MLIGHT_CHECK(end != raw && *end == '\0',
               "MLIGHT_FAULT_SEED must be a plain decimal integer");
  MLIGHT_CHECK(errno != ERANGE, "MLIGHT_FAULT_SEED overflows 64 bits");
  return static_cast<std::uint64_t>(value);
}

std::string toString(RingId id) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(id.value));
  return buf;
}

namespace {
/// splitmix64 finalizer — the shard hash over a physical peer's anchor
/// vnode.  Deterministic and join-order independent (the anchor id is
/// itself a pure function of the peer's name).
std::uint64_t mixShard(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

Network::Network(std::size_t peerCount, std::uint64_t seed,
                 std::size_t vnodesPerPeer, LatencyModel latency)
    : vnodesPerPeer_(vnodesPerPeer), latency_(latency), rng_(seed) {
  assert(peerCount >= 1);
  assert(vnodesPerPeer >= 1);
  // Bulk construction: generate every vnode id, sort the ring once, and
  // build finger tables once.  The incremental path (addPeer) re-sorts
  // and rebuilds per join — fine for churn, quadratic-and-worse for a
  // 10k-peer ring bootstrap (n sorted inserts plus n full finger
  // rebuilds is O(n^2 log n) probe work; this is O(n log n) up to the
  // 64-finger constant).
  peers_.reserve(peerCount * vnodesPerPeer);
  physicalNames_.reserve(peerCount);
  physicalFirstVnode_.reserve(peerCount);
  struct Vnode {
    RingId id;
    std::size_t physical;
  };
  std::vector<Vnode> vnodes;
  vnodes.reserve(peerCount * vnodesPerPeer);
  for (std::size_t i = 0; i < peerCount; ++i) {
    const std::string name = "node:" + std::to_string(nextPeerSerial_++);
    const std::size_t physical = physicalNames_.size();
    physicalNames_.push_back(name);
    for (std::size_t v = 0; v < vnodesPerPeer_; ++v) {
      const RingId id = keyId("peer-id:" + name + "#" + std::to_string(v));
      vnodes.push_back(Vnode{id, physical});
      if (v == 0) physicalFirstVnode_.push_back(id);
    }
  }
  std::sort(vnodes.begin(), vnodes.end(),
            [](const Vnode& a, const Vnode& b) {
              if (a.id != b.id) return a.id < b.id;
              return a.physical < b.physical;  // total order on collision
            });
  // Resolve the (astronomically unlikely) id collision deterministically,
  // mirroring addPeer's bump-until-free.
  for (std::size_t k = 1; k < vnodes.size(); ++k) {
    if (vnodes[k].id == vnodes[k - 1].id) vnodes[k].id.value += 1;
  }
  for (const Vnode& v : vnodes) {
    peers_.push_back(v.id);
    vnodeToPhysical_[v.id] = v.physical;
  }
  rebuildFingers();
  setSimShards(simShardsFromEnv());
  sched_.setLookaheadMs(latency_.minMs);
}

void Network::setSimShards(std::size_t n) {
  if (n == 0) n = 1;
  sched_.setShardCount(n);
  sched_.setLookaheadMs(latency_.minMs);
  physicalShard_.clear();
  physicalShard_.reserve(physicalFirstVnode_.size());
  for (const RingId anchor : physicalFirstVnode_) {
    physicalShard_.push_back(
        static_cast<std::uint32_t>(mixShard(anchor.value) % n));
  }
}

std::uint32_t Network::shardOfVnode(RingId vnode) const noexcept {
  const auto it = vnodeToPhysical_.find(vnode);
  if (it == vnodeToPhysical_.end()) return 0;
  return physicalShard_[it->second];
}

std::size_t Network::livePhysicalCount() const {
  std::set<std::size_t> live;
  for (const auto& [vnode, physical] : vnodeToPhysical_) live.insert(physical);
  return live.size();
}

std::size_t Network::physicalOf(RingId vnode) const {
  const auto it = vnodeToPhysical_.find(vnode);
  assert(it != vnodeToPhysical_.end());
  return it->second;
}

RingId Network::responsible(RingId h) const noexcept {
  assert(!peers_.empty());
  // Greatest peer id <= h; wrap to the overall greatest if h precedes all.
  auto it = std::upper_bound(peers_.begin(), peers_.end(), h);
  if (it == peers_.begin()) return peers_.back();
  return *std::prev(it);
}

double Network::linkMs(RingId a, RingId b) const noexcept {
  if (a == b) return 0.0;
  {
    const auto ia = vnodeToPhysical_.find(a);
    const auto ib = vnodeToPhysical_.find(b);
    if (ia != vnodeToPhysical_.end() && ib != vnodeToPhysical_.end() &&
        ia->second == ib->second) {
      return 0.0;  // co-located virtual nodes
    }
  }
  // Deterministic symmetric draw from [minMs, maxMs].
  const std::uint64_t lo = std::min(a.value, b.value);
  const std::uint64_t hi = std::max(a.value, b.value);
  std::uint64_t h = lo * 0x9E3779B97F4A7C15ull ^ (hi + 0xD1B54A32D192ED03ull);
  h ^= h >> 32;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 29;
  const double unit =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return latency_.minMs + (latency_.maxMs - latency_.minMs) * unit;
}

Network::Path Network::routePath(RingId from, RingId target) const noexcept {
  std::size_t hops = 0;
  double ms = 0.0;
  RingId cur = from;
  while (cur != target) {
    // Greedy Chord step: jump to the contact that gets clockwise-closest
    // to the target without passing it; the successor (finger[0] covers
    // +1, but we keep an explicit fallback) guarantees progress.
    const auto curIt = std::lower_bound(peers_.begin(), peers_.end(), cur);
    assert(curIt != peers_.end() && *curIt == cur);
    const auto& table = fingersByIdx_[static_cast<std::size_t>(
        curIt - peers_.begin())];
    const std::uint64_t want = clockwise(cur, target);
    RingId next = cur;
    std::uint64_t best = 0;
    for (RingId f : table) {
      const std::uint64_t d = clockwise(cur, f);
      if (d != 0 && d <= want && d > best) {
        best = d;
        next = f;
      }
    }
    if (next == cur) {
      // All fingers overshoot; step to the immediate successor.
      auto it = std::upper_bound(peers_.begin(), peers_.end(), cur);
      next = (it == peers_.end()) ? peers_.front() : *it;
    }
    ms += linkMs(cur, next);
    cur = next;
    ++hops;
  }
  return Path{hops, ms};
}

RouteResult Network::lookup(RingId initiator, RingId key) {
  const RingId owner = responsible(key);
  const Path path = routePath(initiator, owner);
  maxHops_ = std::max(maxHops_, path.hops);
  total_.lookups += 1;
  total_.hops += path.hops;
  if (meter_ != nullptr) {
    meter_->lookups += 1;
    meter_->hops += path.hops;
  }
  return RouteResult{owner, path.hops, path.ms};
}

void Network::shipPayload(RingId from, RingId to, std::size_t bytes,
                          std::size_t records) {
  if (from == to) return;
  total_.bytesMoved += bytes;
  total_.recordsMoved += records;
  if (meter_ != nullptr) {
    meter_->bytesMoved += bytes;
    meter_->recordsMoved += records;
  }
}

std::uint32_t Network::allocDeliverySlot() {
  if (freeDeliverySlots_.empty()) {
    deliverySlots_.emplace_back();
    return static_cast<std::uint32_t>(deliverySlots_.size() - 1);
  }
  const std::uint32_t slot = freeDeliverySlots_.back();
  freeDeliverySlots_.pop_back();
  return slot;
}

void Network::prepSlot(std::uint32_t slot) {
  // Shard-worker stage: a pure decode of the slot's immutable wire
  // image into the slot's staging envelope.  The wire bytes are fixed
  // at schedule time, the slot belongs to exactly this event until its
  // apply, and the coordinator is blocked at the window barrier — so
  // this touches no state shared with any other thread.  No pooled
  // buffers here either (the pool is coordinator-only); the payload
  // allocates on the worker and is recycled into the pool at apply.
  DeliverySlot& s = deliverySlots_[slot];
  common::Reader r(s.wire);
  s.prepped.payload.clear();
  s.prepped.deserializeFrom(r);
  if (!r.atEnd()) {
    std::abort();  // corrupt self-serialized envelope: unreachable
  }
  s.hasPrepped = true;
}

void Network::scheduleSlotDelivery(std::uint32_t slot, RingId to,
                                   double arrival) {
  // Serial mode skips both the shard resolution (everything is shard 0)
  // and the prep stage (events are popped and applied directly, never
  // window-batched, so a prep closure would just be carried and
  // dropped).
  if (sched_.shardCount() == 1) {
    sched_.scheduleOn(0, arrival, [this, slot]() { deliverSlot(slot); });
    return;
  }
  sched_.scheduleOn(shardOfVnode(to), arrival,
                    [this, slot]() { deliverSlot(slot); },
                    [this, slot]() { prepSlot(slot); });
}

void Network::deliverSlot(std::uint32_t slot) {
  // Move the slot's contents to locals and free the slot *before* the
  // handler runs: handlers routinely issue follow-up RPCs, which
  // allocate slots (possibly reallocating deliverySlots_) and must be
  // free to reuse this one.
  std::vector<std::uint8_t> wire = std::move(deliverySlots_[slot].wire);
  const RouteResult route = deliverySlots_[slot].route;
  const double departure = deliverySlots_[slot].departure;
  RpcHandler handler = std::move(deliverySlots_[slot].handler);
  std::shared_ptr<RpcFlight> flight = std::move(deliverySlots_[slot].flight);
  const bool hasPrepped = deliverySlots_[slot].hasPrepped;
  RpcEnvelope prepped;
  if (hasPrepped) {
    prepped = std::move(deliverySlots_[slot].prepped);
    deliverySlots_[slot].hasPrepped = false;
  }
  freeDeliverySlots_.push_back(slot);

  RpcDelivery d;
  if (hasPrepped) {
    d.env = std::move(prepped);
  } else {
    common::Reader r(wire);
    d.env.payload = bufferPool_.acquire();  // reused by deserializeFrom
    d.env.deserializeFrom(r);
    if (!r.atEnd()) {
      throw common::SerdeError("rpc: trailing bytes after envelope");
    }
  }

  if (flight != nullptr) {
    // Fault-injected delivery.  Crash-while-in-flight: if the
    // addressee's vnode left the ring after departure, nobody is there
    // to run the handler — drop the delivery and let the timeout retry
    // against the current ring.
    if (vnodeToPhysical_.find(d.env.to) == vnodeToPhysical_.end()) {
      ++ghostDrops_;
      bufferPool_.release(std::move(d.env.payload));
      bufferPool_.release(std::move(wire));
      return;
    }
    flight->delivered = true;
    sched_.cancel(flight->timeoutSeq);
  }

  d.route = route;
  d.sentAt = departure;
  d.deliveredAt = sched_.now();
  timelineMaxRound_ = std::max(timelineMaxRound_, d.env.round);
  if (rpcTrace_) rpcTrace_(d);
  if (handler) handler(d);
  bufferPool_.release(std::move(d.env.payload));
  bufferPool_.release(std::move(wire));
}

void Network::setFaultModel(const FaultModel& faults) { faults_ = faults; }

namespace {

// Per-attempt fault randomness, derived as a pure function of the fault
// seed, the envelope's logical content, and the attempt number — NOT
// drawn from a shared sequential stream.  A shared stream is consumed in
// event-execution order, so two same-time events that both transmit
// would swap each other's loss outcomes when the schedule perturbation
// (MLIGHT_SCHED_SHUFFLE_SEED) reorders them.  Keying the draw on content
// attaches the outcome to the message itself: permuting deliveries
// permutes which draw happens first, but every envelope still sees the
// same loss/jitter it would have seen in any other order.  env.id is
// deliberately excluded — rpc ids are handed out in execution order and
// would re-introduce exactly the order-dependence this removes.  Two
// byte-identical concurrent envelopes share one outcome, which is fine:
// swapping indistinguishable messages is a no-op.
mlight::common::Rng attemptRng(const FaultModel& faults,
                               const RpcEnvelope& env, std::size_t attempt) {
  mlight::common::Digest d;
  d.feed(faults.seed);
  d.feed(env.from.value);
  d.feed(env.to.value);
  d.feed(static_cast<std::uint64_t>(env.kind));
  d.feed(env.round);
  d.feed(static_cast<std::uint64_t>(attempt));
  d.feedBytes(env.payload);
  return mlight::common::Rng(d.value());
}

}  // namespace

double Network::rpcTimeoutMs(std::size_t attempt,
                             double routeMs) const noexcept {
  const double floor =
      2.0 * routeMs + faults_.jitterMs + faults_.timeoutBaseMs;
  return retryBackoffMs(floor, attempt);
}

void Network::transmitWithFaults(RingId key, const RouteResult& route,
                                 RpcEnvelope env, RpcHandler handler,
                                 RpcFailFn onFail, std::size_t attempt) {
  // Real wire bytes: the handler works from the deserialized copy, and a
  // retransmission re-serializes (the envelope really crosses the wire
  // again, with its re-routed `to`).
  common::Writer w(bufferPool_.acquire());
  env.serialize(w);

  double& nextFree = sendQueueFree_[env.from];
  const double departure = std::max(sched_.now(), nextFree);
  nextFree = departure + latency_.sendOverheadMs;

  // Per-attempt fault draws, in a fixed order (loss first, then jitter
  // only for surviving transmissions) so each attempt's outcome is a
  // pure function of (fault seed, envelope content, attempt number) —
  // see attemptRng above for why this survives schedule perturbation.
  mlight::common::Rng draws = attemptRng(faults_, env, attempt);
  const bool lost = draws.chance(faults_.lossProbability);

  auto flight = std::make_shared<RpcFlight>();

  if (!lost) {
    const double jitter =
        faults_.jitterMs > 0.0 ? draws.uniform() * faults_.jitterMs : 0.0;
    // Guarded delivery through a pooled slot, like the fault-free path:
    // shard-tagged with the addressee and window-preppable.  The ghost
    // check and timeout suppression live in deliverSlot (flight set).
    const std::uint32_t slot = allocDeliverySlot();
    DeliverySlot& s = deliverySlots_[slot];
    s.wire = std::move(w).take();
    s.route = route;
    s.departure = departure;
    s.handler = handler;
    s.flight = flight;
    scheduleSlotDelivery(slot, env.to, departure + route.ms + jitter);
  } else {
    bufferPool_.release(std::move(w).take());
  }

  // The timeout executes "at" the sender (its shard), like the
  // retransmission it triggers.
  flight->timeoutSeq = sched_.scheduleOn(
      shardOfVnode(env.from), departure + rpcTimeoutMs(attempt, route.ms),
      [this, key, env = std::move(env), handler = std::move(handler),
       onFail = std::move(onFail), attempt, flight]() mutable {
        if (flight->delivered) return;
        if (attempt + 1 >= faults_.maxAttempts) {
          deadLetterRing_.record(DeadLetter{env.id, env.kind, env.from,
                                            env.to, attempt + 1,
                                            sched_.now()});
          if (onFail) onFail(env, attempt + 1);
          return;
        }
        // Retransmit: re-route on the *current* ring (the owner may have
        // changed if the timeout was caused by a crash) — a fresh metered
        // lookup plus one retry tick.
        total_.retries += 1;
        if (meter_ != nullptr) meter_->retries += 1;
        const RouteResult retryRoute = lookup(env.from, key);
        env.to = retryRoute.owner;
        peerLoads_.note(physicalOf(retryRoute.owner));
        transmitWithFaults(key, retryRoute, std::move(env),
                           std::move(handler), std::move(onFail),
                           attempt + 1);
      });
}

RouteResult Network::sendRpc(RingId key, RpcEnvelope env, RpcHandler handler,
                             RpcFailFn onFail) {
  // Route + meter at issue time: the multiset of (initiator, key)
  // resolutions an operation performs is determined by index structure,
  // not delivery timing, so counts stay bit-identical to the old
  // synchronous call sequence.
  const RouteResult route = lookup(env.from, key);
  env.to = route.owner;
  env.id = nextRpcId_++;
  total_.messages += 1;
  if (meter_ != nullptr) meter_->messages += 1;
  peerLoads_.note(physicalOf(route.owner));

  if (faults_.enabled) {
    transmitWithFaults(key, route, std::move(env), std::move(handler),
                       std::move(onFail), 0);
    return route;
  }

  // Fault-free path: exactly one delivery event, no RNG draws — the
  // timeline is byte-identical to a network without the fault layer.
  // The wire image serializes into a pooled buffer, the consumed
  // payload is recycled, and the in-flight state parks in a pooled
  // delivery slot so the scheduled closure is two words (no per-message
  // allocation anywhere in the steady state).
  common::Writer w(bufferPool_.acquire());
  env.serialize(w);
  bufferPool_.release(std::move(env.payload));

  double& nextFree = sendQueueFree_[env.from];
  const double departure = std::max(sched_.now(), nextFree);
  nextFree = departure + latency_.sendOverheadMs;
  const double arrival = departure + route.ms;

  const std::uint32_t slot = allocDeliverySlot();
  DeliverySlot& s = deliverySlots_[slot];
  s.wire = std::move(w).take();
  s.route = route;
  s.departure = departure;
  s.handler = std::move(handler);
  scheduleSlotDelivery(slot, env.to, arrival);
  return route;
}

double Network::beginTimeline() {
  // Anything still in flight belongs to a previous operation (e.g. a
  // fire-and-forget replica push); deliver it first so any follow-up
  // RPCs its handlers issue are not charged to this operation, then
  // start from a quiet network with idle send queues.
  sched_.run();
  sendQueueFree_.clear();
  timelineMaxRound_ = 0;
  return sched_.now();
}

RingId Network::randomPeer() {
  assert(!peers_.empty());
  return peers_[rng_.below(peers_.size())];
}

RingId Network::addPeer(std::string_view name) {
  const std::size_t physical = physicalNames_.size();
  physicalNames_.emplace_back(name);
  RingId first{};
  for (std::size_t v = 0; v < vnodesPerPeer_; ++v) {
    RingId id = keyId(std::string("peer-id:") + std::string(name) + "#" +
                      std::to_string(v));
    // Resolve the (astronomically unlikely) collision deterministically.
    while (std::binary_search(peers_.begin(), peers_.end(), id)) {
      id.value += 1;
    }
    peers_.insert(std::upper_bound(peers_.begin(), peers_.end(), id), id);
    vnodeToPhysical_[id] = physical;
    if (v == 0) first = id;
  }
  physicalFirstVnode_.push_back(first);
  physicalShard_.push_back(static_cast<std::uint32_t>(
      mixShard(first.value) % sched_.shardCount()));
  rebuildFingers();
  const MembershipChange change{MembershipChange::Kind::kJoin, {}};
  for (const auto& [handle, fn] : stores_) fn(change);
  return first;
}

bool Network::dropPhysicalPeer(RingId id, MembershipChange::Kind kind) {
  const auto mapIt = vnodeToPhysical_.find(id);
  if (mapIt == vnodeToPhysical_.end()) return false;
  const std::size_t physical = mapIt->second;
  bool othersLive = false;
  for (const auto& [vnode, owner] : vnodeToPhysical_) {
    (void)vnode;
    if (owner != physical) {
      othersLive = true;
      break;
    }
  }
  if (!othersLive) return false;  // last physical peer
  MembershipChange change;
  change.kind = kind;
  for (const auto& [vnode, owner] : vnodeToPhysical_) {
    if (owner == physical) change.removedVnodes.push_back(vnode);
  }
  std::erase_if(peers_, [&](RingId p) {
    const auto it = vnodeToPhysical_.find(p);
    return it != vnodeToPhysical_.end() && it->second == physical;
  });
  std::erase_if(vnodeToPhysical_,
                [&](const auto& e) { return e.second == physical; });
  rebuildFingers();
  for (const auto& [handle, fn] : stores_) fn(change);
  return true;
}

bool Network::removePeer(RingId id) {
  return dropPhysicalPeer(id, MembershipChange::Kind::kGracefulLeave);
}

bool Network::crashPeer(RingId id) {
  return dropPhysicalPeer(id, MembershipChange::Kind::kCrash);
}

void Network::rebuildFingers() {
  if (mlight::common::auditEnabled(mlight::common::AuditLevel::kBoundaries)) {
    // Finger construction and the predecessor mapping both assume the
    // ring is sorted and duplicate-free; audit it at every membership
    // change (the only times fingers are rebuilt).
    std::vector<std::uint64_t> positions;
    positions.reserve(peers_.size());
    for (const RingId p : peers_) positions.push_back(p.value);
    mlight::common::auditRingOrder(positions);
  }
  // Tables are indexed by ring position; inner vectors keep their
  // capacity across rebuilds (churn rebuilds fingers on every
  // membership change).
  fingersByIdx_.resize(peers_.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    const RingId p = peers_[i];
    std::vector<RingId>& table = fingersByIdx_[i];
    table.clear();
    table.reserve(64);
    RingId last{p.value};  // sentinel: skip duplicate fingers
    for (int k = 0; k < 64; ++k) {
      const RingId probe{p.value + (std::uint64_t{1} << k)};
      // First peer at or clockwise-after `probe`.
      auto it = std::lower_bound(peers_.begin(), peers_.end(), probe);
      const RingId f = (it == peers_.end()) ? peers_.front() : *it;
      if (f != last && f != p) {
        table.push_back(f);
        last = f;
      }
    }
  }
}

}  // namespace mlight::dht
