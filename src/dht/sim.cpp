#include "dht/sim.h"

#include <cassert>
#include <cerrno>
#include <cstdlib>

#include "common/check.h"

namespace mlight::dht {

namespace {
/// Strict decimal parse shared by the scheduler env knobs: strtoull alone
/// would accept "17x" (trailing garbage), " 17", "-1" (wraps), and
/// saturate on overflow — all silent wrong-config runs.  Mirrors the
/// MLIGHT_FAULT_SEED fix: only an exact digit string parses, anything
/// else fails loudly instead of silently running the fallback config.
std::uint64_t strictDecimalEnv(const char* raw, const char* what) {
  for (const char* p = raw; *p != '\0'; ++p) {
    MLIGHT_CHECK(*p >= '0' && *p <= '9', what);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  MLIGHT_CHECK(end != raw && *end == '\0', what);
  MLIGHT_CHECK(errno != ERANGE, what);
  return static_cast<std::uint64_t>(value);
}
}  // namespace

std::uint64_t schedShuffleSeedFromEnv(std::uint64_t fallback) {
  const char* raw = std::getenv("MLIGHT_SCHED_SHUFFLE_SEED");
  if (raw == nullptr || *raw == '\0') return fallback;
  return strictDecimalEnv(
      raw, "MLIGHT_SCHED_SHUFFLE_SEED must be a plain decimal integer");
}

std::size_t simShardsFromEnv(std::size_t fallback) {
  const char* raw = std::getenv("MLIGHT_SIM_SHARDS");
  if (raw == nullptr || *raw == '\0') return fallback;
  const std::uint64_t value = strictDecimalEnv(
      raw, "MLIGHT_SIM_SHARDS must be a plain decimal integer");
  // 0 shards is not a sharding choice, it is a typo: fail like any other
  // malformed value instead of silently running the fallback executor.
  MLIGHT_CHECK(value != 0, "MLIGHT_SIM_SHARDS must be >= 1");
  return value > 64 ? 64 : static_cast<std::size_t>(value);
}

namespace {
/// splitmix64 finalizer: a bijective mix of (seed, seq), so shuffled tie
/// keys are distinct whenever sequence numbers are — the `seq` fallback
/// in the comparator never actually fires.
std::uint64_t mixTie(std::uint64_t seed, std::uint64_t seq) noexcept {
  std::uint64_t z = seq + seed * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

std::uint64_t SimScheduler::scheduleOn(std::uint32_t shard, double at, Fn fn,
                                       PrepFn prep) {
  const std::uint64_t seq = nextSeq_++;
  const std::uint64_t tie =
      shuffleSeed_ == 0 ? seq : mixTie(shuffleSeed_, seq);
  std::vector<Event>& heap =
      shardHeaps_[shard < shardHeaps_.size() ? shard : 0];
  // Skip the initial capacity ramp (1, 2, 4, ...): even a single RPC
  // schedules a handful of events, and the heap never shrinks, so one
  // up-front block makes steady-state scheduling allocation-free.
  if (heap.capacity() == 0) heap.reserve(64);
  heap.push_back(Event{std::max(at, clock_.now()), tie, seq, std::move(fn),
                       std::move(prep)});
  std::push_heap(heap.begin(), heap.end(), Later{});
  return seq;
}

void SimScheduler::setShardCount(std::size_t n) {
  if (n == 0) n = 1;
  if (n == shardHeaps_.size()) return;
  assert(pending() == 0 && "setShardCount needs a quiet scheduler");
  stopWorkers();
  shardHeaps_.assign(n, {});
  batches_.assign(n, {});
  applyQueue_.clear();
  applyQueueHead_ = 0;
  if (n > 1) startWorkers();
}

void SimScheduler::startWorkers() {
  poolStop_ = false;
  workers_.reserve(shardHeaps_.size() - 1);
  for (std::size_t s = 1; s < shardHeaps_.size(); ++s) {
    workers_.emplace_back([this, s] { workerLoop(s); });
  }
}

void SimScheduler::stopWorkers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(poolMutex_);
    poolStop_ = true;
  }
  poolStart_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void SimScheduler::workerLoop(std::size_t shard) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(poolMutex_);
      poolStart_.wait(lk,
                      [&] { return poolStop_ || poolGeneration_ != seen; });
      if (poolStop_) return;
      seen = poolGeneration_;
    }
    drainShardWindow(shard);
    {
      std::lock_guard<std::mutex> lk(poolMutex_);
      --pendingWorkers_;
    }
    poolDone_.notify_one();
  }
}

void SimScheduler::drainShardWindow(std::size_t shard) {
  std::vector<Event>& heap = shardHeaps_[shard];
  Batch& batch = batches_[shard];
  while (!heap.empty() && heap.front().at < windowEnd_) {
    std::pop_heap(heap.begin(), heap.end(), Later{});
    Event ev = std::move(heap.back());
    heap.pop_back();
    // Prep runs even for events later discarded as cancelled: the
    // cancelled set is coordinator state and off-limits here, and prep
    // stages are pure (wasted work at worst).
    if (ev.prep) {
      ev.prep();
      ev.prep = nullptr;
      ++batch.preps;
    }
    batch.events.push_back(std::move(ev));
  }
}

void SimScheduler::refillWindow() {
  // Globally earliest pending time across the shard queues.
  bool any = false;
  double start = 0.0;
  for (const auto& heap : shardHeaps_) {
    if (heap.empty()) continue;
    if (!any || heap.front().at < start) start = heap.front().at;
    any = true;
  }
  if (!any) return;
  windowEnd_ = start + lookaheadMs_;
  ++windowCount_;

  // Parallel prep phase: shard 0 on this (coordinator) thread, the rest
  // on their workers.  Workers touch only shardHeaps_[s]/batches_[s];
  // the coordinator blocks until every shard reports done, so the apply
  // phase below observes all batches with a happens-before edge.
  {
    std::lock_guard<std::mutex> lk(poolMutex_);
    pendingWorkers_ = shardHeaps_.size() - 1;
    ++poolGeneration_;
  }
  poolStart_.notify_all();
  drainShardWindow(0);
  {
    std::unique_lock<std::mutex> lk(poolMutex_);
    poolDone_.wait(lk, [&] { return pendingWorkers_ == 0; });
  }

  // Barrier merge: the shard batches are each ascending; merge them
  // into the apply queue in canonical global (time, tie, seq) order.
  // refillWindow() only runs with the previous window fully consumed.
  applyQueue_.clear();
  applyQueueHead_ = 0;
  for (Batch& b : batches_) {
    for (Event& ev : b.events) applyQueue_.push_back(std::move(ev));
    b.events.clear();
  }
  std::sort(applyQueue_.begin(), applyQueue_.end(),
            [](const Event& a, const Event& b) { return firesBefore(a, b); });
}

bool SimScheduler::popNext(Event& out) {
  for (;;) {
    // Candidate: the window batch cursor vs every shard heap front —
    // a heap can hold an event that sorts before the batched ones when
    // an applied handler scheduled into the open window (the serial
    // executor would have run it first, so we must too).
    const Event* best = nullptr;
    std::size_t bestShard = shardHeaps_.size();  // sentinel: from batch
    if (applyQueueHead_ < applyQueue_.size()) {
      best = &applyQueue_[applyQueueHead_];
    }
    for (std::size_t s = 0; s < shardHeaps_.size(); ++s) {
      const auto& heap = shardHeaps_[s];
      if (heap.empty()) continue;
      if (best == nullptr || firesBefore(heap.front(), *best)) {
        best = &heap.front();
        bestShard = s;
      }
    }
    if (best == nullptr) return false;
    if (bestShard == shardHeaps_.size()) {
      out = std::move(applyQueue_[applyQueueHead_]);
      ++applyQueueHead_;
    } else {
      auto& heap = shardHeaps_[bestShard];
      std::pop_heap(heap.begin(), heap.end(), Later{});
      out = std::move(heap.back());
      heap.pop_back();
    }
    if (!cancelled_.empty() && cancelled_.erase(out.seq) > 0) {
      continue;  // discarded
    }
    return true;
  }
}

bool SimScheduler::runOne() {
  // Serial fast path: one shard, no staged batch — the legacy executor,
  // byte-identical behavior and cost.
  if (shardHeaps_.size() == 1 && applyQueue_.size() == applyQueueHead_) {
    std::vector<Event>& heap = shardHeaps_[0];
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), Later{});
      Event ev = std::move(heap.back());
      heap.pop_back();
      // The cancellation set is empty in fault-free runs; skip the
      // per-event hash probes entirely then (empty() is a size load).
      if (!cancelled_.empty() && cancelled_.erase(ev.seq) > 0) {
        continue;  // discarded, clock untouched
      }
      // A reorderable tie: another live event with the same timestamp is
      // still pending, so the tie-break genuinely chose between the two.
      // (An event scheduled *by* an earlier handler at the same timestamp
      // is causally ordered — it never coexisted with its parent in the
      // heap — and does not count: shuffling cannot reorder causality.)
      if (!heap.empty() && heap.front().at == ev.at &&
          (cancelled_.empty() ||
           cancelled_.find(heap.front().seq) == cancelled_.end())) {
        ++tieDeliveries_;
      }
      clock_.advanceTo(ev.at);
      ev.fn();
      return true;
    }
    return false;
  }

  Event ev;
  if (!popNext(ev)) return false;
  // Same reorderable-tie witness as the serial path, against the next
  // live pending event wherever it sits (batch cursor or a shard heap).
  const Event* next = nullptr;
  if (applyQueueHead_ < applyQueue_.size()) {
    next = &applyQueue_[applyQueueHead_];
  }
  for (const auto& heap : shardHeaps_) {
    if (heap.empty()) continue;
    if (next == nullptr || firesBefore(heap.front(), *next)) {
      next = &heap.front();
    }
  }
  if (next != nullptr && next->at == ev.at &&
      (cancelled_.empty() ||
       cancelled_.find(next->seq) == cancelled_.end())) {
    ++tieDeliveries_;
  }
  clock_.advanceTo(ev.at);
  ev.fn();
  return true;
}

void SimScheduler::run() {
  if (shardHeaps_.size() == 1) {
    while (runOne()) {
    }
    return;
  }
  // Conservative time-window executor: batch + prep a window in
  // parallel whenever the staged queue runs dry, then apply in global
  // order.  Re-entrant like the serial loop — an applied handler that
  // calls run() drains the staged queue itself and the outer loop ends
  // on an empty scheduler.
  for (;;) {
    if (applyQueueHead_ == applyQueue_.size()) refillWindow();
    if (!runOne()) return;
  }
}

}  // namespace mlight::dht
