#include "dht/sim.h"

namespace mlight::dht {

std::uint64_t SimScheduler::schedule(double at, Fn fn) {
  const std::uint64_t seq = nextSeq_++;
  // Skip the initial capacity ramp (1, 2, 4, ...): even a single RPC
  // schedules a handful of events, and the heap never shrinks, so one
  // up-front block makes steady-state scheduling allocation-free.
  if (heap_.capacity() == 0) heap_.reserve(64);
  heap_.push_back(Event{std::max(at, clock_.now()), seq, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return seq;
}

bool SimScheduler::runOne() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    if (cancelled_.erase(ev.seq) > 0) continue;  // discarded, clock untouched
    clock_.advanceTo(ev.at);
    ev.fn();
    return true;
  }
  return false;
}

}  // namespace mlight::dht
