#include "dht/sim.h"

#include <cstdlib>

namespace mlight::dht {

std::uint64_t schedShuffleSeedFromEnv(std::uint64_t fallback) noexcept {
  const char* raw = std::getenv("MLIGHT_SCHED_SHUFFLE_SEED");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::uint64_t>(value);
}

namespace {
/// splitmix64 finalizer: a bijective mix of (seed, seq), so shuffled tie
/// keys are distinct whenever sequence numbers are — the `seq` fallback
/// in the comparator never actually fires.
std::uint64_t mixTie(std::uint64_t seed, std::uint64_t seq) noexcept {
  std::uint64_t z = seq + seed * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

std::uint64_t SimScheduler::schedule(double at, Fn fn) {
  const std::uint64_t seq = nextSeq_++;
  const std::uint64_t tie =
      shuffleSeed_ == 0 ? seq : mixTie(shuffleSeed_, seq);
  // Skip the initial capacity ramp (1, 2, 4, ...): even a single RPC
  // schedules a handful of events, and the heap never shrinks, so one
  // up-front block makes steady-state scheduling allocation-free.
  if (heap_.capacity() == 0) heap_.reserve(64);
  heap_.push_back(Event{std::max(at, clock_.now()), tie, seq, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return seq;
}

bool SimScheduler::runOne() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    if (cancelled_.erase(ev.seq) > 0) continue;  // discarded, clock untouched
    // A reorderable tie: another live event with the same timestamp is
    // still pending, so the tie-break genuinely chose between the two.
    // (An event scheduled *by* an earlier handler at the same timestamp
    // is causally ordered — it never coexisted with its parent in the
    // heap — and does not count: shuffling cannot reorder causality.)
    if (!heap_.empty() && heap_.front().at == ev.at &&
        cancelled_.find(heap_.front().seq) == cancelled_.end()) {
      ++tieDeliveries_;
    }
    clock_.advanceTo(ev.at);
    ev.fn();
    return true;
  }
  return false;
}

}  // namespace mlight::dht
