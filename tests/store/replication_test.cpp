// Replication and crash-fault behaviour of the DistributedStore and of
// m-LIGHT running on top of it.
#include <gtest/gtest.h>

#include "common/bitstring.h"
#include "common/serde.h"
#include "common/rng.h"
#include "dht/network.h"
#include "index/oracle.h"
#include "mlight/index.h"
#include "store/distributed_store.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace mlight::store {
namespace {

using mlight::common::BitString;
using mlight::common::Rng;
using mlight::dht::CostMeter;
using mlight::dht::MeterScope;
using mlight::dht::Network;

struct FakeBucket {
  int value = 0;
  std::size_t bytes = 100;
  std::size_t records = 1;
  std::size_t byteSize() const noexcept { return bytes; }
  std::size_t recordCount() const noexcept { return records; }

  void serialize(mlight::common::Writer& w) const {
    w.writeU32(static_cast<std::uint32_t>(value));
    w.writeU32(static_cast<std::uint32_t>(records));
    // Pad to the declared byteSize so the wire-size check holds.
    for (std::size_t i = 8; i < bytes; ++i) w.writeU8(0);
  }
  static FakeBucket deserialize(mlight::common::Reader& r) {
    FakeBucket b;
    b.value = static_cast<int>(r.readU32());
    b.records = r.readU32();
    std::size_t padding = 0;
    while (!r.atEnd()) {
      r.readU8();
      ++padding;
    }
    b.bytes = 8 + padding;
    return b;
  }
};

BitString label(int i) {
  std::string s;
  for (int b = 0; b < 12; ++b) s.push_back((i >> b) % 2 ? '1' : '0');
  return BitString::fromString(s);
}

TEST(Replication, PlaceCostsOnePutPerCopy) {
  Network net(32);
  DistributedStore<FakeBucket> store(net, "r/", 3);
  CostMeter meter;
  {
    MeterScope scope(net, meter);
    store.place(net.peers()[0], label(1), FakeBucket{1, 200, 2});
  }
  EXPECT_EQ(meter.lookups, 3u);  // primary + 2 replicas
  // Payload ships to every copy-holder the source does not own itself.
  EXPECT_GE(meter.bytesMoved, 400u);
}

TEST(Replication, ShipToReplicasCostsPerReplica) {
  Network net(32);
  DistributedStore<FakeBucket> store(net, "r/", 3);
  store.place(net.peers()[0], label(1), FakeBucket{});
  CostMeter meter;
  {
    MeterScope scope(net, meter);
    store.shipToReplicas(store.ownerOf(label(1)), label(1), 50, 1);
  }
  EXPECT_EQ(meter.lookups, 2u);
  // With replication 1 it is free.
  DistributedStore<FakeBucket> single(net, "s/", 1);
  single.place(net.peers()[0], label(2), FakeBucket{});
  CostMeter m2;
  {
    MeterScope scope(net, m2);
    single.shipToReplicas(net.peers()[0], label(2), 50, 1);
  }
  EXPECT_EQ(m2.lookups, 0u);
}

TEST(Replication, CrashWithoutReplicationLosesBuckets) {
  Network net(16);
  DistributedStore<FakeBucket> store(net, "r/", 1);
  for (int i = 0; i < 200; ++i) store.placeLocal(label(i), FakeBucket{i});
  ASSERT_EQ(store.bucketCount(), 200u);
  // Crash a peer that certainly owns something.
  BitString victim = label(0);
  net.crashPeer(store.ownerOf(victim));
  EXPECT_GT(store.lostBuckets(), 0u);
  EXPECT_EQ(store.bucketCount() + store.lostBuckets(), 200u);
  EXPECT_EQ(store.peek(victim), nullptr);
}

TEST(Replication, CrashWithReplicationPreservesEverything) {
  Network net(16);
  DistributedStore<FakeBucket> store(net, "r/", 2);
  for (int i = 0; i < 200; ++i) store.placeLocal(label(i), FakeBucket{i});
  CostMeter repair;
  {
    MeterScope scope(net, repair);
    net.crashPeer(store.ownerOf(label(0)));
  }
  EXPECT_EQ(store.lostBuckets(), 0u);
  EXPECT_EQ(store.bucketCount(), 200u);
  EXPECT_GT(store.repairedBuckets(), 0u);
  EXPECT_GT(repair.bytesMoved, 0u);  // copies re-created from survivors
  // All copies re-homed consistently.
  store.forEach([&](const BitString& l, const FakeBucket&,
                    mlight::dht::RingId owner) {
    EXPECT_EQ(owner, store.ownerOf(l));
  });
}

TEST(Replication, RepeatedCrashesWithTripleReplication) {
  Network net(24);
  DistributedStore<FakeBucket> store(net, "r/", 3);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) store.placeLocal(label(i), FakeBucket{i});
  // One crash at a time with immediate repair: no bucket should die even
  // over many successive crashes.
  for (int round = 0; round < 8; ++round) {
    net.crashPeer(net.peers()[rng.below(net.peerCount())]);
  }
  EXPECT_EQ(store.lostBuckets(), 0u);
  EXPECT_EQ(store.bucketCount(), 300u);
}

TEST(Replication, UnderReplicationWarningIsLevelTriggeredNotACounter) {
  // Two peers, R = 2: every bucket is fully replicated until one peer
  // dies, at which point R = 2 is unsatisfiable — and satisfiable again
  // the moment a peer rejoins.  underReplicatedBuckets() must track
  // that *level*, unlike the monotone underReplicatedPlacements()
  // event counter.
  Network net(2);
  DistributedStore<FakeBucket> store(net, "r/", 2);
  for (int i = 0; i < 50; ++i) store.placeLocal(label(i), FakeBucket{i});
  EXPECT_EQ(store.underReplicatedBuckets(), 0u);

  const mlight::dht::RingId victim = net.peers()[0];
  const std::string name = net.physicalNameOf(victim);
  ASSERT_TRUE(net.crashPeer(victim));
  // The survivor holds a copy of everything (nothing lost), but every
  // bucket is degraded to one copy.
  EXPECT_EQ(store.lostBuckets(), 0u);
  EXPECT_EQ(store.underReplicatedBuckets(), 50u);
  EXPECT_GT(store.underReplicatedPlacements(), 0u);

  // Re-placing while degraded must not double-count: the warning set is
  // keyed by label, not by placement event.
  for (int i = 0; i < 10; ++i) store.placeLocal(label(i), FakeBucket{i});
  EXPECT_EQ(store.underReplicatedBuckets(), 50u);

  // A rejoin re-achieves R copies for every bucket: the warning state
  // clears completely (the placement event counter keeps its history).
  net.addPeer(name);
  EXPECT_EQ(store.underReplicatedBuckets(), 0u);
  const std::size_t events = store.underReplicatedPlacements();
  EXPECT_GT(events, 0u);

  // And it degrades again on the next crash — level, not latch.
  ASSERT_TRUE(net.crashPeer(net.peers()[0]));
  EXPECT_EQ(store.underReplicatedBuckets(), 50u);
}

TEST(Replication, ErasedBucketsLeaveTheUnderReplicationWarningSet) {
  // Deleting a degraded bucket removes the warning with it: an empty
  // store cannot be under-replicated.
  Network net(2);
  DistributedStore<FakeBucket> store(net, "r/", 2);
  for (int i = 0; i < 8; ++i) store.placeLocal(label(i), FakeBucket{i});
  net.crashPeer(net.peers()[0]);
  EXPECT_EQ(store.underReplicatedBuckets(), 8u);
  for (int i = 0; i < 8; ++i) store.erase(label(i));
  EXPECT_EQ(store.underReplicatedBuckets(), 0u);
}

TEST(Replication, GracefulLeaveNeverLosesDataEvenUnreplicated) {
  Network net(16);
  DistributedStore<FakeBucket> store(net, "r/", 1);
  for (int i = 0; i < 100; ++i) store.placeLocal(label(i), FakeBucket{i});
  for (int round = 0; round < 6; ++round) {
    net.removePeer(net.peers()[0]);
  }
  EXPECT_EQ(store.lostBuckets(), 0u);
  EXPECT_EQ(store.bucketCount(), 100u);
}

TEST(Replication, MLightSurvivesCrashesWithReplication) {
  Network net(48);
  core::MLightConfig cfg;
  cfg.thetaSplit = 20;
  cfg.thetaMerge = 10;
  cfg.maxEdgeDepth = 20;
  cfg.replication = 2;
  core::MLightIndex index(net, cfg);
  mlight::index::Oracle oracle;
  Rng rng(7);
  for (const auto& r : workload::uniformDataset(800, 2, 11)) {
    index.insert(r);
    oracle.insert(r);
  }
  for (int round = 0; round < 10; ++round) {
    net.crashPeer(net.peers()[rng.below(net.peerCount())]);
  }
  EXPECT_EQ(index.store().lostBuckets(), 0u);
  index.checkInvariants();
  for (const auto& q : workload::uniformRangeQueries(10, 2, 0.2, 13)) {
    auto got = index.rangeQuery(q).records;
    mlight::index::Oracle::sortById(got);
    EXPECT_EQ(got, oracle.rangeQuery(q));
  }
  // Writes still work after the carnage.
  mlight::index::Record r;
  r.key = mlight::common::Point{0.42, 0.58};
  r.id = 999999;
  index.insert(r);
  EXPECT_EQ(index.pointQuery(r.key).records.size(),
            oracle.pointQuery(r.key).size() + 1);
}

TEST(Replication, MLightUnreplicatedCrashLosesData) {
  Network net(48);
  core::MLightConfig cfg;
  cfg.thetaSplit = 20;
  cfg.thetaMerge = 10;
  cfg.maxEdgeDepth = 20;
  cfg.replication = 1;
  core::MLightIndex index(net, cfg);
  for (const auto& r : workload::uniformDataset(800, 2, 17)) {
    index.insert(r);
  }
  const std::size_t bucketsBefore = index.bucketCount();
  Rng rng(19);
  for (int round = 0; round < 10; ++round) {
    net.crashPeer(net.peers()[rng.below(net.peerCount())]);
  }
  // Without replication, crashes punch holes in the index.
  EXPECT_GT(index.store().lostBuckets(), 0u);
  EXPECT_LT(index.bucketCount(), bucketsBefore);
}

TEST(Replication, ReplicationMultipliesMaintenanceCost) {
  CostMeter r1;
  CostMeter r3;
  for (int rep = 1; rep <= 3; rep += 2) {
    Network net(32, 3);
    core::MLightConfig cfg;
    cfg.thetaSplit = 20;
    cfg.thetaMerge = 10;
    cfg.replication = static_cast<std::size_t>(rep);
    cfg.dhtNamespace = "rep" + std::to_string(rep) + "/";
    core::MLightIndex index(net, cfg);
    CostMeter& meter = rep == 1 ? r1 : r3;
    MeterScope scope(net, meter);
    for (const auto& r : workload::uniformDataset(500, 2, 23)) {
      index.insert(r);
    }
  }
  // Three copies ≈ one write + two replica updates per insert: the total
  // cost must rise clearly (the paper's over-DHT simplicity argument in
  // reverse: durability is paid for in maintenance bandwidth).
  EXPECT_GT(r3.lookups, r1.lookups + 2 * 500u - 100u);
  EXPECT_GT(r3.bytesMoved, 2 * r1.bytesMoved);
}

}  // namespace
}  // namespace mlight::store
