#include "store/distributed_store.h"

#include <gtest/gtest.h>

#include "common/bitstring.h"
#include "common/serde.h"
#include "dht/network.h"

namespace mlight::store {
namespace {

using mlight::common::BitString;
using mlight::dht::CostMeter;
using mlight::dht::MeterScope;
using mlight::dht::Network;

struct FakeBucket {
  int value = 0;
  std::size_t bytes = 100;
  std::size_t records = 1;
  std::size_t byteSize() const noexcept { return bytes; }
  std::size_t recordCount() const noexcept { return records; }

  void serialize(mlight::common::Writer& w) const {
    w.writeU32(static_cast<std::uint32_t>(value));
    w.writeU32(static_cast<std::uint32_t>(records));
    // Pad to the declared byteSize so the wire-size check holds.
    for (std::size_t i = 8; i < bytes; ++i) w.writeU8(0);
  }
  static FakeBucket deserialize(mlight::common::Reader& r) {
    FakeBucket b;
    b.value = static_cast<int>(r.readU32());
    b.records = r.readU32();
    std::size_t padding = 0;
    while (!r.atEnd()) {
      r.readU8();
      ++padding;
    }
    b.bytes = 8 + padding;
    return b;
  }
};

TEST(DistributedStore, PlaceAndFind) {
  Network net(16);
  DistributedStore<FakeBucket> store(net, "t/");
  const BitString key = BitString::fromString("0101");
  store.place(net.peers()[0], key, FakeBucket{7, 10, 1});
  const auto found = store.routeAndFind(net.peers()[1], key);
  ASSERT_NE(found.bucket, nullptr);
  EXPECT_EQ(found.bucket->value, 7);
  EXPECT_EQ(found.owner, store.ownerOf(key));
}

TEST(DistributedStore, FindMissingReturnsNull) {
  Network net(16);
  DistributedStore<FakeBucket> store(net, "t/");
  const auto found =
      store.routeAndFind(net.peers()[0], BitString::fromString("111"));
  EXPECT_EQ(found.bucket, nullptr);
}

TEST(DistributedStore, RouteAndFindMetersOneLookup) {
  Network net(16);
  DistributedStore<FakeBucket> store(net, "t/");
  CostMeter meter;
  {
    MeterScope scope(net, meter);
    store.routeAndFind(net.peers()[0], BitString::fromString("0"));
    store.routeAndFind(net.peers()[0], BitString::fromString("1"));
  }
  EXPECT_EQ(meter.lookups, 2u);
}

TEST(DistributedStore, PlaceShipsBytesOnlyAcrossPeers) {
  Network net(16);
  DistributedStore<FakeBucket> store(net, "t/");
  const BitString key = BitString::fromString("0011");
  const auto owner = store.ownerOf(key);

  CostMeter fromOwner;
  {
    MeterScope scope(net, fromOwner);
    store.place(owner, key, FakeBucket{1, 500, 5});
  }
  EXPECT_EQ(fromOwner.lookups, 1u);
  EXPECT_EQ(fromOwner.bytesMoved, 0u);  // source already owns the key

  // Re-place from a different peer: payload moves.
  auto other = net.peers()[0] == owner ? net.peers()[1] : net.peers()[0];
  CostMeter fromOther;
  {
    MeterScope scope(net, fromOther);
    store.place(other, key, FakeBucket{2, 500, 5});
  }
  EXPECT_EQ(fromOther.bytesMoved, 500u);
  EXPECT_EQ(fromOther.recordsMoved, 5u);
}

TEST(DistributedStore, PlaceLocalIsFree) {
  Network net(16);
  DistributedStore<FakeBucket> store(net, "t/");
  CostMeter meter;
  {
    MeterScope scope(net, meter);
    store.placeLocal(BitString::fromString("01"), FakeBucket{});
  }
  EXPECT_EQ(meter.lookups, 0u);
  EXPECT_EQ(meter.bytesMoved, 0u);
  EXPECT_NE(store.peek(BitString::fromString("01")), nullptr);
}

TEST(DistributedStore, EraseRemoves) {
  Network net(8);
  DistributedStore<FakeBucket> store(net, "t/");
  const BitString key = BitString::fromString("10");
  store.placeLocal(key, FakeBucket{});
  EXPECT_TRUE(store.erase(key));
  EXPECT_FALSE(store.erase(key));
  EXPECT_EQ(store.peek(key), nullptr);
}

TEST(DistributedStore, NamespacesIsolateIndexes) {
  Network net(8);
  DistributedStore<FakeBucket> a(net, "a/");
  DistributedStore<FakeBucket> b(net, "b/");
  const BitString key = BitString::fromString("0");
  a.placeLocal(key, FakeBucket{1});
  EXPECT_EQ(b.peek(key), nullptr);
  // Same label generally lands on different peers under different
  // namespaces (hash includes the namespace).
  EXPECT_EQ(a.ringKey(key).value == b.ringKey(key).value, false);
}

TEST(DistributedStore, ChurnMigratesOwnership) {
  Network net(8);
  DistributedStore<FakeBucket> store(net, "t/");
  for (int i = 0; i < 100; ++i) {
    store.placeLocal(
        mlight::common::BitString::fromString(
            [&] {
              std::string s;
              for (int b = 0; b < 10; ++b) s.push_back((i >> b) % 2 ? '1' : '0');
              return s;
            }()),
        FakeBucket{i, 64, 1});
  }
  CostMeter churn;
  {
    MeterScope scope(net, churn);
    net.addPeer("newcomer");
  }
  // The newcomer took over some arcs; those buckets shipped.
  std::size_t misplaced = 0;
  store.forEach([&](const BitString& key, const FakeBucket&,
                    mlight::dht::RingId owner) {
    if (owner != store.ownerOf(key)) ++misplaced;
  });
  EXPECT_EQ(misplaced, 0u);
  EXPECT_GT(churn.bytesMoved, 0u);

  // Removing a peer re-homes its buckets too.
  CostMeter churn2;
  {
    MeterScope scope(net, churn2);
    net.removePeer(net.peers()[2]);
  }
  misplaced = 0;
  store.forEach([&](const BitString& key, const FakeBucket&,
                    mlight::dht::RingId owner) {
    if (owner != store.ownerOf(key)) ++misplaced;
  });
  EXPECT_EQ(misplaced, 0u);
}

TEST(DistributedStore, PerPeerRecordsAggregates) {
  Network net(4);
  DistributedStore<FakeBucket> store(net, "t/");
  store.placeLocal(BitString::fromString("0"), FakeBucket{0, 10, 3});
  store.placeLocal(BitString::fromString("1"), FakeBucket{0, 10, 4});
  const auto load = store.perPeerRecords();
  std::size_t total = 0;
  for (const auto& [peer, records] : load) total += records;
  EXPECT_EQ(total, 7u);
}

TEST(DistributedStore, DestructionUnregistersFromNetwork) {
  Network net(4);
  {
    DistributedStore<FakeBucket> store(net, "t/");
    store.placeLocal(BitString::fromString("0"), FakeBucket{});
  }
  // Must not crash touching a dead store's rebalance callback.
  net.addPeer("after-destruction");
  SUCCEED();
}

}  // namespace
}  // namespace mlight::store
