// Differential testing of BitString against a trivially-correct model
// (std::string of '0'/'1'): long random operation sequences must keep
// the two representations in lockstep, including across the 64-bit word
// boundaries where the packed implementation does real work.
#include <gtest/gtest.h>

#include <string>

#include "common/bitstring.h"
#include "common/rng.h"

namespace mlight::common {
namespace {

class BitStringModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitStringModelTest, RandomOpsMatchStringModel) {
  Rng rng(GetParam());
  BitString packed;
  std::string model;

  const auto check = [&] {
    ASSERT_EQ(packed.size(), model.size());
    ASSERT_EQ(packed.toString(), model);
    if (!model.empty()) {
      ASSERT_EQ(packed.back(), model.back() == '1');
      const std::size_t i = rng.below(model.size());
      ASSERT_EQ(packed.bit(i), model[i] == '1');
    }
    // Hash/equality consistency with a rebuilt copy.
    const BitString rebuilt = BitString::fromString(model);
    ASSERT_EQ(packed, rebuilt);
    ASSERT_EQ(packed.hash64(), rebuilt.hash64());
  };

  for (int op = 0; op < 3000; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.45 || model.empty()) {
      const bool b = rng.chance(0.5);
      packed.pushBack(b);
      model.push_back(b ? '1' : '0');
    } else if (dice < 0.65) {
      packed.popBack();
      model.pop_back();
    } else if (dice < 0.75) {
      const std::size_t i = rng.below(model.size());
      const bool b = rng.chance(0.5);
      packed.setBit(i, b);
      model[i] = b ? '1' : '0';
    } else if (dice < 0.85) {
      const std::size_t n = rng.below(model.size() + 1);
      packed = packed.prefix(n);
      model = model.substr(0, n);
    } else if (dice < 0.92) {
      packed = packed.sibling();
      model.back() = model.back() == '1' ? '0' : '1';
    } else {
      // Append a random run.
      const std::size_t n = rng.below(70);
      BitString tail;
      std::string tailModel;
      for (std::size_t i = 0; i < n; ++i) {
        const bool b = rng.chance(0.5);
        tail.pushBack(b);
        tailModel.push_back(b ? '1' : '0');
      }
      packed.append(tail);
      model += tailModel;
    }
    if (op % 50 == 0) check();
  }
  check();
}

TEST_P(BitStringModelTest, OrderingMatchesModelOrdering) {
  // The BitString ordering (lexicographic, prefix-first) must agree with
  // std::string's lexicographic compare of the textual form — '0' < '1'
  // and shorter-prefix-first coincide for binary alphabets.
  Rng rng(GetParam() * 7 + 3);
  for (int trial = 0; trial < 400; ++trial) {
    std::string a;
    std::string b;
    for (std::size_t i = rng.below(80); i > 0; --i) {
      a.push_back(rng.chance(0.5) ? '1' : '0');
    }
    for (std::size_t i = rng.below(80); i > 0; --i) {
      b.push_back(rng.chance(0.5) ? '1' : '0');
    }
    const auto packedOrder =
        BitString::fromString(a) <=> BitString::fromString(b);
    const int modelOrder = a.compare(b);
    EXPECT_EQ(packedOrder < 0, modelOrder < 0) << a << " vs " << b;
    EXPECT_EQ(packedOrder == 0, modelOrder == 0) << a << " vs " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitStringModelTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mlight::common
