// Negative tests for the theorem-level audit layer: every audit* function
// must actually fire on deliberately corrupted structures, and the
// level/counter machinery must be observable.  Happy paths are covered
// implicitly by the whole suite (checkInvariants routes through the
// audits everywhere).
#include "common/invariants.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/bitstring.h"
#include "common/geometry.h"
#include "common/rng.h"
#include "common/zorder.h"
#include "dht/network.h"
#include "index/record.h"
#include "mlight/index.h"
#include "mlight/kdspace.h"
#include "pht/pht_index.h"

namespace mlight::common {
namespace {

using mlight::index::Record;

BitString bits(const char* text) { return BitString::fromString(text); }

/// Pins the audit level for one test and restores the previous level on
/// exit, so tests do not leak configuration into each other.
class ScopedLevel {
 public:
  explicit ScopedLevel(AuditLevel level) : previous_(auditLevel()) {
    setAuditLevel(level);
  }
  ~ScopedLevel() { setAuditLevel(previous_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  AuditLevel previous_;
};

class InvariantsTest : public ::testing::Test {
 protected:
  void SetUp() override { resetAuditCounters(); }
};

// --- auditNamingBijection ------------------------------------------------

TEST_F(InvariantsTest, NamingBijectionAcceptsValidLeafSet) {
  // 2-D tree of Fig. 1 flavor: leaves with their f_md names.
  std::vector<std::pair<BitString, BitString>> ok = {
      {bits("0010"), bits("00")},   // f(#0) — misaligned last bit
      {bits("0011"), bits("001")},  // f(#1) = #
  };
  EXPECT_NO_THROW(auditNamingBijection(ok, 2));
  EXPECT_EQ(auditCounters().passed, 1u);
}

TEST_F(InvariantsTest, NamingBijectionDetectsDuplicateKey) {
  std::vector<std::pair<BitString, BitString>> corrupt = {
      {bits("0010"), bits("00")},
      {bits("0011"), bits("00")},  // corrupted: second leaf renamed to 00
  };
  EXPECT_THROW(auditNamingBijection(corrupt, 2), AuditFailure);
  EXPECT_EQ(auditCounters().failed, 1u);
}

TEST_F(InvariantsTest, NamingBijectionDetectsNonPrefixKey) {
  std::vector<std::pair<BitString, BitString>> corrupt = {
      {bits("0010"), bits("01")},  // 01 is not a prefix of 0010
  };
  EXPECT_THROW(auditNamingBijection(corrupt, 2), AuditFailure);
}

TEST_F(InvariantsTest, NamingBijectionDetectsKeyNotProperPrefix) {
  std::vector<std::pair<BitString, BitString>> corrupt = {
      {bits("0010"), bits("0010")},  // key == leaf: not a *proper* prefix
  };
  EXPECT_THROW(auditNamingBijection(corrupt, 2), AuditFailure);
}

// --- auditSpaceTiling ----------------------------------------------------

TEST_F(InvariantsTest, SpaceTilingAcceptsCompleteTiling) {
  // m-LIGHT labels (rootPrefixBits = dims + 1 = 3): {#0, #10, #11}.
  std::vector<BitString> leaves = {bits("0010"), bits("00110"),
                                   bits("00111")};
  EXPECT_NO_THROW(auditSpaceTiling(leaves, 3));
}

TEST_F(InvariantsTest, SpaceTilingDetectsMissingLeaf) {
  std::vector<BitString> corrupt = {bits("0010"), bits("00110")};  // hole
  EXPECT_THROW(auditSpaceTiling(corrupt, 3), AuditFailure);
}

TEST_F(InvariantsTest, SpaceTilingDetectsOverlappingLeaves) {
  // #1 covers both #10 and #11, so {#0, #1, #10, #11} double-covers —
  // and the prefix relation #1 < #10 must be what trips the audit.
  std::vector<BitString> corrupt = {bits("0010"), bits("0011"),
                                    bits("00110"), bits("00111")};
  EXPECT_THROW(auditSpaceTiling(corrupt, 3), AuditFailure);
}

TEST_F(InvariantsTest, SpaceTilingWorksForPlainTriePaths) {
  // PHT-style labels: no root prefix.
  std::vector<BitString> ok = {bits("0"), bits("10"), bits("11")};
  EXPECT_NO_THROW(auditSpaceTiling(ok, 0));
  std::vector<BitString> corrupt = {bits("0"), bits("10")};
  EXPECT_THROW(auditSpaceTiling(corrupt, 0), AuditFailure);
}

// --- auditIncrementalSplit ----------------------------------------------

TEST_F(InvariantsTest, IncrementalSplitAcceptsTheoremFiveRelation) {
  // Splitting λ = #0 stored under k = f(λ) = 00: children named {k, λ}.
  EXPECT_NO_THROW(auditIncrementalSplit(bits("0010"), bits("00"), bits("00"),
                                        bits("0010")));
  // Order of the child keys must not matter.
  EXPECT_NO_THROW(auditIncrementalSplit(bits("0010"), bits("00"),
                                        bits("0010"), bits("00")));
}

TEST_F(InvariantsTest, IncrementalSplitDetectsForeignChildKey) {
  EXPECT_THROW(auditIncrementalSplit(bits("0010"), bits("00"), bits("00"),
                                     bits("0011")),
               AuditFailure);
}

TEST_F(InvariantsTest, IncrementalSplitDetectsBothChildrenMoving) {
  EXPECT_THROW(auditIncrementalSplit(bits("0010"), bits("00"), bits("0010"),
                                     bits("0010")),
               AuditFailure);
}

// --- auditIncrementalSplitPlan ------------------------------------------

TEST_F(InvariantsTest, SplitPlanRequiresExactlyOneKeeper) {
  const BitString oldKey = bits("00");
  std::vector<BitString> ok = {bits("00"), bits("0010"), bits("00100")};
  EXPECT_NO_THROW(auditIncrementalSplitPlan(oldKey, ok));

  std::vector<BitString> none = {bits("0010"), bits("00100")};
  EXPECT_THROW(auditIncrementalSplitPlan(oldKey, none), AuditFailure);
}

TEST_F(InvariantsTest, SplitPlanDetectsDuplicateKeys) {
  const BitString oldKey = bits("00");
  std::vector<BitString> corrupt = {bits("00"), bits("0010"), bits("0010")};
  EXPECT_THROW(auditIncrementalSplitPlan(oldKey, corrupt), AuditFailure);
}

// --- auditLoadVariance ---------------------------------------------------

TEST_F(InvariantsTest, LoadVarianceAcceptsBalancedPlan) {
  // Splitting 100 records into 50+50 against ε = 40:
  // (50-40)² + (50-40)² = 200 <= (100-40)² = 3600.
  std::vector<std::size_t> loads = {50, 50};
  EXPECT_NO_THROW(auditLoadVariance(loads, 40.0));
}

TEST_F(InvariantsTest, LoadVarianceDetectsPlanWorseThanNotSplitting) {
  // ε = 40, total 42: keeping the bucket whole costs (42-40)² = 4, the
  // corrupted plan costs (21-40)²·2 = 722 — Algorithm 1 would never
  // choose it.
  std::vector<std::size_t> loads = {21, 21};
  EXPECT_THROW(auditLoadVariance(loads, 40.0), AuditFailure);
}

TEST_F(InvariantsTest, LoadVarianceIgnoresSingleLeafPlans) {
  // A one-leaf plan is "do not split": nothing to compare.
  std::vector<std::size_t> loads = {999};
  EXPECT_NO_THROW(auditLoadVariance(loads, 1.0));
}

// --- auditRecordPlacement ------------------------------------------------

TEST_F(InvariantsTest, RecordPlacementDetectsEscapedRecord) {
  const Rect region(Point{0.0, 0.0}, Point{0.5, 0.5});
  Record inside;
  inside.key = Point{0.25, 0.25};
  Record outside;
  outside.key = Point{0.75, 0.25};

  std::vector<Record> ok = {inside};
  EXPECT_NO_THROW(auditRecordPlacement(
      region, ok, [](const Record& r) -> const Point& { return r.key; }));

  std::vector<Record> corrupt = {inside, outside};
  EXPECT_THROW(
      auditRecordPlacement(
          region, corrupt,
          [](const Record& r) -> const Point& { return r.key; }),
      AuditFailure);
}

// --- auditReplicaHolders -------------------------------------------------

TEST_F(InvariantsTest, ReplicaHoldersDetectsDuplicateHolder) {
  std::vector<std::uint64_t> ok = {1, 2, 3};
  EXPECT_NO_THROW(auditReplicaHolders(ok, 3));
  std::vector<std::uint64_t> corrupt = {1, 2, 1};
  EXPECT_THROW(auditReplicaHolders(corrupt, 3), AuditFailure);
}

TEST_F(InvariantsTest, ReplicaHoldersDetectsOverReplication) {
  std::vector<std::uint64_t> corrupt = {1, 2, 3};
  EXPECT_THROW(auditReplicaHolders(corrupt, 2), AuditFailure);
  std::vector<std::uint64_t> empty;
  EXPECT_THROW(auditReplicaHolders(empty, 2), AuditFailure);
}

// --- auditRingOrder ------------------------------------------------------

TEST_F(InvariantsTest, RingOrderDetectsDisorderAndDuplicates) {
  std::vector<std::uint64_t> ok = {10, 20, 30};
  EXPECT_NO_THROW(auditRingOrder(ok));
  std::vector<std::uint64_t> unsorted = {10, 30, 20};
  EXPECT_THROW(auditRingOrder(unsorted), AuditFailure);
  std::vector<std::uint64_t> duplicate = {10, 20, 20};
  EXPECT_THROW(auditRingOrder(duplicate), AuditFailure);
}

// --- level knob and counters --------------------------------------------

TEST_F(InvariantsTest, AuditEnabledGatesOnLevelAndCountsSkips) {
  {
    ScopedLevel off(AuditLevel::kOff);
    EXPECT_FALSE(auditEnabled(AuditLevel::kBoundaries));
    EXPECT_FALSE(auditEnabled(AuditLevel::kParanoid));
  }
  {
    ScopedLevel boundaries(AuditLevel::kBoundaries);
    EXPECT_TRUE(auditEnabled(AuditLevel::kBoundaries));
    EXPECT_FALSE(auditEnabled(AuditLevel::kParanoid));
  }
  {
    ScopedLevel paranoid(AuditLevel::kParanoid);
    EXPECT_TRUE(auditEnabled(AuditLevel::kParanoid));
  }
  EXPECT_EQ(auditCounters().skipped, 3u);
}

TEST_F(InvariantsTest, CountersTrackRunsPassesAndFailures) {
  std::vector<std::uint64_t> ok = {1, 2};
  auditRingOrder(ok);
  auditRingOrder(ok);
  std::vector<std::uint64_t> bad = {2, 1};
  EXPECT_THROW(auditRingOrder(bad), AuditFailure);
  const AuditCounters c = auditCounters();
  EXPECT_EQ(c.run, 3u);
  EXPECT_EQ(c.passed, 2u);
  EXPECT_EQ(c.failed, 1u);
}

TEST_F(InvariantsTest, LevelNamesRoundTrip) {
  EXPECT_STREQ(auditLevelName(AuditLevel::kOff), "off");
  EXPECT_STREQ(auditLevelName(AuditLevel::kBoundaries), "boundaries");
  EXPECT_STREQ(auditLevelName(AuditLevel::kParanoid), "paranoid");
}

// --- end-to-end: corrupting a live index must trip the audits ------------

core::MLightConfig tinyConfig() {
  core::MLightConfig cfg;
  cfg.thetaSplit = 8;
  cfg.thetaMerge = 4;
  cfg.maxEdgeDepth = 16;
  return cfg;
}

void fill(core::MLightIndex& index, std::size_t n) {
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    Record r;
    r.key = Point{rng.uniform(), rng.uniform()};
    r.id = i;
    index.insert(r);
  }
}

TEST_F(InvariantsTest, CorruptedBucketRegionTripsRecordPlacementAudit) {
  dht::Network net(16, 5);
  core::MLightIndex index(net, tinyConfig());
  fill(index, 64);
  ASSERT_NO_THROW(index.checkInvariants());

  // Reach into the store (test-only corruption) and teleport one record
  // outside its leaf's region.
  const auto& store = index.store();
  bool corrupted = false;
  store.forEach([&](const BitString& key, const core::LeafBucket& b,
                    mlight::dht::RingId) {
    if (corrupted || b.records.empty()) return;
    const Rect region = core::labelRegion(b.label, 2);
    if (region.volume() >= 1.0) return;  // need a proper sub-cell
    auto& bucket = const_cast<core::LeafBucket&>(b);
    // Move the record to the opposite corner of the unit square.
    bucket.records[0].key = Point{1.0 - (region.lo()[0] + region.hi()[0]) / 2,
                                  1.0 - (region.lo()[1] + region.hi()[1]) / 2};
    (void)key;
    corrupted = true;
  });
  ASSERT_TRUE(corrupted);
  EXPECT_THROW(index.checkInvariants(), AuditFailure);
}

TEST_F(InvariantsTest, DroppedBucketTripsSpaceTilingAudit) {
  dht::Network net(16, 5);
  core::MLightIndex index(net, tinyConfig());
  fill(index, 64);
  ASSERT_GT(index.bucketCount(), 1u);

  // Erase one leaf bucket outright (by its DHT key): the remaining
  // leaves no longer tile the unit square.
  std::vector<BitString> keys;
  index.store().forEach([&](const BitString& key, const core::LeafBucket&,
                            mlight::dht::RingId) { keys.push_back(key); });
  auto& store =
      const_cast<mlight::store::DistributedStore<core::LeafBucket>&>(
          index.store());
  ASSERT_TRUE(store.erase(keys.front()));
  EXPECT_THROW(index.checkInvariants(), AuditFailure);
}

TEST_F(InvariantsTest, ParanoidLevelAuditsEveryInsert) {
  ScopedLevel paranoid(AuditLevel::kParanoid);
  resetAuditCounters();
  dht::Network net(16, 5);
  core::MLightIndex index(net, tinyConfig());
  fill(index, 32);
  // Every insert re-audits the whole structure: at least one bijection +
  // one tiling audit per insert on top of boundary audits.
  EXPECT_GE(auditCounters().run, 64u);
  EXPECT_EQ(auditCounters().failed, 0u);
}

TEST_F(InvariantsTest, OffLevelSkipsOptionalAuditsButKeepsTheoremChecks) {
  ScopedLevel off(AuditLevel::kOff);
  resetAuditCounters();
  dht::Network net(16, 5);
  core::MLightIndex index(net, tinyConfig());
  fill(index, 64);
  const AuditCounters c = auditCounters();
  // Splits still run the O(1) Theorem 5 audit unconditionally...
  EXPECT_GT(c.run, 0u);
  EXPECT_EQ(c.failed, 0u);
  // ...but the boundary/paranoid sites were skipped and counted as such.
  EXPECT_GT(c.skipped, 0u);
}

TEST_F(InvariantsTest, CorruptedPhtLeafCellTripsAudit) {
  dht::Network net(16, 6);
  pht::PhtConfig cfg;
  cfg.thetaSplit = 8;
  cfg.thetaMerge = 4;
  pht::PhtIndex index(net, cfg);
  Rng rng(9);
  for (std::size_t i = 0; i < 64; ++i) {
    Record r;
    r.key = Point{rng.uniform(), rng.uniform()};
    r.id = i;
    index.insert(r);
  }
  ASSERT_NO_THROW(index.checkInvariants());

  bool corrupted = false;
  index.store().forEach([&](const BitString&, const pht::PhtNode& n,
                            mlight::dht::RingId) {
    if (corrupted || !n.isLeaf || n.records.empty() || n.label.empty()) {
      return;
    }
    const Rect cell = cellOfPath(n.label, 2);
    // Find a dimension the cell does not fully span and move the record
    // just outside the cell along it — deterministic escape.
    for (std::size_t d = 0; d < 2; ++d) {
      if (cell.hi()[d] - cell.lo()[d] >= 1.0) continue;
      auto& node = const_cast<pht::PhtNode&>(n);
      Point p = node.records[0].key;
      p[d] = cell.lo()[d] > 0.0 ? cell.lo()[d] / 2.0
                                : (cell.hi()[d] + 1.0) / 2.0;
      node.records[0].key = p;
      corrupted = true;
      break;
    }
  });
  ASSERT_TRUE(corrupted);
  EXPECT_THROW(index.checkInvariants(), AuditFailure);
}

}  // namespace
}  // namespace mlight::common
