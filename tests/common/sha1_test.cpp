#include "common/sha1.h"

#include <gtest/gtest.h>

#include <string>

namespace mlight::common {
namespace {

// FIPS 180-1 / RFC 3174 reference vectors.
TEST(Sha1, EmptyString) {
  EXPECT_EQ(toHex(sha1("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(toHex(sha1("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(
      toHex(sha1("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(toHex(h.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(toHex(sha1("The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string msg =
      "m-LIGHT: Indexing Multi-Dimensional Data over DHTs";
  Sha1 h;
  for (char c : msg) h.update(std::string_view(&c, 1));
  EXPECT_EQ(h.finish(), sha1(msg));
}

TEST(Sha1, UpdateSplitAtEveryOffsetMatches) {
  const std::string msg(150, 'x');
  const Sha1Digest want = sha1(msg);
  for (std::size_t cut = 0; cut <= msg.size(); cut += 13) {
    Sha1 h;
    h.update(std::string_view(msg).substr(0, cut));
    h.update(std::string_view(msg).substr(cut));
    EXPECT_EQ(h.finish(), want) << "cut=" << cut;
  }
}

TEST(Sha1, BoundaryLengthsAroundBlockSize) {
  // Padding edge cases: 55/56/63/64/65 bytes exercise the length-field
  // placement paths.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 127u, 128u}) {
    const std::string msg(n, 'q');
    Sha1 a;
    a.update(msg);
    const Sha1Digest incr = a.finish();
    EXPECT_EQ(incr, sha1(msg)) << n;
    // Sanity: distinct lengths hash differently.
    EXPECT_NE(toHex(incr), toHex(sha1(std::string(n + 1, 'q'))));
  }
}

TEST(Sha1, DigestPrefix64IsBigEndianHead) {
  const Sha1Digest d = sha1("abc");
  // a9993e364706816a...
  EXPECT_EQ(digestPrefix64(d), 0xa9993e364706816aull);
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update("garbage");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(toHex(h.finish()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

}  // namespace
}  // namespace mlight::common
