#include "common/serde.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/record.h"

namespace mlight::common {
namespace {

TEST(Serde, ScalarRoundTrip) {
  Writer w;
  w.writeU8(0xAB);
  w.writeU32(0xDEADBEEF);
  w.writeU64(0x0123456789ABCDEFull);
  w.writeDouble(0.337);
  Reader r(w.bytes());
  EXPECT_EQ(r.readU8(), 0xAB);
  EXPECT_EQ(r.readU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.readU64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.readDouble(), 0.337);
  EXPECT_TRUE(r.atEnd());
}

TEST(Serde, StringRoundTrip) {
  Writer w;
  w.writeString("");
  w.writeString("hello");
  w.writeString(std::string(1000, 'z'));
  Reader r(w.bytes());
  EXPECT_EQ(r.readString(), "");
  EXPECT_EQ(r.readString(), "hello");
  EXPECT_EQ(r.readString(), std::string(1000, 'z'));
}

TEST(Serde, BitStringRoundTrip) {
  for (const char* text :
       {"", "1", "00101", "1111111111111111111111111111111111"}) {
    Writer w;
    w.writeBitString(BitString::fromString(text));
    Reader r(w.bytes());
    EXPECT_EQ(r.readBitString().toString(), text);
  }
}

TEST(Serde, TruncatedInputThrows) {
  Writer w;
  w.writeU64(42);
  for (std::size_t cut = 0; cut < 8; ++cut) {
    Reader r(std::span<const std::uint8_t>(w.bytes().data(), cut));
    EXPECT_THROW(r.readU64(), SerdeError);
  }
}

TEST(Serde, TruncatedStringBodyThrows) {
  Writer w;
  w.writeString("abcdef");
  Reader r(std::span<const std::uint8_t>(w.bytes().data(), 6));  // 4+2 < 10
  EXPECT_THROW(r.readString(), SerdeError);
}

TEST(Serde, SpecialDoubles) {
  Writer w;
  w.writeDouble(0.0);
  w.writeDouble(-0.0);
  w.writeDouble(std::numeric_limits<double>::infinity());
  w.writeDouble(1e-300);
  Reader r(w.bytes());
  EXPECT_EQ(r.readDouble(), 0.0);
  EXPECT_EQ(r.readDouble(), -0.0);
  EXPECT_EQ(r.readDouble(), std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(r.readDouble(), 1e-300);
}

TEST(Serde, RecordRoundTripAndByteSizeHonest) {
  mlight::index::Record rec;
  rec.key = Point{0.25, 0.75};
  rec.payload = "addr-42 Main St";
  rec.id = 42;
  Writer w;
  rec.serialize(w);
  // byteSize() must equal the true serialized size — data-movement
  // accounting depends on it.
  EXPECT_EQ(w.size(), rec.byteSize());
  Reader r(w.bytes());
  const auto back = mlight::index::Record::deserialize(r);
  EXPECT_EQ(back, rec);
  EXPECT_TRUE(r.atEnd());
}

TEST(Serde, RandomRecordsRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    mlight::index::Record rec;
    const std::size_t dims = 1 + rng.below(4);
    rec.key = Point(dims);
    for (std::size_t d = 0; d < dims; ++d) rec.key[d] = rng.uniform();
    rec.id = rng.next();
    rec.payload = std::string(rng.below(40), 'p');
    Writer w;
    rec.serialize(w);
    EXPECT_EQ(w.size(), rec.byteSize());
    Reader r(w.bytes());
    EXPECT_EQ(mlight::index::Record::deserialize(r), rec);
  }
}

// The BitString wire format predates the small-buffer representation:
// u32 bit count, then ceil(n/64) little-endian u64 words, LSB-first
// within each word, tail bits zero.  Any label persisted or metered by
// an older build must decode identically, so pin the exact bytes at the
// SBO boundary lengths (127/128/129) plus a short label.
TEST(Serde, BitStringEncodingIsByteCompatibleWithPreSboFormat) {
  auto expectBytes = [](const BitString& b) {
    // Independent re-derivation of the pre-SBO encoding from bit() only.
    std::vector<std::uint8_t> expect;
    const auto n = static_cast<std::uint32_t>(b.size());
    for (int i = 0; i < 4; ++i) {
      expect.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
    }
    const std::size_t nwords = (b.size() + 63) / 64;
    for (std::size_t w = 0; w < nwords; ++w) {
      std::uint64_t word = 0;
      for (std::size_t i = 0; i < 64 && w * 64 + i < b.size(); ++i) {
        if (b.bit(w * 64 + i)) word |= std::uint64_t{1} << i;
      }
      for (int i = 0; i < 8; ++i) {
        expect.push_back(static_cast<std::uint8_t>(word >> (8 * i)));
      }
    }
    return expect;
  };

  Rng rng(99);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{13}, std::size_t{64}, std::size_t{127},
        std::size_t{128}, std::size_t{129}}) {
    BitString b;
    for (std::size_t i = 0; i < n; ++i) b.pushBack(rng.chance(0.5));
    Writer w;
    w.writeBitString(b);
    EXPECT_EQ(w.bytes(), expectBytes(b)) << n;
    Reader r(w.bytes());
    EXPECT_EQ(r.readBitString(), b) << n;
    EXPECT_TRUE(r.atEnd());
  }

  // One fully hand-computed case: "1011" = word 0b1101 = 13.
  Writer w;
  w.writeBitString(BitString::fromString("1011"));
  const std::vector<std::uint8_t> expect{4, 0, 0, 0,  // bit count
                                         13, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(w.bytes(), expect);
}

TEST(Serde, WriterReuseCtorClearsButKeepsCapacity) {
  Writer first;
  first.writeString("warm up the buffer capacity");
  std::vector<std::uint8_t> recycled = std::move(first).take();
  const std::size_t cap = recycled.capacity();
  Writer second(std::move(recycled));
  EXPECT_EQ(second.size(), 0u);
  second.writeU32(7);
  const std::vector<std::uint8_t> expect{7, 0, 0, 0};
  EXPECT_EQ(second.bytes(), expect);
  EXPECT_GE(std::move(second).take().capacity(), cap);
}

TEST(Serde, ReadBytesIntoReusesTheBuffer) {
  Writer w;
  const std::vector<std::uint8_t> blob{1, 2, 3, 4, 5};
  w.writeBytes(blob);
  w.writeBytes({});
  Reader r(w.bytes());
  std::vector<std::uint8_t> out;
  out.reserve(64);
  r.readBytesInto(out);
  EXPECT_EQ(out, blob);
  r.readBytesInto(out);  // empty blob: cleared, capacity retained
  EXPECT_TRUE(out.empty());
  EXPECT_GE(out.capacity(), 64u);
  EXPECT_TRUE(r.atEnd());
}

}  // namespace
}  // namespace mlight::common
