#include "common/serde.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/record.h"

namespace mlight::common {
namespace {

TEST(Serde, ScalarRoundTrip) {
  Writer w;
  w.writeU8(0xAB);
  w.writeU32(0xDEADBEEF);
  w.writeU64(0x0123456789ABCDEFull);
  w.writeDouble(0.337);
  Reader r(w.bytes());
  EXPECT_EQ(r.readU8(), 0xAB);
  EXPECT_EQ(r.readU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.readU64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.readDouble(), 0.337);
  EXPECT_TRUE(r.atEnd());
}

TEST(Serde, StringRoundTrip) {
  Writer w;
  w.writeString("");
  w.writeString("hello");
  w.writeString(std::string(1000, 'z'));
  Reader r(w.bytes());
  EXPECT_EQ(r.readString(), "");
  EXPECT_EQ(r.readString(), "hello");
  EXPECT_EQ(r.readString(), std::string(1000, 'z'));
}

TEST(Serde, BitStringRoundTrip) {
  for (const char* text :
       {"", "1", "00101", "1111111111111111111111111111111111"}) {
    Writer w;
    w.writeBitString(BitString::fromString(text));
    Reader r(w.bytes());
    EXPECT_EQ(r.readBitString().toString(), text);
  }
}

TEST(Serde, TruncatedInputThrows) {
  Writer w;
  w.writeU64(42);
  for (std::size_t cut = 0; cut < 8; ++cut) {
    Reader r(std::span<const std::uint8_t>(w.bytes().data(), cut));
    EXPECT_THROW(r.readU64(), SerdeError);
  }
}

TEST(Serde, TruncatedStringBodyThrows) {
  Writer w;
  w.writeString("abcdef");
  Reader r(std::span<const std::uint8_t>(w.bytes().data(), 6));  // 4+2 < 10
  EXPECT_THROW(r.readString(), SerdeError);
}

TEST(Serde, SpecialDoubles) {
  Writer w;
  w.writeDouble(0.0);
  w.writeDouble(-0.0);
  w.writeDouble(std::numeric_limits<double>::infinity());
  w.writeDouble(1e-300);
  Reader r(w.bytes());
  EXPECT_EQ(r.readDouble(), 0.0);
  EXPECT_EQ(r.readDouble(), -0.0);
  EXPECT_EQ(r.readDouble(), std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(r.readDouble(), 1e-300);
}

TEST(Serde, RecordRoundTripAndByteSizeHonest) {
  mlight::index::Record rec;
  rec.key = Point{0.25, 0.75};
  rec.payload = "addr-42 Main St";
  rec.id = 42;
  Writer w;
  rec.serialize(w);
  // byteSize() must equal the true serialized size — data-movement
  // accounting depends on it.
  EXPECT_EQ(w.size(), rec.byteSize());
  Reader r(w.bytes());
  const auto back = mlight::index::Record::deserialize(r);
  EXPECT_EQ(back, rec);
  EXPECT_TRUE(r.atEnd());
}

TEST(Serde, RandomRecordsRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    mlight::index::Record rec;
    const std::size_t dims = 1 + rng.below(4);
    rec.key = Point(dims);
    for (std::size_t d = 0; d < dims; ++d) rec.key[d] = rng.uniform();
    rec.id = rng.next();
    rec.payload = std::string(rng.below(40), 'p');
    Writer w;
    rec.serialize(w);
    EXPECT_EQ(w.size(), rec.byteSize());
    Reader r(w.bytes());
    EXPECT_EQ(mlight::index::Record::deserialize(r), rec);
  }
}

}  // namespace
}  // namespace mlight::common
