#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace mlight::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(9);
  int counts[10] = {};
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(31);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.add(rng.gaussian());
  EXPECT_NEAR(stat.mean(), 0.0, 0.02);
  EXPECT_NEAR(stat.variance(), 1.0, 0.03);
}

TEST(Rng, GaussianScaleAndShift) {
  Rng rng(33);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.add(rng.gaussian(5.0, 0.5));
  EXPECT_NEAR(stat.mean(), 5.0, 0.02);
  EXPECT_NEAR(stat.stddev(), 0.5, 0.02);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(77);
  const auto first = rng.next();
  rng.next();
  rng.reseed(77);
  EXPECT_EQ(rng.next(), first);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, NearestRankInterpolation) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
}

}  // namespace
}  // namespace mlight::common
