#include "common/geometry.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mlight::common {
namespace {

TEST(Point, ConstructionAndAccess) {
  Point p{0.25, 0.75};
  EXPECT_EQ(p.dims(), 2u);
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
  p[0] = 0.5;
  EXPECT_DOUBLE_EQ(p[0], 0.5);
}

TEST(Point, EqualityRequiresSameDims) {
  EXPECT_EQ((Point{0.1, 0.2}), (Point{0.1, 0.2}));
  EXPECT_NE((Point{0.1, 0.2}), (Point{0.1, 0.3}));
  EXPECT_NE((Point{0.1}), (Point{0.1, 0.2}));
}

TEST(Rect, UnitCube) {
  const Rect u = Rect::unit(3);
  EXPECT_EQ(u.dims(), 3u);
  EXPECT_DOUBLE_EQ(u.volume(), 1.0);
  EXPECT_TRUE(u.contains(Point{0.0, 0.0, 0.0}));
  EXPECT_TRUE(u.contains(Point{0.999, 0.5, 0.0}));
  EXPECT_FALSE(u.contains(Point{1.0, 0.5, 0.0}));  // half-open
}

TEST(Rect, ContainsIsHalfOpen) {
  const Rect r(Point{0.25, 0.25}, Point{0.5, 0.5});
  EXPECT_TRUE(r.contains(Point{0.25, 0.25}));
  EXPECT_FALSE(r.contains(Point{0.5, 0.5}));
  EXPECT_FALSE(r.contains(Point{0.5, 0.3}));
  EXPECT_TRUE(r.contains(Point{0.4999, 0.4999}));
}

TEST(Rect, ContainsRect) {
  const Rect outer(Point{0.0, 0.0}, Point{1.0, 1.0});
  const Rect inner(Point{0.2, 0.2}, Point{0.8, 0.8});
  EXPECT_TRUE(outer.containsRect(inner));
  EXPECT_FALSE(inner.containsRect(outer));
  EXPECT_TRUE(outer.containsRect(outer));
}

TEST(Rect, IntersectionAndIntersects) {
  const Rect a(Point{0.0, 0.0}, Point{0.5, 0.5});
  const Rect b(Point{0.25, 0.25}, Point{0.75, 0.75});
  EXPECT_TRUE(a.intersects(b));
  const Rect c = a.intersection(b);
  EXPECT_EQ(c, Rect(Point{0.25, 0.25}, Point{0.5, 0.5}));
}

TEST(Rect, TouchingEdgesDoNotIntersect) {
  const Rect a(Point{0.0, 0.0}, Point{0.5, 0.5});
  const Rect b(Point{0.5, 0.0}, Point{1.0, 0.5});
  EXPECT_FALSE(a.intersects(b));
  EXPECT_TRUE(a.intersection(b).empty());
}

TEST(Rect, EmptyAndVolume) {
  const Rect e(Point{0.5, 0.5}, Point{0.5, 0.6});
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.volume(), 0.0);
  const Rect r(Point{0.0, 0.0}, Point{0.5, 0.25});
  EXPECT_DOUBLE_EQ(r.volume(), 0.125);
}

TEST(Rect, HalvedSplitsExactlyInTheMiddle) {
  const Rect u = Rect::unit(2);
  const Rect lo = u.halved(0, false);
  const Rect hi = u.halved(0, true);
  EXPECT_EQ(lo, Rect(Point{0.0, 0.0}, Point{0.5, 1.0}));
  EXPECT_EQ(hi, Rect(Point{0.5, 0.0}, Point{1.0, 1.0}));
  EXPECT_DOUBLE_EQ(lo.volume() + hi.volume(), 1.0);
}

TEST(Rect, HalvesTileEveryPoint) {
  Rng rng(3);
  const Rect u = Rect::unit(2);
  for (int i = 0; i < 200; ++i) {
    const Point p{rng.uniform(), rng.uniform()};
    for (std::size_t dim = 0; dim < 2; ++dim) {
      const bool inLo = u.halved(dim, false).contains(p);
      const bool inHi = u.halved(dim, true).contains(p);
      EXPECT_NE(inLo, inHi);  // exactly one half
    }
  }
}

TEST(Rect, RepeatedHalvingStaysConsistent) {
  Rect cell = Rect::unit(3);
  for (int d = 0; d < 20; ++d) {
    cell = cell.halved(static_cast<std::size_t>(d) % 3, d % 2 == 0);
  }
  EXPECT_FALSE(cell.empty());
  EXPECT_NEAR(cell.volume(), 1.0 / (1 << 20), 1e-15);
}

TEST(Rect, MidPoint) {
  const Rect r(Point{0.25, 0.0}, Point{0.75, 1.0});
  EXPECT_DOUBLE_EQ(r.mid(0), 0.5);
  EXPECT_DOUBLE_EQ(r.mid(1), 0.5);
}

TEST(Rect, IntersectionIsCommutativeAndContained) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    auto randRect = [&] {
      const double x0 = rng.uniform();
      const double x1 = rng.uniform();
      const double y0 = rng.uniform();
      const double y1 = rng.uniform();
      return Rect(Point{std::min(x0, x1), std::min(y0, y1)},
                  Point{std::max(x0, x1), std::max(y0, y1)});
    };
    const Rect a = randRect();
    const Rect b = randRect();
    const Rect ab = a.intersection(b);
    EXPECT_EQ(ab, b.intersection(a));
    if (!ab.empty()) {
      EXPECT_TRUE(a.containsRect(ab));
      EXPECT_TRUE(b.containsRect(ab));
      EXPECT_TRUE(a.intersects(b));
    } else {
      EXPECT_FALSE(a.intersects(b));
    }
  }
}

}  // namespace
}  // namespace mlight::common
