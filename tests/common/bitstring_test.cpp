#include "common/bitstring.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_set>

#include "common/rng.h"

namespace mlight::common {
namespace {

TEST(BitString, DefaultIsEmpty) {
  BitString b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.toString(), "");
}

TEST(BitString, FromStringRoundTrip) {
  for (const char* text : {"", "0", "1", "01", "0011010111",
                           "1111111111111111", "010101010101010101010101"}) {
    EXPECT_EQ(BitString::fromString(text).toString(), text);
  }
}

TEST(BitString, FromStringRejectsBadChars) {
  EXPECT_THROW(BitString::fromString("0102"), std::invalid_argument);
  EXPECT_THROW(BitString::fromString("ab"), std::invalid_argument);
}

TEST(BitString, PushAndPopBack) {
  BitString b;
  b.pushBack(true);
  b.pushBack(false);
  b.pushBack(true);
  EXPECT_EQ(b.toString(), "101");
  b.popBack();
  EXPECT_EQ(b.toString(), "10");
  b.popBack();
  b.popBack();
  EXPECT_TRUE(b.empty());
}

TEST(BitString, PopBackClearsStorageBit) {
  // Popping must zero the tail bit so equality with a rebuilt string holds.
  BitString a = BitString::fromString("101");
  a.popBack();
  BitString b = BitString::fromString("10");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash64(), b.hash64());
}

TEST(BitString, RepeatedBuildsRuns) {
  EXPECT_EQ(BitString::repeated(false, 5).toString(), "00000");
  EXPECT_EQ(BitString::repeated(true, 3).toString(), "111");
  EXPECT_EQ(BitString::repeated(true, 0).toString(), "");
  EXPECT_EQ(BitString::repeated(true, 64).toString(),
            std::string(64, '1'));
  EXPECT_EQ(BitString::repeated(true, 65).size(), 65u);
}

TEST(BitString, BitAccess) {
  const BitString b = BitString::fromString("0110");
  EXPECT_FALSE(b.bit(0));
  EXPECT_TRUE(b.bit(1));
  EXPECT_TRUE(b.bit(2));
  EXPECT_FALSE(b.bit(3));
  EXPECT_FALSE(b.back());
}

TEST(BitString, SetBit) {
  BitString b = BitString::fromString("0000");
  b.setBit(2, true);
  EXPECT_EQ(b.toString(), "0010");
  b.setBit(2, false);
  EXPECT_EQ(b.toString(), "0000");
}

TEST(BitString, WithBack) {
  const BitString b = BitString::fromString("01");
  EXPECT_EQ(b.withBack(true).toString(), "011");
  EXPECT_EQ(b.withBack(false).toString(), "010");
  EXPECT_EQ(b.toString(), "01");  // non-mutating
}

TEST(BitString, Prefix) {
  const BitString b = BitString::fromString("110101");
  EXPECT_EQ(b.prefix(0).toString(), "");
  EXPECT_EQ(b.prefix(3).toString(), "110");
  EXPECT_EQ(b.prefix(6).toString(), "110101");
}

TEST(BitString, PrefixAcrossWordBoundary) {
  std::string text;
  for (int i = 0; i < 130; ++i) text.push_back(i % 3 == 0 ? '1' : '0');
  const BitString b = BitString::fromString(text);
  EXPECT_EQ(b.prefix(65).toString(), text.substr(0, 65));
  EXPECT_EQ(b.prefix(128).toString(), text.substr(0, 128));
  EXPECT_EQ(b.prefix(130).toString(), text);
}

TEST(BitString, IsPrefixOf) {
  const BitString a = BitString::fromString("0101");
  EXPECT_TRUE(BitString().isPrefixOf(a));
  EXPECT_TRUE(BitString::fromString("01").isPrefixOf(a));
  EXPECT_TRUE(a.isPrefixOf(a));
  EXPECT_FALSE(BitString::fromString("011").isPrefixOf(a));
  EXPECT_FALSE(BitString::fromString("01011").isPrefixOf(a));
}

TEST(BitString, SiblingFlipsLastBit) {
  EXPECT_EQ(BitString::fromString("010").sibling().toString(), "011");
  EXPECT_EQ(BitString::fromString("011").sibling().toString(), "010");
  EXPECT_EQ(BitString::fromString("1").sibling().toString(), "0");
}

TEST(BitString, Append) {
  BitString a = BitString::fromString("01");
  a.append(BitString::fromString("110"));
  EXPECT_EQ(a.toString(), "01110");
  a.append(BitString());
  EXPECT_EQ(a.toString(), "01110");
}

TEST(BitString, EqualityDistinguishesLengthFromContent) {
  EXPECT_NE(BitString::fromString("0"), BitString::fromString("00"));
  EXPECT_NE(BitString::fromString("01"), BitString::fromString("10"));
  EXPECT_EQ(BitString::fromString("0110"), BitString::fromString("0110"));
}

TEST(BitString, OrderingIsLexicographicWithPrefixFirst) {
  EXPECT_LT(BitString::fromString("0"), BitString::fromString("00"));
  EXPECT_LT(BitString::fromString("00"), BitString::fromString("01"));
  EXPECT_LT(BitString::fromString("011"), BitString::fromString("1"));
  EXPECT_GT(BitString::fromString("10"), BitString::fromString("011111"));
}

TEST(BitString, UsableAsMapAndSetKey) {
  std::map<BitString, int> ordered;
  std::unordered_set<BitString, BitStringHash> hashed;
  for (const char* text : {"", "0", "1", "01", "10", "010"}) {
    ordered[BitString::fromString(text)] = 1;
    hashed.insert(BitString::fromString(text));
  }
  EXPECT_EQ(ordered.size(), 6u);
  EXPECT_EQ(hashed.size(), 6u);
  EXPECT_TRUE(hashed.contains(BitString::fromString("01")));
  EXPECT_FALSE(hashed.contains(BitString::fromString("00")));
}

TEST(BitString, HashDiffersForPrefixPairs) {
  // Hash must incorporate length: "0" vs "00" share identical words.
  EXPECT_NE(BitString::fromString("0").hash64(),
            BitString::fromString("00").hash64());
}

TEST(BitString, LongStringsCrossWordBoundaries) {
  Rng rng(7);
  std::string text;
  for (int i = 0; i < 200; ++i) text.push_back(rng.chance(0.5) ? '1' : '0');
  BitString b = BitString::fromString(text);
  EXPECT_EQ(b.size(), 200u);
  EXPECT_EQ(b.toString(), text);
  // Pop everything back off and verify each intermediate state.
  for (int i = 199; i >= 0; --i) {
    b.popBack();
    EXPECT_EQ(b.size(), static_cast<std::size_t>(i));
    EXPECT_TRUE(b.isPrefixOf(BitString::fromString(text)));
  }
}

// Property sweep: random build / prefix / sibling interactions.
class BitStringPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BitStringPropertyTest, PrefixAndAppendInvert) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng.below(150);
    BitString b;
    for (std::size_t i = 0; i < n; ++i) b.pushBack(rng.chance(0.5));
    const std::size_t cut = rng.below(n + 1);
    BitString head = b.prefix(cut);
    BitString tail;
    for (std::size_t i = cut; i < n; ++i) tail.pushBack(b.bit(i));
    head.append(tail);
    EXPECT_EQ(head, b);
    EXPECT_TRUE(b.prefix(cut).isPrefixOf(b));
  }
}

TEST_P(BitStringPropertyTest, SiblingIsInvolutionAndDiffersInLastBit) {
  Rng rng(GetParam() * 31 + 1);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng.below(100);
    BitString b;
    for (std::size_t i = 0; i < n; ++i) b.pushBack(rng.chance(0.5));
    const BitString s = b.sibling();
    EXPECT_EQ(s.size(), b.size());
    EXPECT_NE(s, b);
    EXPECT_EQ(s.sibling(), b);
    EXPECT_EQ(s.prefix(n - 1), b.prefix(n - 1));
    EXPECT_NE(s.back(), b.back());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitStringPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// --- Small-buffer boundary (ISSUE 4) ---------------------------------
//
// BitString stores up to kInlineBits bits inline and spills to heap
// beyond.  Everything observable must be representation-blind: these
// tests pin the exact boundary — kSbo-1 (inline with room), kSbo
// (inline, full), kSbo+1 (heap) — and the transitions across it.  The
// lengths derive from kInlineBits so the suite keeps straddling the
// real boundary if the buffer is ever resized again.

constexpr std::size_t kSbo = BitString::kInlineBits;

BitString patternedLabel(std::size_t bits) {
  BitString b;
  for (std::size_t i = 0; i < bits; ++i) b.pushBack(i % 3 == 0 || i % 7 == 0);
  return b;
}

TEST(BitStringSbo, BoundaryLengthsRoundTripThroughEveryAccessor) {
  for (const std::size_t n : {kSbo - 1, kSbo, kSbo + 1}) {
    const BitString b = patternedLabel(n);
    ASSERT_EQ(b.size(), n);
    std::string expect;
    for (std::size_t i = 0; i < n; ++i) {
      expect.push_back((i % 3 == 0 || i % 7 == 0) ? '1' : '0');
    }
    EXPECT_EQ(b.toString(), expect);
    EXPECT_EQ(BitString::fromString(expect), b);
    EXPECT_EQ(b.words().size(), (n + 63) / 64);
  }
}

TEST(BitStringSbo, SpillAndUnspillRoundTrip) {
  // Push across the boundary (spills at bit kSbo+1), pop back under it:
  // the label must stay equal, bit for bit and hash for hash, to one
  // that never left inline storage.
  BitString b = patternedLabel(kSbo - 1);
  const BitString under = b;
  b.pushBack(true);   // kSbo: inline, full
  b.pushBack(false);  // kSbo+1: heap
  b.pushBack(true);   // kSbo+2
  EXPECT_EQ(b.size(), kSbo + 2);
  b.popBack();
  b.popBack();
  b.popBack();
  EXPECT_EQ(b, under);
  EXPECT_EQ(b.hash64(), under.hash64());
  EXPECT_EQ(b.toString(), under.toString());
  // A copy of the popped-down label lands back in inline storage; a
  // copy is equal either way.
  const BitString copy = b;
  EXPECT_EQ(copy, under);
}

TEST(BitStringSbo, TruncateAcrossTheBoundaryMatchesPrefix) {
  const BitString full = patternedLabel(kSbo + 72);
  for (const std::size_t n : {kSbo + 1, kSbo, kSbo - 1, std::size_t{64},
                              std::size_t{1}, std::size_t{0}}) {
    BitString t = full;
    t.truncate(n);
    EXPECT_EQ(t, full.prefix(n)) << n;
    EXPECT_EQ(t.hash64(), full.prefix(n).hash64()) << n;
  }
}

TEST(BitStringSbo, OrderingAndPrefixAcrossTheBoundary) {
  const BitString bUnder = patternedLabel(kSbo - 1);
  const BitString bFull = patternedLabel(kSbo);
  const BitString bOver = patternedLabel(kSbo + 1);
  EXPECT_TRUE(bUnder.isPrefixOf(bFull));
  EXPECT_TRUE(bFull.isPrefixOf(bOver));
  EXPECT_TRUE(bUnder.isPrefixOf(bOver));
  EXPECT_FALSE(bOver.isPrefixOf(bUnder));
  // A proper prefix orders before its extensions.
  EXPECT_LT(bUnder, bFull);
  EXPECT_LT(bFull, bOver);
  // Flipping a bit deep in the heap-only tail reorders correctly.
  BitString hi = bOver;
  hi.setBit(kSbo, !hi.bit(kSbo));
  EXPECT_NE(hi, bOver);
  EXPECT_EQ(hi.commonPrefixLength(bOver), kSbo);
  if (bOver.bit(kSbo)) {
    EXPECT_LT(hi, bOver);
  } else {
    EXPECT_GT(hi, bOver);
  }
}

TEST(BitStringSbo, CommonPrefixLengthMatchesBruteForce) {
  Rng rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t na = rng.below(kSbo + 32);
    BitString a;
    for (std::size_t i = 0; i < na; ++i) a.pushBack(rng.chance(0.5));
    // Derive b from a prefix of a plus noise so long shared prefixes
    // actually occur.
    BitString b = a.prefix(rng.below(na + 1));
    const std::size_t extra = rng.below(80);
    for (std::size_t i = 0; i < extra; ++i) b.pushBack(rng.chance(0.5));
    std::size_t expect = 0;
    const std::size_t limit = std::min(a.size(), b.size());
    while (expect < limit && a.bit(expect) == b.bit(expect)) ++expect;
    EXPECT_EQ(a.commonPrefixLength(b), expect);
    EXPECT_EQ(b.commonPrefixLength(a), expect);
  }
}

TEST(BitStringSbo, AppendBitsMatchesBitwiseAppendAtEveryOffset) {
  // Exercise the shifted word-merge at every alignment of head × a tail
  // long enough to cross words.
  for (std::size_t headBits = 0; headBits <= 70; ++headBits) {
    const BitString head = patternedLabel(headBits);
    for (const std::size_t tailBits :
         {std::size_t{1}, std::size_t{63}, std::size_t{64}, std::size_t{65},
          std::size_t{130}}) {
      BitString tail;
      for (std::size_t i = 0; i < tailBits; ++i) {
        tail.pushBack((i * 5 + headBits) % 4 == 1);
      }
      BitString fast = head;
      fast.appendBits(tail);
      BitString slow = head;
      for (std::size_t i = 0; i < tail.size(); ++i) slow.pushBack(tail.bit(i));
      ASSERT_EQ(fast, slow) << headBits << "+" << tailBits;
    }
  }
}

TEST(BitStringSbo, AppendSelfDoublesTheString) {
  BitString b = BitString::fromString("1011001");
  b.append(b);
  EXPECT_EQ(b.toString(), "10110011011001");
}

TEST(BitStringSbo, PrefixSiblingMatchesPrefixThenSibling) {
  const BitString b = patternedLabel(kSbo + 12);
  for (const std::size_t n : {std::size_t{1}, std::size_t{64}, kSbo - 1,
                              kSbo, kSbo + 1, kSbo + 12}) {
    EXPECT_EQ(b.prefixSibling(n), b.prefix(n).sibling()) << n;
  }
}

// --- Move contract (ISSUE 4 satellite) -------------------------------

TEST(BitStringMove, MovesLeaveTheSourceEmptyInlineCase) {
  BitString src = BitString::fromString("10110");
  BitString dst = std::move(src);
  EXPECT_EQ(dst.toString(), "10110");
  // Documented contract: moved-from labels are empty, not unspecified.
  EXPECT_TRUE(src.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(src.toString(), "");
  // And fully usable again.
  src.pushBack(true);
  EXPECT_EQ(src.toString(), "1");
}

TEST(BitStringMove, MovesLeaveTheSourceEmptyHeapCase) {
  BitString src = patternedLabel(kSbo + 1);
  const BitString expect = src;
  BitString dst = std::move(src);
  EXPECT_EQ(dst, expect);
  EXPECT_TRUE(src.empty());  // NOLINT(bugprone-use-after-move)
  src.pushBack(false);
  EXPECT_EQ(src.toString(), "0");
}

TEST(BitStringMove, MoveAssignmentReleasesAndSteals) {
  BitString a = patternedLabel(129);  // heap
  BitString b = patternedLabel(200);  // heap, different content
  const BitString expect = b;
  a = std::move(b);
  EXPECT_EQ(a, expect);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move)
  // Self-move must be harmless.
  BitString c = BitString::fromString("101");
  BitString& cref = c;
  c = std::move(cref);
  EXPECT_EQ(c.toString(), "101");
}

// --- Memoized hash invalidation (ISSUE 4 satellite) ------------------
//
// hash64() caches its result; every mutator must drop the cache so a
// mutated label hashes identically to a freshly built equal one.

TEST(BitStringHashMemo, MutatorsInvalidateTheCachedHash) {
  for (const std::size_t n :
       {std::size_t{31}, std::size_t{127}, std::size_t{129}}) {
    BitString b = patternedLabel(n);
    (void)b.hash64();  // prime the cache

    BitString viaSetBit = b;
    (void)viaSetBit.hash64();
    viaSetBit.setBit(n / 2, !viaSetBit.bit(n / 2));
    BitString fresh = b;
    fresh = b;  // rebuilt without a primed cache on the mutated form
    {
      BitString reference = patternedLabel(n);
      reference.setBit(n / 2, !reference.bit(n / 2));
      EXPECT_EQ(viaSetBit.hash64(), reference.hash64()) << n;
      EXPECT_NE(viaSetBit.hash64(), b.hash64()) << n;
    }

    BitString viaPopBack = b;
    (void)viaPopBack.hash64();
    viaPopBack.popBack();
    EXPECT_EQ(viaPopBack.hash64(), patternedLabel(n - 1).hash64()) << n;

    BitString viaTruncate = b;
    (void)viaTruncate.hash64();
    viaTruncate.truncate(n / 2);
    EXPECT_EQ(viaTruncate.hash64(), patternedLabel(n).prefix(n / 2).hash64())
        << n;

    BitString viaFlip = b;
    (void)viaFlip.hash64();
    viaFlip.flipBack();
    EXPECT_EQ(viaFlip.hash64(), b.sibling().hash64()) << n;

    BitString viaAppend = b;
    (void)viaAppend.hash64();
    viaAppend.pushBack(true);
    BitString reference = patternedLabel(n);
    reference.pushBack(true);
    EXPECT_EQ(viaAppend.hash64(), reference.hash64()) << n;
  }
}

TEST(BitStringHashMemo, CopiesCarryTheCacheCorrectly) {
  BitString a = patternedLabel(90);
  const std::uint64_t h = a.hash64();  // primes a's cache
  BitString copied = a;                // cache travels with the copy
  EXPECT_EQ(copied.hash64(), h);
  copied.pushBack(true);  // ...but mutation still invalidates it
  copied.popBack();
  EXPECT_EQ(copied.hash64(), h);
  BitString assigned;
  assigned = a;
  EXPECT_EQ(assigned.hash64(), h);
}

}  // namespace
}  // namespace mlight::common
