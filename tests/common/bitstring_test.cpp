#include "common/bitstring.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_set>

#include "common/rng.h"

namespace mlight::common {
namespace {

TEST(BitString, DefaultIsEmpty) {
  BitString b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.toString(), "");
}

TEST(BitString, FromStringRoundTrip) {
  for (const char* text : {"", "0", "1", "01", "0011010111",
                           "1111111111111111", "010101010101010101010101"}) {
    EXPECT_EQ(BitString::fromString(text).toString(), text);
  }
}

TEST(BitString, FromStringRejectsBadChars) {
  EXPECT_THROW(BitString::fromString("0102"), std::invalid_argument);
  EXPECT_THROW(BitString::fromString("ab"), std::invalid_argument);
}

TEST(BitString, PushAndPopBack) {
  BitString b;
  b.pushBack(true);
  b.pushBack(false);
  b.pushBack(true);
  EXPECT_EQ(b.toString(), "101");
  b.popBack();
  EXPECT_EQ(b.toString(), "10");
  b.popBack();
  b.popBack();
  EXPECT_TRUE(b.empty());
}

TEST(BitString, PopBackClearsStorageBit) {
  // Popping must zero the tail bit so equality with a rebuilt string holds.
  BitString a = BitString::fromString("101");
  a.popBack();
  BitString b = BitString::fromString("10");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash64(), b.hash64());
}

TEST(BitString, RepeatedBuildsRuns) {
  EXPECT_EQ(BitString::repeated(false, 5).toString(), "00000");
  EXPECT_EQ(BitString::repeated(true, 3).toString(), "111");
  EXPECT_EQ(BitString::repeated(true, 0).toString(), "");
  EXPECT_EQ(BitString::repeated(true, 64).toString(),
            std::string(64, '1'));
  EXPECT_EQ(BitString::repeated(true, 65).size(), 65u);
}

TEST(BitString, BitAccess) {
  const BitString b = BitString::fromString("0110");
  EXPECT_FALSE(b.bit(0));
  EXPECT_TRUE(b.bit(1));
  EXPECT_TRUE(b.bit(2));
  EXPECT_FALSE(b.bit(3));
  EXPECT_FALSE(b.back());
}

TEST(BitString, SetBit) {
  BitString b = BitString::fromString("0000");
  b.setBit(2, true);
  EXPECT_EQ(b.toString(), "0010");
  b.setBit(2, false);
  EXPECT_EQ(b.toString(), "0000");
}

TEST(BitString, WithBack) {
  const BitString b = BitString::fromString("01");
  EXPECT_EQ(b.withBack(true).toString(), "011");
  EXPECT_EQ(b.withBack(false).toString(), "010");
  EXPECT_EQ(b.toString(), "01");  // non-mutating
}

TEST(BitString, Prefix) {
  const BitString b = BitString::fromString("110101");
  EXPECT_EQ(b.prefix(0).toString(), "");
  EXPECT_EQ(b.prefix(3).toString(), "110");
  EXPECT_EQ(b.prefix(6).toString(), "110101");
}

TEST(BitString, PrefixAcrossWordBoundary) {
  std::string text;
  for (int i = 0; i < 130; ++i) text.push_back(i % 3 == 0 ? '1' : '0');
  const BitString b = BitString::fromString(text);
  EXPECT_EQ(b.prefix(65).toString(), text.substr(0, 65));
  EXPECT_EQ(b.prefix(128).toString(), text.substr(0, 128));
  EXPECT_EQ(b.prefix(130).toString(), text);
}

TEST(BitString, IsPrefixOf) {
  const BitString a = BitString::fromString("0101");
  EXPECT_TRUE(BitString().isPrefixOf(a));
  EXPECT_TRUE(BitString::fromString("01").isPrefixOf(a));
  EXPECT_TRUE(a.isPrefixOf(a));
  EXPECT_FALSE(BitString::fromString("011").isPrefixOf(a));
  EXPECT_FALSE(BitString::fromString("01011").isPrefixOf(a));
}

TEST(BitString, SiblingFlipsLastBit) {
  EXPECT_EQ(BitString::fromString("010").sibling().toString(), "011");
  EXPECT_EQ(BitString::fromString("011").sibling().toString(), "010");
  EXPECT_EQ(BitString::fromString("1").sibling().toString(), "0");
}

TEST(BitString, Append) {
  BitString a = BitString::fromString("01");
  a.append(BitString::fromString("110"));
  EXPECT_EQ(a.toString(), "01110");
  a.append(BitString());
  EXPECT_EQ(a.toString(), "01110");
}

TEST(BitString, EqualityDistinguishesLengthFromContent) {
  EXPECT_NE(BitString::fromString("0"), BitString::fromString("00"));
  EXPECT_NE(BitString::fromString("01"), BitString::fromString("10"));
  EXPECT_EQ(BitString::fromString("0110"), BitString::fromString("0110"));
}

TEST(BitString, OrderingIsLexicographicWithPrefixFirst) {
  EXPECT_LT(BitString::fromString("0"), BitString::fromString("00"));
  EXPECT_LT(BitString::fromString("00"), BitString::fromString("01"));
  EXPECT_LT(BitString::fromString("011"), BitString::fromString("1"));
  EXPECT_GT(BitString::fromString("10"), BitString::fromString("011111"));
}

TEST(BitString, UsableAsMapAndSetKey) {
  std::map<BitString, int> ordered;
  std::unordered_set<BitString, BitStringHash> hashed;
  for (const char* text : {"", "0", "1", "01", "10", "010"}) {
    ordered[BitString::fromString(text)] = 1;
    hashed.insert(BitString::fromString(text));
  }
  EXPECT_EQ(ordered.size(), 6u);
  EXPECT_EQ(hashed.size(), 6u);
  EXPECT_TRUE(hashed.contains(BitString::fromString("01")));
  EXPECT_FALSE(hashed.contains(BitString::fromString("00")));
}

TEST(BitString, HashDiffersForPrefixPairs) {
  // Hash must incorporate length: "0" vs "00" share identical words.
  EXPECT_NE(BitString::fromString("0").hash64(),
            BitString::fromString("00").hash64());
}

TEST(BitString, LongStringsCrossWordBoundaries) {
  Rng rng(7);
  std::string text;
  for (int i = 0; i < 200; ++i) text.push_back(rng.chance(0.5) ? '1' : '0');
  BitString b = BitString::fromString(text);
  EXPECT_EQ(b.size(), 200u);
  EXPECT_EQ(b.toString(), text);
  // Pop everything back off and verify each intermediate state.
  for (int i = 199; i >= 0; --i) {
    b.popBack();
    EXPECT_EQ(b.size(), static_cast<std::size_t>(i));
    EXPECT_TRUE(b.isPrefixOf(BitString::fromString(text)));
  }
}

// Property sweep: random build / prefix / sibling interactions.
class BitStringPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BitStringPropertyTest, PrefixAndAppendInvert) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng.below(150);
    BitString b;
    for (std::size_t i = 0; i < n; ++i) b.pushBack(rng.chance(0.5));
    const std::size_t cut = rng.below(n + 1);
    BitString head = b.prefix(cut);
    BitString tail;
    for (std::size_t i = cut; i < n; ++i) tail.pushBack(b.bit(i));
    head.append(tail);
    EXPECT_EQ(head, b);
    EXPECT_TRUE(b.prefix(cut).isPrefixOf(b));
  }
}

TEST_P(BitStringPropertyTest, SiblingIsInvolutionAndDiffersInLastBit) {
  Rng rng(GetParam() * 31 + 1);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng.below(100);
    BitString b;
    for (std::size_t i = 0; i < n; ++i) b.pushBack(rng.chance(0.5));
    const BitString s = b.sibling();
    EXPECT_EQ(s.size(), b.size());
    EXPECT_NE(s, b);
    EXPECT_EQ(s.sibling(), b);
    EXPECT_EQ(s.prefix(n - 1), b.prefix(n - 1));
    EXPECT_NE(s.back(), b.back());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitStringPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace mlight::common
