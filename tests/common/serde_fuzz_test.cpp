// Adversarial serde fuzzing: deserializers must reject corrupt wire
// bytes with SerdeError — never crash, hang, or allocate unboundedly.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serde.h"
#include "dst/dst_index.h"
#include "index/record.h"
#include "mlight/bucket.h"
#include "pht/pht_index.h"
#include "rst/rst_index.h"

namespace mlight::common {
namespace {

using mlight::index::Record;

Record sampleRecord(Rng& rng) {
  Record r;
  r.key = Point{rng.uniform(), rng.uniform()};
  r.id = rng.next();
  r.payload = std::string(rng.below(20), 'x');
  return r;
}

template <typename T, typename DecodeFn>
void fuzzDecoder(std::uint64_t seed, const std::vector<std::uint8_t>& valid,
                 DecodeFn decode) {
  Rng rng(seed);
  // 1. Truncations at every prefix length must throw or succeed cleanly.
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    Reader r(std::span<const std::uint8_t>(valid.data(), cut));
    try {
      (void)decode(r);
    } catch (const SerdeError&) {
      // expected for most cuts
    }
  }
  // 2. Random single-byte corruptions.
  for (int trial = 0; trial < 300; ++trial) {
    auto bytes = valid;
    bytes[rng.below(bytes.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    Reader r(bytes);
    try {
      (void)decode(r);
    } catch (const SerdeError&) {
    }
  }
  // 3. Pure random garbage.
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> bytes(rng.below(200));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    Reader r(bytes);
    try {
      (void)decode(r);
    } catch (const SerdeError&) {
    }
  }
  SUCCEED();
}

TEST(SerdeFuzz, RecordDecoderNeverCrashes) {
  Rng rng(1);
  Writer w;
  sampleRecord(rng).serialize(w);
  fuzzDecoder<Record>(11, w.bytes(),
                      [](Reader& r) { return Record::deserialize(r); });
}

TEST(SerdeFuzz, LeafBucketDecoderNeverCrashes) {
  Rng rng(2);
  mlight::core::LeafBucket bucket;
  bucket.label = BitString::fromString("0010110");
  for (int i = 0; i < 5; ++i) bucket.records.push_back(sampleRecord(rng));
  Writer w;
  bucket.serialize(w);
  fuzzDecoder<mlight::core::LeafBucket>(13, w.bytes(), [](Reader& r) {
    return mlight::core::LeafBucket::deserialize(r);
  });
}

TEST(SerdeFuzz, BaselineNodeDecodersNeverCrash) {
  Rng rng(3);
  {
    mlight::pht::PhtNode node;
    node.label = BitString::fromString("0101");
    node.records.push_back(sampleRecord(rng));
    Writer w;
    node.serialize(w);
    fuzzDecoder<mlight::pht::PhtNode>(17, w.bytes(), [](Reader& r) {
      return mlight::pht::PhtNode::deserialize(r);
    });
  }
  {
    mlight::dst::DstNode node;
    node.label = BitString::fromString("0101");
    node.records.push_back(sampleRecord(rng));
    Writer w;
    node.serialize(w);
    fuzzDecoder<mlight::dst::DstNode>(19, w.bytes(), [](Reader& r) {
      return mlight::dst::DstNode::deserialize(r);
    });
  }
  {
    mlight::rst::RstNode node;
    node.label = BitString::fromString("0101");
    node.records.push_back(sampleRecord(rng));
    Writer w;
    node.serialize(w);
    fuzzDecoder<mlight::rst::RstNode>(23, w.bytes(), [](Reader& r) {
      return mlight::rst::RstNode::deserialize(r);
    });
  }
}

TEST(SerdeFuzz, HugeCountIsRejectedNotAllocated) {
  // A forged bucket header claiming 4 billion records must throw, not
  // reserve gigabytes.
  Writer w;
  w.writeBitString(BitString::fromString("01"));
  w.writeU32(0xFFFFFFFFu);  // record count
  Reader r(w.bytes());
  EXPECT_THROW((void)mlight::core::LeafBucket::deserialize(r), SerdeError);
}

TEST(SerdeFuzz, BadRecordDimensionalityRejected) {
  Writer w;
  w.writeU64(1);          // id
  w.writeU32(200);        // dims > kMaxDims
  Reader r(w.bytes());
  EXPECT_THROW((void)Record::deserialize(r), SerdeError);
  Writer w2;
  w2.writeU64(1);
  w2.writeU32(0);  // dims == 0
  Reader r2(w2.bytes());
  EXPECT_THROW((void)Record::deserialize(r2), SerdeError);
}

}  // namespace
}  // namespace mlight::common
