#include "common/zorder.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mlight::common {
namespace {

TEST(ZOrder, DimensionOrderFollowsPaper) {
  // §5's worked example interleaves the *last* dimension first: depth 0
  // refines y in 2-D.
  EXPECT_EQ(dimensionAtDepth(0, 2), 1u);
  EXPECT_EQ(dimensionAtDepth(1, 2), 0u);
  EXPECT_EQ(dimensionAtDepth(2, 2), 1u);
  EXPECT_EQ(dimensionAtDepth(0, 3), 2u);
  EXPECT_EQ(dimensionAtDepth(1, 3), 1u);
  EXPECT_EQ(dimensionAtDepth(2, 3), 0u);
  EXPECT_EQ(dimensionAtDepth(3, 3), 2u);
}

TEST(ZOrder, PaperLookupExampleInterleaving) {
  // Paper §5: δ = <0.3, 0.9> interleaves to 10111000011110000111...
  const BitString got = interleave(Point{0.3, 0.9}, 20);
  EXPECT_EQ(got.toString(), "10111000011110000111");
}

TEST(ZOrder, PaperCandidateSetExample) {
  // Paper §5: δ = <0.2, 0.4> interleaves to 001011... (y=0.4 first).
  const BitString got = interleave(Point{0.2, 0.4}, 6);
  EXPECT_EQ(got.toString(), "001011");
}

TEST(ZOrder, OneDimensionalIsPlainBinaryExpansion) {
  EXPECT_EQ(interleave(Point{0.5}, 4).toString(), "1000");
  EXPECT_EQ(interleave(Point{0.25}, 4).toString(), "0100");
  EXPECT_EQ(interleave(Point{0.875}, 4).toString(), "1110");
  EXPECT_EQ(interleave(Point{0.0}, 4).toString(), "0000");
}

TEST(ZOrder, CellOfEmptyPathIsUnitCube) {
  EXPECT_EQ(cellOfPath(BitString{}, 2), Rect::unit(2));
}

TEST(ZOrder, CellOfPathHalvesPerStep) {
  // First bit halves y (dim 1) in 2-D.
  const Rect top = cellOfPath(BitString::fromString("1"), 2);
  EXPECT_EQ(top, Rect(Point{0.0, 0.5}, Point{1.0, 1.0}));
  const Rect topLeft = cellOfPath(BitString::fromString("10"), 2);
  EXPECT_EQ(topLeft, Rect(Point{0.0, 0.5}, Point{0.5, 1.0}));
}

TEST(ZOrder, InterleavedPathContainsItsPoint) {
  Rng rng(17);
  for (std::size_t dims = 1; dims <= 4; ++dims) {
    for (int i = 0; i < 200; ++i) {
      Point p(dims);
      for (std::size_t d = 0; d < dims; ++d) p[d] = rng.uniform();
      const BitString path = interleave(p, 20);
      EXPECT_TRUE(cellOfPath(path, dims).contains(p));
      // Every prefix cell also contains the point.
      for (std::size_t cut : {1u, 5u, 13u}) {
        EXPECT_TRUE(cellOfPath(path.prefix(cut), dims).contains(p));
      }
    }
  }
}

TEST(ZOrder, SiblingCellsTile) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    BitString path;
    const std::size_t depth = 1 + rng.below(12);
    for (std::size_t d = 0; d < depth; ++d) path.pushBack(rng.chance(0.5));
    const Rect cell = cellOfPath(path, 2);
    const Rect sib = cellOfPath(path.sibling(), 2);
    BitString parent = path;
    parent.popBack();
    const Rect parentCell = cellOfPath(parent, 2);
    EXPECT_FALSE(cell.intersects(sib));
    EXPECT_TRUE(parentCell.containsRect(cell));
    EXPECT_TRUE(parentCell.containsRect(sib));
    EXPECT_NEAR(cell.volume() + sib.volume(), parentCell.volume(), 1e-12);
  }
}

TEST(ZOrder, LowestCoveringPathCoversAndIsMaximal) {
  Rng rng(29);
  for (int i = 0; i < 200; ++i) {
    const double side = rng.uniform(0.001, 0.4);
    const double x = rng.uniform() * (1.0 - side);
    const double y = rng.uniform() * (1.0 - side);
    const Rect r(Point{x, y}, Point{x + side, y + side});
    const BitString path = lowestCoveringPath(r, 2, 30);
    EXPECT_TRUE(cellOfPath(path, 2).containsRect(r));
    if (path.size() < 30) {
      // Maximality: neither child cell covers the rectangle.
      EXPECT_FALSE(cellOfPath(path.withBack(false), 2).containsRect(r));
      EXPECT_FALSE(cellOfPath(path.withBack(true), 2).containsRect(r));
    }
  }
}

TEST(ZOrder, LowestCoveringPathOfUnitCubeIsEmpty) {
  EXPECT_EQ(lowestCoveringPath(Rect::unit(2), 2, 30).size(), 0u);
}

TEST(ZOrder, CoordinateOneClampsToTopCell) {
  // 1.0 is the domain's closed top; it must map into the uppermost cell
  // chain rather than fall off the space.
  const BitString path = interleave(Point{1.0, 1.0}, 10);
  EXPECT_EQ(path.toString(), "1111111111");
}

// Parameterized sweep over dimensionalities: interleave/cellOfPath agree
// with direct per-dimension bit extraction.
class ZOrderDimsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZOrderDimsTest, MatchesPerDimensionBits) {
  const std::size_t dims = GetParam();
  Rng rng(101 + dims);
  for (int i = 0; i < 100; ++i) {
    Point p(dims);
    for (std::size_t d = 0; d < dims; ++d) p[d] = rng.uniform();
    const std::size_t depth = dims * 6;
    const BitString path = interleave(p, depth);
    for (std::size_t j = 0; j < depth; ++j) {
      const std::size_t dim = dimensionAtDepth(j, dims);
      const std::size_t round = j / dims;
      // Bit `round` of coordinate dim: floor(coord * 2^(round+1)) odd.
      const auto scaled = static_cast<std::uint64_t>(
          p[dim] * static_cast<double>(1ull << (round + 1)));
      EXPECT_EQ(path.bit(j), (scaled & 1u) != 0)
          << "dims=" << dims << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, ZOrderDimsTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mlight::common
