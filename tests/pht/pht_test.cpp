#include "pht/pht_index.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/oracle.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace mlight::pht {
namespace {

using mlight::common::Point;
using mlight::common::Rect;
using mlight::common::Rng;
using mlight::dht::CostMeter;
using mlight::dht::MeterScope;
using mlight::dht::Network;
using mlight::index::Oracle;
using mlight::index::Record;

Record rec(double x, double y, std::uint64_t id) {
  Record r;
  r.key = Point{x, y};
  r.id = id;
  r.payload = "p" + std::to_string(id);
  return r;
}

PhtConfig smallConfig() {
  PhtConfig cfg;
  cfg.thetaSplit = 8;
  cfg.thetaMerge = 4;
  cfg.maxDepth = 20;
  return cfg;
}

TEST(PhtIndex, EmptyIndexAnswersEmptyQueries) {
  Network net(32);
  PhtIndex index(net, smallConfig());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.nodeCount(), 1u);
  EXPECT_TRUE(
      index.rangeQuery(Rect(Point{0.1, 0.1}, Point{0.9, 0.9})).records.empty());
}

TEST(PhtIndex, InsertAndPointQuery) {
  Network net(32);
  PhtIndex index(net, smallConfig());
  index.insert(rec(0.6, 0.4, 7));
  const auto res = index.pointQuery(Point{0.6, 0.4});
  ASSERT_EQ(res.records.size(), 1u);
  EXPECT_EQ(res.records[0].id, 7u);
}

TEST(PhtIndex, InternalNodesHoldNoData) {
  Network net(32);
  PhtIndex index(net, smallConfig());
  Rng rng(3);
  for (std::uint64_t i = 0; i < 300; ++i) {
    index.insert(rec(rng.uniform(), rng.uniform(), i));
  }
  index.checkInvariants();  // includes the internal-nodes-empty check
  EXPECT_GT(index.nodeCount(), index.leafCount());
}

TEST(PhtIndex, SplitReassignsBothChildren) {
  // The maintenance contrast with m-LIGHT: a PHT split ships BOTH halves
  // to fresh DHT keys — the whole bucket's worth of payload.
  Network net(64);
  PhtConfig cfg = smallConfig();
  cfg.thetaSplit = 10;
  PhtIndex index(net, cfg);
  Rng rng(5);
  CostMeter meter;
  {
    MeterScope scope(net, meter);
    for (std::uint64_t i = 0; i < 11; ++i) {
      index.insert(rec(rng.uniform(), rng.uniform(), i));
    }
  }
  EXPECT_EQ(index.leafCount(), 2u);
  // 11 inserts ship one record each; the split ships all 11 again
  // (modulo same-peer luck).
  EXPECT_GE(meter.recordsMoved, 11u + 8u);
}

TEST(PhtIndex, RangeQueryMatchesOracle) {
  Network net(64);
  PhtIndex index(net, smallConfig());
  Oracle oracle;
  Rng rng(11);
  for (std::uint64_t i = 0; i < 400; ++i) {
    const Record r = rec(rng.uniform(), rng.uniform(), i);
    index.insert(r);
    oracle.insert(r);
  }
  index.checkInvariants();
  for (double span : {0.0, 0.05, 0.2, 1.0}) {
    for (const Rect& q :
         mlight::workload::uniformRangeQueries(10, 2, span, 13)) {
      auto got = index.rangeQuery(q).records;
      Oracle::sortById(got);
      EXPECT_EQ(got, oracle.rangeQuery(q)) << q.toString();
    }
  }
}

TEST(PhtIndex, RangeQueryMatchesOracleClustered) {
  Network net(64);
  PhtIndex index(net, smallConfig());
  Oracle oracle;
  for (const Record& r :
       mlight::workload::clusteredDataset(500, 2, 3, 0.05, 17)) {
    index.insert(r);
    oracle.insert(r);
  }
  for (const Rect& q :
       mlight::workload::uniformRangeQueries(25, 2, 0.05, 19)) {
    auto got = index.rangeQuery(q).records;
    Oracle::sortById(got);
    EXPECT_EQ(got, oracle.rangeQuery(q));
  }
}

TEST(PhtIndex, EraseAndMerge) {
  Network net(32);
  PhtIndex index(net, smallConfig());
  Rng rng(23);
  std::vector<Record> records;
  for (std::uint64_t i = 0; i < 200; ++i) {
    records.push_back(rec(rng.uniform(), rng.uniform(), i));
    index.insert(records.back());
  }
  const std::size_t before = index.nodeCount();
  for (const Record& r : records) EXPECT_EQ(index.erase(r.key, r.id), 1u);
  EXPECT_EQ(index.size(), 0u);
  index.checkInvariants();
  EXPECT_LT(index.nodeCount(), before);
  EXPECT_EQ(index.erase(Point{0.1, 0.1}, 555), 0u);
}

TEST(PhtIndex, LookupCostIsLogOfDepth) {
  Network net(64);
  PhtIndex index(net, smallConfig());
  Rng rng(29);
  for (std::uint64_t i = 0; i < 500; ++i) {
    index.insert(rec(rng.uniform(), rng.uniform(), i));
  }
  for (int i = 0; i < 30; ++i) {
    const auto res = index.pointQuery(Point{rng.uniform(), rng.uniform()});
    // Binary search over prefix lengths 0..20: at most 6 probes.
    EXPECT_LE(res.stats.cost.lookups, 6u);
  }
}

TEST(PhtIndex, SurvivesChurn) {
  Network net(48);
  PhtIndex index(net, smallConfig());
  Oracle oracle;
  Rng rng(31);
  for (std::uint64_t i = 0; i < 300; ++i) {
    const Record r = rec(rng.uniform(), rng.uniform(), i);
    index.insert(r);
    oracle.insert(r);
  }
  for (int i = 0; i < 10; ++i) {
    net.removePeer(net.peers()[rng.below(net.peerCount())]);
  }
  net.addPeer("pht-joiner");
  index.checkInvariants();
  for (const Rect& q :
       mlight::workload::uniformRangeQueries(10, 2, 0.2, 37)) {
    auto got = index.rangeQuery(q).records;
    Oracle::sortById(got);
    EXPECT_EQ(got, oracle.rangeQuery(q));
  }
}

TEST(PhtIndex, DepthCapStopsSplitting) {
  Network net(16);
  PhtConfig cfg = smallConfig();
  cfg.maxDepth = 8;
  PhtIndex index(net, cfg);
  for (std::uint64_t i = 0; i < 50; ++i) index.insert(rec(0.41, 0.41, i));
  index.checkInvariants();
  EXPECT_EQ(index.pointQuery(Point{0.41, 0.41}).records.size(), 50u);
}

TEST(PhtIndex, RejectsBadInputs) {
  Network net(8);
  PhtConfig cfg;
  cfg.dims = 0;
  EXPECT_THROW(PhtIndex(net, cfg), std::invalid_argument);
  PhtIndex ok(net, PhtConfig{});
  Record bad;
  bad.key = Point{0.5};
  EXPECT_THROW(ok.insert(bad), std::invalid_argument);
}

}  // namespace
}  // namespace mlight::pht
