#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "common/stats.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace mlight::workload {
namespace {

using mlight::common::Rect;

TEST(Datasets, NortheastHasRequestedSizeAndDomain) {
  const auto data = northeastDataset(5000, 1);
  ASSERT_EQ(data.size(), 5000u);
  std::set<std::uint64_t> ids;
  for (const auto& r : data) {
    ASSERT_EQ(r.key.dims(), 2u);
    ASSERT_GE(r.key[0], 0.0);
    ASSERT_LT(r.key[0], 1.0);
    ASSERT_GE(r.key[1], 0.0);
    ASSERT_LT(r.key[1], 1.0);
    EXPECT_FALSE(r.payload.empty());
    ids.insert(r.id);
  }
  EXPECT_EQ(ids.size(), data.size());  // unique ids
}

TEST(Datasets, NortheastIsDeterministic) {
  const auto a = northeastDataset(1000, 7);
  const auto b = northeastDataset(1000, 7);
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  const auto c = northeastDataset(1000, 8);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += (a[i].key == c[i].key);
  EXPECT_LT(same, 10);
}

TEST(Datasets, NortheastIsClustered) {
  // The synthetic NE stand-in must be strongly skewed: the densest 1% of
  // cells on a 32x32 grid should hold far more than 1% of the points.
  const auto data = northeastDataset(20000, 3);
  std::map<int, int> grid;
  for (const auto& r : data) {
    grid[static_cast<int>(r.key[0] * 32) * 32 +
         static_cast<int>(r.key[1] * 32)]++;
  }
  std::vector<int> counts;
  for (const auto& [cell, count] : grid) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  int top10 = 0;
  for (int i = 0; i < 10 && i < static_cast<int>(counts.size()); ++i) {
    top10 += counts[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(top10, 20000 / 5);  // top 10 of 1024 cells hold > 20%
}

TEST(Datasets, UniformCoversSpaceEvenly) {
  const auto data = uniformDataset(20000, 2, 5);
  int quadrants[4] = {};
  for (const auto& r : data) {
    quadrants[(r.key[0] >= 0.5 ? 1 : 0) + (r.key[1] >= 0.5 ? 2 : 0)]++;
  }
  for (int q : quadrants) {
    EXPECT_GT(q, 4500);
    EXPECT_LT(q, 5500);
  }
}

TEST(Datasets, ClusteredRespectsDims) {
  for (std::size_t dims : {1u, 2u, 4u}) {
    const auto data = clusteredDataset(500, dims, 3, 0.05, 9);
    ASSERT_EQ(data.size(), 500u);
    for (const auto& r : data) {
      ASSERT_EQ(r.key.dims(), dims);
      for (std::size_t d = 0; d < dims; ++d) {
        ASSERT_GE(r.key[d], 0.0);
        ASSERT_LT(r.key[d], 1.0);
      }
    }
  }
}

TEST(Queries, SpanControlsArea) {
  for (double span : {0.05, 0.2, 0.6}) {
    const auto queries = uniformRangeQueries(50, 2, span, 11);
    ASSERT_EQ(queries.size(), 50u);
    for (const Rect& q : queries) {
      EXPECT_NEAR(q.volume(), span, span * 0.05);
      EXPECT_TRUE(Rect::unit(2).containsRect(q));
    }
  }
}

TEST(Queries, ZeroSpanYieldsTinyBoxes) {
  for (const Rect& q : uniformRangeQueries(10, 2, 0.0, 13)) {
    EXPECT_LT(q.volume(), 1e-10);
    EXPECT_FALSE(q.empty());
  }
}

TEST(Queries, PositionsAreSpread) {
  const auto queries = uniformRangeQueries(200, 2, 0.01, 17);
  mlight::common::RunningStat xs;
  for (const Rect& q : queries) xs.add(q.lo()[0]);
  EXPECT_GT(xs.stddev(), 0.15);  // not clumped
  EXPECT_NEAR(xs.mean(), 0.45, 0.1);
}

TEST(Queries, DeterministicPerSeed) {
  const auto a = uniformRangeQueries(20, 2, 0.1, 19);
  const auto b = uniformRangeQueries(20, 2, 0.1, 19);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(LoadPointsFile, ParsesAndNormalizes) {
  const std::string path = ::testing::TempDir() + "/points.txt";
  {
    std::ofstream out(path);
    out << "# comment line\n";
    out << "100 200 extra tokens ignored\n";
    out << "300,400\n";          // comma separated
    out << "200\t300\n";          // tab separated
    out << "not a point\n";       // skipped
    out << "\n";                  // blank skipped
  }
  const auto data = loadPointsFile(path, 2);
  ASSERT_EQ(data.size(), 3u);
  // Min-max normalization: x spans 100..300, y spans 200..400.
  EXPECT_DOUBLE_EQ(data[0].key[0], 0.0);
  EXPECT_DOUBLE_EQ(data[0].key[1], 0.0);
  EXPECT_NEAR(data[1].key[0], 0.999999999, 1e-6);
  EXPECT_NEAR(data[2].key[0], 0.5, 1e-9);
  for (const auto& r : data) {
    EXPECT_GE(r.key[0], 0.0);
    EXPECT_LT(r.key[0], 1.0);
  }
}

TEST(LoadPointsFile, ErrorsOnMissingOrTinyFiles) {
  EXPECT_THROW(loadPointsFile("/nonexistent/file.txt", 2),
               std::runtime_error);
  const std::string path = ::testing::TempDir() + "/one_point.txt";
  {
    std::ofstream out(path);
    out << "1 2\n";
  }
  EXPECT_THROW(loadPointsFile(path, 2), std::runtime_error);
}

TEST(LoadPointsFile, DegenerateDimensionMapsToZero) {
  const std::string path = ::testing::TempDir() + "/flat.txt";
  {
    std::ofstream out(path);
    out << "5 1\n5 2\n5 3\n";  // x constant
  }
  const auto data = loadPointsFile(path, 2);
  ASSERT_EQ(data.size(), 3u);
  for (const auto& r : data) EXPECT_DOUBLE_EQ(r.key[0], 0.0);
}

}  // namespace
}  // namespace mlight::workload
