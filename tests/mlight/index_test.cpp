#include "mlight/index.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "index/oracle.h"
#include "mlight/kdspace.h"
#include "mlight/naming.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace mlight::core {
namespace {

using mlight::common::Point;
using mlight::common::Rect;
using mlight::common::Rng;
using mlight::dht::CostMeter;
using mlight::dht::MeterScope;
using mlight::dht::Network;
using mlight::index::Oracle;
using mlight::index::Record;

Record rec(double x, double y, std::uint64_t id) {
  Record r;
  r.key = Point{x, y};
  r.id = id;
  r.payload = "p" + std::to_string(id);
  return r;
}

MLightConfig smallConfig() {
  MLightConfig cfg;
  cfg.thetaSplit = 8;
  cfg.thetaMerge = 4;
  cfg.maxEdgeDepth = 20;
  return cfg;
}

TEST(MLightIndex, EmptyIndexAnswersEmptyQueries) {
  Network net(32);
  MLightIndex index(net, smallConfig());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.bucketCount(), 1u);  // the root bucket
  const auto range =
      index.rangeQuery(Rect(Point{0.1, 0.1}, Point{0.9, 0.9}));
  EXPECT_TRUE(range.records.empty());
  const auto point = index.pointQuery(Point{0.5, 0.5});
  EXPECT_TRUE(point.records.empty());
}

TEST(MLightIndex, InsertThenPointQueryFindsRecord) {
  Network net(32);
  MLightIndex index(net, smallConfig());
  index.insert(rec(0.3, 0.7, 42));
  EXPECT_EQ(index.size(), 1u);
  const auto res = index.pointQuery(Point{0.3, 0.7});
  ASSERT_EQ(res.records.size(), 1u);
  EXPECT_EQ(res.records[0].id, 42u);
  EXPECT_GE(res.stats.cost.lookups, 1u);
}

TEST(MLightIndex, DuplicateKeysAllReturned) {
  Network net(32);
  MLightIndex index(net, smallConfig());
  for (std::uint64_t i = 0; i < 5; ++i) index.insert(rec(0.25, 0.25, i));
  const auto res = index.pointQuery(Point{0.25, 0.25});
  EXPECT_EQ(res.records.size(), 5u);
}

TEST(MLightIndex, LookupReturnsCoveringLeaf) {
  Network net(32);
  MLightIndex index(net, smallConfig());
  Rng rng(3);
  for (std::uint64_t i = 0; i < 200; ++i) {
    index.insert(rec(rng.uniform(), rng.uniform(), i));
  }
  index.checkInvariants();
  for (int i = 0; i < 50; ++i) {
    const Point p{rng.uniform(), rng.uniform()};
    const auto res = index.lookup(p);
    EXPECT_TRUE(labelRegion(res.leaf, 2).contains(p));
    // Binary search: at most ceil(log2(D+1)) + 1 probes.
    EXPECT_LE(res.stats.cost.lookups, 6u);
    EXPECT_EQ(res.stats.rounds, res.stats.cost.lookups);
  }
}

TEST(MLightIndex, SplitsKeepThresholdInvariant) {
  Network net(32);
  MLightIndex index(net, smallConfig());
  Rng rng(5);
  for (std::uint64_t i = 0; i < 300; ++i) {
    index.insert(rec(rng.uniform(), rng.uniform(), i));
  }
  EXPECT_GT(index.bucketCount(), 1u);
  index.checkInvariants();
  std::size_t maxLoad = 0;
  index.store().forEach([&](const auto&, const LeafBucket& b, auto) {
    maxLoad = std::max(maxLoad, b.records.size());
  });
  EXPECT_LE(maxLoad, index.config().thetaSplit);
}

TEST(MLightIndex, IncrementalSplitMovesAboutHalfTheData) {
  // Theorem 5's payoff: at every split only one child's bucket crosses
  // the network.  Fill one bucket to force a single split and check the
  // shipped records are (about) half.
  Network net(64);
  MLightConfig cfg = smallConfig();
  cfg.thetaSplit = 10;
  cfg.thetaMerge = 2;
  MLightIndex index(net, cfg);
  Rng rng(7);
  CostMeter meter;
  {
    MeterScope scope(net, meter);
    for (std::uint64_t i = 0; i < 11; ++i) {
      index.insert(rec(rng.uniform(), rng.uniform(), i));
    }
  }
  EXPECT_EQ(index.bucketCount(), 2u);
  // 11 records inserted (each ships once) + one split moving <= 11
  // records; strictly less than 2x insert traffic.
  EXPECT_GE(meter.recordsMoved, 11u);
  EXPECT_LE(meter.recordsMoved, 11u + 11u);
  index.checkInvariants();
}

TEST(MLightIndex, RangeQueryMatchesOracleUniform) {
  Network net(64);
  MLightIndex index(net, smallConfig());
  Oracle oracle;
  Rng rng(11);
  for (std::uint64_t i = 0; i < 400; ++i) {
    const Record r = rec(rng.uniform(), rng.uniform(), i);
    index.insert(r);
    oracle.insert(r);
  }
  index.checkInvariants();
  for (double span : {0.0, 0.01, 0.1, 0.3, 1.0}) {
    const auto queries =
        mlight::workload::uniformRangeQueries(10, 2, span, 17);
    for (const Rect& q : queries) {
      auto got = index.rangeQuery(q).records;
      Oracle::sortById(got);
      EXPECT_EQ(got, oracle.rangeQuery(q)) << q.toString();
    }
  }
}

TEST(MLightIndex, RangeQueryMatchesOracleClustered) {
  Network net(64);
  MLightIndex index(net, smallConfig());
  Oracle oracle;
  for (const Record& r :
       mlight::workload::clusteredDataset(500, 2, 3, 0.05, 23)) {
    index.insert(r);
    oracle.insert(r);
  }
  index.checkInvariants();
  const auto queries = mlight::workload::uniformRangeQueries(30, 2, 0.05, 29);
  for (const Rect& q : queries) {
    auto got = index.rangeQuery(q).records;
    Oracle::sortById(got);
    EXPECT_EQ(got, oracle.rangeQuery(q)) << q.toString();
  }
}

TEST(MLightIndex, FullSpaceRangeReturnsEverything) {
  Network net(32);
  MLightIndex index(net, smallConfig());
  Rng rng(31);
  for (std::uint64_t i = 0; i < 150; ++i) {
    index.insert(rec(rng.uniform(), rng.uniform(), i));
  }
  const auto res = index.rangeQuery(Rect::unit(2));
  EXPECT_EQ(res.records.size(), 150u);
}

TEST(MLightIndex, RangeOutsideUnitCubeIsClipped) {
  Network net(32);
  MLightIndex index(net, smallConfig());
  index.insert(rec(0.99, 0.99, 1));
  const auto res =
      index.rangeQuery(Rect(Point{0.9, 0.9}, Point{5.0, 5.0}));
  EXPECT_EQ(res.records.size(), 1u);
  const auto empty =
      index.rangeQuery(Rect(Point{2.0, 2.0}, Point{3.0, 3.0}));
  EXPECT_TRUE(empty.records.empty());
}

TEST(MLightIndex, EraseRemovesAndMerges) {
  Network net(32);
  MLightConfig cfg = smallConfig();
  MLightIndex index(net, cfg);
  Rng rng(37);
  std::vector<Record> records;
  for (std::uint64_t i = 0; i < 200; ++i) {
    records.push_back(rec(rng.uniform(), rng.uniform(), i));
    index.insert(records.back());
  }
  const std::size_t bucketsBefore = index.bucketCount();
  EXPECT_GT(bucketsBefore, 4u);
  for (const Record& r : records) {
    EXPECT_EQ(index.erase(r.key, r.id), 1u);
  }
  EXPECT_EQ(index.size(), 0u);
  index.checkInvariants();
  // Merges collapsed the tree substantially.
  EXPECT_LT(index.bucketCount(), bucketsBefore);
  // Erasing a missing record is a no-op.
  EXPECT_EQ(index.erase(Point{0.5, 0.5}, 999999), 0u);
}

TEST(MLightIndex, EraseKeepsQueriesConsistentWithOracle) {
  Network net(32);
  MLightIndex index(net, smallConfig());
  Oracle oracle;
  Rng rng(41);
  std::vector<Record> records;
  for (std::uint64_t i = 0; i < 300; ++i) {
    records.push_back(rec(rng.uniform(), rng.uniform(), i));
    index.insert(records.back());
    oracle.insert(records.back());
  }
  // Delete a random half.
  for (std::uint64_t i = 0; i < 300; i += 2) {
    index.erase(records[i].key, records[i].id);
    oracle.erase(records[i].key, records[i].id);
  }
  index.checkInvariants();
  const auto queries = mlight::workload::uniformRangeQueries(20, 2, 0.2, 43);
  for (const Rect& q : queries) {
    auto got = index.rangeQuery(q).records;
    Oracle::sortById(got);
    EXPECT_EQ(got, oracle.rangeQuery(q));
  }
}

TEST(MLightIndex, DataAwareStrategyMatchesOracleToo) {
  Network net(64);
  MLightConfig cfg = smallConfig();
  cfg.strategy = SplitStrategy::kDataAware;
  cfg.epsilon = 6.0;
  MLightIndex index(net, cfg);
  Oracle oracle;
  for (const Record& r :
       mlight::workload::clusteredDataset(400, 2, 2, 0.04, 47)) {
    index.insert(r);
    oracle.insert(r);
  }
  index.checkInvariants();
  EXPECT_GT(index.bucketCount(), 1u);
  const auto queries = mlight::workload::uniformRangeQueries(20, 2, 0.1, 53);
  for (const Rect& q : queries) {
    auto got = index.rangeQuery(q).records;
    Oracle::sortById(got);
    EXPECT_EQ(got, oracle.rangeQuery(q));
  }
}

TEST(MLightIndex, DataAwareProducesFewerEmptyBuckets) {
  // Theorem 6's practical effect (Fig 6b): on skewed data the data-aware
  // strategy leaves fewer empty buckets than threshold splitting of
  // comparable tree size.
  Network netA(64);
  Network netB(64);
  MLightConfig threshold = smallConfig();
  threshold.thetaSplit = 10;
  threshold.thetaMerge = 5;
  MLightConfig aware = smallConfig();
  aware.strategy = SplitStrategy::kDataAware;
  aware.epsilon = 7.0;
  MLightIndex a(netA, threshold);
  MLightIndex b(netB, aware);
  // Tight clusters force threshold splitting through many levels that
  // each strand an empty sibling; the data-aware planner pays ε² for
  // every empty cell and so avoids the avoidable ones.
  for (const Record& r :
       mlight::workload::clusteredDataset(4000, 2, 3, 0.004, 59)) {
    a.insert(r);
    b.insert(r);
  }
  a.checkInvariants();
  b.checkInvariants();
  const double emptyA = static_cast<double>(a.emptyBucketCount()) /
                        static_cast<double>(a.bucketCount());
  const double emptyB = static_cast<double>(b.emptyBucketCount()) /
                        static_cast<double>(b.bucketCount());
  EXPECT_LT(emptyB, emptyA);
}

TEST(MLightIndex, ParallelLookaheadReturnsSameResults) {
  Network net(64);
  MLightConfig basic = smallConfig();
  MLightIndex index(net, basic);
  Oracle oracle;
  Rng rng(61);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const Record r = rec(rng.uniform(), rng.uniform(), i);
    index.insert(r);
    oracle.insert(r);
  }
  for (std::size_t h : {2u, 4u, 8u}) {
    MLightConfig cfg = basic;
    cfg.lookahead = h;
    cfg.dhtNamespace = "mlight-h" + std::to_string(h) + "/";
    MLightIndex parallel(net, cfg);
    for (const Record& r : oracle.rangeQuery(Rect::unit(2))) {
      parallel.insert(r);
    }
    const auto queries =
        mlight::workload::uniformRangeQueries(15, 2, 0.15, 67);
    for (const Rect& q : queries) {
      auto got = parallel.rangeQuery(q).records;
      Oracle::sortById(got);
      EXPECT_EQ(got, oracle.rangeQuery(q)) << "h=" << h;
    }
  }
}

TEST(MLightIndex, ParallelLookaheadTradesBandwidthForLatency) {
  Network net(64);
  MLightConfig basic = smallConfig();
  basic.thetaSplit = 6;
  basic.thetaMerge = 3;
  MLightIndex a(net, basic);
  MLightConfig par = basic;
  par.lookahead = 4;
  par.dhtNamespace = "mlight-p4/";
  MLightIndex b(net, par);
  Rng rng(71);
  for (std::uint64_t i = 0; i < 800; ++i) {
    const Record r = rec(rng.uniform(), rng.uniform(), i);
    a.insert(r);
    b.insert(r);
  }
  const auto queries = mlight::workload::uniformRangeQueries(25, 2, 0.2, 73);
  std::uint64_t lookupsBasic = 0;
  std::uint64_t lookupsPar = 0;
  std::uint64_t roundsBasic = 0;
  std::uint64_t roundsPar = 0;
  for (const Rect& q : queries) {
    const auto ra = a.rangeQuery(q);
    const auto rb = b.rangeQuery(q);
    EXPECT_EQ(ra.records.size(), rb.records.size());
    lookupsBasic += ra.stats.cost.lookups;
    lookupsPar += rb.stats.cost.lookups;
    roundsBasic += ra.stats.rounds;
    roundsPar += rb.stats.rounds;
  }
  EXPECT_GE(lookupsPar, lookupsBasic);  // more bandwidth...
  EXPECT_LT(roundsPar, roundsBasic);    // ...less latency
}

TEST(MLightIndex, HigherDimensionalIndexWorks) {
  for (std::size_t dims : {1u, 3u}) {
    Network net(32);
    MLightConfig cfg = smallConfig();
    cfg.dims = dims;
    cfg.maxEdgeDepth = 18;
    MLightIndex index(net, cfg);
    Oracle oracle;
    Rng rng(79 + dims);
    for (std::uint64_t i = 0; i < 250; ++i) {
      Record r;
      r.key = Point(dims);
      for (std::size_t d = 0; d < dims; ++d) r.key[d] = rng.uniform();
      r.id = i;
      index.insert(r);
      oracle.insert(r);
    }
    index.checkInvariants();
    const auto queries =
        mlight::workload::uniformRangeQueries(15, dims, 0.1, 83);
    for (const Rect& q : queries) {
      auto got = index.rangeQuery(q).records;
      Oracle::sortById(got);
      EXPECT_EQ(got, oracle.rangeQuery(q)) << "dims=" << dims;
    }
  }
}

TEST(MLightIndex, RejectsBadConfigAndInputs) {
  Network net(8);
  MLightConfig cfg;
  cfg.dims = 0;
  EXPECT_THROW(MLightIndex(net, cfg), std::invalid_argument);
  cfg = MLightConfig{};
  cfg.thetaMerge = cfg.thetaSplit;
  EXPECT_THROW(MLightIndex(net, cfg), std::invalid_argument);
  MLightIndex ok(net, MLightConfig{});
  Record threeD;
  threeD.key = Point{0.1, 0.2, 0.3};
  EXPECT_THROW(ok.insert(threeD), std::invalid_argument);
  EXPECT_THROW(ok.rangeQuery(Rect::unit(3)), std::invalid_argument);
}

TEST(MLightIndex, DegenerateAllSamePointRespectsDepthCap) {
  Network net(16);
  MLightConfig cfg = smallConfig();
  cfg.maxEdgeDepth = 10;
  MLightIndex index(net, cfg);
  // 50 identical keys can never be separated: the depth cap must stop
  // splitting and the bucket simply overflows.
  for (std::uint64_t i = 0; i < 50; ++i) index.insert(rec(0.3, 0.3, i));
  index.checkInvariants();
  EXPECT_EQ(index.pointQuery(Point{0.3, 0.3}).records.size(), 50u);
  EXPECT_LE(index.treeDepth(), 10u);
}

TEST(MLightIndex, SurvivesChurn) {
  Network net(48);
  MLightIndex index(net, smallConfig());
  Oracle oracle;
  Rng rng(89);
  for (std::uint64_t i = 0; i < 300; ++i) {
    const Record r = rec(rng.uniform(), rng.uniform(), i);
    index.insert(r);
    oracle.insert(r);
  }
  // Churn: a quarter of the peers leave, some new ones join.
  for (int i = 0; i < 12; ++i) {
    net.removePeer(net.peers()[rng.below(net.peerCount())]);
  }
  for (int i = 0; i < 6; ++i) net.addPeer("late-joiner:" + std::to_string(i));
  index.checkInvariants();
  const auto queries = mlight::workload::uniformRangeQueries(15, 2, 0.2, 97);
  for (const Rect& q : queries) {
    auto got = index.rangeQuery(q).records;
    Oracle::sortById(got);
    EXPECT_EQ(got, oracle.rangeQuery(q));
  }
  // And the index still accepts writes.
  index.insert(rec(0.5, 0.5, 100000));
  EXPECT_EQ(index.pointQuery(Point{0.5, 0.5}).records.size(), 1u);
}

TEST(MLightIndex, RangeWhoseLcaNamesToVirtualRoot) {
  // Regression: an LCA of the form #0101... (bit-aligned zig-zag) is
  // named to the *virtual root*; branch enumeration from the found leaf
  // must not try to take the sibling of the root #.
  Network net(48);
  MLightIndex index(net, smallConfig());
  Oracle oracle;
  Rng rng(113);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const Record r = rec(rng.uniform(), rng.uniform(), i);
    index.insert(r);
    oracle.insert(r);
  }
  // LCA of this rectangle is #0101 (x in [0.75,1), y in [0,0.25)),
  // whose name is the virtual root.
  const Rect q(Point{0.766, 0.067}, Point{0.866, 0.167});
  EXPECT_EQ(lowestCommonAncestor(q, 2, 28).toString().substr(0, 7),
            "0010101");
  auto got = index.rangeQuery(q).records;
  Oracle::sortById(got);
  EXPECT_EQ(got, oracle.rangeQuery(q));
}

TEST(MLightIndex, DepthEstimationByProbing) {
  // §5: D can be estimated by probing values before query processing.
  Network net(64);
  MLightIndex index(net, smallConfig());
  Rng rng(211);
  for (std::uint64_t i = 0; i < 800; ++i) {
    index.insert(rec(rng.uniform(), rng.uniform(), i));
  }
  CostMeter meter;
  std::size_t estimate = 0;
  {
    MeterScope scope(net, meter);
    estimate = index.estimateDepthByProbing(30, 2);
  }
  // The estimate brackets the real depth: at least as deep as the
  // deepest probed leaf, never beyond the configured cap, and for a
  // roughly uniform tree within headroom+2 of the true depth.
  EXPECT_GE(estimate + 2, index.treeDepth());
  EXPECT_LE(estimate, index.config().maxEdgeDepth);
  // Probing is real DHT traffic: ~log2(D) lookups per sample.
  EXPECT_GE(meter.lookups, 30u);
  EXPECT_LE(meter.lookups, 30u * 7u);
}

TEST(MLightIndex, QueryStatsAreMeaningful) {
  Network net(64);
  MLightIndex index(net, smallConfig());
  Rng rng(101);
  for (std::uint64_t i = 0; i < 600; ++i) {
    index.insert(rec(rng.uniform(), rng.uniform(), i));
  }
  const auto small = index.rangeQuery(
      Rect(Point{0.40, 0.40}, Point{0.45, 0.45}));
  const auto large = index.rangeQuery(
      Rect(Point{0.05, 0.05}, Point{0.95, 0.95}));
  EXPECT_GE(small.stats.cost.lookups, 1u);
  EXPECT_GT(large.stats.cost.lookups, small.stats.cost.lookups);
  EXPECT_GE(large.stats.rounds, 1u);
  // Rounds never exceed lookups.
  EXPECT_LE(large.stats.rounds, large.stats.cost.lookups);
}

}  // namespace
}  // namespace mlight::core
