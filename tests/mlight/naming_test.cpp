#include "mlight/naming.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/geometry.h"
#include "mlight/kdspace.h"
#include "testutil/tree_util.h"

namespace mlight::core {
namespace {

using mlight::common::BitString;
using mlight::common::Rect;
using mlight::testutil::internalNodes;
using mlight::testutil::randomTreeLeaves;

BitString bits(const char* text) { return BitString::fromString(text); }

/// Builds a 2-D label from the paper's "#..." shorthand (# = 001).
BitString tag2d(const char* suffix) {
  BitString label = rootLabel(2);
  label.append(BitString::fromString(suffix));
  return label;
}

TEST(Naming, RootAndVirtualRootLabels) {
  EXPECT_EQ(virtualRootLabel(2).toString(), "00");
  EXPECT_EQ(rootLabel(2).toString(), "001");
  EXPECT_EQ(virtualRootLabel(3).toString(), "000");
  EXPECT_EQ(rootLabel(3).toString(), "0001");
  EXPECT_EQ(rootLabel(1).toString(), "01");
}

TEST(Naming, IsTreeNodeLabel) {
  EXPECT_TRUE(isTreeNodeLabel(bits("001"), 2));
  EXPECT_TRUE(isTreeNodeLabel(bits("001101"), 2));
  EXPECT_FALSE(isTreeNodeLabel(bits("00"), 2));   // virtual root itself
  EXPECT_FALSE(isTreeNodeLabel(bits("011"), 2));  // wrong root prefix
  EXPECT_FALSE(isTreeNodeLabel(bits("1"), 2));
}

TEST(Naming, EdgeDepth) {
  EXPECT_EQ(edgeDepth(rootLabel(2), 2), 0u);
  EXPECT_EQ(edgeDepth(tag2d("101111"), 2), 6u);
  EXPECT_EQ(edgeDepth(rootLabel(3).withBack(true), 3), 1u);
}

// --- The paper's §3.4.1 worked examples, verbatim ---

TEST(Naming, PaperExampleRootNamesToVirtualRoot) {
  // f2d(#) = f2d(001) = 00
  EXPECT_EQ(naming(bits("001"), 2), bits("00"));
}

TEST(Naming, PaperExampleChain1) {
  // f2d(#0101111) = #0101
  EXPECT_EQ(naming(tag2d("0101111"), 2), tag2d("0101"));
}

TEST(Naming, PaperExampleChain2) {
  // f2d(#0011111) = #001
  EXPECT_EQ(naming(tag2d("0011111"), 2), tag2d("001"));
}

TEST(Naming, PaperExampleChain3) {
  // f2d(#101111) = #101
  EXPECT_EQ(naming(tag2d("101111"), 2), tag2d("101"));
}

TEST(Naming, PaperSection5LookupExampleNames) {
  // From the §5 lookup trace with D = 20.
  EXPECT_EQ(naming(tag2d("1011100001"), 2), tag2d("101110000"));
  EXPECT_EQ(naming(tag2d("10111"), 2), tag2d("101"));
  // Candidate #1011 shares the name #101 ("this probe has also examined
  // candidate label #1011, since it is also named to #101").
  EXPECT_EQ(naming(tag2d("1011"), 2), tag2d("101"));
}

TEST(Naming, PaperSection6RangeExampleNames) {
  // f2d(#10) = #1, and the cell named to #1 is #10101.
  EXPECT_EQ(naming(tag2d("10"), 2), tag2d("1"));
  EXPECT_EQ(naming(tag2d("10101"), 2), tag2d("1"));
  // f2d(#101111) = f2d(#1011).
  EXPECT_EQ(naming(tag2d("101111"), 2), naming(tag2d("1011"), 2));
}

// --- Structural properties ---

TEST(Naming, ResultIsAlwaysAProperPrefix) {
  for (const char* suffix :
       {"", "0", "1", "01", "10", "0101111", "1111111", "0000000"}) {
    const BitString label = tag2d(suffix);
    const BitString name = naming(label, 2);
    EXPECT_LT(name.size(), label.size());
    EXPECT_TRUE(name.isPrefixOf(label));
    EXPECT_GE(name.size(), 2u);  // never shorter than the virtual root
  }
}

TEST(Naming, CandidateChainSharesOneName) {
  // Key lookup property: if naming(λ) = k, every prefix of λ longer than
  // k has the same name — one probe rules out the whole chain.
  const BitString label = tag2d("1011100001");
  const BitString name = naming(label, 2);
  for (std::size_t len = name.size() + 1; len <= label.size(); ++len) {
    EXPECT_EQ(naming(label.prefix(len), 2), name);
  }
}

// Theorem 2/4 (bijection) on randomly grown trees, across dims.
class NamingTreeTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(NamingTreeTest, BijectionBetweenLeavesAndInternals) {
  const auto [dims, seed] = GetParam();
  const auto leaves = randomTreeLeaves(dims, 60, seed);
  const auto internals = internalNodes(leaves, dims);
  // A space kd-tree with the virtual root has #leaves == #internals.
  ASSERT_EQ(leaves.size(), internals.size());
  std::set<BitString> names;
  for (const BitString& leaf : leaves) {
    const BitString name = naming(leaf, dims);
    EXPECT_TRUE(internals.contains(name))
        << "leaf " << leaf.toString() << " named to non-internal "
        << name.toString();
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate name " << name.toString();
  }
  EXPECT_EQ(names.size(), internals.size());  // onto
}

TEST_P(NamingTreeTest, Theorem5IncrementalSplit) {
  const auto [dims, seed] = GetParam();
  const auto leaves = randomTreeLeaves(dims, 40, seed * 7 + 1);
  for (const BitString& leaf : leaves) {
    const BitString k = naming(leaf, dims);
    const BitString k0 = naming(leaf.withBack(false), dims);
    const BitString k1 = naming(leaf.withBack(true), dims);
    // One child inherits the parent's name, the other is named λ itself.
    EXPECT_TRUE((k0 == k && k1 == leaf) || (k1 == k && k0 == leaf))
        << leaf.toString();
  }
}

TEST_P(NamingTreeTest, Theorem1NamedLeafIsCornerDescendant) {
  const auto [dims, seed] = GetParam();
  const auto leaves = randomTreeLeaves(dims, 60, seed * 13 + 5);
  const auto internals = internalNodes(leaves, dims);
  std::map<BitString, BitString> leafOfName;
  for (const BitString& leaf : leaves) leafOfName[naming(leaf, dims)] = leaf;

  for (const BitString& omega : internals) {
    if (omega.size() < dims + 1) continue;  // skip virtual root
    // The leaf named to f_md(ω) lies inside ω's region (this is what lets
    // range queries reach a corner cell of the LCA with one DHT-lookup).
    const BitString corner = leafOfName.at(naming(omega, dims));
    ASSERT_TRUE(omega.isPrefixOf(corner))
        << "omega=" << omega.toString() << " leaf=" << corner.toString();
    // And it touches a corner of ω's region: in every dimension it is
    // flush against one of ω's faces.
    const Rect outer = labelRegion(omega, dims);
    const Rect cell = labelRegion(corner, dims);
    for (std::size_t d = 0; d < dims; ++d) {
      EXPECT_TRUE(cell.lo()[d] == outer.lo()[d] ||
                  cell.hi()[d] == outer.hi()[d])
          << "omega=" << omega.toString() << " dim=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSeeds, NamingTreeTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{3}, std::size_t{4}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})));

}  // namespace
}  // namespace mlight::core
