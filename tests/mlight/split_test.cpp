#include "mlight/split.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "mlight/kdspace.h"
#include "mlight/naming.h"

namespace mlight::core {
namespace {

using mlight::common::Point;
using mlight::common::Rng;

Record rec(double x, double y, std::uint64_t id = 0) {
  Record r;
  r.key = Point{x, y};
  r.id = id;
  return r;
}

// The worked example of Fig. 3 (ε = 2).  Four points placed so that the
// optimal split subtree has 3 cells with loads {2, 2, 0}; the minimized
// difference 4 equals the unsplit difference 4, so no split triggers.
// After inserting (0.2, 0.2) the minimized difference drops to 1 < 9 and
// the bucket splits into 3 cells with loads {2, 2, 1}.
//
// Note the paper's figure halves x first; our label convention halves the
// last dimension first (per the paper's own interleaving examples), so we
// place the points transposed — the arithmetic is identical.
class Fig3Example : public ::testing::Test {
 protected:
  // All four points in the upper half; the first (y) cut yields {0, 4}
  // and the second (x) cut splits the four 2/2, so the optimal split
  // subtree has 3 cells with loads {2, 2, 0} and total difference
  // (2-ε)² + (2-ε)² + (0-ε)² = 4 — exactly Fig 3a.
  std::vector<Record> initial_{
      rec(0.20, 0.60, 1),  // cluster A (x < 0.5, y >= 0.5)
      rec(0.40, 0.70, 2),  // cluster A
      rec(0.60, 0.80, 3),  // cluster B (x >= 0.5, y >= 0.5)
      rec(0.80, 0.90, 4),  // cluster B
  };
  double epsilon_ = 2.0;
};

TEST_F(Fig3Example, BeforeInsertionNoSplit) {
  const auto plan = planDataAwareSplit(rootLabel(2), Rect::unit(2),
                                       initial_, epsilon_, 2, 28);
  // Unsplit difference: (4-2)^2 = 4.  Best split: (2-2)^2+(2-2)^2+(0-2)^2
  // = 4.  Not strictly better, so the bucket stays whole.
  EXPECT_FALSE(plan.splits());
  EXPECT_DOUBLE_EQ(plan.cost, 4.0);
}

TEST_F(Fig3Example, AfterInsertionSplitsIntoThreeCells) {
  auto records = initial_;
  records.push_back(rec(0.2, 0.2, 5));  // the paper's new point
  const auto plan = planDataAwareSplit(rootLabel(2), Rect::unit(2),
                                       records, epsilon_, 2, 28);
  ASSERT_TRUE(plan.splits());
  EXPECT_DOUBLE_EQ(plan.cost, 1.0);  // (2-2)^2+(2-2)^2+(1-2)^2
  ASSERT_EQ(plan.leaves.size(), 3u);
  std::multiset<std::size_t> loads;
  std::size_t total = 0;
  for (const auto& leaf : plan.leaves) {
    loads.insert(leaf.records.size());
    total += leaf.records.size();
  }
  EXPECT_EQ(total, 5u);
  EXPECT_EQ(loads, (std::multiset<std::size_t>{1, 2, 2}));
}

TEST(DataAwareSplit, EmptyBucketStaysWhole) {
  const auto plan = planDataAwareSplit(rootLabel(2), Rect::unit(2), {},
                                       2.0, 2, 28);
  EXPECT_FALSE(plan.splits());
  EXPECT_DOUBLE_EQ(plan.cost, 4.0);  // (0-2)^2
}

TEST(DataAwareSplit, LoadAtMostEpsilonStaysWhole) {
  std::vector<Record> records{rec(0.1, 0.1), rec(0.9, 0.9)};
  const auto plan = planDataAwareSplit(rootLabel(2), Rect::unit(2),
                                       records, 2.0, 2, 28);
  EXPECT_FALSE(plan.splits());
  EXPECT_DOUBLE_EQ(plan.cost, 0.0);
}

TEST(DataAwareSplit, PlanLeavesFormAValidSubtree) {
  Rng rng(11);
  std::vector<Record> records;
  for (int i = 0; i < 60; ++i) {
    records.push_back(
        rec(rng.uniform() * 0.4, rng.uniform() * 0.4,
            static_cast<std::uint64_t>(i)));
  }
  const auto plan = planDataAwareSplit(rootLabel(2), Rect::unit(2),
                                       records, 8.0, 2, 28);
  ASSERT_TRUE(plan.splits());
  double volume = 0.0;
  std::size_t total = 0;
  for (const auto& leaf : plan.leaves) {
    EXPECT_TRUE(rootLabel(2).isPrefixOf(leaf.label));
    const Rect region = labelRegion(leaf.label, 2);
    for (const auto& r : leaf.records) {
      EXPECT_TRUE(region.contains(r.key));
    }
    volume += region.volume();
    total += leaf.records.size();
  }
  EXPECT_NEAR(volume, 1.0, 1e-9);  // leaves tile the bucket's region
  EXPECT_EQ(total, records.size());
}

TEST(DataAwareSplit, CostNeverAboveStayingWhole) {
  Rng rng(13);
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<Record> records;
    const std::size_t n = rng.below(30);
    for (std::size_t i = 0; i < n; ++i) {
      records.push_back(rec(rng.uniform(), rng.uniform(), i));
    }
    const double eps = 1.0 + static_cast<double>(rng.below(6));
    const auto plan = planDataAwareSplit(rootLabel(2), Rect::unit(2),
                                         records, eps, 2, 12);
    const double whole =
        std::pow(static_cast<double>(n) - eps, 2.0);
    EXPECT_LE(plan.cost, whole + 1e-12);
    if (plan.splits()) {
      EXPECT_LT(plan.cost, whole);
    }
  }
}

// Property: the DP of Algorithm 1 matches exhaustive enumeration over all
// split subtrees on small instances, across dimensionalities and ε.
class SplitOptimalityTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double,
                                                 std::uint64_t>> {};

TEST_P(SplitOptimalityTest, MatchesBruteForce) {
  const auto [dims, epsilon, seed] = GetParam();
  Rng rng(seed);
  for (int iter = 0; iter < 15; ++iter) {
    std::vector<Record> records;
    const std::size_t n = rng.below(14);
    for (std::size_t i = 0; i < n; ++i) {
      Record r;
      r.key = Point(dims);
      for (std::size_t d = 0; d < dims; ++d) r.key[d] = rng.uniform();
      r.id = i;
      records.push_back(r);
    }
    constexpr std::size_t kDepthCap = 6;
    const auto plan =
        planDataAwareSplit(rootLabel(dims), Rect::unit(dims), records,
                           epsilon, dims, kDepthCap);
    const double brute = bruteForceSplitCost(
        rootLabel(dims), Rect::unit(dims), records, epsilon, dims,
        kDepthCap);
    EXPECT_DOUBLE_EQ(plan.cost, brute);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitOptimalityTest,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{3}),
                       ::testing::Values(1.0, 2.0, 4.0),
                       ::testing::Values(std::uint64_t{3},
                                         std::uint64_t{17})));

TEST(PartitionOnce, SplitsByMidOfCyclingDimension) {
  std::vector<Record> records{rec(0.1, 0.2, 1), rec(0.9, 0.8, 2),
                              rec(0.4, 0.6, 3)};
  // Root splits y (last dimension first).
  const auto [lo, hi] =
      partitionOnce(rootLabel(2), Rect::unit(2), records, 2);
  ASSERT_EQ(lo.size(), 1u);
  ASSERT_EQ(hi.size(), 2u);
  EXPECT_EQ(lo[0].id, 1u);
}

TEST(PartitionOnce, BoundaryPointGoesToUpperHalf) {
  std::vector<Record> records{rec(0.3, 0.5, 1)};
  const auto [lo, hi] =
      partitionOnce(rootLabel(2), Rect::unit(2), records, 2);
  EXPECT_TRUE(lo.empty());
  ASSERT_EQ(hi.size(), 1u);
}

}  // namespace
}  // namespace mlight::core
