#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "dht/network.h"
#include "mlight/index.h"
#include "workload/datasets.h"

namespace mlight::core {
namespace {

using mlight::common::Point;
using mlight::common::Rng;
using mlight::dht::Network;
using mlight::index::Record;

double dist(const Point& a, const Point& b) {
  double d2 = 0.0;
  for (std::size_t d = 0; d < a.dims(); ++d) {
    const double delta = a[d] - b[d];
    d2 += delta * delta;
  }
  return std::sqrt(d2);
}

/// Ground truth: sort all records by (distance, id), take k.
std::vector<Record> bruteKnn(const std::vector<Record>& data, const Point& q,
                             std::size_t k) {
  std::vector<Record> sorted = data;
  std::sort(sorted.begin(), sorted.end(),
            [&](const Record& a, const Record& b) {
              const double da = dist(a.key, q);
              const double db = dist(b.key, q);
              return da != db ? da < db : a.id < b.id;
            });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

MLightConfig smallConfig() {
  MLightConfig cfg;
  cfg.thetaSplit = 10;
  cfg.thetaMerge = 5;
  cfg.maxEdgeDepth = 20;
  return cfg;
}

TEST(Knn, EmptyIndexAndZeroK) {
  Network net(32);
  MLightIndex index(net, smallConfig());
  EXPECT_TRUE(index.knnQuery(Point{0.5, 0.5}, 5).records.empty());
  Record r;
  r.key = Point{0.1, 0.1};
  index.insert(r);
  EXPECT_TRUE(index.knnQuery(Point{0.5, 0.5}, 0).records.empty());
}

TEST(Knn, KLargerThanSizeReturnsEverything) {
  Network net(32);
  MLightIndex index(net, smallConfig());
  std::vector<Record> data;
  Rng rng(3);
  for (std::uint64_t i = 0; i < 7; ++i) {
    Record r;
    r.key = Point{rng.uniform(), rng.uniform()};
    r.id = i;
    data.push_back(r);
    index.insert(r);
  }
  const auto res = index.knnQuery(Point{0.5, 0.5}, 50);
  EXPECT_EQ(res.records.size(), 7u);
  // Nearest-first ordering.
  for (std::size_t i = 1; i < res.records.size(); ++i) {
    EXPECT_LE(dist(res.records[i - 1].key, Point{0.5, 0.5}),
              dist(res.records[i].key, Point{0.5, 0.5}) + 1e-12);
  }
}

TEST(Knn, MatchesBruteForceUniform) {
  Network net(64);
  MLightIndex index(net, smallConfig());
  std::vector<Record> data;
  Rng rng(7);
  for (std::uint64_t i = 0; i < 500; ++i) {
    Record r;
    r.key = Point{rng.uniform(), rng.uniform()};
    r.id = i;
    data.push_back(r);
    index.insert(r);
  }
  for (int trial = 0; trial < 30; ++trial) {
    const Point q{rng.uniform(), rng.uniform()};
    for (std::size_t k : {1u, 3u, 10u}) {
      const auto got = index.knnQuery(q, k).records;
      const auto want = bruteKnn(data, q, k);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id) << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST(Knn, MatchesBruteForceClustered) {
  Network net(64);
  MLightIndex index(net, smallConfig());
  const auto data = mlight::workload::clusteredDataset(600, 2, 3, 0.03, 11);
  for (const auto& r : data) index.insert(r);
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    // Mix of in-cluster and empty-area probes.
    const Point q{rng.uniform(), rng.uniform()};
    const auto got = index.knnQuery(q, 5).records;
    const auto want = bruteKnn(data, q, 5);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
    }
  }
}

TEST(Knn, QueryOutsideUnitCube) {
  Network net(32);
  MLightIndex index(net, smallConfig());
  std::vector<Record> data;
  Rng rng(17);
  for (std::uint64_t i = 0; i < 100; ++i) {
    Record r;
    r.key = Point{rng.uniform(), rng.uniform()};
    r.id = i;
    data.push_back(r);
    index.insert(r);
  }
  const Point q{1.7, -0.3};
  const auto got = index.knnQuery(q, 3).records;
  const auto want = bruteKnn(data, q, 3);
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id);
  }
}

TEST(Knn, HigherDimensions) {
  Network net(32);
  MLightConfig cfg = smallConfig();
  cfg.dims = 3;
  MLightIndex index(net, cfg);
  std::vector<Record> data;
  Rng rng(19);
  for (std::uint64_t i = 0; i < 300; ++i) {
    Record r;
    r.key = Point{rng.uniform(), rng.uniform(), rng.uniform()};
    r.id = i;
    data.push_back(r);
    index.insert(r);
  }
  for (int trial = 0; trial < 10; ++trial) {
    const Point q{rng.uniform(), rng.uniform(), rng.uniform()};
    const auto got = index.knnQuery(q, 4).records;
    const auto want = bruteKnn(data, q, 4);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
    }
  }
}

TEST(Knn, CostIsBoundedAndReported) {
  Network net(64);
  MLightIndex index(net, smallConfig());
  Rng rng(23);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    Record r;
    r.key = Point{rng.uniform(), rng.uniform()};
    r.id = i;
    index.insert(r);
  }
  const auto res = index.knnQuery(Point{0.4, 0.6}, 10);
  EXPECT_EQ(res.records.size(), 10u);
  EXPECT_GE(res.stats.cost.lookups, 2u);
  // An expanding search over a 1000-record index should touch a small
  // fraction of the buckets, not the whole tree.
  EXPECT_LT(res.stats.cost.lookups, 100u);
  EXPECT_GT(res.stats.latencyMs, 0.0);
}

TEST(Knn, DuplicatePointsTieBrokenById) {
  Network net(32);
  MLightIndex index(net, smallConfig());
  for (std::uint64_t i = 0; i < 6; ++i) {
    Record r;
    r.key = Point{0.5, 0.5};
    r.id = 5 - i;  // insert in reverse id order
    index.insert(r);
  }
  const auto res = index.knnQuery(Point{0.5, 0.5}, 3);
  ASSERT_EQ(res.records.size(), 3u);
  EXPECT_EQ(res.records[0].id, 0u);
  EXPECT_EQ(res.records[1].id, 1u);
  EXPECT_EQ(res.records[2].id, 2u);
}

}  // namespace
}  // namespace mlight::core
