// High-fidelity reproductions of the paper's worked examples: the exact
// index trees of Figs 1/2/4 are installed, and the §5 lookup trace and
// §6 range-query trace are verified probe by probe.
#include <gtest/gtest.h>

#include <set>

#include "dht/network.h"
#include "mlight/index.h"
#include "common/check.h"
#include "mlight/kdspace.h"
#include "mlight/naming.h"

namespace mlight::core {
namespace {

using mlight::common::BitString;
using mlight::common::Point;
using mlight::common::Rect;
using mlight::dht::Network;

BitString tag2d(const char* suffix) {
  BitString label = rootLabel(2);
  label.append(BitString::fromString(suffix));
  return label;
}

/// Leaf set of the tree in Fig 1b / Fig 2b (also used for Fig 4): twelve
/// leaves, twelve internal nodes (virtual root included).
std::vector<BitString> fig1Leaves() {
  std::vector<BitString> leaves;
  for (const char* suffix : {"000", "001", "01", "100", "10100", "10101",
                             "10110", "101110", "101111", "110", "1110",
                             "1111"}) {
    leaves.push_back(tag2d(suffix));
  }
  return leaves;
}

class PaperTraceTest : public ::testing::Test {
 protected:
  PaperTraceTest() : net_(128) {
    MLightConfig cfg;
    cfg.dims = 2;
    cfg.maxEdgeDepth = 20;  // §5 example uses D = 20
    cfg.thetaSplit = 1000;  // no splits: the example tree is fixed
    cfg.thetaMerge = 1;
    index_ = std::make_unique<MLightIndex>(net_, cfg);
    index_->installTreeForTesting(fig1Leaves());
  }

  Network net_;
  std::unique_ptr<MLightIndex> index_;
};

TEST_F(PaperTraceTest, TreeShapeMatchesFig1) {
  EXPECT_EQ(index_->bucketCount(), 12u);
  // The bijection of Fig 2b on this tree: every internal node (plus the
  // virtual root) holds exactly one leaf bucket.
  ASSERT_NE(index_->store().peek(virtualRootLabel(2)), nullptr);
  EXPECT_EQ(index_->store().peek(virtualRootLabel(2))->label, tag2d("01"));
  ASSERT_NE(index_->store().peek(tag2d("0")), nullptr);
  EXPECT_EQ(index_->store().peek(tag2d("0"))->label, tag2d("000"));
  ASSERT_NE(index_->store().peek(tag2d("00")), nullptr);
  EXPECT_EQ(index_->store().peek(tag2d("00"))->label, tag2d("001"));
  ASSERT_NE(index_->store().peek(tag2d("11")), nullptr);
  EXPECT_EQ(index_->store().peek(tag2d("11"))->label, tag2d("110"));
  // The leaf named to #1 is #10101 (used in the §6 example).
  ASSERT_NE(index_->store().peek(tag2d("1")), nullptr);
  EXPECT_EQ(index_->store().peek(tag2d("1"))->label, tag2d("10101"));
}

TEST_F(PaperTraceTest, Section5LookupTrace) {
  // §5: lookup of <0.3, 0.9> with D = 20; target bucket is cell #101110.
  // The paper's trace: probe f(#1011100001) = #101110000 -> NULL;
  // probe f(#10111) = #101 -> leaf #101111 (miss, and candidate #1011 is
  // ruled out too); probe f(#101110) = #10111 -> target.
  std::vector<MLightIndex::TraceEvent> trace;
  index_->setTracer(&trace);
  const auto res = index_->lookup(Point{0.3, 0.9});
  index_->setTracer(nullptr);
  EXPECT_EQ(res.leaf, tag2d("101110"));

  // Probe-by-probe: our midpoint starts at t=10 exactly like the paper.
  ASSERT_GE(trace.size(), 3u);
  EXPECT_EQ(trace[0].key, tag2d("101110000"));  // f(#1011100001)
  EXPECT_FALSE(trace[0].hit);                   // NULL -> bound drops to 9
  // Every subsequent probe is one of the paper's traced keys, and the
  // last one lands on the target leaf via key #10111.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_TRUE(trace[i].key == tag2d("101") ||
                trace[i].key == tag2d("10111") ||
                trace[i].key == tag2d("101110"))
        << trace[i].key.toString();
  }
  EXPECT_EQ(trace.back().key, tag2d("10111"));
  EXPECT_TRUE(trace.back().hit);
  EXPECT_EQ(trace.back().foundLeaf, tag2d("101110"));
  // Binary search converges within 4 probes on this tree (the paper's
  // midpoint rounding finds it in 3; either way each probe eliminates
  // whole candidate chains, not single lengths).
  EXPECT_LE(res.stats.cost.lookups, 4u);
  // The traced keys behave exactly as the paper says:
  //  - #101110000 is not a DHT key in use (not an internal node);
  //  - #101 holds leaf #101111;
  //  - #10111 holds the target #101110.
  EXPECT_EQ(index_->store().peek(tag2d("101110000")), nullptr);
  ASSERT_NE(index_->store().peek(tag2d("101")), nullptr);
  EXPECT_EQ(index_->store().peek(tag2d("101"))->label, tag2d("101111"));
  ASSERT_NE(index_->store().peek(tag2d("10111")), nullptr);
  EXPECT_EQ(index_->store().peek(tag2d("10111"))->label, tag2d("101110"));
}

TEST_F(PaperTraceTest, Section6RangeTrace) {
  // §6: R = [0.1,0.3] x [0.6,0.8] over the Fig 4 tree.
  //  - LCA(R) = #10, f(#10) = #1, reached at corner cell #10101;
  //  - subranges forwarded to branch nodes #10100, #1011 and #100;
  //  - #1011's probe lands on #101111 (f(#101111) = f(#1011) = #101),
  //    which does not cover the subrange; one more forward to
  //    f(#10110) = #1011 reaches leaf #10110 and terminates.
  // Paper counts four DHT-lookups / three rounds; we additionally count
  // the initiator's own LCA lookup, so: 5 lookups, 3 rounds.
  const Rect r(Point{0.1, 0.6}, Point{0.3, 0.8});
  EXPECT_EQ(lowestCommonAncestor(r, 2, 20), tag2d("10"));

  // Place one record in each leaf that intersects R so the result set
  // proves all three forwarding paths were taken.
  struct Placement {
    const char* leaf;
    double x, y;
    bool inR;
  };
  const Placement placements[] = {
      {"100", 0.2, 0.7, true},      // via branch #100
      {"10100", 0.2, 0.78, true},   // via branch #10100
      {"10110", 0.28, 0.79, true},  // via branch #1011 -> #10110
      {"10101", 0.1, 0.9, false},   // corner cell, outside R
      {"01", 0.8, 0.2, false},      // far away
  };
  std::uint64_t id = 0;
  for (const auto& p : placements) {
    mlight::index::Record rec;
    rec.key = Point{p.x, p.y};
    rec.id = id++;
    index_->insert(rec);
    // The record must have landed in the intended leaf.
    EXPECT_EQ(index_->lookup(rec.key).leaf, tag2d(p.leaf));
  }

  std::vector<MLightIndex::TraceEvent> trace;
  index_->setTracer(&trace);
  const auto res = index_->rangeQuery(r);
  index_->setTracer(nullptr);
  EXPECT_EQ(res.records.size(), 3u);
  for (const auto& rec : res.records) {
    EXPECT_TRUE(r.contains(rec.key));
  }
  EXPECT_EQ(res.stats.cost.lookups, 5u);
  EXPECT_EQ(res.stats.rounds, 3u);

  // The exact forwarding pattern of the paper's Fig 4b walk-through.
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace[0].key, tag2d("1"));  // f(#10): LCA's name
  EXPECT_EQ(trace[0].foundLeaf, tag2d("10101"));  // corner cell
  // Round 2: the three branch forwards (wave order may vary).
  std::set<BitString> round2;
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(trace[i].round, 2u);
    round2.insert(trace[i].key);
  }
  EXPECT_EQ(round2, (std::set<BitString>{
                        naming(tag2d("10100"), 2),   // = #1010
                        naming(tag2d("1011"), 2),    // = #101
                        naming(tag2d("100"), 2)}));  // = #10
  // Round 3: the fix-up forward to f(#10110) = #1011 reaching #10110.
  EXPECT_EQ(trace[4].round, 3u);
  EXPECT_EQ(trace[4].key, tag2d("1011"));
  EXPECT_EQ(trace[4].foundLeaf, tag2d("10110"));
}

TEST_F(PaperTraceTest, CornerPreservationOnFig1Tree) {
  // Theorem 1 on the concrete tree: for internal ω = #10, each geometric
  // corner of region(ω) lies in a leaf named to one of
  // {f(#10) = #1, #10, #100, #101}.  (Corners coincide in a cell when the
  // corresponding child is still a leaf — here #100 holds two corners.)
  const Rect region = labelRegion(tag2d("10"), 2);
  const std::set<BitString> theoremKeys{tag2d("1"), tag2d("10"),
                                        tag2d("100"), tag2d("101")};
  const double eps = 1e-6;
  const double xs[] = {region.lo()[0] + eps, region.hi()[0] - eps};
  const double ys[] = {region.lo()[1] + eps, region.hi()[1] - eps};
  for (double x : xs) {
    for (double y : ys) {
      const auto leaf = index_->lookup(Point{x, y}).leaf;
      EXPECT_TRUE(theoremKeys.contains(naming(leaf, 2)))
          << "corner <" << x << "," << y << "> in leaf "
          << leaf.toString();
    }
  }
  // And the key probed by range queries, f(#10) = #1, really holds a
  // corner cell of region(#10): leaf #10101 at the top-left corner.
  const auto* bucket = index_->store().peek(tag2d("1"));
  ASSERT_NE(bucket, nullptr);
  EXPECT_TRUE(region.containsRect(labelRegion(bucket->label, 2)));
}

TEST_F(PaperTraceTest, IncrementalSplitOnFig1Tree) {
  // Theorem 5 on concrete splits.  Leaf #01 is named to the virtual root
  // (the 00...0-aligned chain); overflowing it splits twice for the
  // chosen points:
  //   #01  -> {#010 (keeps key 00), #011 (re-keyed to #01)}
  //   #010 -> {#0101 (keeps key 00), #0100 (re-keyed to #010)}
  MLightConfig cfg;
  cfg.dims = 2;
  cfg.thetaSplit = 2;
  cfg.thetaMerge = 1;
  cfg.dhtNamespace = "trace-split/";
  MLightIndex idx(net_, cfg);
  idx.installTreeForTesting(fig1Leaves());
  // Fill #01 (x in [0.5,1), y in [0,0.5)) past theta.
  std::uint64_t id = 0;
  for (double x : {0.6, 0.7, 0.9}) {
    mlight::index::Record rec;
    rec.key = Point{x, 0.2};
    rec.id = id++;
    idx.insert(rec);
  }
  ASSERT_NE(idx.store().peek(virtualRootLabel(2)), nullptr);
  EXPECT_EQ(idx.store().peek(virtualRootLabel(2))->label, tag2d("0101"));
  ASSERT_NE(idx.store().peek(tag2d("01")), nullptr);
  EXPECT_EQ(idx.store().peek(tag2d("01"))->label, tag2d("011"));
  ASSERT_NE(idx.store().peek(tag2d("010")), nullptr);
  EXPECT_EQ(idx.store().peek(tag2d("010"))->label, tag2d("0100"));
  EXPECT_EQ(idx.store().peek(tag2d("010"))->records.size(), 2u);
  idx.checkInvariants();
}

TEST(InstallTree, RejectsInvalidLeafSets) {
  Network net(16);
  MLightConfig cfg;
  MLightIndex index(net, cfg);
  // Not a tiling: missing #1 subtree.
  EXPECT_THROW(index.installTreeForTesting({tag2d("0")}),
               mlight::common::CheckFailure);
  // Not prefix-free.
  EXPECT_THROW(
      index.installTreeForTesting({tag2d("0"), tag2d("01"), tag2d("1")}),
      mlight::common::CheckFailure);
}

}  // namespace
}  // namespace mlight::core
