// Exhaustive verification of the naming-function theorems: every full
// binary space kd-tree with up to kMaxLeaves leaves is enumerated
// (Catalan-number many shapes), and Theorems 1/2/4/5 are checked on each
// — not a sample, the complete space.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/geometry.h"
#include "mlight/kdspace.h"
#include "mlight/naming.h"
#include "testutil/tree_util.h"

namespace mlight::core {
namespace {

using mlight::common::BitString;
using mlight::common::Rect;
using mlight::testutil::internalNodes;

/// Enumerates the leaf sets of all full binary trees rooted at `root`
/// with exactly `leaves` leaves (depth-capped to keep labels small).
std::vector<std::vector<BitString>> enumerateTrees(const BitString& root,
                                                   std::size_t leaves) {
  std::vector<std::vector<BitString>> shapes;
  if (leaves == 1) {
    shapes.push_back({root});
    return shapes;
  }
  // Split `leaves` between the two children in every way.
  for (std::size_t left = 1; left < leaves; ++left) {
    const auto leftShapes = enumerateTrees(root.withBack(false), left);
    const auto rightShapes =
        enumerateTrees(root.withBack(true), leaves - left);
    for (const auto& l : leftShapes) {
      for (const auto& r : rightShapes) {
        std::vector<BitString> combined = l;
        combined.insert(combined.end(), r.begin(), r.end());
        shapes.push_back(std::move(combined));
      }
    }
  }
  return shapes;
}

class ExhaustiveTreeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExhaustiveTreeTest, AllTheoremsOnEveryTreeShape) {
  const std::size_t dims = GetParam();
  const BitString root = rootLabel(dims);
  std::size_t shapesChecked = 0;
  constexpr std::size_t kMaxLeaves = 7;  // Catalan(6) = 132 shapes per size

  for (std::size_t leafCount = 1; leafCount <= kMaxLeaves; ++leafCount) {
    for (const auto& leaves : enumerateTrees(root, leafCount)) {
      ++shapesChecked;
      const auto internals = internalNodes(leaves, dims);
      ASSERT_EQ(internals.size(), leaves.size());

      // Theorem 2/4: naming is a bijection leaves -> internals.
      std::map<BitString, BitString> leafOfName;
      for (const BitString& leaf : leaves) {
        const BitString name = naming(leaf, dims);
        ASSERT_TRUE(internals.contains(name))
            << "tree #" << shapesChecked << " leaf " << leaf.toString();
        ASSERT_TRUE(leafOfName.emplace(name, leaf).second);
      }
      ASSERT_EQ(leafOfName.size(), internals.size());

      // Theorem 1 (routing form): for every internal ω, the leaf named
      // to f_md(ω) is a descendant of ω touching a corner of its region
      // (and the leaf named to ω itself likewise, when ω is internal).
      for (const BitString& omega : internals) {
        if (omega.size() < dims + 1) continue;  // virtual root
        for (const BitString& key : {naming(omega, dims), omega}) {
          const auto it = leafOfName.find(key);
          if (it == leafOfName.end()) continue;  // key not internal here
          const BitString& cell = it->second;
          if (!omega.isPrefixOf(cell)) {
            // Only legitimate when the named key is above ω entirely.
            ASSERT_FALSE(key == omega)
                << "leaf named to ω must lie inside ω";
            continue;
          }
          const Rect outer = labelRegion(omega, dims);
          const Rect inner = labelRegion(cell, dims);
          for (std::size_t d = 0; d < dims; ++d) {
            ASSERT_TRUE(inner.lo()[d] == outer.lo()[d] ||
                        inner.hi()[d] == outer.hi()[d])
                << "tree #" << shapesChecked << " omega "
                << omega.toString();
          }
        }
      }

      // Theorem 5: splitting any leaf re-keys exactly one child.
      for (const BitString& leaf : leaves) {
        const BitString k = naming(leaf, dims);
        const BitString k0 = naming(leaf.withBack(false), dims);
        const BitString k1 = naming(leaf.withBack(true), dims);
        ASSERT_TRUE((k0 == k && k1 == leaf) || (k1 == k && k0 == leaf));
      }
    }
  }
  // Catalan numbers 1+1+2+5+14+42+132 = 197 shapes per dimensionality.
  EXPECT_EQ(shapesChecked, 197u);
}

INSTANTIATE_TEST_SUITE_P(Dims, ExhaustiveTreeTest,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{3}));

TEST(ExhaustiveTree, NamedLeafOfOmegaKeyIsAlwaysInsideOmega) {
  // The property range queries rely on, checked over every 6-leaf shape
  // in 2-D: when ω is internal, the bucket at key f_md(ω) is a
  // descendant of ω (Algorithm 2/3's reachability).
  const BitString root = rootLabel(2);
  for (const auto& leaves : enumerateTrees(root, 6)) {
    const auto internals = internalNodes(leaves, 2);
    std::map<BitString, BitString> leafOfName;
    for (const BitString& leaf : leaves) {
      leafOfName[naming(leaf, 2)] = leaf;
    }
    for (const BitString& omega : internals) {
      if (omega.size() < 3) continue;
      const BitString& corner = leafOfName.at(naming(omega, 2));
      EXPECT_TRUE(omega.isPrefixOf(corner))
          << "omega " << omega.toString() << " corner "
          << corner.toString();
    }
  }
}

}  // namespace
}  // namespace mlight::core
