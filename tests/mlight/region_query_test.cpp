// Arbitrary-shape region queries (§6): ball/circle regions against the
// brute-force oracle, plus the geometric primitives themselves.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dht/network.h"
#include "index/oracle.h"
#include "index/region.h"
#include "mlight/index.h"
#include "workload/datasets.h"

namespace mlight::core {
namespace {

using mlight::common::Point;
using mlight::common::Rect;
using mlight::common::Rng;
using mlight::dht::Network;
using mlight::index::BallRegion;
using mlight::index::QueryRegion;
using mlight::index::Record;
using mlight::index::RectRegion;

TEST(BallRegion, GeometryPrimitives) {
  const BallRegion ball(Point{0.5, 0.5}, 0.2);
  // Bounding box.
  const Rect box = ball.boundingBox();
  EXPECT_DOUBLE_EQ(box.lo()[0], 0.3);
  EXPECT_DOUBLE_EQ(box.hi()[1], 0.7);
  // Containment.
  EXPECT_TRUE(ball.contains(Point{0.5, 0.5}));
  EXPECT_TRUE(ball.contains(Point{0.5, 0.69}));
  EXPECT_FALSE(ball.contains(Point{0.65, 0.65}));  // corner of the box
  // Intersection: a cell just touching the ball's axis extent.
  EXPECT_TRUE(ball.intersects(Rect(Point{0.69, 0.45}, Point{0.9, 0.55})));
  EXPECT_FALSE(ball.intersects(Rect(Point{0.66, 0.66}, Point{0.9, 0.9})));
  // Cover: a tiny cell at the center is covered; the bounding box is not.
  EXPECT_TRUE(ball.covers(Rect(Point{0.48, 0.48}, Point{0.52, 0.52})));
  EXPECT_FALSE(ball.covers(box));
}

TEST(RectRegion, MatchesPlainRectSemantics) {
  const Rect r(Point{0.2, 0.3}, Point{0.6, 0.7});
  const RectRegion region(r);
  EXPECT_EQ(region.boundingBox(), r);
  EXPECT_TRUE(region.contains(Point{0.2, 0.3}));
  EXPECT_FALSE(region.contains(Point{0.6, 0.7}));  // half-open
  EXPECT_TRUE(region.covers(Rect(Point{0.3, 0.4}, Point{0.5, 0.6})));
}

class RegionQueryTest : public ::testing::Test {
 protected:
  RegionQueryTest() : net_(64) {
    MLightConfig cfg;
    cfg.thetaSplit = 12;
    cfg.thetaMerge = 6;
    cfg.maxEdgeDepth = 20;
    index_ = std::make_unique<MLightIndex>(net_, cfg);
    data_ = mlight::workload::clusteredDataset(800, 2, 3, 0.06, 21);
    for (const auto& r : data_) index_->insert(r);
  }

  std::vector<Record> bruteForce(const QueryRegion& region) const {
    std::vector<Record> out;
    for (const auto& r : data_) {
      if (region.contains(r.key)) out.push_back(r);
    }
    return out;
  }

  Network net_;
  std::unique_ptr<MLightIndex> index_;
  std::vector<Record> data_;
};

TEST_F(RegionQueryTest, CircleQueriesMatchBruteForce) {
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const BallRegion ball(Point{rng.uniform(), rng.uniform()},
                          rng.uniform(0.02, 0.35));
    auto got = index_->regionQuery(ball).records;
    auto want = bruteForce(ball);
    mlight::index::Oracle::sortById(got);
    mlight::index::Oracle::sortById(want);
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    EXPECT_EQ(got, want);
  }
}

TEST_F(RegionQueryTest, RectRegionEqualsRangeQuery) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const double side = rng.uniform(0.05, 0.4);
    const double x = rng.uniform() * (1 - side);
    const double y = rng.uniform() * (1 - side);
    const Rect r(Point{x, y}, Point{x + side, y + side});
    auto viaRegion = index_->regionQuery(RectRegion(r)).records;
    auto viaRange = index_->rangeQuery(r).records;
    mlight::index::Oracle::sortById(viaRegion);
    mlight::index::Oracle::sortById(viaRange);
    EXPECT_EQ(viaRegion, viaRange);
  }
}

TEST_F(RegionQueryTest, CircleCostsLessThanItsBoundingBox) {
  // The shape-aware prune must beat querying the bounding box and
  // filtering: the circle covers π/4 of the box's area.
  const BallRegion ball(Point{0.35, 0.45}, 0.25);
  const auto circle = index_->regionQuery(ball);
  const auto box = index_->rangeQuery(
      ball.boundingBox().intersection(Rect::unit(2)));
  EXPECT_LE(circle.stats.cost.lookups, box.stats.cost.lookups);
  EXPECT_LE(circle.records.size(), box.records.size());
}

TEST_F(RegionQueryTest, BallOutsideSpaceIsEmpty) {
  const BallRegion ball(Point{3.0, 3.0}, 0.5);
  EXPECT_TRUE(index_->regionQuery(ball).records.empty());
}

TEST_F(RegionQueryTest, BallCoveringEverythingReturnsAll) {
  const BallRegion ball(Point{0.5, 0.5}, 2.0);
  EXPECT_EQ(index_->regionQuery(ball).records.size(), data_.size());
}

TEST_F(RegionQueryTest, ParallelLookaheadAgreesOnCircles) {
  const BallRegion ball(Point{0.4, 0.4}, 0.2);
  auto basic = index_->regionQuery(ball).records;
  index_->setLookahead(4);
  auto parallel = index_->regionQuery(ball).records;
  index_->setLookahead(1);
  mlight::index::Oracle::sortById(basic);
  mlight::index::Oracle::sortById(parallel);
  EXPECT_EQ(basic, parallel);
}

TEST_F(RegionQueryTest, RangeCountMatchesRangeQuery) {
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    const double side = rng.uniform(0.05, 0.5);
    const double x = rng.uniform() * (1 - side);
    const double y = rng.uniform() * (1 - side);
    const Rect r(Point{x, y}, Point{x + side, y + side});
    const auto full = index_->rangeQuery(r);
    const auto count = index_->rangeCount(r);
    EXPECT_EQ(count.count, full.records.size());
    // Same routing work...
    EXPECT_EQ(count.stats.cost.lookups, full.stats.cost.lookups);
    // ...but the count ships a fixed few bytes per visited bucket while
    // the full query ships every record.
    if (full.records.size() > 20) {
      EXPECT_LT(count.stats.cost.bytesMoved, full.stats.cost.bytesMoved);
    }
  }
}

TEST_F(RegionQueryTest, ResultBytesAreMetered) {
  // Query result traffic (records shipped back to the initiator) shows
  // up in the per-query meter.
  const Rect everything(Point{0.0, 0.0}, Point{1.0, 1.0});
  const auto res = index_->rangeQuery(everything);
  ASSERT_EQ(res.records.size(), data_.size());
  std::size_t totalBytes = 0;
  for (const auto& r : data_) totalBytes += r.byteSize();
  // Nearly all records cross the network (a few may sit on the
  // initiator itself).
  EXPECT_GT(res.stats.cost.bytesMoved, totalBytes / 2);
}

TEST(RegionQuery, HigherDimensionalBall) {
  Network net(32);
  MLightConfig cfg;
  cfg.dims = 3;
  cfg.thetaSplit = 10;
  cfg.thetaMerge = 5;
  cfg.maxEdgeDepth = 18;
  MLightIndex index(net, cfg);
  const auto data = mlight::workload::uniformDataset(500, 3, 23);
  for (const auto& r : data) index.insert(r);
  const BallRegion ball(Point{0.5, 0.5, 0.5}, 0.3);
  auto got = index.regionQuery(ball).records;
  std::size_t want = 0;
  for (const auto& r : data) want += ball.contains(r.key);
  EXPECT_EQ(got.size(), want);
}

}  // namespace
}  // namespace mlight::core
