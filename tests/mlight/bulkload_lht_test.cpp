// Tests for bulk loading and for the LHT (1-D) façade.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dht/network.h"
#include "index/oracle.h"
#include "mlight/kdspace.h"
#include "mlight/lht.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace mlight::core {
namespace {

using mlight::common::Point;
using mlight::common::Rect;
using mlight::common::Rng;
using mlight::dht::CostMeter;
using mlight::dht::MeterScope;
using mlight::dht::Network;
using mlight::index::Oracle;
using mlight::index::Record;

MLightConfig smallConfig() {
  MLightConfig cfg;
  cfg.thetaSplit = 15;
  cfg.thetaMerge = 7;
  cfg.maxEdgeDepth = 20;
  return cfg;
}

TEST(BulkLoad, MatchesIncrementalContents) {
  const auto data = mlight::workload::clusteredDataset(1000, 2, 3, 0.05, 3);
  Network netA(64);
  Network netB(64);
  MLightIndex incremental(netA, smallConfig());
  MLightIndex bulk(netB, smallConfig());
  for (const auto& r : data) incremental.insert(r);
  bulk.bulkLoad(data);
  bulk.checkInvariants();
  EXPECT_EQ(bulk.size(), incremental.size());
  for (const Rect& q :
       mlight::workload::uniformRangeQueries(20, 2, 0.1, 5)) {
    auto a = incremental.rangeQuery(q).records;
    auto b = bulk.rangeQuery(q).records;
    Oracle::sortById(a);
    Oracle::sortById(b);
    EXPECT_EQ(a, b);
  }
}

TEST(BulkLoad, ThresholdInvariantHolds) {
  const auto data = mlight::workload::uniformDataset(2000, 2, 7);
  Network net(64);
  MLightIndex index(net, smallConfig());
  index.bulkLoad(data);
  std::size_t maxLoad = 0;
  index.store().forEach([&](const auto&, const LeafBucket& b, auto) {
    maxLoad = std::max(maxLoad, b.records.size());
  });
  EXPECT_LE(maxLoad, index.config().thetaSplit);
}

TEST(BulkLoad, MuchCheaperThanIncremental) {
  const auto data = mlight::workload::uniformDataset(3000, 2, 9);
  Network netA(64, 1);
  Network netB(64, 1);
  MLightIndex incremental(netA, smallConfig());
  MLightIndex bulk(netB, smallConfig());
  CostMeter inc;
  CostMeter blk;
  {
    MeterScope scope(netA, inc);
    for (const auto& r : data) incremental.insert(r);
  }
  {
    MeterScope scope(netB, blk);
    bulk.bulkLoad(data);
  }
  // One put per bucket vs ~3 probes per record.
  EXPECT_LT(blk.lookups * 10, inc.lookups);
  // Each record crosses the wire once vs once + split re-shipping.
  EXPECT_LT(blk.bytesMoved, inc.bytesMoved);
}

TEST(BulkLoad, DataAwareStrategyWorksToo) {
  const auto data = mlight::workload::clusteredDataset(800, 2, 2, 0.03, 11);
  Network net(64);
  MLightConfig cfg = smallConfig();
  cfg.strategy = SplitStrategy::kDataAware;
  cfg.epsilon = 10.0;
  MLightIndex index(net, cfg);
  index.bulkLoad(data);
  index.checkInvariants();
  EXPECT_EQ(index.size(), data.size());
  // Further incremental inserts keep working.
  Record extra;
  extra.key = Point{0.5, 0.5};
  extra.id = 999999;
  index.insert(extra);
  EXPECT_EQ(index.pointQuery(extra.key).records.size(), 1u);
}

TEST(BulkLoad, RejectsNonEmptyIndexAndBadDims) {
  Network net(16);
  MLightIndex index(net, smallConfig());
  Record r;
  r.key = Point{0.5, 0.5};
  index.insert(r);
  EXPECT_THROW(index.bulkLoad(std::vector<Record>{r}), std::logic_error);

  MLightConfig cfg = smallConfig();
  cfg.dhtNamespace = "bulk2/";
  MLightIndex fresh(net, cfg);
  Record bad;
  bad.key = Point{0.5, 0.5, 0.5};
  EXPECT_THROW(fresh.bulkLoad(std::vector<Record>{bad}),
               std::invalid_argument);
}

TEST(BulkLoad, EmptyBatchLeavesSingleRootBucket) {
  Network net(16);
  MLightIndex index(net, smallConfig());
  index.bulkLoad(std::vector<Record>{});
  index.checkInvariants();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.bucketCount(), 1u);
}

// --- LHT façade ---

TEST(Lht, OneDimensionalRangeQueries) {
  Network net(32);
  mlight::lht::LhtConfig cfg;
  cfg.thetaSplit = 10;
  cfg.thetaMerge = 5;
  mlight::lht::LhtIndex index(net, cfg);
  Rng rng(13);
  std::vector<double> keys;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const double k = rng.uniform();
    keys.push_back(k);
    index.insert({k, "v" + std::to_string(i), i});
  }
  index.checkInvariants();
  for (int trial = 0; trial < 25; ++trial) {
    const double a = rng.uniform();
    const double b = rng.uniform();
    const double lo = std::min(a, b);
    const double hi = std::max(a, b);
    const auto res = index.rangeQuery(lo, hi);
    std::size_t want = 0;
    for (double k : keys) want += (k >= lo && k < hi);
    EXPECT_EQ(res.records.size(), want);
    for (const auto& r : res.records) {
      EXPECT_GE(r.key, lo);
      EXPECT_LT(r.key, hi);
    }
  }
}

TEST(Lht, PointQueryAndErase) {
  Network net(32);
  mlight::lht::LhtIndex index(net, mlight::lht::LhtConfig{});
  index.insert({0.42, "answer", 1});
  index.insert({0.42, "other", 2});
  EXPECT_EQ(index.pointQuery(0.42).records.size(), 2u);
  EXPECT_EQ(index.erase(0.42, 1), 1u);
  EXPECT_EQ(index.pointQuery(0.42).records.size(), 1u);
  EXPECT_EQ(index.size(), 1u);
}

TEST(Lht, DegeneratesToBinaryIntervalTree) {
  // m = 1: every label region is a dyadic interval, and the naming
  // function still gives the bijection (LHT's defining property).
  Network net(32);
  mlight::lht::LhtConfig cfg;
  cfg.thetaSplit = 5;
  cfg.thetaMerge = 2;
  mlight::lht::LhtIndex index(net, cfg);
  Rng rng(17);
  for (std::uint64_t i = 0; i < 100; ++i) {
    index.insert({rng.uniform(), "", i});
  }
  EXPECT_GT(index.bucketCount(), 4u);
  index.inner().store().forEach(
      [&](const auto& key, const LeafBucket& bucket, auto) {
        EXPECT_EQ(naming(bucket.label, 1), key);
        const Rect region = labelRegion(bucket.label, 1);
        EXPECT_EQ(region.dims(), 1u);
      });
}

}  // namespace
}  // namespace mlight::core
