#include "mlight/kdspace.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "testutil/tree_util.h"

namespace mlight::core {
namespace {

using mlight::common::BitString;
using mlight::common::Point;
using mlight::common::Rect;

BitString tag2d(const char* suffix) {
  BitString label = rootLabel(2);
  label.append(BitString::fromString(suffix));
  return label;
}

TEST(KdSpace, RootCoversUnitCube) {
  EXPECT_EQ(labelRegion(rootLabel(2), 2), Rect::unit(2));
  EXPECT_EQ(labelRegion(rootLabel(3), 3), Rect::unit(3));
}

TEST(KdSpace, FirstSplitIsAlongLastDimension) {
  // Paper's interleaving order: depth 0 halves y in 2-D.
  EXPECT_EQ(labelRegion(tag2d("0"), 2),
            Rect(Point{0.0, 0.0}, Point{1.0, 0.5}));
  EXPECT_EQ(labelRegion(tag2d("1"), 2),
            Rect(Point{0.0, 0.5}, Point{1.0, 1.0}));
  EXPECT_EQ(labelRegion(tag2d("10"), 2),
            Rect(Point{0.0, 0.5}, Point{0.5, 1.0}));
}

TEST(KdSpace, PaperRangeExampleLcaRegion) {
  // §6: R = [0.1,0.3] x [0.6,0.8] has LCA #10 (top-left quadrant).
  const Rect r(Point{0.1, 0.6}, Point{0.3, 0.8});
  EXPECT_EQ(lowestCommonAncestor(r, 2, 28), tag2d("10"));
  EXPECT_TRUE(labelRegion(tag2d("10"), 2).containsRect(r));
}

TEST(KdSpace, PointPathMatchesPaperExample) {
  // §5: <0.3, 0.9> has longest candidate label #10111000011110000111.
  const BitString path = pointPathLabel(Point{0.3, 0.9}, 2, 20);
  BitString want = rootLabel(2);
  want.append(BitString::fromString("10111000011110000111"));
  EXPECT_EQ(path, want);
}

TEST(KdSpace, SiblingRegionsPartitionParent) {
  mlight::common::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    BitString label = rootLabel(2);
    const std::size_t depth = 1 + rng.below(15);
    for (std::size_t d = 0; d < depth; ++d) label.pushBack(rng.chance(0.5));
    const Rect cell = labelRegion(label, 2);
    const Rect sib = labelRegion(label.sibling(), 2);
    BitString parent = label;
    parent.popBack();
    const Rect parentCell = labelRegion(parent, 2);
    EXPECT_FALSE(cell.intersects(sib));
    EXPECT_TRUE(parentCell.containsRect(cell));
    EXPECT_NEAR(cell.volume() + sib.volume(), parentCell.volume(), 1e-12);
  }
}

TEST(KdSpace, PointPathCellContainsPoint) {
  mlight::common::Rng rng(5);
  for (std::size_t dims = 1; dims <= 4; ++dims) {
    for (int i = 0; i < 100; ++i) {
      Point p(dims);
      for (std::size_t d = 0; d < dims; ++d) p[d] = rng.uniform();
      const BitString path = pointPathLabel(p, dims, 20);
      EXPECT_TRUE(labelRegion(path, dims).contains(p));
      for (std::size_t len = dims + 1; len <= path.size(); len += 3) {
        EXPECT_TRUE(labelRegion(path.prefix(len), dims).contains(p));
      }
    }
  }
}

TEST(KdSpace, LcaIsDeepestCoveringNode) {
  mlight::common::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double side = rng.uniform(0.01, 0.5);
    const double x = rng.uniform() * (1.0 - side);
    const double y = rng.uniform() * (1.0 - side);
    const Rect r(Point{x, y}, Point{x + side, y + side});
    const BitString lca = lowestCommonAncestor(r, 2, 28);
    EXPECT_TRUE(labelRegion(lca, 2).containsRect(r));
    if (edgeDepth(lca, 2) < 28) {
      EXPECT_FALSE(labelRegion(lca.withBack(false), 2).containsRect(r));
      EXPECT_FALSE(labelRegion(lca.withBack(true), 2).containsRect(r));
    }
  }
}

TEST(KdSpace, LcaOfFullSpaceIsRoot) {
  EXPECT_EQ(lowestCommonAncestor(Rect::unit(2), 2, 28), rootLabel(2));
}

TEST(KdSpace, TreeLeavesTileSpace) {
  // Random trees: leaf regions are disjoint and total volume 1.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto leaves = mlight::testutil::randomTreeLeaves(2, 50, seed);
    double volume = 0.0;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      const Rect a = labelRegion(leaves[i], 2);
      volume += a.volume();
      for (std::size_t j = i + 1; j < leaves.size(); ++j) {
        EXPECT_FALSE(a.intersects(labelRegion(leaves[j], 2)));
      }
    }
    EXPECT_NEAR(volume, 1.0, 1e-9);
  }
}

TEST(KdSpace, SplitDimensionCycles) {
  EXPECT_EQ(splitDimension(0, 2), 1u);
  EXPECT_EQ(splitDimension(1, 2), 0u);
  EXPECT_EQ(splitDimension(2, 2), 1u);
  EXPECT_EQ(splitDimension(0, 1), 0u);
  EXPECT_EQ(splitDimension(5, 3), 0u);
}

}  // namespace
}  // namespace mlight::core
