// Test helpers: random space kd-trees as label sets, independent of the
// index implementation, for checking the naming-function theorems.
#pragma once

#include <set>
#include <vector>

#include "common/bitstring.h"
#include "common/rng.h"
#include "mlight/naming.h"

namespace mlight::testutil {

using mlight::common::BitString;

/// Grows a random space kd-tree by `splits` random leaf splits; returns
/// the leaf labels.  Depth capped at maxEdgeDepth.
inline std::vector<BitString> randomTreeLeaves(std::size_t dims,
                                               std::size_t splits,
                                               std::uint64_t seed,
                                               std::size_t maxEdgeDepth = 24) {
  mlight::common::Rng rng(seed);
  std::vector<BitString> leaves{mlight::core::rootLabel(dims)};
  for (std::size_t s = 0; s < splits; ++s) {
    const std::size_t pick = rng.below(leaves.size());
    const BitString leaf = leaves[pick];
    if (mlight::core::edgeDepth(leaf, dims) >= maxEdgeDepth) continue;
    leaves.erase(leaves.begin() + static_cast<std::ptrdiff_t>(pick));
    leaves.push_back(leaf.withBack(false));
    leaves.push_back(leaf.withBack(true));
  }
  return leaves;
}

/// Internal nodes of the tree with the given leaves: every proper prefix
/// of a leaf down to the root, plus the virtual root.
inline std::set<BitString> internalNodes(const std::vector<BitString>& leaves,
                                         std::size_t dims) {
  std::set<BitString> internals{mlight::core::virtualRootLabel(dims)};
  for (const BitString& leaf : leaves) {
    for (std::size_t len = dims + 1; len < leaf.size(); ++len) {
      internals.insert(leaf.prefix(len));
    }
  }
  return internals;
}

}  // namespace mlight::testutil
