// Parameterized invariant grid: one mixed insert/erase/churn workload
// checked across the cross-product of dimensionality, splitting strategy,
// threshold scale and replication — the regimes where bucket-placement
// bookkeeping could silently drift.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dht/network.h"
#include "index/oracle.h"
#include "mlight/index.h"
#include "workload/queries.h"

namespace mlight {
namespace {

using common::Point;
using common::Rect;
using common::Rng;
using index::Oracle;
using index::Record;

struct GridParams {
  std::size_t dims;
  core::SplitStrategy strategy;
  std::size_t theta;       // thetaSplit (epsilon = 0.7 * theta)
  std::size_t replication;
  std::uint64_t seed;
};

class InvariantGridTest : public ::testing::TestWithParam<GridParams> {};

TEST_P(InvariantGridTest, MixedWorkloadHoldsAllInvariants) {
  const GridParams p = GetParam();
  dht::Network net(48, p.seed);
  core::MLightConfig cfg;
  cfg.dims = p.dims;
  cfg.strategy = p.strategy;
  cfg.thetaSplit = p.theta;
  cfg.thetaMerge = p.theta / 2;
  cfg.epsilon = 0.7 * static_cast<double>(p.theta);
  cfg.maxEdgeDepth = 18;
  cfg.replication = p.replication;
  core::MLightIndex index(net, cfg);
  Oracle oracle;
  Rng rng(p.seed * 31 + 7);
  std::vector<Record> alive;
  std::uint64_t nextId = 0;

  for (int op = 0; op < 900; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.60 || alive.empty()) {
      Record r;
      r.key = Point(p.dims);
      for (std::size_t d = 0; d < p.dims; ++d) {
        r.key[d] = rng.chance(0.5)
                       ? rng.uniform()
                       : std::clamp(rng.gaussian(0.7, 0.03), 0.0, 0.999999);
      }
      r.id = nextId++;
      index.insert(r);
      oracle.insert(r);
      alive.push_back(r);
    } else if (dice < 0.80) {
      const std::size_t pick = rng.below(alive.size());
      const Record victim = alive[pick];
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
      ASSERT_EQ(index.erase(victim.key, victim.id),
                oracle.erase(victim.key, victim.id));
    } else if (dice < 0.97) {
      // continue inserting — bias toward growth so splits happen
      Record r;
      r.key = Point(p.dims);
      for (std::size_t d = 0; d < p.dims; ++d) r.key[d] = rng.uniform();
      r.id = nextId++;
      index.insert(r);
      oracle.insert(r);
      alive.push_back(r);
    } else if (net.livePhysicalCount() > 24) {
      net.removePeer(net.peers()[rng.below(net.peerCount())]);
    } else {
      net.addPeer("grid-joiner-" + std::to_string(op));
    }
  }

  // Structural invariants (bijection, tiling, counts, ownership).
  index.checkInvariants();
  ASSERT_EQ(index.size(), oracle.size());

  // Threshold discipline: no bucket over theta under the threshold
  // strategy (depth cap aside; maxEdgeDepth=18 is never hit here).
  if (p.strategy == core::SplitStrategy::kThreshold) {
    index.store().forEach([&](const auto&, const core::LeafBucket& b,
                              auto) {
      EXPECT_LE(b.records.size(), p.theta);
    });
  }

  // Queries agree with the oracle.
  for (const Rect& q :
       workload::uniformRangeQueries(8, p.dims, 0.15, p.seed + 5)) {
    auto got = index.rangeQuery(q).records;
    Oracle::sortById(got);
    ASSERT_EQ(got, oracle.rangeQuery(q));
    // And the aggregate count matches the full query.
    EXPECT_EQ(index.rangeCount(q).count, got.size());
  }

  // No data was lost (replication only matters under *crashes*, which
  // this grid does not inject — see replication_test.cpp for those).
  EXPECT_EQ(index.store().lostBuckets(), 0u);
}

std::vector<GridParams> gridParams() {
  std::vector<GridParams> out;
  std::uint64_t seed = 500;
  for (std::size_t dims : {1u, 2u, 3u}) {
    for (const auto strategy :
         {core::SplitStrategy::kThreshold, core::SplitStrategy::kDataAware}) {
      for (std::size_t theta : {8u, 40u}) {
        out.push_back(GridParams{dims, strategy, theta, 1, seed++});
      }
    }
  }
  // Replication corners at 2-D.
  out.push_back(
      GridParams{2, core::SplitStrategy::kThreshold, 12, 2, seed++});
  out.push_back(
      GridParams{2, core::SplitStrategy::kDataAware, 12, 3, seed++});
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InvariantGridTest, ::testing::ValuesIn(gridParams()),
    [](const ::testing::TestParamInfo<GridParams>& paramInfo) {
      const auto& p = paramInfo.param;
      return "dims" + std::to_string(p.dims) +
             (p.strategy == core::SplitStrategy::kDataAware ? "_aware"
                                                            : "_threshold") +
             "_theta" + std::to_string(p.theta) + "_r" +
             std::to_string(p.replication);
    });

}  // namespace
}  // namespace mlight
