// Cross-scheme integration tests: the three over-DHT indexes must agree
// with each other (and the oracle) on every query, and the paper's
// headline cost orderings must hold on a shared workload.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "dst/dst_index.h"
#include "index/index_base.h"
#include "index/oracle.h"
#include "mlight/index.h"
#include "pht/pht_index.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace mlight {
namespace {

using common::Point;
using common::Rect;
using common::Rng;
using dht::CostMeter;
using dht::MeterScope;
using dht::Network;
using index::Oracle;
using index::Record;

struct Fleet {
  Network net{128, 99};
  std::unique_ptr<core::MLightIndex> mlight;
  std::unique_ptr<pht::PhtIndex> pht;
  std::unique_ptr<dst::DstIndex> dst;
  Oracle oracle;

  Fleet() {
    core::MLightConfig mc;
    mc.thetaSplit = 20;
    mc.thetaMerge = 10;
    mc.maxEdgeDepth = 20;
    mlight = std::make_unique<core::MLightIndex>(net, mc);
    pht::PhtConfig pc;
    pc.thetaSplit = 20;
    pc.thetaMerge = 10;
    pc.maxDepth = 20;
    pht = std::make_unique<pht::PhtIndex>(net, pc);
    dst::DstConfig dc;
    dc.maxDepth = 20;
    dc.gamma = 20;
    dst = std::make_unique<dst::DstIndex>(net, dc);
  }

  void insertAll(const std::vector<Record>& records) {
    for (const Record& r : records) {
      mlight->insert(r);
      pht->insert(r);
      dst->insert(r);
      oracle.insert(r);
    }
  }
};

TEST(Integration, AllSchemesAgreeOnQueries) {
  Fleet fleet;
  fleet.insertAll(workload::clusteredDataset(1200, 2, 3, 0.04, 7));
  for (double span : {0.01, 0.1, 0.4}) {
    for (const Rect& q : workload::uniformRangeQueries(8, 2, span, 11)) {
      auto want = fleet.oracle.rangeQuery(q);
      auto a = fleet.mlight->rangeQuery(q).records;
      auto b = fleet.pht->rangeQuery(q).records;
      auto c = fleet.dst->rangeQuery(q).records;
      Oracle::sortById(a);
      Oracle::sortById(b);
      Oracle::sortById(c);
      EXPECT_EQ(a, want);
      EXPECT_EQ(b, want);
      EXPECT_EQ(c, want);
    }
  }
}

TEST(Integration, AllSchemesAgreeOnPointQueries) {
  Fleet fleet;
  const auto data = workload::uniformDataset(600, 2, 13);
  fleet.insertAll(data);
  Rng rng(17);
  for (int i = 0; i < 40; ++i) {
    const Point probe = data[rng.below(data.size())].key;
    const auto want = fleet.oracle.pointQuery(probe);
    auto a = fleet.mlight->pointQuery(probe).records;
    auto b = fleet.pht->pointQuery(probe).records;
    auto c = fleet.dst->pointQuery(probe).records;
    Oracle::sortById(a);
    Oracle::sortById(b);
    Oracle::sortById(c);
    EXPECT_EQ(a, want);
    EXPECT_EQ(b, want);
    EXPECT_EQ(c, want);
  }
}

TEST(Integration, MaintenanceCostOrderingMatchesPaper) {
  // Fig 5's shape: DST is an order of magnitude above the others in both
  // DHT-lookups and data movement; m-LIGHT beats PHT.
  // Parameters scaled toward the paper's regime (θ = γ = 100, deep static
  // DST tree): at toy thresholds PHT's split re-shipping can mask DST's
  // replication overhead.
  Network net(128, 3);
  core::MLightConfig mc;
  mc.thetaSplit = 100;
  mc.thetaMerge = 50;
  mc.maxEdgeDepth = 24;
  core::MLightIndex ml(net, mc);
  pht::PhtConfig pc;
  pc.thetaSplit = 100;
  pc.thetaMerge = 50;
  pc.maxDepth = 24;
  pht::PhtIndex ph(net, pc);
  dst::DstConfig dc;
  dc.maxDepth = 24;
  dc.gamma = 100;
  dst::DstIndex ds(net, dc);

  const auto data = workload::clusteredDataset(8000, 2, 3, 0.05, 23);
  CostMeter mMl;
  CostMeter mPh;
  CostMeter mDs;
  {
    MeterScope s(net, mMl);
    for (const auto& r : data) ml.insert(r);
  }
  {
    MeterScope s(net, mPh);
    for (const auto& r : data) ph.insert(r);
  }
  {
    MeterScope s(net, mDs);
    for (const auto& r : data) ds.insert(r);
  }
  // DST replicates at every level: several times dearer in both metrics.
  EXPECT_GT(mDs.lookups, 2 * mPh.lookups);
  EXPECT_GT(mDs.bytesMoved, 2 * mPh.bytesMoved);
  // m-LIGHT saves DHT-lookups (smarter binary search) and data movement
  // (Theorem 5: half-bucket splits) over PHT.
  EXPECT_LT(mMl.lookups, mPh.lookups);
  EXPECT_LT(mMl.bytesMoved, mPh.bytesMoved);
}

TEST(Integration, RangeQueryBandwidthOrderingMatchesPaper) {
  // Fig 7a's shape at moderate spans: m-LIGHT basic cheapest, PHT above
  // it (internal-node traversal), DST far above (decomposition blow-up).
  Fleet fleet;
  fleet.insertAll(workload::northeastDataset(3000, 31));
  std::uint64_t ml = 0;
  std::uint64_t ph = 0;
  std::uint64_t ds = 0;
  for (const Rect& q : workload::uniformRangeQueries(15, 2, 0.3, 37)) {
    ml += fleet.mlight->rangeQuery(q).stats.cost.lookups;
    ph += fleet.pht->rangeQuery(q).stats.cost.lookups;
    ds += fleet.dst->rangeQuery(q).stats.cost.lookups;
  }
  EXPECT_LT(ml, ph);
  EXPECT_GT(ds, 2 * ph);
}

TEST(Integration, MixedInsertEraseKeepsAllSchemesConsistent) {
  Fleet fleet;
  auto data = workload::clusteredDataset(800, 2, 2, 0.06, 41);
  fleet.insertAll(data);
  Rng rng(43);
  for (int i = 0; i < 400; ++i) {
    const auto& victim = data[rng.below(data.size())];
    const auto removed = fleet.oracle.erase(victim.key, victim.id);
    EXPECT_EQ(fleet.mlight->erase(victim.key, victim.id), removed);
    EXPECT_EQ(fleet.pht->erase(victim.key, victim.id), removed);
    EXPECT_EQ(fleet.dst->erase(victim.key, victim.id), removed);
  }
  fleet.mlight->checkInvariants();
  fleet.pht->checkInvariants();
  fleet.dst->checkInvariants();
  for (const Rect& q : workload::uniformRangeQueries(10, 2, 0.2, 47)) {
    const auto want = fleet.oracle.rangeQuery(q);
    auto a = fleet.mlight->rangeQuery(q).records;
    auto b = fleet.pht->rangeQuery(q).records;
    auto c = fleet.dst->rangeQuery(q).records;
    Oracle::sortById(a);
    Oracle::sortById(b);
    Oracle::sortById(c);
    EXPECT_EQ(a, want);
    EXPECT_EQ(b, want);
    EXPECT_EQ(c, want);
  }
}

TEST(Integration, ChurnDuringMixedWorkload) {
  Fleet fleet;
  auto data = workload::uniformDataset(600, 2, 53);
  Rng rng(59);
  for (std::size_t i = 0; i < data.size(); ++i) {
    fleet.mlight->insert(data[i]);
    fleet.pht->insert(data[i]);
    fleet.dst->insert(data[i]);
    fleet.oracle.insert(data[i]);
    if (i % 150 == 149) {
      fleet.net.removePeer(
          fleet.net.peers()[rng.below(fleet.net.peerCount())]);
      fleet.net.addPeer("churner:" + std::to_string(i));
    }
  }
  fleet.mlight->checkInvariants();
  fleet.pht->checkInvariants();
  fleet.dst->checkInvariants();
  for (const Rect& q : workload::uniformRangeQueries(10, 2, 0.15, 61)) {
    const auto want = fleet.oracle.rangeQuery(q);
    auto a = fleet.mlight->rangeQuery(q).records;
    Oracle::sortById(a);
    EXPECT_EQ(a, want);
  }
}

TEST(Integration, PolymorphicUseThroughIndexBase) {
  Network net(32);
  core::MLightConfig mc;
  mc.thetaSplit = 10;
  mc.thetaMerge = 5;
  std::vector<std::unique_ptr<index::IndexBase>> indexes;
  indexes.push_back(std::make_unique<core::MLightIndex>(net, mc));
  indexes.push_back(std::make_unique<pht::PhtIndex>(net, pht::PhtConfig{}));
  indexes.push_back(std::make_unique<dst::DstIndex>(net, dst::DstConfig{}));
  const auto data = workload::uniformDataset(100, 2, 67);
  for (auto& idx : indexes) {
    for (const auto& r : data) idx->insert(r);
    EXPECT_EQ(idx->size(), data.size());
    EXPECT_EQ(idx->rangeQuery(Rect::unit(2)).records.size(), data.size());
  }
}

}  // namespace
}  // namespace mlight
