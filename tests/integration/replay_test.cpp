// Whole-workload replay determinism (ISSUE 2, satellite 3).
//
// The event core's contract is that a workload is a pure function of its
// seeds: two networks built with the same seed, driven through the same
// mixed insert/query/churn sequence, must produce byte-identical RPC
// delivery timelines — same envelopes, same routes, same simulated
// timestamps — along with identical cost meters and query statistics.
// This is what makes every figure in the paper reproduction re-runnable.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dht/network.h"
#include "mlight/index.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace mlight {
namespace {

using dht::CostMeter;
using dht::Network;
using dht::RpcDelivery;

/// One delivered RPC, flattened to comparable scalars.
struct TraceEntry {
  std::uint64_t id = 0;
  std::uint8_t kind = 0;
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::uint32_t round = 0;
  std::size_t payloadBytes = 0;
  double sentAt = 0.0;
  double deliveredAt = 0.0;

  bool operator==(const TraceEntry&) const = default;
};

struct RunResult {
  std::vector<TraceEntry> trace;
  std::vector<std::size_t> queryRounds;
  std::vector<double> queryLatency;
  std::vector<std::size_t> queryAnswers;
  CostMeter total;
  double finalNow = 0.0;
  std::size_t pooledBuffers = 0;  ///< parked buffers after the run
};

RunResult runWorkload(std::uint64_t seed, bool withFaults = false,
                      std::uint64_t faultSeed = 1,
                      bool installDisabledModel = false,
                      bool bufferPooling = true,
                      bool cacheEnabled = false) {
  Network net(48, seed);
  net.setBufferPooling(bufferPooling);
  if (withFaults) {
    dht::FaultModel faults;
    faults.enabled = true;
    faults.lossProbability = 0.01;
    faults.jitterMs = 5.0;
    faults.maxAttempts = 8;
    faults.seed = faultSeed;
    net.setFaultModel(faults);
  } else if (installDisabledModel) {
    net.setFaultModel(dht::FaultModel{});  // enabled == false
  }
  RunResult out;
  net.setRpcTrace([&](const RpcDelivery& d) {
    out.trace.push_back({d.env.id, static_cast<std::uint8_t>(d.env.kind),
                         d.env.from.value, d.env.to.value, d.env.round,
                         d.env.payload.size(), d.sentAt, d.deliveredAt});
  });

  core::MLightConfig config;
  config.thetaSplit = 16;
  config.thetaMerge = 8;
  config.cache.enabled = cacheEnabled;  // explicit: immune to MLIGHT_CACHE
  if (withFaults) config.replication = 2;  // retries may still dead-letter
  core::MLightIndex index(net, config);

  const auto data = workload::uniformDataset(600, 2, seed + 1);
  const auto queries = workload::uniformRangeQueries(6, 2, 0.25, seed + 2);
  auto query = [&](const common::Rect& q) {
    const auto res = index.rangeQuery(q);
    out.queryRounds.push_back(res.stats.rounds);
    out.queryLatency.push_back(res.stats.latencyMs);
    out.queryAnswers.push_back(res.records.size());
  };

  // Mixed workload: bulk insert, churn (join + graceful leave) in the
  // middle, queries interleaved, a few deletes at the end.
  for (std::size_t i = 0; i < 300; ++i) index.insert(data[i]);
  query(queries[0]);
  query(queries[1]);
  net.addPeer("replay-joiner-a");
  for (std::size_t i = 300; i < 450; ++i) index.insert(data[i]);
  query(queries[2]);
  net.removePeer(net.peers()[7]);
  for (std::size_t i = 450; i < data.size(); ++i) index.insert(data[i]);
  net.addPeer("replay-joiner-b");
  query(queries[3]);
  query(queries[4]);
  for (std::size_t i = 0; i < 40; ++i) {
    index.erase(data[i].key, data[i].id);
  }
  query(queries[5]);

  out.total = net.totalCost();
  out.finalNow = net.now();
  out.pooledBuffers = net.pooledBufferCount();
  net.setRpcTrace({});
  return out;
}

/// Message-buffer pooling must be invisible to the simulation: the
/// pooled and pool-disabled runs of the same workload produce
/// byte-identical delivery timelines (every envelope field, route,
/// payload size, and timestamp) and identical meters — the pool only
/// changes where the host gets its transient vectors from.
void expectIdenticalRuns(const RunResult& a, const RunResult& b) {
  ASSERT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.queryRounds, b.queryRounds);
  EXPECT_EQ(a.queryLatency, b.queryLatency);
  EXPECT_EQ(a.queryAnswers, b.queryAnswers);
  EXPECT_EQ(a.total.lookups, b.total.lookups);
  EXPECT_EQ(a.total.hops, b.total.hops);
  EXPECT_EQ(a.total.bytesMoved, b.total.bytesMoved);
  EXPECT_EQ(a.total.recordsMoved, b.total.recordsMoved);
  EXPECT_EQ(a.total.messages, b.total.messages);
  EXPECT_EQ(a.total.retries, b.total.retries);
  EXPECT_DOUBLE_EQ(a.finalNow, b.finalNow);
}

TEST(Replay, BufferPoolingIsTimelineInvisible) {
  const RunResult pooled = runWorkload(2009);
  const RunResult unpooled = runWorkload(2009, /*withFaults=*/false,
                                         /*faultSeed=*/1,
                                         /*installDisabledModel=*/false,
                                         /*bufferPooling=*/false);
  // The pooled run must actually have recycled buffers (otherwise this
  // test compares pooling with itself), the unpooled run must not.
  EXPECT_GT(pooled.pooledBuffers, 0u);
  EXPECT_EQ(unpooled.pooledBuffers, 0u);
  expectIdenticalRuns(pooled, unpooled);
}

TEST(Replay, BufferPoolingIsTimelineInvisibleUnderFaults) {
  // The fault path shares deliver() with the fault-free path; loss,
  // jitter, retries, and failover must be untouched by pooling too.
  const RunResult pooled = runWorkload(2009, /*withFaults=*/true,
                                       /*faultSeed=*/7);
  const RunResult unpooled = runWorkload(2009, /*withFaults=*/true,
                                         /*faultSeed=*/7,
                                         /*installDisabledModel=*/false,
                                         /*bufferPooling=*/false);
  expectIdenticalRuns(pooled, unpooled);
}

TEST(Replay, SameSeedReproducesTheTimelineExactly) {
  const RunResult a = runWorkload(2009);
  const RunResult b = runWorkload(2009);

  ASSERT_FALSE(a.trace.empty());
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.trace, b.trace);

  EXPECT_EQ(a.queryRounds, b.queryRounds);
  EXPECT_EQ(a.queryLatency, b.queryLatency);
  EXPECT_EQ(a.queryAnswers, b.queryAnswers);

  EXPECT_EQ(a.total.lookups, b.total.lookups);
  EXPECT_EQ(a.total.hops, b.total.hops);
  EXPECT_EQ(a.total.bytesMoved, b.total.bytesMoved);
  EXPECT_EQ(a.total.recordsMoved, b.total.recordsMoved);
  EXPECT_EQ(a.total.messages, b.total.messages);
  EXPECT_DOUBLE_EQ(a.finalNow, b.finalNow);
}

TEST(Replay, DifferentSeedsDiverge) {
  // Sanity check on the check itself: the trace is not trivially equal.
  const RunResult a = runWorkload(2009);
  const RunResult c = runWorkload(1972);
  EXPECT_NE(a.trace, c.trace);
}

TEST(Replay, FaultInjectedRunIsByteExactUnderTheSameSeeds) {
  // The fault layer draws loss and jitter from its own seeded RNG in a
  // fixed order, so a faulty workload is still a pure function of
  // (network seed, fault seed): retransmissions, failovers, and jittered
  // delivery times replay byte-exactly.  The fault seed comes from
  // MLIGHT_FAULT_SEED when set (the CI fault matrix pins it).
  const std::uint64_t faultSeed = dht::faultSeedFromEnv(1234);
  const RunResult a = runWorkload(2009, /*withFaults=*/true, faultSeed);
  const RunResult b = runWorkload(2009, /*withFaults=*/true, faultSeed);

  ASSERT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.queryRounds, b.queryRounds);
  EXPECT_EQ(a.queryLatency, b.queryLatency);
  EXPECT_EQ(a.queryAnswers, b.queryAnswers);
  EXPECT_EQ(a.total.lookups, b.total.lookups);
  EXPECT_EQ(a.total.hops, b.total.hops);
  EXPECT_EQ(a.total.retries, b.total.retries);
  EXPECT_EQ(a.total.bytesMoved, b.total.bytesMoved);
  EXPECT_EQ(a.total.messages, b.total.messages);
  EXPECT_DOUBLE_EQ(a.finalNow, b.finalNow);

  // A different fault seed reshuffles losses: the timeline must move
  // (otherwise the fault RNG is not actually feeding the schedule).
  const RunResult c = runWorkload(2009, /*withFaults=*/true, faultSeed + 1);
  EXPECT_NE(a.trace, c.trace);
}

TEST(Replay, CacheEnabledRunIsByteExactUnderTheSameFaultSeed) {
  // The hint cache adds a new RPC verb and new meter fields but no new
  // nondeterminism: a cache-enabled workload under fault injection is
  // still a pure function of (network seed, fault seed).
  const std::uint64_t faultSeed = dht::faultSeedFromEnv(1234);
  const RunResult a = runWorkload(2009, /*withFaults=*/true, faultSeed,
                                  /*installDisabledModel=*/false,
                                  /*bufferPooling=*/true,
                                  /*cacheEnabled=*/true);
  const RunResult b = runWorkload(2009, /*withFaults=*/true, faultSeed,
                                  /*installDisabledModel=*/false,
                                  /*bufferPooling=*/true,
                                  /*cacheEnabled=*/true);
  ASSERT_FALSE(a.trace.empty());
  // The workload's cached locates must actually consult hints —
  // otherwise this replays the uncached path against itself.
  EXPECT_GT(a.total.cacheHits + a.total.staleHints, 0u);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.queryAnswers, b.queryAnswers);
  EXPECT_EQ(a.total.lookups, b.total.lookups);
  EXPECT_EQ(a.total.cacheHits, b.total.cacheHits);
  EXPECT_EQ(a.total.staleHints, b.total.staleHints);
  EXPECT_EQ(a.total.retries, b.total.retries);
  EXPECT_DOUBLE_EQ(a.finalNow, b.finalNow);
}

TEST(Replay, CacheChangesTrafficButNeverAnswers) {
  // Cache on vs off over the identical workload: fewer/different probes
  // on the wire, byte-identical query results.
  const RunResult off = runWorkload(2009);
  const RunResult on = runWorkload(2009, /*withFaults=*/false,
                                   /*faultSeed=*/1,
                                   /*installDisabledModel=*/false,
                                   /*bufferPooling=*/true,
                                   /*cacheEnabled=*/true);
  EXPECT_EQ(off.total.cacheHits, 0u);
  EXPECT_EQ(off.total.staleHints, 0u);
  EXPECT_GT(on.total.cacheHits + on.total.staleHints, 0u);
  EXPECT_NE(off.trace, on.trace);
  EXPECT_EQ(off.queryAnswers, on.queryAnswers);
}

TEST(Replay, FaultFreeModelMatchesNoModelBitExactly) {
  // FaultModel{enabled: false} must be indistinguishable from never
  // installing a model at all — the bit-identical count/timeline
  // contract with the pre-fault event core.
  const RunResult a = runWorkload(2009);
  const RunResult b = runWorkload(2009, /*withFaults=*/false,
                                  /*faultSeed=*/1,
                                  /*installDisabledModel=*/true);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_DOUBLE_EQ(a.finalNow, b.finalNow);
  EXPECT_EQ(a.total.retries, 0u);
  EXPECT_EQ(b.total.retries, 0u);
}

}  // namespace
}  // namespace mlight
