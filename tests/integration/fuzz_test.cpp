// Differential fuzzing: long random operation sequences applied in
// lockstep to m-LIGHT, PHT, DST and the in-memory oracle.  Any divergence
// in any query answer fails; structural invariants are re-checked
// periodically.  All randomness is seeded (deterministic, replayable).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "dht/network.h"
#include "dst/dst_index.h"
#include "index/oracle.h"
#include "mlight/index.h"
#include "pht/pht_index.h"

namespace mlight {
namespace {

using common::Point;
using common::Rect;
using common::Rng;
using index::Oracle;
using index::Record;

struct FuzzParams {
  std::uint64_t seed;
  std::size_t dims;
  core::SplitStrategy strategy;
};

class FuzzTest : public ::testing::TestWithParam<FuzzParams> {};

Point randomPoint(Rng& rng, std::size_t dims) {
  Point p(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    // Mix of uniform scatter and a sticky cluster to provoke splits,
    // merges and deep subtrees.
    p[d] = rng.chance(0.4) ? rng.uniform()
                           : std::clamp(rng.gaussian(0.31, 0.02), 0.0,
                                        0.999999);
  }
  return p;
}

Rect randomRange(Rng& rng, std::size_t dims) {
  Point lo(dims);
  Point hi(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const double a = rng.uniform();
    const double b = rng.uniform();
    lo[d] = std::min(a, b);
    hi[d] = std::max(a, b);
  }
  return Rect(lo, hi);
}

TEST_P(FuzzTest, RandomOpsNeverDiverge) {
  const FuzzParams params = GetParam();
  Rng rng(params.seed);
  dht::Network net(48, params.seed);

  core::MLightConfig mc;
  mc.dims = params.dims;
  mc.thetaSplit = 12;
  mc.thetaMerge = 6;
  mc.maxEdgeDepth = 18;
  mc.strategy = params.strategy;
  mc.epsilon = 8.0;
  core::MLightIndex ml(net, mc);

  pht::PhtConfig pc;
  pc.dims = params.dims;
  pc.thetaSplit = 12;
  pc.thetaMerge = 6;
  pc.maxDepth = 18;
  pht::PhtIndex ph(net, pc);

  dst::DstConfig dc;
  dc.dims = params.dims;
  dc.maxDepth = (18 / params.dims) * params.dims;
  dc.gamma = 12;
  dst::DstIndex ds(net, dc);

  Oracle oracle;
  std::vector<Record> alive;
  std::uint64_t nextId = 0;
  std::size_t churnSerial = 0;

  const int kOps = 1200;
  for (int op = 0; op < kOps; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.55 || alive.empty()) {
      Record r;
      r.key = randomPoint(rng, params.dims);
      r.id = nextId++;
      r.payload = "fuzz";
      ml.insert(r);
      ph.insert(r);
      ds.insert(r);
      oracle.insert(r);
      alive.push_back(r);
    } else if (dice < 0.70) {
      const std::size_t pick = rng.below(alive.size());
      const Record victim = alive[pick];
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
      const auto removed = oracle.erase(victim.key, victim.id);
      ASSERT_EQ(ml.erase(victim.key, victim.id), removed);
      ASSERT_EQ(ph.erase(victim.key, victim.id), removed);
      ASSERT_EQ(ds.erase(victim.key, victim.id), removed);
    } else if (dice < 0.80) {
      // Point query for an existing or random key.
      const Point probe = rng.chance(0.7) && !alive.empty()
                              ? alive[rng.below(alive.size())].key
                              : randomPoint(rng, params.dims);
      const auto want = oracle.pointQuery(probe);
      auto a = ml.pointQuery(probe).records;
      auto b = ph.pointQuery(probe).records;
      auto c = ds.pointQuery(probe).records;
      Oracle::sortById(a);
      Oracle::sortById(b);
      Oracle::sortById(c);
      ASSERT_EQ(a, want) << "op " << op;
      ASSERT_EQ(b, want) << "op " << op;
      ASSERT_EQ(c, want) << "op " << op;
    } else if (dice < 0.92) {
      const Rect q = randomRange(rng, params.dims);
      const auto want = oracle.rangeQuery(q);
      auto a = ml.rangeQuery(q).records;
      auto b = ph.rangeQuery(q).records;
      auto c = ds.rangeQuery(q).records;
      Oracle::sortById(a);
      Oracle::sortById(b);
      Oracle::sortById(c);
      ASSERT_EQ(a, want) << "op " << op << " range " << q.toString();
      ASSERT_EQ(b, want) << "op " << op;
      ASSERT_EQ(c, want) << "op " << op;
    } else if (dice < 0.96) {
      const auto got = ml.knnQuery(randomPoint(rng, params.dims),
                                   1 + rng.below(5));
      // Full correctness of kNN has its own suite; here just sanity.
      ASSERT_LE(got.records.size(), oracle.size());
    } else if (dice < 0.98 && net.livePhysicalCount() > 24) {
      net.removePeer(net.peers()[rng.below(net.peerCount())]);
    } else {
      net.addPeer("fuzz-joiner-" + std::to_string(churnSerial++));
    }

    if (op % 300 == 299) {
      ml.checkInvariants();
      ph.checkInvariants();
      ds.checkInvariants();
      ASSERT_EQ(ml.size(), oracle.size());
      ASSERT_EQ(ph.size(), oracle.size());
      ASSERT_EQ(ds.size(), oracle.size());
    }
  }
  ml.checkInvariants();
  ph.checkInvariants();
  ds.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzTest,
    ::testing::Values(
        FuzzParams{101, 2, core::SplitStrategy::kThreshold},
        FuzzParams{102, 2, core::SplitStrategy::kDataAware},
        FuzzParams{103, 1, core::SplitStrategy::kThreshold},
        FuzzParams{104, 3, core::SplitStrategy::kThreshold},
        FuzzParams{105, 3, core::SplitStrategy::kDataAware},
        FuzzParams{106, 2, core::SplitStrategy::kThreshold}),
    [](const ::testing::TestParamInfo<FuzzParams>& paramInfo) {
      return "seed" + std::to_string(paramInfo.param.seed) + "_dims" +
             std::to_string(paramInfo.param.dims) +
             (paramInfo.param.strategy == core::SplitStrategy::kDataAware
                  ? "_aware"
                  : "_threshold");
    });

/// Crash-fault fuzz: replicated m-LIGHT against the oracle only (the
/// baselines run unreplicated and would legitimately lose data).
TEST(FuzzCrash, ReplicatedMLightSurvivesRandomCrashes) {
  Rng rng(777);
  dht::Network net(64, 7);
  core::MLightConfig cfg;
  cfg.thetaSplit = 12;
  cfg.thetaMerge = 6;
  cfg.maxEdgeDepth = 18;
  cfg.replication = 2;
  core::MLightIndex ml(net, cfg);
  Oracle oracle;
  std::uint64_t nextId = 0;
  std::size_t joinSerial = 0;

  for (int op = 0; op < 1500; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.70) {
      Record r;
      r.key = randomPoint(rng, 2);
      r.id = nextId++;
      ml.insert(r);
      oracle.insert(r);
    } else if (dice < 0.85) {
      const Rect q = randomRange(rng, 2);
      auto got = ml.rangeQuery(q).records;
      Oracle::sortById(got);
      ASSERT_EQ(got, oracle.rangeQuery(q)) << "op " << op;
    } else if (dice < 0.93 && net.livePhysicalCount() > 32) {
      net.crashPeer(net.peers()[rng.below(net.peerCount())]);
      ASSERT_EQ(ml.store().lostBuckets(), 0u) << "op " << op;
    } else {
      net.addPeer("crash-joiner-" + std::to_string(joinSerial++));
    }
  }
  ml.checkInvariants();
  ASSERT_EQ(ml.size(), oracle.size());
}

}  // namespace
}  // namespace mlight
