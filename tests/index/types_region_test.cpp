// Tests for the shared index types: WaveLatency arithmetic, CostMeter
// algebra, and cross-scheme latency-stat sanity.
#include <gtest/gtest.h>

#include "dht/network.h"
#include "dst/dst_index.h"
#include "index/types.h"
#include "mlight/index.h"
#include "pht/pht_index.h"
#include "workload/datasets.h"

namespace mlight::index {
namespace {

using mlight::dht::CostMeter;
using mlight::dht::Network;
using mlight::dht::RingId;

TEST(WaveLatency, EmptyWaveIsFree) {
  WaveLatency wave;
  EXPECT_DOUBLE_EQ(wave.totalMs(1.0), 0.0);
}

TEST(WaveLatency, SingleMessageHasNoSerializationPenalty) {
  WaveLatency wave;
  wave.add(RingId{1}, 42.0);
  EXPECT_DOUBLE_EQ(wave.totalMs(1.0), 42.0);
}

TEST(WaveLatency, ParallelSendersDoNotSerializeEachOther) {
  WaveLatency wave;
  wave.add(RingId{1}, 40.0);
  wave.add(RingId{2}, 60.0);
  wave.add(RingId{3}, 50.0);
  // Three distinct senders, one message each: just the slowest path.
  EXPECT_DOUBLE_EQ(wave.totalMs(5.0), 60.0);
}

TEST(WaveLatency, BurstsSerializeAtTheSender) {
  WaveLatency wave;
  for (int i = 0; i < 100; ++i) wave.add(RingId{7}, 30.0);
  // 100 messages from one peer: 99 serialization slots + the path.
  EXPECT_DOUBLE_EQ(wave.totalMs(2.0), 30.0 + 99 * 2.0);
}

TEST(WaveLatency, MixedBurstsTakeTheWorstSender) {
  WaveLatency wave;
  for (int i = 0; i < 10; ++i) wave.add(RingId{1}, 20.0);
  wave.add(RingId{2}, 90.0);
  EXPECT_DOUBLE_EQ(wave.totalMs(1.0), 90.0 + 9 * 1.0);
}

TEST(CostMeter, AdditionAndSubtraction) {
  CostMeter a;
  a.lookups = 10;
  a.hops = 30;
  a.bytesMoved = 1000;
  a.recordsMoved = 5;
  CostMeter b;
  b.lookups = 4;
  b.hops = 12;
  b.bytesMoved = 400;
  b.recordsMoved = 2;
  CostMeter sum = a;
  sum += b;
  EXPECT_EQ(sum.lookups, 14u);
  EXPECT_EQ(sum.hops, 42u);
  const CostMeter diff = sum - b;
  EXPECT_EQ(diff.lookups, a.lookups);
  EXPECT_EQ(diff.bytesMoved, a.bytesMoved);
  EXPECT_EQ(diff.recordsMoved, a.recordsMoved);
}

TEST(LatencyStats, AllSchemesReportPositiveQueryLatency) {
  Network net(64);
  core::MLightConfig mc;
  mc.thetaSplit = 20;
  mc.thetaMerge = 10;
  core::MLightIndex ml(net, mc);
  pht::PhtConfig pc;
  pc.thetaSplit = 20;
  pc.thetaMerge = 10;
  pht::PhtIndex ph(net, pc);
  dst::DstConfig dc;
  dc.maxDepth = 20;
  dc.gamma = 20;
  dst::DstIndex ds(net, dc);
  for (const auto& r : workload::uniformDataset(500, 2, 99)) {
    ml.insert(r);
    ph.insert(r);
    ds.insert(r);
  }
  const common::Rect q(common::Point{0.2, 0.2}, common::Point{0.6, 0.6});
  for (const auto& res :
       {ml.rangeQuery(q), ph.rangeQuery(q), ds.rangeQuery(q)}) {
    EXPECT_GT(res.stats.latencyMs, 0.0);
    // Latency is bounded by (rounds x worst possible wave): each wave
    // costs at most max-link x max-hops + burst serialization; sanity
    // bound only, per the 10-100ms default model.
    EXPECT_LT(res.stats.latencyMs,
              static_cast<double>(res.stats.rounds) * 100.0 * 20.0 +
                  static_cast<double>(res.stats.cost.lookups) * 1.0);
  }
  // A point query from a random initiator takes at least one link worth
  // of time unless it luckily starts at the owner.
  const auto point = ml.pointQuery(common::Point{0.31, 0.77});
  EXPECT_GE(point.stats.latencyMs, 0.0);
}

}  // namespace
}  // namespace mlight::index
