// Tests for the shared index types: CostMeter algebra (including the
// RPC message counter), emergent latency behavior of the event core,
// and cross-scheme latency-stat sanity.
#include <gtest/gtest.h>

#include <algorithm>

#include "dht/network.h"
#include "dst/dst_index.h"
#include "index/types.h"
#include "mlight/index.h"
#include "pht/pht_index.h"
#include "workload/datasets.h"

namespace mlight::index {
namespace {

using mlight::dht::CostMeter;
using mlight::dht::Network;
using mlight::dht::RingId;
using mlight::dht::RpcDelivery;
using mlight::dht::RpcEnvelope;

TEST(CostMeter, AdditionAndSubtraction) {
  CostMeter a;
  a.lookups = 10;
  a.hops = 30;
  a.bytesMoved = 1000;
  a.recordsMoved = 5;
  a.messages = 9;
  CostMeter b;
  b.lookups = 4;
  b.hops = 12;
  b.bytesMoved = 400;
  b.recordsMoved = 2;
  b.messages = 3;
  CostMeter sum = a;
  sum += b;
  EXPECT_EQ(sum.lookups, 14u);
  EXPECT_EQ(sum.hops, 42u);
  EXPECT_EQ(sum.messages, 12u);
  const CostMeter diff = sum - b;
  EXPECT_EQ(diff.lookups, a.lookups);
  EXPECT_EQ(diff.bytesMoved, a.bytesMoved);
  EXPECT_EQ(diff.recordsMoved, a.recordsMoved);
  EXPECT_EQ(diff.messages, a.messages);
}

// The timeline analogues of the old analytic wave formula: a single
// message costs its path, parallel senders overlap, and a burst from one
// sender serializes at sendOverheadMs per envelope.

RpcEnvelope envelopeFrom(RingId from) {
  RpcEnvelope env;
  env.from = from;
  return env;
}

TEST(EmergentLatency, SingleMessageCostsItsPath) {
  Network net(32);
  net.beginTimeline();
  const RingId a = net.peers().front();
  const RingId key{0x123456789abcdef0ull};
  const auto route = net.sendRpc(key, envelopeFrom(a), {});
  net.run();
  EXPECT_DOUBLE_EQ(net.now(), route.ms);
}

TEST(EmergentLatency, ParallelSendersDoNotSerializeEachOther) {
  Network net(32);
  net.beginTimeline();
  // Distinct senders, one message each: completion = slowest path, no
  // cross-sender serialization penalty.
  double slowest = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto route = net.sendRpc(RingId{0x9999000011112222ull * (i + 1)},
                                   envelopeFrom(net.peers()[i]), {});
    slowest = std::max(slowest, route.ms);
  }
  net.run();
  EXPECT_DOUBLE_EQ(net.now(), slowest);
}

TEST(EmergentLatency, BurstsSerializeAtTheSender) {
  Network net(32);
  net.beginTimeline();
  const RingId sender = net.peers().front();
  // A wide fan-out from one peer: the i-th envelope departs i slots
  // late, so completion is at least (burst - 1) x overhead even though
  // the links themselves run in parallel.
  const std::size_t burst = 100;
  for (std::size_t i = 0; i < burst; ++i) {
    net.sendRpc(RingId{0x5555aaaa5555aaaaull + 0x97531ull * i},
                envelopeFrom(sender), {});
  }
  net.run();
  EXPECT_GE(net.now(), static_cast<double>(burst - 1) * net.sendOverheadMs());
}

TEST(LatencyStats, AllSchemesReportPositiveQueryLatency) {
  Network net(64);
  core::MLightConfig mc;
  mc.thetaSplit = 20;
  mc.thetaMerge = 10;
  core::MLightIndex ml(net, mc);
  pht::PhtConfig pc;
  pc.thetaSplit = 20;
  pc.thetaMerge = 10;
  pht::PhtIndex ph(net, pc);
  dst::DstConfig dc;
  dc.maxDepth = 20;
  dc.gamma = 20;
  dst::DstIndex ds(net, dc);
  for (const auto& r : workload::uniformDataset(500, 2, 99)) {
    ml.insert(r);
    ph.insert(r);
    ds.insert(r);
  }
  const common::Rect q(common::Point{0.2, 0.2}, common::Point{0.6, 0.6});
  for (const auto& res :
       {ml.rangeQuery(q), ph.rangeQuery(q), ds.rangeQuery(q)}) {
    EXPECT_GT(res.stats.latencyMs, 0.0);
    // Latency is bounded by (rounds x worst possible wave): each wave
    // costs at most max-link x max-hops + burst serialization; sanity
    // bound only, per the 10-100ms default model.
    EXPECT_LT(res.stats.latencyMs,
              static_cast<double>(res.stats.rounds) * 100.0 * 20.0 +
                  static_cast<double>(res.stats.cost.lookups) * 1.0);
  }
  // A point query from a random initiator takes at least one link worth
  // of time unless it luckily starts at the owner.
  const auto point = ml.pointQuery(common::Point{0.31, 0.77});
  EXPECT_GE(point.stats.latencyMs, 0.0);
}

}  // namespace
}  // namespace mlight::index
