#include "dht/network.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/rng.h"

namespace mlight::dht {
namespace {

TEST(RingId, ClockwiseWrapsModulo) {
  EXPECT_EQ(clockwise(RingId{10}, RingId{15}), 5u);
  EXPECT_EQ(clockwise(RingId{15}, RingId{10}),
            std::numeric_limits<std::uint64_t>::max() - 4);
  EXPECT_EQ(clockwise(RingId{7}, RingId{7}), 0u);
}

TEST(RingId, InArcHalfOpen) {
  EXPECT_TRUE(inArc(RingId{5}, RingId{0}, RingId{10}));
  EXPECT_TRUE(inArc(RingId{10}, RingId{0}, RingId{10}));
  EXPECT_FALSE(inArc(RingId{0}, RingId{0}, RingId{10}));
  // Wrapping arc.
  EXPECT_TRUE(inArc(RingId{2}, RingId{~0ull - 5}, RingId{10}));
  EXPECT_FALSE(inArc(RingId{100}, RingId{~0ull - 5}, RingId{10}));
}

TEST(Network, ConstructionPlacesDistinctSortedPeers) {
  Network net(128);
  EXPECT_EQ(net.peerCount(), 128u);
  const auto& peers = net.peers();
  for (std::size_t i = 1; i < peers.size(); ++i) {
    EXPECT_LT(peers[i - 1], peers[i]);
  }
}

TEST(Network, ResponsibleIsPredecessorMapping) {
  // Paper §3.1: key goes to the peer whose id is less than but closest
  // to hash(κ).
  Network net(16);
  const auto& peers = net.peers();
  // A key exactly on a peer id belongs to that peer.
  EXPECT_EQ(net.responsible(peers[3]), peers[3]);
  // A key just above a peer id belongs to that peer.
  EXPECT_EQ(net.responsible(RingId{peers[3].value + 1}), peers[3]);
  // A key below the smallest peer wraps to the largest.
  if (peers.front().value > 0) {
    EXPECT_EQ(net.responsible(RingId{peers.front().value - 1}),
              peers.back());
  }
  EXPECT_EQ(net.responsible(RingId{0}),
            peers.front().value == 0 ? peers.front() : peers.back());
}

TEST(Network, LookupReachesResponsibleWithBoundedHops) {
  Network net(128);
  mlight::common::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const RingId key{rng.next()};
    const RingId initiator = net.peers()[rng.below(net.peerCount())];
    const auto res = net.lookup(initiator, key);
    EXPECT_EQ(res.owner, net.responsible(key));
  }
  // Greedy finger routing is O(log n): with 128 peers, hops should stay
  // well below 2*log2(128) = 14.
  EXPECT_LE(net.maxHopsSeen(), 14u);
}

TEST(Network, LookupFromOwnerIsZeroHops) {
  Network net(32);
  const RingId key{12345};
  const RingId owner = net.responsible(key);
  const auto res = net.lookup(owner, key);
  EXPECT_EQ(res.hops, 0u);
}

TEST(Network, AverageHopsGrowLogarithmically) {
  mlight::common::Rng rng(7);
  auto avgHops = [&](std::size_t n) {
    Network net(n);
    std::uint64_t hops = 0;
    const int kLookups = 2000;
    for (int i = 0; i < kLookups; ++i) {
      const RingId key{rng.next()};
      hops += net.lookup(net.peers()[rng.below(n)], key).hops;
    }
    return static_cast<double>(hops) / kLookups;
  };
  const double h16 = avgHops(16);
  const double h256 = avgHops(256);
  EXPECT_GT(h256, h16);            // grows with n...
  EXPECT_LT(h256, 3.0 * h16);      // ...but far slower than linearly
  EXPECT_LT(h256, 10.0);           // ~log2(256)/2 + slack
}

TEST(Network, KeysSpreadOverPeers) {
  Network net(128);
  std::map<RingId, int> load;
  for (int i = 0; i < 20000; ++i) {
    load[net.responsibleForKey("key:" + std::to_string(i))]++;
  }
  // SHA-1 placement: most peers get something; no peer hoards.
  EXPECT_GT(load.size(), 100u);
  for (const auto& [peer, count] : load) {
    EXPECT_LT(count, 20000 / 10);
  }
}

TEST(Network, CostMeterCountsLookupsAndHops) {
  Network net(64);
  CostMeter meter;
  {
    MeterScope scope(net, meter);
    net.lookupKey(net.peers()[0], "a");
    net.lookupKey(net.peers()[1], "b");
  }
  EXPECT_EQ(meter.lookups, 2u);
  EXPECT_GE(meter.hops, meter.lookups == 0 ? 0u : 0u);
  // Outside the scope nothing is metered into `meter`.
  net.lookupKey(net.peers()[2], "c");
  EXPECT_EQ(meter.lookups, 2u);
  EXPECT_EQ(net.totalCost().lookups, 3u);
}

TEST(Network, MeterScopeRestoresPreviousMeter) {
  Network net(8);
  CostMeter outer;
  CostMeter inner;
  MeterScope a(net, outer);
  {
    MeterScope b(net, inner);
    net.lookupKey(net.peers()[0], "x");
  }
  net.lookupKey(net.peers()[0], "y");
  EXPECT_EQ(inner.lookups, 1u);
  EXPECT_EQ(outer.lookups, 1u);
}

TEST(Network, ShipPayloadIgnoresSamePeer) {
  Network net(4);
  CostMeter meter;
  MeterScope scope(net, meter);
  net.shipPayload(net.peers()[0], net.peers()[0], 1000, 10);
  EXPECT_EQ(meter.bytesMoved, 0u);
  net.shipPayload(net.peers()[0], net.peers()[1], 1000, 10);
  EXPECT_EQ(meter.bytesMoved, 1000u);
  EXPECT_EQ(meter.recordsMoved, 10u);
}

TEST(Network, AddPeerChangesResponsibility) {
  Network net(8);
  std::map<std::string, RingId> before;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    before[key] = net.responsibleForKey(key);
  }
  const RingId added = net.addPeer("joiner:1");
  EXPECT_EQ(net.peerCount(), 9u);
  int changed = 0;
  for (const auto& [key, owner] : before) {
    const RingId now = net.responsibleForKey(key);
    if (now != owner) {
      ++changed;
      EXPECT_EQ(now, added);  // only the new peer can take keys
    }
  }
  EXPECT_GT(changed, 0);
}

TEST(Network, RemovePeerHandsKeysToNeighbors) {
  Network net(8);
  const RingId victim = net.peers()[3];
  EXPECT_TRUE(net.removePeer(victim));
  EXPECT_EQ(net.peerCount(), 7u);
  for (const RingId p : net.peers()) EXPECT_NE(p, victim);
  // Lookups still resolve.
  const auto res = net.lookupKey(net.peers()[0], "anything");
  EXPECT_EQ(res.owner, net.responsibleForKey("anything"));
}

TEST(Network, RemoveUnknownOrLastPeerFails) {
  Network net(2);
  EXPECT_FALSE(net.removePeer(RingId{999999}));
  EXPECT_TRUE(net.removePeer(net.peers()[0]));
  EXPECT_FALSE(net.removePeer(net.peers()[0]));  // last one
}

TEST(Network, RebalanceCallbackFiresOnMembershipChange) {
  Network net(4);
  int calls = 0;
  const auto handle = net.registerStore(
      [&](const Network::MembershipChange&) { ++calls; });
  net.addPeer("x");
  EXPECT_EQ(calls, 1);
  net.removePeer(net.peers()[0]);
  EXPECT_EQ(calls, 2);
  net.unregisterStore(handle);
  net.addPeer("y");
  EXPECT_EQ(calls, 2);
}

TEST(Network, SinglePeerNetworkRoutesTrivially) {
  Network net(1);
  const auto res = net.lookupKey(net.peers()[0], "k");
  EXPECT_EQ(res.owner, net.peers()[0]);
  EXPECT_EQ(res.hops, 0u);
}

TEST(Network, RandomPeerIsAMember) {
  Network net(16, 9);
  std::set<RingId> seen;
  for (int i = 0; i < 300; ++i) seen.insert(net.randomPeer());
  EXPECT_GT(seen.size(), 10u);
  for (const RingId p : seen) {
    EXPECT_TRUE(std::binary_search(net.peers().begin(), net.peers().end(),
                                   p));
  }
}

}  // namespace
}  // namespace mlight::dht
