// Tests for the discrete-event RPC core: scheduler ordering, envelope
// serde, the per-RPC message accounting contract, and the §6 acceptance
// property that lookahead h >= 2 strictly shrinks query rounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/serde.h"
#include "dht/network.h"
#include "dht/rpc.h"
#include "dht/sim.h"
#include "mlight/index.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace mlight::dht {
namespace {

TEST(SimScheduler, FiresInTimeThenIssueOrder) {
  SimScheduler sched;
  // This test pins the *default* same-time order (issue order), which
  // only holds with the tie shuffle off — force seed 0 so the test
  // still passes when CI perturbs the whole suite via
  // MLIGHT_SCHED_SHUFFLE_SEED (same-time order is then deliberately
  // different, and SchedulePerturbation.* owns that behavior).
  sched.setTieShuffleSeed(0);
  std::vector<int> order;
  sched.schedule(5.0, [&] { order.push_back(3); });
  sched.schedule(1.0, [&] { order.push_back(1); });
  sched.schedule(5.0, [&] { order.push_back(4); });  // same time, later seq
  sched.schedule(2.0, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(sched.now(), 5.0);
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_EQ(sched.scheduledCount(), 4u);
}

TEST(SimScheduler, TieShufflePermutesSameTimeEvents) {
  // A nonzero shuffle seed fires same-time events in a seeded
  // permutation of issue order: replayable for a given seed, a pure
  // reordering (no event gained or lost), and actually different from
  // FIFO for at least one seed.
  auto runWith = [](std::uint64_t seed) {
    SimScheduler sched;
    sched.setTieShuffleSeed(seed);
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      sched.schedule(1.0, [&order, i] { order.push_back(i); });
    }
    sched.run();
    return order;
  };
  const std::vector<int> fifo = runWith(0);
  EXPECT_EQ(fifo, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  bool anyDiffer = false;
  for (std::uint64_t seed : {17ull, 23ull, 71ull}) {
    const std::vector<int> shuffled = runWith(seed);
    EXPECT_EQ(runWith(seed), shuffled);  // replayable per seed
    std::vector<int> sorted = shuffled;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, fifo);  // a permutation, nothing dropped
    anyDiffer = anyDiffer || shuffled != fifo;
  }
  EXPECT_TRUE(anyDiffer);
}

TEST(SimScheduler, PastTimestampsClampToNow) {
  SimScheduler sched;
  sched.schedule(10.0, [] {});
  sched.run();
  // An event stamped in the past runs at `now`: the clock never rewinds.
  double firedAt = -1.0;
  sched.schedule(3.0, [&] { firedAt = sched.now(); });
  sched.run();
  EXPECT_DOUBLE_EQ(firedAt, 10.0);
  EXPECT_DOUBLE_EQ(sched.now(), 10.0);
}

TEST(SimScheduler, CallbacksMayScheduleAndPump) {
  // The synchronous store facade pumps run() from inside handlers; the
  // scheduler must tolerate re-entrant draining.
  SimScheduler sched;
  int depth = 0;
  sched.schedule(1.0, [&] {
    sched.schedule(2.0, [&] {
      ++depth;
      sched.schedule(3.0, [&] { ++depth; });
      sched.run();  // inner drain
    });
    sched.run();
  });
  sched.run();
  EXPECT_EQ(depth, 2);
  EXPECT_DOUBLE_EQ(sched.now(), 3.0);
}

TEST(RpcEnvelope, SerializeRoundTripsAndMatchesWireSize) {
  RpcEnvelope env;
  env.id = 0xdeadbeefcafe1234ull;
  env.kind = RpcKind::kVisit;
  env.from = RingId{17};
  env.to = RingId{99};
  env.round = 7;
  env.payload = {1, 2, 3, 4, 5};
  common::Writer w;
  env.serialize(w);
  const auto wire = std::move(w).take();
  EXPECT_EQ(wire.size(), env.wireSize());
  common::Reader r(wire);
  const RpcEnvelope back = RpcEnvelope::deserialize(r);
  EXPECT_TRUE(r.atEnd());
  EXPECT_EQ(back.id, env.id);
  EXPECT_EQ(back.kind, env.kind);
  EXPECT_EQ(back.from, env.from);
  EXPECT_EQ(back.to, env.to);
  EXPECT_EQ(back.round, env.round);
  EXPECT_EQ(back.payload, env.payload);
}

TEST(RpcEnvelope, RejectsUnknownKindAndTruncation) {
  RpcEnvelope env;
  env.payload = {42};
  common::Writer w;
  env.serialize(w);
  auto wire = std::move(w).take();
  // Byte 8 is the kind tag (after the 8-byte id).
  wire[8] = 0xee;
  common::Reader bad(wire);
  EXPECT_THROW(RpcEnvelope::deserialize(bad), common::SerdeError);
  wire[8] = static_cast<std::uint8_t>(RpcKind::kGet);
  wire.pop_back();  // truncate the payload
  common::Reader cut(wire);
  EXPECT_THROW(RpcEnvelope::deserialize(cut), common::SerdeError);
}

TEST(Network, SendRpcMetersExactlyOneMessage) {
  Network net(64);
  CostMeter meter;
  {
    MeterScope scope(net, meter);
    RpcEnvelope env;
    env.from = net.peers().front();
    net.sendRpc(RingId{0x1234123412341234ull}, std::move(env), {});
  }
  net.run();
  EXPECT_EQ(meter.messages, 1u);
  EXPECT_EQ(meter.lookups, 1u);  // routing an RPC is one DHT-lookup
  EXPECT_GE(meter.hops, 1u);
  EXPECT_EQ(meter.bytesMoved, 0u);  // header bytes are not payload traffic
}

TEST(Network, LegacyLookupAndShipPayloadSendNoRpc) {
  // The count-metric compatibility contract: lookup() and shipPayload()
  // meter exactly what they did before the event core existed, so the
  // `messages` column is purely additive.
  Network net(64);
  CostMeter meter;
  {
    MeterScope scope(net, meter);
    const auto a = net.peers().front();
    net.lookup(a, RingId{0x5555aaaa5555aaaaull});
    net.shipPayload(a, net.peers().back(), 128, 3);
  }
  EXPECT_EQ(meter.lookups, 1u);
  EXPECT_EQ(meter.bytesMoved, 128u);
  EXPECT_EQ(meter.recordsMoved, 3u);
  EXPECT_EQ(meter.messages, 0u);
}

TEST(Network, BeginTimelineDrainsAndResetsRounds) {
  Network net(32);
  RpcEnvelope env;
  env.from = net.peers().front();
  env.round = 5;
  bool delivered = false;
  net.sendRpc(RingId{0xabcdefull}, std::move(env),
              [&](const RpcDelivery&) { delivered = true; });
  EXPECT_GT(net.pendingEvents(), 0u);
  net.beginTimeline();
  EXPECT_TRUE(delivered);  // pending deliveries ran before the reset
  EXPECT_EQ(net.pendingEvents(), 0u);
  EXPECT_EQ(net.timelineMaxRound(), 0u);
}

// ISSUE 2 acceptance: on the same data, range queries with lookahead
// h >= 2 must finish in strictly fewer rounds than the basic h = 1
// algorithm — speculation flattens the sequential forwarding chain.
TEST(Lookahead, DeeperLookaheadStrictlyFewerRounds) {
  Network net(96);
  core::MLightConfig config;
  config.thetaSplit = 24;
  config.thetaMerge = 12;
  core::MLightIndex index(net, config);
  for (const auto& r : workload::uniformDataset(3000, 2, 71)) {
    index.insert(r);
  }
  const auto queries = workload::uniformRangeQueries(12, 2, 0.2, 2026);
  std::size_t roundsBasic = 0;
  std::size_t roundsPar = 0;
  std::size_t recordsBasic = 0;
  std::size_t recordsPar = 0;
  for (const auto& q : queries) {
    index.setLookahead(1);
    const auto basic = index.rangeQuery(q);
    index.setLookahead(2);
    const auto par = index.rangeQuery(q);
    roundsBasic += basic.stats.rounds;
    roundsPar += par.stats.rounds;
    recordsBasic += basic.records.size();
    recordsPar += par.records.size();
  }
  index.setLookahead(1);
  EXPECT_EQ(recordsBasic, recordsPar);  // identical answers
  EXPECT_LT(roundsPar, roundsBasic);    // strictly fewer rounds with h >= 2
}

}  // namespace
}  // namespace mlight::dht
