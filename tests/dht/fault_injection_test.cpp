// Fault-injection layer: seeded loss/jitter, RPC timeout/retry with
// dead letters, crash-while-in-flight ghost suppression, and the
// DistributedStore's replica failover + read-repair on top of it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/bitstring.h"
#include "common/check.h"
#include "common/serde.h"
#include "dht/network.h"
#include "dht/rpc.h"
#include "dht/sim.h"
#include "store/distributed_store.h"

namespace mlight::dht {
namespace {

using mlight::common::BitString;

TEST(SimScheduler, CancelDiscardsWithoutAdvancingClock) {
  SimScheduler sched;
  bool ran = false;
  const std::uint64_t seq = sched.schedule(100.0, [&] { ran = true; });
  sched.schedule(5.0, [] {});
  EXPECT_EQ(sched.pending(), 2u);
  sched.cancel(seq);
  EXPECT_EQ(sched.pending(), 1u);
  sched.run();
  EXPECT_FALSE(ran);
  // The cancelled event's timestamp must not pull the clock forward.
  EXPECT_DOUBLE_EQ(sched.now(), 5.0);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(FaultSeed, ReadsEnvironmentWithFallback) {
  ::unsetenv("MLIGHT_FAULT_SEED");
  EXPECT_EQ(faultSeedFromEnv(77), 77u);
  ::setenv("MLIGHT_FAULT_SEED", "123456789", 1);
  EXPECT_EQ(faultSeedFromEnv(77), 123456789u);
  ::unsetenv("MLIGHT_FAULT_SEED");
}

TEST(FaultSeed, MalformedEnvironmentFailsLoudly) {
  // A malformed seed silently falling back would make a CI fault-matrix
  // run test something other than what its matrix cell claims — reject
  // instead of guessing.  (Trailing garbage was the observed bug: strtoull
  // happily parses the "123" of "123abc".)
  for (const char* bad : {"123abc", "abc", "-5", "+5", " 123", "123 ",
                          "0x10", "12.5",
                          "99999999999999999999" /* > 2^64-1 */}) {
    ::setenv("MLIGHT_FAULT_SEED", bad, 1);
    EXPECT_THROW(faultSeedFromEnv(7), mlight::common::CheckFailure)
        << "accepted \"" << bad << '"';
  }
  // The full valid range still parses.
  ::setenv("MLIGHT_FAULT_SEED", "0", 1);
  EXPECT_EQ(faultSeedFromEnv(7), 0u);
  ::setenv("MLIGHT_FAULT_SEED", "18446744073709551615", 1);
  EXPECT_EQ(faultSeedFromEnv(7), 18446744073709551615ull);
  // Unset and empty both mean "use the fallback", not an error.
  ::setenv("MLIGHT_FAULT_SEED", "", 1);
  EXPECT_EQ(faultSeedFromEnv(7), 7u);
  ::unsetenv("MLIGHT_FAULT_SEED");
}

// The scheduler env knobs share MLIGHT_FAULT_SEED's contract since the
// transport PR: malformed values fail loudly instead of silently running
// the fallback executor (a CI shard-matrix cell that typos its value
// would otherwise test the serial path while claiming N shards).
TEST(SimShardsEnv, ReadsEnvironmentWithFallbackAndClamp) {
  ::unsetenv("MLIGHT_SIM_SHARDS");
  EXPECT_EQ(simShardsFromEnv(3), 3u);
  ::setenv("MLIGHT_SIM_SHARDS", "", 1);
  EXPECT_EQ(simShardsFromEnv(3), 3u);
  ::setenv("MLIGHT_SIM_SHARDS", "4", 1);
  EXPECT_EQ(simShardsFromEnv(3), 4u);
  ::setenv("MLIGHT_SIM_SHARDS", "65", 1);
  EXPECT_EQ(simShardsFromEnv(3), 64u);  // documented [1, 64] clamp
  ::unsetenv("MLIGHT_SIM_SHARDS");
}

TEST(SimShardsEnv, MalformedEnvironmentFailsLoudly) {
  for (const char* bad : {"4abc", "abc", "-4", "+4", " 4", "4 ", "0x4",
                          "4.5", "0", "99999999999999999999"}) {
    ::setenv("MLIGHT_SIM_SHARDS", bad, 1);
    EXPECT_THROW(simShardsFromEnv(3), mlight::common::CheckFailure)
        << "accepted \"" << bad << '"';
  }
  ::unsetenv("MLIGHT_SIM_SHARDS");
}

TEST(ShuffleSeedEnv, MalformedEnvironmentFailsLoudly) {
  for (const char* bad : {"7abc", "abc", "-7", " 7", "0x7",
                          "99999999999999999999"}) {
    ::setenv("MLIGHT_SCHED_SHUFFLE_SEED", bad, 1);
    EXPECT_THROW(schedShuffleSeedFromEnv(7), mlight::common::CheckFailure)
        << "accepted \"" << bad << '"';
  }
  ::setenv("MLIGHT_SCHED_SHUFFLE_SEED", "42", 1);
  EXPECT_EQ(schedShuffleSeedFromEnv(7), 42u);
  ::unsetenv("MLIGHT_SCHED_SHUFFLE_SEED");
  EXPECT_EQ(schedShuffleSeedFromEnv(7), 7u);
}

RpcEnvelope makeEnv(RingId from, std::uint32_t round = 1) {
  RpcEnvelope env;
  env.kind = RpcKind::kGet;
  env.from = from;
  env.round = round;
  env.payload = {1, 2, 3};
  return env;
}

TEST(FaultInjection, DisabledModelAddsNothing) {
  Network net(16);
  int delivered = 0;
  const RingId key = keyId("faults/none");
  net.sendRpc(key, makeEnv(net.peers()[0]),
              [&](const RpcDelivery&) { ++delivered; });
  net.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.deadLetterCount(), 0u);
  EXPECT_EQ(net.ghostDrops(), 0u);
  EXPECT_EQ(net.totalCost().retries, 0u);
}

TEST(FaultInjection, LossyLinkRetriesUntilDelivered) {
  Network net(16);
  FaultModel faults;
  faults.enabled = true;
  faults.lossProbability = 0.5;
  faults.maxAttempts = 32;  // enough that (1/2)^32 losses are impossible
  faults.seed = 9;
  net.setFaultModel(faults);
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    const RingId key = keyId("faults/lossy-" + std::to_string(i));
    net.sendRpc(key, makeEnv(net.peers()[i % 16]),
                [&](const RpcDelivery&) { ++delivered; });
  }
  net.run();
  EXPECT_EQ(delivered, 50);
  EXPECT_EQ(net.deadLetterCount(), 0u);
  // With p = 0.5 over 50 sends, retries are statistically certain.
  EXPECT_GT(net.totalCost().retries, 0u);
}

TEST(FaultInjection, TotalLossBecomesDeadLetter) {
  Network net(16);
  FaultModel faults;
  faults.enabled = true;
  faults.lossProbability = 1.0;
  faults.maxAttempts = 4;
  net.setFaultModel(faults);
  int delivered = 0;
  int failed = 0;
  std::size_t reportedAttempts = 0;
  const RingId key = keyId("faults/blackhole");
  net.sendRpc(
      key, makeEnv(net.peers()[0]),
      [&](const RpcDelivery&) { ++delivered; },
      [&](const RpcEnvelope&, std::size_t attempts) {
        ++failed;
        reportedAttempts = attempts;
      });
  net.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(reportedAttempts, 4u);
  EXPECT_EQ(net.deadLetterCount(), 1u);
  ASSERT_EQ(net.deadLetterLog().size(), 1u);
  EXPECT_EQ(net.deadLetterLog()[0].attempts, 4u);
  EXPECT_EQ(net.deadLetterLogSize(), 1u);
  EXPECT_EQ(net.deadLettersDropped(), 0u);
  // 4 attempts = the original send + 3 retries.
  EXPECT_EQ(net.totalCost().retries, 3u);
}

// The log is a ring: a flapping peer can dead-letter without bound, so
// only the most recent entries keep their full record, evictions are
// counted, and the all-time total (the digest-pinned counter) is
// unaffected by capacity.
TEST(DeadLetterRing, KeepsLatestEntriesAndCountsDrops) {
  DeadLetterRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    DeadLetter dl;
    dl.rpcId = i;
    dl.attempts = static_cast<std::size_t>(i);
    ring.record(dl);
  }
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  const std::vector<DeadLetter> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].rpcId, 6u + i);  // oldest retained -> newest
  }
}

TEST(DeadLetterRing, BelowCapacityRetainsEverythingInOrder) {
  DeadLetterRing ring;  // default capacity (64)
  for (std::uint64_t i = 0; i < 3; ++i) {
    DeadLetter dl;
    dl.rpcId = i;
    ring.record(dl);
  }
  EXPECT_EQ(ring.total(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.size(), 3u);
  const std::vector<DeadLetter> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].rpcId, 0u);
  EXPECT_EQ(snap[2].rpcId, 2u);
  ring.clear();
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_EQ(ring.size(), 0u);
}

TEST(DeadLetterRing, NetworkLogCapsAtRingCapacityTotalKeepsCounting) {
  Network net(16);
  FaultModel faults;
  faults.enabled = true;
  faults.lossProbability = 1.0;
  faults.maxAttempts = 1;  // every send dead-letters immediately
  net.setFaultModel(faults);
  const std::size_t kSends = DeadLetterRing::kDefaultCapacity + 40;
  for (std::size_t i = 0; i < kSends; ++i) {
    net.sendRpc(keyId("faults/flap-" + std::to_string(i)),
                makeEnv(net.peers()[i % 16]), [](const RpcDelivery&) {});
  }
  net.run();
  EXPECT_EQ(net.deadLetterCount(), kSends);
  EXPECT_EQ(net.deadLetterLogSize(), DeadLetterRing::kDefaultCapacity);
  EXPECT_EQ(net.deadLettersDropped(), kSends - DeadLetterRing::kDefaultCapacity);
  EXPECT_EQ(net.deadLetterLog().size(), DeadLetterRing::kDefaultCapacity);
}

TEST(FaultInjection, CrashInFlightSuppressesGhostDelivery) {
  Network net(16);
  FaultModel faults;
  faults.enabled = true;  // loss = 0: only the crash threatens delivery
  net.setFaultModel(faults);
  const RingId key = keyId("faults/crash-target");
  const RingId victim = net.responsible(key);
  RingId initiator{};
  for (const RingId p : net.peers()) {
    if (p != victim) {
      initiator = p;
      break;
    }
  }
  std::vector<RingId> deliveredAt;
  net.sendRpc(key, makeEnv(initiator), [&](const RpcDelivery& d) {
    deliveredAt.push_back(d.route.owner);
  });
  // The envelope is in flight; its addressee dies before the event fires.
  ASSERT_TRUE(net.crashPeer(victim));
  net.run();
  // No ghost: the original delivery was suppressed, the timeout re-routed
  // to the key's new owner, and the handler ran exactly once — there.
  EXPECT_GT(net.ghostDrops(), 0u);
  ASSERT_EQ(deliveredAt.size(), 1u);
  EXPECT_EQ(deliveredAt[0], net.responsible(key));
  EXPECT_NE(deliveredAt[0], victim);
  EXPECT_EQ(net.deadLetterCount(), 0u);
}

TEST(FaultInjection, SameSeedSameOutcomeDifferentSeedLikelyDiffers) {
  const auto runOnce = [](std::uint64_t seed) {
    Network net(16);
    FaultModel faults;
    faults.enabled = true;
    faults.lossProbability = 0.3;
    faults.jitterMs = 20.0;
    faults.maxAttempts = 16;
    faults.seed = seed;
    net.setFaultModel(faults);
    for (int i = 0; i < 40; ++i) {
      net.sendRpc(keyId("faults/det-" + std::to_string(i)),
                  makeEnv(net.peers()[i % 16]), [](const RpcDelivery&) {});
    }
    net.run();
    return std::pair<std::uint64_t, double>{net.totalCost().retries,
                                            net.now()};
  };
  const auto a = runOnce(5);
  const auto b = runOnce(5);
  const auto c = runOnce(6);
  EXPECT_EQ(a, b);   // same seed: byte-exact timeline
  EXPECT_NE(a, c);   // different seed: different loss/jitter draws
}

// --- Store-level failover ------------------------------------------------

struct FakeBucket {
  int value = 0;
  std::size_t byteSize() const noexcept { return 8; }
  std::size_t recordCount() const noexcept { return 1; }
  void serialize(mlight::common::Writer& w) const {
    w.writeU32(static_cast<std::uint32_t>(value));
    w.writeU32(0);
  }
  static FakeBucket deserialize(mlight::common::Reader& r) {
    FakeBucket b;
    b.value = static_cast<int>(r.readU32());
    r.readU32();
    return b;
  }
};

BitString label(int i) {
  std::string s;
  for (int b = 0; b < 12; ++b) s.push_back((i >> b) % 2 ? '1' : '0');
  return BitString::fromString(s);
}

TEST(Failover, ReadRepairAfterCrashUnderOnReadPolicy) {
  Network net(24);
  store::DistributedStore<FakeBucket> store(net, "f/", 2,
                                            store::RepairPolicy::kOnRead);
  for (int i = 0; i < 64; ++i) store.placeLocal(label(i), FakeBucket{i});
  const BitString target = label(3);
  const RingId primary = store.ownerOf(target);
  ASSERT_TRUE(net.crashPeer(primary));
  ASSERT_EQ(store.lostBuckets(), 0u);  // the replica survived
  // Deferred repair: the bucket is degraded until something reads it.
  EXPECT_LT(store.holdersOf(target).size(), 2u);

  RingId reader{};
  for (const RingId p : net.peers()) {
    if (p != store.ownerOf(target)) {
      reader = p;
      break;
    }
  }
  const auto found = store.routeAndFind(reader, target);
  ASSERT_NE(found.bucket, nullptr);
  EXPECT_FALSE(found.failed);
  EXPECT_EQ(found.bucket->value, 3);
  EXPECT_GT(store.failoverReads(), 0u);
  EXPECT_GT(store.readRepairs(), 0u);
  // Read-repair restored R copies, on the peers the current ring names.
  EXPECT_EQ(store.holdersOf(target).size(), 2u);
  const auto current = store.copyHolders(target);
  EXPECT_EQ(store.holdersOf(target), current);
}

TEST(Failover, TotalLossReadFailsInsteadOfAnsweringNull) {
  Network net(16);
  store::DistributedStore<FakeBucket> store(net, "f/", 1);
  store.placeLocal(label(1), FakeBucket{1});
  ASSERT_TRUE(net.crashPeer(store.ownerOf(label(1))));
  ASSERT_EQ(store.lostBuckets(), 1u);
  bool invoked = false;
  store.asyncGet(net.peers()[0], label(1), 1,
                 [&](FakeBucket*, const RpcDelivery&) { invoked = true; });
  net.run();
  EXPECT_FALSE(invoked);  // a mourned label must not masquerade as NULL
  EXPECT_EQ(store.failedReads(), 1u);
  const auto found = store.routeAndFind(net.peers()[0], label(1));
  EXPECT_TRUE(found.failed);
  EXPECT_EQ(found.bucket, nullptr);
  EXPECT_EQ(store.failedReads(), 2u);
}

TEST(Failover, NeverStoredLabelIsAuthoritativeNull) {
  Network net(16);
  store::DistributedStore<FakeBucket> store(net, "f/", 2);
  const auto found = store.routeAndFind(net.peers()[0], label(9));
  EXPECT_FALSE(found.failed);
  EXPECT_EQ(found.bucket, nullptr);
  EXPECT_EQ(store.failedReads(), 0u);
}

TEST(Failover, DeadLetterFailsOverToSurvivingReplica) {
  Network net(24);
  store::DistributedStore<FakeBucket> store(net, "f/", 2);
  store.placeLocal(label(5), FakeBucket{5});
  const auto holders = store.copyHolders(label(5));
  ASSERT_EQ(holders.size(), 2u);
  // Every attempt is lost: the primary read dead-letters, and the store
  // walks to the replica holder — whose read also dead-letters, so the
  // read fails only after *both* candidates were tried.
  FaultModel faults;
  faults.enabled = true;
  faults.lossProbability = 1.0;
  faults.maxAttempts = 2;
  net.setFaultModel(faults);
  bool invoked = false;
  store.asyncGet(holders[0], label(5), 1,
                 [&](FakeBucket*, const RpcDelivery&) { invoked = true; });
  net.run();
  EXPECT_FALSE(invoked);
  EXPECT_EQ(store.failedReads(), 1u);
  EXPECT_EQ(net.deadLetterCount(), 2u);  // one per candidate holder

  // With loss off again the same read succeeds (data never moved).
  faults.lossProbability = 0.0;
  net.setFaultModel(faults);
  const auto found = store.routeAndFind(holders[0], label(5));
  ASSERT_NE(found.bucket, nullptr);
  EXPECT_EQ(found.bucket->value, 5);
}

TEST(Failover, AsyncPutResolvesHoldersAtDeliveryTime) {
  Network net(8);
  store::DistributedStore<FakeBucket> store(net, "f/", 1);
  // Issue puts for many labels but do NOT pump the loop: the envelopes
  // are in flight while the ring changes under them.
  for (int i = 0; i < 64; ++i) {
    store.asyncPut(net.peers()[0], label(i), FakeBucket{i});
  }
  std::vector<RingId> preJoinOwners;
  for (int i = 0; i < 64; ++i) preJoinOwners.push_back(store.ownerOf(label(i)));
  net.addPeer("late-joiner");
  net.run();
  // The join moved some key's ownership while the puts were in flight...
  bool anyMoved = false;
  for (int i = 0; i < 64; ++i) {
    if (store.ownerOf(label(i)) != preJoinOwners[i]) anyMoved = true;
  }
  ASSERT_TRUE(anyMoved);
  // ...and every delivered entry recorded the post-join holder, not the
  // stale issue-time capture.
  for (int i = 0; i < 64; ++i) {
    const auto holders = store.holdersOf(label(i));
    ASSERT_EQ(holders.size(), 1u);
    EXPECT_EQ(holders[0], store.ownerOf(label(i)));
  }
}

TEST(Failover, UnderReplicationIsCountedNotSilent) {
  Network net(2);
  store::DistributedStore<FakeBucket> store(net, "f/", 5);
  store.placeLocal(label(1), FakeBucket{1});
  EXPECT_GT(store.underReplicatedPlacements(), 0u);
  // The copies that *could* be placed are still distinct peers.
  const auto holders = store.holdersOf(label(1));
  EXPECT_GE(holders.size(), 1u);
  EXPECT_LE(holders.size(), 2u);
}

}  // namespace
}  // namespace mlight::dht
