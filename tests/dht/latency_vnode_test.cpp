// Tests for the link-latency model and virtual-node support.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "dht/network.h"

namespace mlight::dht {
namespace {

TEST(Latency, LinkMsIsSymmetricDeterministicAndInRange) {
  Network net(32);
  const auto& peers = net.peers();
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      const double ms = net.linkMs(peers[i], peers[j]);
      if (i == j) {
        EXPECT_EQ(ms, 0.0);
      } else {
        EXPECT_GE(ms, 10.0);
        EXPECT_LT(ms, 100.0);
        EXPECT_EQ(ms, net.linkMs(peers[j], peers[i]));  // symmetric
        EXPECT_EQ(ms, net.linkMs(peers[i], peers[j]));  // deterministic
      }
    }
  }
}

TEST(Latency, CustomModelRangeRespected) {
  Network net(16, 1, 1, LatencyModel{0.1, 1.0});
  const auto& peers = net.peers();
  for (std::size_t i = 1; i < peers.size(); ++i) {
    const double ms = net.linkMs(peers[0], peers[i]);
    EXPECT_GE(ms, 0.1);
    EXPECT_LT(ms, 1.0);
  }
}

TEST(Latency, LookupMsAccumulatesOverHops) {
  Network net(64);
  mlight::common::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const RingId key{rng.next()};
    const auto res = net.lookup(net.peers()[rng.below(64)], key);
    if (res.hops == 0) {
      EXPECT_EQ(res.ms, 0.0);
    } else {
      // Each hop contributes 10..100 ms.
      EXPECT_GE(res.ms, 10.0 * static_cast<double>(res.hops));
      EXPECT_LT(res.ms, 100.0 * static_cast<double>(res.hops));
    }
  }
}

TEST(Latency, CoLocatedVnodesAreFreeLinks) {
  Network net(4, 1, 8);
  // Find two vnodes of the same physical peer.
  const auto& peers = net.peers();
  for (std::size_t i = 0; i < peers.size(); ++i) {
    for (std::size_t j = i + 1; j < peers.size(); ++j) {
      if (net.physicalOf(peers[i]) == net.physicalOf(peers[j])) {
        EXPECT_EQ(net.linkMs(peers[i], peers[j]), 0.0);
        return;
      }
    }
  }
  FAIL() << "no co-located vnodes found";
}

TEST(VirtualNodes, RingHasPeerTimesVnodePositions) {
  Network net(16, 1, 8);
  EXPECT_EQ(net.peerCount(), 16u * 8u);
  EXPECT_EQ(net.physicalCount(), 16u);
  EXPECT_EQ(net.livePhysicalCount(), 16u);
  // Every vnode maps to a valid physical index.
  for (const RingId v : net.peers()) {
    EXPECT_LT(net.physicalOf(v), 16u);
  }
}

TEST(VirtualNodes, SmoothKeyDistribution) {
  // The point of vnodes: per-physical-peer key share concentrates around
  // the mean much more tightly than with single positions.
  auto relVariance = [](Network& net) {
    std::map<std::size_t, int> load;
    for (int i = 0; i < 30000; ++i) {
      load[net.physicalOf(
          net.responsibleForKey("k" + std::to_string(i)))]++;
    }
    double sum = 0.0;
    double sq = 0.0;
    for (std::size_t p = 0; p < net.physicalCount(); ++p) {
      const double v = load.contains(p) ? load[p] : 0;
      sum += v;
      sq += v * v;
    }
    const double n = static_cast<double>(net.physicalCount());
    const double mean = sum / n;
    return (sq / n - mean * mean) / (mean * mean);
  };
  Network flat(64, 1, 1);
  Network smooth(64, 1, 16);
  EXPECT_LT(relVariance(smooth), 0.5 * relVariance(flat));
}

TEST(VirtualNodes, RemovePeerDropsAllItsVnodes) {
  Network net(8, 1, 4);
  const RingId victim = net.peers()[5];
  const std::size_t victimPhysical = net.physicalOf(victim);
  EXPECT_TRUE(net.removePeer(victim));
  EXPECT_EQ(net.peerCount(), 7u * 4u);
  EXPECT_EQ(net.livePhysicalCount(), 7u);
  for (const RingId v : net.peers()) {
    EXPECT_NE(net.physicalOf(v), victimPhysical);
  }
}

TEST(VirtualNodes, CrashReportsAllVnodesInChange) {
  Network net(8, 1, 4);
  std::vector<RingId> removed;
  Network::MembershipChange::Kind kind{};
  net.registerStore([&](const Network::MembershipChange& change) {
    removed = change.removedVnodes;
    kind = change.kind;
  });
  net.crashPeer(net.peers()[0]);
  EXPECT_EQ(kind, Network::MembershipChange::Kind::kCrash);
  EXPECT_EQ(removed.size(), 4u);
}

TEST(VirtualNodes, GracefulLeaveReportsKind) {
  Network net(8, 1, 2);
  Network::MembershipChange::Kind kind{};
  net.registerStore([&](const Network::MembershipChange& change) {
    kind = change.kind;
  });
  net.removePeer(net.peers()[0]);
  EXPECT_EQ(kind, Network::MembershipChange::Kind::kGracefulLeave);
  net.addPeer("x");
  EXPECT_EQ(kind, Network::MembershipChange::Kind::kJoin);
}

}  // namespace
}  // namespace mlight::dht
