#include "dst/dst_index.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/zorder.h"
#include "index/oracle.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace mlight::dst {
namespace {

using mlight::common::Point;
using mlight::common::Rect;
using mlight::common::Rng;
using mlight::dht::CostMeter;
using mlight::dht::MeterScope;
using mlight::dht::Network;
using mlight::index::Oracle;
using mlight::index::Record;

Record rec(double x, double y, std::uint64_t id) {
  Record r;
  r.key = Point{x, y};
  r.id = id;
  r.payload = "p" + std::to_string(id);
  return r;
}

DstConfig smallConfig() {
  DstConfig cfg;
  cfg.maxDepth = 16;  // 8 quad levels: keeps tests fast
  cfg.gamma = 8;
  return cfg;
}

TEST(DstIndex, EmptyIndexAnswersEmptyQueries) {
  Network net(32);
  DstIndex index(net, smallConfig());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(
      index.rangeQuery(Rect(Point{0.1, 0.1}, Point{0.9, 0.9})).records.empty());
  EXPECT_TRUE(index.pointQuery(Point{0.3, 0.3}).records.empty());
}

TEST(DstIndex, InsertReplicatesAtEveryLevel) {
  Network net(32);
  DstIndex index(net, smallConfig());
  CostMeter meter;
  {
    MeterScope scope(net, meter);
    index.insert(rec(0.3, 0.7, 1));
  }
  // One DHT-lookup per level (root..leaf inclusive).
  EXPECT_EQ(meter.lookups, index.levels() + 1);
  // The record is stored at every level (none saturated yet): the
  // replication that makes DST maintenance an order of magnitude dearer.
  EXPECT_EQ(index.nodeCount(), index.levels() + 1);
  index.checkInvariants();
}

TEST(DstIndex, PointQueryIsSingleLookup) {
  Network net(32);
  DstIndex index(net, smallConfig());
  Rng rng(3);
  for (std::uint64_t i = 0; i < 100; ++i) {
    index.insert(rec(rng.uniform(), rng.uniform(), i));
  }
  const auto res = index.pointQuery(Point{0.25, 0.25});
  EXPECT_EQ(res.stats.cost.lookups, 1u);
  EXPECT_EQ(res.stats.rounds, 1u);
}

TEST(DstIndex, SaturationMarksNodesIncomplete) {
  Network net(32);
  DstConfig cfg = smallConfig();
  cfg.gamma = 4;
  DstIndex index(net, cfg);
  Rng rng(5);
  for (std::uint64_t i = 0; i < 50; ++i) {
    index.insert(rec(rng.uniform(), rng.uniform(), i));
  }
  index.checkInvariants();
  // The root must have saturated with 50 spread records and gamma=4.
  const DstNode* root = index.store().peek(mlight::common::BitString{});
  ASSERT_NE(root, nullptr);
  EXPECT_FALSE(root->complete);
  EXPECT_LE(root->records.size(), 4u);
}

TEST(DstIndex, RangeQueryMatchesOracle) {
  Network net(64);
  DstIndex index(net, smallConfig());
  Oracle oracle;
  Rng rng(11);
  for (std::uint64_t i = 0; i < 300; ++i) {
    const Record r = rec(rng.uniform(), rng.uniform(), i);
    index.insert(r);
    oracle.insert(r);
  }
  index.checkInvariants();
  for (double span : {0.0, 0.05, 0.2, 1.0}) {
    for (const Rect& q :
         mlight::workload::uniformRangeQueries(8, 2, span, 13)) {
      auto got = index.rangeQuery(q).records;
      Oracle::sortById(got);
      EXPECT_EQ(got, oracle.rangeQuery(q)) << q.toString();
    }
  }
}

TEST(DstIndex, RangeQueryMatchesOracleClustered) {
  Network net(64);
  DstIndex index(net, smallConfig());
  Oracle oracle;
  for (const Record& r :
       mlight::workload::clusteredDataset(400, 2, 3, 0.05, 17)) {
    index.insert(r);
    oracle.insert(r);
  }
  for (const Rect& q :
       mlight::workload::uniformRangeQueries(20, 2, 0.05, 19)) {
    auto got = index.rangeQuery(q).records;
    Oracle::sortById(got);
    EXPECT_EQ(got, oracle.rangeQuery(q));
  }
}

TEST(DstIndex, SmallCoveredRangeIsOneRound) {
  // DST's strength: a range that matches one unsaturated canonical node
  // resolves in a single round.
  Network net(32);
  DstConfig cfg = smallConfig();
  cfg.gamma = 100;
  DstIndex index(net, cfg);
  Rng rng(23);
  for (std::uint64_t i = 0; i < 50; ++i) {
    index.insert(rec(rng.uniform(), rng.uniform(), i));
  }
  // Exactly the top-left quad cell at level 1.
  const auto res = index.rangeQuery(Rect(Point{0.0, 0.5}, Point{0.5, 1.0}));
  EXPECT_EQ(res.stats.rounds, 1u);
  EXPECT_EQ(res.stats.cost.lookups, 1u);
}

TEST(DstIndex, DecompositionCoversRangeDisjointly) {
  Network net(8);
  DstIndex index(net, smallConfig());
  Rng rng(29);
  for (int i = 0; i < 50; ++i) {
    const double side = rng.uniform(0.05, 0.7);
    const double x = rng.uniform() * (1 - side);
    const double y = rng.uniform() * (1 - side);
    const Rect r(Point{x, y}, Point{x + side, y + side});
    const auto cells = index.decompose(r);
    EXPECT_FALSE(cells.empty());
    for (std::size_t a = 0; a < cells.size(); ++a) {
      const Rect ca = mlight::common::cellOfPath(cells[a], 2);
      EXPECT_TRUE(ca.intersects(r));
      for (std::size_t b = a + 1; b < cells.size(); ++b) {
        EXPECT_FALSE(
            ca.intersects(mlight::common::cellOfPath(cells[b], 2)));
      }
    }
    // Coverage: every grid point of r lies in some cell.
    for (int gx = 0; gx < 5; ++gx) {
      for (int gy = 0; gy < 5; ++gy) {
        const Point p{x + side * (0.1 + 0.19 * gx),
                      y + side * (0.1 + 0.19 * gy)};
        bool covered = false;
        for (const auto& cell : cells) {
          covered |= mlight::common::cellOfPath(cell, 2).contains(p);
        }
        EXPECT_TRUE(covered);
      }
    }
  }
}

TEST(DstIndex, LargeRangeDecomposesIntoManySubranges) {
  // The D=28 effect the paper calls out: when the static depth exceeds
  // the "real" tree depth, ranges shatter into very many canonical
  // pieces — the count scales with perimeter / 2^-levels.
  Network net(8);
  DstConfig fine = smallConfig();
  fine.maxDepth = 20;
  DstIndex deep(net, fine);
  DstConfig coarse = smallConfig();
  coarse.maxDepth = 12;
  DstIndex shallow(net, coarse);
  const Rect big(Point{0.101, 0.103}, Point{0.877, 0.879});
  const Rect small(Point{0.101, 0.103}, Point{0.151, 0.153});
  // Large ranges cost far more pieces than small ones (perimeter)...
  EXPECT_GT(deep.decompose(big).size(), 10u * deep.decompose(small).size());
  // ...and a deeper static tree multiplies the piece count for the same
  // query (each extra quad level doubles the boundary resolution).
  EXPECT_GT(deep.decompose(big).size(),
            8u * shallow.decompose(big).size());
}

TEST(DstIndex, EraseRemovesEverywhere) {
  Network net(32);
  DstIndex index(net, smallConfig());
  Rng rng(31);
  std::vector<Record> records;
  for (std::uint64_t i = 0; i < 100; ++i) {
    records.push_back(rec(rng.uniform(), rng.uniform(), i));
    index.insert(records.back());
  }
  for (const Record& r : records) EXPECT_EQ(index.erase(r.key, r.id), 1u);
  EXPECT_EQ(index.size(), 0u);
  index.checkInvariants();
  EXPECT_TRUE(index.rangeQuery(Rect::unit(2)).records.empty());
}

TEST(DstIndex, SurvivesChurn) {
  Network net(48);
  DstIndex index(net, smallConfig());
  Oracle oracle;
  Rng rng(37);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Record r = rec(rng.uniform(), rng.uniform(), i);
    index.insert(r);
    oracle.insert(r);
  }
  for (int i = 0; i < 8; ++i) {
    net.removePeer(net.peers()[rng.below(net.peerCount())]);
  }
  net.addPeer("dst-joiner");
  index.checkInvariants();
  for (const Rect& q :
       mlight::workload::uniformRangeQueries(10, 2, 0.15, 41)) {
    auto got = index.rangeQuery(q).records;
    Oracle::sortById(got);
    EXPECT_EQ(got, oracle.rangeQuery(q));
  }
}

TEST(DstIndex, RejectsBadConfig) {
  Network net(8);
  DstConfig cfg;
  cfg.maxDepth = 15;  // not a multiple of dims=2
  EXPECT_THROW(DstIndex(net, cfg), std::invalid_argument);
  cfg = DstConfig{};
  cfg.gamma = 0;
  EXPECT_THROW(DstIndex(net, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace mlight::dst
