// Sim/TCP parity: the two transport backends must agree on ring
// geometry (RingMap vs Network::responsible) and on every answer for
// the same workload — the property that makes the simulator's
// predictions meaningful for the measured wire run.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dht/network.h"
#include "store/wire_store.h"
#include "transport/ring_map.h"
#include "transport/sim_transport.h"
#include "transport/tcp.h"

namespace mlight::transport {
namespace {

using store::WireStore;
using store::wireRingKey;

TEST(RingMapParity, MatchesNetworkOwnershipExactly) {
  for (const std::size_t vnodes : {std::size_t{1}, std::size_t{4}}) {
    dht::Network net(12, /*seed=*/1, vnodes);
    RingMap map(12, vnodes);
    ASSERT_EQ(map.vnodeCount(), net.peers().size());
    for (std::uint64_t k = 0; k < 5000; ++k) {
      const dht::RingId key = wireRingKey(k);
      const dht::RingId simOwner = net.responsible(key);
      const dht::RingId wireOwner = map.responsible(key);
      ASSERT_EQ(simOwner, wireOwner) << "key " << k;
      ASSERT_EQ(net.physicalNameOf(simOwner),
                "node:" + std::to_string(map.peerOf(wireOwner)))
          << "key " << k;
    }
  }
}

/// Runs the canonical wire workload (batch inserts, point gets, range
/// queries) through one Transport and returns every answer in issue
/// order.
struct Answers {
  std::uint64_t stored = 0;
  std::vector<std::uint64_t> getValues;
  std::vector<WireStore::Record> rangeHits;
  std::uint64_t deadLetters = 0;
};

template <typename RouteKeyFn>
Answers runWorkload(Transport& t, std::size_t peers, RouteKeyFn peerKey) {
  Answers a;
  constexpr std::uint64_t kRecords = 256;
  // Batched inserts, grouped by owner peer exactly like the bench.
  std::vector<std::vector<WireStore::Record>> byPeer(peers);
  for (std::uint64_t k = 0; k < kRecords; ++k) {
    const std::size_t p = RingMap(peers).ownerPeer(wireRingKey(k));
    byPeer[p].emplace_back(k, k ^ 0xABCDu);
  }
  for (std::size_t p = 0; p < peers; ++p) {
    if (byPeer[p].empty()) continue;
    dht::RpcEnvelope env;
    env.kind = dht::RpcKind::kBatchPut;
    env.payload = WireStore::encodeBatchPut(byPeer[p]);
    t.call(wireRingKey(byPeer[p][0].first), std::move(env),
           [&a](const dht::RpcEnvelope& resp) {
             a.stored += WireStore::decodeBatchPutResponse(resp.payload);
           },
           nullptr);
  }
  t.drain();

  for (std::uint64_t k = 0; k < kRecords; k += 7) {
    dht::RpcEnvelope env;
    env.kind = dht::RpcKind::kGet;
    env.payload = WireStore::encodeGet(k);
    t.call(wireRingKey(k), std::move(env),
           [&a](const dht::RpcEnvelope& resp) {
             a.getValues.push_back(
                 WireStore::decodeGetResponse(resp.payload).value);
           },
           nullptr);
    t.drain();  // serialize gets so answer order is issue order
  }

  for (std::size_t p = 0; p < peers; ++p) {
    dht::RpcEnvelope env;
    env.kind = dht::RpcKind::kVisit;
    env.payload = WireStore::encodeRange(32, 95);
    t.call(peerKey(p), std::move(env),
           [&a](const dht::RpcEnvelope& resp) {
             for (const auto& rec :
                  WireStore::decodeRangeResponse(resp.payload)) {
               a.rangeHits.push_back(rec);
             }
           },
           nullptr);
    t.drain();  // per-peer order: broadcast answers merge peer by peer
  }
  a.deadLetters = t.deadLetterTotal();
  return a;
}

TEST(WireParity, SimAndTcpBackendsReturnIdenticalAnswers) {
  constexpr std::size_t kPeers = 6;

  SimTransport sim(kPeers);
  const Answers simAnswers =
      runWorkload(sim, kPeers,
                  [&sim](std::size_t p) {
                    return dht::keyId("peer-id:node:" + std::to_string(p) +
                                      "#0");
                  });

  RingMap map(kPeers);
  std::vector<TcpPeerServer> servers(kPeers);
  std::vector<PeerAddr> addrs(kPeers);
  for (std::size_t i = 0; i < kPeers; ++i) addrs[i].port = servers[i].start();
  TcpConfig cfg;
  cfg.timeoutFloorMs = 200.0;
  TcpTransport tcp(map, addrs, cfg);
  const Answers tcpAnswers =
      runWorkload(tcp, kPeers,
                  [&map](std::size_t p) { return map.firstVnode(p); });

  EXPECT_EQ(simAnswers.stored, tcpAnswers.stored);
  EXPECT_EQ(simAnswers.getValues, tcpAnswers.getValues);
  EXPECT_EQ(simAnswers.rangeHits, tcpAnswers.rangeHits);
  EXPECT_EQ(simAnswers.deadLetters, 0u);
  EXPECT_EQ(tcpAnswers.deadLetters, 0u);

  // And the records physically live on the peers the simulator placed
  // them on.
  for (std::size_t p = 0; p < kPeers; ++p) {
    servers[p].stop();
    EXPECT_EQ(servers[p].store().recordCount(),
              sim.storeOf(p).recordCount())
        << "peer " << p;
  }
}

}  // namespace
}  // namespace mlight::transport
