// TCP backend: loopback request/response through real sockets, the
// retry/timeout machinery against misbehaving servers, and the
// dead-letter ring when a peer never produces a well-formed reply
// (including the mid-frame-disconnect case).
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "store/wire_store.h"
#include "transport/ring_map.h"
#include "transport/tcp.h"

namespace mlight::transport {
namespace {

using store::WireStore;
using store::wireRingKey;

dht::RpcEnvelope request(dht::RpcKind kind, std::vector<std::uint8_t> payload) {
  dht::RpcEnvelope env;
  env.kind = kind;
  env.payload = std::move(payload);
  return env;
}

TEST(TcpTransport, InsertAndGetThroughRealSockets) {
  constexpr std::size_t kPeers = 4;
  RingMap map(kPeers);
  std::vector<TcpPeerServer> servers(kPeers);
  std::vector<PeerAddr> addrs(kPeers);
  for (std::size_t i = 0; i < kPeers; ++i) addrs[i].port = servers[i].start();

  TcpConfig cfg;
  cfg.timeoutFloorMs = 200.0;  // generous: a loaded CI box must not retry
  TcpTransport client(map, addrs, cfg);

  // Insert 100 records in batches, addressed by the shared placement mix.
  std::vector<WireStore::Record> batch;
  std::uint32_t stored = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    batch.emplace_back(k, k * 10 + 1);
    if (batch.size() == 16 || k == 99) {
      // One batch per owner peer: group records by responsible peer.
      for (std::size_t p = 0; p < kPeers; ++p) {
        std::vector<WireStore::Record> mine;
        for (const auto& rec : batch) {
          if (map.ownerPeer(wireRingKey(rec.first)) == p) {
            mine.push_back(rec);
          }
        }
        if (mine.empty()) continue;
        client.call(wireRingKey(mine[0].first),
                    request(dht::RpcKind::kBatchPut,
                            WireStore::encodeBatchPut(mine)),
                    [&stored](const dht::RpcEnvelope& resp) {
                      stored += WireStore::decodeBatchPutResponse(resp.payload);
                    },
                    nullptr);
      }
      batch.clear();
    }
  }
  client.drain();
  EXPECT_EQ(stored, 100u);
  EXPECT_EQ(client.deadLetterTotal(), 0u);

  // Every record is retrievable from whatever peer owns it.
  std::size_t found = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    client.call(wireRingKey(k),
                request(dht::RpcKind::kGet, WireStore::encodeGet(k)),
                [&found, k](const dht::RpcEnvelope& resp) {
                  const WireStore::GetResult r =
                      WireStore::decodeGetResponse(resp.payload);
                  EXPECT_TRUE(r.found);
                  EXPECT_EQ(r.value, k * 10 + 1);
                  ++found;
                },
                nullptr);
  }
  client.drain();
  EXPECT_EQ(found, 100u);
  EXPECT_EQ(client.deadLetterTotal(), 0u);

  // Range query: broadcast to all peers, merged result must be exact.
  std::vector<WireStore::Record> merged;
  for (std::size_t p = 0; p < kPeers; ++p) {
    client.call(map.firstVnode(p),
                request(dht::RpcKind::kVisit, WireStore::encodeRange(10, 19)),
                [&merged](const dht::RpcEnvelope& resp) {
                  for (const auto& rec :
                       WireStore::decodeRangeResponse(resp.payload)) {
                    merged.push_back(rec);
                  }
                },
                nullptr);
  }
  client.drain();
  ASSERT_EQ(merged.size(), 10u);

  std::size_t records = 0;
  for (auto& s : servers) {
    s.stop();
    records += s.store().recordCount();
  }
  EXPECT_EQ(records, 100u);
}

TEST(TcpTransport, ConnectRefusedExhaustsRetriesIntoDeadLetterRing) {
  RingMap map(1);
  // Reserve a port with a bound-but-closed socket so nothing listens.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  socklen_t len = sizeof(sa);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&sa), &len), 0);
  const std::uint16_t deadPort = ntohs(sa.sin_port);
  ::close(probe);

  TcpConfig cfg;
  cfg.timeoutFloorMs = 2.0;  // keep the backoff ladder test-fast
  cfg.maxAttempts = 3;
  TcpTransport client(map, {PeerAddr{"127.0.0.1", deadPort}}, cfg);

  std::size_t failedAttempts = 0;
  client.call(wireRingKey(7),
              request(dht::RpcKind::kGet, WireStore::encodeGet(7)),
              [](const dht::RpcEnvelope&) { FAIL() << "unexpected reply"; },
              [&failedAttempts](const dht::RpcEnvelope&,
                                std::size_t attempts) {
                failedAttempts = attempts;
              });
  client.drain();
  EXPECT_EQ(failedAttempts, 3u);
  EXPECT_EQ(client.deadLetterTotal(), 1u);
  EXPECT_EQ(client.deadLetterLogSize(), 1u);
  EXPECT_EQ(client.deadLettersDropped(), 0u);
  const std::vector<dht::DeadLetter> log = client.deadLetterRing().snapshot();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].attempts, 3u);
  EXPECT_EQ(log[0].kind, dht::RpcKind::kGet);
}

/// A hostile peer: accepts, reads the request, writes half a response
/// frame, and slams the connection — forever.  Every client attempt sees
/// a mid-frame disconnect.
class MidFrameKiller {
 public:
  MidFrameKiller() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    socklen_t len = sizeof(sa);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len);
    port_ = ntohs(sa.sin_port);
    ::listen(fd_, 16);
    thread_ = std::thread([this] { loop(); });
  }

  ~MidFrameKiller() {
    stop_.store(true);
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    thread_.join();
  }

  std::uint16_t port() const { return port_; }
  std::uint64_t kills() const { return kills_.load(); }

 private:
  void loop() {
    while (!stop_.load()) {
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn < 0) return;  // listener closed
      std::uint8_t buf[4096];
      // Read one request's worth of bytes (best effort), then emit a
      // torn frame: a plausible header plus half a body.
      (void)::recv(conn, buf, sizeof(buf), 0);
      const std::uint8_t torn[] = {64, 0, 0, 0, 0xDE, 0xAD};
      (void)::send(conn, torn, sizeof(torn), MSG_NOSIGNAL);
      ::close(conn);
      kills_.fetch_add(1);
    }
  }

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> kills_{0};
};

TEST(TcpTransport, MidFrameDisconnectBecomesDeadLetter) {
  MidFrameKiller killer;
  RingMap map(1);
  TcpConfig cfg;
  cfg.timeoutFloorMs = 5.0;
  cfg.maxAttempts = 3;
  TcpTransport client(map, {PeerAddr{"127.0.0.1", killer.port()}}, cfg);

  std::size_t failedAttempts = 0;
  client.call(wireRingKey(99),
              request(dht::RpcKind::kGet, WireStore::encodeGet(99)),
              [](const dht::RpcEnvelope&) { FAIL() << "unexpected reply"; },
              [&failedAttempts](const dht::RpcEnvelope&,
                                std::size_t attempts) {
                failedAttempts = attempts;
              });
  client.drain();
  EXPECT_EQ(failedAttempts, 3u);
  EXPECT_EQ(client.deadLetterTotal(), 1u);
  EXPECT_GE(killer.kills(), 1u);        // the torn frame really was seen
  EXPECT_GE(client.reconnects(), 1u);   // and the pool replaced the conn
}

TEST(TcpTransport, ServerDropsOversizedClientFrame) {
  TcpPeerServer server(/*maxFrameBytes=*/128);
  const std::uint16_t port = server.start();
  RingMap map(1);
  TcpConfig cfg;
  cfg.timeoutFloorMs = 5.0;
  cfg.maxAttempts = 2;
  cfg.maxFrameBytes = 1 << 20;  // client willingly sends a big frame
  TcpTransport client(map, {PeerAddr{"127.0.0.1", port}}, cfg);

  dht::RpcEnvelope big = request(dht::RpcKind::kGet, {});
  big.payload.assign(4096, 0x55);  // over the server's 128-byte ceiling
  std::size_t failed = 0;
  client.call(wireRingKey(1), std::move(big),
              [](const dht::RpcEnvelope&) { FAIL() << "unexpected reply"; },
              [&failed](const dht::RpcEnvelope&, std::size_t) { ++failed; });
  client.drain();
  EXPECT_EQ(failed, 1u);
  EXPECT_EQ(client.deadLetterTotal(), 1u);
  server.stop();
  EXPECT_GE(server.connsDropped(), 1u);
  EXPECT_EQ(server.framesServed(), 0u);
}

}  // namespace
}  // namespace mlight::transport
