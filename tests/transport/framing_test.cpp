// Transport framing: serde round-trip through a real socketpair,
// partial-frame reassembly under a 1-byte drip feed, oversized-frame
// rejection, and stream-poisoning semantics.
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "dht/rpc.h"
#include "transport/frame.h"

namespace mlight::transport {
namespace {

dht::RpcEnvelope sampleEnvelope(std::uint64_t id = 42) {
  dht::RpcEnvelope env;
  env.id = id;
  env.kind = dht::RpcKind::kBatchPut;
  env.from = dht::RingId{0x1111222233334444ull};
  env.to = dht::RingId{0x5555666677778888ull};
  env.round = 3;
  env.payload = {1, 2, 3, 4, 5, 6, 7};
  return env;
}

void expectEqual(const dht::RpcEnvelope& a, const dht::RpcEnvelope& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.from, b.from);
  EXPECT_EQ(a.to, b.to);
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(Framing, RoundTripThroughRealSocketpair) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  const dht::RpcEnvelope sent = sampleEnvelope();
  std::vector<std::uint8_t> wire;
  encodeFrame(sent, wire);
  ASSERT_EQ(::send(sp[0], wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  FrameReader reader;
  dht::RpcEnvelope got;
  std::uint8_t buf[4096];
  bool decoded = false;
  while (!decoded) {
    const ssize_t n = ::recv(sp[1], buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    ASSERT_TRUE(reader.feed(buf, static_cast<std::size_t>(n)));
    decoded = reader.next(got);
  }
  expectEqual(sent, got);
  EXPECT_EQ(reader.buffered(), 0u);
  ::close(sp[0]);
  ::close(sp[1]);
}

TEST(Framing, OneByteDripFeedReassembles) {
  // TCP guarantees nothing about chunk boundaries; the pathological
  // worst case is one byte at a time, across several back-to-back
  // frames.
  std::vector<std::uint8_t> wire;
  const dht::RpcEnvelope first = sampleEnvelope(1);
  const dht::RpcEnvelope second = sampleEnvelope(2);
  encodeFrame(first, wire);
  encodeFrame(second, wire);

  FrameReader reader;
  std::vector<dht::RpcEnvelope> got;
  dht::RpcEnvelope env;
  for (const std::uint8_t byte : wire) {
    ASSERT_TRUE(reader.feed(&byte, 1));
    while (reader.next(env)) got.push_back(env);
  }
  ASSERT_EQ(got.size(), 2u);
  expectEqual(first, got[0]);
  expectEqual(second, got[1]);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Framing, IncompleteFrameYieldsNothing) {
  std::vector<std::uint8_t> wire;
  encodeFrame(sampleEnvelope(), wire);
  FrameReader reader;
  ASSERT_TRUE(reader.feed(wire.data(), wire.size() - 1));  // one byte short
  dht::RpcEnvelope env;
  EXPECT_FALSE(reader.next(env));
  EXPECT_EQ(reader.buffered(), wire.size() - 1);
}

TEST(Framing, OversizedFramePoisonsTheStream) {
  FrameReader reader(/*maxFrameBytes=*/64);
  // Header announcing 65 bytes: one past the ceiling.
  const std::uint8_t header[4] = {65, 0, 0, 0};
  EXPECT_FALSE(reader.feed(header, sizeof(header)));
  EXPECT_TRUE(reader.poisoned());
  // A poisoned stream never yields frames or accepts bytes again.
  dht::RpcEnvelope env;
  EXPECT_FALSE(reader.next(env));
  const std::uint8_t more = 0;
  EXPECT_FALSE(reader.feed(&more, 1));
}

TEST(Framing, OversizedDetectedEvenWhenHeaderArrivesBytewise) {
  FrameReader reader(/*maxFrameBytes=*/64);
  const std::uint8_t header[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(reader.feed(&header[i], 1));  // header still incomplete
  }
  EXPECT_FALSE(reader.feed(&header[3], 1));
  EXPECT_TRUE(reader.poisoned());
}

TEST(Framing, FrameAtExactCeilingPasses) {
  // The boundary frame (announced length == ceiling) must parse: the
  // client-side batcher sizes batches against this same constant.
  dht::RpcEnvelope env = sampleEnvelope();
  env.payload.assign(100, 0xAB);
  std::vector<std::uint8_t> wire;
  encodeFrame(env, wire);
  const std::size_t bodyBytes = wire.size() - kFrameHeaderBytes;
  FrameReader reader(bodyBytes);
  ASSERT_TRUE(reader.feed(wire.data(), wire.size()));
  dht::RpcEnvelope got;
  ASSERT_TRUE(reader.next(got));
  expectEqual(env, got);
}

TEST(Framing, TrailingBytesInsideFrameThrow) {
  // A frame whose length covers the envelope plus junk is a protocol
  // violation, not silently ignorable padding.
  dht::RpcEnvelope env = sampleEnvelope();
  std::vector<std::uint8_t> wire;
  encodeFrame(env, wire);
  wire.push_back(0xEE);  // extend the body...
  wire[0] += 1;          // ...and the announced length with it
  FrameReader reader;
  ASSERT_TRUE(reader.feed(wire.data(), wire.size()));
  dht::RpcEnvelope got;
  EXPECT_THROW(reader.next(got), common::SerdeError);
}

}  // namespace
}  // namespace mlight::transport
