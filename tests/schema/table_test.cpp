#include "schema/table.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dht/network.h"

namespace mlight::schema {
namespace {

using mlight::common::Rng;
using mlight::dht::Network;

Schema songSchema() {
  return Schema({{"rating", 0.0, 5.0}, {"year", 1970.0, 2009.0}});
}

TEST(Schema, ValidatesAttributes) {
  EXPECT_THROW(Schema({}), std::invalid_argument);
  EXPECT_THROW(Schema({{"a", 1.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(Schema({{"a", 0.0, 1.0}, {"a", 0.0, 1.0}}),
               std::invalid_argument);
  const Schema s = songSchema();
  EXPECT_EQ(s.dims(), 2u);
  EXPECT_EQ(s.indexOf("year"), 1u);
  EXPECT_THROW(s.indexOf("tempo"), std::invalid_argument);
}

TEST(Schema, NormalizeRoundTripsAndClamps) {
  const Schema s = songSchema();
  EXPECT_DOUBLE_EQ(s.normalize(0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.normalize(0, 2.5), 0.5);
  EXPECT_LT(s.normalize(0, 5.0), 1.0);   // clamped below 1
  EXPECT_DOUBLE_EQ(s.normalize(0, -3.0), 0.0);  // clamped at 0
  EXPECT_NEAR(s.denormalize(1, s.normalize(1, 1999.0)), 1999.0, 1e-9);
  const auto p = s.encode(std::vector<double>{4.0, 2008.0});
  const auto back = s.decode(p);
  EXPECT_NEAR(back[0], 4.0, 1e-9);
  EXPECT_NEAR(back[1], 2008.0, 1e-9);
  EXPECT_THROW(s.encode(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Query, CompilesToExpectedRect) {
  const Schema s = songSchema();
  const auto rect = Query(s).ge("rating", 4.0).between("year", 2007, 2009)
                        .toRect();
  EXPECT_DOUBLE_EQ(rect.lo()[0], 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(rect.hi()[0], 1.0);  // unconstrained upper rating
  EXPECT_DOUBLE_EQ(rect.lo()[1], (2007.0 - 1970.0) / 39.0);
  EXPECT_DOUBLE_EQ(rect.hi()[1], 1.0);  // 2009 == domain max -> full top
}

TEST(Table, PaperMotivatingQuery) {
  Network net(64);
  Table songs(net, songSchema());
  Rng rng(1);
  std::size_t expected = 0;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    const double rating = 5.0 * rng.uniform();
    const double year = 1970.0 + 38.9 * rng.uniform();
    expected += (rating >= 4.0 && year >= 2007.0);
    songs.insert(Row{{rating, year}, "song-" + std::to_string(i), i});
  }
  // "songs that are rated above 4 and published during 2007 and 2008"
  const auto res =
      songs.select(Query(songs.schema()).ge("rating", 4.0).between(
          "year", 2007.0, 2009.0));
  EXPECT_EQ(res.rows.size(), expected);
  for (const auto& row : res.rows) {
    EXPECT_GE(row.values[0], 4.0 - 1e-9);
    EXPECT_GE(row.values[1], 2007.0 - 1e-9);
  }
  EXPECT_GE(res.stats.cost.lookups, 1u);
}

TEST(Table, UnconstrainedSelectReturnsAll) {
  Network net(32);
  Table t(net, Schema({{"x", -10.0, 10.0}}));
  for (std::uint64_t i = 0; i < 50; ++i) {
    t.insert(Row{{-10.0 + 0.4 * static_cast<double>(i)}, "", i});
  }
  EXPECT_EQ(t.select(Query(t.schema())).rows.size(), 50u);
}

TEST(Table, EraseByValues) {
  Network net(32);
  Table t(net, songSchema());
  t.insert(Row{{3.0, 1999.0}, "gone", 7});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.erase(std::vector<double>{3.0, 1999.0}, 7), 1u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Table, NearestNeighboursInAttributeSpace) {
  Network net(32);
  Table t(net, songSchema());
  t.insert(Row{{4.9, 2008.0}, "hit", 1});
  t.insert(Row{{1.0, 1975.0}, "flop", 2});
  t.insert(Row{{4.5, 2006.0}, "good", 3});
  const auto res = t.nearest(std::vector<double>{5.0, 2008.0}, 2);
  ASSERT_EQ(res.rows.size(), 2u);
  EXPECT_EQ(res.rows[0].id, 1u);
  EXPECT_EQ(res.rows[1].id, 3u);
}

TEST(Table, DomainEdgeValuesAreQueryable) {
  Network net(32);
  Table t(net, Schema({{"v", 0.0, 100.0}}));
  t.insert(Row{{0.0}, "min", 1});
  t.insert(Row{{100.0}, "max-clamped", 2});  // clamps just under 100
  const auto all = t.select(Query(t.schema()));
  EXPECT_EQ(all.rows.size(), 2u);
  const auto top = t.select(Query(t.schema()).ge("v", 99.0));
  EXPECT_EQ(top.rows.size(), 1u);
  EXPECT_EQ(top.rows[0].id, 2u);
}

}  // namespace
}  // namespace mlight::schema
