// Shard-matrix certification of the sharded event core.
//
// The executor contract (docs/THEORY.md, "Sharded time-window
// execution") is stronger than digest equality: because handler
// application is serialized at the window barrier in canonical
// (time, tie, seq) order, a run under N shards must be BIT-IDENTICAL to
// the serial run — same state digests, same query answers, and even the
// same order-sensitive delivery trace.  The only thing allowed to vary
// with N is host-side bookkeeping (window counts, parallel prep work).
//
// This matrix holds the core to that claim across
//
//     shards {1, 2, 4, 8}  x  shuffle seeds {0, 17, 71}  x  3 workloads
//
// where the workloads are the adversarial trio from
// schedule_perturbation_test.cpp in trimmed form: maintenance traffic
// with replication, range queries with the hint cache on, and
// fault-seeded churn.  All on the constant-latency LAN model, whose
// same-time tie collisions are exactly what the barrier merge must keep
// in canonical order.
//
// Every run pins its shard count explicitly, so the matrix means the
// same thing whether or not CI exports MLIGHT_SIM_SHARDS.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/digest.h"
#include "dht/network.h"
#include "dst/dst_index.h"
#include "mlight/index.h"
#include "pht/pht_index.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace mlight {
namespace {

using dht::FaultModel;
using dht::LatencyModel;
using dht::Network;
using dht::RpcDelivery;

/// Constant-latency LAN (2 ms links, 1 ms send overhead): chains of
/// different depth collide constantly, so both the tie shuffle and the
/// barrier merge are exercised on every run.
LatencyModel lanModel() { return LatencyModel{2.0, 2.0, 1.0}; }

struct RunOutcome {
  // Must be bit-identical across the whole shard axis:
  std::vector<std::uint64_t> indexDigests;
  std::uint64_t netDigest = 0;
  std::vector<std::vector<std::uint64_t>> queryAnswers;  ///< sorted ids
  std::uint64_t timelineFingerprint = 0;
  std::uint64_t tieDeliveries = 0;
  // Host-side executor bookkeeping (varies with shards by design):
  std::uint64_t windows = 0;
  std::uint64_t parallelPreps = 0;
};

void traceIntoDigest(Network& net, common::Digest* fp) {
  net.setRpcTrace([fp](const RpcDelivery& d) {
    fp->feed(d.env.id);
    fp->feed(static_cast<std::uint64_t>(d.env.kind));
    fp->feed(d.env.from.value);
    fp->feed(d.env.to.value);
    fp->feed(d.env.round);
    fp->feed(d.env.payload.size());
    fp->feed(d.sentAt);
    fp->feed(d.deliveredAt);
  });
}

std::vector<std::uint64_t> sortedIds(const index::RangeResult& res) {
  std::vector<std::uint64_t> ids;
  ids.reserve(res.records.size());
  for (const auto& r : res.records) ids.push_back(r.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// The full bit-identical comparison: everything except the executor's
/// host-side bookkeeping must match.
void expectIdentical(const RunOutcome& base, const RunOutcome& run,
                     const std::string& label) {
  EXPECT_EQ(base.indexDigests, run.indexDigests) << label;
  EXPECT_EQ(base.netDigest, run.netDigest) << label;
  EXPECT_EQ(base.queryAnswers, run.queryAnswers) << label;
  EXPECT_EQ(base.timelineFingerprint, run.timelineFingerprint) << label;
  EXPECT_EQ(base.tieDeliveries, run.tieDeliveries) << label;
}

constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};
constexpr std::uint64_t kShuffleSeeds[] = {0, 17, 71};

// --- Workload 1: maintenance (m-LIGHT with replication + PHT) -----------
RunOutcome runMaintenance(std::size_t shards, std::uint64_t shuffleSeed) {
  Network net(32, /*seed=*/7, /*vnodesPerPeer=*/1, lanModel());
  net.setSimShards(shards);
  net.setScheduleShuffleSeed(shuffleSeed);
  common::Digest fp;
  traceIntoDigest(net, &fp);

  core::MLightConfig mcfg;
  mcfg.thetaSplit = 16;
  mcfg.thetaMerge = 8;
  mcfg.replication = 2;  // replica pushes from different owners => ties
  core::MLightIndex mlight(net, mcfg);

  pht::PhtConfig pcfg;
  pcfg.thetaSplit = 16;
  pcfg.thetaMerge = 8;
  pht::PhtIndex pht(net, pcfg);

  const auto data = workload::northeastDataset(300, 11);
  for (const auto& r : data) {
    mlight.insert(r);
    pht.insert(r);
  }
  for (std::size_t i = 0; i < 40; ++i) {
    mlight.erase(data[i].key, data[i].id);
    pht.erase(data[i].key, data[i].id);
  }
  mlight.checkInvariants();
  pht.checkInvariants();

  RunOutcome out;
  out.indexDigests = {mlight.stateDigest(), pht.stateDigest()};
  common::Digest nd;
  net.digestState(nd);
  out.netDigest = nd.value();
  out.timelineFingerprint = fp.value();
  out.tieDeliveries = net.schedulerTieDeliveries();
  out.windows = net.simWindowCount();
  out.parallelPreps = net.simParallelPreps();
  return out;
}

// --- Workload 2: range queries with the hint cache on -------------------
RunOutcome runRangeQueries(std::size_t shards, std::uint64_t shuffleSeed) {
  Network net(32, /*seed=*/9, /*vnodesPerPeer=*/1, lanModel());
  net.setSimShards(shards);
  net.setScheduleShuffleSeed(shuffleSeed);
  common::Digest fp;
  traceIntoDigest(net, &fp);

  core::MLightConfig mcfg;
  mcfg.thetaSplit = 16;
  mcfg.thetaMerge = 8;
  mcfg.cache.enabled = true;  // LRU hint state rides the matrix too
  core::MLightIndex mlight(net, mcfg);

  dst::DstConfig dcfg;
  dcfg.gamma = 16;
  dcfg.maxDepth = 16;  // 8 quad levels: wide same-round reply races
  dst::DstIndex dstIndex(net, dcfg);

  const auto data = workload::uniformDataset(400, 2, 12);
  mlight.bulkLoad(data);
  for (std::size_t i = 0; i < 200; ++i) dstIndex.insert(data[i]);

  RunOutcome out;
  for (const double span : {0.05, 0.30}) {
    for (const auto& q : workload::uniformRangeQueries(2, 2, span, 31)) {
      out.queryAnswers.push_back(sortedIds(mlight.rangeQuery(q)));
      out.queryAnswers.push_back(sortedIds(dstIndex.rangeQuery(q)));
    }
  }
  mlight.checkInvariants();
  dstIndex.checkInvariants();

  out.indexDigests = {mlight.stateDigest(), dstIndex.stateDigest()};
  common::Digest nd;
  net.digestState(nd);
  out.netDigest = nd.value();
  out.timelineFingerprint = fp.value();
  out.tieDeliveries = net.schedulerTieDeliveries();
  out.windows = net.simWindowCount();
  out.parallelPreps = net.simParallelPreps();
  return out;
}

// --- Workload 3: fault-seeded churn -------------------------------------
RunOutcome runChurnWithFaults(std::size_t shards, std::uint64_t shuffleSeed) {
  Network net(48, /*seed=*/5, /*vnodesPerPeer=*/1, lanModel());
  net.setSimShards(shards);
  net.setScheduleShuffleSeed(shuffleSeed);
  FaultModel faults;
  faults.enabled = true;
  faults.lossProbability = 0.01;
  faults.jitterMs = 0.0;  // keep deliveries on the tie-heavy grid
  faults.maxAttempts = 8;
  faults.seed = 20260805;
  net.setFaultModel(faults);
  common::Digest fp;
  traceIntoDigest(net, &fp);

  core::MLightConfig mcfg;
  mcfg.thetaSplit = 16;
  mcfg.thetaMerge = 8;
  mcfg.replication = 2;
  core::MLightIndex mlight(net, mcfg);

  const auto data = workload::uniformDataset(350, 2, 21);
  const auto queries = workload::uniformRangeQueries(4, 2, 0.25, 22);

  RunOutcome out;
  auto query = [&](const common::Rect& q) {
    out.queryAnswers.push_back(sortedIds(mlight.rangeQuery(q)));
  };

  for (std::size_t i = 0; i < 150; ++i) mlight.insert(data[i]);
  query(queries[0]);
  net.addPeer("matrix-joiner-a");
  for (std::size_t i = 150; i < 250; ++i) mlight.insert(data[i]);
  net.crashPeer(net.peers()[11]);  // replication absorbs the crash
  query(queries[1]);
  net.removePeer(net.peers()[3]);
  for (std::size_t i = 250; i < data.size(); ++i) mlight.insert(data[i]);
  net.crashPeer(net.peers()[29]);
  query(queries[2]);
  for (std::size_t i = 0; i < 30; ++i) mlight.erase(data[i].key, data[i].id);
  query(queries[3]);
  mlight.checkInvariants();

  out.indexDigests = {mlight.stateDigest()};
  common::Digest nd;
  net.digestState(nd);
  out.netDigest = nd.value();
  out.timelineFingerprint = fp.value();
  out.tieDeliveries = net.schedulerTieDeliveries();
  out.windows = net.simWindowCount();
  out.parallelPreps = net.simParallelPreps();
  return out;
}

using WorkloadFn = RunOutcome (*)(std::size_t, std::uint64_t);

/// Drives one workload across the full shards x seeds matrix.  For each
/// shuffle seed the serial (1-shard) run is the reference; every sharded
/// run must reproduce it bit-for-bit, and must show evidence that the
/// window machinery actually engaged.
void runMatrix(WorkloadFn workload, const char* name) {
  for (const std::uint64_t seed : kShuffleSeeds) {
    const RunOutcome serial = workload(1, seed);
    EXPECT_EQ(serial.windows, 0u) << name << ": serial path opened windows";
    EXPECT_EQ(serial.parallelPreps, 0u);
    for (const std::size_t shards : kShardCounts) {
      if (shards == 1) continue;
      const RunOutcome sharded = workload(shards, seed);
      const std::string label = std::string(name) + ", shards " +
                                std::to_string(shards) + ", seed " +
                                std::to_string(seed);
      expectIdentical(serial, sharded, label);
      // Engagement witnesses: the run was window-batched and worker
      // shards really prepped events — a sharded run that degenerated
      // to the serial path would certify nothing.
      EXPECT_GT(sharded.windows, 0u) << label;
      EXPECT_GT(sharded.parallelPreps, 0u) << label;
    }
  }
}

TEST(ShardMatrix, MaintenanceBitIdenticalAcrossShards) {
  runMatrix(&runMaintenance, "maintenance");
}

TEST(ShardMatrix, RangeQueriesBitIdenticalAcrossShards) {
  runMatrix(&runRangeQueries, "range-queries");
}

TEST(ShardMatrix, ChurnWithFaultsBitIdenticalAcrossShards) {
  runMatrix(&runChurnWithFaults, "churn-faults");
}

// The environment knob reaches the executor: a Network built under
// MLIGHT_SIM_SHARDS=k starts sharded, exactly as CI's sweep expects.
TEST(ShardMatrix, EnvironmentShardsReachScheduler) {
  ASSERT_EQ(setenv("MLIGHT_SIM_SHARDS", "4", 1), 0);
  Network net(4, 1, 1, lanModel());
  EXPECT_EQ(net.simShards(), 4u);
  ASSERT_EQ(unsetenv("MLIGHT_SIM_SHARDS"), 0);
  Network fresh(4, 1, 1, lanModel());
  EXPECT_EQ(fresh.simShards(), 1u);
}

}  // namespace
}  // namespace mlight
