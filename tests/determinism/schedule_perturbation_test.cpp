// Schedule-perturbation certification of the event core (ISSUE 6).
//
// The determinism contract (docs/THEORY.md, "Determinism contract")
// claims that no simulation-visible state depends on the relative
// execution order of same-time events.  Before the scheduler can be
// sharded (ROADMAP item 1) that claim needs teeth: a parallel scheduler
// is exactly a machine for permuting same-time ties.
//
// These tests ARE the teeth.  Each workload runs once with the legacy
// FIFO tie order (shuffle seed 0) and once per nonzero shuffle seed
// (MLIGHT_SCHED_SHUFFLE_SEED semantics, set programmatically); the
// shuffled runs must
//
//  * actually perturb something (`schedulerTieDeliveries() > 0` and a
//    different order-sensitive delivery fingerprint — otherwise the
//    whole exercise is vacuous), and
//  * leave every state digest bit-identical: index trees, stored
//    buckets, replica placements, hint-cache contents, cost meters,
//    dead letters, and the set-valued query answers.
//
// The workloads deliberately use a *constant-latency* LAN model
// (minMs == maxMs, with sendOverheadMs dividing the link latency): with
// continuous per-pair latencies same-time ties are measure-zero, but on
// a constant-latency fabric chains of different depth collide all the
// time — the adversarial schedule for tie-order bugs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/digest.h"
#include "dht/network.h"
#include "dst/dst_index.h"
#include "mlight/index.h"
#include "pht/pht_index.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace mlight {
namespace {

using dht::FaultModel;
using dht::LatencyModel;
using dht::Network;
using dht::RpcDelivery;

/// Constant-latency LAN: every link 2 ms, send overhead 1 ms.  The 2:1
/// ratio makes a depth-k chain with j send-queue slots collide with a
/// depth-(k+1) chain with j-2 slots — ties by construction.
LatencyModel lanModel() { return LatencyModel{2.0, 2.0, 1.0}; }

/// Everything a run exposes, split into what must be invariant under
/// tie perturbation (state) and what is allowed to move (timeline).
struct RunOutcome {
  // Must match the seed-0 run bit-for-bit:
  std::vector<std::uint64_t> indexDigests;
  std::uint64_t netDigest = 0;
  std::vector<std::vector<std::uint64_t>> queryAnswers;  ///< sorted ids
  std::vector<std::size_t> failedProbes;
  // Perturbation witnesses (allowed — expected — to differ):
  std::uint64_t tieDeliveries = 0;
  std::uint64_t timelineFingerprint = 0;
};

/// Order-SENSITIVE fingerprint of the delivery sequence.  Two runs with
/// the same fingerprint executed the same deliveries in the same order
/// at the same times; a shuffled run whose fingerprint differs from the
/// FIFO run proves the perturbation really reordered execution.
void traceIntoDigest(Network& net, common::Digest* fp) {
  net.setRpcTrace([fp](const RpcDelivery& d) {
    fp->feed(d.env.id);
    fp->feed(static_cast<std::uint64_t>(d.env.kind));
    fp->feed(d.env.from.value);
    fp->feed(d.env.to.value);
    fp->feed(d.env.round);
    fp->feed(d.env.payload.size());
    fp->feed(d.sentAt);
    fp->feed(d.deliveredAt);
  });
}

std::vector<std::uint64_t> sortedIds(const index::RangeResult& res) {
  std::vector<std::uint64_t> ids;
  ids.reserve(res.records.size());
  for (const auto& r : res.records) ids.push_back(r.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Asserts the state half of `run` matches `base` and the perturbation
/// actually happened.  `label` names the failing seed in diagnostics.
void expectStateEqual(const RunOutcome& base, const RunOutcome& run,
                      const std::string& label) {
  EXPECT_EQ(base.indexDigests, run.indexDigests) << label;
  EXPECT_EQ(base.netDigest, run.netDigest) << label;
  EXPECT_EQ(base.queryAnswers, run.queryAnswers) << label;
  EXPECT_EQ(base.failedProbes, run.failedProbes) << label;
  // The witness: ties were delivered and execution order moved.  A
  // shuffled run that never hit a tie (or hit ties whose permutation
  // happened to be the identity) would certify nothing.
  EXPECT_GT(run.tieDeliveries, 0u) << label;
  EXPECT_NE(base.timelineFingerprint, run.timelineFingerprint) << label;
}

constexpr std::uint64_t kShuffleSeeds[] = {17, 23, 71};

// --- Workload 1: fig5-style maintenance (m-LIGHT vs PHT) ----------------
//
// Incremental inserts with splits, a few erases with merges, on both the
// m-LIGHT index and the PHT baseline sharing one network.  This is the
// maintenance-traffic shape of Figure 5.
RunOutcome runMaintenance(std::uint64_t shuffleSeed) {
  Network net(32, /*seed=*/7, /*vnodesPerPeer=*/1, lanModel());
  net.setScheduleShuffleSeed(shuffleSeed);
  common::Digest fp;
  traceIntoDigest(net, &fp);

  core::MLightConfig mcfg;
  mcfg.thetaSplit = 16;
  mcfg.thetaMerge = 8;
  // Replication gives the workload real concurrency: fire-and-forget
  // replica pushes from *different* owners drain in one burst and land
  // on the constant-latency grid at the same instant — reorderable ties.
  mcfg.replication = 2;
  core::MLightIndex mlight(net, mcfg);

  pht::PhtConfig pcfg;
  pcfg.thetaSplit = 16;
  pcfg.thetaMerge = 8;
  pht::PhtIndex pht(net, pcfg);

  const auto data = workload::northeastDataset(400, 11);
  for (const auto& r : data) {
    mlight.insert(r);
    pht.insert(r);
  }
  for (std::size_t i = 0; i < 60; ++i) {
    mlight.erase(data[i].key, data[i].id);
    pht.erase(data[i].key, data[i].id);
  }
  mlight.checkInvariants();
  pht.checkInvariants();

  RunOutcome out;
  out.indexDigests = {mlight.stateDigest(), pht.stateDigest()};
  common::Digest nd;
  net.digestState(nd);
  out.netDigest = nd.value();
  out.tieDeliveries = net.schedulerTieDeliveries();
  out.timelineFingerprint = fp.value();
  return out;
}

TEST(SchedulePerturbation, MaintenanceWorkloadStateIsTieOrderInvariant) {
  const RunOutcome base = runMaintenance(0);
  for (const std::uint64_t seed : kShuffleSeeds) {
    expectStateEqual(base, runMaintenance(seed),
                     "shuffle seed " + std::to_string(seed));
  }
}

// --- Workload 2: fig7-style range queries (m-LIGHT + DST) ---------------
//
// Bulk load, then range queries of several selectivities — the
// query-bandwidth shape of Figure 7.  The m-LIGHT side runs with the
// hint cache ON so the LRU state (and its digest) rides through the
// perturbation too; DST exercises the wide parallel fan-out where
// same-round replies race.
RunOutcome runRangeQueries(std::uint64_t shuffleSeed) {
  Network net(32, /*seed=*/9, /*vnodesPerPeer=*/1, lanModel());
  net.setScheduleShuffleSeed(shuffleSeed);
  common::Digest fp;
  traceIntoDigest(net, &fp);

  core::MLightConfig mcfg;
  mcfg.thetaSplit = 16;
  mcfg.thetaMerge = 8;
  mcfg.cache.enabled = true;  // explicit: immune to MLIGHT_CACHE
  core::MLightIndex mlight(net, mcfg);

  dst::DstConfig dcfg;
  dcfg.gamma = 16;
  dcfg.maxDepth = 16;  // 8 quad levels: plenty of fan-out, 4x fewer puts
  dst::DstIndex dstIndex(net, dcfg);

  const auto data = workload::uniformDataset(600, 2, 12);
  mlight.bulkLoad(data);
  for (std::size_t i = 0; i < 300; ++i) dstIndex.insert(data[i]);

  RunOutcome out;
  for (const double span : {0.05, 0.15, 0.30, 0.50}) {
    for (const auto& q : workload::uniformRangeQueries(2, 2, span, 31)) {
      const auto mres = mlight.rangeQuery(q);
      out.queryAnswers.push_back(sortedIds(mres));
      out.failedProbes.push_back(mres.stats.failedProbes);
      const auto dres = dstIndex.rangeQuery(q);
      out.queryAnswers.push_back(sortedIds(dres));
      out.failedProbes.push_back(dres.stats.failedProbes);
    }
  }
  mlight.checkInvariants();
  dstIndex.checkInvariants();

  out.indexDigests = {mlight.stateDigest(), dstIndex.stateDigest()};
  common::Digest nd;
  net.digestState(nd);
  out.netDigest = nd.value();
  out.tieDeliveries = net.schedulerTieDeliveries();
  out.timelineFingerprint = fp.value();
  return out;
}

TEST(SchedulePerturbation, RangeQueryWorkloadStateIsTieOrderInvariant) {
  const RunOutcome base = runRangeQueries(0);
  for (const std::uint64_t seed : kShuffleSeeds) {
    expectStateEqual(base, runRangeQueries(seed),
                     "shuffle seed " + std::to_string(seed));
  }
}

// --- Workload 3: churn + fault injection (extra_churn shape) ------------
//
// Replicated m-LIGHT under joins, graceful leaves, hard crashes, and a
// lossy network.  This leans on the content-derived fault draws (see
// attemptRng in network.cpp): with a shared sequential fault RNG, two
// tied transmissions would swap loss outcomes and the digests would
// diverge.  Jitter is 0 so delivery times stay on the constant-latency
// grid and ties keep happening even through retransmissions.
RunOutcome runChurnWithFaults(std::uint64_t shuffleSeed) {
  Network net(48, /*seed=*/5, /*vnodesPerPeer=*/1, lanModel());
  net.setScheduleShuffleSeed(shuffleSeed);
  FaultModel faults;
  faults.enabled = true;
  faults.lossProbability = 0.01;
  faults.jitterMs = 0.0;
  faults.maxAttempts = 8;
  faults.seed = 20260805;
  net.setFaultModel(faults);
  common::Digest fp;
  traceIntoDigest(net, &fp);

  core::MLightConfig mcfg;
  mcfg.thetaSplit = 16;
  mcfg.thetaMerge = 8;
  mcfg.replication = 2;
  core::MLightIndex mlight(net, mcfg);

  const auto data = workload::uniformDataset(500, 2, 21);
  const auto queries = workload::uniformRangeQueries(6, 2, 0.25, 22);

  RunOutcome out;
  auto query = [&](const common::Rect& q) {
    const auto res = mlight.rangeQuery(q);
    out.queryAnswers.push_back(sortedIds(res));
    out.failedProbes.push_back(res.stats.failedProbes);
  };

  for (std::size_t i = 0; i < 200; ++i) mlight.insert(data[i]);
  query(queries[0]);
  net.addPeer("perturb-joiner-a");
  for (std::size_t i = 200; i < 300; ++i) mlight.insert(data[i]);
  net.crashPeer(net.peers()[11]);  // replication absorbs the crash
  query(queries[1]);
  query(queries[2]);
  net.removePeer(net.peers()[3]);
  for (std::size_t i = 300; i < data.size(); ++i) mlight.insert(data[i]);
  net.addPeer("perturb-joiner-b");
  net.crashPeer(net.peers()[29]);
  query(queries[3]);
  for (std::size_t i = 0; i < 50; ++i) mlight.erase(data[i].key, data[i].id);
  query(queries[4]);
  query(queries[5]);
  mlight.checkInvariants();

  out.indexDigests = {mlight.stateDigest()};
  common::Digest nd;
  net.digestState(nd);
  out.netDigest = nd.value();
  out.tieDeliveries = net.schedulerTieDeliveries();
  out.timelineFingerprint = fp.value();
  return out;
}

TEST(SchedulePerturbation, ChurnWithFaultsStateIsTieOrderInvariant) {
  const RunOutcome base = runChurnWithFaults(0);
  for (const std::uint64_t seed : kShuffleSeeds) {
    expectStateEqual(base, runChurnWithFaults(seed),
                     "shuffle seed " + std::to_string(seed));
  }
}

// --- Control: seed 0 is bit-identical legacy order ----------------------
//
// With shuffle seed 0 the tie key equals the sequence number, so the
// comparator degenerates to the historical (time, seq) order: replaying
// the same workload twice must reproduce even the order-sensitive
// timeline fingerprint.  This pins that merely *having* the perturbation
// machinery changes nothing.
TEST(SchedulePerturbation, SeedZeroReplaysByteIdentical) {
  const RunOutcome a = runMaintenance(0);
  const RunOutcome b = runMaintenance(0);
  EXPECT_EQ(a.indexDigests, b.indexDigests);
  EXPECT_EQ(a.netDigest, b.netDigest);
  EXPECT_EQ(a.timelineFingerprint, b.timelineFingerprint);
  EXPECT_EQ(a.tieDeliveries, b.tieDeliveries);
}

// Same-nonzero-seed replays must also be deterministic: the shuffled
// order is itself a pure function of (workload, shuffle seed).
TEST(SchedulePerturbation, ShuffledRunsReplayDeterministically) {
  const RunOutcome a = runChurnWithFaults(17);
  const RunOutcome b = runChurnWithFaults(17);
  EXPECT_EQ(a.netDigest, b.netDigest);
  EXPECT_EQ(a.timelineFingerprint, b.timelineFingerprint);
  EXPECT_EQ(a.tieDeliveries, b.tieDeliveries);
}

// The environment knob drives the same machinery: a scheduler built
// under MLIGHT_SCHED_SHUFFLE_SEED picks up the seed without any code
// involvement (this is how CI perturbs whole existing suites).
TEST(SchedulePerturbation, EnvironmentSeedReachesScheduler) {
  ASSERT_EQ(setenv("MLIGHT_SCHED_SHUFFLE_SEED", "4242", 1), 0);
  Network net(4, 1, 1, lanModel());
  EXPECT_EQ(net.scheduleShuffleSeed(), 4242u);
  ASSERT_EQ(unsetenv("MLIGHT_SCHED_SHUFFLE_SEED"), 0);
  Network fresh(4, 1, 1, lanModel());
  EXPECT_EQ(fresh.scheduleShuffleSeed(), 0u);
}

}  // namespace
}  // namespace mlight
