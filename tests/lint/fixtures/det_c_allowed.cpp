// Lint fixture twin: the same DET-C pattern, waived with DET-ALLOW —
// MUST pass clean.  Never compiled — lint fodder only.
#include <cstdint>
#include <map>

struct Peer {
  int load = 0;
};

class AllowedPointerOrder {
 public:
  std::uint64_t fingerprint(const Peer* p) const {
    // DET-ALLOW(debug-print identity only; never ordered on or stored)
    return reinterpret_cast<std::uintptr_t>(p);
  }

 private:
  // DET-ALLOW(host-side debug registry; iteration order never observed)
  std::map<Peer*, int> loadByPeer_;
};
