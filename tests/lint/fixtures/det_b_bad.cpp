// Lint fixture: MUST trigger DET-B (wall clock / ambient randomness)
// and no other rule.  Never compiled — lint fodder only.
#include <chrono>
#include <random>

double wallClockNow() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  std::random_device entropy;
  return static_cast<double>(t.count()) + static_cast<double>(entropy());
}
