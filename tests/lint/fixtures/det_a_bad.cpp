// Lint fixture: MUST trigger DET-A (iteration over an unordered
// container) and no other rule.  Never compiled — lint fodder only.
#include <cstddef>
#include <unordered_map>

class BadIteration {
 public:
  std::size_t keySum() const {
    std::size_t sum = 0;
    for (const auto& [key, value] : entries_) sum += key;
    return sum;
  }

 private:
  std::unordered_map<std::size_t, int> entries_;
};
