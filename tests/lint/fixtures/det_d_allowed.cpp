// Lint fixture twin: the same DET-D pattern, waived with DET-ALLOW —
// MUST pass clean.  Never compiled — lint fodder only.
#include <unordered_map>

class AllowedFloatAccumulation {
 public:
  double totalMs() const {
    double sum = 0.0;
    // DET-ALLOW(collecting values; consumer claims order-insensitivity)
    for (const auto& [key, ms] : latencies_) {
      // DET-ALLOW(diagnostic total printed at whole-ms granularity)
      sum += ms;
    }
    return sum;
  }

 private:
  std::unordered_map<int, double> latencies_;
};
