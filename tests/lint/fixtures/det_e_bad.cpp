// Lint fixture: MUST trigger DET-E (mutable static-storage data) and no
// other rule.  The static counter is shared by every shard worker yet
// appears in no capture list — a handler lambda bumping it races under
// the parallel prep phase and leaks ordering even when serial.
// Never compiled — lint fodder only.
#include <cstdint>
#include <functional>

class BadSharedStatic {
 public:
  std::function<void()> makeHandler() {
    return [this]() { lastBatch_ = nextBatchId(); };
  }

 private:
  static std::uint64_t nextBatchId() {
    static std::uint64_t counter = 0;
    return ++counter;
  }

  std::uint64_t lastBatch_ = 0;
};

namespace detail {
static thread_local int scratchDepth = 0;
}  // namespace detail
