// Lint fixture twin: the same DET-E patterns, waived with DET-ALLOW —
// MUST pass clean.  Const and constexpr statics are not shared *mutable*
// state and never trigger the rule in the first place.
// Never compiled — lint fodder only.
#include <cstdint>
#include <functional>

class AllowedSharedStatic {
 public:
  std::function<void()> makeHandler() {
    return [this]() { lastBatch_ = nextBatchId(); };
  }

 private:
  static std::uint64_t nextBatchId() {
    // DET-ALLOW(process-wide diagnostic id; never simulation-visible)
    static std::uint64_t counter = 0;
    return ++counter;
  }

  std::uint64_t lastBatch_ = 0;
};

namespace detail {
// DET-ALLOW(worker-local scratch; reset before every window)
static thread_local int scratchDepth = 0;

static constexpr std::uint64_t kWindowMask = 0xFFull;  // const: no rule
static const int kDefaultDepth = 4;                    // const: no rule
}  // namespace detail
