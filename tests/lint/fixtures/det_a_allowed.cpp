// Lint fixture twin: the same DET-A pattern, waived with DET-ALLOW —
// MUST pass clean.  Never compiled — lint fodder only.
#include <cstddef>
#include <unordered_map>

class AllowedIteration {
 public:
  std::size_t keySum() const {
    std::size_t sum = 0;
    // DET-ALLOW(commutative integer sum; order cannot affect the result)
    for (const auto& [key, value] : entries_) sum += key;
    return sum;
  }

 private:
  std::unordered_map<std::size_t, int> entries_;
};
