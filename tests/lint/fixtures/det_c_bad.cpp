// Lint fixture: MUST trigger DET-C (pointer-keyed order / hashing) and
// no other rule.  Never compiled — lint fodder only.
#include <cstdint>
#include <map>

struct Peer {
  int load = 0;
};

class BadPointerOrder {
 public:
  std::uint64_t fingerprint(const Peer* p) const {
    return reinterpret_cast<std::uintptr_t>(p);
  }

 private:
  std::map<Peer*, int> loadByPeer_;
};
