// Lint fixture: MUST trigger DET-D (float accumulation under hash
// order) and no other rule.  The loop itself carries a DET-A waiver —
// which deliberately does NOT extend to the accumulation inside it:
// even an "order-insensitive" walk reorders float rounding.
// Never compiled — lint fodder only.
#include <unordered_map>

class BadFloatAccumulation {
 public:
  double totalMs() const {
    double sum = 0.0;
    // DET-ALLOW(collecting values; consumer claims order-insensitivity)
    for (const auto& [key, ms] : latencies_) {
      sum += ms;
    }
    return sum;
  }

 private:
  std::unordered_map<int, double> latencies_;
};
