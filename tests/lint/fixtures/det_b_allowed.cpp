// Lint fixture twin: the same DET-B pattern, waived with DET-ALLOW —
// MUST pass clean.  Never compiled — lint fodder only.
#include <chrono>
#include <random>

double wallClockNow() {
  // DET-ALLOW(host-side profiling only; value never reaches sim state)
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  // DET-ALLOW(entropy feeds an operator-facing banner, not the sim)
  std::random_device entropy;
  return static_cast<double>(t.count()) + static_cast<double>(entropy());
}
