#!/usr/bin/env bash
# ctest wrapper for the determinism lint (scripts/lint_determinism.py).
#
#   run_lint_checks.sh fixtures   self-test: every tests/lint/fixtures/
#                                 det_<rule>_bad.cpp must trigger exactly
#                                 its rule; every det_<rule>_allowed.cpp
#                                 twin must pass clean.
#   run_lint_checks.sh src        the real gate: src/ must be clean
#                                 against the checked-in (empty) baseline.
#
# Exits 77 when python3 is unavailable, which ctest maps to SKIPPED via
# SKIP_RETURN_CODE — same graceful-absence pattern as scripts/run_tidy.sh.
set -u

REPO_ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
LINT="$REPO_ROOT/scripts/lint_determinism.py"
FIXTURES="$REPO_ROOT/tests/lint/fixtures"

if ! command -v python3 >/dev/null 2>&1; then
  echo "python3 not available; skipping determinism lint"
  exit 77
fi

mode="${1:-fixtures}"
fail=0

case "$mode" in
  src)
    python3 "$LINT" || fail=1
    ;;
  fixtures)
    for rule in A B C D E; do
      lower=$(printf '%s' "$rule" | tr 'A-Z' 'a-z')
      bad="$FIXTURES/det_${lower}_bad.cpp"
      allowed="$FIXTURES/det_${lower}_allowed.cpp"

      out=$(python3 "$LINT" --no-baseline "$bad" 2>&1)
      status=$?
      if [ "$status" -ne 1 ]; then
        echo "FAIL: $bad should exit 1 (violations), got $status"
        echo "$out"
        fail=1
      elif ! printf '%s' "$out" | grep -q "\[DET-$rule\]"; then
        echo "FAIL: $bad should trigger DET-$rule"
        echo "$out"
        fail=1
      elif printf '%s' "$out" | grep "\[DET-" | grep -qv "\[DET-$rule\]"; then
        echo "FAIL: $bad triggered a rule other than DET-$rule"
        echo "$out"
        fail=1
      else
        echo "ok: det_${lower}_bad triggers DET-$rule only"
      fi

      out=$(python3 "$LINT" --no-baseline "$allowed" 2>&1)
      status=$?
      if [ "$status" -ne 0 ]; then
        echo "FAIL: $allowed (DET-ALLOW twin) should pass clean"
        echo "$out"
        fail=1
      else
        echo "ok: det_${lower}_allowed passes clean"
      fi
    done

    # The empty-reason escape hatch must not be an escape hatch.
    tmp=$(mktemp --suffix=.cpp)
    cat > "$tmp" <<'EOF'
#include <unordered_map>
std::unordered_map<int, int> table_;
int drain() {
  int n = 0;
  // DET-ALLOW()
  for (const auto& [k, v] : table_) n += v;
  return n;
}
EOF
    out=$(python3 "$LINT" --no-baseline "$tmp" 2>&1)
    if [ $? -ne 1 ] || ! printf '%s' "$out" | grep -q "non-empty reason"; then
      echo "FAIL: empty DET-ALLOW() reason should be rejected"
      echo "$out"
      fail=1
    else
      echo "ok: empty DET-ALLOW() reason rejected"
    fi
    rm -f "$tmp"
    ;;
  *)
    echo "usage: $0 {fixtures|src}" >&2
    exit 2
    ;;
esac

exit "$fail"
