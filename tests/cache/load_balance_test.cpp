// Query-load balancing: hot-leaf read replication + least-loaded
// adaptive routing (src/store LoadBalancePolicy).
//
// Covered here:
//  * the policy is off by default and leaves zero balancing state;
//  * a read-hot leaf is promoted and its query load spreads across the
//    boosted replica set without changing any answer;
//  * routing survives losing the hottest replica mid-sweep (failover
//    with zero wrong answers, traffic keeps spreading);
//  * the whole feature is deterministic — state digests and answers are
//    bit-identical across schedule-shuffle seeds and shard counts;
//  * hint-cache eviction metering (CostMeter::hintEvictions) and the
//    PeerLoadMeter snapshot math.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/digest.h"
#include "dht/cost.h"
#include "dht/network.h"
#include "mlight/index.h"
#include "workload/datasets.h"

namespace mlight {
namespace {

using dht::LatencyModel;
using dht::Network;

/// Constant-latency LAN: heavy same-time tie collisions, so the
/// determinism matrix below actually stresses the deferred
/// promotion/demotion machinery.
LatencyModel lanModel() { return LatencyModel{2.0, 2.0, 1.0}; }

core::MLightConfig balancedConfig() {
  core::MLightConfig cfg;
  cfg.thetaSplit = 16;
  cfg.thetaMerge = 8;
  cfg.cache.enabled = true;
  cfg.loadBalance.enabled = true;
  cfg.loadBalance.promoteReads = 8;
  cfg.loadBalance.boostCopies = 6;
  cfg.loadBalance.windowMs = 1e9;  // stationary hotspot: no demotions
  return cfg;
}

/// Per-physical-peer envelope deltas between two PeerLoadMeter
/// snapshots, padded to the physical peer count.
std::vector<std::uint64_t> loadDelta(const Network& net,
                                     const std::vector<std::uint64_t>& before) {
  const std::vector<std::uint64_t>& after = net.peerLoads().counts();
  std::vector<std::uint64_t> delta(net.physicalCount(), 0);
  for (std::size_t p = 0; p < delta.size(); ++p) {
    const std::uint64_t a = p < after.size() ? after[p] : 0;
    const std::uint64_t b = p < before.size() ? before[p] : 0;
    delta[p] = a - b;
  }
  return delta;
}

/// Point query that must find the queried record (every key queried in
/// this file is a live record's key).
bool queryOk(core::MLightIndex& index, const common::Point& key) {
  const auto out = index.pointQuery(key);
  for (const auto& r : out.records) {
    if (r.key == key) return true;
  }
  return false;
}

TEST(LoadBalance, DisabledByDefaultKeepsZeroState) {
  Network net(16, 3);
  core::MLightConfig cfg;
  cfg.thetaSplit = 16;
  cfg.thetaMerge = 8;
  cfg.cache.enabled = true;
  ASSERT_FALSE(cfg.loadBalance.enabled);
  core::MLightIndex index(net, cfg);
  const auto data = workload::northeastDataset(200, 9);
  index.bulkLoad(data);
  for (std::size_t q = 0; q < 100; ++q) {
    EXPECT_TRUE(queryOk(index, data[0].key));
  }
  EXPECT_EQ(index.store().boostedLeafCount(), 0u);
  EXPECT_EQ(index.store().hotPromotions(), 0u);
  EXPECT_EQ(index.store().hotDemotions(), 0u);
}

// The core promise: hammering one key promotes its leaf, and the
// boosted replica set absorbs the traffic — the hottest peer's measured
// delta drops by at least 2x vs the unbalanced run of the exact same
// workload, with every answer still correct.
TEST(LoadBalance, HotLeafPromotedAndLoadSpreads) {
  const auto data = workload::northeastDataset(300, 9);
  const std::size_t warmup = 60;
  const std::size_t measured = 240;

  auto hottestDelta = [&](bool balanced, std::uint64_t* promotions) {
    Network net(32, 3);
    core::MLightConfig cfg = balancedConfig();
    cfg.loadBalance.enabled = balanced;
    core::MLightIndex index(net, cfg);
    index.bulkLoad(data);
    for (std::size_t q = 0; q < warmup; ++q) {
      EXPECT_TRUE(queryOk(index, data[0].key));
    }
    const std::vector<std::uint64_t> before = net.peerLoads().counts();
    for (std::size_t q = 0; q < measured; ++q) {
      EXPECT_TRUE(queryOk(index, data[0].key));
    }
    const auto delta = loadDelta(net, before);
    *promotions = index.store().hotPromotions();
    if (balanced) {
      EXPECT_GE(index.store().boostedLeafCount(), 1u);
    }
    return *std::max_element(delta.begin(), delta.end());
  };

  std::uint64_t promotionsOff = 0;
  std::uint64_t promotionsOn = 0;
  const std::uint64_t maxOff = hottestDelta(false, &promotionsOff);
  const std::uint64_t maxOn = hottestDelta(true, &promotionsOn);
  EXPECT_EQ(promotionsOff, 0u);
  EXPECT_GE(promotionsOn, 1u);
  EXPECT_LE(2 * maxOn, maxOff)
      << "boosted replicas did not absorb the hot leaf's read load";
}

// Kill the hottest replica mid-sweep: reads must fail over to the
// surviving copies with zero wrong answers, and the load must keep
// spreading over more than one peer afterwards.
TEST(HotspotRouting, FailoverUnderChurnZeroWrongAnswers) {
  Network net(32, 5);
  core::MLightConfig cfg = balancedConfig();
  cfg.replication = 2;  // base replicas so a crash cannot lose the bucket
  core::MLightIndex index(net, cfg);
  const auto data = workload::northeastDataset(300, 9);
  for (const auto& r : data) index.insert(r);

  // Phase 1: promote the hot leaf and find the hottest physical peer.
  const std::vector<std::uint64_t> s0 = net.peerLoads().counts();
  for (std::size_t q = 0; q < 120; ++q) {
    ASSERT_TRUE(queryOk(index, data[0].key));
  }
  ASSERT_GE(index.store().hotPromotions(), 1u);
  const auto hotDelta = loadDelta(net, s0);
  const std::size_t hottest = static_cast<std::size_t>(
      std::max_element(hotDelta.begin(), hotDelta.end()) - hotDelta.begin());

  // Crash the vnode of the hottest physical peer that carried the load.
  dht::RingId victim{};
  bool found = false;
  for (const auto peer : net.peers()) {
    if (net.physicalOf(peer) == hottest) {
      victim = peer;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  net.crashPeer(victim);

  // Phase 2: the sweep continues; every answer must still be exact.
  const std::vector<std::uint64_t> s1 = net.peerLoads().counts();
  std::size_t ok = 0;
  for (std::size_t q = 0; q < 120; ++q) {
    ok += queryOk(index, data[0].key);
  }
  EXPECT_EQ(ok, 120u) << "failover produced wrong or missing answers";

  // Re-convergence witness: surviving replicas share the load — more
  // than one live peer received query traffic after the crash.
  const auto postDelta = loadDelta(net, s1);
  std::size_t carriers = 0;
  for (std::size_t p = 0; p < postDelta.size(); ++p) {
    carriers += postDelta[p] > 0;
  }
  EXPECT_GE(carriers, 2u);
  index.checkInvariants();
}

// Determinism: promotions, boosted placement, frozen read routing, and
// the replica-aware hints must all be schedule-independent.  Digest and
// answers are compared across shuffle seeds x shard counts against the
// unshuffled serial run.
TEST(LoadBalance, DigestStableAcrossShuffleSeedsAndShards) {
  struct Outcome {
    std::uint64_t indexDigest = 0;
    std::uint64_t netDigest = 0;
    std::uint64_t boosted = 0;
    std::size_t ok = 0;
  };
  auto runOnce = [](std::uint64_t shuffleSeed, std::size_t shards) {
    Network net(24, 7, /*vnodesPerPeer=*/1, lanModel());
    net.setSimShards(shards);
    net.setScheduleShuffleSeed(shuffleSeed);
    core::MLightConfig cfg = balancedConfig();
    cfg.replication = 2;
    core::MLightIndex index(net, cfg);
    const auto data = workload::northeastDataset(200, 11);
    for (const auto& r : data) index.insert(r);
    Outcome out;
    for (std::size_t q = 0; q < 150; ++q) {
      out.ok += queryOk(index, data[q % 4].key);
    }
    index.checkInvariants();
    out.indexDigest = index.stateDigest();
    common::Digest nd;
    net.digestState(nd);
    out.netDigest = nd.value();
    out.boosted = index.store().boostedLeafCount();
    return out;
  };

  const Outcome base = runOnce(0, 1);
  EXPECT_EQ(base.ok, 150u);
  EXPECT_GE(base.boosted, 1u);
  for (const std::uint64_t seed : {0ull, 17ull, 23ull, 71ull}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      if (seed == 0 && shards == 1) continue;
      const Outcome run = runOnce(seed, shards);
      const std::string label =
          "seed " + std::to_string(seed) + ", shards " + std::to_string(shards);
      EXPECT_EQ(base.indexDigest, run.indexDigest) << label;
      EXPECT_EQ(base.netDigest, run.netDigest) << label;
      EXPECT_EQ(base.boosted, run.boosted) << label;
      EXPECT_EQ(base.ok, run.ok) << label;
    }
  }
}

// Eviction metering: a tiny hint cache under a wide key set must churn,
// and the churn must surface as CostMeter::hintEvictions, with the
// occupancy gauge (HintCacheSet::totalHints) bounded by capacity.
TEST(LoadBalance, HintEvictionsAreMetered) {
  Network net(8, 1);
  core::MLightConfig cfg;
  cfg.thetaSplit = 16;
  cfg.thetaMerge = 8;
  cfg.cache.enabled = true;
  cfg.cache.perDimCapacity = 2;
  core::MLightIndex index(net, cfg);
  const auto data = workload::northeastDataset(400, 9);
  index.bulkLoad(data);
  for (std::size_t q = 0; q < 200; ++q) {
    EXPECT_TRUE(queryOk(index, data[(q * 7) % data.size()].key));
  }
  EXPECT_GT(net.totalCost().hintEvictions, 0u);
  EXPECT_GT(index.hintCaches().totalHints(), 0u);
}

TEST(LoadBalance, PeerLoadMeterSnapshotMath) {
  dht::PeerLoadMeter meter;
  for (int i = 0; i < 6; ++i) meter.note(2);
  meter.note(0);
  meter.note(5);
  EXPECT_EQ(meter.countOf(2), 6u);
  EXPECT_EQ(meter.countOf(7), 0u);  // beyond the vector: implicit zero
  const auto snap = meter.snapshot(8);
  EXPECT_EQ(snap.total, 8u);
  EXPECT_EQ(snap.max, 6u);
  EXPECT_DOUBLE_EQ(snap.avg, 1.0);
  EXPECT_EQ(snap.p99, 6u);  // nearest-rank p99 of 8 samples = the max
  EXPECT_DOUBLE_EQ(snap.maxOverAvg, 6.0);

  // The meter is digest-stable: same notes, same digest.
  common::Digest a;
  common::Digest b;
  meter.digestTo(a);
  dht::PeerLoadMeter other;
  for (int i = 0; i < 6; ++i) other.note(2);
  other.note(0);
  other.note(5);
  other.digestTo(b);
  EXPECT_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace mlight
