// Integration tests for cache-aware lookups (m-LIGHT and the PHT
// baseline): live hints resolve in one metered probe, stale and poisoned
// hints are repaired in place and metered as staleHints, and a cached
// lookup never returns a different answer than the uncached search (the
// paranoid auditCacheCoherence cross-check runs on every cached hit).
//
// Single-peer networks make every initiator — and therefore every
// per-peer cache decision — deterministic.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/hint_cache.h"
#include "common/invariants.h"
#include "common/rng.h"
#include "common/zorder.h"
#include "dht/network.h"
#include "dht/rpc.h"
#include "mlight/index.h"
#include "mlight/kdspace.h"
#include "pht/pht_index.h"

namespace mlight {
namespace {

using common::AuditLevel;
using common::BitString;
using common::Point;
using index::Record;

/// Pins the audit level for one test (same idiom as invariants_test).
class ScopedLevel {
 public:
  explicit ScopedLevel(AuditLevel level) : previous_(common::auditLevel()) {
    common::setAuditLevel(level);
  }
  ~ScopedLevel() { common::setAuditLevel(previous_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  AuditLevel previous_;
};

core::MLightConfig cachedConfig() {
  core::MLightConfig cfg;
  cfg.thetaSplit = 8;
  cfg.thetaMerge = 4;
  cfg.maxEdgeDepth = 20;
  cfg.cache.enabled = true;
  return cfg;
}

std::vector<Record> uniformRecords(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Record> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Record r;
    r.key = Point{rng.uniform(), rng.uniform()};
    r.id = i;
    out.push_back(std::move(r));
  }
  return out;
}

/// Records jittered tightly around `center` — inserted they split the
/// center's leaf, erased again they merge it back.
std::vector<Record> jitteredAround(const Point& center, std::size_t n,
                                   std::uint64_t idBase) {
  common::Rng rng(23);
  std::vector<Record> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Record r;
    r.key = center;
    for (std::size_t d = 0; d < r.key.dims(); ++d) {
      double v = r.key[d] +
                 (static_cast<double>(rng.below(2001)) - 1000.0) * 1e-7;
      if (v < 0.0) v = 0.0;
      if (v >= 1.0) v = 1.0 - 1e-9;
      r.key[d] = v;
    }
    r.id = idBase + i;
    out.push_back(std::move(r));
  }
  return out;
}

// --- m-LIGHT -------------------------------------------------------------

TEST(CachedLookup, RepeatLookupResolvesInOneProbe) {
  dht::Network net(1, 5);
  core::MLightIndex index(net, cachedConfig());
  const auto data = uniformRecords(64, 7);
  for (const auto& r : data) index.insert(r);

  const auto first = index.lookup(data[0].key);
  const auto second = index.lookup(data[0].key);
  EXPECT_EQ(second.stats.cost.lookups, 1u);
  EXPECT_EQ(second.stats.cost.cacheHits, 1u);
  EXPECT_EQ(second.stats.cost.staleHints, 0u);
  EXPECT_EQ(second.leaf, first.leaf);
}

TEST(CachedLookup, HintProbeUsesItsOwnRpcVerb) {
  // Hint traffic must be distinguishable in traces/dead letters: a
  // cached probe travels as kHintProbe, never as a plain kGet.
  dht::Network net(1, 5);
  core::MLightIndex index(net, cachedConfig());
  const auto data = uniformRecords(64, 7);
  for (const auto& r : data) index.insert(r);
  index.lookup(data[0].key);  // pin a live hint for the traced lookup

  std::size_t hintProbes = 0;
  net.setRpcTrace([&](const dht::RpcDelivery& d) {
    hintProbes += d.env.kind == dht::RpcKind::kHintProbe;
  });
  const auto res = index.lookup(data[0].key);
  net.setRpcTrace({});
  EXPECT_EQ(res.stats.cost.cacheHits, 1u);
  EXPECT_EQ(hintProbes, 1u);
}

TEST(CachedLookup, DisabledCacheNeverMetersCacheTraffic) {
  dht::Network net(1, 5);
  core::MLightConfig cfg = cachedConfig();
  cfg.cache.enabled = false;  // explicit: immune to MLIGHT_CACHE
  core::MLightIndex index(net, cfg);
  const auto data = uniformRecords(64, 7);
  for (const auto& r : data) index.insert(r);

  const auto first = index.lookup(data[0].key);
  const auto second = index.lookup(data[0].key);
  EXPECT_EQ(first.stats.cost.cacheHits, 0u);
  EXPECT_EQ(first.stats.cost.staleHints, 0u);
  EXPECT_EQ(second.stats.cost.lookups, first.stats.cost.lookups);
  EXPECT_EQ(index.hintCaches().totalHints(), 0u);
}

TEST(CachedLookup, SteadyStateAveragesOneLookupPerQuery) {
  // The acceptance shape of the subsystem: once every key has been seen
  // once, uniform repeat lookups cost exactly one DHT-lookup each —
  // against the uncached ~log2(D) binary search.
  dht::Network net(1, 5);
  core::MLightIndex index(net, cachedConfig());
  const auto data = uniformRecords(256, 9);
  index.bulkLoad(data);
  ASSERT_GE(index.bucketCount(), 32u);

  for (const auto& r : data) index.lookup(r.key);  // warm
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  for (const auto& r : data) {
    const auto res = index.lookup(r.key);
    lookups += res.stats.cost.lookups;
    hits += res.stats.cost.cacheHits;
  }
  EXPECT_EQ(lookups, data.size());  // 1.0 per query
  EXPECT_EQ(hits, data.size());
}

TEST(CachedLookup, RangeQueriesSeedHintsForEveryLeafTouched) {
  dht::Network net(1, 5);
  core::MLightIndex index(net, cachedConfig());
  const auto data = uniformRecords(256, 9);
  index.bulkLoad(data);  // bulk placement learns nothing
  ASSERT_EQ(index.hintCaches().totalHints(), 0u);

  index.rangeQuery(common::Rect::unit(2));
  EXPECT_EQ(index.hintCaches().totalHints(), index.bucketCount());

  const auto res = index.lookup(data[0].key);
  EXPECT_EQ(res.stats.cost.lookups, 1u);
  EXPECT_EQ(res.stats.cost.cacheHits, 1u);
}

TEST(CachedLookup, SplitChurnRepairsStaleHintsWithoutWrongAnswers) {
  ScopedLevel paranoid(AuditLevel::kParanoid);
  common::resetAuditCounters();
  dht::Network net(1, 5);
  core::MLightIndex index(net, cachedConfig());
  const auto data = uniformRecords(64, 7);
  for (const auto& r : data) index.insert(r);

  const Point hot = data[0].key;
  index.lookup(hot);  // pin a hint for the hot cell

  // Split the hot leaf several times; the interleaved cached locates of
  // the inserts themselves run into the stale hints.
  dht::CostMeter churn;
  {
    dht::MeterScope scope(net, churn);
    for (const auto& r : jitteredAround(hot, 40, 5000)) index.insert(r);
  }
  EXPECT_GE(churn.staleHints, 1u);

  const auto repaired = index.lookup(hot);
  EXPECT_EQ(repaired.stats.cost.cacheHits + repaired.stats.cost.staleHints,
            1u);
  const auto query = index.pointQuery(hot);
  ASSERT_EQ(query.records.size(), 1u);
  EXPECT_EQ(query.records[0].id, data[0].id);
  EXPECT_EQ(common::auditCounters().failed, 0u);
}

TEST(CachedLookup, MergeChurnRepairsStaleHintsWithoutWrongAnswers) {
  ScopedLevel paranoid(AuditLevel::kParanoid);
  common::resetAuditCounters();
  dht::Network net(1, 5);
  core::MLightIndex index(net, cachedConfig());
  const auto data = uniformRecords(64, 7);
  for (const auto& r : data) index.insert(r);

  const Point hot = data[0].key;
  const auto jittered = jitteredAround(hot, 40, 5000);
  for (const auto& r : jittered) index.insert(r);
  index.lookup(hot);  // hint now points at a deep post-split leaf

  dht::CostMeter churn;
  {
    dht::MeterScope scope(net, churn);
    for (const auto& r : jittered) index.erase(r.key, r.id);
  }
  EXPECT_GE(churn.staleHints, 1u);

  const auto repaired = index.lookup(hot);
  EXPECT_EQ(repaired.stats.cost.cacheHits + repaired.stats.cost.staleHints,
            1u);
  const auto query = index.pointQuery(hot);
  ASSERT_EQ(query.records.size(), 1u);
  EXPECT_EQ(query.records[0].id, data[0].id);
  EXPECT_EQ(common::auditCounters().failed, 0u);
}

TEST(CachedLookup, PoisonedHintIsRepairedMeteredAndHarmless) {
  ScopedLevel paranoid(AuditLevel::kParanoid);
  common::resetAuditCounters();
  dht::Network net(1, 5);
  core::MLightConfig cfg = cachedConfig();
  core::MLightIndex index(net, cfg);
  const auto data = uniformRecords(64, 9);
  index.bulkLoad(data);

  const Point p = data[0].key;
  const BitString full = core::pointPathLabel(p, 2, cfg.maxEdgeDepth);
  auto& cache = index.hintCaches().forPeer(net.peers()[0].value);

  // Poison far below the real leaf (the tree is nowhere near the depth
  // cap): the direct probe cannot come back a covering leaf.
  cache.poison(full.prefix(3 + 18), 18);
  const auto res = index.lookup(p);
  EXPECT_EQ(res.stats.cost.staleHints, 1u);
  EXPECT_EQ(res.stats.cost.cacheHits, 0u);

  // The repair landed on the true leaf and re-learned it: next lookup is
  // a clean one-probe hit on the same leaf.
  const auto again = index.lookup(p);
  EXPECT_EQ(again.stats.cost.cacheHits, 1u);
  EXPECT_EQ(again.leaf, res.leaf);

  // Results never change: the poisoned query still finds its record.
  const auto query = index.pointQuery(p);
  ASSERT_EQ(query.records.size(), 1u);
  EXPECT_EQ(query.records[0].id, data[0].id);
  EXPECT_EQ(common::auditCounters().failed, 0u);
}

// --- PHT baseline --------------------------------------------------------

pht::PhtConfig cachedPhtConfig() {
  pht::PhtConfig cfg;
  cfg.thetaSplit = 8;
  cfg.thetaMerge = 4;
  cfg.cache.enabled = true;
  return cfg;
}

TEST(CachedLookup, PhtRepeatQueryResolvesInOneProbe) {
  dht::Network net(1, 6);
  pht::PhtIndex index(net, cachedPhtConfig());
  const auto data = uniformRecords(64, 11);
  for (const auto& r : data) index.insert(r);

  index.pointQuery(data[0].key);  // warms (insert already did, too)
  const auto res = index.pointQuery(data[0].key);
  EXPECT_EQ(res.stats.cost.lookups, 1u);
  EXPECT_EQ(res.stats.cost.cacheHits, 1u);
  ASSERT_EQ(res.records.size(), 1u);
  EXPECT_EQ(res.records[0].id, data[0].id);
}

TEST(CachedLookup, PhtPoisonedDeepHintIsStaleAndRepaired) {
  ScopedLevel paranoid(AuditLevel::kParanoid);
  common::resetAuditCounters();
  dht::Network net(1, 6);
  pht::PhtConfig cfg = cachedPhtConfig();
  pht::PhtIndex index(net, cfg);
  const auto data = uniformRecords(64, 11);
  for (const auto& r : data) index.insert(r);

  const Point p = data[0].key;
  // A prefix of p's own path deeper than its leaf cannot exist in the
  // trie (leaves have no descendants): the probe is a guaranteed NULL.
  const BitString full = common::interleave(p, cfg.maxDepth);
  index.hintCaches().forPeer(net.peers()[0].value).poison(full.prefix(20),
                                                          20);
  const auto res = index.pointQuery(p);
  EXPECT_EQ(res.stats.cost.staleHints, 1u);
  ASSERT_EQ(res.records.size(), 1u);
  EXPECT_EQ(res.records[0].id, data[0].id);

  const auto again = index.pointQuery(p);
  EXPECT_EQ(again.stats.cost.cacheHits, 1u);
  EXPECT_EQ(again.stats.cost.lookups, 1u);
  EXPECT_EQ(common::auditCounters().failed, 0u);
}

TEST(CachedLookup, PhtSplitChurnRepairsStaleHints) {
  ScopedLevel paranoid(AuditLevel::kParanoid);
  common::resetAuditCounters();
  dht::Network net(1, 6);
  pht::PhtIndex index(net, cachedPhtConfig());
  const auto data = uniformRecords(64, 11);
  for (const auto& r : data) index.insert(r);

  const Point hot = data[0].key;
  index.pointQuery(hot);
  dht::CostMeter churn;
  {
    dht::MeterScope scope(net, churn);
    for (const auto& r : jitteredAround(hot, 40, 5000)) index.insert(r);
  }
  EXPECT_GE(churn.staleHints, 1u);

  const auto query = index.pointQuery(hot);
  ASSERT_EQ(query.records.size(), 1u);
  EXPECT_EQ(query.records[0].id, data[0].id);
  EXPECT_EQ(common::auditCounters().failed, 0u);
}

}  // namespace
}  // namespace mlight
