// Unit tests for the lookup-hint cache (src/cache) plus negative tests
// for the two audits the subsystem added to the invariant layer:
// auditCacheCoherence (cached lookup == uncached search) and
// auditLookupSearchBounds (the binary search never loses its target).
#include "cache/hint_cache.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/bitstring.h"
#include "common/invariants.h"
#include "common/serde.h"

namespace mlight::cache {
namespace {

using mlight::common::BitString;

BitString bits(const char* text) { return BitString::fromString(text); }

CachePolicy onPolicy(std::size_t perDim = 1024) {
  CachePolicy p;
  p.enabled = true;
  p.perDimCapacity = perDim;
  return p;
}

// --- LabelHintCache ------------------------------------------------------

TEST(LabelHintCache, FindCoveringReturnsDeepestPrefix) {
  LabelHintCache cache(2, onPolicy());
  cache.learn(bits("0010"), 1);
  cache.learn(bits("001011"), 3);
  const BitString full = bits("0010110101");
  const LabelHint* hit = cache.findCovering(full);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->leaf, bits("001011"));
  EXPECT_EQ(hit->depth, 3u);
}

TEST(LabelHintCache, FindCoveringMissesNonPrefixes) {
  LabelHintCache cache(2, onPolicy());
  cache.learn(bits("0011"), 1);
  EXPECT_EQ(cache.findCovering(bits("0010110101")), nullptr);
}

TEST(LabelHintCache, ExactFullPathIsCovering) {
  // A hint may be as deep as the query path itself.
  LabelHintCache cache(2, onPolicy());
  cache.learn(bits("00101"), 2);
  const LabelHint* hit = cache.findCovering(bits("00101"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->leaf, bits("00101"));
}

TEST(LabelHintCache, LearnRefreshesDepthInPlace) {
  LabelHintCache cache(2, onPolicy());
  cache.learn(bits("0010"), 1);
  cache.learn(bits("0010"), 7);
  EXPECT_EQ(cache.size(), 1u);
  const LabelHint* hit = cache.findCovering(bits("0010"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->depth, 7u);
}

TEST(LabelHintCache, EvictsLeastRecentlyUsedAtCapacity) {
  LabelHintCache cache(1, onPolicy(2));  // capacity = 2 * 1
  EXPECT_EQ(cache.capacity(), 2u);
  cache.learn(bits("00"), 0);
  cache.learn(bits("010"), 1);
  // Touch "00" so "010" becomes the LRU victim.
  EXPECT_NE(cache.findCovering(bits("00")), nullptr);
  cache.learn(bits("011"), 1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.findCovering(bits("010")), nullptr);
  EXPECT_NE(cache.findCovering(bits("00")), nullptr);
  EXPECT_NE(cache.findCovering(bits("011")), nullptr);
}

TEST(LabelHintCache, ForgetDropsTheHint) {
  LabelHintCache cache(2, onPolicy());
  cache.learn(bits("0010"), 1);
  cache.forget(bits("0010"));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.findCovering(bits("0010")), nullptr);
  // Forgetting a label that is not cached is a no-op.
  cache.forget(bits("0011"));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LabelHintCache, ForgetUnshadowsShallowerHint) {
  // After a merge the deeper label is dead; forgetting it must let the
  // surviving shallower hint cover the cell again.
  LabelHintCache cache(2, onPolicy());
  cache.learn(bits("0010"), 1);
  cache.learn(bits("001011"), 3);
  cache.forget(bits("001011"));
  const LabelHint* hit = cache.findCovering(bits("0010110101"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->leaf, bits("0010"));
}

// --- LabelHint serde -----------------------------------------------------

TEST(LabelHint, SerdeRoundTrip) {
  LabelHint h;
  h.leaf = bits("001011010111");
  h.depth = 9;
  mlight::common::Writer w;
  h.serialize(w);
  const std::vector<std::uint8_t> bytes = std::move(w).take();
  mlight::common::Reader r(bytes);
  const LabelHint back = LabelHint::deserialize(r);
  EXPECT_EQ(back.leaf, h.leaf);
  EXPECT_EQ(back.depth, h.depth);
}

// --- HintCacheSet --------------------------------------------------------

TEST(HintCacheSet, KeepsIndependentPerPeerCaches) {
  HintCacheSet set(2, onPolicy());
  set.forPeer(7).learn(bits("0010"), 1);
  EXPECT_EQ(set.forPeer(9).findCovering(bits("0010")), nullptr);
  EXPECT_NE(set.forPeer(7).findCovering(bits("0010")), nullptr);
  EXPECT_EQ(set.peerCount(), 2u);
  EXPECT_EQ(set.totalHints(), 1u);
}

// --- MLIGHT_CACHE environment switch -------------------------------------

class ScopedCacheEnv {
 public:
  explicit ScopedCacheEnv(const char* value) {
    const char* old = std::getenv("MLIGHT_CACHE");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value == nullptr) {
      ::unsetenv("MLIGHT_CACHE");
    } else {
      ::setenv("MLIGHT_CACHE", value, 1);
    }
  }
  ~ScopedCacheEnv() {
    if (had_) {
      ::setenv("MLIGHT_CACHE", saved_.c_str(), 1);
    } else {
      ::unsetenv("MLIGHT_CACHE");
    }
  }
  ScopedCacheEnv(const ScopedCacheEnv&) = delete;
  ScopedCacheEnv& operator=(const ScopedCacheEnv&) = delete;

 private:
  bool had_ = false;
  std::string saved_;
};

TEST(CacheEnv, UnsetOrEmptyUsesFallback) {
  {
    ScopedCacheEnv env(nullptr);
    EXPECT_FALSE(cacheEnabledFromEnv(false));
    EXPECT_TRUE(cacheEnabledFromEnv(true));
  }
  {
    ScopedCacheEnv env("");
    EXPECT_FALSE(cacheEnabledFromEnv(false));
    EXPECT_TRUE(cacheEnabledFromEnv(true));
  }
}

TEST(CacheEnv, ExplicitOffValuesDisable) {
  for (const char* off : {"0", "off", "false"}) {
    ScopedCacheEnv env(off);
    EXPECT_FALSE(cacheEnabledFromEnv(true)) << "value: " << off;
  }
}

TEST(CacheEnv, ExplicitOnValuesEnable) {
  for (const char* on : {"1", "on", "true", "yes"}) {
    ScopedCacheEnv env(on);
    EXPECT_TRUE(cacheEnabledFromEnv(false)) << "value: " << on;
  }
}

// A typo used to silently *enable* the cache (any non-off value was
// treated as on) — now anything outside the two explicit value sets
// fails loudly, mirroring the MLIGHT_FAULT_SEED contract.
TEST(CacheEnv, MalformedValuesThrow) {
  for (const char* bad :
       {"2", "enabled", "ON", "offf", " 1", "1 ", "tru", "no"}) {
    ScopedCacheEnv env(bad);
    EXPECT_THROW(cacheEnabledFromEnv(false), mlight::common::CheckFailure)
        << "value: " << bad;
    EXPECT_THROW(cacheEnabledFromEnv(true), mlight::common::CheckFailure)
        << "value: " << bad;
  }
}

// --- the cache's audits --------------------------------------------------

TEST(CacheAudits, CoherenceAcceptsMatchingLeaves) {
  mlight::common::resetAuditCounters();
  EXPECT_NO_THROW(
      mlight::common::auditCacheCoherence(bits("0010"), bits("0010")));
  EXPECT_EQ(mlight::common::auditCounters().passed, 1u);
}

TEST(CacheAudits, CoherenceDetectsDivergentLeaves) {
  mlight::common::resetAuditCounters();
  EXPECT_THROW(
      mlight::common::auditCacheCoherence(bits("0010"), bits("0011")),
      mlight::common::AuditFailure);
  EXPECT_EQ(mlight::common::auditCounters().failed, 1u);
}

TEST(CacheAudits, SearchBoundsAcceptOrderedRange) {
  EXPECT_NO_THROW(mlight::common::auditLookupSearchBounds(0, 0));
  EXPECT_NO_THROW(mlight::common::auditLookupSearchBounds(3, 9));
}

TEST(CacheAudits, SearchBoundsDetectLostTarget) {
  mlight::common::resetAuditCounters();
  EXPECT_THROW(mlight::common::auditLookupSearchBounds(5, 4),
               mlight::common::AuditFailure);
  EXPECT_EQ(mlight::common::auditCounters().failed, 1u);
}

}  // namespace
}  // namespace mlight::cache
