#include "rst/rst_index.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/zorder.h"
#include "dht/network.h"
#include "index/oracle.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace mlight::rst {
namespace {

using mlight::common::Point;
using mlight::common::Rect;
using mlight::common::Rng;
using mlight::dht::CostMeter;
using mlight::dht::MeterScope;
using mlight::dht::Network;
using mlight::index::Oracle;
using mlight::index::Record;

Record rec(double x, double y, std::uint64_t id) {
  Record r;
  r.key = Point{x, y};
  r.id = id;
  r.payload = "p" + std::to_string(id);
  return r;
}

RstConfig smallConfig() {
  RstConfig cfg;
  cfg.maxDepth = 16;
  cfg.gamma = 8;
  cfg.bandCeiling = 3;
  return cfg;
}

TEST(RstIndex, EmptyIndexAnswersEmptyQueries) {
  Network net(32);
  RstIndex index(net, smallConfig());
  EXPECT_TRUE(index.rangeQuery(Rect(Point{0.1, 0.1}, Point{0.9, 0.9}))
                  .records.empty());
  EXPECT_TRUE(index.pointQuery(Point{0.5, 0.5}).records.empty());
}

TEST(RstIndex, InsertRegistersOnlyInsideTheBand) {
  Network net(32);
  RstIndex index(net, smallConfig());
  CostMeter meter;
  {
    MeterScope scope(net, meter);
    index.insert(rec(0.3, 0.7, 1));
  }
  // One DHT-lookup per band level: maxDepth - bandCeiling + 1.
  EXPECT_EQ(meter.lookups, 16u - 3u + 1u);
  index.checkInvariants();
  // Nothing stored above the ceiling: the root and levels 1-2 are empty.
  index.store().forEach([&](const auto& key, const RstNode&, auto) {
    EXPECT_GE(key.size(), 3u);
  });
}

TEST(RstIndex, RangeQueryMatchesOracle) {
  Network net(64);
  RstIndex index(net, smallConfig());
  Oracle oracle;
  Rng rng(11);
  for (std::uint64_t i = 0; i < 300; ++i) {
    const Record r = rec(rng.uniform(), rng.uniform(), i);
    index.insert(r);
    oracle.insert(r);
  }
  index.checkInvariants();
  for (double span : {0.0, 0.05, 0.2, 1.0}) {
    for (const Rect& q :
         mlight::workload::uniformRangeQueries(8, 2, span, 13)) {
      auto got = index.rangeQuery(q).records;
      Oracle::sortById(got);
      EXPECT_EQ(got, oracle.rangeQuery(q)) << q.toString();
    }
  }
}

TEST(RstIndex, RangeQueryMatchesOracleClustered) {
  Network net(64);
  RstIndex index(net, smallConfig());
  Oracle oracle;
  for (const Record& r :
       mlight::workload::clusteredDataset(400, 2, 3, 0.05, 17)) {
    index.insert(r);
    oracle.insert(r);
  }
  for (const Rect& q :
       mlight::workload::uniformRangeQueries(20, 2, 0.05, 19)) {
    auto got = index.rangeQuery(q).records;
    Oracle::sortById(got);
    EXPECT_EQ(got, oracle.rangeQuery(q));
  }
}

TEST(RstIndex, DecompositionRespectsBandCeiling) {
  Network net(8);
  RstIndex index(net, smallConfig());
  // Even the full space decomposes into segments at the ceiling, never
  // the root.
  const auto cells = index.decompose(Rect::unit(2));
  EXPECT_EQ(cells.size(), 8u);  // 2^bandCeiling
  for (const auto& cell : cells) EXPECT_EQ(cell.size(), 3u);
}

TEST(RstIndex, BandCeilingAvoidsRootHotspot) {
  // Compare against a ceiling-0 configuration: with the band, no node
  // absorbs every insert (the root would otherwise take the first gamma
  // records and then saturate).
  Network net(32);
  RstConfig banded = smallConfig();
  RstIndex a(net, banded);
  RstConfig unbanded = smallConfig();
  unbanded.bandCeiling = 0;
  unbanded.dhtNamespace = "rst-unbanded/";
  RstIndex b(net, unbanded);
  Rng rng(23);
  CostMeter mA;
  CostMeter mB;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Record r = rec(rng.uniform(), rng.uniform(), i);
    {
      MeterScope scope(net, mA);
      a.insert(r);
    }
    {
      MeterScope scope(net, mB);
      b.insert(r);
    }
  }
  // The banded variant spends fewer lookups (skips the top levels).
  EXPECT_LT(mA.lookups, mB.lookups);
  a.checkInvariants();
  b.checkInvariants();
}

TEST(RstIndex, EraseRemovesEverywhere) {
  Network net(32);
  RstIndex index(net, smallConfig());
  Rng rng(29);
  std::vector<Record> records;
  for (std::uint64_t i = 0; i < 100; ++i) {
    records.push_back(rec(rng.uniform(), rng.uniform(), i));
    index.insert(records.back());
  }
  for (const Record& r : records) EXPECT_EQ(index.erase(r.key, r.id), 1u);
  EXPECT_EQ(index.size(), 0u);
  index.checkInvariants();
  EXPECT_TRUE(index.rangeQuery(Rect::unit(2)).records.empty());
}

TEST(RstIndex, PointQueryIsSingleLookup) {
  Network net(32);
  RstIndex index(net, smallConfig());
  index.insert(rec(0.25, 0.75, 5));
  const auto res = index.pointQuery(Point{0.25, 0.75});
  EXPECT_EQ(res.records.size(), 1u);
  EXPECT_EQ(res.stats.cost.lookups, 1u);
}

TEST(RstIndex, SurvivesChurn) {
  Network net(48);
  RstIndex index(net, smallConfig());
  Oracle oracle;
  Rng rng(31);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Record r = rec(rng.uniform(), rng.uniform(), i);
    index.insert(r);
    oracle.insert(r);
  }
  for (int i = 0; i < 8; ++i) {
    net.removePeer(net.peers()[rng.below(net.peerCount())]);
  }
  net.addPeer("rst-joiner");
  index.checkInvariants();
  for (const Rect& q :
       mlight::workload::uniformRangeQueries(10, 2, 0.15, 37)) {
    auto got = index.rangeQuery(q).records;
    Oracle::sortById(got);
    EXPECT_EQ(got, oracle.rangeQuery(q));
  }
}

TEST(RstIndex, RejectsBadConfig) {
  Network net(8);
  RstConfig cfg;
  cfg.gamma = 0;
  EXPECT_THROW(RstIndex(net, cfg), std::invalid_argument);
  cfg = RstConfig{};
  cfg.bandCeiling = cfg.maxDepth;
  EXPECT_THROW(RstIndex(net, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace mlight::rst
