// Integration coverage of the batched durable write path: acknowledged
// batched inserts survive an owner crash via WAL replay (the THEORY.md
// "acked write survives owner crash" invariant), replay is idempotent
// and bit-identical across the shard/shuffle matrix, unacknowledged
// frames are never replayed, and an oversized batch interacts correctly
// with both split strategies.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bitstring.h"
#include "common/serde.h"
#include "dht/network.h"
#include "mlight/index.h"
#include "wal/wal.h"
#include "workload/datasets.h"

namespace mlight {
namespace {

using common::BitString;
using dht::Network;
using dht::RingId;

/// The physical peer primarily holding the most records — the crash
/// victim that hurts the most.  Deterministic: sorted bucket walk,
/// ties broken by ring position.
RingId mostLoadedOwner(const core::MLightIndex& index) {
  const auto load = index.store().perPeerRecords();
  RingId victim = load.begin()->first;
  std::size_t best = 0;
  for (const auto& [owner, records] : load) {
    if (records > best) {
      best = records;
      victim = owner;
    }
  }
  return victim;
}

/// Every record's id must be answerable at its key — the definition of
/// "the acked write survived".
void expectAllPresent(core::MLightIndex& index,
                      const std::vector<index::Record>& data) {
  for (const auto& r : data) {
    const auto res = index.pointQuery(r.key);
    bool found = false;
    for (const auto& got : res.records) found = found || got.id == r.id;
    EXPECT_TRUE(found) << "record " << r.id << " lost";
  }
}

core::MLightConfig walConfig() {
  core::MLightConfig cfg;
  cfg.thetaSplit = 16;
  cfg.thetaMerge = 8;
  cfg.replication = 1;  // crashes genuinely destroy buckets
  cfg.wal = true;
  return cfg;
}

TEST(WalReplay, AckedBatchedWritesSurviveOwnerCrashAtReplicationOne) {
  Network net(32, 7);
  core::MLightIndex index(net, walConfig());
  const auto data = workload::uniformDataset(400, 2, 11);

  std::vector<std::uint64_t> acked;
  const auto res = index.insertBatched(data, 64, &acked);
  EXPECT_EQ(res.failed, 0u);
  EXPECT_EQ(res.acked, data.size());
  EXPECT_EQ(acked.size(), data.size());
  ASSERT_NE(index.walSet(), nullptr);
  EXPECT_GT(index.walSet()->totalFrames(), 0u);

  const RingId victim = mostLoadedOwner(index);
  const std::string name = net.physicalNameOf(victim);
  ASSERT_TRUE(net.crashPeer(victim));
  EXPECT_GT(index.store().lostBuckets(), 0u);

  // Same name => same ring positions: the rejoined peer owns its old
  // keys again, which is what lets replay re-place them locally.
  const RingId rejoined = net.addPeer(name);
  EXPECT_EQ(rejoined, victim);

  const auto stats = index.recoverFromWal(name, rejoined);
  EXPECT_GT(stats.framesScanned, 0u);
  EXPECT_GT(stats.bucketsRestored, 0u);
  EXPECT_GT(stats.recordsRestored, 0u);

  // Everything acknowledged is queryable again, the tree is coherent,
  // and nothing is left under-replicated.
  index.checkInvariants();
  expectAllPresent(index, data);
  EXPECT_EQ(index.size(), data.size());
  EXPECT_EQ(index.store().underReplicatedBuckets(), 0u);
}

TEST(WalReplay, SecondReplayIsAByteExactNoOp) {
  Network net(32, 7);
  core::MLightIndex index(net, walConfig());
  const auto data = workload::uniformDataset(300, 2, 13);
  index.insertBatched(data, 64);

  const RingId victim = mostLoadedOwner(index);
  const std::string name = net.physicalNameOf(victim);
  ASSERT_TRUE(net.crashPeer(victim));
  const RingId rejoined = net.addPeer(name);

  const auto first = index.recoverFromWal(name, rejoined);
  EXPECT_GT(first.bucketsRestored, 0u);
  index.checkInvariants();
  const std::uint64_t settled = index.stateDigest();

  // Nothing is mourned any more: a double replay (an operator running
  // recovery twice, or a retried recovery RPC) must change nothing.
  const auto second = index.recoverFromWal(name, rejoined);
  EXPECT_GT(second.framesScanned, 0u);
  EXPECT_EQ(second.bucketsRestored, 0u);
  EXPECT_EQ(second.recordsRestored, 0u);
  EXPECT_EQ(index.stateDigest(), settled);
  expectAllPresent(index, data);
}

TEST(WalReplay, UnackedFrameFromACrashMidBatchIsNeverReplayed) {
  Network net(32, 7);
  core::MLightIndex index(net, walConfig());
  const auto data = workload::uniformDataset(300, 2, 17);
  index.insertBatched(data, 64);

  const RingId victim = mostLoadedOwner(index);
  const std::string name = net.physicalNameOf(victim);

  // A batch the victim applied but never acknowledged: hand-append the
  // open frame a crash between apply and ack leaves behind, against a
  // bucket the victim actually owns.
  BitString victimKey;
  index.store().forEach([&](const BitString& label, const core::LeafBucket&,
                            RingId owner) {
    if (victimKey.empty() && owner == victim) victimKey = label;
  });
  ASSERT_FALSE(victimKey.empty());
  index::Record bogus;
  bogus.key = common::Point{0.5, 0.5};
  bogus.id = 999999;
  common::Writer frame;
  frame.writeU32(1);
  bogus.serialize(frame);
  index.walSet()->forPeer(name).append(wal::FrameKind::kBatch, victimKey,
                                       frame.bytes());  // no commit

  ASSERT_TRUE(net.crashPeer(victim));
  const RingId rejoined = net.addPeer(name);
  const auto stats = index.recoverFromWal(name, rejoined);
  EXPECT_GT(stats.bucketsRestored, 0u);

  // The unacked record must not resurface anywhere; everything acked
  // must.
  index.checkInvariants();
  expectAllPresent(index, data);
  index.store().forEach([&](const BitString&, const core::LeafBucket& bucket,
                            RingId) {
    for (const auto& r : bucket.records) EXPECT_NE(r.id, bogus.id);
  });
}

// --- Replay determinism across the shard/shuffle matrix -----------------
//
// WAL appends happen only in facade order or in the serialized canonical
// apply at the window barrier, so the log image — and everything replay
// rebuilds from it — must be bit-identical across MLIGHT_SIM_SHARDS and
// schedule-shuffle seeds (the PR 6/7 determinism contract extended to
// the durability layer).

struct ReplayOutcome {
  std::uint64_t indexDigest = 0;
  std::uint64_t walDigest = 0;
  std::size_t bucketsRestored = 0;
};

ReplayOutcome runReplayScenario(std::size_t shards,
                                std::uint64_t shuffleSeed) {
  Network net(32, 7);
  net.setSimShards(shards);
  net.setScheduleShuffleSeed(shuffleSeed);
  core::MLightIndex index(net, walConfig());
  const auto data = workload::uniformDataset(360, 2, 19);
  const std::vector<index::Record> before(data.begin(), data.end() - 60);
  const std::vector<index::Record> after(data.end() - 60, data.end());

  index.insertBatched(before, 64);
  const RingId victim = mostLoadedOwner(index);
  const std::string name = net.physicalNameOf(victim);
  net.crashPeer(victim);
  const RingId rejoined = net.addPeer(name);
  const auto stats = index.recoverFromWal(name, rejoined);
  index.insertBatched(after, 64);  // life goes on after recovery
  index.checkInvariants();

  ReplayOutcome out;
  out.indexDigest = index.stateDigest();
  common::Digest wd;
  index.walSet()->digestState(wd);
  out.walDigest = wd.value();
  out.bucketsRestored = stats.bucketsRestored;
  return out;
}

TEST(WalReplay, BitIdenticalAcrossShardCountsAndShuffleSeeds) {
  const ReplayOutcome reference = runReplayScenario(1, 0);
  EXPECT_GT(reference.bucketsRestored, 0u);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    for (const std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{17},
                                     std::uint64_t{71}}) {
      const ReplayOutcome run = runReplayScenario(shards, seed);
      const std::string label = "shards " + std::to_string(shards) +
                                ", shuffle seed " + std::to_string(seed);
      EXPECT_EQ(run.indexDigest, reference.indexDigest) << label;
      EXPECT_EQ(run.walDigest, reference.walDigest) << label;
      EXPECT_EQ(run.bucketsRestored, reference.bucketsRestored) << label;
    }
  }
}

// --- Batch boundary vs split planning -----------------------------------

TEST(WalReplay, OversizedBatchSplitsOnceAndStaysCoherentUnderBothStrategies) {
  for (const auto strategy :
       {core::SplitStrategy::kThreshold, core::SplitStrategy::kDataAware}) {
    Network net(16, 5);
    core::MLightConfig cfg = walConfig();
    cfg.thetaSplit = 8;  // one 64-record batch massively oversubscribes
    cfg.thetaMerge = 4;
    cfg.epsilon = 8.0;  // same pressure for the data-aware planner
    cfg.strategy = strategy;
    core::MLightIndex index(net, cfg);
    const auto data = workload::uniformDataset(84, 2, 31);
    const std::vector<index::Record> seedRecs(data.begin(),
                                              data.begin() + 20);
    const std::vector<index::Record> batch(data.begin() + 20, data.end());

    // Grow a real tree first (single-record path), so the batch spans
    // several leaves and must form several groups.
    for (const auto& r : seedRecs) index.insert(r);
    ASSERT_GT(index.bucketCount(), 1u);

    const auto res = index.insertBatched(batch, 64);
    EXPECT_EQ(res.failed, 0u);
    EXPECT_EQ(res.acked, batch.size());
    EXPECT_GE(res.groups, 2u) << "batch should span multiple leaves";

    // The single group-level split pass still leaves a coherent,
    // θ-respecting tree, and every record is answerable.
    index.checkInvariants();
    expectAllPresent(index, data);
  }
}

}  // namespace
}  // namespace mlight
