// Unit coverage of the per-peer write-ahead log (src/wal): frame
// round-trip with commit marks, acked/unacked selection, torn-tail scan
// behaviour, the deterministic simulated file layout, and digest
// stability.  Integration with the batched write path lives in
// wal_replay_test.cpp.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/bitstring.h"
#include "common/check.h"
#include "common/digest.h"
#include "wal/wal.h"

namespace mlight::wal {
namespace {

using mlight::common::BitString;

std::vector<std::uint8_t> payload(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

BitString key(std::string_view bits) { return BitString::fromString(bits); }

TEST(Wal, AppendScanRoundTripPreservesEveryField) {
  PeerWal log("wal/0/n.wal");
  const std::uint64_t a = log.append(FrameKind::kPlace, key("1010"),
                                     payload("bucket-image"));
  const std::uint64_t b = log.append(FrameKind::kBatch, key("10101"),
                                     payload("three-records"));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  log.commit(a);

  const std::vector<Frame> frames = log.scan();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].lsn, 1u);
  EXPECT_EQ(frames[0].kind, FrameKind::kPlace);
  EXPECT_TRUE(frames[0].committed);
  EXPECT_EQ(frames[0].key, key("1010"));
  EXPECT_EQ(frames[0].payload, payload("bucket-image"));
  EXPECT_EQ(frames[1].lsn, 2u);
  EXPECT_EQ(frames[1].kind, FrameKind::kBatch);
  EXPECT_FALSE(frames[1].committed);
  EXPECT_EQ(frames[1].key, key("10101"));
  EXPECT_EQ(frames[1].payload, payload("three-records"));
}

TEST(Wal, ScanCommittedSelectsExactlyTheAcknowledgedFrames) {
  // The crash-mid-batch shape: a batch applied and acknowledged (A), a
  // batch applied but not yet acknowledged when the peer died (B), and
  // a later acknowledged one (C).  Replay input is {A, C} — an open
  // frame was never promised to any client.
  PeerWal log("wal/0/n.wal");
  const std::uint64_t a =
      log.append(FrameKind::kBatch, key("00"), payload("acked"));
  log.commit(a);
  log.append(FrameKind::kBatch, key("01"), payload("unacked"));
  const std::uint64_t c =
      log.append(FrameKind::kBatch, key("10"), payload("acked-too"));
  log.commit(c);

  const std::vector<Frame> acked = log.scanCommitted();
  ASSERT_EQ(acked.size(), 2u);
  EXPECT_EQ(acked[0].lsn, a);
  EXPECT_EQ(acked[1].lsn, c);
  EXPECT_EQ(log.scan().size(), 3u);  // the open frame is still on disk
}

TEST(Wal, CommitOfAnUnknownLsnFailsLoudly) {
  PeerWal log("wal/0/n.wal");
  EXPECT_THROW(log.commit(1), mlight::common::CheckFailure);
  const std::uint64_t a =
      log.append(FrameKind::kPlace, key("1"), payload("x"));
  log.commit(a);              // fine
  log.commit(a);              // re-commit is idempotent, not an error
  EXPECT_THROW(log.commit(a + 1), mlight::common::CheckFailure);
}

TEST(Wal, TornTailEndsTheScanAtTheLastCompleteFrame) {
  PeerWal log("wal/0/n.wal");
  log.appendCommitted(FrameKind::kPlace, key("1010"), payload("one"));
  log.appendCommitted(FrameKind::kPlace, key("1011"), payload("two"));
  const std::size_t intact = log.byteSize();
  log.appendCommitted(FrameKind::kBatch, key("1100"), payload("three"));

  // A crash mid-append leaves a partial frame: cut into the third
  // frame's header.  The scan must stop cleanly after frame two.
  log.truncate(intact + 3);
  EXPECT_EQ(log.frameCount(), 2u);
  EXPECT_EQ(log.scan().size(), 2u);

  // Recovery discards the torn bytes entirely (cut at the frame
  // boundary); the log accepts appends again and stays parseable.
  log.truncate(intact);
  const std::uint64_t fresh =
      log.appendCommitted(FrameKind::kBatch, key("1101"), payload("four"));
  const std::vector<Frame> frames = log.scan();
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames.back().lsn, fresh);
  EXPECT_EQ(frames.back().payload, payload("four"));
}

TEST(WalSet, FileLayoutIsAPureFunctionOfDirSeedAndName) {
  WalSet a("wal", 7);
  WalSet b("wal", 7);
  WalSet other("wal", 8);
  EXPECT_EQ(a.filePathFor("node:3"), b.filePathFor("node:3"));
  EXPECT_NE(a.filePathFor("node:3"), other.filePathFor("node:3"));
  EXPECT_NE(a.filePathFor("node:3"), a.filePathFor("node:4"));
  // forPeer materializes the log at exactly the advertised path.
  EXPECT_EQ(a.forPeer("node:3").filePath(), a.filePathFor("node:3"));
}

TEST(WalSet, PeerNamesAreSanitizedIntoSafeFileNames) {
  WalSet set("wal", 1);
  const std::string path = set.filePathFor("peer/0 x!");
  // Everything outside [A-Za-z0-9._-] becomes '_': no path separators
  // or shell metacharacters survive into the file name.
  const std::size_t slash = path.find_last_of('/');
  ASSERT_NE(slash, std::string::npos);
  EXPECT_EQ(path.substr(slash + 1), "peer_0_x_.wal");
}

TEST(WalSet, DigestIsStableAcrossSetsAndSensitiveToCommits) {
  const auto build = [](bool commitSecond) {
    WalSet set("wal", 42);
    PeerWal& n0 = set.forPeer("node:0");
    n0.appendCommitted(FrameKind::kPlace, key("10"), payload("a"));
    const std::uint64_t lsn =
        set.forPeer("node:1").append(FrameKind::kBatch, key("11"),
                                     payload("b"));
    if (commitSecond) set.forPeer("node:1").commit(lsn);
    mlight::common::Digest d;
    set.digestState(d);
    return d.value();
  };
  EXPECT_EQ(build(false), build(false));
  EXPECT_EQ(build(true), build(true));
  // The commit mark is one byte of the image — the digest must see it.
  EXPECT_NE(build(false), build(true));
}

TEST(WalSet, TotalsAggregateAcrossPeers) {
  WalSet set("wal", 3);
  EXPECT_EQ(set.peerCount(), 0u);
  EXPECT_EQ(set.findPeer("node:0"), nullptr);  // lookup never creates
  set.forPeer("node:0").appendCommitted(FrameKind::kPlace, key("0"),
                                        payload("x"));
  set.forPeer("node:0").appendCommitted(FrameKind::kBatch, key("0"),
                                        payload("y"));
  set.forPeer("node:1").appendCommitted(FrameKind::kPlace, key("1"),
                                        payload("z"));
  EXPECT_EQ(set.peerCount(), 2u);
  EXPECT_EQ(set.totalFrames(), 3u);
  EXPECT_EQ(set.totalBytes(), set.forPeer("node:0").byteSize() +
                                  set.forPeer("node:1").byteSize());
  ASSERT_NE(set.findPeer("node:0"), nullptr);
  EXPECT_EQ(set.findPeer("node:0")->frameCount(), 2u);
}

}  // namespace
}  // namespace mlight::wal
