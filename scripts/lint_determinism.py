#!/usr/bin/env python3
"""Project lint enforcing the determinism contract (docs/THEORY.md).

The simulator's replay, golden-output, and schedule-perturbation tests
all assume that no simulation-visible state leaks in from sources the
seeds don't control.  clang-tidy has no checks for these project rules,
so this is a purpose-built lexical lint over ``src/``:

  DET-A  iteration over ``std::unordered_map``/``unordered_set``
         variables.  Hash-table iteration order is
         implementation-defined; anything it feeds (serde, digests,
         fan-out, metrics, logs) silently depends on it.  Walk a sorted
         snapshot instead (``common::sortedKeys``).
  DET-B  wall-clock / ambient randomness primitives
         (``std::chrono::*_clock``, ``time()``, ``rand()``,
         ``std::random_device``, ``std::mt19937``, ...).  Simulated time
         comes from ``dht::SimClock``; randomness from seeded
         ``common::Rng``.  Sanctioned exceptions live in
         ``bench/bench_util.h`` (the wall-clock perf harness) and
         ``src/common/rng.h`` (the seeded generator itself).
  DET-C  ordering or hashing keyed on pointer values
         (``std::map<T*,...>``, ``std::hash<T*>``,
         ``reinterpret_cast<uintptr_t>``).  Allocator addresses differ
         across runs/ASLR, so pointer order is a hidden RNG.
  DET-D  float accumulation inside an unordered-container loop.  Even
         with DET-A waived, ``sum += x`` over hash order changes the
         rounding sequence, so metered totals drift between runs.
  DET-E  mutable static-storage data (function-local ``static``,
         ``static``/``inline`` namespace-scope variables, static data
         members — anything neither const nor constexpr).  Such state is
         shared across the sharded executor's worker threads yet never
         appears in a lambda's capture list, so a handler or prep stage
         can reach it invisibly: a data race under parallel prep, and a
         cross-run ordering leak even when serial.  Per-run state
         belongs on the owning object (Network/SimScheduler/index);
         ``thread_local`` is flagged too, since worker identity is not
         simulation state.

Suppression: a ``// DET-ALLOW(reason)`` comment on the flagged line or
the line directly above waives every rule for that line.  The reason is
mandatory — an empty one is itself a violation.

Baseline: ``scripts/determinism_baseline.json`` holds grandfathered
violations as stable keys (file + rule + normalized source text, no line
numbers, so unrelated edits don't churn it).  Anything not in the
baseline fails the lint; ``--update-baseline`` rewrites the file.  The
checked-in baseline is EMPTY and the goal is to keep it that way.

Usage:
  scripts/lint_determinism.py [paths...]          # default: src/
  scripts/lint_determinism.py --no-baseline       # report everything
  scripts/lint_determinism.py --update-baseline   # grandfather current
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "scripts",
                                "determinism_baseline.json")

SOURCE_EXTENSIONS = (".h", ".hpp", ".cpp", ".cc")

# Files allowed to touch wall clocks / ambient randomness (DET-B).
CLOCK_ALLOWLIST = (
    os.path.join("bench", "bench_util.h"),  # wall-clock perf harness
    os.path.join("src", "common", "rng.h"),  # the seeded generator
)

DET_ALLOW_RE = re.compile(r"//\s*DET-ALLOW\((?P<reason>[^)]*)\)")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<"
)
# Identifier that terminates a (possibly multi-line) declaration whose
# type mentioned an unordered container: "> name;", "> name = ...",
# "> name{...};".
DECL_NAME_RE = re.compile(r">\s*(?:&\s*)?(\w+)\s*(?:;|=|\{)")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*?:\s*&?(?:\w+(?:\.|->))*(\w+)\s*\)")
# Only begin() exposes hash order; bare end() comparisons (the find
# idiom `it == m.end()`) are harmless and deliberately not matched.
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*c?begin\s*\(")

CLOCK_PATTERNS = [
    (re.compile(r"std::chrono::(?:system|steady|high_resolution)_clock"),
     "std::chrono clock (simulated time comes from dht::SimClock)"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(?:nullptr|NULL|0)?\s*\)"),
     "time() wall clock"),
    (re.compile(r"(?<![\w:.>])(?:s?rand)\s*\("),
     "C rand()/srand() (use seeded common::Rng)"),
    (re.compile(r"std::random_device"),
     "std::random_device (nondeterministic entropy source)"),
    (re.compile(r"std::mt19937(?:_64)?"),
     "std::mt19937 (use the project-seeded common::Rng)"),
    (re.compile(r"(?<![\w:.>])gettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w:.>])clock_gettime\s*\("), "clock_gettime()"),
]

POINTER_KEY_PATTERNS = [
    (re.compile(r"\bstd::(?:multi)?(?:map|set)\s*<\s*[\w:]+(?:\s*<[^<>]*>)?"
                r"\s*\*"),
     "ordered container keyed on a pointer (address order is a hidden RNG)"),
    (re.compile(r"\bunordered_(?:multi)?(?:map|set)\s*<\s*[\w:]+"
                r"(?:\s*<[^<>]*>)?\s*\*"),
     "hash container keyed on a pointer"),
    (re.compile(r"\bstd::hash\s*<\s*[\w:]+(?:\s*<[^<>]*>)?\s*\*\s*>"),
     "std::hash over a pointer value"),
    (re.compile(r"\breinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>"),
     "pointer-to-integer cast (address-derived value)"),
]

# Mutable static-storage declaration: `static` (plus optional
# thread_local/inline in either order), NOT followed by const/constexpr,
# then a type (template args allowed) and a variable name terminated by
# ;, = or {.  Function declarations never match: their name is followed
# by '(' which no branch of the pattern can cross.
STATIC_MUTABLE_RE = re.compile(
    r"\bstatic\s+(?:(?:thread_local|inline)\s+)*"
    r"(?!const\b|constexpr\b)"
    r"[\w:]+(?:\s*<[^()]*>)?(?:[\s&*]|\bstruct\b)+\w+(?:\[\w*\])?"
    r"\s*(?:;|=|\{)")

FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*(?:;|=|\{)")
COMPOUND_ADD_RE = re.compile(r"(?:^|[^\w.])([\w.\->]*\b\w+)\s*[+\-*]=")


def strip_code_line(line: str) -> str:
    """Removes string/char literals and // comments so patterns never
    match inside text.  Block comments are handled by the caller."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote + quote)  # keep an empty literal placeholder
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class FileScan:
    """One file, split into DET-ALLOW markers and comment-free code."""

    def __init__(self, path: str, text: str):
        self.path = path
        raw_lines = text.splitlines()
        self.allow_reasons: dict[int, str] = {}  # 1-based line -> reason
        for idx, line in enumerate(raw_lines, start=1):
            m = DET_ALLOW_RE.search(line)
            if m:
                self.allow_reasons[idx] = m.group("reason").strip()
        # Blank out block comments (and capture DET-ALLOW inside them to
        # the line where the marker sits), then strip line comments and
        # strings.
        no_blocks = self._blank_block_comments(raw_lines)
        self.code = [strip_code_line(l) for l in no_blocks]

    @staticmethod
    def _blank_block_comments(lines: list[str]) -> list[str]:
        out = []
        in_block = False
        for line in lines:
            result = []
            i, n = 0, len(line)
            while i < n:
                if in_block:
                    end = line.find("*/", i)
                    if end < 0:
                        i = n
                    else:
                        in_block = False
                        i = end + 2
                    continue
                start = line.find("/*", i)
                slash = line.find("//", i)
                if start >= 0 and (slash < 0 or start < slash):
                    result.append(line[i:start])
                    in_block = True
                    i = start + 2
                else:
                    result.append(line[i:])
                    i = n
            out.append("".join(result))
        return out

    def allowed(self, lineno: int) -> bool:
        """A DET-ALLOW on the line itself or the line directly above
        (where the annotation comment conventionally sits) waives it."""
        return lineno in self.allow_reasons or (lineno - 1) in self.allow_reasons


class Violation:
    def __init__(self, path: str, lineno: int, rule: str, message: str,
                 source: str):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message
        self.source = source.strip()

    def key(self) -> str:
        """Stable identity for baselining: file + rule + normalized
        source text (whitespace-squashed), hashed.  Deliberately no line
        number, so edits elsewhere in the file don't churn the baseline."""
        normalized = " ".join(self.source.split())
        blob = f"{self.path}|{self.rule}|{normalized}".encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def render(self) -> str:
        return (f"{self.path}:{self.lineno}: [{self.rule}] {self.message}\n"
                f"    {self.source}")


def collect_files(paths: list[str]) -> list[str]:
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
            continue
        for dirpath, _dirnames, filenames in os.walk(p):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return sorted(set(files))


def build_unordered_symbol_table(scans: list[FileScan]) -> set[str]:
    """Names of variables/members declared with an unordered container
    type, across the whole scanned set (headers declare, .cpps use)."""
    names: set[str] = set()
    for scan in scans:
        joined = "\n".join(scan.code)
        for m in UNORDERED_DECL_RE.finditer(joined):
            # Find the identifier after the declaration's closing '>':
            # scan forward from the template-open, tracking depth.
            depth = 0
            i = m.end() - 1  # at '<'
            n = len(joined)
            while i < n:
                if joined[i] == "<":
                    depth += 1
                elif joined[i] == ">":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            tail = joined[i:i + 160]
            dm = DECL_NAME_RE.match(tail)
            if dm:
                names.add(dm.group(1))
    return names


def scan_file(scan: FileScan, unordered_names: set[str],
              rel: str) -> list[Violation]:
    violations: list[Violation] = []
    in_clock_allowlist = any(rel.endswith(a) for a in CLOCK_ALLOWLIST)

    # Float-typed locals/members of this file, for DET-D.
    float_names: set[str] = set()
    for line in scan.code:
        for m in FLOAT_DECL_RE.finditer(line):
            float_names.add(m.group(1))

    # Tracks unordered-container loops for DET-D: once a range-for over
    # an unordered name opens, remember its brace depth until it closes.
    depth = 0
    loop_stack: list[int] = []  # brace depths of open unordered loops

    for lineno, line in enumerate(scan.code, start=1):
        flag = lambda rule, msg: violations.append(
            Violation(rel, lineno, rule, msg, line)) if not scan.allowed(
                lineno) else None

        # --- DET-A: iteration over unordered containers ---------------
        unordered_loop_here = False
        for m in RANGE_FOR_RE.finditer(line):
            if m.group(1) in unordered_names:
                unordered_loop_here = True
                flag("DET-A",
                     f"iteration over unordered container '{m.group(1)}' "
                     "(hash order is implementation-defined; walk "
                     "common::sortedKeys instead)")
        for m in BEGIN_CALL_RE.finditer(line):
            if m.group(1) in unordered_names:
                flag("DET-A",
                     f"'{m.group(1)}.begin()' exposes hash iteration order")

        # --- DET-B: wall clocks / ambient randomness ------------------
        if not in_clock_allowlist:
            for pattern, msg in CLOCK_PATTERNS:
                if pattern.search(line):
                    flag("DET-B", msg)

        # --- DET-C: pointer-keyed order / hashing ---------------------
        for pattern, msg in POINTER_KEY_PATTERNS:
            if pattern.search(line):
                flag("DET-C", msg)

        # --- DET-E: mutable static-storage data -----------------------
        if STATIC_MUTABLE_RE.search(line):
            flag("DET-E",
                 "mutable static-storage variable (shared across shard "
                 "workers and invisible to lambda capture lists; hang "
                 "per-run state off the owning object instead)")

        # --- DET-D: float accumulation under hash order ---------------
        if loop_stack:
            for m in COMPOUND_ADD_RE.finditer(line):
                target = m.group(1).split("->")[-1].split(".")[-1]
                if target in float_names:
                    flag("DET-D",
                         f"float accumulation '{target} +=' inside an "
                         "unordered-container loop (rounding depends on "
                         "hash order)")

        # Brace tracking AFTER matching, so a loop's own line counts as
        # outside its body.
        opens = line.count("{")
        closes = line.count("}")
        if unordered_loop_here:
            loop_stack.append(depth)
        depth += opens - closes
        while loop_stack and depth <= loop_stack[-1]:
            loop_stack.pop()

        # Empty DET-ALLOW reasons are themselves violations (no waiver).
        if lineno in scan.allow_reasons and not scan.allow_reasons[lineno]:
            violations.append(
                Violation(rel, lineno, "DET-ALLOW",
                          "DET-ALLOW() requires a non-empty reason", line))
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        default=[os.path.join(REPO_ROOT, "src")],
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline JSON of grandfathered violations")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline; report everything")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline with current violations")
    args = parser.parse_args()

    files = collect_files(args.paths)
    if not files:
        print("lint_determinism: no source files found", file=sys.stderr)
        return 2

    scans = []
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as fh:
            scans.append(FileScan(path, fh.read()))

    unordered_names = build_unordered_symbol_table(scans)

    violations: list[Violation] = []
    for scan in scans:
        rel = os.path.relpath(scan.path, REPO_ROOT)
        violations.extend(scan_file(scan, unordered_names, rel))

    baseline_keys: set[str] = set()
    if not args.no_baseline and os.path.exists(args.baseline):
        with open(args.baseline, encoding="utf-8") as fh:
            baseline_keys = set(json.load(fh).get("violations", []))

    if args.update_baseline:
        payload = {
            "comment": "Grandfathered determinism-lint violations. "
                       "Keep this empty: fix the code or DET-ALLOW it.",
            "violations": sorted(v.key() for v in violations),
        }
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"lint_determinism: baseline updated with "
              f"{len(violations)} violation(s)")
        return 0

    fresh = [v for v in violations if v.key() not in baseline_keys]
    stale = baseline_keys - {v.key() for v in violations}

    for v in fresh:
        print(v.render())
    if stale:
        print(f"lint_determinism: {len(stale)} baseline entr"
              f"{'y is' if len(stale) == 1 else 'ies are'} fixed — run "
              "--update-baseline to ratchet down")
    if fresh:
        print(f"\nlint_determinism: {len(fresh)} new violation(s) in "
              f"{len(files)} file(s). Fix them or annotate with "
              "// DET-ALLOW(reason).")
        return 1
    print(f"lint_determinism: clean ({len(files)} files, "
          f"{len(violations)} baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
