#!/usr/bin/env bash
# Shared benchmark loop used by scripts/run_all.sh (paper scale) and the
# CI workflow (smoke scale) — one place encodes which binaries take
# which flags, so the two callers cannot drift apart again.
#
# Besides streaming every bench's normal output, the loop assembles a
# perf trajectory file (default BUILD_DIR/BENCH_PERF.json):
#   * micro_ns_per_op      — google-benchmark real_time per micro_ops bench
#   * end_to_end_seconds   — host wall-clock per figure/ablation bench,
#                            collected from the ##WALLCLOCK lines emitted
#                            by bench_util.h's WallClock
# Host wall-clock is NOT a simulated metric; see docs/COST_MODEL.md
# ("Host wall-clock vs simulated cost").
#
# Usage: scripts/run_benches.sh BUILD_DIR [--quick] [--min-time=T] [--perf-json=FILE]
#   BUILD_DIR        build tree containing bench/ binaries
#   --quick          propagate the harness's 1/10-scale flag to the
#                    scenario benches (everything except micro_ops)
#   --min-time=T     cap google-benchmark runtime for micro_ops, e.g.
#                    --min-time=0.01s (micro_ops rejects foreign flags, so
#                    it only ever receives --benchmark_min_time)
#   --perf-json=F    where to write the perf trajectory (default
#                    BUILD_DIR/BENCH_PERF.json)
set -euo pipefail

BUILD_DIR="${1:?usage: run_benches.sh BUILD_DIR [--quick] [--min-time=T] [--perf-json=FILE]}"
shift

QUICK=""
MIN_TIME=""
PERF_JSON=""
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    --min-time=*)
      # Pass a plain double: google-benchmark <1.8 rejects the "0.01s"
      # suffix form and >=1.8 still accepts suffixless seconds.
      T="${arg#--min-time=}"
      MIN_TIME="--benchmark_min_time=${T%s}"
      ;;
    --perf-json=*) PERF_JSON="${arg#--perf-json=}" ;;
    *) echo "run_benches.sh: unknown flag $arg" >&2; exit 2 ;;
  esac
done
PERF_JSON="${PERF_JSON:-$BUILD_DIR/BENCH_PERF.json}"

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT
MICRO_JSON="$TMP_DIR/micro.json"
WALL_LOG="$TMP_DIR/wallclock.txt"
CACHE_LOG="$TMP_DIR/cache.txt"
SCALE_LOG="$TMP_DIR/scale.txt"
BATCH_LOG="$TMP_DIR/batch.txt"
LOAD_LOG="$TMP_DIR/load.txt"
WIRE_LOG="$TMP_DIR/wire.txt"
: > "$WALL_LOG"
: > "$CACHE_LOG"
: > "$SCALE_LOG"
: > "$BATCH_LOG"
: > "$LOAD_LOG"
: > "$WIRE_LOG"

for b in "$BUILD_DIR"/bench/*; do
  [ -x "$b" ] || continue
  [ -f "$b" ] || continue
  echo "===== $b ${QUICK:-} ${MIN_TIME:-}"
  case "$b" in
    *micro_ops)
      "$b" ${MIN_TIME:+"$MIN_TIME"} \
        --benchmark_out="$MICRO_JSON" --benchmark_out_format=json
      ;;
    *)
      "$b" ${QUICK:+"$QUICK"} | tee "$TMP_DIR/out.txt"
      grep '^##WALLCLOCK ' "$TMP_DIR/out.txt" >> "$WALL_LOG" || true
      grep '^##CACHE ' "$TMP_DIR/out.txt" >> "$CACHE_LOG" || true
      grep '^##SCALE ' "$TMP_DIR/out.txt" >> "$SCALE_LOG" || true
      grep '^##BATCH ' "$TMP_DIR/out.txt" >> "$BATCH_LOG" || true
      grep '^##LOAD ' "$TMP_DIR/out.txt" >> "$LOAD_LOG" || true
      grep '^##WIRE ' "$TMP_DIR/out.txt" >> "$WIRE_LOG" || true
      ;;
  esac
done

# Assemble the perf trajectory.  jq is present on the dev image and the
# CI runners; degrade to a notice (not a failure) elsewhere.
[ -f "$MICRO_JSON" ] || echo '{}' > "$MICRO_JSON"
if command -v jq > /dev/null 2>&1; then
  jq -n \
    --slurpfile micro_doc "$MICRO_JSON" \
    --rawfile wall "$WALL_LOG" \
    --rawfile cache "$CACHE_LOG" \
    --rawfile scale "$SCALE_LOG" \
    --rawfile batch "$BATCH_LOG" \
    --rawfile load "$LOAD_LOG" \
    --rawfile wire "$WIRE_LOG" \
    --arg quick "${QUICK:-}" \
    '{
       quick: ($quick != ""),
       micro_ns_per_op:
         (($micro_doc[0].benchmarks // [])
          | map(select(.real_time != null
                       and (.name | test("_BigO|_RMS") | not))
                | {(.name): ((.real_time * 10 | round) / 10)})
          | add // {}),
       end_to_end_seconds:
         ($wall | split("\n")
          | map(select(length > 0) | split(" ")
                | {(.[1]): (.[2] | tonumber)})
          | add // {}),
       cache:
         ($cache | split("\n")
          | map(select(length > 0) | split(" ")
                | {(.[1]): (.[2] | tonumber)})
          | add // {}),
       scale:
         ($scale | split("\n")
          | map(select(length > 0) | split(" ")
                | {(.[1]): (.[2] | tonumber)})
          | add // {}),
       batch:
         ($batch | split("\n")
          | map(select(length > 0) | split(" ")
                | {(.[1]): (.[2] | tonumber)})
          | add // {}),
       load:
         ($load | split("\n")
          | map(select(length > 0) | split(" ")
                | {(.[1]): (.[2] | tonumber)})
          | add // {}),
       wire:
         ($wire | split("\n")
          | map(select(length > 0) | split(" ")
                | {(.[1]): (.[2] | tonumber)})
          | add // {})
     }' > "$PERF_JSON"
  echo "perf trajectory written to $PERF_JSON"
else
  echo "run_benches.sh: jq not found; skipping $PERF_JSON" >&2
fi
