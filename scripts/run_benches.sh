#!/usr/bin/env bash
# Shared benchmark loop used by scripts/run_all.sh (paper scale) and the
# CI workflow (smoke scale) — one place encodes which binaries take
# which flags, so the two callers cannot drift apart again.
#
# Usage: scripts/run_benches.sh BUILD_DIR [--quick] [--min-time=T]
#   BUILD_DIR      build tree containing bench/ binaries
#   --quick        propagate the harness's 1/10-scale flag to the
#                  scenario benches (everything except micro_ops)
#   --min-time=T   cap google-benchmark runtime for micro_ops, e.g.
#                  --min-time=0.01s (micro_ops rejects foreign flags, so
#                  it only ever receives --benchmark_min_time)
set -euo pipefail

BUILD_DIR="${1:?usage: run_benches.sh BUILD_DIR [--quick] [--min-time=T]}"
shift

QUICK=""
MIN_TIME=""
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    --min-time=*)
      # Pass a plain double: google-benchmark <1.8 rejects the "0.01s"
      # suffix form and >=1.8 still accepts suffixless seconds.
      T="${arg#--min-time=}"
      MIN_TIME="--benchmark_min_time=${T%s}"
      ;;
    *) echo "run_benches.sh: unknown flag $arg" >&2; exit 2 ;;
  esac
done

for b in "$BUILD_DIR"/bench/*; do
  [ -x "$b" ] || continue
  [ -f "$b" ] || continue
  echo "===== $b ${QUICK:-} ${MIN_TIME:-}"
  case "$b" in
    *micro_ops) "$b" ${MIN_TIME:+"$MIN_TIME"} ;;
    *) "$b" ${QUICK:+"$QUICK"} ;;
  esac
done
