#!/usr/bin/env bash
# clang-tidy driver: configures a compile-commands export and runs the
# repo profile (.clang-tidy) over every first-party translation unit in
# src/.  Exits non-zero on any finding (WarningsAsErrors: '*').
#
# Usage: scripts/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#   build-dir defaults to build-tidy.
#
# The container image may lack clang-tidy (the baked-in toolchain is
# gcc-only); in that case the script reports the skip and exits 0 so
# local runs degrade gracefully — the CI tidy job installs clang-tidy
# and takes the real path.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tidy}"
shift || true
EXTRA_ARGS=()
if [ "${1:-}" = "--" ]; then
  shift
  EXTRA_ARGS=("$@")
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_tidy.sh: $TIDY not found; skipping static analysis (install" \
       "clang-tidy or set CLANG_TIDY to run the real pass)" >&2
  exit 0
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DMLIGHT_WERROR=OFF >/dev/null

# Every first-party TU; headers are pulled in via HeaderFilterRegex.
mapfile -t SOURCES < <(find src -name '*.cpp' | sort)

STATUS=0
for tu in "${SOURCES[@]}"; do
  echo "[tidy] $tu"
  "$TIDY" -p "$BUILD_DIR" --quiet "${EXTRA_ARGS[@]}" "$tu" || STATUS=1
done

if [ "$STATUS" -ne 0 ]; then
  echo "run_tidy.sh: findings above must be fixed or NOLINT'ed with a" \
       "justification" >&2
fi
exit "$STATUS"
