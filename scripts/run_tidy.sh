#!/usr/bin/env bash
# clang-tidy driver: configures a compile-commands export and runs the
# repo profile (.clang-tidy) over every first-party translation unit in
# src/, then gates on a checked-in finding-count baseline
# (scripts/tidy_baseline.txt): more findings than the baseline fails,
# fewer prints a ratchet reminder.  The baseline is 0 and the goal is to
# keep it there — the count exists so a toolchain upgrade that grows new
# checks blocks NEW debt without forcing an unrelated PR to pay all of
# it down at once.
#
# Usage: scripts/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#   build-dir defaults to build-tidy.
#   --update-baseline (as build-dir slot or after --) rewrites the
#   baseline with the current count.
#
# The container image may lack clang-tidy (the baked-in toolchain is
# gcc-only); in that case the script reports the skip and exits 0 so
# local runs degrade gracefully — the CI tidy job installs clang-tidy
# and takes the real path.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_FILE="scripts/tidy_baseline.txt"
UPDATE_BASELINE=0

BUILD_DIR="build-tidy"
if [ "${1:-}" = "--update-baseline" ]; then
  UPDATE_BASELINE=1
  shift
elif [ -n "${1:-}" ] && [ "${1:-}" != "--" ]; then
  BUILD_DIR="$1"
  shift
fi
EXTRA_ARGS=()
if [ "${1:-}" = "--" ]; then
  shift
  EXTRA_ARGS=("$@")
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_tidy.sh: $TIDY not found; skipping static analysis (install" \
       "clang-tidy or set CLANG_TIDY to run the real pass)" >&2
  exit 0
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DMLIGHT_WERROR=OFF >/dev/null

# Every first-party TU; headers are pulled in via HeaderFilterRegex.
mapfile -t SOURCES < <(find src -name '*.cpp' | sort)

FINDINGS_LOG="$(mktemp)"
trap 'rm -f "$FINDINGS_LOG"' EXIT

for tu in "${SOURCES[@]}"; do
  echo "[tidy] $tu"
  # Findings are counted from the diagnostic lines, not the exit code,
  # so a baseline > 0 can tolerate known debt without masking new debt.
  "$TIDY" -p "$BUILD_DIR" --quiet "${EXTRA_ARGS[@]}" "$tu" \
    2>/dev/null | tee -a "$FINDINGS_LOG" || true
done

COUNT=$(grep -cE '^[^ ]+:[0-9]+:[0-9]+: (warning|error):' "$FINDINGS_LOG" \
        || true)
BASELINE=0
if [ -f "$BASELINE_FILE" ]; then
  BASELINE=$(tr -d '[:space:]' < "$BASELINE_FILE")
fi

if [ "$UPDATE_BASELINE" -eq 1 ]; then
  echo "$COUNT" > "$BASELINE_FILE"
  echo "run_tidy.sh: baseline updated to $COUNT finding(s)"
  exit 0
fi

if [ "$COUNT" -gt "$BASELINE" ]; then
  echo "run_tidy.sh: $COUNT finding(s), baseline allows $BASELINE —" \
       "fix the new ones or NOLINT with a justification" >&2
  exit 1
fi
if [ "$COUNT" -lt "$BASELINE" ]; then
  echo "run_tidy.sh: $COUNT finding(s), below the baseline of $BASELINE —" \
       "ratchet down with scripts/run_tidy.sh --update-baseline"
fi
echo "run_tidy.sh: OK ($COUNT finding(s), baseline $BASELINE)"
