#!/usr/bin/env bash
# Builds everything, runs the full test suite and every benchmark at
# paper scale, teeing outputs into the repo root (the files EXPERIMENTS.md
# cites).  Pass --quick to propagate the 1/10-scale flag to the benches.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK="${1:-}"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# shellcheck disable=SC2086  # QUICK is deliberately empty-or-one-flag
scripts/run_benches.sh build $QUICK 2>&1 | tee bench_output.txt
