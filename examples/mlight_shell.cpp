// Interactive shell around a simulated m-LIGHT deployment.
//
//   $ ./build/examples/mlight_shell
//   mlight> insert 0.3 0.7 pizza-place
//   mlight> range 0.2 0.6 0.4 0.8
//   mlight> knn 0.31 0.69 3
//   mlight> churn leave
//   mlight> stats
//
// Commands read from stdin (pipe a script for repeatable sessions):
//   insert <x> <y> [payload]       add a record
//   erase <id>                     remove a record by id
//   point <x> <y>                  exact-match query
//   range <x0> <y0> <x1> <y1>      range query
//   knn <x> <y> <k>                k nearest neighbours
//   lookup <x> <y>                 show the covering leaf bucket
//   churn join|leave|crash         membership events
//   stats                          index and overlay statistics
//   help / quit
#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "dht/network.h"
#include "mlight/index.h"

namespace {

using namespace mlight;

void printHelp() {
  std::printf(
      "commands:\n"
      "  insert <x> <y> [payload]   range <x0> <y0> <x1> <y1>\n"
      "  erase <id>                 knn <x> <y> <k>\n"
      "  point <x> <y>              lookup <x> <y>\n"
      "  churn join|leave|crash     stats\n"
      "  trace on|off               help / quit\n");
}

}  // namespace

int main() {
  dht::Network net(128, 1, /*vnodesPerPeer=*/4);
  core::MLightConfig cfg;
  cfg.thetaSplit = 8;  // small threshold so interactive use shows splits
  cfg.thetaMerge = 4;
  cfg.replication = 2;  // crashes are survivable in the shell
  core::MLightIndex index(net, cfg);
  common::Rng rng(2026);
  std::uint64_t nextId = 0;
  std::map<std::uint64_t, common::Point> byId;
  std::size_t churnSerial = 0;

  std::printf("m-LIGHT shell — %zu peers, theta_split=%zu, replication=%zu\n",
              net.livePhysicalCount(), cfg.thetaSplit, cfg.replication);
  printHelp();

  std::vector<core::MLightIndex::TraceEvent> trace;
  bool tracing = false;
  const auto dumpTrace = [&] {
    if (!tracing || trace.empty()) return;
    std::printf("  trace (%zu probes):\n", trace.size());
    for (const auto& event : trace) {
      std::printf("    round %zu  key %-14s -> %s\n", event.round,
                  event.key.toString().c_str(),
                  event.hit ? event.foundLeaf.toString().c_str() : "NULL");
    }
    trace.clear();
  };

  std::string line;
  while (std::printf("mlight> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') continue;

    try {
      if (cmd == "quit" || cmd == "exit") {
        break;
      } else if (cmd == "help") {
        printHelp();
      } else if (cmd == "insert") {
        double x;
        double y;
        std::string payload;
        if (!(in >> x >> y)) {
          std::printf("usage: insert <x> <y> [payload]\n");
          continue;
        }
        std::getline(in, payload);
        if (!payload.empty() && payload[0] == ' ') payload.erase(0, 1);
        index::Record r;
        r.key = common::Point{x, y};
        r.id = nextId++;
        r.payload = payload.empty() ? "record-" + std::to_string(r.id)
                                    : payload;
        index.insert(r);
        byId[r.id] = r.key;
        std::printf("inserted id=%" PRIu64 " (%zu records, %zu buckets)\n",
                    r.id, index.size(), index.bucketCount());
      } else if (cmd == "erase") {
        std::uint64_t id;
        if (!(in >> id)) {
          std::printf("usage: erase <id>\n");
          continue;
        }
        const auto it = byId.find(id);
        if (it == byId.end()) {
          std::printf("unknown id %" PRIu64 "\n", id);
          continue;
        }
        const auto removed = index.erase(it->second, id);
        byId.erase(it);
        std::printf("erased %zu record(s)\n", removed);
      } else if (cmd == "point") {
        double x;
        double y;
        if (!(in >> x >> y)) {
          std::printf("usage: point <x> <y>\n");
          continue;
        }
        const auto res = index.pointQuery(common::Point{x, y});
        std::printf("%zu hit(s), %" PRIu64 " lookups, %.0f ms\n",
                    res.records.size(), res.stats.cost.lookups,
                    res.stats.latencyMs);
        for (const auto& r : res.records) {
          std::printf("  id=%" PRIu64 "  %s\n", r.id, r.payload.c_str());
        }
        dumpTrace();
      } else if (cmd == "range") {
        double x0;
        double y0;
        double x1;
        double y1;
        if (!(in >> x0 >> y0 >> x1 >> y1)) {
          std::printf("usage: range <x0> <y0> <x1> <y1>\n");
          continue;
        }
        const auto res = index.rangeQuery(
            common::Rect(common::Point{x0, y0}, common::Point{x1, y1}));
        std::printf("%zu hit(s), %" PRIu64 " lookups over %zu rounds, "
                    "%.0f ms\n",
                    res.records.size(), res.stats.cost.lookups,
                    res.stats.rounds, res.stats.latencyMs);
        std::size_t shown = 0;
        for (const auto& r : res.records) {
          if (++shown > 10) {
            std::printf("  ... %zu more\n", res.records.size() - 10);
            break;
          }
          std::printf("  id=%-6" PRIu64 " %s  %s\n", r.id,
                      r.key.toString().c_str(), r.payload.c_str());
        }
        dumpTrace();
      } else if (cmd == "knn") {
        double x;
        double y;
        std::size_t k;
        if (!(in >> x >> y >> k)) {
          std::printf("usage: knn <x> <y> <k>\n");
          continue;
        }
        const auto res = index.knnQuery(common::Point{x, y}, k);
        std::printf("%zu neighbour(s), %" PRIu64 " lookups\n",
                    res.records.size(), res.stats.cost.lookups);
        for (const auto& r : res.records) {
          std::printf("  id=%-6" PRIu64 " %s  %s\n", r.id,
                      r.key.toString().c_str(), r.payload.c_str());
        }
      } else if (cmd == "lookup") {
        double x;
        double y;
        if (!(in >> x >> y)) {
          std::printf("usage: lookup <x> <y>\n");
          continue;
        }
        const auto res = index.lookup(common::Point{x, y});
        std::printf("leaf %s (%" PRIu64 " probes)\n",
                    res.leaf.toString().c_str(), res.stats.cost.lookups);
        dumpTrace();
      } else if (cmd == "trace") {
        std::string mode;
        in >> mode;
        if (mode == "on") {
          tracing = true;
          index.setTracer(&trace);
          std::printf("probe tracing on\n");
        } else if (mode == "off") {
          tracing = false;
          index.setTracer(nullptr);
          trace.clear();
          std::printf("probe tracing off\n");
        } else {
          std::printf("usage: trace on|off\n");
        }
      } else if (cmd == "churn") {
        std::string kind;
        in >> kind;
        if (kind == "join") {
          net.addPeer("shell-joiner-" + std::to_string(churnSerial++));
          std::printf("peer joined (%zu peers)\n", net.livePhysicalCount());
        } else if (kind == "leave") {
          net.removePeer(net.peers()[rng.below(net.peerCount())]);
          std::printf("peer left gracefully (%zu peers)\n",
                      net.livePhysicalCount());
        } else if (kind == "crash") {
          net.crashPeer(net.peers()[rng.below(net.peerCount())]);
          std::printf("peer crashed (%zu peers, %zu buckets lost)\n",
                      net.livePhysicalCount(), index.store().lostBuckets());
        } else {
          std::printf("usage: churn join|leave|crash\n");
        }
      } else if (cmd == "stats") {
        const auto& total = net.totalCost();
        std::printf("records: %zu   buckets: %zu (%zu empty)   depth: %zu\n",
                    index.size(), index.bucketCount(),
                    index.emptyBucketCount(), index.treeDepth());
        std::printf("overlay: %zu peers, %zu ring positions, max hops %zu\n",
                    net.livePhysicalCount(), net.peerCount(),
                    net.maxHopsSeen());
        std::printf("lifetime: %" PRIu64 " DHT-lookups, %" PRIu64
                    " bytes moved, %zu buckets lost to crashes\n",
                    total.lookups, total.bytesMoved,
                    index.store().lostBuckets());
        index.checkInvariants();
        std::printf("invariants: ok\n");
      } else {
        std::printf("unknown command '%s' (try: help)\n", cmd.c_str());
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  std::printf("\nbye\n");
  return 0;
}
