// Quickstart: index 2-D points over a simulated DHT with m-LIGHT and run
// the three query types (exact match, lookup, range).
//
//   $ ./build/examples/quickstart
//
// The walk-through mirrors the paper's running examples: records are
// <x, y> keys in [0,1]^2, the index lives as leaf buckets placed under
// f_md(label) keys on a 128-peer overlay, and every operation reports its
// cost in DHT-lookups (bandwidth) and rounds (latency).
#include <cinttypes>
#include <cstdio>

#include "dht/network.h"
#include "mlight/index.h"

int main() {
  using namespace mlight;

  // 1. A simulated DHT overlay: 128 peers on a Chord-like ring.
  dht::Network net(128);

  // 2. An m-LIGHT index on top of it.  theta_split caps bucket size; the
  //    kd-tree grows as data arrives.
  core::MLightConfig cfg;
  cfg.dims = 2;
  cfg.thetaSplit = 4;  // tiny, so this demo actually splits
  cfg.thetaMerge = 2;
  core::MLightIndex index(net, cfg);

  // 3. Insert some records.  Each insert = one lookup (binary search over
  //    candidate prefixes) + shipping the record to its leaf bucket.
  const double points[][2] = {{0.12, 0.91}, {0.30, 0.90}, {0.31, 0.88},
                              {0.72, 0.15}, {0.75, 0.12}, {0.77, 0.18},
                              {0.50, 0.50}, {0.25, 0.25}, {0.60, 0.40},
                              {0.81, 0.83}, {0.05, 0.05}, {0.33, 0.66}};
  std::uint64_t id = 0;
  for (const auto& p : points) {
    index::Record r;
    r.key = common::Point{p[0], p[1]};
    r.id = id++;
    r.payload = "point-" + std::to_string(r.id);
    index.insert(r);
  }
  std::printf("inserted %zu records into %zu leaf buckets (tree depth %zu)\n",
              index.size(), index.bucketCount(), index.treeDepth());

  // 4. The lookup operation (paper §5): which leaf covers <0.3, 0.9>?
  const auto hit = index.lookup(common::Point{0.3, 0.9});
  std::printf("lookup(<0.3, 0.9>): leaf %s in %" PRIu64 " DHT-lookups\n",
              hit.leaf.toString().c_str(), hit.stats.cost.lookups);

  // 5. Exact-match query.
  const auto exact = index.pointQuery(common::Point{0.72, 0.15});
  std::printf("pointQuery(<0.72, 0.15>): %zu record(s)\n",
              exact.records.size());

  // 6. Range query (paper §6): everything in [0.25, 0.80] x [0.80, 0.95].
  const common::Rect box(common::Point{0.25, 0.80},
                         common::Point{0.80, 0.95});
  const auto range = index.rangeQuery(box);
  std::printf("rangeQuery(%s): %zu record(s), %" PRIu64
              " DHT-lookups over %zu round(s)\n",
              box.toString().c_str(), range.records.size(),
              range.stats.cost.lookups, range.stats.rounds);
  for (const auto& r : range.records) {
    std::printf("  %s at %s\n", r.payload.c_str(), r.key.toString().c_str());
  }

  // 7. Deletion shrinks the tree again (sibling merges).
  std::uint64_t eraseId = 0;
  for (const auto& p : points) {
    index.erase(common::Point{p[0], p[1]}, eraseId++);
  }
  std::printf("after erasing everything: %zu records, %zu bucket(s)\n",
              index.size(), index.bucketCount());
  return 0;
}
