// Multi-attribute search — the paper's introductory motivation:
// "finding the songs that are rated above 4 and published during 2007
// and 2008" (§1).
//
// Uses the schema layer: attributes are declared with their natural
// domains (rating 0..5, year 1970..2009) and predicates are written
// against attribute names; normalization into the index's [0,1)^m key
// space (§3.1) happens underneath.
//
//   $ ./build/examples/song_search
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "dht/network.h"
#include "schema/table.h"

int main() {
  using namespace mlight;

  dht::Network net(128);
  core::MLightConfig cfg;
  cfg.thetaSplit = 50;
  cfg.thetaMerge = 25;
  schema::Table songs(
      net, schema::Schema({{"rating", 0.0, 5.0}, {"year", 1970.0, 2009.0}}),
      cfg);

  // A catalogue with skewed ratings (most songs are mediocre) and a
  // recency-skewed year distribution, like a real music service.
  common::Rng rng(2008);
  const char* adjectives[] = {"Blue", "Golden", "Silent", "Electric",
                              "Broken", "Midnight", "Lonely", "Neon"};
  const char* nouns[] = {"River", "Skyline", "Heart", "Train",
                         "Mirror", "Harbor", "Valley", "Echo"};
  const std::size_t kSongs = 20000;
  for (std::uint64_t i = 0; i < kSongs; ++i) {
    double rating = rng.gaussian(3.2, 0.8);
    rating = rating < 0 ? 0 : (rating > 5 ? 5 : rating);
    const double year =
        1970.0 + 38.0 * std::pow(rng.uniform(), 0.35);
    schema::Row row;
    row.values = {rating, year};
    row.id = i;
    row.payload = std::string(adjectives[rng.below(8)]) + " " +
                  nouns[rng.below(8)] + " (" +
                  std::to_string(static_cast<int>(year)) + ", " +
                  std::to_string(rating).substr(0, 4) + "*)";
    songs.insert(row);
  }
  std::printf("indexed %zu songs in %zu buckets\n\n", songs.size(),
              songs.index().bucketCount());

  // The paper's query, written against attribute names.
  const auto res = songs.select(schema::Query(songs.schema())
                                    .ge("rating", 4.0)
                                    .between("year", 2007.0, 2009.0));
  std::printf("songs rated above 4 published during 2007-2008: %zu\n",
              res.rows.size());
  std::printf("query cost: %" PRIu64 " DHT-lookups in %zu rounds "
              "(~%.0f ms simulated)\n\n",
              res.stats.cost.lookups, res.stats.rounds,
              res.stats.latencyMs);
  for (std::size_t i = 0; i < res.rows.size() && i < 10; ++i) {
    std::printf("  %s\n", res.rows[i].payload.c_str());
  }
  if (res.rows.size() > 10) {
    std::printf("  ... and %zu more\n", res.rows.size() - 10);
  }

  // Narrower follow-up: only the very best of 2008.
  const auto top = songs.select(schema::Query(songs.schema())
                                    .ge("rating", 4.8)
                                    .between("year", 2008.0, 2009.0));
  std::printf("\nnear-perfect 2008 releases: %zu (%" PRIu64
              " DHT-lookups)\n",
              top.rows.size(), top.stats.cost.lookups);

  // And a similarity search: songs most like a 4.5-star 2005 track.
  const auto similar = songs.nearest(std::vector<double>{4.5, 2005.0}, 5);
  std::printf("\nmost similar to a 4.5* 2005 song:\n");
  for (const auto& row : similar.rows) {
    std::printf("  %s\n", row.payload.c_str());
  }
  return 0;
}
