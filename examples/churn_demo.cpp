// Churn resilience — why over-DHT indexing is attractive (§1, §2.1).
//
// m-LIGHT inherits the DHT's robustness: when peers join or leave, the
// overlay re-homes the affected keys and the index keeps answering
// correctly, with no index-level repair protocol.  This demo hammers the
// overlay with churn while a query workload runs, verifying answers
// against an in-memory oracle and reporting the churn traffic.
//
//   $ ./build/examples/churn_demo
#include <cinttypes>
#include <cstdio>

#include "common/rng.h"
#include "dht/network.h"
#include "index/oracle.h"
#include "mlight/index.h"
#include "workload/datasets.h"
#include "workload/queries.h"

int main() {
  using namespace mlight;

  dht::Network net(128);
  core::MLightConfig cfg;
  cfg.thetaSplit = 100;
  cfg.thetaMerge = 50;
  core::MLightIndex index(net, cfg);
  index::Oracle oracle;

  std::printf("loading 30000 records on a 128-peer overlay...\n");
  for (const auto& r : workload::northeastDataset(30000, 7)) {
    index.insert(r);
    oracle.insert(r);
  }

  common::Rng rng(99);
  dht::CostMeter churnTraffic;
  std::size_t joins = 0;
  std::size_t leaves = 0;
  std::size_t queriesOk = 0;

  for (int epoch = 0; epoch < 20; ++epoch) {
    // Churn burst: a few peers crash, a few new ones join.
    {
      dht::MeterScope scope(net, churnTraffic);
      for (int i = 0; i < 3; ++i) {
        if (net.removePeer(net.peers()[rng.below(net.peerCount())])) {
          ++leaves;
        }
      }
      for (int i = 0; i < 2; ++i) {
        net.addPeer("joiner-" + std::to_string(epoch) + "-" +
                    std::to_string(i));
        ++joins;
      }
    }
    // The query workload keeps running against the reshuffled overlay.
    for (const auto& q : workload::uniformRangeQueries(
             5, 2, 0.05, 1000 + static_cast<std::uint64_t>(epoch))) {
      auto got = index.rangeQuery(q).records;
      index::Oracle::sortById(got);
      if (got != oracle.rangeQuery(q)) {
        std::printf("!! wrong answer after churn epoch %d\n", epoch);
        return 1;
      }
      ++queriesOk;
    }
    // Writes keep working too.
    index::Record r;
    r.key = common::Point{rng.uniform(), rng.uniform()};
    r.id = 1000000 + static_cast<std::uint64_t>(epoch);
    r.payload = "post-churn";
    index.insert(r);
    oracle.insert(r);
  }

  index.checkInvariants();
  std::printf("survived %zu leaves and %zu joins; %zu range queries all "
              "answered correctly\n",
              leaves, joins, queriesOk);
  std::printf("churn re-homing traffic: %" PRIu64 " records / %" PRIu64
              " bytes moved between peers\n",
              churnTraffic.recordsMoved, churnTraffic.bytesMoved);
  std::printf("overlay now has %zu peers; index holds %zu records in %zu "
              "buckets\n",
              net.livePhysicalCount(), index.size(), index.bucketCount());
  return 0;
}
