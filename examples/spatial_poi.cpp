// Spatial point-of-interest search — the paper's evaluation scenario.
//
// Loads the (synthetic) NE postal-address dataset into all three over-DHT
// indexes sharing one overlay, then answers map-viewport queries
// ("addresses in this rectangle around downtown") and compares what each
// scheme pays for the same answers — a miniature of Figs 5 and 7.
//
//   $ ./build/examples/spatial_poi [record-count]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "dht/network.h"
#include "dst/dst_index.h"
#include "index/region.h"
#include "mlight/index.h"
#include "pht/pht_index.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  using namespace mlight;
  const std::size_t count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  dht::Network net(128);
  core::MLightConfig mc;
  mc.thetaSplit = 100;
  mc.thetaMerge = 50;
  core::MLightIndex mlight(net, mc);
  pht::PhtConfig pc;
  pc.thetaSplit = 100;
  pc.thetaMerge = 50;
  pht::PhtIndex pht(net, pc);
  dst::DstConfig dc;
  dc.gamma = 100;
  dst::DstIndex dst(net, dc);

  std::printf("loading %zu postal addresses into 3 indexes...\n", count);
  dht::CostMeter loadMl;
  dht::CostMeter loadPht;
  dht::CostMeter loadDst;
  for (const auto& r : workload::northeastDataset(count, 42)) {
    {
      dht::MeterScope s(net, loadMl);
      mlight.insert(r);
    }
    {
      dht::MeterScope s(net, loadPht);
      pht.insert(r);
    }
    {
      dht::MeterScope s(net, loadDst);
      dst.insert(r);
    }
  }
  std::printf("  maintenance DHT-lookups: m-LIGHT %" PRIu64 ", PHT %" PRIu64
              ", DST %" PRIu64 "\n",
              loadMl.lookups, loadPht.lookups, loadDst.lookups);
  std::printf("  data moved (bytes):      m-LIGHT %" PRIu64 ", PHT %" PRIu64
              ", DST %" PRIu64 "\n\n",
              loadMl.bytesMoved, loadPht.bytesMoved, loadDst.bytesMoved);

  // Viewports around the three metro analogues plus one rural area.
  struct Viewport {
    const char* name;
    double x0, y0, x1, y1;
  };
  const Viewport viewports[] = {
      {"downtown New-York analogue", 0.30, 0.40, 0.40, 0.50},
      {"Philadelphia analogue", 0.13, 0.17, 0.23, 0.27},
      {"Boston analogue", 0.67, 0.73, 0.77, 0.83},
      {"rural upstate", 0.45, 0.60, 0.55, 0.70},
  };
  for (const auto& v : viewports) {
    const common::Rect box(common::Point{v.x0, v.y0},
                           common::Point{v.x1, v.y1});
    const auto a = mlight.rangeQuery(box);
    const auto b = pht.rangeQuery(box);
    const auto c = dst.rangeQuery(box);
    std::printf("%-28s %5zu hits | lookups: m-LIGHT %5" PRIu64
                "  PHT %5" PRIu64 "  DST %6" PRIu64
                " | rounds: %2zu / %2zu / %2zu\n",
                v.name, a.records.size(), a.stats.cost.lookups,
                b.stats.cost.lookups, c.stats.cost.lookups, a.stats.rounds,
                b.stats.rounds, c.stats.rounds);
    if (a.records.size() != b.records.size() ||
        a.records.size() != c.records.size()) {
      std::printf("  !! schemes disagree\n");
      return 1;
    }
  }

  // Shape-aware queries (§6 allows arbitrary shapes): "addresses within
  // walking distance of downtown" is a circle, not a box...
  const mlight::index::BallRegion nearDowntown(common::Point{0.35, 0.45},
                                               0.03);
  const auto circle = mlight.regionQuery(nearDowntown);
  std::printf("\nwithin 0.03 of downtown: %zu addresses (%" PRIu64
              " lookups; bounding box would cost %" PRIu64 ")\n",
              circle.records.size(), circle.stats.cost.lookups,
              mlight.rangeQuery(nearDowntown.boundingBox())
                  .stats.cost.lookups);

  // ...and a dashboard only needs the COUNT, which ships a few bytes
  // per visited bucket instead of every record.
  const common::Rect metro(common::Point{0.25, 0.35},
                           common::Point{0.45, 0.55});
  const auto full = mlight.rangeQuery(metro);
  const auto census = mlight.rangeCount(metro);
  std::printf("metro census: %zu addresses; full query shipped %" PRIu64
              " result bytes, count query %" PRIu64 "\n",
              census.count, full.stats.cost.bytesMoved,
              census.stats.cost.bytesMoved);
  return 0;
}
