// mlight_peerd — a standalone peer daemon serving the wire protocol.
//
// Runs N TcpPeerServer instances (one per physical peer of the ring) on
// consecutive loopback ports and blocks until stdin reaches EOF or the
// process receives SIGINT/SIGTERM.  Pair it with the concurrent client
// driver:
//
//   ./mlight_peerd --peers 8 --port-base 7500 &
//   ./extra_wire --peers 8 --connect 7500 --quick
//
// Each peer serves length-prefixed RpcEnvelope frames (kBatchPut / kGet /
// kVisit) from an in-memory WireStore; placement must be computed by the
// client via RingMap/wireRingKey, exactly as extra_wire does.  See
// README.md "Real transport quickstart".
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "transport/tcp.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void onSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  std::size_t peers = 8;
  std::uint16_t portBase = 7500;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::uint64_t {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return std::strtoull(argv[++i], nullptr, 10);
    };
    if (a == "--peers") {
      peers = next();
    } else if (a == "--port-base") {
      portBase = static_cast<std::uint16_t>(next());
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: %s [--peers N] [--port-base P]\n"
          "serves N wire-protocol peers on 127.0.0.1:P..P+N-1 until stdin\n"
          "closes or SIGINT/SIGTERM arrives\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return 2;
    }
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::vector<mlight::transport::TcpPeerServer> servers(peers);
  for (std::size_t i = 0; i < peers; ++i) {
    const auto want = static_cast<std::uint16_t>(portBase + i);
    const std::uint16_t got = servers[i].start(want);
    std::printf("peer %zu listening on 127.0.0.1:%u\n", i, got);
  }
  std::printf("ring up: %zu peers on ports %u..%u — ctrl-d or SIGINT to "
              "stop\n",
              peers, portBase,
              static_cast<unsigned>(portBase + peers - 1));
  std::fflush(stdout);

  // Block on stdin (EOF ends the daemon); poll so signals break us out.
  while (g_stop == 0) {
    pollfd pfd{STDIN_FILENO, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc <= 0) continue;  // timeout or EINTR: re-check g_stop
    char buf[256];
    const ssize_t n = ::read(STDIN_FILENO, buf, sizeof(buf));
    if (n <= 0) break;  // EOF or error: shut down
  }

  std::uint64_t frames = 0;
  for (auto& s : servers) {
    s.stop();
    frames += s.framesServed();
  }
  std::printf("ring down: served %llu frames\n",
              static_cast<unsigned long long>(frames));
  return 0;
}
