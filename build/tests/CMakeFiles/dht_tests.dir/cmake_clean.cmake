file(REMOVE_RECURSE
  "CMakeFiles/dht_tests.dir/dht/latency_vnode_test.cpp.o"
  "CMakeFiles/dht_tests.dir/dht/latency_vnode_test.cpp.o.d"
  "CMakeFiles/dht_tests.dir/dht/network_test.cpp.o"
  "CMakeFiles/dht_tests.dir/dht/network_test.cpp.o.d"
  "CMakeFiles/dht_tests.dir/store/distributed_store_test.cpp.o"
  "CMakeFiles/dht_tests.dir/store/distributed_store_test.cpp.o.d"
  "CMakeFiles/dht_tests.dir/store/replication_test.cpp.o"
  "CMakeFiles/dht_tests.dir/store/replication_test.cpp.o.d"
  "dht_tests"
  "dht_tests.pdb"
  "dht_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dht_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
