# Empty compiler generated dependencies file for dht_tests.
# This may be replaced when dependencies are built.
