file(REMOVE_RECURSE
  "CMakeFiles/mlight_tests.dir/mlight/bulkload_lht_test.cpp.o"
  "CMakeFiles/mlight_tests.dir/mlight/bulkload_lht_test.cpp.o.d"
  "CMakeFiles/mlight_tests.dir/mlight/index_test.cpp.o"
  "CMakeFiles/mlight_tests.dir/mlight/index_test.cpp.o.d"
  "CMakeFiles/mlight_tests.dir/mlight/kdspace_test.cpp.o"
  "CMakeFiles/mlight_tests.dir/mlight/kdspace_test.cpp.o.d"
  "CMakeFiles/mlight_tests.dir/mlight/knn_test.cpp.o"
  "CMakeFiles/mlight_tests.dir/mlight/knn_test.cpp.o.d"
  "CMakeFiles/mlight_tests.dir/mlight/naming_exhaustive_test.cpp.o"
  "CMakeFiles/mlight_tests.dir/mlight/naming_exhaustive_test.cpp.o.d"
  "CMakeFiles/mlight_tests.dir/mlight/naming_test.cpp.o"
  "CMakeFiles/mlight_tests.dir/mlight/naming_test.cpp.o.d"
  "CMakeFiles/mlight_tests.dir/mlight/paper_trace_test.cpp.o"
  "CMakeFiles/mlight_tests.dir/mlight/paper_trace_test.cpp.o.d"
  "CMakeFiles/mlight_tests.dir/mlight/region_query_test.cpp.o"
  "CMakeFiles/mlight_tests.dir/mlight/region_query_test.cpp.o.d"
  "CMakeFiles/mlight_tests.dir/mlight/split_test.cpp.o"
  "CMakeFiles/mlight_tests.dir/mlight/split_test.cpp.o.d"
  "mlight_tests"
  "mlight_tests.pdb"
  "mlight_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlight_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
