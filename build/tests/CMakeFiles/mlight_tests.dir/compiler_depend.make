# Empty compiler generated dependencies file for mlight_tests.
# This may be replaced when dependencies are built.
