file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/common/bitstring_model_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/bitstring_model_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/bitstring_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/bitstring_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/geometry_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/geometry_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/rng_stats_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/rng_stats_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/serde_fuzz_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/serde_fuzz_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/serde_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/serde_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/sha1_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/sha1_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/zorder_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/zorder_test.cpp.o.d"
  "common_tests"
  "common_tests.pdb"
  "common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
