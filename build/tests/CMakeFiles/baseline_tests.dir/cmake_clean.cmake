file(REMOVE_RECURSE
  "CMakeFiles/baseline_tests.dir/dst/dst_test.cpp.o"
  "CMakeFiles/baseline_tests.dir/dst/dst_test.cpp.o.d"
  "CMakeFiles/baseline_tests.dir/pht/pht_test.cpp.o"
  "CMakeFiles/baseline_tests.dir/pht/pht_test.cpp.o.d"
  "CMakeFiles/baseline_tests.dir/rst/rst_test.cpp.o"
  "CMakeFiles/baseline_tests.dir/rst/rst_test.cpp.o.d"
  "CMakeFiles/baseline_tests.dir/workload/workload_test.cpp.o"
  "CMakeFiles/baseline_tests.dir/workload/workload_test.cpp.o.d"
  "baseline_tests"
  "baseline_tests.pdb"
  "baseline_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
