# Empty dependencies file for index_types_tests.
# This may be replaced when dependencies are built.
