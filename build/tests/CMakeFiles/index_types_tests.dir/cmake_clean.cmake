file(REMOVE_RECURSE
  "CMakeFiles/index_types_tests.dir/index/types_region_test.cpp.o"
  "CMakeFiles/index_types_tests.dir/index/types_region_test.cpp.o.d"
  "index_types_tests"
  "index_types_tests.pdb"
  "index_types_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_types_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
