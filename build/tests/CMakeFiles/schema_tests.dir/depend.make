# Empty dependencies file for schema_tests.
# This may be replaced when dependencies are built.
