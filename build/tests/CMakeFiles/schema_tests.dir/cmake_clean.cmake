file(REMOVE_RECURSE
  "CMakeFiles/schema_tests.dir/schema/table_test.cpp.o"
  "CMakeFiles/schema_tests.dir/schema/table_test.cpp.o.d"
  "schema_tests"
  "schema_tests.pdb"
  "schema_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
