# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/dht_tests[1]_include.cmake")
include("/root/repo/build/tests/mlight_tests[1]_include.cmake")
include("/root/repo/build/tests/index_types_tests[1]_include.cmake")
include("/root/repo/build/tests/schema_tests[1]_include.cmake")
include("/root/repo/build/tests/baseline_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
