file(REMOVE_RECURSE
  "CMakeFiles/mlight_rst.dir/rst_index.cpp.o"
  "CMakeFiles/mlight_rst.dir/rst_index.cpp.o.d"
  "libmlight_rst.a"
  "libmlight_rst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlight_rst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
