file(REMOVE_RECURSE
  "libmlight_rst.a"
)
