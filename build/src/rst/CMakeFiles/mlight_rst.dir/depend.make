# Empty dependencies file for mlight_rst.
# This may be replaced when dependencies are built.
