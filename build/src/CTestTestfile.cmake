# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("dht")
subdirs("store")
subdirs("index")
subdirs("mlight")
subdirs("pht")
subdirs("dst")
subdirs("workload")
subdirs("schema")
subdirs("rst")
