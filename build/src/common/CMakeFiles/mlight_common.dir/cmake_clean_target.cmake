file(REMOVE_RECURSE
  "libmlight_common.a"
)
