file(REMOVE_RECURSE
  "CMakeFiles/mlight_common.dir/bitstring.cpp.o"
  "CMakeFiles/mlight_common.dir/bitstring.cpp.o.d"
  "CMakeFiles/mlight_common.dir/geometry.cpp.o"
  "CMakeFiles/mlight_common.dir/geometry.cpp.o.d"
  "CMakeFiles/mlight_common.dir/sha1.cpp.o"
  "CMakeFiles/mlight_common.dir/sha1.cpp.o.d"
  "CMakeFiles/mlight_common.dir/zorder.cpp.o"
  "CMakeFiles/mlight_common.dir/zorder.cpp.o.d"
  "libmlight_common.a"
  "libmlight_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlight_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
