# Empty dependencies file for mlight_common.
# This may be replaced when dependencies are built.
