# Empty compiler generated dependencies file for mlight_dst.
# This may be replaced when dependencies are built.
