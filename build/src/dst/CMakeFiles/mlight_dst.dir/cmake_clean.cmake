file(REMOVE_RECURSE
  "CMakeFiles/mlight_dst.dir/dst_index.cpp.o"
  "CMakeFiles/mlight_dst.dir/dst_index.cpp.o.d"
  "libmlight_dst.a"
  "libmlight_dst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlight_dst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
