file(REMOVE_RECURSE
  "libmlight_dst.a"
)
