file(REMOVE_RECURSE
  "CMakeFiles/mlight_dht.dir/network.cpp.o"
  "CMakeFiles/mlight_dht.dir/network.cpp.o.d"
  "libmlight_dht.a"
  "libmlight_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlight_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
