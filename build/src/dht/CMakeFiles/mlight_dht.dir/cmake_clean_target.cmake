file(REMOVE_RECURSE
  "libmlight_dht.a"
)
