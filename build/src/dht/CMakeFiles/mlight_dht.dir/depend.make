# Empty dependencies file for mlight_dht.
# This may be replaced when dependencies are built.
