file(REMOVE_RECURSE
  "CMakeFiles/mlight_core.dir/index.cpp.o"
  "CMakeFiles/mlight_core.dir/index.cpp.o.d"
  "CMakeFiles/mlight_core.dir/index_knn.cpp.o"
  "CMakeFiles/mlight_core.dir/index_knn.cpp.o.d"
  "CMakeFiles/mlight_core.dir/index_maintenance.cpp.o"
  "CMakeFiles/mlight_core.dir/index_maintenance.cpp.o.d"
  "CMakeFiles/mlight_core.dir/index_query.cpp.o"
  "CMakeFiles/mlight_core.dir/index_query.cpp.o.d"
  "CMakeFiles/mlight_core.dir/kdspace.cpp.o"
  "CMakeFiles/mlight_core.dir/kdspace.cpp.o.d"
  "CMakeFiles/mlight_core.dir/naming.cpp.o"
  "CMakeFiles/mlight_core.dir/naming.cpp.o.d"
  "CMakeFiles/mlight_core.dir/split.cpp.o"
  "CMakeFiles/mlight_core.dir/split.cpp.o.d"
  "libmlight_core.a"
  "libmlight_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlight_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
