# Empty dependencies file for mlight_core.
# This may be replaced when dependencies are built.
