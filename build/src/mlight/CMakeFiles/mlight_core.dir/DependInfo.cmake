
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mlight/index.cpp" "src/mlight/CMakeFiles/mlight_core.dir/index.cpp.o" "gcc" "src/mlight/CMakeFiles/mlight_core.dir/index.cpp.o.d"
  "/root/repo/src/mlight/index_knn.cpp" "src/mlight/CMakeFiles/mlight_core.dir/index_knn.cpp.o" "gcc" "src/mlight/CMakeFiles/mlight_core.dir/index_knn.cpp.o.d"
  "/root/repo/src/mlight/index_maintenance.cpp" "src/mlight/CMakeFiles/mlight_core.dir/index_maintenance.cpp.o" "gcc" "src/mlight/CMakeFiles/mlight_core.dir/index_maintenance.cpp.o.d"
  "/root/repo/src/mlight/index_query.cpp" "src/mlight/CMakeFiles/mlight_core.dir/index_query.cpp.o" "gcc" "src/mlight/CMakeFiles/mlight_core.dir/index_query.cpp.o.d"
  "/root/repo/src/mlight/kdspace.cpp" "src/mlight/CMakeFiles/mlight_core.dir/kdspace.cpp.o" "gcc" "src/mlight/CMakeFiles/mlight_core.dir/kdspace.cpp.o.d"
  "/root/repo/src/mlight/naming.cpp" "src/mlight/CMakeFiles/mlight_core.dir/naming.cpp.o" "gcc" "src/mlight/CMakeFiles/mlight_core.dir/naming.cpp.o.d"
  "/root/repo/src/mlight/split.cpp" "src/mlight/CMakeFiles/mlight_core.dir/split.cpp.o" "gcc" "src/mlight/CMakeFiles/mlight_core.dir/split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlight_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/mlight_dht.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
