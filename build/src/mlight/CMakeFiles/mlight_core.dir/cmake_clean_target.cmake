file(REMOVE_RECURSE
  "libmlight_core.a"
)
