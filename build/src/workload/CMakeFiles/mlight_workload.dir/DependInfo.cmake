
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/datasets.cpp" "src/workload/CMakeFiles/mlight_workload.dir/datasets.cpp.o" "gcc" "src/workload/CMakeFiles/mlight_workload.dir/datasets.cpp.o.d"
  "/root/repo/src/workload/queries.cpp" "src/workload/CMakeFiles/mlight_workload.dir/queries.cpp.o" "gcc" "src/workload/CMakeFiles/mlight_workload.dir/queries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlight_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/mlight_dht.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
