file(REMOVE_RECURSE
  "CMakeFiles/mlight_workload.dir/datasets.cpp.o"
  "CMakeFiles/mlight_workload.dir/datasets.cpp.o.d"
  "CMakeFiles/mlight_workload.dir/queries.cpp.o"
  "CMakeFiles/mlight_workload.dir/queries.cpp.o.d"
  "libmlight_workload.a"
  "libmlight_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlight_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
