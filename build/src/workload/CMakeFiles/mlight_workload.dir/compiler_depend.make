# Empty compiler generated dependencies file for mlight_workload.
# This may be replaced when dependencies are built.
