file(REMOVE_RECURSE
  "libmlight_workload.a"
)
