# CMake generated Testfile for 
# Source directory: /root/repo/src/pht
# Build directory: /root/repo/build/src/pht
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
