file(REMOVE_RECURSE
  "libmlight_pht.a"
)
