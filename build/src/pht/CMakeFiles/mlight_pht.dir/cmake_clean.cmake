file(REMOVE_RECURSE
  "CMakeFiles/mlight_pht.dir/pht_index.cpp.o"
  "CMakeFiles/mlight_pht.dir/pht_index.cpp.o.d"
  "libmlight_pht.a"
  "libmlight_pht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlight_pht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
