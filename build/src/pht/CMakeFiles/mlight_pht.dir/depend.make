# Empty dependencies file for mlight_pht.
# This may be replaced when dependencies are built.
