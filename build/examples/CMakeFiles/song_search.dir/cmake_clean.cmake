file(REMOVE_RECURSE
  "CMakeFiles/song_search.dir/song_search.cpp.o"
  "CMakeFiles/song_search.dir/song_search.cpp.o.d"
  "song_search"
  "song_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/song_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
