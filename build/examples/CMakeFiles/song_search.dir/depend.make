# Empty dependencies file for song_search.
# This may be replaced when dependencies are built.
