# Empty compiler generated dependencies file for mlight_shell.
# This may be replaced when dependencies are built.
