file(REMOVE_RECURSE
  "CMakeFiles/mlight_shell.dir/mlight_shell.cpp.o"
  "CMakeFiles/mlight_shell.dir/mlight_shell.cpp.o.d"
  "mlight_shell"
  "mlight_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlight_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
