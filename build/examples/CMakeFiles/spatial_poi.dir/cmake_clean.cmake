file(REMOVE_RECURSE
  "CMakeFiles/spatial_poi.dir/spatial_poi.cpp.o"
  "CMakeFiles/spatial_poi.dir/spatial_poi.cpp.o.d"
  "spatial_poi"
  "spatial_poi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_poi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
