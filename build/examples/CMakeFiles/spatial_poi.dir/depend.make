# Empty dependencies file for spatial_poi.
# This may be replaced when dependencies are built.
