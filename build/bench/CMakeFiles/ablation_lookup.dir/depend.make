# Empty dependencies file for ablation_lookup.
# This may be replaced when dependencies are built.
