file(REMOVE_RECURSE
  "CMakeFiles/ablation_lookup.dir/ablation_lookup.cpp.o"
  "CMakeFiles/ablation_lookup.dir/ablation_lookup.cpp.o.d"
  "ablation_lookup"
  "ablation_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
