file(REMOVE_RECURSE
  "CMakeFiles/fig5_maintenance.dir/fig5_maintenance.cpp.o"
  "CMakeFiles/fig5_maintenance.dir/fig5_maintenance.cpp.o.d"
  "fig5_maintenance"
  "fig5_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
