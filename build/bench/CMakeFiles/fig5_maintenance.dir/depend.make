# Empty dependencies file for fig5_maintenance.
# This may be replaced when dependencies are built.
