file(REMOVE_RECURSE
  "CMakeFiles/fig7_range_query.dir/fig7_range_query.cpp.o"
  "CMakeFiles/fig7_range_query.dir/fig7_range_query.cpp.o.d"
  "fig7_range_query"
  "fig7_range_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_range_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
