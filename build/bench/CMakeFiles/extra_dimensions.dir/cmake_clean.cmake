file(REMOVE_RECURSE
  "CMakeFiles/extra_dimensions.dir/extra_dimensions.cpp.o"
  "CMakeFiles/extra_dimensions.dir/extra_dimensions.cpp.o.d"
  "extra_dimensions"
  "extra_dimensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_dimensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
