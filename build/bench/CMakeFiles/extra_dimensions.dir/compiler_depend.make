# Empty compiler generated dependencies file for extra_dimensions.
# This may be replaced when dependencies are built.
