file(REMOVE_RECURSE
  "CMakeFiles/extra_churn.dir/extra_churn.cpp.o"
  "CMakeFiles/extra_churn.dir/extra_churn.cpp.o.d"
  "extra_churn"
  "extra_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
