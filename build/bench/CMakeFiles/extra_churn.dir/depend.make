# Empty dependencies file for extra_churn.
# This may be replaced when dependencies are built.
