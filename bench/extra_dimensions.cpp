// Beyond the paper: how the schemes scale with dimensionality m.
//
// The paper evaluates m = 2 only but §3.4.2 defines the index for any m.
// This bench sweeps m = 1..4 on clustered data and reports maintenance
// and range-query costs.  Expected: m-LIGHT degrades gracefully (its
// kd-tree is binary regardless of m), while DST's fan-out is 2^m — its
// decomposition and replication costs grow much faster.
#include <algorithm>
#include <cinttypes>

#include "bench_util.h"
#include "dht/network.h"
#include "dst/dst_index.h"
#include "mlight/index.h"
#include "pht/pht_index.h"
#include "workload/datasets.h"
#include "workload/queries.h"

int main(int argc, char** argv) {
  using namespace mlight;
  auto args = bench::Args::parse(argc, argv);
  const bench::WallClock wall(bench::benchName(argv[0]));
  if (args.records == 123593) args.records = 30000;  // 4 dims x 3 schemes
  if (args.quick) {
    // The generic 1/10th quick scale is still ~12k records x 4 dims x 3
    // schemes (minutes of DST replication traffic); the CI perf-smoke
    // wants seconds.  The sweep's *shape* — maintenance and query cost
    // growing with m, DST an order of magnitude above the others — is
    // already unmistakable at this size.
    args.records = std::min<std::size_t>(args.records, 3000);
    args.queries = std::min<std::size_t>(args.queries, 3);
  }
  // DST's span-0.05 decomposition at m = 4 costs ~3M lookups per query
  // no matter how few records are stored — the static 2^m tree is the
  // point of the full run, but it alone is ~1 min of wall clock, so the
  // smoke run stops at m = 3 where the blow-up is already 3 orders of
  // magnitude.
  const std::size_t maxDims = args.quick ? 3 : 4;

  bench::banner("Extension — dimensionality sweep (m = 1..4)",
                "clustered data, theta=100, span 0.05 range queries; "
                "the paper evaluates m = 2 only");

  std::printf("\n%4s | %14s %14s %14s | %12s %12s %12s\n", "m",
              "maint lookups", "", "", "query lookups", "", "");
  std::printf("%4s | %14s %14s %14s | %12s %12s %12s\n", "",
              "m-LIGHT", "PHT", "DST", "m-LIGHT", "PHT", "DST");
  for (std::size_t dims = 1; dims <= maxDims; ++dims) {
    dht::Network net(args.peers, 1);
    core::MLightConfig mc;
    mc.dims = dims;
    mc.thetaSplit = 100;
    mc.thetaMerge = 50;
    mc.maxEdgeDepth = 7 * dims;  // same per-dimension resolution
    core::MLightIndex ml(net, mc);
    pht::PhtConfig pc;
    pc.dims = dims;
    pc.thetaSplit = 100;
    pc.thetaMerge = 50;
    pc.maxDepth = 7 * dims;
    pht::PhtIndex ph(net, pc);
    dst::DstConfig dc;
    dc.dims = dims;
    dc.maxDepth = 7 * dims;
    dc.gamma = 100;
    dst::DstIndex ds(net, dc);

    const auto data =
        workload::clusteredDataset(args.records, dims, 3, 0.05, 77);
    dht::CostMeter mMl;
    dht::CostMeter mPh;
    dht::CostMeter mDs;
    {
      dht::MeterScope s(net, mMl);
      for (const auto& r : data) ml.insert(r);
    }
    {
      dht::MeterScope s(net, mPh);
      for (const auto& r : data) ph.insert(r);
    }
    {
      dht::MeterScope s(net, mDs);
      for (const auto& r : data) ds.insert(r);
    }

    // DST's 2^m decomposition makes high-m queries very expensive (that
    // is the finding); fewer probes per point keep the sweep brisk.
    const std::size_t queryCount =
        dims >= 3 ? std::min<std::size_t>(args.queries, 8) : args.queries;
    const auto queries =
        workload::uniformRangeQueries(queryCount, dims, 0.05, 88);
    std::uint64_t qMl = 0;
    std::uint64_t qPh = 0;
    std::uint64_t qDs = 0;
    for (const auto& q : queries) {
      const auto a = ml.rangeQuery(q);
      const auto b = ph.rangeQuery(q);
      const auto c = ds.rangeQuery(q);
      if (a.records.size() != b.records.size() ||
          a.records.size() != c.records.size()) {
        std::fprintf(stderr, "RESULT MISMATCH at m=%zu\n", dims);
        return 1;
      }
      qMl += a.stats.cost.lookups;
      qPh += b.stats.cost.lookups;
      qDs += c.stats.cost.lookups;
    }
    std::printf("%4zu | %14" PRIu64 " %14" PRIu64 " %14" PRIu64
                " | %12.1f %12.1f %12.1f\n",
                dims, mMl.lookups, mPh.lookups, mDs.lookups,
                double(qMl) / double(queries.size()),
                double(qPh) / double(queries.size()),
                double(qDs) / double(queries.size()));
  }
  std::printf("\nshape check: m-LIGHT and PHT stay near-flat in m; DST's "
              "2^m fan-out drives both costs up sharply.\n");
  return 0;
}
