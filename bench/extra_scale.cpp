// Scale sweep (beyond the paper): queries/sec and ring-bootstrap cost as
// the overlay grows from the paper's 128 peers to a 10k-peer ring holding
// millions of records.
//
// The paper's §7 evaluation stops at "more than one hundred" peers; this
// bench exercises the simulator itself at deployment scale.  Per sweep
// point it reports:
//
//   * construct_s  — host seconds to bootstrap the ring (bulk ctor:
//                    generate + sort all vnode ids once, one finger-table
//                    build; the incremental join path would be
//                    O(n^2 log n) at 10k peers)
//   * insert_s     — host seconds to load the dataset into m-LIGHT
//   * qps          — range queries per host second (span 0.02 squares)
//   * p50/p99_ms   — percentiles of *simulated* per-query latency, which
//                    is host-independent and bit-identical across runs
//
// The largest point's query phase then re-runs under the sharded event
// core (MLIGHT_SIM_SHARDS=4 equivalent) and reports the wall-clock ratio
// vs the serial executor.  Simulated counts are identical either way —
// the executor contract (docs/THEORY.md, "Sharded time-window
// execution") — so the ratio isolates pure host-side effect.  On a
// single-CPU host expect ~1x: the parallel phase only covers wire
// decode, and there are no spare cores to run it on.
//
// Output: a table plus machine-greppable lines
//     ##SCALE <key> <number>
// which scripts/run_benches.sh folds into BENCH_PERF.json next to the
// ##WALLCLOCK and ##CACHE trajectories.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "dht/network.h"
#include "mlight/index.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace {

using namespace mlight;

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[rank < v.size() ? rank : v.size() - 1];
}

struct SweepPoint {
  std::size_t peers;
  std::size_t records;
};

struct QueryPhase {
  double wallS = 0.0;
  double p50Ms = 0.0;
  double p99Ms = 0.0;
  double meanLookups = 0.0;
  std::size_t resultRecords = 0;  // sum over queries; cross-run check
};

QueryPhase runQueries(core::MLightIndex& ml,
                      const std::vector<common::Rect>& queries) {
  QueryPhase out;
  std::vector<double> latencies;
  latencies.reserve(queries.size());
  double lookups = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& q : queries) {
    const auto res = ml.rangeQuery(q);
    out.resultRecords += res.records.size();
    latencies.push_back(res.stats.latencyMs);
    lookups += static_cast<double>(res.stats.cost.lookups);
  }
  out.wallS = secondsSince(t0);
  out.p50Ms = percentile(latencies, 0.50);
  out.p99Ms = percentile(latencies, 0.99);
  out.meanLookups = lookups / static_cast<double>(queries.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv);
  const bench::WallClock wall(bench::benchName(argv[0]));

  bench::banner("Extra — scale sweep: 128 .. 10k peers",
                "beyond §7: ring bootstrap cost, load throughput, "
                "queries/sec and simulated latency at deployment scale");

  // The sweep ignores --records/--peers (each point fixes both); --quick
  // shrinks it to a smoke run for CI's bench loop.
  const std::vector<SweepPoint> sweep =
      args.quick ? std::vector<SweepPoint>{{128, 2000}, {1024, 5000}}
                 : std::vector<SweepPoint>{{128, 200000},
                                           {1024, 500000},
                                           {4096, 1000000},
                                           {10240, 2000000}};
  const std::size_t queryCount = args.queries;
  const std::size_t shardedN = 4;

  std::printf("\n%7s %9s %11s %9s %10s %9s %9s %10s\n", "peers", "records",
              "construct_s", "insert_s", "insert_rps", "qps", "p50_ms",
              "p99_ms");

  for (std::size_t p = 0; p < sweep.size(); ++p) {
    const SweepPoint& pt = sweep[p];
    std::fprintf(stderr, "point %zu: %zu peers, %zu records...\n", p,
                 pt.peers, pt.records);
    const auto data = workload::northeastDataset(pt.records, 20090401);
    const auto queries = workload::uniformRangeQueries(
        queryCount, 2, 0.02, 9000 + static_cast<std::uint64_t>(p));

    const auto tc = std::chrono::steady_clock::now();
    dht::Network net(pt.peers, 1);
    const double constructS = secondsSince(tc);

    core::MLightConfig mc;
    mc.thetaSplit = 100;
    mc.thetaMerge = 50;
    mc.maxEdgeDepth = 28;
    core::MLightIndex ml(net, mc);

    const auto ti = std::chrono::steady_clock::now();
    for (const auto& r : data) ml.insert(r);
    const double insertS = secondsSince(ti);

    const QueryPhase serial = runQueries(ml, queries);
    const double qps =
        static_cast<double>(queries.size()) / serial.wallS;

    std::printf("%7zu %9zu %11.3f %9.1f %10.0f %9.2f %9.1f %10.1f\n",
                pt.peers, pt.records, constructS, insertS,
                static_cast<double>(pt.records) / insertS, qps, serial.p50Ms,
                serial.p99Ms);
    std::printf("##SCALE peers%zu_construct_s %.3f\n", pt.peers, constructS);
    std::printf("##SCALE peers%zu_insert_s %.1f\n", pt.peers, insertS);
    std::printf("##SCALE peers%zu_qps %.2f\n", pt.peers, qps);
    std::printf("##SCALE peers%zu_p50_ms %.1f\n", pt.peers, serial.p50Ms);
    std::printf("##SCALE peers%zu_p99_ms %.1f\n", pt.peers, serial.p99Ms);

    // Sharded executor A/B on the largest point: same queries, same
    // simulated counts (verified below), wall-clock ratio reported.
    // The cold-cache phase above doubles as warm-up; both sides of the
    // A/B run against steady hint-cache state.
    if (p + 1 == sweep.size()) {
      const QueryPhase steady = runQueries(ml, queries);
      net.setSimShards(shardedN);
      const QueryPhase sharded = runQueries(ml, queries);
      net.setSimShards(1);
      if (sharded.resultRecords != steady.resultRecords) {
        std::fprintf(stderr,
                     "RESULT MISMATCH under sharding: %zu vs %zu records\n",
                     sharded.resultRecords, steady.resultRecords);
        return 1;
      }
      const double ratio = steady.wallS / sharded.wallS;
      std::printf(
          "\nsharded executor A/B (N=%zu vs N=1, %zu-peer point): "
          "%.2fs vs %.2fs -> %.2fx\n",
          shardedN, pt.peers, sharded.wallS, steady.wallS, ratio);
      std::printf("##SCALE shard%zu_query_s %.3f\n", shardedN,
                  sharded.wallS);
      std::printf("##SCALE shard1_query_s %.3f\n", steady.wallS);
      std::printf("##SCALE shard%zu_speedup %.2f\n", shardedN, ratio);
    }
  }
  return 0;
}
