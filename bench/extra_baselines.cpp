// Beyond the paper's figures: all four over-DHT schemes side by side —
// m-LIGHT, PHT, DST, and RST (§2.1's fourth scheme, cited but not
// plotted in the paper) — on one workload, maintenance and queries.
#include <cinttypes>

#include "bench_util.h"
#include "dht/network.h"
#include "dst/dst_index.h"
#include "mlight/index.h"
#include "pht/pht_index.h"
#include "rst/rst_index.h"
#include "workload/datasets.h"
#include "workload/queries.h"

int main(int argc, char** argv) {
  using namespace mlight;
  auto args = bench::Args::parse(argc, argv);
  const bench::WallClock wall(bench::benchName(argv[0]));
  if (args.records == 123593) args.records = 40000;

  bench::banner("Extension — four over-DHT schemes side by side",
                "m-LIGHT / PHT / DST / RST; NE data, theta=gamma=100, "
                "D=24, span-0.1 queries");

  dht::Network net(args.peers, 1);
  core::MLightConfig mc;
  mc.thetaSplit = 100;
  mc.thetaMerge = 50;
  mc.maxEdgeDepth = 24;
  core::MLightIndex ml(net, mc);
  pht::PhtConfig pc;
  pc.thetaSplit = 100;
  pc.thetaMerge = 50;
  pc.maxDepth = 24;
  pht::PhtIndex ph(net, pc);
  dst::DstConfig dc;
  dc.maxDepth = 24;
  dc.gamma = 100;
  dst::DstIndex ds(net, dc);
  rst::RstConfig rc;
  rc.maxDepth = 24;
  rc.gamma = 100;
  rc.bandCeiling = 4;
  rst::RstIndex rs(net, rc);

  const auto data = workload::northeastDataset(args.records, 20090401);
  dht::CostMeter meters[4];
  const char* names[] = {"m-LIGHT", "PHT", "DST", "RST"};
  {
    dht::MeterScope s(net, meters[0]);
    for (const auto& r : data) ml.insert(r);
  }
  {
    dht::MeterScope s(net, meters[1]);
    for (const auto& r : data) ph.insert(r);
  }
  {
    dht::MeterScope s(net, meters[2]);
    for (const auto& r : data) ds.insert(r);
  }
  {
    dht::MeterScope s(net, meters[3]);
    for (const auto& r : data) rs.insert(r);
  }

  const auto queries =
      workload::uniformRangeQueries(args.queries, 2, 0.1, 202);
  double qLookups[4] = {};
  double qRounds[4] = {};
  for (const auto& q : queries) {
    index::RangeResult res[4] = {ml.rangeQuery(q), ph.rangeQuery(q),
                                 ds.rangeQuery(q), rs.rangeQuery(q)};
    for (int i = 1; i < 4; ++i) {
      if (res[i].records.size() != res[0].records.size()) {
        std::fprintf(stderr, "RESULT MISMATCH on %s\n", names[i]);
        return 1;
      }
    }
    for (int i = 0; i < 4; ++i) {
      qLookups[i] += static_cast<double>(res[i].stats.cost.lookups);
      qRounds[i] += static_cast<double>(res[i].stats.rounds);
    }
  }

  bench::meterHeader(9, "scheme");
  std::printf(" %14s %10s\n", "query lookups", "rounds");
  for (int i = 0; i < 4; ++i) {
    bench::meterCells(names[i], 9, meters[i]);
    std::printf(" %14.1f %10.2f\n",
                qLookups[i] / static_cast<double>(queries.size()),
                qRounds[i] / static_cast<double>(queries.size()));
  }
  std::printf("\nshape check: the replication pair (DST, RST) pays far "
              "more maintenance than the\nbucket pair (m-LIGHT, PHT).  "
              "RST's finer binary segments save query bandwidth\nover "
              "DST's 2^m cells but double the registration levels, so "
              "its maintenance is\nhighest of all despite the band "
              "ceiling — the trade both replication schemes\nlive on.\n");
  return 0;
}
