// Ablation: bulk loading vs incremental insertion.
//
// An over-DHT index is usually populated progressively (the paper's Fig 5
// workload), but a deployment migrating an existing dataset can plan the
// final leaf layout locally and issue one DHT-put per bucket.  This bench
// quantifies the gap on the NE dataset for both splitting strategies.
#include <cinttypes>

#include "bench_util.h"
#include "dht/network.h"
#include "mlight/index.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  using namespace mlight;
  const auto args = bench::Args::parse(argc, argv);
  const bench::WallClock wall(bench::benchName(argv[0]));
  const auto data = bench::experimentDataset(args, 20090401);

  bench::banner("Ablation — bulk load vs incremental insertion",
                "NE dataset; theta=100 / epsilon=70, D=28");

  std::printf("\n%-28s %14s %16s %12s\n", "method", "DHT-lookups",
              "bytes moved", "buckets");
  for (const bool dataAware : {false, true}) {
    for (const bool bulk : {false, true}) {
      dht::Network net(args.peers, 1);
      core::MLightConfig cfg;
      cfg.thetaSplit = 100;
      cfg.thetaMerge = 50;
      cfg.maxEdgeDepth = 28;
      cfg.strategy = dataAware ? core::SplitStrategy::kDataAware
                               : core::SplitStrategy::kThreshold;
      cfg.epsilon = 70.0;
      core::MLightIndex index(net, cfg);
      dht::CostMeter meter;
      {
        dht::MeterScope scope(net, meter);
        if (bulk) {
          index.bulkLoad(data);
        } else {
          for (const auto& r : data) index.insert(r);
        }
      }
      std::printf("%-28s %14" PRIu64 " %16" PRIu64 " %12zu\n",
                  (std::string(dataAware ? "data-aware" : "threshold") +
                   (bulk ? " / bulk" : " / incremental"))
                      .c_str(),
                  meter.lookups, meter.bytesMoved, index.bucketCount());
    }
  }
  std::printf("\nshape check: bulk loading needs ~#buckets lookups and "
              "ships each record once;\nincremental pays the per-record "
              "binary search plus split re-shipping.\n");
  return 0;
}
