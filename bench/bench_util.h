// Shared utilities for the figure-reproduction benchmark binaries.
//
// Each binary regenerates one figure of the paper's §7 evaluation and
// prints the series as an aligned text table (plus a CSV block for
// plotting).  All binaries accept:
//   --records N   dataset size (default: the paper's 123,593)
//   --peers P     DHT size (default 128, paper: "more than one hundred")
//   --queries Q   queries per configuration point (query benches)
//   --quick       1/10th-scale smoke run (used by CI-style checks)
#pragma once

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dht/cost.h"
#include "workload/datasets.h"

namespace mlight::bench {

struct Args {
  std::size_t records = 123593;  // paper's NE dataset size
  std::size_t peers = 128;
  std::size_t queries = 20;
  bool quick = false;
  /// Per-attempt RPC loss probability for fault-injection benches; < 0
  /// means "use the bench's built-in sweep".
  double loss = -1.0;
  /// Optional path to a real points file (e.g. the rtreeportal.org NE
  /// dataset); when set, benches load it instead of the synthetic NE.
  std::string dataset;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::size_t {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", a.c_str());
          std::exit(2);
        }
        return static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      };
      if (a == "--records") {
        args.records = next();
      } else if (a == "--dataset") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for --dataset\n");
          std::exit(2);
        }
        args.dataset = argv[++i];
      } else if (a == "--peers") {
        args.peers = next();
      } else if (a == "--queries") {
        args.queries = next();
      } else if (a == "--loss") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for --loss\n");
          std::exit(2);
        }
        args.loss = std::strtod(argv[++i], nullptr);
      } else if (a == "--quick") {
        args.quick = true;
      } else if (a == "--help" || a == "-h") {
        std::printf(
            "usage: %s [--records N] [--peers P] [--queries Q] [--quick] "
            "[--loss P] [--dataset FILE]\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag %s\n", a.c_str());
        std::exit(2);
      }
    }
    if (args.quick) {
      args.records /= 10;
      args.queries = args.queries > 5 ? 5 : args.queries;
    }
    return args;
  }
};

/// The 2-D experiment dataset: the real file when --dataset was given,
/// otherwise the synthetic NE stand-in at the requested size.
inline std::vector<mlight::index::Record> experimentDataset(
    const Args& args, std::uint64_t seed) {
  if (!args.dataset.empty()) {
    auto data = mlight::workload::loadPointsFile(args.dataset, 2);
    if (args.quick && data.size() > args.records) {
      data.resize(args.records);
    }
    std::fprintf(stderr, "loaded %zu points from %s\n", data.size(),
                 args.dataset.c_str());
    return data;
  }
  return mlight::workload::northeastDataset(args.records, seed);
}

/// Column header matching meterCells() below.  `nameWidth` sizes the
/// leading scheme/label column.
inline void meterHeader(int nameWidth, const char* label) {
  std::printf("\n%-*s %15s %15s %15s", nameWidth, label, "maint lookups",
              "RPC msgs", "maint bytes");
}

/// Prints the standard maintenance-cost cells for one meter — DHT-lookups,
/// RPC envelopes sent (dht::CostMeter::messages), and bytes moved — without
/// a trailing newline so callers can append bench-specific columns.
inline void meterCells(const char* name, int nameWidth,
                       const mlight::dht::CostMeter& m) {
  std::printf("%-*s %15" PRIu64 " %15" PRIu64 " %15" PRIu64, nameWidth,
              name, m.lookups, m.messages, m.bytesMoved);
}

/// Prints a horizontal rule sized to the table width.
inline void rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void banner(const char* title, const char* paperRef) {
  std::printf("\n");
  rule(78);
  std::printf("%s\n%s\n", title, paperRef);
  rule(78);
}

/// RAII host wall-clock timer for a whole bench run.  At destruction it
/// prints a machine-greppable line
///
///     ##WALLCLOCK <name> <seconds>
///
/// which scripts/run_benches.sh collects into BENCH_PERF.json — the
/// end-to-end half of the perf trajectory (docs/COST_MODEL.md, "Host
/// wall-clock vs simulated cost").  Host time is *not* a simulated
/// metric: consumers comparing bench output for count regressions must
/// strip these lines (CI's golden diff does).
class WallClock {
 public:
  explicit WallClock(const char* name)
      : name_(name), t0_(std::chrono::steady_clock::now()) {}
  ~WallClock() {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
    std::printf("##WALLCLOCK %s %.3f\n", name_.c_str(), seconds);
  }

  WallClock(const WallClock&) = delete;
  WallClock& operator=(const WallClock&) = delete;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point t0_;
};

/// Basename of argv[0] — the conventional WallClock name.
inline const char* benchName(const char* argv0) {
  const char* slash = std::strrchr(argv0, '/');
  return slash != nullptr ? slash + 1 : argv0;
}

}  // namespace mlight::bench
