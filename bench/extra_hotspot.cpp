// Beyond the paper: query-load balancing under Zipf-skewed point reads.
//
// The paper's Fig 6 balances *storage*; this bench measures what happens
// to per-peer *query* load when the workload is skewed, and what the
// hot-leaf read replication + least-loaded routing layer (src/store
// LoadBalancePolicy) buys back.  Arms are the cross product
//
//     theta in {0, 0.6, 0.9, 1.1}  x  balancing {off, on}
//
// where theta is the Zipf exponent over record ranks.  Each arm bulk
// loads the dataset, warms up with the first part of the query stream
// (promotions happen here), then meters the per-physical-peer envelope
// deltas (dht::PeerLoadMeter) over the measured part.  Reported per arm:
// max/avg/p99 per-peer query load, the hot peer's share of all probes,
// simulated p50/p99 latency, and a correctness tally (every queried key
// is a live record; the answer must contain it — zero wrong answers).
//
// ##LOAD <key> <value> lines are collected by scripts/run_benches.sh
// into the "load" section of BENCH_PERF.json; CI gates
// improvement_0.9 >= 4 and wrong_answers_total == 0.
#include <algorithm>
#include <cinttypes>
#include <vector>

#include "bench_util.h"
#include "dht/network.h"
#include "mlight/index.h"
#include "mlight/naming.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace {

using namespace mlight;

struct ArmResult {
  double qMax = 0.0;      ///< max per-physical-peer envelope delta
  double qAvg = 0.0;      ///< total delta / physical peer count
  double qP99 = 0.0;      ///< nearest-rank p99 of the per-peer deltas
  double ratio = 0.0;     ///< qMax / qAvg — the balance figure of merit
  double hotShare = 0.0;  ///< hottest peer's share of all probes
  double p50LatMs = 0.0;
  double p99LatMs = 0.0;
  std::uint64_t promotions = 0;
  std::size_t queries = 0;
  std::size_t ok = 0;
  std::uint64_t wrong = 0;
};

double nearestRank(std::vector<double> v, int pct) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  const std::size_t idx = (static_cast<std::size_t>(pct) * (n - 1) + 50) / 100;
  return v[idx];
}

ArmResult runArm(double theta, bool balanced,
                 const std::vector<index::Record>& data, std::size_t peers,
                 std::size_t warmup, std::size_t measured) {
  // 8 vnodes/peer smooths ring-arc imbalance below the hotspot signal,
  // so the arm contrast is the balancing layer, not arc luck.
  dht::Network net(peers, 1, /*vnodesPerPeer=*/8);
  core::MLightConfig cfg;
  cfg.thetaSplit = 16;
  cfg.thetaMerge = 8;
  cfg.cache.enabled = true;  // steady state: one direct probe per query
  cfg.cache.perDimCapacity = 4096;
  cfg.loadBalance.enabled = balanced;
  // 24 in-window reads: high enough that the uniform (theta=0) arm
  // promotes nothing, low enough to catch the skewed arms' hot ranks.
  cfg.loadBalance.promoteReads = 24;
  cfg.loadBalance.boostCopies = 15;
  // One long heat window: this bench studies a stationary hotspot, so
  // demotion churn would only add noise.
  cfg.loadBalance.windowMs = 1e9;
  core::MLightIndex index(net, cfg);
  index.bulkLoad(data);

  // Steady state (the extra_cache part-2 convention): every vnode's
  // hint cache knows the whole leaf set, so a query is one direct probe
  // to the leaf holder and the measured load is pure query routing —
  // not cold binary searches, whose ancestor probes no replication
  // scheme could spread (there is no bucket at an internal label).
  {
    std::vector<common::BitString> leaves;
    index.store().forEach(
        [&](const common::BitString&, const core::LeafBucket& b,
            dht::RingId) { leaves.push_back(b.label); });
    for (const auto peer : net.peers()) {
      auto& cache = index.hintCaches().forPeer(peer.value);
      for (const auto& leaf : leaves) {
        cache.learn(leaf, static_cast<std::uint32_t>(
                              core::edgeDepth(leaf, cfg.dims)));
      }
    }
  }

  const auto picks =
      workload::zipfIndices(warmup + measured, data.size(), theta, 4242);

  ArmResult res;
  std::vector<double> latencies;
  latencies.reserve(measured);
  auto query = [&](std::size_t i, bool measure) {
    const auto& key = data[picks[i]].key;
    const auto out = index.pointQuery(key);
    if (!measure) return;
    bool ok = false;
    for (const auto& r : out.records) ok = ok || r.key == key;
    ++res.queries;
    res.ok += ok;
    res.wrong += !ok;
    latencies.push_back(out.stats.latencyMs);
  };

  for (std::size_t i = 0; i < warmup; ++i) query(i, false);
  const std::vector<std::uint64_t> before = net.peerLoads().counts();
  for (std::size_t i = warmup; i < picks.size(); ++i) query(i, true);
  const std::vector<std::uint64_t>& after = net.peerLoads().counts();

  std::vector<double> delta(net.physicalCount(), 0.0);
  double total = 0.0;
  for (std::size_t p = 0; p < delta.size(); ++p) {
    const std::uint64_t a = p < after.size() ? after[p] : 0;
    const std::uint64_t b = p < before.size() ? before[p] : 0;
    delta[p] = static_cast<double>(a - b);
    total += delta[p];
    res.qMax = std::max(res.qMax, delta[p]);
  }
  res.qAvg = total / static_cast<double>(delta.size());
  res.qP99 = nearestRank(delta, 99);
  res.ratio = res.qAvg == 0.0 ? 0.0 : res.qMax / res.qAvg;
  res.hotShare = total == 0.0 ? 0.0 : res.qMax / total;
  res.p50LatMs = nearestRank(latencies, 50);
  res.p99LatMs = nearestRank(latencies, 99);
  res.promotions = index.store().hotPromotions();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::Args::parse(argc, argv);
  const bench::WallClock wall(bench::benchName(argv[0]));
  if (args.records == 123593) args.records = 30000;
  if (args.peers == 128) args.peers = 512;  // P*hotShare sets the contrast

  bench::banner("Extension — query-load balancing under Zipf hotspots",
                "hot-leaf read replication + least-loaded routing vs the "
                "unbalanced baseline, theta sweep x balancing on/off");

  const auto data = workload::northeastDataset(args.records, 47);
  const std::size_t measured = args.quick ? 6000 : 12000;
  // A full warm-up round: promotions should mostly be settled before
  // the meter starts, like the long-running deployment they model.
  const std::size_t warmup = measured;

  std::printf("\n%zu records, %zu physical peers, %zu warm-up + %zu "
              "measured point queries per arm\n",
              data.size(), args.peers, warmup, measured);
  std::printf("\n%5s %4s %9s %9s %9s %8s %8s %9s %9s %5s %12s\n", "theta",
              "lb", "qmax", "qavg", "max/avg", "p99", "hot%", "p50 ms",
              "p99 ms", "promo", "queries ok");

  std::uint64_t wrongTotal = 0;
  for (const double theta : {0.0, 0.6, 0.9, 1.1}) {
    ArmResult off;
    ArmResult on;
    for (const bool balanced : {false, true}) {
      ArmResult r =
          runArm(theta, balanced, data, args.peers, warmup, measured);
      std::printf("%5.1f %4s %9.0f %9.1f %9.2f %8.0f %7.2f%% %9.1f %9.1f "
                  "%5" PRIu64 " %9zu/%zu\n",
                  theta, balanced ? "on" : "off", r.qMax, r.qAvg, r.ratio,
                  r.qP99, 100.0 * r.hotShare, r.p50LatMs, r.p99LatMs,
                  r.promotions, r.ok, r.queries);
      wrongTotal += r.wrong;
      (balanced ? on : off) = r;
    }
    const double improvement = on.ratio == 0.0 ? 0.0 : off.ratio / on.ratio;
    std::printf("##LOAD ratio_off_%.1f %.3f\n", theta, off.ratio);
    std::printf("##LOAD ratio_on_%.1f %.3f\n", theta, on.ratio);
    std::printf("##LOAD improvement_%.1f %.3f\n", theta, improvement);
    std::printf("##LOAD p99_latency_on_%.1f %.3f\n", theta, on.p99LatMs);
  }
  std::printf("##LOAD wrong_answers_total %" PRIu64 "\n", wrongTotal);

  // Hint-cache pressure counters for the balanced theta=0.9 arm shape:
  // rerun small to surface eviction metering end to end.
  {
    dht::Network net(64, 1);
    core::MLightConfig cfg;
    cfg.cache.enabled = true;
    cfg.cache.perDimCapacity = 4;  // force LRU evictions
    core::MLightIndex index(net, cfg);
    const auto small = workload::northeastDataset(2000, 5);
    index.bulkLoad(small);
    for (std::size_t q = 0; q < 1500; ++q) {
      index.pointQuery(small[(q * 13) % small.size()].key);
    }
    std::printf("\nhint-cache pressure (capacity 4/dim): %" PRIu64
                " evictions, %zu hints resident\n",
                net.totalCost().hintEvictions,
                index.hintCaches().totalHints());
    std::printf("##LOAD hint_evictions %" PRIu64 "\n",
                net.totalCost().hintEvictions);
    std::printf("##LOAD hint_occupancy %zu\n",
                index.hintCaches().totalHints());
  }

  std::printf("\nshape check: balancing leaves theta=0 untouched, cuts the "
              "skewed arms' max/avg by >= 4x at theta=0.9, and never "
              "changes an answer.\n");
  return 0;
}
